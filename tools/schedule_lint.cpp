// edgetrain: schedule_lint -- the CI gate for checkpointing schedules.
//
// Runs the abstract interpreter (src/analysis) over an exhaustive parameter
// sweep of every scheduler family and exits nonzero when any schedule
// violates an invariant or an analytic bound. Modes:
//
//   schedule_lint [--out report.json]        full sweep, fail on any error
//   schedule_lint --quick                    reduced grids (unit-test sized)
//   schedule_lint --inject                   lint deliberately corrupted
//                                            schedules: MUST exit nonzero
//                                            (CTest registers it WILL_FAIL)
//   schedule_lint --self-check               verify every corruption kind is
//                                            applied and detected; exit 0
//                                            only when the gate has teeth
//   schedule_lint --verbose                  per-family progress on stderr
//
// The full sweep covers > 1000 schedules (binomial Revolve dense grids and
// large-l slot/rho grids, uniform segmentation, heterogeneous per-step-cost
// DP, two-level RAM+disk Revolve) in a few seconds of wall clock.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "analysis/interp.hpp"
#include "analysis/report.hpp"
#include "analysis/sweep.hpp"

namespace {

using edgetrain::analysis::Bounds;
using edgetrain::analysis::Corruption;
using edgetrain::analysis::kAllCorruptions;
using edgetrain::analysis::Report;
using edgetrain::analysis::SweepCase;
using edgetrain::analysis::SweepConfig;
using edgetrain::analysis::SweepReport;

/// The acceptance floor for the full sweep; the gate fails if the grids
/// ever shrink below it.
constexpr std::int64_t kMinFullSweepCases = 1000;

struct Options {
  std::string out_path;
  bool quick = false;
  bool inject = false;
  bool self_check = false;
  bool verbose = false;
};

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--out <report.json>] [--quick] [--inject] [--self-check]"
               " [--verbose]\n";
  return 2;
}

bool write_report(const SweepReport& report, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::cerr << "schedule_lint: cannot open " << path << " for writing\n";
    return false;
  }
  out << report.to_json();
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out") {
      if (i + 1 >= argc) return usage(argv[0]);
      opt.out_path = argv[++i];
    } else if (arg == "--quick") {
      opt.quick = true;
    } else if (arg == "--inject") {
      opt.inject = true;
    } else if (arg == "--self-check") {
      opt.self_check = true;
    } else if (arg == "--verbose") {
      opt.verbose = true;
    } else {
      std::cerr << "schedule_lint: unknown flag " << arg << '\n';
      return usage(argv[0]);
    }
  }
  if (opt.inject && opt.self_check) {
    std::cerr << "schedule_lint: --inject and --self-check are exclusive\n";
    return usage(argv[0]);
  }

  const SweepConfig config =
      opt.quick ? SweepConfig::quick() : SweepConfig::full();
  SweepReport report;
  std::string last_family;

  const std::int64_t cases =
      run_sweep(config, [&](const SweepCase& sweep_case) {
        if (opt.verbose && sweep_case.family != last_family) {
          last_family = sweep_case.family;
          std::cerr << "schedule_lint: sweeping " << last_family << "...\n";
        }
        if (opt.inject || opt.self_check) {
          for (const Corruption corruption : kAllCorruptions) {
            const auto corrupted = edgetrain::analysis::corrupt(sweep_case,
                                                                corruption);
            if (!corrupted) continue;
            const Report verdict = edgetrain::analysis::interpret(
                *corrupted, sweep_case.cost, sweep_case.bounds);
            if (opt.inject) {
              // Injection mode lints the corrupted schedule as if it were
              // real: detections count as failures, so a healthy
              // interpreter makes this mode exit nonzero.
              report.add(sweep_case, verdict);
            } else {
              report.add_injection(sweep_case, corruption, verdict);
            }
          }
          return;
        }
        report.add(sweep_case, edgetrain::analysis::interpret(
                                   sweep_case.schedule, sweep_case.cost,
                                   sweep_case.bounds));
      });

  if (!opt.out_path.empty() && !write_report(report, opt.out_path)) return 2;
  std::cout << report.summary();

  if (opt.self_check) {
    const bool teeth = report.injections_all_detected();
    std::cout << "self-check: "
              << (teeth ? "every corruption kind detected"
                        : "UNDETECTED corruption -- the gate is blind")
              << '\n';
    return teeth ? 0 : 1;
  }
  if (!opt.inject && !opt.quick && cases < kMinFullSweepCases) {
    std::cerr << "schedule_lint: sweep shrank to " << cases << " cases (< "
              << kMinFullSweepCases << ")\n";
    return 1;
  }
  return report.ok() ? 0 : 1;
}
