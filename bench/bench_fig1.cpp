// Reproduces Figure 1: "Peak memory requirement vs recompute factor" for
// LinearResNet_x, x in {18,34,50,101,152}, four panels:
//   (a) batch 1, image 224      (b) batch 8, image 224
//   (c) batch 1, image 500      (d) batch 8, image 500
// For each rho on a grid, the minimal number of Revolve checkpoint slots
// whose schedule stays within the 2*rho*l work budget is found (binary
// search over the DP cost table via the planner), and the resulting peak
// memory fixed + (s+1)*k*M_A is printed. The 2 GB Waggle line marks
// feasibility; the "fits 2GB at rho" row gives each curve's crossing point.
//
// Flags: --hetero  additionally solve the *heterogeneous* block-level chain
//                  of each real ResNet (stem/blocks/head with true per-step
//                  costs) and report its rho at the same memory, validating
//                  the homogenised LinearResNet model.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <limits>
#include <vector>

#include "core/dynprog.hpp"
#include "core/planner.hpp"
#include "models/linear_resnet.hpp"
#include "models/memory_model.hpp"

namespace {

using namespace edgetrain;

constexpr double kMiB = 1024.0 * 1024.0;
constexpr double kLimit = models::kWaggleMemoryBytes;

struct Panel {
  const char* name;
  std::int64_t batch;
  int image;
};

void run_panel(const Panel& panel,
               const std::vector<models::ResNetMemoryModel>& memory_models) {
  std::printf("--- Figure 1%s: batch %lld, image %d ---\n", panel.name,
              static_cast<long long>(panel.batch), panel.image);
  std::printf("%-6s", "rho");
  std::vector<core::MemoryPlanner> planners;
  planners.reserve(memory_models.size());
  for (const auto& mm : memory_models) {
    const models::LinearResNet linear =
        models::LinearResNet::from_resnet(mm, panel.image, panel.batch);
    std::printf(" %12s", linear.name.c_str());
    planners.emplace_back(linear.to_chain_spec());
  }
  std::printf("   (peak memory, MB)\n");

  for (double rho = 1.0; rho <= 3.001; rho += 0.1) {
    std::printf("%-6.2f", rho);
    for (const auto& planner : planners) {
      const core::PlanPoint point = planner.plan_for_rho(rho);
      const char marker = point.peak_bytes > kLimit ? '*' : ' ';
      std::printf(" %11.1f%c", point.peak_bytes / kMiB, marker);
    }
    std::printf("\n");
  }

  std::printf("%-6s", "fits@");
  for (const auto& planner : planners) {
    const core::PlanReport report = planner.report_for_device(kLimit);
    if (!report.fits_with_checkpointing) {
      std::printf(" %12s", "never");
    } else if (report.fits_without_checkpointing) {
      std::printf(" %12s", "rho=1");
    } else {
      std::printf("    rho=%5.2f", report.min_rho_to_fit);
    }
  }
  std::printf("   (smallest rho fitting 2 GB)\n\n");
}

void run_hetero(const Panel& panel) {
  std::printf("--- heterogeneous block-level chains (%s) ---\n", panel.name);
  std::printf("%-10s %-10s %-14s %-14s %-14s %-12s\n", "model", "steps",
              "rho@mem(hom)", "rho(hetero)", "rho(bytes)", "mem MB");
  for (const models::ResNetVariant v : models::all_resnet_variants()) {
    const models::ResNetSpec spec = models::ResNetSpec::make(v);
    const models::ResNetMemoryModel mm(spec);
    // Homogenised plan at rho budget 1.5.
    const models::LinearResNet linear =
        models::LinearResNet::from_resnet(mm, panel.image, panel.batch);
    const core::MemoryPlanner planner(linear.to_chain_spec());
    const core::PlanPoint plan = planner.plan_for_rho(1.5);

    // Heterogeneous block chain with true per-step forward costs.
    const std::vector<double> costs =
        spec.chain_step_forward_costs(panel.image, panel.batch);
    const int l = static_cast<int>(costs.size());
    const core::hetero::HeteroSolver solver(costs, l - 1);
    const auto act_per_block =
        spec.chain_step_activation_elems(panel.image, panel.batch);

    // Boundary i is the output of chain step i-1; approximate its bytes as
    // that block's activation total over its op count (~one tensor of ~4).
    std::vector<double> boundary_bytes;
    double max_boundary = 0.0;
    double min_boundary = 1e300;
    for (int i = 1; i < l; ++i) {
      // elems / ~4 ops per block * 4 bytes per element == elems, numerically.
      const double bytes =
          static_cast<double>(act_per_block[static_cast<std::size_t>(i - 1)]);
      boundary_bytes.push_back(bytes);
      max_boundary = std::max(max_boundary, bytes);
      min_boundary = std::min(min_boundary, bytes);
    }
    const double act_budget = plan.peak_bytes - linear.fixed_bytes;

    // Uniform slots must be provisioned for the worst-case boundary.
    const int block_slots = std::clamp(
        static_cast<int>(act_budget / max_boundary) - 1, 0, l - 1);
    const double hetero_rho = solver.recompute_factor(block_slots);

    // Byte-budget DP spends the same bytes against the true sizes.
    std::vector<int> state_units;
    for (const double bytes : boundary_bytes) {
      state_units.push_back(
          std::max(1, static_cast<int>(bytes / min_boundary + 0.5)));
    }
    const int unit_budget = std::max(
        0, static_cast<int>(act_budget / min_boundary) -
               static_cast<int>(max_boundary / min_boundary));
    double byte_rho = hetero_rho;
    if (static_cast<std::size_t>(l + 1) * (l + 1) * (unit_budget + 1) <
        (96ULL << 20)) {
      const core::hetero::ByteBudgetSolver byte_solver(costs, state_units,
                                                       unit_budget);
      byte_rho = byte_solver.recompute_factor();
    }
    std::printf("%-10s %-10d %-14.3f %-14.3f %-14.3f %-12.1f\n",
                spec.name().c_str(), l, plan.achieved_rho, hetero_rho,
                byte_rho, plan.peak_bytes / kMiB);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<models::ResNetMemoryModel> memory_models = [] {
    std::vector<models::ResNetMemoryModel> result;
    for (const models::ResNetVariant v : models::all_resnet_variants()) {
      result.emplace_back(models::ResNetSpec::make(v));
    }
    return result;
  }();

  const Panel panels[] = {
      {"a", 1, 224}, {"b", 8, 224}, {"c", 1, 500}, {"d", 8, 500}};

  std::printf(
      "Figure 1: peak memory vs recompute factor (Revolve optimal "
      "checkpointing)\n'*' = exceeds the 2 GB Waggle budget\n\n");
  for (const Panel& panel : panels) run_panel(panel, memory_models);

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--hetero") == 0) {
      run_hetero(panels[3]);  // batch 8, image 500 (the hardest panel)
    }
  }
  return 0;
}
