// Reproduces Figure 1: "Peak memory requirement vs recompute factor" for
// LinearResNet_x, x in {18,34,50,101,152}, four panels:
//   (a) batch 1, image 224      (b) batch 8, image 224
//   (c) batch 1, image 500      (d) batch 8, image 500
// For each rho on a grid, the minimal number of Revolve checkpoint slots
// whose schedule stays within the 2*rho*l work budget is found (binary
// search over the DP cost table via the planner), and the resulting peak
// memory fixed + (s+1)*k*M_A is printed. The 2 GB Waggle line marks
// feasibility; the "fits 2GB at rho" row gives each curve's crossing point.
//
// Flags: --hetero  additionally solve the *heterogeneous* block-level chain
//                  of each real ResNet (stem/blocks/head with true per-step
//                  costs) and report its rho at the same memory, validating
//                  the homogenised LinearResNet model.
//        --compress  add the slot-codec axis: re-solve the hardest panel's
//                  peak-vs-rho curves per codec (none/lossless/fp16/bitmap/
//                  bitmap-fp16), report the 2 GB crossing per codec, and time
//                  a real checkpointed pass through the sync and async disk
//                  stores with each codec under EDGETRAIN_DISK_LATENCY_US
//                  injected spill latency. Also sweeps the sparse bitmap
//                  codec's achieved ratio vs activation density and re-solves
//                  the 2 GB crossings with *measured* per-slot bitmap ratios
//                  (the dynamic-ratio planner path) against fp16's static
//                  0.5. Release builds write BENCH_compress.json and
//                  BENCH_sparse.json.
//        --quick   CI smoke: shrink the density sweep and the wall-clock
//                  repeat counts; every section still runs end to end.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/async_slot_store.hpp"
#include "core/disk_revolve.hpp"
#include "core/dynprog.hpp"
#include "core/executor.hpp"
#include "core/planner.hpp"
#include "core/slot_codec.hpp"
#include "core/slot_store.hpp"
#include "models/linear_resnet.hpp"
#include "models/memory_model.hpp"
#include "models/small_nets.hpp"
#include "nn/chain_runner.hpp"
#include "persist/io_latency.hpp"
#include "tensor/ops.hpp"

namespace {

using namespace edgetrain;

constexpr double kMiB = 1024.0 * 1024.0;
constexpr double kLimit = models::kWaggleMemoryBytes;

struct Panel {
  const char* name;
  std::int64_t batch;
  int image;
};

void run_panel(const Panel& panel,
               const std::vector<models::ResNetMemoryModel>& memory_models) {
  std::printf("--- Figure 1%s: batch %lld, image %d ---\n", panel.name,
              static_cast<long long>(panel.batch), panel.image);
  std::printf("%-6s", "rho");
  std::vector<core::MemoryPlanner> planners;
  planners.reserve(memory_models.size());
  for (const auto& mm : memory_models) {
    const models::LinearResNet linear =
        models::LinearResNet::from_resnet(mm, panel.image, panel.batch);
    std::printf(" %12s", linear.name.c_str());
    planners.emplace_back(linear.to_chain_spec());
  }
  std::printf("   (peak memory, MB)\n");

  for (double rho = 1.0; rho <= 3.001; rho += 0.1) {
    std::printf("%-6.2f", rho);
    for (const auto& planner : planners) {
      const core::PlanPoint point = planner.plan_for_rho(rho);
      const char marker = point.peak_bytes > kLimit ? '*' : ' ';
      std::printf(" %11.1f%c", point.peak_bytes / kMiB, marker);
    }
    std::printf("\n");
  }

  std::printf("%-6s", "fits@");
  for (const auto& planner : planners) {
    const core::PlanReport report = planner.report_for_device(kLimit);
    if (!report.fits_with_checkpointing) {
      std::printf(" %12s", "never");
    } else if (report.fits_without_checkpointing) {
      std::printf(" %12s", "rho=1");
    } else {
      std::printf("    rho=%5.2f", report.min_rho_to_fit);
    }
  }
  std::printf("   (smallest rho fitting 2 GB)\n\n");
}

void run_hetero(const Panel& panel) {
  std::printf("--- heterogeneous block-level chains (%s) ---\n", panel.name);
  std::printf("%-10s %-10s %-14s %-14s %-14s %-12s\n", "model", "steps",
              "rho@mem(hom)", "rho(hetero)", "rho(bytes)", "mem MB");
  for (const models::ResNetVariant v : models::all_resnet_variants()) {
    const models::ResNetSpec spec = models::ResNetSpec::make(v);
    const models::ResNetMemoryModel mm(spec);
    // Homogenised plan at rho budget 1.5.
    const models::LinearResNet linear =
        models::LinearResNet::from_resnet(mm, panel.image, panel.batch);
    const core::MemoryPlanner planner(linear.to_chain_spec());
    const core::PlanPoint plan = planner.plan_for_rho(1.5);

    // Heterogeneous block chain with true per-step forward costs.
    const std::vector<double> costs =
        spec.chain_step_forward_costs(panel.image, panel.batch);
    const int l = static_cast<int>(costs.size());
    const core::hetero::HeteroSolver solver(costs, l - 1);
    const auto act_per_block =
        spec.chain_step_activation_elems(panel.image, panel.batch);

    // Boundary i is the output of chain step i-1; approximate its bytes as
    // that block's activation total over its op count (~one tensor of ~4).
    std::vector<double> boundary_bytes;
    double max_boundary = 0.0;
    double min_boundary = 1e300;
    for (int i = 1; i < l; ++i) {
      // elems / ~4 ops per block * 4 bytes per element == elems, numerically.
      const double bytes =
          static_cast<double>(act_per_block[static_cast<std::size_t>(i - 1)]);
      boundary_bytes.push_back(bytes);
      max_boundary = std::max(max_boundary, bytes);
      min_boundary = std::min(min_boundary, bytes);
    }
    const double act_budget = plan.peak_bytes - linear.fixed_bytes;

    // Uniform slots must be provisioned for the worst-case boundary.
    const int block_slots = std::clamp(
        static_cast<int>(act_budget / max_boundary) - 1, 0, l - 1);
    const double hetero_rho = solver.recompute_factor(block_slots);

    // Byte-budget DP spends the same bytes against the true sizes.
    std::vector<int> state_units;
    for (const double bytes : boundary_bytes) {
      state_units.push_back(
          std::max(1, static_cast<int>(bytes / min_boundary + 0.5)));
    }
    const int unit_budget = std::max(
        0, static_cast<int>(act_budget / min_boundary) -
               static_cast<int>(max_boundary / min_boundary));
    double byte_rho = hetero_rho;
    if (static_cast<std::size_t>(l + 1) * (l + 1) * (unit_budget + 1) <
        (96ULL << 20)) {
      const core::hetero::ByteBudgetSolver byte_solver(costs, state_units,
                                                       unit_budget);
      byte_rho = byte_solver.recompute_factor();
    }
    std::printf("%-10s %-10d %-14.3f %-14.3f %-14.3f %-12.1f\n",
                spec.name().c_str(), l, plan.achieved_rho, hetero_rho,
                byte_rho, plan.peak_bytes / kMiB);
  }
  std::printf("\n");
}

// --- the slot-codec axis (--compress) --------------------------------------

struct CurvePoint {
  double rho;
  double peak_mb;
};

struct CodecCurve {
  std::string model;
  core::SlotCodec codec;
  double planning_ratio;
  double min_rho_fit_2gb;  // +inf when it never fits
  std::vector<CurvePoint> points;
};

struct CodecTiming {
  core::SlotCodec codec;
  double sync_ms;
  double async_ms;
  double measured_ratio;
  float grad_err;  // max |diff| / max |reference|, vs the RAM-store run
};

constexpr core::SlotCodec kCodecs[] = {
    core::SlotCodec::None, core::SlotCodec::Lossless, core::SlotCodec::Fp16,
    core::SlotCodec::Bitmap, core::SlotCodec::BitmapFp16};

/// Re-solves the hardest panel (batch 8, image 500) per codec: the planner
/// charges resting checkpoints at planning_bytes_ratio(codec), so the same
/// 2 GB cap affords more slots and a provably lower recompute factor.
std::vector<CodecCurve> compress_curves() {
  std::vector<CodecCurve> curves;
  for (const models::ResNetVariant v :
       {models::ResNetVariant::ResNet50, models::ResNetVariant::ResNet101,
        models::ResNetVariant::ResNet152}) {
    const models::ResNetMemoryModel mm(models::ResNetSpec::make(v));
    const models::LinearResNet linear =
        models::LinearResNet::from_resnet(mm, 500, 8);
    for (const core::SlotCodec codec : kCodecs) {
      CodecCurve curve;
      curve.model = linear.name;
      curve.codec = codec;
      curve.planning_ratio = core::planning_bytes_ratio(codec);
      const core::MemoryPlanner planner(
          linear.to_chain_spec(curve.planning_ratio));
      for (double rho = 1.0; rho <= 3.001; rho += 0.25) {
        const core::PlanPoint point = planner.plan_for_rho(rho);
        curve.points.push_back({rho, point.peak_bytes / kMiB});
      }
      const core::PlanReport report = planner.report_for_device(kLimit);
      curve.min_rho_fit_2gb = report.fits_with_checkpointing
                                  ? report.min_rho_to_fit
                                  : std::numeric_limits<double>::infinity();
      curves.push_back(std::move(curve));
    }
  }
  return curves;
}

/// One checkpointed training pass per codec through the synchronous and
/// asynchronous disk stores, spill latency injected per IO op.
std::vector<CodecTiming> compress_wallclock(long latency_us, bool quick) {
  using Clock = std::chrono::steady_clock;
  constexpr int kRamSlots = 3;
  const int kRepeats = quick ? 1 : 5;

  // A real mini-ResNet (conv/bn/relu): its checkpointed boundary
  // activations are post-ReLU and zero-heavy, the regime the lossless
  // byte-plane RLE is built for. A plain conv stack would spill dense
  // random floats and show ratio ~1 -- true, but not the deployed case.
  std::mt19937 rng(2026);
  nn::LayerChain chain = models::build_mini_resnet(
      /*blocks_per_stage=*/1, /*base_channels=*/16, /*num_classes=*/4,
      /*in_channels=*/1, rng);
  const int depth = chain.size();
  Tensor x = Tensor::randn(Shape{4, 1, 16, 16}, rng);
  const std::vector<std::int32_t> labels{0, 2, 1, 3};
  const core::LossGradFn seed = [&](const Tensor& logits) {
    const ops::SoftmaxXentResult r = ops::softmax_xent_forward(logits, labels);
    return ops::softmax_xent_backward(r.probs, labels);
  };
  const std::string dir = "/tmp/edgetrain_bench_compress";
  std::filesystem::create_directories(dir);

  auto run_with = [&](const core::Schedule& schedule, core::SlotStore& store) {
    chain.zero_grad();
    chain.clear_saved();
    nn::LayerChainRunner runner(chain, nn::Phase::Train);
    runner.begin_pass();
    core::ScheduleExecutor executor;
    (void)executor.run(runner, schedule, x, seed, store);
    std::vector<Tensor> grads;
    for (const nn::ParamRef& p : chain.params()) {
      grads.push_back(p.grad->clone());
    }
    return grads;
  };
  auto max_err = [](const std::vector<Tensor>& a,
                    const std::vector<Tensor>& b) {
    float err = 0.0F;
    for (std::size_t i = 0; i < a.size(); ++i) {
      err = std::max(err, Tensor::max_abs_diff(a[i], b[i]));
    }
    return err;
  };

  std::vector<CodecTiming> rows;
  for (const core::SlotCodec codec : kCodecs) {
    core::disk::DiskRevolveOptions options;
    options.ram_slots = kRamSlots;
    options.overlap_io = true;
    options.spill_bytes_ratio = core::planning_bytes_ratio(codec);
    const core::disk::DiskRevolveSolver solver(depth, options);
    const core::Schedule schedule = solver.make_schedule();
    const int first_disk_slot = kRamSlots + 1;

    // Zero-latency RAM reference for this schedule (warm allocators too).
    persist::set_disk_latency_us(0);
    core::RamSlotStore ram(schedule.num_slots());
    (void)run_with(schedule, ram);
    const std::vector<Tensor> reference = run_with(schedule, ram);
    float ref_scale = 0.0F;
    for (const Tensor& t : reference) {
      for (std::int64_t i = 0; i < t.numel(); ++i) {
        ref_scale = std::max(ref_scale, std::abs(t.data()[i]));
      }
    }

    persist::set_disk_latency_us(latency_us);
    CodecTiming row{codec, 1e30, 1e30, 1.0, 0.0F};
    {
      core::DiskSlotStore store(schedule.num_slots(), first_disk_slot, dir,
                                codec);
      for (int repeat = 0; repeat < kRepeats; ++repeat) {
        const auto t0 = Clock::now();
        const std::vector<Tensor> grads = run_with(schedule, store);
        row.sync_ms = std::min(
            row.sync_ms,
            std::chrono::duration<double>(Clock::now() - t0).count() * 1e3);
        row.grad_err =
            std::max(row.grad_err, max_err(grads, reference) / ref_scale);
      }
      row.measured_ratio = store.measured_ratio();
    }
    {
      core::AsyncDiskSlotStoreOptions async_options;
      async_options.codec = codec;
      core::AsyncDiskSlotStore store(schedule.num_slots(), first_disk_slot,
                                     dir, async_options);
      for (int repeat = 0; repeat < kRepeats; ++repeat) {
        const auto t0 = Clock::now();
        const std::vector<Tensor> grads = run_with(schedule, store);
        row.async_ms = std::min(
            row.async_ms,
            std::chrono::duration<double>(Clock::now() - t0).count() * 1e3);
        row.grad_err =
            std::max(row.grad_err, max_err(grads, reference) / ref_scale);
      }
    }
    persist::set_disk_latency_us(0);
    rows.push_back(row);
  }
  return rows;
}

// --- the sparse bitmap axis (part of --compress) ---------------------------

/// Synthetic post-ReLU-like activation: `density` of the lanes carry
/// arbitrary positive magnitudes, the rest are exact +0.0f.
Tensor relu_like_activation(std::int64_t numel, double density,
                            std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<float> dist(0.0F, 1.0F);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  Tensor t = Tensor::zeros(Shape{numel});
  float* data = t.data();
  for (std::int64_t i = 0; i < numel; ++i) {
    data[i] = coin(rng) < density ? std::abs(dist(rng)) + 0.01F : 0.0F;
  }
  return t;
}

struct DensityRow {
  double density;
  double bitmap_ratio;
  double bitmap_fp16_ratio;
};

struct SparseCrossing {
  std::string model;
  double measured_ratio;   // achieved bitmap ratio at the probe density
  double rho_fp16;         // static 0.5 cast
  double rho_bitmap_plan;  // bitmap at its worst-case planning ratio (1.0)
  double rho_bitmap_meas;  // bitmap with measured per-slot ratios
};

double encoded_ratio(core::SlotCodec codec, const Tensor& act) {
  const std::vector<std::uint8_t> blob = core::codec::encode(codec, act);
  return static_cast<double>(blob.size()) /
         (static_cast<double>(act.numel()) * sizeof(float));
}

double crossing_rho(const core::MemoryPlanner& planner) {
  const core::PlanReport report = planner.report_for_device(kLimit);
  return report.fits_with_checkpointing
             ? report.min_rho_to_fit
             : std::numeric_limits<double>::infinity();
}

/// The dynamic-ratio story in numbers: what the bitmap codec actually
/// achieves as activations get denser, and what the planner's 2 GB
/// crossing becomes once it re-solves with the measured per-slot ratios
/// instead of the worst-case static bound. Returns nonzero when the
/// measured bitmap crossing fails to beat fp16 at 70% sparsity -- the
/// ISSUE's acceptance inequality, enforced here as in planner_test.
int run_sparse(bool quick) {
  const std::int64_t numel = quick ? (std::int64_t{1} << 14)
                                   : (std::int64_t{1} << 18);
  const std::vector<double> densities =
      quick ? std::vector<double>{0.0, 0.3, 0.7, 1.0}
            : std::vector<double>{0.0, 0.01, 0.05, 0.1, 0.2, 0.3, 0.4,
                                  0.5, 0.6, 0.7, 0.8, 0.9, 1.0};

  std::printf("--- sparse bitmap codec: achieved ratio vs density "
              "(%lld elems) ---\n",
              static_cast<long long>(numel));
  std::printf("%-10s %-12s %-12s\n", "density", "bitmap", "bitmap-fp16");
  std::vector<DensityRow> rows;
  for (const double density : densities) {
    const Tensor act = relu_like_activation(
        numel, density, static_cast<std::uint32_t>(100.0 * density) + 1);
    DensityRow row{density, encoded_ratio(core::SlotCodec::Bitmap, act),
                   encoded_ratio(core::SlotCodec::BitmapFp16, act)};
    std::printf("%-10.2f %-12.4f %-12.4f\n", row.density, row.bitmap_ratio,
                row.bitmap_fp16_ratio);
    rows.push_back(row);
  }

  // 2 GB crossings with measured per-slot ratios at the paper's regime:
  // >= 70%-sparse post-ReLU activations (density 0.3).
  const double probe_density = 0.3;
  const Tensor probe = relu_like_activation(numel, probe_density, 11);
  const double measured = encoded_ratio(core::SlotCodec::Bitmap, probe);

  std::printf("\n--- 2 GB crossings, measured bitmap vs static codecs "
              "(batch 8, image 500, %.0f%% sparse) ---\n",
              100.0 * (1.0 - probe_density));
  std::printf("%-16s %-10s %-12s %-14s %-14s\n", "model", "measured",
              "rho(fp16)", "rho(bitmap:1)", "rho(bitmap:meas)");
  std::vector<SparseCrossing> crossings;
  bool measured_beats_fp16 = true;
  for (const models::ResNetVariant v :
       {models::ResNetVariant::ResNet50, models::ResNetVariant::ResNet101,
        models::ResNetVariant::ResNet152}) {
    const models::ResNetMemoryModel mm(models::ResNetSpec::make(v));
    const models::LinearResNet linear =
        models::LinearResNet::from_resnet(mm, 500, 8);
    SparseCrossing row;
    row.model = linear.name;
    row.measured_ratio = measured;
    row.rho_fp16 = crossing_rho(core::MemoryPlanner(linear.to_chain_spec(
        core::planning_bytes_ratio(core::SlotCodec::Fp16))));
    row.rho_bitmap_plan = crossing_rho(core::MemoryPlanner(
        linear.to_chain_spec(core::planning_bytes_ratio(
            core::SlotCodec::Bitmap))));
    core::ChainSpec spec = linear.to_chain_spec(measured);
    spec.checkpoint_slot_ratios.assign(
        static_cast<std::size_t>(linear.depth - 1), measured);
    row.rho_bitmap_meas = crossing_rho(core::MemoryPlanner(spec));
    if (!(row.rho_bitmap_meas < row.rho_fp16)) measured_beats_fp16 = false;
    std::printf("%-16s %-10.4f %-12.3f %-14.3f %-14.3f\n", row.model.c_str(),
                row.measured_ratio, row.rho_fp16, row.rho_bitmap_plan,
                row.rho_bitmap_meas);
    crossings.push_back(std::move(row));
  }
  if (!measured_beats_fp16) {
    std::printf("FAIL: measured bitmap ratios must plan a strictly lower "
                "2 GB crossing than fp16 at 70%% sparsity\n");
    return 1;
  }

  if (auto report =
          bench::BenchReport::create("bench_fig1", "BENCH_sparse.json")) {
    bench::JsonWriter& json = report->json();
    json.field("elems", static_cast<long long>(numel));
    json.field("probe_density", probe_density, "%.2f");
    report->end_context();
    json.key("ratio_vs_density").begin_array();
    for (const DensityRow& row : rows) {
      json.begin_object()
          .field("density", row.density, "%.2f")
          .field("bitmap_ratio", row.bitmap_ratio, "%.4f")
          .field("bitmap_fp16_ratio", row.bitmap_fp16_ratio, "%.4f")
          .end_object();
    }
    json.end_array();
    json.key("crossings_2gb").begin_array();
    for (const SparseCrossing& row : crossings) {
      json.begin_object()
          .field("model", row.model)
          .field("measured_bitmap_ratio", row.measured_ratio, "%.4f")
          .field("min_rho_fp16", row.rho_fp16, "%.3f")
          .field("min_rho_bitmap_planning", row.rho_bitmap_plan, "%.3f")
          .field("min_rho_bitmap_measured", row.rho_bitmap_meas, "%.3f")
          .end_object();
    }
    json.end_array();
    report->close();
  }
  return 0;
}

int run_compress(bool quick) {
  const long env_latency_us = persist::disk_latency_us();
  const long latency_us = env_latency_us > 0 ? env_latency_us : 500;

  std::printf("--- slot-codec axis: peak memory vs rho per codec "
              "(batch 8, image 500) ---\n");
  const std::vector<CodecCurve> curves = compress_curves();
  std::printf("%-16s %-10s %-8s %-14s\n", "model", "codec", "ratio",
              "fits 2GB at");
  for (const CodecCurve& curve : curves) {
    if (std::isinf(curve.min_rho_fit_2gb)) {
      std::printf("%-16s %-10s %-8.2f %-14s\n", curve.model.c_str(),
                  core::to_string(curve.codec).c_str(), curve.planning_ratio,
                  "never");
    } else {
      std::printf("%-16s %-10s %-8.2f rho=%-10.3f\n", curve.model.c_str(),
                  core::to_string(curve.codec).c_str(), curve.planning_ratio,
                  curve.min_rho_fit_2gb);
    }
  }

  std::printf("\n--- spill wall-clock per codec (%ld us/op injected, %s) "
              "---\n",
              latency_us,
              env_latency_us > 0 ? "from environment" : "default");
  const std::vector<CodecTiming> rows = compress_wallclock(latency_us, quick);
  std::printf("%-12s %-12s %-12s %-14s %-10s\n", "codec", "sync ms",
              "async ms", "measured", "grad err");
  bool lossless_exact = true;
  for (const CodecTiming& row : rows) {
    std::printf("%-12s %-12.2f %-12.2f %-14.3f %-10.1e\n",
                core::to_string(row.codec).c_str(), row.sync_ms, row.async_ms,
                row.measured_ratio, static_cast<double>(row.grad_err));
    // None, Lossless and Bitmap are exact codecs; the fp16 casts are not.
    if (row.codec != core::SlotCodec::Fp16 &&
        row.codec != core::SlotCodec::BitmapFp16 && row.grad_err != 0.0F) {
      lossless_exact = false;
    }
  }
  if (!lossless_exact) {
    std::printf("FAIL: none/lossless/bitmap codecs must give bit-identical "
                "gradients\n");
    return 1;
  }

  if (auto report =
          bench::BenchReport::create("bench_fig1", "BENCH_compress.json")) {
    bench::JsonWriter& json = report->json();
    json.field("disk_latency_us", static_cast<long long>(latency_us));
    report->end_context();
    json.key("curves").begin_array();
    for (const CodecCurve& curve : curves) {
      json.begin_object()
          .field("model", curve.model)
          .field("codec", core::to_string(curve.codec))
          .field("planning_ratio", curve.planning_ratio, "%.2f");
      json.key("min_rho_fit_2gb");
      if (std::isinf(curve.min_rho_fit_2gb)) {
        json.value_null();
      } else {
        json.value(curve.min_rho_fit_2gb);
      }
      json.key("points").begin_array();
      for (const CurvePoint& point : curve.points) {
        json.begin_object()
            .field("rho", point.rho, "%.2f")
            .field("peak_mb", point.peak_mb, "%.1f")
            .end_object();
      }
      json.end_array().end_object();
    }
    json.end_array();
    json.key("wallclock").begin_array();
    for (const CodecTiming& row : rows) {
      json.begin_object()
          .field("codec", core::to_string(row.codec))
          .field("sync_ms", row.sync_ms, "%.4f")
          .field("async_ms", row.async_ms, "%.4f")
          .field("measured_ratio", row.measured_ratio, "%.4f")
          .field("grad_err", static_cast<double>(row.grad_err), "%.3e")
          .end_object();
    }
    json.end_array();
    report->close();
  }
  std::printf("\n");
  return run_sparse(quick);
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<models::ResNetMemoryModel> memory_models = [] {
    std::vector<models::ResNetMemoryModel> result;
    for (const models::ResNetVariant v : models::all_resnet_variants()) {
      result.emplace_back(models::ResNetSpec::make(v));
    }
    return result;
  }();

  const Panel panels[] = {
      {"a", 1, 224}, {"b", 8, 224}, {"c", 1, 500}, {"d", 8, 500}};

  std::printf(
      "Figure 1: peak memory vs recompute factor (Revolve optimal "
      "checkpointing)\n'*' = exceeds the 2 GB Waggle budget\n\n");
  for (const Panel& panel : panels) run_panel(panel, memory_models);

  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--hetero") == 0) {
      run_hetero(panels[3]);  // batch 8, image 500 (the hardest panel)
    } else if (std::strncmp(argv[i], "--compress", 10) == 0) {
      if (const int rc = run_compress(quick); rc != 0) return rc;
    }
  }
  return 0;
}
