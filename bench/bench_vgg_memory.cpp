// Extension experiment: why the paper's edge-training story is told with
// ResNets. VGG's parameter-heavy classifier makes its *fixed* training
// state (weights + grads + 2 Adam moments) consume ~99-107% of the 2 GB
// Waggle budget before a single activation is stored. Checkpointing only
// compresses activations; fixed state is untouchable. Every ResNet keeps
// fixed state under 45% of the budget, leaving real room to trade.
#include <cstdio>

#include "models/memory_model.hpp"
#include "models/vgg.hpp"

int main() {
  using namespace edgetrain::models;

  constexpr double kMiB = 1024.0 * 1024.0;
  std::printf("Fixed training state (weights+grads+2 Adam moments) vs the "
              "2 GB Waggle budget\n\n");
  std::printf("%-12s %-12s %-12s %-10s %-12s\n", "model", "params(M)",
              "fixed MB", "% of 2GB", "verdict");

  for (const VggVariant v : all_vgg_variants()) {
    const VggSpec spec = VggSpec::make(v);
    const double fixed =
        16.0 * static_cast<double>(spec.param_count());
    const double fraction = fixed / kWaggleMemoryBytes;
    std::printf("%-12s %-12.1f %-12.1f %-10.1f %-12s\n", spec.name().c_str(),
                static_cast<double>(spec.param_count()) / 1e6, fixed / kMiB,
                100.0 * fraction,
                fraction >= 1.0 ? "untrainable" : "no headroom");
  }
  for (const ResNetVariant v : all_resnet_variants()) {
    const ResNetMemoryModel model(ResNetSpec::make(v));
    const double fraction = model.fixed_bytes() / kWaggleMemoryBytes;
    std::printf("%-12s %-12.1f %-12.1f %-10.1f %-12s\n",
                model.spec().name().c_str(),
                static_cast<double>(model.spec().param_count()) / 1e6,
                model.fixed_bytes() / kMiB, 100.0 * fraction, "trainable");
  }
  std::printf("\ncheckpointing trades activation memory for compute; it "
              "cannot shrink fixed state.\nArchitecture choice is therefore "
              "the first edge-training decision -- and the paper's ResNet\n"
              "focus is the right one.\n");
  return 0;
}
