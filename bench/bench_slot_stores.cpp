// Ablation E10: checkpoint storage backends.
//
// Runs the same checkpointed training pass through three slot stores and
// reports checkpoint memory, disk traffic, and gradient error relative to
// full-precision RAM checkpoints:
//   ram    -- baseline (exact);
//   disk   -- every non-input slot spilled to files (exact, trades IO);
//   fp16 / int8 -- lossy checkpoint compression (2x / 4x memory saving).
#include <algorithm>
#include <cstdio>
#include <memory>
#include <random>

#include "core/executor.hpp"
#include "core/revolve.hpp"
#include "nn/chain_runner.hpp"
#include "nn/layers.hpp"

int main() {
  using namespace edgetrain;
  using core::QuantizedSlotStore;

  std::mt19937 rng(2024);
  nn::LayerChain chain;
  for (int i = 0; i < 10; ++i) {
    chain.push(std::make_unique<nn::Conv2d>(8, 8, 3, 1, 1, true, rng));
    chain.push(std::make_unique<nn::ReLU>());
  }
  Tensor x = Tensor::randn(Shape{2, 8, 14, 14}, rng);
  const core::Schedule schedule = core::revolve::make_schedule(chain.size(), 4);
  const double act_bytes = static_cast<double>(x.bytes());

  const core::LossGradFn seed = [](const Tensor& output) {
    return Tensor::full(output.shape(), 1.0F);
  };

  struct Run {
    std::vector<Tensor> grads;
    std::size_t store_resident = 0;
    std::size_t store_external = 0;
  };
  auto run_with = [&](core::SlotStore& store) {
    chain.zero_grad();
    chain.clear_saved();
    nn::LayerChainRunner runner(chain, nn::Phase::Train);
    runner.begin_pass();
    core::ScheduleExecutor executor;
    // Peak store occupancy happens mid-run; sample it via a wrapper would
    // complicate the bench -- report the per-slot cost instead: fill all
    // slots once after the run.
    (void)executor.run(runner, schedule, x, seed, store);
    Run run;
    for (const nn::ParamRef& p : chain.params()) {
      run.grads.push_back(p.grad->clone());
    }
    for (std::int32_t s = 0; s < schedule.num_slots(); ++s) store.put(s, x);
    run.store_resident = store.resident_bytes();
    run.store_external = store.external_bytes();
    return run;
  };

  core::RamSlotStore ram(schedule.num_slots());
  const Run reference = run_with(ram);
  float grad_scale = 0.0F;
  for (const Tensor& g : reference.grads) {
    grad_scale = std::max(grad_scale, g.max_abs());
  }

  auto report = [&](const char* name, const Run& run,
                    std::int64_t writes, std::int64_t reads) {
    float err = 0.0F;
    for (std::size_t i = 0; i < run.grads.size(); ++i) {
      err = std::max(err,
                     Tensor::max_abs_diff(run.grads[i], reference.grads[i]));
    }
    std::printf("%-8s %-12.1f %-12.1f %-10lld %-10lld %-12.2e\n", name,
                static_cast<double>(run.store_resident) / 1024.0,
                static_cast<double>(run.store_external) / 1024.0,
                static_cast<long long>(writes), static_cast<long long>(reads),
                static_cast<double>(err) / grad_scale);
  };

  std::printf("Checkpoint backends (chain of 20 steps, %d slots of %.1f KiB "
              "each; grad error relative to max |grad|)\n\n",
              schedule.num_slots(), act_bytes / 1024.0);
  std::printf("%-8s %-12s %-12s %-10s %-10s %-12s\n", "store", "RAM KiB",
              "disk KiB", "writes", "reads", "grad err");
  report("ram", reference, 0, 0);

  core::DiskSlotStore disk(schedule.num_slots(), 1, "/tmp");
  const Run spilled = run_with(disk);
  report("disk", spilled, disk.disk_writes(), disk.disk_reads());

  QuantizedSlotStore half(schedule.num_slots(),
                          QuantizedSlotStore::Precision::Half);
  report("fp16", run_with(half), 0, 0);

  QuantizedSlotStore int8(schedule.num_slots(),
                          QuantizedSlotStore::Precision::Int8);
  report("int8", run_with(int8), 0, 0);

  std::printf("\nfp16 halves and int8 quarters checkpoint RAM; disk spill "
              "frees all but one RAM slot at zero gradient error.\n");
  return 0;
}
