// Substrate throughput benchmarks (google-benchmark): GEMM, conv2d
// forward/backward, batch norm, and the thread-pool scaling that stands in
// for the Waggle node's 4+4 cores.
#include <benchmark/benchmark.h>

#include <random>

#include "tensor/ops.hpp"
#include "tensor/parallel.hpp"

namespace {

using namespace edgetrain;

void BM_Gemm(benchmark::State& state) {
  const auto n = state.range(0);
  std::mt19937 rng(1);
  Tensor a = Tensor::randn(Shape{n, n}, rng);
  Tensor b = Tensor::randn(Shape{n, n}, rng);
  Tensor c = Tensor::zeros(Shape{n, n});
  for (auto _ : state) {
    ops::gemm(false, false, n, n, n, 1.0F, a.data(), b.data(), 0.0F,
              c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_Conv2dForward(benchmark::State& state) {
  const auto channels = state.range(0);
  std::mt19937 rng(2);
  Tensor x = Tensor::randn(Shape{1, channels, 32, 32}, rng);
  Tensor w = Tensor::randn(Shape{channels, channels, 3, 3}, rng);
  const ops::ConvParams p{1, 1};
  for (auto _ : state) {
    Tensor y = ops::conv2d_forward(x, w, Tensor{}, p);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * channels * channels * 9 *
                          32 * 32);
}
BENCHMARK(BM_Conv2dForward)->Arg(8)->Arg(16)->Arg(32);

void BM_Conv2dBackward(benchmark::State& state) {
  const auto channels = state.range(0);
  std::mt19937 rng(3);
  Tensor x = Tensor::randn(Shape{1, channels, 32, 32}, rng);
  Tensor w = Tensor::randn(Shape{channels, channels, 3, 3}, rng);
  Tensor gy = Tensor::randn(Shape{1, channels, 32, 32}, rng);
  const ops::ConvParams p{1, 1};
  for (auto _ : state) {
    ops::Conv2dGrads grads = ops::conv2d_backward(gy, x, w, p, false);
    benchmark::DoNotOptimize(grads.grad_x.data());
  }
}
BENCHMARK(BM_Conv2dBackward)->Arg(8)->Arg(16)->Arg(32);

void BM_BatchNormForward(benchmark::State& state) {
  std::mt19937 rng(4);
  const std::int64_t c = state.range(0);
  Tensor x = Tensor::randn(Shape{4, c, 28, 28}, rng);
  Tensor gamma = Tensor::full(Shape{c}, 1.0F);
  Tensor beta = Tensor::zeros(Shape{c});
  Tensor rm = Tensor::zeros(Shape{c});
  Tensor rv = Tensor::full(Shape{c}, 1.0F);
  for (auto _ : state) {
    ops::BatchNormState s =
        ops::batchnorm2d_forward(x, gamma, beta, rm, rv, 0.1F, 1e-5F, false);
    benchmark::DoNotOptimize(s.y.data());
  }
}
BENCHMARK(BM_BatchNormForward)->Arg(16)->Arg(64);

// Thread scaling of the pool on an embarrassingly parallel GEMM: emulates
// little/big core counts of the Waggle node.
void BM_GemmThreads(benchmark::State& state) {
  ThreadPool::set_global_threads(static_cast<unsigned>(state.range(0)));
  std::mt19937 rng(5);
  const std::int64_t n = 192;
  Tensor a = Tensor::randn(Shape{n, n}, rng);
  Tensor b = Tensor::randn(Shape{n, n}, rng);
  Tensor c = Tensor::zeros(Shape{n, n});
  for (auto _ : state) {
    ops::gemm(false, false, n, n, n, 1.0F, a.data(), b.data(), 0.0F,
              c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
