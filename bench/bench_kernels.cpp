// Substrate throughput benchmarks (google-benchmark): GEMM (all transpose
// combinations), conv2d forward/backward, batch norm, and the thread-pool
// scaling that stands in for the Waggle node's 4+4 cores.
//
// Each compute benchmark exports a GFLOPS counter (rate over wall time, the
// honest metric when the pool keeps multiple threads busy). Besides the
// console table, a machine-readable copy of every run is written to
// BENCH_kernels.json in the working directory so perf regressions can be
// diffed across commits.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>
#include <random>

#include "bench_json.hpp"
#include "tensor/convert.hpp"
#include "tensor/ops.hpp"
#include "tensor/parallel.hpp"
#include "tensor/quant.hpp"

namespace {

using namespace edgetrain;

void set_flops(benchmark::State& state, double flops_per_iter) {
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * flops_per_iter));
  state.counters["GFLOPS"] =
      benchmark::Counter(flops_per_iter * static_cast<double>(state.iterations()) * 1e-9,
                         benchmark::Counter::kIsRate);
}

void BM_Gemm(benchmark::State& state) {
  const auto n = state.range(0);
  std::mt19937 rng(1);
  Tensor a = Tensor::randn(Shape{n, n}, rng);
  Tensor b = Tensor::randn(Shape{n, n}, rng);
  Tensor c = Tensor::zeros(Shape{n, n});
  for (auto _ : state) {
    ops::gemm(false, false, n, n, n, 1.0F, a.data(), b.data(), 0.0F,
              c.data());
    benchmark::DoNotOptimize(c.data());
  }
  set_flops(state, 2.0 * static_cast<double>(n) * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256)->Arg(512)->UseRealTime();

// The packed kernels specialise per transpose combination; benchmark each
// so a regression in one packing path shows up. Arg encodes (trans_a,
// trans_b) as 2*ta + tb.
void BM_GemmTrans(benchmark::State& state) {
  const bool ta = (state.range(0) & 2) != 0;
  const bool tb = (state.range(0) & 1) != 0;
  const std::int64_t n = 192;
  std::mt19937 rng(6);
  Tensor a = Tensor::randn(Shape{n, n}, rng);
  Tensor b = Tensor::randn(Shape{n, n}, rng);
  Tensor c = Tensor::zeros(Shape{n, n});
  for (auto _ : state) {
    ops::gemm(ta, tb, n, n, n, 1.0F, a.data(), b.data(), 0.0F, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  set_flops(state, 2.0 * static_cast<double>(n) * n * n);
}
BENCHMARK(BM_GemmTrans)->DenseRange(0, 3)->UseRealTime();

void BM_Conv2dForward(benchmark::State& state) {
  const auto channels = state.range(0);
  std::mt19937 rng(2);
  Tensor x = Tensor::randn(Shape{1, channels, 32, 32}, rng);
  Tensor w = Tensor::randn(Shape{channels, channels, 3, 3}, rng);
  const ops::ConvParams p{1, 1};
  for (auto _ : state) {
    Tensor y = ops::conv2d_forward(x, w, Tensor{}, p);
    benchmark::DoNotOptimize(y.data());
  }
  set_flops(state,
            2.0 * static_cast<double>(channels) * channels * 9 * 32 * 32);
}
BENCHMARK(BM_Conv2dForward)->Arg(8)->Arg(16)->Arg(32)->UseRealTime();

void BM_Conv2dBackward(benchmark::State& state) {
  const auto channels = state.range(0);
  std::mt19937 rng(3);
  Tensor x = Tensor::randn(Shape{1, channels, 32, 32}, rng);
  Tensor w = Tensor::randn(Shape{channels, channels, 3, 3}, rng);
  Tensor gy = Tensor::randn(Shape{1, channels, 32, 32}, rng);
  const ops::ConvParams p{1, 1};
  for (auto _ : state) {
    ops::Conv2dGrads grads = ops::conv2d_backward(gy, x, w, p, false);
    benchmark::DoNotOptimize(grads.grad_x.data());
  }
  // Backward = two GEMMs of the forward's shape (dX and dW).
  set_flops(state,
            4.0 * static_cast<double>(channels) * channels * 9 * 32 * 32);
}
BENCHMARK(BM_Conv2dBackward)->Arg(8)->Arg(16)->Arg(32)->UseRealTime();

void BM_BatchNormForward(benchmark::State& state) {
  std::mt19937 rng(4);
  const std::int64_t c = state.range(0);
  Tensor x = Tensor::randn(Shape{4, c, 28, 28}, rng);
  Tensor gamma = Tensor::full(Shape{c}, 1.0F);
  Tensor beta = Tensor::zeros(Shape{c});
  Tensor rm = Tensor::zeros(Shape{c});
  Tensor rv = Tensor::full(Shape{c}, 1.0F);
  for (auto _ : state) {
    ops::BatchNormState s =
        ops::batchnorm2d_forward(x, gamma, beta, rm, rv, 0.1F, 1e-5F, false);
    benchmark::DoNotOptimize(s.y.data());
  }
}
BENCHMARK(BM_BatchNormForward)->Arg(16)->Arg(64);

// Thread-count sweep arguments: powers of two up to this machine's
// hardware_concurrency, with hardware_concurrency itself always the last
// point. The same grid calib::calibrate() measures, so the JSON rows are
// directly comparable with a cached device profile.
void thread_sweep_args(benchmark::internal::Benchmark* bench) {
  const unsigned hw = std::max(1U, std::thread::hardware_concurrency());
  for (unsigned t = 1; t < hw; t *= 2) {
    bench->Arg(static_cast<std::int64_t>(t));
  }
  bench->Arg(static_cast<std::int64_t>(hw));
  bench->UseRealTime();
}

// Thread scaling of the pool on an embarrassingly parallel GEMM: emulates
// little/big core counts of the Waggle node.
void BM_GemmThreads(benchmark::State& state) {
  ThreadPool::set_global_threads(static_cast<unsigned>(state.range(0)));
  std::mt19937 rng(5);
  const std::int64_t n = 192;
  Tensor a = Tensor::randn(Shape{n, n}, rng);
  Tensor b = Tensor::randn(Shape{n, n}, rng);
  Tensor c = Tensor::zeros(Shape{n, n});
  for (auto _ : state) {
    ops::gemm(false, false, n, n, n, 1.0F, a.data(), b.data(), 0.0F,
              c.data());
    benchmark::DoNotOptimize(c.data());
  }
  ThreadPool::set_global_threads(0);  // restore the default pool
  set_flops(state, 2.0 * static_cast<double>(n) * n * n);
}
BENCHMARK(BM_GemmThreads)->Apply(thread_sweep_args);

// bf16 GEMM across the same thread grid, operands pre-rounded once (the
// steady-state shape: persistent bf16 weights). GFLOPS compares directly
// against BM_GemmThreads -- the quantized-teacher speedup in isolation.
void BM_GemmBf16(benchmark::State& state) {
  ThreadPool::set_global_threads(static_cast<unsigned>(state.range(0)));
  std::mt19937 rng(8);
  const std::int64_t n = 192;
  Tensor a = Tensor::randn(Shape{n, n}, rng);
  Tensor b = Tensor::randn(Shape{n, n}, rng);
  Tensor c = Tensor::zeros(Shape{n, n});
  std::vector<std::uint16_t> a16(static_cast<std::size_t>(n * n));
  std::vector<std::uint16_t> b16(static_cast<std::size_t>(n * n));
  convert::fp32_to_bf16(a.data(), a16.data(), n * n);
  convert::fp32_to_bf16(b.data(), b16.data(), n * n);
  for (auto _ : state) {
    ops::gemm_bf16(false, false, n, n, n, 1.0F, a16.data(), b16.data(), 0.0F,
                   c.data());
    benchmark::DoNotOptimize(c.data());
  }
  ThreadPool::set_global_threads(0);
  set_flops(state, 2.0 * static_cast<double>(n) * n * n);
}
BENCHMARK(BM_GemmBf16)->Apply(thread_sweep_args);

// int8 GEMM (s8 weights x u8 activations -> s32) across the thread grid.
// One MAC counts as 2 "flops" so the GFLOPS column compares directly with
// the fp32 rows.
void BM_GemmInt8(benchmark::State& state) {
  ThreadPool::set_global_threads(static_cast<unsigned>(state.range(0)));
  const std::int64_t n = 192;
  std::vector<std::int8_t> a8(static_cast<std::size_t>(n * n));
  std::vector<std::uint8_t> b8(static_cast<std::size_t>(n * n));
  for (std::size_t i = 0; i < a8.size(); ++i) {
    a8[i] = static_cast<std::int8_t>(static_cast<int>(i * 37 % 255) - 127);
    b8[i] = static_cast<std::uint8_t>(i * 101 % 256);
  }
  std::vector<std::int32_t> c32(static_cast<std::size_t>(n * n));
  for (auto _ : state) {
    quant::gemm_s8u8(n, n, n, a8.data(), b8.data(), /*zp_b=*/128, c32.data());
    benchmark::DoNotOptimize(c32.data());
  }
  ThreadPool::set_global_threads(0);
  set_flops(state, 2.0 * static_cast<double>(n) * n * n);
}
BENCHMARK(BM_GemmInt8)->Apply(thread_sweep_args);

// Same sweep for conv2d forward+backward: the thread point a training step
// actually runs at (and the probe calibrate() fits conv_gflops from).
void BM_ConvThreads(benchmark::State& state) {
  ThreadPool::set_global_threads(static_cast<unsigned>(state.range(0)));
  std::mt19937 rng(7);
  const std::int64_t c = 32;
  Tensor x = Tensor::randn(Shape{1, c, 32, 32}, rng);
  Tensor w = Tensor::randn(Shape{c, c, 3, 3}, rng);
  Tensor gy = Tensor::randn(Shape{1, c, 32, 32}, rng);
  const ops::ConvParams p{1, 1};
  for (auto _ : state) {
    Tensor y = ops::conv2d_forward(x, w, Tensor{}, p);
    ops::Conv2dGrads grads = ops::conv2d_backward(gy, x, w, p, true);
    benchmark::DoNotOptimize(y.data());
    benchmark::DoNotOptimize(grads.grad_x.data());
  }
  ThreadPool::set_global_threads(0);
  // Forward one GEMM-equivalent, backward two (dX, dW).
  set_flops(state, 6.0 * static_cast<double>(c) * c * 9 * 32 * 32);
}
BENCHMARK(BM_ConvThreads)->Apply(thread_sweep_args);

}  // namespace

// Custom main: report to the console as usual AND mirror every run into
// BENCH_kernels.json (machine-readable, git-ignored). Implemented by
// injecting the out-file flags ahead of the user's arguments, so an
// explicit --benchmark_out=... on the command line still wins.
//
// The JSON mirror is only produced by Release builds: committed BENCH
// baselines diffed across commits must never be polluted by -O0/sanitizer
// numbers, and the build type is recorded in the JSON context so a stray
// file can be audited after the fact.
int main(int argc, char** argv) {
  std::vector<char*> args;
  args.push_back(argv[0]);
  std::string out_flag = "--benchmark_out=BENCH_kernels.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (edgetrain::bench::release_json_allowed("bench_kernels",
                                             "BENCH_kernels.json")) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
    benchmark::AddCustomContext("edgetrain_build_type", "Release");
  } else {
    benchmark::AddCustomContext("edgetrain_build_type", "Debug");
  }
  for (int i = 1; i < argc; ++i) args.push_back(argv[i]);
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
