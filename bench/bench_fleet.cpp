// bench_fleet: the fleet-scale orchestration bench.
//
// Three measurements in one binary, the committed BENCH_fleet.json
// baseline:
//
//   1. end-to-end fleet: a discrete-event simulation of >= 10k Waggle
//      nodes (duty cycles, crashes, SD wear, snapshot rollbacks) feeding
//      its StudentDeltas into a REAL multi-threaded FleetServer in the
//      same process -- fleet convergence plus server counters;
//   2. peak ingest: producer threads slamming pre-generated deltas into
//      the server as fast as they can -- sustained reqs/s with sampled
//      p50/p99 ingest latency (the ">= 100k ingests/s" acceptance gate);
//   3. replay: the same fleet config run twice must produce the identical
//      event-trace CRC and final-state CRC, and the state CRC must be
//      invariant across driver thread counts.
//
// Usage: bench_fleet [--quick] [--nodes N] [--hours H] [--json PATH]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "fleet/fleet_sim.hpp"
#include "fleet/server.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using edgetrain::fleet::FleetConfig;
using edgetrain::fleet::FleetReport;
using edgetrain::fleet::FleetServer;
using edgetrain::fleet::ServerConfig;
using edgetrain::fleet::ServerStats;
using edgetrain::fleet::StudentDelta;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// DeltaSink adapter: every simulated upload becomes a real server ingest.
class ServerSink : public edgetrain::fleet::DeltaSink {
 public:
  explicit ServerSink(FleetServer& server) : server_(server) {}
  void accept(const StudentDelta& delta) override { server_.ingest(delta); }

 private:
  FleetServer& server_;
};

struct ThroughputResult {
  double reqs_per_second = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
  std::uint64_t total = 0;
  std::uint64_t backpressure_waits = 0;
};

/// Phase 2: peak ingest rate, decoupled from simulation speed.
ThroughputResult run_throughput(unsigned producers,
                                std::uint64_t deltas_per_producer,
                                std::uint32_t fleet_nodes) {
  ServerConfig config;
  config.shards = 64;
  config.merge_threads = 4;
  config.queue_capacity = 8192;
  config.latency_sample_every = 32;
  FleetServer server(config);

  // Pre-generate each producer's stream: distinct node ranges, strictly
  // monotone per-node sequence numbers (no dedup drops on purpose).
  std::vector<std::vector<StudentDelta>> streams(producers);
  const std::uint32_t nodes_per_producer =
      std::max<std::uint32_t>(fleet_nodes / std::max(producers, 1U), 1);
  for (unsigned p = 0; p < producers; ++p) {
    auto& stream = streams[p];
    stream.resize(deltas_per_producer);
    for (std::uint64_t i = 0; i < deltas_per_producer; ++i) {
      StudentDelta& delta = stream[i];
      delta.node = p * nodes_per_producer +
                   static_cast<std::uint32_t>(i % nodes_per_producer);
      delta.seq = i / nodes_per_producer + 1;
      delta.samples = 10;
      delta.loss_milli = 300;
      for (std::size_t k = 0; k < edgetrain::fleet::kDeltaComponents; ++k) {
        delta.weights[k] = static_cast<std::int32_t>((i + k) % 97) - 48;
      }
    }
  }

  const auto start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(producers);
  for (unsigned p = 0; p < producers; ++p) {
    threads.emplace_back([&server, &stream = streams[p]] {
      for (const StudentDelta& delta : stream) server.ingest(delta);
    });
  }
  for (std::thread& thread : threads) thread.join();
  const double produce_seconds = seconds_since(start);
  server.stop();

  const ServerStats stats = server.stats();
  ThroughputResult result;
  result.total = stats.ingested;
  result.reqs_per_second =
      produce_seconds > 0.0 ? static_cast<double>(stats.ingested) /
                                  produce_seconds
                            : 0.0;
  result.p50_us = stats.p50_ingest_us;
  result.p99_us = stats.p99_ingest_us;
  result.max_us = stats.max_ingest_us;
  result.backpressure_waits = stats.backpressure_waits;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::uint32_t nodes = 20000;
  double hours = 24.0;
  std::string json_path = "BENCH_fleet.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--nodes") == 0 && i + 1 < argc) {
      nodes = static_cast<std::uint32_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--hours") == 0 && i + 1 < argc) {
      hours = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_fleet [--quick] [--nodes N] [--hours H] "
                   "[--json PATH]\n");
      return 2;
    }
  }
  if (quick) {
    nodes = std::min<std::uint32_t>(nodes, 10000);
    hours = std::min(hours, 2.0);
  }

  FleetConfig config;
  config.num_nodes = nodes;
  config.horizon_seconds = hours * 3600.0;
  config.sync_interval_seconds = 300.0;
  config.seed = 42;
  const unsigned driver_threads = 4;

  std::printf("bench_fleet: %u nodes, %.1fh horizon, sync every %.0fs, "
              "%u driver threads\n",
              config.num_nodes, hours, config.sync_interval_seconds,
              driver_threads);

  // ---- Phase 1: fleet simulation against a live server --------------------
  ServerConfig server_config;
  server_config.shards = 64;
  server_config.merge_threads = 4;
  FleetServer server(server_config);
  ServerSink sink(server);

  const auto sim_start = Clock::now();
  const FleetReport report = run_fleet(config, &sink, driver_threads);
  server.stop();
  const double sim_seconds = seconds_since(sim_start);
  const ServerStats sim_stats = server.stats();
  const edgetrain::fleet::FleetAggregate aggregate = server.aggregate();

  const double sim_rate =
      sim_seconds > 0.0 ? static_cast<double>(report.deltas_emitted) /
                              sim_seconds
                        : 0.0;
  std::printf(
      "  fleet: %llu events, %llu deltas in %.2fs (%.0f deltas/s wall)\n",
      static_cast<unsigned long long>(report.events_dispatched),
      static_cast<unsigned long long>(report.deltas_emitted), sim_seconds,
      sim_rate);
  std::printf("  fleet: %llu steps done, %llu wasted (%.2f%%), %llu crashes, "
              "%u nodes worn out\n",
              static_cast<unsigned long long>(report.steps_done),
              static_cast<unsigned long long>(report.steps_wasted),
              report.steps_done + report.steps_wasted > 0
                  ? 100.0 * static_cast<double>(report.steps_wasted) /
                        static_cast<double>(report.steps_done +
                                            report.steps_wasted)
                  : 0.0,
              static_cast<unsigned long long>(report.crashes),
              report.worn_out_nodes);
  std::printf("  fleet: mean accuracy %.3f, %.1f%% of nodes converged\n",
              report.mean_accuracy, 100.0 * report.converged_fraction);
  std::printf("  server: merged %llu deltas from %llu nodes, mean loss %.3f, "
              "%llu dup drops\n",
              static_cast<unsigned long long>(aggregate.deltas),
              static_cast<unsigned long long>(aggregate.nodes_seen),
              aggregate.mean_loss(),
              static_cast<unsigned long long>(sim_stats.duplicate_drops));

  bool ok = true;
  if (aggregate.deltas != report.deltas_emitted) {
    std::fprintf(stderr,
                 "error: server merged %llu deltas but the fleet emitted "
                 "%llu (lost or double-counted)\n",
                 static_cast<unsigned long long>(aggregate.deltas),
                 static_cast<unsigned long long>(report.deltas_emitted));
    ok = false;
  }

  // ---- Phase 2: peak ingest throughput ------------------------------------
  const unsigned producers = 4;
  const std::uint64_t per_producer = quick ? 250000 : 1000000;
  const ThroughputResult peak = run_throughput(producers, per_producer, nodes);
  std::printf("  peak ingest: %.0f reqs/s over %llu deltas "
              "(p50 %.1fus, p99 %.1fus, max %.0fus, %llu backpressure "
              "waits)\n",
              peak.reqs_per_second,
              static_cast<unsigned long long>(peak.total), peak.p50_us,
              peak.p99_us, peak.max_us,
              static_cast<unsigned long long>(peak.backpressure_waits));
  if (peak.reqs_per_second < 100000.0) {
    std::fprintf(stderr, "error: peak ingest %.0f reqs/s below the 100k "
                 "acceptance floor\n",
                 peak.reqs_per_second);
    ok = false;
  }

  // ---- Phase 3: deterministic replay --------------------------------------
  FleetConfig replay_config = config;
  replay_config.num_nodes = std::min<std::uint32_t>(nodes, 2000);
  replay_config.horizon_seconds = std::min(config.horizon_seconds, 7200.0);
  const FleetReport first = run_fleet(replay_config, nullptr, 2);
  const FleetReport second = run_fleet(replay_config, nullptr, 2);
  const FleetReport other_threads = run_fleet(replay_config, nullptr, 7);
  const bool replay_ok = first.trace_crc == second.trace_crc &&
                         first.state_crc == second.state_crc;
  const bool threads_ok = first.state_crc == other_threads.state_crc;
  std::printf("  replay: trace/state reproducible: %s; state invariant "
              "across driver threads: %s\n",
              replay_ok ? "yes" : "NO", threads_ok ? "yes" : "NO");
  if (!replay_ok || !threads_ok) {
    std::fprintf(stderr, "error: determinism contract violated\n");
    ok = false;
  }

  // ---- Committed baseline --------------------------------------------------
  auto bench = edgetrain::bench::BenchReport::create("bench_fleet", json_path);
  if (bench) {
    auto& json = bench->json();
    json.field("num_nodes", static_cast<long long>(config.num_nodes));
    json.field("horizon_hours", hours, "%.2f");
    json.field("sync_interval_seconds", config.sync_interval_seconds, "%.0f");
    json.field("driver_threads", static_cast<long long>(driver_threads));
    json.field("quick", quick);
    bench->end_context();

    json.key("fleet").begin_object();
    json.field("events_dispatched",
               static_cast<unsigned long long>(report.events_dispatched));
    json.field("deltas_emitted",
               static_cast<unsigned long long>(report.deltas_emitted));
    json.field("steps_done", static_cast<unsigned long long>(report.steps_done));
    json.field("steps_wasted",
               static_cast<unsigned long long>(report.steps_wasted));
    json.field("crashes", static_cast<unsigned long long>(report.crashes));
    json.field("torn_snapshots",
               static_cast<unsigned long long>(report.torn_snapshots));
    json.field("sd_writes", static_cast<unsigned long long>(report.sd_writes));
    json.field("worn_out_nodes", static_cast<long long>(report.worn_out_nodes));
    json.field("step_seconds", report.step_seconds, "%.4f");
    json.field("mean_accuracy", report.mean_accuracy, "%.4f");
    json.field("converged_fraction", report.converged_fraction, "%.4f");
    json.field("sim_wall_seconds", sim_seconds, "%.3f");
    json.field("sim_deltas_per_second", sim_rate, "%.0f");
    json.end_object();

    json.key("server").begin_object();
    json.field("merged_deltas",
               static_cast<unsigned long long>(aggregate.deltas));
    json.field("nodes_seen",
               static_cast<unsigned long long>(aggregate.nodes_seen));
    json.field("samples", static_cast<unsigned long long>(aggregate.samples));
    json.field("mean_loss", aggregate.mean_loss(), "%.4f");
    json.field("duplicate_drops",
               static_cast<unsigned long long>(sim_stats.duplicate_drops));
    json.field("no_lost_deltas", aggregate.deltas == report.deltas_emitted);
    json.end_object();

    json.key("peak_ingest").begin_object();
    json.field("producers", static_cast<long long>(producers));
    json.field("total_deltas", static_cast<unsigned long long>(peak.total));
    json.field("reqs_per_second", peak.reqs_per_second, "%.0f");
    json.field("p50_us", peak.p50_us, "%.2f");
    json.field("p99_us", peak.p99_us, "%.2f");
    json.field("max_us", peak.max_us, "%.1f");
    json.field("backpressure_waits",
               static_cast<unsigned long long>(peak.backpressure_waits));
    json.field("meets_100k_floor", peak.reqs_per_second >= 100000.0);
    json.end_object();

    json.key("replay").begin_object();
    json.field("reproducible", replay_ok);
    json.field("thread_count_invariant", threads_ok);
    json.field("trace_crc", static_cast<unsigned long long>(first.trace_crc));
    json.field("state_crc", static_cast<unsigned long long>(first.state_crc));
    json.end_object();

    bench->close();
  }

  return ok ? 0 : 1;
}
