// Reproduces Table II: memory (MB) at batch 1 over image sizes
// {224,350,500,650,1100,1500}. The paper scales activations exactly with
// image area; run with --spatial=area to replicate that methodology, or
// the default --spatial=exact for true conv arithmetic at each size.
#include <array>
#include <cstdio>

#include "table_common.hpp"

namespace {
constexpr std::array<int, 6> kImages{224, 350, 500, 650, 1100, 1500};
constexpr double kPaper[6][5] = {
    {230.05, 413.00, 620.27, 1027.21, 1410.62},
    {309.83, 534.96, 964.66, 1543.72, 2139.75},
    {449.21, 749.73, 1570.93, 2472.72, 3458.50},
    {639.07, 1039.08, 2387.54, 3682.00, 5161.76},
    {1496.10, 2346.95, 6073.06, 9208.30, 12961.96},
    {2628.70, 4075.07, 10944.42, 16515.11, 23277.27},
};
}  // namespace

int main(int argc, char** argv) {
  using namespace edgetrain;
  using namespace edgetrain::bench;

  const auto policy = parse_policy(argc, argv);
  const auto mode = parse_mode(argc, argv);
  const auto models = all_models(policy, mode);

  std::printf("Table II: training memory (MB) at batch 1 vs image size\n");
  std::printf("('*' = exceeds 2 GB; (%%) = deviation from the paper's value)\n\n");
  print_header("image_size");
  for (std::size_t row = 0; row < kImages.size(); ++row) {
    std::printf("%-12d", kImages[row]);
    for (std::size_t m = 0; m < models.size(); ++m) {
      const double ours = models[m].estimate(kImages[row], 1).total_mib();
      print_cell(ours, kPaper[row][m]);
    }
    std::printf("\n");
  }
  return 0;
}
