// Ablation bench for the paper's closing argument (Section VI): "a larger
// batch size will enable fewer batches per epoch [and] having a larger
// batch-size enables to increase the computational efficiency."
// Sweeps the batch size for each ResNet on the 2 GB Waggle budget: slots
// shrink as k grows (each checkpoint costs k * M_A), so rho rises -- but
// per-sample efficiency rises too. The relative time-per-sample column
// shows the net effect and the optimal batch.
#include <cstdio>
#include <vector>

#include "core/batch_tradeoff.hpp"
#include "models/linear_resnet.hpp"
#include "models/memory_model.hpp"

int main() {
  using namespace edgetrain;

  const std::vector<std::int64_t> batches{1, 2, 4, 8, 16, 32, 64};
  std::printf("Batch-size trade-off under the 2 GB Waggle budget "
              "(image 224)\n\n");

  for (const models::ResNetVariant v : models::all_resnet_variants()) {
    const models::ResNetMemoryModel mm(models::ResNetSpec::make(v));
    const models::LinearResNet linear =
        models::LinearResNet::from_resnet(mm, 224, 1);

    core::BatchTradeoffConfig config;
    config.depth = linear.depth;
    config.capacity_bytes = models::kWaggleMemoryBytes;
    config.fixed_bytes = linear.fixed_bytes;
    config.act_bytes_per_sample = linear.act_bytes_per_step;
    config.efficiency_exponent = 1.0;
    config.efficiency_half_batch = 4.0;
    const core::BatchTradeoffPlanner planner(config);

    std::printf("--- %s ---\n", linear.name.c_str());
    std::printf("%-7s %-9s %-8s %-9s %-10s %-14s\n", "batch", "slots", "rho",
                "eff", "peak MB", "t/sample(rel)");
    for (const core::BatchPoint& point : planner.sweep(batches)) {
      if (!point.feasible) {
        std::printf("%-7lld (does not fit)\n",
                    static_cast<long long>(point.batch));
        continue;
      }
      std::printf("%-7lld %-9d %-8.3f %-9.3f %-10.1f %-14.3f\n",
                  static_cast<long long>(point.batch), point.total_slots,
                  point.rho, point.efficiency,
                  point.peak_bytes / (1024.0 * 1024.0),
                  point.time_per_sample);
    }
    const core::BatchPoint best = planner.best(64);
    std::printf("optimal batch: %lld (rho %.3f, %.3f time/sample)\n\n",
                static_cast<long long>(best.batch), best.rho,
                best.time_per_sample);
  }
  std::printf("Without the efficiency term the optimum is batch 1; with it "
              "the optimum moves to 8-32 even though rho grows -- the "
              "paper's closing point, quantified.\n");
  return 0;
}
