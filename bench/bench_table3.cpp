// Reproduces Table III: memory (GB) at batch 8 over image sizes
// {224,350,500,650}. The paper notes batch 8 makes anything deeper than
// 50 layers infeasible even at the smallest image size -- the '*' markers
// show the same boundary here.
#include <array>
#include <cstdio>

#include "table_common.hpp"

namespace {
constexpr std::array<int, 4> kImages{224, 350, 500, 650};
constexpr double kPaperGb[4][5] = {
    {0.60, 0.98, 2.22, 3.41, 4.78},
    {1.22, 1.93, 4.90, 7.45, 10.47},
    {2.31, 3.60, 9.63, 14.69, 20.76},
    {3.79, 5.86, 15.99, 24.13, 34.06},
};
}  // namespace

int main(int argc, char** argv) {
  using namespace edgetrain;
  using namespace edgetrain::bench;

  const auto policy = parse_policy(argc, argv);
  const auto mode = parse_mode(argc, argv);
  const auto models = all_models(policy, mode);

  std::printf("Table III: training memory (GB) at batch 8 vs image size\n");
  std::printf("('*' = exceeds 2 GB; (%%) = deviation from the paper's value)\n\n");
  print_header("image_size");
  for (std::size_t row = 0; row < kImages.size(); ++row) {
    std::printf("%-12d", kImages[row]);
    for (std::size_t m = 0; m < models.size(); ++m) {
      const double ours_gb =
          models[m].estimate(kImages[row], 8).total_bytes() /
          (1024.0 * 1024.0 * 1024.0);
      const char marker = ours_gb > 2.0 ? '*' : ' ';
      std::printf(" %9.2f%c(%+5.1f%%)", ours_gb, marker,
                  100.0 * (ours_gb / kPaperGb[row][m] - 1.0));
    }
    std::printf("\n");
  }
  return 0;
}
