// Ablation: micro-batching (gradient accumulation) vs checkpointing as the
// memory-reduction lever for edge training.
//
// Both cut activation memory; their costs differ in kind:
//   * micro-batching re-runs NOTHING (work factor 1.0) but changes
//     batch-norm semantics (chunk statistics != batch statistics) and its
//     memory floor is one sample's full activation set;
//   * checkpointing preserves exact semantics bit-for-bit and reaches far
//     below one sample's activations, at a recompute premium rho.
// This bench measures both on the same physical network.
#include <cstdio>
#include <random>

#include "core/executor.hpp"
#include "core/revolve.hpp"
#include "models/small_nets.hpp"
#include "nn/chain_runner.hpp"
#include "nn/layers.hpp"
#include "nn/microbatch.hpp"
#include "tensor/ops.hpp"

int main() {
  using namespace edgetrain;

  constexpr std::int64_t kBatch = 16;
  std::mt19937 rng(99);
  // BN-free homogeneous chain: both techniques are exact here.
  nn::LayerChain chain = models::build_conv_chain(16, 8, rng);
  Tensor x = Tensor::randn(Shape{kBatch, 8, 16, 16}, rng);

  const core::LossGradFn seed_grad = [](const Tensor& output) {
    Tensor g = Tensor::full(output.shape(), 1.0F);
    g.scale_(1.0F / static_cast<float>(output.shape()[0]));
    return g;
  };

  // Checkpointing at various slot counts (full batch in one pass).
  std::printf("checkpointing (batch %lld in one pass):\n", (long long)kBatch);
  std::printf("%-8s %-10s %-12s %-10s\n", "slots", "rho", "peak KiB",
              "advances");
  for (const int s : {0, 1, 2, 4, 8, 15}) {
    chain.zero_grad();
    chain.clear_saved();
    nn::LayerChainRunner runner(chain, nn::Phase::Train);
    runner.begin_pass();
    core::ScheduleExecutor executor;
    const core::ExecutionResult result = executor.run(
        runner, core::revolve::make_schedule(chain.size(), s), x, seed_grad);
    std::printf("%-8d %-10.3f %-12.1f %-10lld\n", s,
                core::revolve::recompute_factor(chain.size(), s),
                static_cast<double>(result.peak_tracked_bytes -
                                    result.baseline_bytes) /
                    1024.0,
                static_cast<long long>(result.stats.advances));
  }

  // Micro-batching (full storage per chunk).
  std::vector<std::int32_t> labels;
  nn::LayerChain classifier_chain = [&] {
    std::mt19937 r2(100);
    nn::LayerChain c;
    c.push(std::make_unique<nn::Conv2d>(8, 8, 3, 1, 1, true, r2));
    c.push(std::make_unique<nn::ReLU>());
    c.push(std::make_unique<nn::Conv2d>(8, 8, 3, 1, 1, true, r2));
    c.push(std::make_unique<nn::ReLU>());
    c.push(std::make_unique<nn::GlobalAvgPool>());
    c.push(std::make_unique<nn::Linear>(8, 4, true, r2));
    return c;
  }();
  std::uniform_int_distribution<std::int32_t> dist(0, 3);
  for (std::int64_t i = 0; i < kBatch; ++i) labels.push_back(dist(rng));

  std::printf("\nmicro-batching (same effective batch, work factor 1.0):\n");
  std::printf("%-8s %-12s %-8s\n", "chunks", "peak KiB", "loss");
  for (const int m : {1, 2, 4, 8, 16}) {
    classifier_chain.zero_grad();
    const nn::MicrobatchResult result =
        nn::run_microbatched(classifier_chain, x, labels, m);
    std::printf("%-8d %-12.1f %-8.4f\n", m,
                static_cast<double>(result.peak_tracked_bytes -
                                    result.baseline_bytes) /
                    1024.0,
                result.loss);
  }
  std::printf(
      "\ntakeaway: micro-batching floors at one sample's activations and "
      "perturbs batch-norm;\ncheckpointing keeps exact semantics and goes "
      "below the floor at a bounded recompute premium.\n");
  return 0;
}
