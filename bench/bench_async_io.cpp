// Ablation E15: schedule-aware asynchronous checkpoint IO.
//
// Runs the same two-level (RAM + disk) checkpointed training pass through
// the synchronous DiskSlotStore and the write-behind/prefetching
// AsyncDiskSlotStore, under an injected per-spill-op disk latency that
// stands in for a Waggle node's SD card:
//
//   EDGETRAIN_DISK_LATENCY_US=<us per spill write/read>   (CI sets this)
//
// When the knob is unset the bench calibrates its own latency so the total
// injected IO per pass roughly equals the per-pass compute -- the regime
// the paper cares about (storage as slow as the recompute it should hide
// behind) and where overlap has the most to win. Gradients from both
// stores must be bit-identical to the RAM-store reference; the printed
// speedup is sync wall-clock / async wall-clock per pass. Every row also
// lands in BENCH_async_io.json for cross-commit diffing.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <random>
#include <vector>

#include "bench_json.hpp"
#include "core/async_slot_store.hpp"
#include "core/disk_revolve.hpp"
#include "core/executor.hpp"
#include "models/small_nets.hpp"
#include "nn/chain_runner.hpp"
#include "persist/io_latency.hpp"

int main() {
  using namespace edgetrain;
  using Clock = std::chrono::steady_clock;

  constexpr int kDepth = 12;
  constexpr std::int64_t kChannels = 32;
  constexpr int kRamSlots = 4;
  constexpr int kRepeats = 9;

  std::mt19937 rng(2026);
  nn::LayerChain chain = models::build_conv_chain(kDepth, kChannels, rng);
  // Small spatial size on purpose: the spill files are a few KiB, so the
  // injected latency dominates the real file IO and the comparison measures
  // the overlap, not this host's page cache.
  Tensor x = Tensor::randn(Shape{2, kChannels, 8, 8}, rng);
  const core::LossGradFn seed = [](const Tensor& output) {
    return Tensor::full(output.shape(), 1.0F);
  };

  core::disk::DiskRevolveOptions options;
  options.ram_slots = kRamSlots;
  options.write_cost = 2.0;
  options.read_cost = 2.0;
  options.overlap_io = true;
  const core::disk::DiskRevolveSolver solver(kDepth, options);
  const core::Schedule schedule = solver.make_schedule();
  const int first_disk_slot = kRamSlots + 1;

  const std::string dir = "/tmp/edgetrain_bench_async";
  std::filesystem::create_directories(dir);

  auto run_with = [&](core::SlotStore& store) {
    chain.zero_grad();
    chain.clear_saved();
    nn::LayerChainRunner runner(chain, nn::Phase::Train);
    runner.begin_pass();
    core::ScheduleExecutor executor;
    (void)executor.run(runner, schedule, x, seed, store);
    std::vector<Tensor> grads;
    for (const nn::ParamRef& p : chain.params()) {
      grads.push_back(p.grad->clone());
    }
    return grads;
  };
  auto max_err = [](const std::vector<Tensor>& a,
                    const std::vector<Tensor>& b) {
    float err = 0.0F;
    for (std::size_t i = 0; i < a.size(); ++i) {
      err = std::max(err, Tensor::max_abs_diff(a[i], b[i]));
    }
    return err;
  };

  // Capture the environment knob before the zero-latency reference and
  // probe passes override it.
  const long env_latency_us = persist::disk_latency_us();

  // Reference pass (RAM store, no injected latency): exact gradients and
  // the per-pass compute baseline the calibration targets.
  persist::set_disk_latency_us(0);
  core::RamSlotStore ram(schedule.num_slots());
  (void)run_with(ram);  // warm up allocators and the thread pool
  auto start = Clock::now();
  const std::vector<Tensor> reference = run_with(ram);
  const double compute_s =
      std::chrono::duration<double>(Clock::now() - start).count();

  // Count spill ops per pass with a zero-latency sync pass, then pick the
  // injected latency: env knob when set, otherwise total IO ~= compute.
  long spill_ops = 0;
  {
    core::DiskSlotStore probe(schedule.num_slots(), first_disk_slot, dir);
    const std::vector<Tensor> grads = run_with(probe);
    if (max_err(grads, reference) != 0.0F) {
      std::printf("FAIL: sync disk gradients differ from RAM reference\n");
      return 1;
    }
    spill_ops = probe.disk_writes() + probe.disk_reads();
  }
  long latency_us = env_latency_us;
  const bool calibrated = latency_us <= 0;
  if (calibrated) {
    // Per-op latency = 2x the average per-step compute: comfortably inside
    // the regime the claim is about (spill latency at least as large as
    // the compute it must hide behind -- an SD card next to a small conv),
    // with margin so run-to-run compute jitter cannot pull the ratio under
    // the floor on a noisy host.
    latency_us =
        std::max(1L, static_cast<long>(2.0 * compute_s * 1e6 / kDepth));
  }
  persist::set_disk_latency_us(latency_us);

  auto timed = [&](core::SlotStore& store, float* err) {
    double best_s = 1e30;
    for (int repeat = 0; repeat < kRepeats; ++repeat) {
      const auto t0 = Clock::now();
      const std::vector<Tensor> grads = run_with(store);
      best_s = std::min(
          best_s, std::chrono::duration<double>(Clock::now() - t0).count());
      *err = std::max(*err, max_err(grads, reference));
    }
    return best_s;
  };

  float sync_err = 0.0F;
  float async_err = 0.0F;
  core::DiskSlotStore sync_store(schedule.num_slots(), first_disk_slot, dir);
  const double sync_s = timed(sync_store, &sync_err);
  // Two staging slots per direction: one buffer absorbs the jitter the
  // other is paying for, so the sweep never stalls in put() and the
  // reversal always has the next restore in flight.
  core::AsyncDiskSlotStoreOptions async_options;
  async_options.write_staging_slots = 2;
  async_options.read_staging_slots = 2;
  core::AsyncDiskSlotStore async_store(schedule.num_slots(), first_disk_slot,
                                       dir, async_options);
  const double async_s = timed(async_store, &async_err);
  const double speedup = sync_s / async_s;

  std::printf("Async checkpoint IO (conv chain of %d steps, %d RAM slots, "
              "%d disk slots, %ld spill ops/pass)\n",
              kDepth, kRamSlots, solver.peak_disk_slots(), spill_ops);
  std::printf("injected latency: %ld us/op (%s); per-pass compute: %.1f ms\n\n",
              latency_us, calibrated ? "calibrated" : "from environment",
              compute_s * 1e3);
  std::printf("%-8s %-14s %-10s\n", "store", "ms/pass", "grad err");
  std::printf("%-8s %-14.2f %-10.1e\n", "sync", sync_s * 1e3,
              static_cast<double>(sync_err));
  std::printf("%-8s %-14.2f %-10.1e\n", "async", async_s * 1e3,
              static_cast<double>(async_err));
  std::printf("\nspeedup: %.2fx   (prefetch hits %lld, write-behind hits "
              "%lld, blocking reads %lld)\n",
              speedup, static_cast<long long>(async_store.prefetch_hits()),
              static_cast<long long>(async_store.write_behind_hits()),
              static_cast<long long>(async_store.blocking_reads()));

  if (sync_err != 0.0F || async_err != 0.0F) {
    std::printf("FAIL: spilled gradients are not bit-identical\n");
    return 1;
  }

  if (auto report = bench::BenchReport::create("bench_async_io",
                                               "BENCH_async_io.json")) {
    report->end_context();
    report->json()
        .field("depth", kDepth)
        .field("ram_slots", kRamSlots)
        .field("spill_ops_per_pass", static_cast<long long>(spill_ops))
        .field("latency_us_per_op", static_cast<long long>(latency_us))
        .field("latency_calibrated", calibrated)
        .field("compute_ms_per_pass", compute_s * 1e3, "%.4f")
        .field("sync_ms_per_pass", sync_s * 1e3, "%.4f")
        .field("async_ms_per_pass", async_s * 1e3, "%.4f")
        .field("speedup", speedup, "%.4f")
        .field("prefetch_hits",
               static_cast<long long>(async_store.prefetch_hits()))
        .field("write_behind_hits",
               static_cast<long long>(async_store.write_behind_hits()))
        .field("blocking_reads",
               static_cast<long long>(async_store.blocking_reads()));
    report->close();
  }
  return 0;
}
