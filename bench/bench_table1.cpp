// Reproduces Table I: "Memory requirement for each model to keep all
// weights and activations for the standard size of image (224x224)", MB,
// over batch sizes {1,3,5,10,30,50}. Cells marked '*' exceed the 2 GB
// Waggle budget (the paper's shading). Deviations against the paper's
// published values are printed per cell and collected in EXPERIMENTS.md.
//
// Flags: --policy=outputs|outputs+grads   (default outputs+grads)
//        --spatial=exact|area             (default exact)
#include <array>
#include <cstdio>

#include "table_common.hpp"

namespace {
constexpr std::array<std::int64_t, 6> kBatches{1, 3, 5, 10, 30, 50};
// Paper Table I values (MB), rows = batch, columns = ResNet{18..152}.
constexpr double kPaper[6][5] = {
    {230.05, 413.00, 620.27, 1027.21, 1410.62},
    {340.05, 580.42, 1091.11, 1732.33, 2405.14},
    {450.06, 747.85, 1561.94, 2437.45, 3399.67},
    {725.07, 1166.42, 2739.04, 4200.25, 5885.98},
    {1825.13, 2840.70, 7447.42, 11251.43, 15831.23},
    {2925.18, 4514.97, 12155.79, 18302.62, 25776.48},
};
}  // namespace

int main(int argc, char** argv) {
  using namespace edgetrain;
  using namespace edgetrain::bench;

  const auto policy = parse_policy(argc, argv);
  const auto mode = parse_mode(argc, argv);
  const auto models = all_models(policy, mode);

  std::printf("Table I: training memory (MB) at image 224x224 vs batch size\n");
  std::printf("('*' = exceeds 2 GB; (%%) = deviation from the paper's value)\n\n");
  print_header("batch_size");
  for (std::size_t b = 0; b < kBatches.size(); ++b) {
    std::printf("%-12lld", static_cast<long long>(kBatches[b]));
    for (std::size_t m = 0; m < models.size(); ++m) {
      const double ours = models[m].estimate(224, kBatches[b]).total_mib();
      print_cell(ours, kPaper[b][m]);
    }
    std::printf("\n");
  }

  std::printf("\nFixed (weights+grads+optimizer) MB per model: ");
  for (const auto& model : models) {
    std::printf(" %.2f", model.fixed_bytes() / kMiB);
  }
  std::printf("\nPer-sample activation MB at 224: ");
  for (const auto& model : models) {
    std::printf(" %.2f", model.activation_bytes(224, 1) / kMiB);
  }
  std::printf("\n");
  return 0;
}
