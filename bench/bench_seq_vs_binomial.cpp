// Section V reproduction: PyTorch checkpoint_sequential's memory formula
//   Memory(l, s) = (s-1) + (l - floor(l/s)(s-1))    [activation units]
// with its ~2*sqrt(l) lower bound, against optimal binomial checkpointing
// at the same work budget. Two sweeps:
//   1. memory vs segments for each LinearResNet depth, with the best
//      sequential plan, the 2*sqrt(l) bound, and Revolve's footprint at
//      the same recompute factor;
//   2. work (forward executions) at *equal memory*, showing binomial never
//      loses and wins decisively at small budgets.
#include <cmath>
#include <cstdio>

#include "core/periodic.hpp"
#include "core/revolve.hpp"
#include "core/sequential.hpp"

int main() {
  using namespace edgetrain::core;

  const int depths[] = {18, 34, 50, 101, 152};

  std::printf("checkpoint_sequential memory (activation units) vs segments\n\n");
  std::printf("%-8s", "l");
  for (const int s : {1, 2, 4, 8, 12, 16, 24}) std::printf(" s=%-6d", s);
  std::printf(" best(s)  2sqrt(l)  revolve@same-rho\n");
  for (const int l : depths) {
    std::printf("%-8d", l);
    for (const int s : {1, 2, 4, 8, 12, 16, 24}) {
      if (s <= l) {
        std::printf(" %-8lld",
                    static_cast<long long>(seq::memory_units(l, s)));
      } else {
        std::printf(" %-8s", "-");
      }
    }
    const seq::SegmentedPlan best = seq::best_plan(l);
    // Revolve at the same recompute factor as the best sequential plan.
    const int revolve_slots = revolve::min_free_slots_for_rho(l, best.rho);
    std::printf(" %-8lld %-9.1f %d units (rho=%.3f)\n",
                static_cast<long long>(best.memory_units),
                seq::memory_lower_bound(l), revolve_slots + 1, best.rho);
  }

  std::printf(
      "\nforward work at equal memory budget (units = forward executions)\n\n");
  std::printf("%-6s %-8s %-12s %-12s %-10s\n", "l", "mem", "sequential",
              "binomial", "ratio");
  for (const int l : depths) {
    for (const int segments : {2, 4, 8}) {
      const std::int64_t mem = seq::memory_units(l, segments);
      const std::int64_t seq_work = seq::forward_cost(l, segments);
      const std::int64_t bin_work =
          revolve::forward_cost(l, static_cast<int>(mem) - 1);
      std::printf("%-6d %-8lld %-12lld %-12lld %-10.3f\n", l,
                  static_cast<long long>(mem),
                  static_cast<long long>(seq_work),
                  static_cast<long long>(bin_work),
                  static_cast<double>(seq_work) /
                      static_cast<double>(bin_work));
    }
  }

  std::printf(
      "\nmemory at equal work budget rho=1.5 (binomial smashes the 2sqrt(l) "
      "wall)\n\n");
  std::printf("%-6s %-18s %-16s %-10s\n", "l", "sequential-best",
              "binomial@1.5", "2sqrt(l)");
  for (const int l : depths) {
    const seq::SegmentedPlan best = seq::best_plan(l);
    const int slots = revolve::min_free_slots_for_rho(l, 1.5);
    std::printf("%-6d %-18lld %-16d %-10.1f\n", l,
                static_cast<long long>(best.memory_units), slots + 1,
                seq::memory_lower_bound(l));
  }

  std::printf(
      "\nthree-way forward work at equal slot budget (l = 152):\n"
      "(sequential keeps its last segment live: its memory column shows the\n"
      " true footprint at the same slot count)\n\n");
  std::printf("%-8s %-10s %-12s %-12s %-12s %-14s\n", "slots", "mem(seq)",
              "sequential", "periodic", "binomial", "binomial rho");
  const int l = 152;
  for (const int s : {2, 4, 8, 12, 16, 24}) {
    const std::int64_t seq_work = seq::forward_cost(l, s + 1);
    const std::int64_t seq_mem = seq::memory_units(l, s + 1);
    const std::int64_t per_work = periodic::forward_cost(l, s);
    const std::int64_t bin_work = revolve::forward_cost(l, s);
    std::printf("%-8d %-10lld %-12lld %-12lld %-12lld %-14.3f\n", s + 1,
                static_cast<long long>(seq_mem),
                static_cast<long long>(seq_work),
                static_cast<long long>(per_work),
                static_cast<long long>(bin_work),
                revolve::recompute_factor(l, s));
  }
  return 0;
}
