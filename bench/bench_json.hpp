// Shared machine-readable bench output.
//
// Every bench that commits a BENCH_*.json baseline used to hand-roll the
// same three things: the fprintf JSON emission, the trailing-comma
// bookkeeping, and the Release-only policy ("non-Release numbers must
// never land in a committed BENCH_*.json"). This header is that logic,
// once:
//
//   * JsonWriter -- a minimal streaming JSON emitter (objects, arrays,
//     comma/indent bookkeeping, string escaping);
//   * BenchReport -- opens <path> and starts the root object with the
//     standard {"context": {"edgetrain_build_type": "Release", ...}}
//     block, or refuses (returns nullptr, prints why) in any non-Release
//     build, so a stray -O0/sanitizer run can never pollute a committed
//     baseline;
//   * release_json_allowed() -- the same gate for benches whose JSON is
//     produced by an external reporter (bench_kernels' google-benchmark
//     out-file).
//
// Header-only: bench binaries are leaf targets and share no library.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

namespace edgetrain::bench {

/// Streaming JSON writer: handles commas, two-space indentation and string
/// escaping; the caller supplies structure (begin/end calls must balance).
class JsonWriter {
 public:
  explicit JsonWriter(std::FILE* file) : file_(file) {}

  JsonWriter& begin_object() {
    open_value();
    std::fputc('{', file_);
    depth_.push_back(true);
    return *this;
  }
  JsonWriter& end_object() { return close_scope('}'); }
  JsonWriter& begin_array() {
    open_value();
    std::fputc('[', file_);
    depth_.push_back(true);
    return *this;
  }
  JsonWriter& end_array() { return close_scope(']'); }

  JsonWriter& key(const char* name) {
    comma_and_indent();
    write_string(name);
    std::fputs(": ", file_);
    pending_value_ = true;
    return *this;
  }

  JsonWriter& value(const char* v) {
    open_value();
    write_string(v);
    return *this;
  }
  JsonWriter& value(const std::string& v) { return value(v.c_str()); }
  /// @p fmt must consume exactly one double (the benches care about their
  /// historical precisions, so the format string stays caller-chosen).
  JsonWriter& value(double v, const char* fmt = "%.6g") {
    open_value();
    std::fprintf(file_, fmt, v);
    return *this;
  }
  JsonWriter& value(long long v) {
    open_value();
    std::fprintf(file_, "%lld", v);
    return *this;
  }
  JsonWriter& value(unsigned long long v) {
    open_value();
    std::fprintf(file_, "%llu", v);
    return *this;
  }
  JsonWriter& value(bool v) {
    open_value();
    std::fputs(v ? "true" : "false", file_);
    return *this;
  }
  JsonWriter& value_null() {
    open_value();
    std::fputs("null", file_);
    return *this;
  }

  JsonWriter& field(const char* k, const char* v) { return key(k).value(v); }
  JsonWriter& field(const char* k, const std::string& v) {
    return key(k).value(v);
  }
  JsonWriter& field(const char* k, double v, const char* fmt = "%.6g") {
    return key(k).value(v, fmt);
  }
  JsonWriter& field(const char* k, long long v) { return key(k).value(v); }
  JsonWriter& field(const char* k, unsigned long long v) {
    return key(k).value(v);
  }
  JsonWriter& field(const char* k, int v) {
    return key(k).value(static_cast<long long>(v));
  }
  JsonWriter& field(const char* k, bool v) { return key(k).value(v); }

 private:
  void write_string(const char* s) {
    std::fputc('"', file_);
    for (; *s != '\0'; ++s) {
      if (*s == '"' || *s == '\\') std::fputc('\\', file_);
      std::fputc(*s, file_);
    }
    std::fputc('"', file_);
  }
  /// Comma + newline + indent before a sibling; nothing before the first
  /// element of a scope or a value that follows its key.
  void comma_and_indent() {
    if (depth_.empty()) return;
    if (!depth_.back()) std::fputc(',', file_);
    depth_.back() = false;
    std::fputc('\n', file_);
    for (std::size_t i = 0; i < depth_.size(); ++i) {
      std::fputs("  ", file_);
    }
  }
  void open_value() {
    if (pending_value_) {
      pending_value_ = false;
    } else {
      comma_and_indent();
    }
  }
  JsonWriter& close_scope(char bracket) {
    const bool empty = depth_.back();
    depth_.pop_back();
    if (!empty) {
      std::fputc('\n', file_);
      for (std::size_t i = 0; i < depth_.size(); ++i) {
        std::fputs("  ", file_);
      }
    }
    std::fputc(bracket, file_);
    if (depth_.empty()) std::fputc('\n', file_);
    return *this;
  }

  std::FILE* file_;
  std::vector<bool> depth_;  // one flag per open scope: "still empty"
  bool pending_value_ = false;
};

/// The Release-only gate, for benches whose JSON comes from an external
/// reporter. Prints the standard refusal (naming the bench and the file it
/// is not writing) and returns false in non-Release builds.
inline bool release_json_allowed(const char* bench_name,
                                 const char* json_name) {
#ifdef NDEBUG
  (void)bench_name;
  (void)json_name;
  return true;
#else
  std::fprintf(stderr,
               "%s: non-Release build, refusing to write %s "
               "(console output only)\n",
               bench_name, json_name);
  return false;
#endif
}

/// One committed BENCH_*.json: root object + standard context, Release
/// builds only. Usage:
///
///   auto report = bench::BenchReport::create("bench_x", "BENCH_x.json");
///   if (report) {
///     report->json().field("extra_context", ...);   // optional
///     report->end_context();
///     report->json().key("rows").begin_array() ... .end_array();
///     report->close();                              // prints "wrote ..."
///   }
class BenchReport {
 public:
  [[nodiscard]] static std::unique_ptr<BenchReport> create(
      const char* bench_name, const std::string& path) {
    if (!release_json_allowed(bench_name, path.c_str())) return nullptr;
    std::FILE* file = std::fopen(path.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "%s: cannot open %s for writing\n", bench_name,
                   path.c_str());
      return nullptr;
    }
    return std::unique_ptr<BenchReport>(new BenchReport(file, path));
  }

  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;
  ~BenchReport() { close(); }

  [[nodiscard]] JsonWriter& json() { return writer_; }

  /// Ends the context object (call after any extra context fields).
  void end_context() { writer_.end_object(); }

  /// Ends the root object, flushes, announces the file. Idempotent.
  void close() {
    if (file_ == nullptr) return;
    writer_.end_object();
    std::fclose(file_);
    file_ = nullptr;
    std::printf("\nwrote %s\n", path_.c_str());
  }

 private:
  BenchReport(std::FILE* file, std::string path)
      : file_(file), path_(std::move(path)), writer_(file) {
    writer_.begin_object().key("context").begin_object().field(
        "edgetrain_build_type", "Release");
  }

  std::FILE* file_;
  std::string path_;
  JsonWriter writer_;
};

}  // namespace edgetrain::bench
