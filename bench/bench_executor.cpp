// Experiment E6: the model-vs-measurement bench. Runs a *physical*
// LinearResNet (a homogeneous conv chain where every step has identical
// activation size and cost) through Revolve schedules at every slot count
// and compares:
//   * measured peak tracked bytes   vs  planner's fixed + (s+1) * M_A
//   * measured wall time            vs  the strict work model
// This validates that the paper's analytic memory/work trade-off is what
// the executor actually delivers on real tensors.
#include <chrono>
#include <cstdio>
#include <random>

#include "core/executor.hpp"
#include "core/planner.hpp"
#include "core/revolve.hpp"
#include "core/sequential.hpp"
#include "models/small_nets.hpp"
#include "nn/chain_runner.hpp"

int main() {
  using namespace edgetrain;
  using Clock = std::chrono::steady_clock;

  constexpr int kDepth = 32;
  constexpr std::int64_t kChannels = 16;
  constexpr std::int64_t kSide = 24;

  std::mt19937 rng(4242);
  nn::LayerChain chain = models::build_conv_chain(kDepth, kChannels, rng);
  Tensor input = Tensor::randn(Shape{1, kChannels, kSide, kSide}, rng);
  const double act_bytes =
      static_cast<double>(kChannels * kSide * kSide) * 4.0;

  const core::LossGradFn seed = [](const Tensor& output) {
    return Tensor::full(output.shape(), 1.0F);
  };

  auto run_once = [&](const core::Schedule& schedule, double* seconds) {
    chain.zero_grad();
    chain.clear_saved();
    nn::LayerChainRunner runner(chain, nn::Phase::Train);
    runner.begin_pass();
    core::ScheduleExecutor executor;
    const auto start = Clock::now();
    const core::ExecutionResult result =
        executor.run(runner, schedule, input, seed);
    *seconds = std::chrono::duration<double>(Clock::now() - start).count();
    return result;
  };

  // Baseline: full storage.
  double full_seconds = 0.0;
  const core::ExecutionResult full =
      run_once(core::full_storage_schedule(kDepth), &full_seconds);
  const double full_peak =
      static_cast<double>(full.peak_tracked_bytes - full.baseline_bytes);

  std::printf("Physical LinearResNet: depth %d, activation %.1f KiB/step\n",
              kDepth, act_bytes / 1024.0);
  std::printf("full storage: peak %.1f KiB, %.1f ms\n\n",
              full_peak / 1024.0, full_seconds * 1e3);

  std::printf("%-6s %-10s %-12s %-12s %-10s %-12s %-10s %-10s\n", "slots",
              "rho(model)", "peak KiB", "model KiB", "peak/mod", "advances",
              "time ms", "t/t_full");
  for (const int s : {0, 1, 2, 3, 5, 8, 12, 16, 24, 31}) {
    const core::Schedule schedule = core::revolve::make_schedule(kDepth, s);
    double seconds = 0.0;
    const core::ExecutionResult result = run_once(schedule, &seconds);
    const double peak =
        static_cast<double>(result.peak_tracked_bytes - result.baseline_bytes);
    // Analytic model: (s+1) checkpoints + transient conv workspace; report
    // the checkpoint part only.
    const double model_bytes = (s + 1) * act_bytes;
    const double rho = core::revolve::recompute_factor(kDepth, s);
    std::printf("%-6d %-10.3f %-12.1f %-12.1f %-10.2f %-12lld %-10.1f %-10.2f\n",
                s, rho, peak / 1024.0, model_bytes / 1024.0,
                peak / model_bytes,
                static_cast<long long>(result.stats.advances), seconds * 1e3,
                seconds / full_seconds);
  }

  std::printf("\ncheckpoint_sequential for comparison:\n");
  std::printf("%-9s %-12s %-12s %-10s\n", "segments", "peak KiB",
              "formula KiB", "time ms");
  for (const int segments : {1, 2, 4, 6, 8, 16}) {
    const core::Schedule schedule = core::seq::make_schedule(kDepth, segments);
    double seconds = 0.0;
    const core::ExecutionResult result = run_once(schedule, &seconds);
    const double peak =
        static_cast<double>(result.peak_tracked_bytes - result.baseline_bytes);
    const double formula_bytes =
        static_cast<double>(core::seq::memory_units(kDepth, segments)) *
        act_bytes;
    std::printf("%-9d %-12.1f %-12.1f %-10.1f\n", segments, peak / 1024.0,
                formula_bytes / 1024.0, seconds * 1e3);
  }
  return 0;
}
