// Shared helpers for the Table I-III reproduction binaries.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "models/memory_model.hpp"

namespace edgetrain::bench {

inline constexpr double kMiB = 1024.0 * 1024.0;
inline constexpr double kLimitMb = 2048.0;

inline models::ActivationPolicy parse_policy(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--policy=outputs") {
      return models::ActivationPolicy::OutputsOnly;
    }
    if (arg == "--policy=outputs+grads") {
      return models::ActivationPolicy::OutputsPlusGradients;
    }
  }
  return models::ActivationPolicy::OutputsPlusGradients;
}

inline models::SpatialMode parse_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--spatial=exact") return models::SpatialMode::Exact;
    if (arg == "--spatial=area") return models::SpatialMode::AreaScaled;
  }
  return models::SpatialMode::Exact;
}

inline std::vector<models::ResNetMemoryModel> all_models(
    models::ActivationPolicy policy, models::SpatialMode mode) {
  std::vector<models::ResNetMemoryModel> result;
  for (const models::ResNetVariant v : models::all_resnet_variants()) {
    result.emplace_back(models::ResNetSpec::make(v), policy, mode);
  }
  return result;
}

/// Prints one table cell: value, 2 GB feasibility marker, and deviation
/// from the paper's value when available (paper < 0 means unknown).
inline void print_cell(double ours_mb, double paper_mb) {
  const char marker = ours_mb > kLimitMb ? '*' : ' ';
  if (paper_mb > 0.0) {
    std::printf(" %9.2f%c(%+5.1f%%)", ours_mb, marker,
                100.0 * (ours_mb / paper_mb - 1.0));
  } else {
    std::printf(" %9.2f%c        ", ours_mb, marker);
  }
}

inline void print_header(const char* row_label) {
  std::printf("%-12s", row_label);
  for (const models::ResNetVariant v : models::all_resnet_variants()) {
    std::printf(" %-19s", models::name_of(v).c_str());
  }
  std::printf("\n");
}

}  // namespace edgetrain::bench
