// Experiment E20: quantized teacher inference, measured end to end.
//
// The harvester's duty cycle is dominated by teacher labeling (pure
// inference); this bench measures what the bf16/int8 path buys on the
// running machine and GATES the claims by exit status:
//
//   * labeled-frames/sec of the fp32 teacher vs the fused-fp32, bf16 and
//     int8 QuantizedPatchClassifier (speedup gates: int8 >= 2.0x fp32,
//     bf16 >= 1.3x -- enforced in full Release runs, warn-only under
//     --quick where shared-CI wall clocks are indicative at best);
//   * label agreement with the fp32 teacher over a skew-swept eval set
//     (int8 top-1 flip rate <= 1%; logit drift reported for the
//     distillation path) -- always enforced;
//   * bit-determinism of the quantized kernels across thread counts, and
//     gemm_bf16 == fp32 gemm on pre-widened operands -- always enforced;
//   * bf16 master-weight student training: final-loss parity with the
//     fp32 run through the same Revolve schedule -- always enforced;
//   * harvest -> train end to end at int8: throughput plus label-purity
//     parity with the fp32 harvest (accuracy, not wall-clock, so it holds
//     on loaded machines) -- always enforced.
//
// Release builds mirror every number into BENCH_quant.json (the committed
// baseline; non-Release builds print the standard refusal and skip it).
// Flags: --quick  CI smoke: smaller workload, wall-clock gates warn-only.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "calib/calibrate.hpp"
#include "insitu/harvester.hpp"
#include "insitu/scene.hpp"
#include "insitu/teacher.hpp"
#include "tensor/convert.hpp"
#include "tensor/ops.hpp"
#include "tensor/parallel.hpp"
#include "tensor/quant.hpp"

namespace {

using namespace edgetrain;
using insitu::TeacherPrecision;

struct Gate {
  std::string name;
  double value = 0.0;
  double threshold = 0.0;
  bool higher_is_better = true;
  bool enforced = true;
  [[nodiscard]] bool pass() const {
    return higher_is_better ? value >= threshold : value <= threshold;
  }
};

struct Config {
  bool quick = false;
  int patch = 20;
  int classes = 4;
  std::int64_t channels = 8;
  int teacher_per_class = 150;
  int teacher_epochs = 8;
  int eval_patches = 512;
  int batch = 32;
  double min_sample_seconds = 0.2;
  int repeats = 3;
  std::int64_t stream_frames = 600;
  int student_per_class = 60;
  int student_epochs = 6;
};

Config quick_config() {
  Config c;
  c.quick = true;
  c.teacher_per_class = 60;
  c.teacher_epochs = 3;
  c.eval_patches = 128;
  c.min_sample_seconds = 0.02;
  c.repeats = 1;
  c.stream_frames = 150;
  c.student_per_class = 20;
  c.student_epochs = 2;
  return c;
}

insitu::SceneConfig scene_config() {
  insitu::SceneConfig scene;
  scene.frame_width = 128;
  scene.frame_height = 44;
  scene.object_size = 16;
  scene.num_classes = 4;
  scene.speed = 5.0F;
  scene.max_skew = 0.85F;
  scene.seed = 17;
  return scene;
}

/// Eval set sweeping the viewpoint skew the harvester actually labels:
/// x positions from mid-frame to the canonical right edge.
Tensor build_eval_batch(insitu::SceneSimulator& sim, const Config& cfg) {
  const auto n = static_cast<std::int64_t>(cfg.eval_patches);
  Tensor batch = Tensor::empty(
      Shape{n, 1, cfg.patch, cfg.patch});
  const auto width = static_cast<float>(sim.config().frame_width);
  const std::size_t per = static_cast<std::size_t>(cfg.patch) *
                          static_cast<std::size_t>(cfg.patch);
  for (int i = 0; i < cfg.eval_patches; ++i) {
    const auto label = static_cast<std::int32_t>(i % cfg.classes);
    const float frac =
        0.35F + 0.63F * static_cast<float>(i) /
                    static_cast<float>(std::max(1, cfg.eval_patches - 1));
    const std::vector<float> pixels =
        sim.skewed_patch(label, frac * width, cfg.patch);
    std::copy(pixels.begin(), pixels.end(),
              batch.data() + static_cast<std::size_t>(i) * per);
  }
  return batch;
}

/// Labeled patches per second: one "iteration" labels the whole eval set
/// in cfg.batch-sized predict_batch calls (the harvester's calling shape).
template <typename Label>
double labeled_per_sec(const Config& cfg, const Tensor& eval, Label&& label) {
  const std::int64_t n = eval.shape()[0];
  const std::int64_t pixels = eval.numel() / n;
  const double secs = calib::time_per_iteration_seconds(
      cfg.min_sample_seconds, cfg.repeats, [&] {
        for (std::int64_t at = 0; at < n; at += cfg.batch) {
          const std::int64_t count = std::min<std::int64_t>(cfg.batch, n - at);
          Tensor chunk = Tensor::empty(
              Shape{count, 1, cfg.patch, cfg.patch});
          std::memcpy(chunk.data(), eval.data() + at * pixels,
                      static_cast<std::size_t>(count * pixels) *
                          sizeof(float));
          const auto out = label(chunk);
          if (out.empty()) std::abort();
        }
      });
  return static_cast<double>(n) / secs;
}

struct Agreement {
  double flip_rate = 0.0;
  double mean_logit_drift = 0.0;
  double max_logit_drift = 0.0;
};

Agreement compare_logits(const Tensor& reference, const Tensor& other) {
  Agreement out;
  const std::int64_t rows = reference.shape()[0];
  const std::int64_t cols = reference.shape()[1];
  std::int64_t flips = 0;
  double drift_sum = 0.0;
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* ref = reference.data() + r * cols;
    const float* got = other.data() + r * cols;
    std::int64_t ref_best = 0;
    std::int64_t got_best = 0;
    for (std::int64_t j = 1; j < cols; ++j) {
      if (ref[j] > ref[ref_best]) ref_best = j;
      if (got[j] > got[got_best]) got_best = j;
    }
    if (ref_best != got_best) ++flips;
    for (std::int64_t j = 0; j < cols; ++j) {
      const double d = std::abs(static_cast<double>(ref[j]) -
                                static_cast<double>(got[j]));
      drift_sum += d;
      out.max_logit_drift = std::max(out.max_logit_drift, d);
    }
  }
  out.flip_rate =
      static_cast<double>(flips) / static_cast<double>(std::max<std::int64_t>(rows, 1));
  out.mean_logit_drift =
      drift_sum / static_cast<double>(std::max<std::int64_t>(rows * cols, 1));
  return out;
}

/// Bit-determinism of every quantized kernel across pool sizes, plus the
/// gemm_bf16 == fp32-gemm-on-widened-operands identity. Returns true when
/// all checks hold.
bool kernels_deterministic() {
  const std::int64_t n = 160;
  const std::size_t numel = static_cast<std::size_t>(n * n);
  std::mt19937 rng(23);
  Tensor a = Tensor::randn(Shape{n, n}, rng);
  Tensor b = Tensor::randn(Shape{n, n}, rng);
  std::vector<std::uint16_t> a16(numel);
  std::vector<std::uint16_t> b16(numel);
  convert::fp32_to_bf16(a.data(), a16.data(), n * n);
  convert::fp32_to_bf16(b.data(), b16.data(), n * n);
  std::vector<std::int8_t> a8(numel);
  std::vector<std::uint8_t> b8(numel);
  for (std::size_t i = 0; i < numel; ++i) {
    a8[i] = static_cast<std::int8_t>(static_cast<int>(i * 37 % 255) - 127);
    b8[i] = static_cast<std::uint8_t>(i * 101 % 256);
  }
  // fp32 gemm on the pre-widened bf16 operands: the oracle gemm_bf16 must
  // match bit for bit (same blocked kernel, same packing order).
  std::vector<float> widened_a(numel);
  std::vector<float> widened_b(numel);
  convert::bf16_to_fp32(a16.data(), widened_a.data(), n * n);
  convert::bf16_to_fp32(b16.data(), widened_b.data(), n * n);

  const unsigned hw = std::max(1U, std::thread::hardware_concurrency());
  const std::vector<unsigned> pools = {1U, 2U, hw};
  std::vector<float> ref_f(numel);
  std::vector<float> ref_bf(numel);
  std::vector<std::int32_t> ref_s32(numel);
  bool ok = true;
  for (std::size_t t = 0; t < pools.size(); ++t) {
    ThreadPool::set_global_threads(pools[t]);
    std::vector<float> c_f(numel);
    std::vector<float> c_bf(numel);
    std::vector<float> c_w(numel);
    std::vector<std::int32_t> c_s32(numel);
    ops::gemm(false, false, n, n, n, 1.0F, a.data(), b.data(), 0.0F,
              c_f.data());
    ops::gemm_bf16(false, false, n, n, n, 1.0F, a16.data(), b16.data(), 0.0F,
                   c_bf.data());
    ops::gemm(false, false, n, n, n, 1.0F, widened_a.data(), widened_b.data(),
              0.0F, c_w.data());
    quant::gemm_s8u8(n, n, n, a8.data(), b8.data(), 128, c_s32.data());
    if (std::memcmp(c_bf.data(), c_w.data(), numel * sizeof(float)) != 0) {
      ok = false;
    }
    if (t == 0) {
      ref_f = c_f;
      ref_bf = c_bf;
      ref_s32 = c_s32;
    } else {
      ok = ok &&
           std::memcmp(c_f.data(), ref_f.data(), numel * sizeof(float)) == 0 &&
           std::memcmp(c_bf.data(), ref_bf.data(), numel * sizeof(float)) ==
               0 &&
           std::memcmp(c_s32.data(), ref_s32.data(),
                       numel * sizeof(std::int32_t)) == 0;
    }
  }
  ThreadPool::set_global_threads(0);
  return ok;
}

struct HarvestRun {
  double frames_per_sec = 0.0;
  double purity = 0.0;
  long long images = 0;
  long long queries = 0;
  long long quantized_queries = 0;
};

HarvestRun run_harvest(insitu::PatchClassifier& teacher,
                       const std::vector<insitu::Frame>& frames,
                       const Config& cfg, TeacherPrecision precision) {
  insitu::HarvestConfig harvest;
  harvest.patch = cfg.patch;
  harvest.teacher_confidence = 0.8F;
  harvest.teacher_precision = precision;
  insitu::Harvester harvester(teacher, harvest);
  const auto start = std::chrono::steady_clock::now();
  for (const insitu::Frame& frame : frames) harvester.consume(frame);
  harvester.finish();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const insitu::HarvestStats stats = harvester.stats();
  HarvestRun run;
  run.frames_per_sec =
      static_cast<double>(frames.size()) / std::max(secs, 1e-9);
  run.purity = stats.label_purity;
  run.images = static_cast<long long>(stats.images_harvested);
  run.queries = static_cast<long long>(stats.teacher_queries);
  run.quantized_queries = static_cast<long long>(stats.quantized_queries);
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) cfg = quick_config();
  }
#ifdef NDEBUG
  const bool release = true;
#else
  const bool release = false;
#endif
  // Wall-clock ratio gates need a quiet machine and a Release build;
  // accuracy, determinism and parity gates hold anywhere.
  const bool enforce_wallclock = release && !cfg.quick;

  std::printf("bench_quant: quantized teacher inference (%s mode)\n\n",
              cfg.quick ? "quick" : "full");

  // --- teacher -------------------------------------------------------------
  insitu::SceneSimulator sim(scene_config());
  insitu::PatchDataset teacher_data(cfg.patch);
  for (int e = 0; e < cfg.teacher_per_class; ++e) {
    for (int k = 0; k < cfg.classes; ++k) {
      teacher_data.add(sim.canonical_patch(k, cfg.patch),
                       static_cast<std::int32_t>(k));
    }
  }
  insitu::PatchClassifier teacher(cfg.patch, cfg.classes, cfg.channels, 33);
  insitu::TrainOptions teacher_train;
  teacher_train.epochs = cfg.teacher_epochs;
  teacher_train.checkpoint_free_slots = -1;
  (void)teacher.train(teacher_data, teacher_train);

  const Tensor eval = build_eval_batch(sim, cfg);
  const std::int64_t calib_n = std::min<std::int64_t>(64, eval.shape()[0]);
  Tensor calibration = Tensor::empty(
      Shape{calib_n, 1, cfg.patch, cfg.patch});
  std::memcpy(calibration.data(), eval.data(),
              static_cast<std::size_t>(calibration.numel()) * sizeof(float));

  insitu::QuantizedPatchClassifier fused_fp32(teacher, calibration,
                                              TeacherPrecision::Fp32);
  insitu::QuantizedPatchClassifier quant_bf16(teacher, calibration,
                                              TeacherPrecision::Bf16);
  insitu::QuantizedPatchClassifier quant_int8(teacher, calibration,
                                              TeacherPrecision::Int8);

  // --- determinism ---------------------------------------------------------
  const bool deterministic = kernels_deterministic();
  std::printf("kernel determinism across thread pools: %s\n",
              deterministic ? "bitwise" : "MISMATCH");

  // --- accuracy ------------------------------------------------------------
  Tensor logits_ref = teacher.logits(eval);
  const Agreement fused_vs_ref = compare_logits(logits_ref, fused_fp32.logits(eval));
  const Agreement bf16_vs_ref = compare_logits(logits_ref, quant_bf16.logits(eval));
  const Agreement int8_vs_ref = compare_logits(logits_ref, quant_int8.logits(eval));
  std::printf("label flips vs fp32 teacher over %lld patches:\n",
              static_cast<long long>(eval.shape()[0]));
  std::printf("  fused fp32 %.3f%%  bf16 %.3f%%  int8 %.3f%%\n",
              100.0 * fused_vs_ref.flip_rate, 100.0 * bf16_vs_ref.flip_rate,
              100.0 * int8_vs_ref.flip_rate);
  std::printf("logit drift (mean / max): bf16 %.4f / %.4f, int8 %.4f / %.4f\n\n",
              bf16_vs_ref.mean_logit_drift, bf16_vs_ref.max_logit_drift,
              int8_vs_ref.mean_logit_drift, int8_vs_ref.max_logit_drift);

  // --- throughput ----------------------------------------------------------
  const double fps_fp32 = labeled_per_sec(
      cfg, eval, [&](const Tensor& chunk) { return teacher.predict_batch(chunk); });
  const double fps_fused = labeled_per_sec(
      cfg, eval,
      [&](const Tensor& chunk) { return fused_fp32.predict_batch(chunk); });
  const double fps_bf16 = labeled_per_sec(
      cfg, eval,
      [&](const Tensor& chunk) { return quant_bf16.predict_batch(chunk); });
  const double fps_int8 = labeled_per_sec(
      cfg, eval,
      [&](const Tensor& chunk) { return quant_int8.predict_batch(chunk); });
  std::printf("labeled patches/sec (batch %d):\n", cfg.batch);
  std::printf("  %-12s %10.0f\n", "fp32", fps_fp32);
  std::printf("  %-12s %10.0f  (%.2fx)\n", "fused fp32", fps_fused,
              fps_fused / fps_fp32);
  std::printf("  %-12s %10.0f  (%.2fx)\n", "bf16", fps_bf16,
              fps_bf16 / fps_fp32);
  std::printf("  %-12s %10.0f  (%.2fx)\n\n", "int8", fps_int8,
              fps_int8 / fps_fp32);

  // --- bf16 master-weight student training ---------------------------------
  insitu::PatchDataset student_data(cfg.patch);
  {
    const auto width = static_cast<float>(sim.config().frame_width);
    for (int e = 0; e < cfg.student_per_class; ++e) {
      for (int k = 0; k < cfg.classes; ++k) {
        const float frac =
            0.3F + 0.65F * static_cast<float>(e) /
                       static_cast<float>(std::max(1, cfg.student_per_class - 1));
        student_data.add(sim.skewed_patch(k, frac * width, cfg.patch),
                         static_cast<std::int32_t>(k));
      }
    }
  }
  insitu::TrainOptions student_train;
  student_train.epochs = cfg.student_epochs;
  student_train.checkpoint_free_slots = 2;  // through the Revolve schedule
  insitu::PatchClassifier student_fp32(cfg.patch, cfg.classes, cfg.channels, 71);
  insitu::PatchClassifier student_bf16(cfg.patch, cfg.classes, cfg.channels, 71);
  const insitu::TrainStats fp32_stats =
      student_fp32.train(student_data, student_train);
  student_train.bf16_compute = true;
  const insitu::TrainStats bf16_stats =
      student_bf16.train(student_data, student_train);
  const double loss_fp32 = static_cast<double>(fp32_stats.final_loss());
  const double loss_bf16 = static_cast<double>(bf16_stats.final_loss());
  const double loss_gap = std::abs(loss_bf16 - loss_fp32);
  const double loss_tol = std::max(0.05, 0.15 * loss_fp32);
  std::printf("bf16 student (Revolve schedule, fp32 masters): final loss "
              "%.4f vs fp32 %.4f (|delta| %.4f, tol %.4f)\n\n",
              loss_bf16, loss_fp32, loss_gap, loss_tol);

  // --- harvest -> train end to end -----------------------------------------
  std::vector<insitu::Frame> frames;
  frames.reserve(static_cast<std::size_t>(cfg.stream_frames));
  {
    insitu::SceneSimulator stream(scene_config());
    for (std::int64_t i = 0; i < cfg.stream_frames; ++i) {
      frames.push_back(stream.next_frame());
    }
  }
  const HarvestRun harvest_fp32 =
      run_harvest(teacher, frames, cfg, TeacherPrecision::Fp32);
  const HarvestRun harvest_int8 =
      run_harvest(teacher, frames, cfg, TeacherPrecision::Int8);
  const double purity_gap = std::abs(harvest_int8.purity - harvest_fp32.purity);
  std::printf("harvest end to end over %lld frames:\n",
              static_cast<long long>(cfg.stream_frames));
  std::printf("  fp32: %7.1f frames/sec, %lld images, purity %.3f\n",
              harvest_fp32.frames_per_sec, harvest_fp32.images,
              harvest_fp32.purity);
  std::printf("  int8: %7.1f frames/sec, %lld images, purity %.3f "
              "(%lld/%lld queries quantized)\n\n",
              harvest_int8.frames_per_sec, harvest_int8.images,
              harvest_int8.purity, harvest_int8.quantized_queries,
              harvest_int8.queries);

  // --- gates ---------------------------------------------------------------
  std::vector<Gate> gates;
  gates.push_back({"int8_speedup_vs_fp32", fps_int8 / fps_fp32, 2.0, true,
                   enforce_wallclock});
  gates.push_back({"bf16_speedup_vs_fp32", fps_bf16 / fps_fp32, 1.3, true,
                   enforce_wallclock});
  gates.push_back({"int8_label_flip_rate", int8_vs_ref.flip_rate, 0.01, false,
                   true});
  gates.push_back({"bf16_label_flip_rate", bf16_vs_ref.flip_rate, 0.01, false,
                   true});
  gates.push_back({"kernel_thread_determinism", deterministic ? 1.0 : 0.0,
                   1.0, true, true});
  gates.push_back({"bf16_student_loss_gap", loss_gap, loss_tol, false, true});
  gates.push_back({"harvest_purity_gap_int8", purity_gap, 0.03, false, true});
  gates.push_back({"harvest_quantized_queries",
                   static_cast<double>(harvest_int8.quantized_queries), 1.0,
                   true, true});

  bool failed = false;
  std::printf("%-28s %12s %12s %-9s %s\n", "gate", "value", "threshold",
              "enforced", "status");
  for (const Gate& gate : gates) {
    const bool pass = gate.pass();
    if (gate.enforced && !pass) failed = true;
    std::printf("%-28s %12.4f %12.4f %-9s %s\n", gate.name.c_str(), gate.value,
                gate.threshold, gate.enforced ? "yes" : "warn-only",
                pass ? "PASS" : (gate.enforced ? "FAIL" : "WARN"));
  }

  // --- JSON baseline -------------------------------------------------------
  if (auto report = bench::BenchReport::create("bench_quant",
                                               "BENCH_quant.json")) {
    report->json().field("mode", cfg.quick ? "quick" : "full");
    report->end_context();
    bench::JsonWriter& json = report->json();
    json.key("throughput").begin_object();
    json.field("batch", cfg.batch);
    json.field("eval_patches", static_cast<long long>(eval.shape()[0]));
    json.field("fp32_labeled_per_sec", fps_fp32, "%.1f");
    json.field("fused_fp32_labeled_per_sec", fps_fused, "%.1f");
    json.field("bf16_labeled_per_sec", fps_bf16, "%.1f");
    json.field("int8_labeled_per_sec", fps_int8, "%.1f");
    json.field("bf16_speedup", fps_bf16 / fps_fp32, "%.3f");
    json.field("int8_speedup", fps_int8 / fps_fp32, "%.3f");
    json.end_object();
    json.key("accuracy").begin_object();
    json.field("fused_fp32_flip_rate", fused_vs_ref.flip_rate, "%.5f");
    json.field("bf16_flip_rate", bf16_vs_ref.flip_rate, "%.5f");
    json.field("int8_flip_rate", int8_vs_ref.flip_rate, "%.5f");
    json.field("bf16_mean_logit_drift", bf16_vs_ref.mean_logit_drift, "%.5f");
    json.field("bf16_max_logit_drift", bf16_vs_ref.max_logit_drift, "%.5f");
    json.field("int8_mean_logit_drift", int8_vs_ref.mean_logit_drift, "%.5f");
    json.field("int8_max_logit_drift", int8_vs_ref.max_logit_drift, "%.5f");
    json.field("kernels_thread_deterministic", deterministic);
    json.end_object();
    json.key("bf16_student").begin_object();
    json.field("fp32_final_loss", loss_fp32, "%.5f");
    json.field("bf16_final_loss", loss_bf16, "%.5f");
    json.field("loss_gap", loss_gap, "%.5f");
    json.field("loss_tolerance", loss_tol, "%.5f");
    json.end_object();
    json.key("harvest").begin_object();
    json.field("frames", static_cast<long long>(cfg.stream_frames));
    json.field("fp32_frames_per_sec", harvest_fp32.frames_per_sec, "%.1f");
    json.field("int8_frames_per_sec", harvest_int8.frames_per_sec, "%.1f");
    json.field("fp32_images", harvest_fp32.images);
    json.field("int8_images", harvest_int8.images);
    json.field("fp32_purity", harvest_fp32.purity, "%.4f");
    json.field("int8_purity", harvest_int8.purity, "%.4f");
    json.field("int8_quantized_queries", harvest_int8.quantized_queries);
    json.end_object();
    json.key("gates").begin_array();
    for (const Gate& gate : gates) {
      json.begin_object();
      json.field("name", gate.name);
      json.field("value", gate.value, "%.5f");
      json.field("threshold", gate.threshold, "%.5f");
      json.field("enforced", gate.enforced);
      json.field("pass", gate.pass());
      json.end_object();
    }
    json.end_array();
    report->close();
  }

  if (failed) {
    std::printf("\nbench_quant: enforced gate FAILED\n");
    return 1;
  }
  std::printf("\nbench_quant: all enforced gates passed\n");
  return 0;
}
