// Experiment E8: the Section III qualitative claim, end to end.
// Teacher trained on canonical viewpoints; harvester auto-labels the
// simulated camera stream via tracking + confidence gating; student trains
// in situ under a Revolve checkpointing schedule. Prints harvesting
// statistics and accuracy per viewpoint bin (skew decreases left->right;
// the right edge is the canonical viewpoint the teacher knows).
// Flags: --distill  train the student with the teacher's soft labels mixed
//                    in (Hinton distillation; the paper cites Moonshine [7])
//         --small-student  use a half-width student (pairs with --distill)
#include <cstdio>
#include <cstring>

#include "insitu/student.hpp"

int main(int argc, char** argv) {
  using namespace edgetrain::insitu;

  ViewpointExperimentConfig config;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--distill") == 0) config.distill_student = true;
    if (std::strcmp(argv[i], "--small-student") == 0) {
      config.student_channels = 4;
    }
    if (std::strcmp(argv[i], "--lossy-storage") == 0) {
      config.harvest.lossy_storage = true;
    }
  }
  config.scene.frame_width = 128;
  config.scene.frame_height = 44;
  config.scene.object_size = 16;
  config.scene.num_classes = 4;
  config.scene.speed = 5.0F;
  config.scene.max_skew = 0.85F;
  config.scene.seed = 17;
  config.harvest.patch = 20;
  config.harvest.teacher_confidence = 0.8F;
  config.teacher_examples_per_class = 150;
  config.stream_frames = 1200;
  config.eval_bins = 6;
  config.eval_per_class_per_bin = 25;
  config.classifier_channels = 8;
  config.teacher_train.epochs = 8;
  config.student_train.epochs = 8;
  config.student_train.checkpoint_free_slots = 2;

  std::printf("Running the in-situ student-teacher experiment...\n\n");
  const ViewpointExperimentResult result = run_viewpoint_experiment(config);

  std::printf("Harvesting: %lld frames, %lld detections, %lld tracks "
              "(%lld labelled, %lld low-confidence, %lld too short)\n",
              static_cast<long long>(result.harvest.frames),
              static_cast<long long>(result.harvest.detections),
              static_cast<long long>(result.harvest.tracks_finished),
              static_cast<long long>(result.harvest.tracks_labelled),
              static_cast<long long>(result.harvest.tracks_rejected_confidence),
              static_cast<long long>(result.harvest.tracks_rejected_short));
  std::printf("Harvested dataset: %zu images, label purity %.1f%%\n",
              result.dataset_size, 100.0 * result.harvest.label_purity);
  if (result.harvest.mean_psnr_db > 0.0) {
    std::printf("Lossy SD storage: %.0f bytes/image (budget %u), "
                "%.1f dB PSNR\n",
                result.harvest.mean_image_bytes,
                config.harvest.bytes_per_image, result.harvest.mean_psnr_db);
  }
  std::printf("Student trained through a Revolve schedule: peak step "
              "footprint %.2f MB, %lld recompute advances\n\n",
              static_cast<double>(result.student_train.peak_step_bytes) /
                  (1024.0 * 1024.0),
              static_cast<long long>(result.student_train.total_advances));

  std::printf("%-10s %-8s %-16s %-16s\n", "x-center", "skew", "teacher acc",
              "student acc");
  for (const BinAccuracy& bin : result.bins) {
    std::printf("%-10.1f %-8.2f %-16.3f %-16.3f\n", bin.x_center, bin.skew,
                bin.teacher_accuracy, bin.student_accuracy);
  }
  std::printf("\noverall: teacher %.3f, student %.3f  (student %s)\n",
              result.teacher_overall, result.student_overall,
              result.student_overall > result.teacher_overall
                  ? "WINS off-angle as the paper predicts"
                  : "does not win -- tune the scenario");
  return 0;
}
