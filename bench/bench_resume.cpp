// Suspend/resume cost bench: snapshot capture/write and restore latency as
// a function of model size, for physical LinearResNets from edge-tiny to
// the largest chain the 2 GB node would train. The write path is the full
// crash-consistent protocol (serialize + CRC + temp + fsync + rename), so
// the numbers answer the deployment question directly: how much idle-window
// time does each cooperative suspend cost, and how long after power returns
// until training continues? Besides the console table, every row is written
// to BENCH_resume.json for cross-commit diffing.
#include <chrono>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "models/small_nets.hpp"
#include "persist/resumable.hpp"

int main() {
  using namespace edgetrain;
  using Clock = std::chrono::steady_clock;

  struct Config {
    const char* name;
    int depth;
    std::int64_t channels;
  };
  const std::vector<Config> configs = {
      {"conv8x8", 8, 8},
      {"conv16x16", 16, 16},
      {"conv24x32", 24, 32},
      {"conv32x48", 32, 48},
      {"conv32x64", 32, 64},
  };
  constexpr int kRepeats = 5;
  constexpr std::int64_t kSide = 16;

  struct Row {
    const char* name;
    std::int64_t params;
    std::uint64_t snapshot_bytes;
    double capture_ms;
    double write_ms;
    double restore_ms;
  };
  std::vector<Row> rows;

  for (const Config& config : configs) {
    std::mt19937 rng(17);
    nn::LayerChain chain =
        models::build_conv_chain(config.depth, config.channels, rng);

    persist::ResumableOptions options;
    options.snapshot_dir =
        std::string("/tmp/edgetrain_bench_resume/") + config.name;
    options.snapshot_every = 0;  // snapshots only when we ask
    options.trainer.strategy = nn::CheckpointStrategy::Revolve;
    options.trainer.free_slots = 3;
    persist::ResumableTrainer trainer(chain, options);

    // One real step so optimizer state is warm (momentum tensors non-zero).
    const persist::BatchFn batch = [&](std::mt19937& data_rng,
                                       std::uint64_t /*cursor*/) {
      persist::LabeledBatch b;
      b.x = Tensor::randn(Shape{1, config.channels, kSide, kSide}, data_rng);
      b.labels.assign(1, 0);
      return b;
    };
    (void)trainer.step(batch);

    Row row{};
    row.name = config.name;
    row.params = chain.param_count();
    for (int repeat = 0; repeat < kRepeats; ++repeat) {
      auto start = Clock::now();
      persist::TrainerState state = trainer.capture();
      row.capture_ms +=
          std::chrono::duration<double>(Clock::now() - start).count() * 1e3;

      start = Clock::now();
      trainer.suspend();
      row.write_ms +=
          std::chrono::duration<double>(Clock::now() - start).count() * 1e3;

      start = Clock::now();
      if (!trainer.resume()) return 1;
      row.restore_ms +=
          std::chrono::duration<double>(Clock::now() - start).count() * 1e3;
      row.snapshot_bytes = persist::encode_snapshot(state).size();
    }
    row.capture_ms /= kRepeats;
    row.write_ms /= kRepeats;
    row.restore_ms /= kRepeats;
    rows.push_back(row);
  }

  std::printf("Suspend/resume cost vs model size (mean of %d runs)\n",
              kRepeats);
  std::printf("%-10s %-10s %-12s %-12s %-10s %-12s\n", "model", "params",
              "snap KiB", "capture ms", "write ms", "restore ms");
  for (const Row& row : rows) {
    std::printf("%-10s %-10lld %-12.1f %-12.2f %-10.2f %-12.2f\n", row.name,
                static_cast<long long>(row.params),
                static_cast<double>(row.snapshot_bytes) / 1024.0,
                row.capture_ms, row.write_ms, row.restore_ms);
  }

  if (auto report =
          bench::BenchReport::create("bench_resume", "BENCH_resume.json")) {
    report->end_context();
    bench::JsonWriter& json = report->json();
    json.key("benchmarks").begin_array();
    for (const Row& row : rows) {
      json.begin_object()
          .field("name", row.name)
          .field("params", static_cast<long long>(row.params))
          .field("snapshot_bytes",
                 static_cast<unsigned long long>(row.snapshot_bytes))
          .field("capture_ms", row.capture_ms, "%.4f")
          .field("write_ms", row.write_ms, "%.4f")
          .field("restore_ms", row.restore_ms, "%.4f")
          .end_object();
    }
    json.end_array();
    report->close();
  }
  return 0;
}
