// Measured-cost planning payoff bench (ablation E17).
//
// The claim under test: on a cost-imbalanced chain, a schedule planned
// against *measured* per-step costs beats the classic unit-cost Revolve
// schedule in real wall-clock at the same checkpoint-slot budget, with
// bit-identical gradients. The workload is build_pyramid_chain: conv
// stages whose per-step forward cost drops ~4x at each stride-2 stage
// boundary, so unit-cost Revolve -- blind to the imbalance -- re-executes
// the expensive early steps, while the heterogeneous DP fed by
// calib::measure_chain shifts the recomputation into the cheap tail.
//
// The bench also exercises the calibration cache end to end: the device
// profile is fitted, written through the atomic-rename path, and read back
// (first run measures, second run must hit the cache).
//
// Flags: --quick  tiny iteration budget for CI smoke runs (numbers are
//                 noisier; the JSON is still only written by Release
//                 builds, so a smoke run on a Debug build writes nothing).
//
// Release builds write BENCH_calib.json: the fitted model, the measured
// per-step costs, both schedules' predicted cost (under the measured
// model) and real wall-clock, and the speedup.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include "analysis/interp.hpp"
#include "bench_json.hpp"
#include "calib/calibrate.hpp"
#include "calib/chain_costs.hpp"
#include "core/dynprog.hpp"
#include "core/executor.hpp"
#include "core/revolve.hpp"
#include "core/slot_store.hpp"
#include "models/small_nets.hpp"
#include "nn/chain_runner.hpp"

int main(int argc, char** argv) {
  using namespace edgetrain;
  using Clock = std::chrono::steady_clock;

  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  constexpr int kStages = 4;
  constexpr int kStepsPerStage = 4;
  constexpr std::int64_t kChannels = 24;
  constexpr std::int64_t kBatch = 2;
  constexpr std::int64_t kSide = 48;
  constexpr int kFreeSlots = 2;
  const int repeats = quick ? 3 : 7;
  const int depth = kStages * kStepsPerStage;

  // --- device profile: fit, cache, re-load ---------------------------------
  const std::string profile_dir = "/tmp/edgetrain_bench_calib";
  const std::string profile_path = profile_dir + "/device_profile.etcp";
  std::filesystem::remove_all(profile_dir);
  calib::CalibrationOptions cal_options =
      quick ? calib::quick_calibration() : calib::CalibrationOptions{};
  cal_options.scratch_dir = profile_dir + "/scratch";

  bool first_cached = true;
  bool second_cached = false;
  const calib::DeviceModel model =
      calib::load_or_calibrate(profile_path, cal_options, &first_cached);
  const calib::DeviceModel reloaded =
      calib::load_or_calibrate(profile_path, cal_options, &second_cached);
  if (first_cached || !second_cached || !(reloaded == model)) {
    std::printf("FAIL: profile cache did not round-trip\n");
    return 1;
  }

  // --- measure the chain ---------------------------------------------------
  std::mt19937 rng(2026);
  nn::LayerChain chain =
      models::build_pyramid_chain(kStages, kStepsPerStage, kChannels, rng);
  Tensor x = Tensor::randn(Shape{kBatch, kChannels, kSide, kSide}, rng);

  calib::MeasureOptions measure_options;
  measure_options.min_sample_seconds = quick ? 0.002 : 0.01;
  measure_options.repeats = quick ? 2 : 3;
  const calib::ChainCosts costs = measure_chain(chain, x, measure_options);
  if (!costs.valid()) {
    std::printf("FAIL: chain measurement produced an invalid ChainCosts\n");
    return 1;
  }

  // --- plan both schedules at the same slot budget -------------------------
  const core::Schedule unit_schedule =
      core::revolve::make_schedule(depth, kFreeSlots);
  const core::hetero::HeteroSolver solver(costs.forward_us, kFreeSlots);
  const core::Schedule measured_schedule = solver.make_schedule(kFreeSlots);

  const analysis::CostModel cost_model = calib::cost_model(costs, model);
  const double unit_predicted_us =
      analysis::interpret(unit_schedule, cost_model).facts.total_cost();
  const double measured_predicted_us =
      analysis::interpret(measured_schedule, cost_model).facts.total_cost();

  // --- execute both, timed, gradients compared -----------------------------
  const core::LossGradFn seed = [](const Tensor& output) {
    return Tensor::full(output.shape(), 1.0F);
  };
  auto run_with = [&](const core::Schedule& schedule) {
    chain.zero_grad();
    chain.clear_saved();
    core::RamSlotStore store(schedule.num_slots());
    nn::LayerChainRunner runner(chain, nn::Phase::Train);
    runner.begin_pass();
    core::ScheduleExecutor executor;
    (void)executor.run(runner, schedule, x, seed, store);
    std::vector<Tensor> grads;
    for (const nn::ParamRef& p : chain.params()) {
      grads.push_back(p.grad->clone());
    }
    return grads;
  };
  auto timed = [&](const core::Schedule& schedule) {
    double best_s = 1e30;
    for (int repeat = 0; repeat < repeats; ++repeat) {
      const auto t0 = Clock::now();
      (void)run_with(schedule);
      best_s = std::min(
          best_s, std::chrono::duration<double>(Clock::now() - t0).count());
    }
    return best_s;
  };

  const std::vector<Tensor> unit_grads = run_with(unit_schedule);
  const std::vector<Tensor> measured_grads = run_with(measured_schedule);
  float grad_err = 0.0F;
  for (std::size_t i = 0; i < unit_grads.size(); ++i) {
    grad_err = std::max(
        grad_err, Tensor::max_abs_diff(unit_grads[i], measured_grads[i]));
  }

  (void)run_with(unit_schedule);  // warm allocators and the thread pool
  const double unit_s = timed(unit_schedule);
  const double measured_s = timed(measured_schedule);
  const double speedup = unit_s / measured_s;

  // --- report --------------------------------------------------------------
  std::printf("Measured-cost planning vs unit-cost Revolve "
              "(pyramid chain: %d stages x %d steps, %lld ch, %d free "
              "slots)\n\n",
              kStages, kStepsPerStage,
              static_cast<long long>(kChannels), kFreeSlots);
  std::printf("per-step forward us:");
  for (const double us : costs.forward_us) std::printf(" %.0f", us);
  std::printf("\nbackward/forward ratio: %.2f\n\n", costs.backward_ratio());
  std::printf("%-10s %-16s %-14s\n", "schedule", "predicted us", "wall ms");
  std::printf("%-10s %-16.0f %-14.2f\n", "unit", unit_predicted_us,
              unit_s * 1e3);
  std::printf("%-10s %-16.0f %-14.2f\n", "measured", measured_predicted_us,
              measured_s * 1e3);
  std::printf("\nspeedup: %.3fx   grad err: %.1e\n", speedup,
              static_cast<double>(grad_err));

  if (grad_err != 0.0F) {
    std::printf("FAIL: schedules must give bit-identical gradients\n");
    return 1;
  }
  if (measured_predicted_us > unit_predicted_us) {
    std::printf("FAIL: measured-cost schedule predicted costlier than "
                "unit-cost under the measured model\n");
    return 1;
  }
  if (measured_s >= unit_s) {
    std::printf("FAIL: measured-cost schedule did not beat unit-cost "
                "wall-clock\n");
    return 1;
  }

  if (auto report =
          bench::BenchReport::create("bench_calib", "BENCH_calib.json")) {
    bench::JsonWriter& json = report->json();
    json.field("quick", quick);
    report->end_context();
    json.key("device_model").begin_object();
    json.key("thread_points").begin_array();
    for (const calib::ThreadPoint& p : model.points) {
      json.begin_object()
          .field("threads", p.threads)
          .field("gemm_gflops", p.gemm_gflops, "%.3f")
          .field("conv_gflops", p.conv_gflops, "%.3f")
          .end_object();
    }
    json.end_array();
    json.field("memcpy_gb_per_sec", model.memcpy_bytes_per_sec * 1e-9,
               "%.3f");
    json.field("disk_write_mb_per_sec",
               model.disk_write_bytes_per_sec * 1e-6, "%.3f");
    json.field("disk_read_mb_per_sec", model.disk_read_bytes_per_sec * 1e-6,
               "%.3f");
    json.field("disk_write_latency_us", model.disk_write_latency_us, "%.1f");
    json.field("disk_read_latency_us", model.disk_read_latency_us, "%.1f");
    json.field("profile_cache_hit_on_reload", second_cached);
    json.end_object();

    json.key("chain").begin_object();
    json.field("stages", kStages)
        .field("steps_per_stage", kStepsPerStage)
        .field("channels", static_cast<long long>(kChannels))
        .field("free_slots", kFreeSlots);
    json.key("step_forward_us").begin_array();
    for (const double us : costs.forward_us) json.value(us, "%.2f");
    json.end_array();
    json.field("backward_ratio", costs.backward_ratio(), "%.3f");
    json.end_object();

    json.key("schedules").begin_object();
    json.key("unit").begin_object();
    json.field("predicted_us", unit_predicted_us, "%.1f")
        .field("wall_ms", unit_s * 1e3, "%.4f")
        .end_object();
    json.key("measured").begin_object();
    json.field("predicted_us", measured_predicted_us, "%.1f")
        .field("wall_ms", measured_s * 1e3, "%.4f")
        .end_object();
    json.end_object();

    json.field("speedup", speedup, "%.4f");
    json.field("grad_max_abs_diff", static_cast<double>(grad_err), "%.1e");
    report->close();
  }
  return 0;
}
