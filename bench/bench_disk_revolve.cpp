// Extension experiment E9: two-level (RAM + SD card) checkpointing on the
// Waggle node. The paper cites INRIA's disk-revolve; here we quantify when
// spilling checkpoints to the SD card beats RAM-only Revolve for
// LinearResNet chains, using the Waggle device's measured-class IO rates
// to convert write/read latencies into forward-step units.
#include <cstdio>

#include "core/disk_revolve.hpp"
#include "core/revolve.hpp"
#include "edge/device.hpp"
#include "models/linear_resnet.hpp"
#include "models/memory_model.hpp"

int main() {
  using namespace edgetrain;

  const edge::EdgeDevice waggle = edge::EdgeDevice::waggle_odroid_xu4();
  std::printf(
      "Two-level checkpointing on %s (SD write %.0f MB/s, read %.0f MB/s)\n\n",
      waggle.name.c_str(), waggle.storage_write_mbps,
      waggle.storage_read_mbps);

  std::printf("%-14s %-6s %-6s %-10s %-10s %-10s %-10s %-10s\n", "model",
              "batch", "ram", "io-w", "io-r", "ram-only", "ram+disk",
              "disk-ckpts");
  for (const models::ResNetVariant v : models::all_resnet_variants()) {
    const models::ResNetSpec spec = models::ResNetSpec::make(v);
    const models::ResNetMemoryModel mm(spec);
    for (const std::int64_t batch : {1, 8}) {
      const models::LinearResNet linear =
          models::LinearResNet::from_resnet(mm, 224, batch);
      // One checkpoint = one boundary activation of the linear chain; one
      // forward step costs total MACs / depth.
      const auto costs = spec.chain_step_forward_costs(224, batch);
      double total_flops = 0.0;
      for (const double c : costs) total_flops += c;
      const double step_flops = total_flops / linear.depth;

      for (const int ram_slots : {1, 2, 4}) {
        core::disk::DiskRevolveOptions options;
        options.ram_slots = ram_slots;
        options.write_cost = waggle.disk_write_cost_units(
            linear.act_bytes_per_step, step_flops);
        options.read_cost = waggle.disk_read_cost_units(
            linear.act_bytes_per_step, step_flops);
        const core::disk::DiskRevolveSolver solver(linear.depth, options);
        const std::int64_t ram_only =
            core::revolve::forward_cost(linear.depth, ram_slots);
        std::printf("%-14s %-6lld %-6d %-10.2f %-10.2f %-10lld %-10.1f %-10d\n",
                    linear.name.c_str(), static_cast<long long>(batch),
                    ram_slots, options.write_cost, options.read_cost,
                    static_cast<long long>(ram_only), solver.forward_cost(),
                    solver.peak_disk_slots());
      }
    }
  }
  std::printf(
      "\n(io-w / io-r: one checkpoint's SD write/read in forward-step units;"
      "\n ram-only vs ram+disk: total schedule cost in the same units)\n");
  return 0;
}
