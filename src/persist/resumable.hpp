// edgetrain: suspend/resume training across process death.
//
// The paper schedules training into idle CPU windows of a node whose
// foreground duties always win and whose power can vanish mid-step, so a
// run is a sequence of short bursts separated by deaths and suspends.
// ResumableTrainer wraps nn::Trainer with the persist/ durability layer:
// it snapshots complete trainer state every N steps and on cooperative
// suspend() (idle window closing, see edge::IdleScheduler), and resume()
// restores the newest valid snapshot so the *subsequent trajectory is
// bit-for-bit identical* to a run that was never interrupted -- the
// process-death extension of the executor's checkpointing determinism
// guarantee.
//
// Determinism contract: the caller's data source must be a pure function
// of (rng, cursor) -- both live inside the snapshot -- and the chain must
// be constructed identically on every boot (same architecture and init
// seed; restored weights overwrite the init). Steps aborted mid-pass lose
// only that step: recovery replays it from the last step boundary, the
// same abandon-and-rerun model the idle scheduler uses for preemption.
#pragma once

#include <cstdint>
#include <functional>
#include <random>
#include <string>
#include <vector>

#include "nn/trainer.hpp"
#include "persist/fault.hpp"
#include "persist/snapshot.hpp"

namespace edgetrain::persist {

struct LabeledBatch {
  Tensor x;
  std::vector<std::int32_t> labels;
};

/// Replayable data source: must depend only on @p rng and @p cursor so a
/// restored RNG stream regenerates the exact batch sequence.
using BatchFn =
    std::function<LabeledBatch(std::mt19937& rng, std::uint64_t cursor)>;

struct ResumableOptions {
  nn::TrainerOptions trainer;
  std::string snapshot_dir = "/tmp/edgetrain_snap";
  std::uint64_t snapshot_every = 25;  ///< steps; 0 = only on suspend()
  int keep_snapshots = 2;             ///< committed generations to retain
  std::uint32_t data_seed = 1234;     ///< data RNG seed on fresh start
};

/// Crash-consistent trainer. Not copyable; the chain must outlive it.
class ResumableTrainer {
 public:
  /// @p fault, when set, is consulted at every failure point (step entry,
  /// mid-step schedule actions, snapshot write bytes) -- production passes
  /// nullptr, tests inject deaths.
  ResumableTrainer(nn::LayerChain& chain, const ResumableOptions& options,
                   FaultInjector* fault = nullptr);

  /// Restores the newest valid snapshot, falling back past corrupt or torn
  /// generations. Returns true when state was restored (resumed run),
  /// false on a fresh start. Call once, before the first step().
  bool resume();

  /// One optimisation step on make_batch(data_rng, cursor); snapshots
  /// afterwards when the step count hits the snapshot_every stride.
  nn::StepStats step(const BatchFn& make_batch);

  /// Cooperative suspend: snapshot the current state now. Called when the
  /// idle window closes; also safe at any step boundary.
  void suspend();

  [[nodiscard]] std::uint64_t step_count() const noexcept { return step_; }
  [[nodiscard]] std::uint64_t data_cursor() const noexcept { return cursor_; }
  [[nodiscard]] std::uint64_t snapshots_written() const noexcept {
    return snapshots_written_;
  }
  /// Schedule position of the last mid-step abort in this process, -1 when
  /// every step completed (the in-flight position also rides along in the
  /// next snapshot for post-mortem telemetry).
  [[nodiscard]] std::int64_t last_aborted_action() const noexcept {
    return last_aborted_action_;
  }

  [[nodiscard]] nn::Trainer& trainer() noexcept { return trainer_; }
  [[nodiscard]] SnapshotManager& snapshots() noexcept { return manager_; }
  [[nodiscard]] std::mt19937& data_rng() noexcept { return data_rng_; }

  /// Serialises the complete current trainer state (exposed for benches).
  [[nodiscard]] TrainerState capture();

 private:
  void restore(const TrainerState& state);

  nn::LayerChain& chain_;
  ResumableOptions options_;
  FaultInjector* fault_;
  SnapshotManager manager_;
  nn::Trainer trainer_;
  std::mt19937 data_rng_;
  std::uint64_t step_ = 0;
  std::uint64_t cursor_ = 0;
  std::uint64_t snapshots_written_ = 0;
  std::int64_t last_aborted_action_ = -1;
};

/// Optimizer state blob used inside TrainerState::optimizer (exposed for
/// tests): step counter (when the optimizer has one) followed by every
/// state tensor. Decoding validates tensor count and sizes against the
/// live optimizer and throws SnapshotError on mismatch.
[[nodiscard]] std::vector<std::uint8_t> encode_optimizer_state(
    nn::Optimizer& optimizer);
void decode_optimizer_state(nn::Optimizer& optimizer,
                            const std::vector<std::uint8_t>& bytes);

}  // namespace edgetrain::persist
