// edgetrain: bounds-checked little-endian byte (de)serialization.
//
// Shared wire primitives for every on-disk format in the repo (weight
// files, trainer snapshots). Header-only so lower layers (nn/serialize)
// can use them without linking the persist library. Writers append to a
// growable buffer; readers validate every access and throw
// std::runtime_error on truncation, so a corrupt file can never cause an
// over-read.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace edgetrain::persist {

class ByteWriter {
 public:
  void u8(std::uint8_t value) { out_.push_back(value); }

  void u32(std::uint32_t value) {
    for (int i = 0; i < 4; ++i) {
      out_.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
    }
  }

  void u64(std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      out_.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
    }
  }

  void i64(std::int64_t value) { u64(static_cast<std::uint64_t>(value)); }

  void f32(float value) {
    std::uint32_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    u32(bits);
  }

  /// Length-prefixed string.
  void str(const std::string& value) {
    u32(static_cast<std::uint32_t>(value.size()));
    out_.insert(out_.end(), value.begin(), value.end());
  }

  /// Length-prefixed opaque blob.
  void blob(const std::vector<std::uint8_t>& value) {
    u64(value.size());
    out_.insert(out_.end(), value.begin(), value.end());
  }

  /// Raw bytes, no length prefix (caller encodes the count separately).
  void raw(const void* data, std::size_t count) {
    const auto* bytes = static_cast<const std::uint8_t*>(data);
    out_.insert(out_.end(), bytes, bytes + count);
  }

  [[nodiscard]] std::size_t size() const noexcept { return out_.size(); }
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept {
    return out_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(out_); }

 private:
  std::vector<std::uint8_t> out_;
};

class ByteReader {
 public:
  /// Reads from [data, data + size); the buffer must outlive the reader.
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<std::uint8_t>& bytes)
      : ByteReader(bytes.data(), bytes.size()) {}

  std::uint8_t u8() {
    require(1);
    return data_[pos_++];
  }

  std::uint32_t u32() {
    require(4);
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      value |= static_cast<std::uint32_t>(data_[pos_ + static_cast<std::size_t>(i)])
               << (8 * i);
    }
    pos_ += 4;
    return value;
  }

  std::uint64_t u64() {
    require(8);
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
      value |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)])
               << (8 * i);
    }
    pos_ += 8;
    return value;
  }

  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  float f32() {
    const std::uint32_t bits = u32();
    float value;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
  }

  std::string str() {
    const std::uint32_t length = u32();
    require(length);
    std::string value(reinterpret_cast<const char*>(data_ + pos_), length);
    pos_ += length;
    return value;
  }

  std::vector<std::uint8_t> blob() {
    const std::uint64_t length = u64();
    require(length);
    std::vector<std::uint8_t> value(data_ + pos_, data_ + pos_ + length);
    pos_ += length;
    return value;
  }

  void raw(void* dst, std::size_t count) {
    require(count);
    std::memcpy(dst, data_ + pos_, count);
    pos_ += count;
  }

  void skip(std::size_t count) {
    require(count);
    pos_ += count;
  }

  [[nodiscard]] std::size_t position() const noexcept { return pos_; }
  [[nodiscard]] std::size_t remaining() const noexcept { return size_ - pos_; }
  [[nodiscard]] bool exhausted() const noexcept { return pos_ == size_; }

 private:
  void require(std::uint64_t count) const {
    if (count > size_ - pos_) {
      throw std::runtime_error("wire: truncated payload (need " +
                               std::to_string(count) + " bytes, have " +
                               std::to_string(size_ - pos_) + ")");
    }
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace edgetrain::persist
