// edgetrain: crash-consistent trainer snapshots.
//
// A run scheduled into idle CPU windows on a 2 GB outdoor node is
// routinely preempted and sometimes loses power mid-write, so durability
// cannot assume a clean shutdown. The snapshot format captures the
// *complete* trainer state -- weights, optimizer moments, RNG stream,
// data cursor, pass token and step counter -- and the file protocol
// guarantees a snapshot on disk is always either old-complete or
// new-complete, never torn:
//
//   header  magic | version | payload_size | payload_crc | header_crc
//   payload step, cursor, pass token, in-flight action, RNG stream,
//           model blob, optimizer blob, buffers blob (see encode_snapshot)
//
//   write   serialize -> <final>.tmp -> fwrite -> fsync(file)
//           -> rename(tmp, final) -> fsync(directory)
//
// Torn writes die inside the .tmp (the final name never exists half
// written); rename is atomic on POSIX; the directory fsync makes the
// rename itself durable. Corruption that happens *after* commit (SD-card
// bit rot) is caught by the CRCs at read time, and SnapshotManager then
// falls back to the newest older snapshot that still verifies.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "persist/fault.hpp"

namespace edgetrain::persist {

/// Decode/read failure (bad magic, CRC mismatch, truncation).
class SnapshotError : public std::runtime_error {
 public:
  explicit SnapshotError(const std::string& what)
      : std::runtime_error("snapshot: " + what) {}
};

/// Everything needed to continue a training run bit-for-bit.
struct TrainerState {
  std::uint64_t step = 0;          ///< completed optimisation steps
  std::uint64_t data_cursor = 0;   ///< batches drawn from the data stream
  std::uint64_t pass_token = 0;    ///< runner pass counter (dropout streams)
  std::int64_t in_flight_action = -1;  ///< schedule position at death, else -1
  std::string rng_state;           ///< std::mt19937 stream serialization
  std::vector<std::uint8_t> model;      ///< nn::serialize_weights blob
  std::vector<std::uint8_t> optimizer;  ///< optimizer state blob
  std::vector<std::uint8_t> buffers;    ///< nn::serialize_buffers blob

  [[nodiscard]] bool operator==(const TrainerState&) const = default;
};

/// Serialises @p state into the versioned, CRC-protected container.
[[nodiscard]] std::vector<std::uint8_t> encode_snapshot(
    const TrainerState& state);

/// Inverse of encode_snapshot. Throws SnapshotError on any mismatch
/// (magic, version, size, either CRC) -- a corrupt snapshot is never
/// partially applied.
[[nodiscard]] TrainerState decode_snapshot(
    const std::vector<std::uint8_t>& bytes);

/// Writes @p state to @p path with the atomic temp+fsync+rename protocol.
/// @p fault, when set, may kill the write at an armed byte offset
/// (PowerLoss propagates; the torn .tmp stays on disk, the final path is
/// untouched).
void write_snapshot_file(const std::string& path, const TrainerState& state,
                         FaultInjector* fault = nullptr);

/// Reads and validates one snapshot file. Throws SnapshotError when the
/// file is missing, truncated or fails CRC.
[[nodiscard]] TrainerState read_snapshot_file(const std::string& path);

/// True when @p path exists and decodes cleanly.
[[nodiscard]] bool snapshot_valid(const std::string& path);

/// Rotating snapshot directory: writes snap_<step>.etsnap files, keeps the
/// newest @p keep valid generations, and recovers by scanning newest-first
/// past any corrupt or torn files. Stale .tmp files from a previous crash
/// are swept on construction.
class SnapshotManager {
 public:
  explicit SnapshotManager(std::string directory, int keep = 2);

  /// Atomically writes a new generation and prunes old ones. Returns the
  /// final path. On PowerLoss the directory still holds every previously
  /// committed generation.
  std::string write(const TrainerState& state, FaultInjector* fault = nullptr);

  /// Newest snapshot that passes validation, or nullopt when none exists.
  /// Corrupt newer generations are skipped (and reported via
  /// last_skipped()), not deleted: forensics on a failed node matter.
  [[nodiscard]] std::optional<TrainerState> load_latest();

  /// Paths skipped as corrupt/torn during the last load_latest().
  [[nodiscard]] const std::vector<std::string>& last_skipped() const noexcept {
    return skipped_;
  }

  /// All committed snapshot paths, newest first.
  [[nodiscard]] std::vector<std::string> list() const;

  /// Total bytes of committed snapshots (for storage-budget accounting).
  [[nodiscard]] std::uint64_t total_bytes() const;

  [[nodiscard]] const std::string& directory() const noexcept {
    return directory_;
  }

 private:
  [[nodiscard]] std::string path_for(std::uint64_t step) const;
  void prune();

  std::string directory_;
  int keep_;
  std::vector<std::string> skipped_;
};

}  // namespace edgetrain::persist
