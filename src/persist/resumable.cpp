#include "persist/resumable.hpp"

#include <sstream>
#include <utility>

#include "nn/serialize.hpp"
#include "persist/wire.hpp"

namespace edgetrain::persist {

std::vector<std::uint8_t> encode_optimizer_state(nn::Optimizer& optimizer) {
  const nn::OptimizerState state = optimizer.mutable_state();
  ByteWriter out;
  out.u8(state.step_counter != nullptr ? 1 : 0);
  if (state.step_counter != nullptr) out.i64(*state.step_counter);
  out.u32(static_cast<std::uint32_t>(state.tensors.size()));
  for (const Tensor* tensor : state.tensors) {
    out.u64(static_cast<std::uint64_t>(tensor->numel()));
    out.raw(tensor->data(), tensor->bytes());
  }
  return out.take();
}

void decode_optimizer_state(nn::Optimizer& optimizer,
                            const std::vector<std::uint8_t>& bytes) {
  const nn::OptimizerState state = optimizer.mutable_state();
  try {
    ByteReader in(bytes);
    const bool has_counter = in.u8() != 0;
    if (has_counter != (state.step_counter != nullptr)) {
      throw SnapshotError("optimizer step-counter presence mismatch");
    }
    std::int64_t counter = 0;
    if (has_counter) counter = in.i64();
    const std::uint32_t count = in.u32();
    if (count != state.tensors.size()) {
      throw SnapshotError("optimizer tensor count mismatch (blob " +
                          std::to_string(count) + ", live " +
                          std::to_string(state.tensors.size()) + ")");
    }
    // Validate every size before mutating anything: a mismatched blob must
    // never leave the optimizer half restored.
    std::size_t offset_check = in.position();
    ByteReader probe(bytes.data() + offset_check, bytes.size() - offset_check);
    for (const Tensor* tensor : state.tensors) {
      const std::uint64_t numel = probe.u64();
      if (numel != static_cast<std::uint64_t>(tensor->numel())) {
        throw SnapshotError("optimizer tensor size mismatch");
      }
      probe.skip(static_cast<std::size_t>(numel) * sizeof(float));
    }
    for (Tensor* tensor : state.tensors) {
      (void)in.u64();
      in.raw(tensor->data(), tensor->bytes());
    }
    if (!in.exhausted()) throw SnapshotError("optimizer blob trailing bytes");
    if (state.step_counter != nullptr) *state.step_counter = counter;
  } catch (const SnapshotError&) {
    throw;
  } catch (const std::runtime_error& error) {
    throw SnapshotError(std::string("malformed optimizer blob: ") +
                        error.what());
  }
}

ResumableTrainer::ResumableTrainer(nn::LayerChain& chain,
                                   const ResumableOptions& options,
                                   FaultInjector* fault)
    : chain_(chain),
      options_(options),
      fault_(fault),
      manager_(options.snapshot_dir, options.keep_snapshots),
      trainer_(chain, options.trainer),
      data_rng_(options.data_seed) {
  if (fault_ != nullptr) {
    core::ExecutorHooks hooks;
    hooks.on_action = [this](std::int64_t index, const core::Action&) {
      try {
        fault_->on_action(index);
      } catch (...) {
        last_aborted_action_ = index;
        throw;
      }
    };
    trainer_.set_hooks(std::move(hooks));
  }
}

bool ResumableTrainer::resume() {
  const std::optional<TrainerState> state = manager_.load_latest();
  if (!state.has_value()) return false;
  restore(*state);
  return true;
}

nn::StepStats ResumableTrainer::step(const BatchFn& make_batch) {
  if (fault_ != nullptr) fault_->on_step(step_);
  const LabeledBatch batch = make_batch(data_rng_, cursor_);
  ++cursor_;
  const nn::StepStats stats = trainer_.step(batch.x, batch.labels);
  ++step_;
  if (options_.snapshot_every > 0 && step_ % options_.snapshot_every == 0) {
    suspend();
  }
  return stats;
}

void ResumableTrainer::suspend() {
  manager_.write(capture(), fault_);
  ++snapshots_written_;
}

TrainerState ResumableTrainer::capture() {
  TrainerState state;
  state.step = step_;
  state.data_cursor = cursor_;
  state.pass_token = trainer_.pass_token();
  state.in_flight_action = last_aborted_action_;
  std::ostringstream stream;
  stream << data_rng_;
  state.rng_state = stream.str();
  state.model = nn::serialize_weights(chain_);
  state.optimizer = encode_optimizer_state(trainer_.optimizer());
  state.buffers = nn::serialize_buffers(chain_);
  return state;
}

void ResumableTrainer::restore(const TrainerState& state) {
  try {
    nn::deserialize_weights(chain_, state.model);
    nn::deserialize_buffers(chain_, state.buffers);
  } catch (const SnapshotError&) {
    throw;
  } catch (const std::runtime_error& error) {
    throw SnapshotError(std::string("model restore failed: ") + error.what());
  }
  decode_optimizer_state(trainer_.optimizer(), state.optimizer);
  std::istringstream stream(state.rng_state);
  stream >> data_rng_;
  if (stream.fail()) throw SnapshotError("bad RNG stream state");
  step_ = state.step;
  cursor_ = state.data_cursor;
  trainer_.set_pass_token(state.pass_token);
}

}  // namespace edgetrain::persist
