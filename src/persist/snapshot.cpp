#include "persist/snapshot.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "persist/atomic_file.hpp"
#include "persist/wire.hpp"

namespace edgetrain::persist {

namespace {

constexpr std::uint32_t kMagic = 0x4E535445;  // "ETSN"
constexpr std::uint32_t kVersion = 1;
constexpr const char* kSnapPrefix = "snap_";
constexpr const char* kSnapSuffix = ".etsnap";

}  // namespace

std::vector<std::uint8_t> encode_snapshot(const TrainerState& state) {
  ByteWriter payload;
  payload.u64(state.step);
  payload.u64(state.data_cursor);
  payload.u64(state.pass_token);
  payload.i64(state.in_flight_action);
  payload.str(state.rng_state);
  payload.blob(state.model);
  payload.blob(state.optimizer);
  payload.blob(state.buffers);
  return frame_payload(kMagic, kVersion, payload.bytes());
}

TrainerState decode_snapshot(const std::vector<std::uint8_t>& bytes) {
  std::vector<std::uint8_t> body;
  try {
    body = unframe_payload(kMagic, kVersion, bytes);
  } catch (const AtomicFileError& error) {
    throw SnapshotError(error.what());
  }

  try {
    ByteReader payload(body.data(), body.size());
    TrainerState state;
    state.step = payload.u64();
    state.data_cursor = payload.u64();
    state.pass_token = payload.u64();
    state.in_flight_action = payload.i64();
    state.rng_state = payload.str();
    state.model = payload.blob();
    state.optimizer = payload.blob();
    state.buffers = payload.blob();
    if (!payload.exhausted()) throw SnapshotError("trailing payload bytes");
    return state;
  } catch (const SnapshotError&) {
    throw;
  } catch (const std::runtime_error& error) {
    throw SnapshotError(std::string("malformed payload: ") + error.what());
  }
}

void write_snapshot_file(const std::string& path, const TrainerState& state,
                         FaultInjector* fault) {
  const std::vector<std::uint8_t> bytes = encode_snapshot(state);
  try {
    write_file_atomic(path, bytes, fault);
  } catch (const AtomicFileError& error) {
    throw SnapshotError(error.what());
  }
}

TrainerState read_snapshot_file(const std::string& path) {
  std::vector<std::uint8_t> bytes;
  try {
    bytes = read_file_bytes(path);
  } catch (const AtomicFileError& error) {
    throw SnapshotError(error.what());
  }
  return decode_snapshot(bytes);
}

bool snapshot_valid(const std::string& path) {
  try {
    (void)read_snapshot_file(path);
    return true;
  } catch (const SnapshotError&) {
    return false;
  }
}

// ---------------------------------------------------------------------------
// SnapshotManager
// ---------------------------------------------------------------------------

SnapshotManager::SnapshotManager(std::string directory, int keep)
    : directory_(std::move(directory)), keep_(std::max(keep, 1)) {
  std::filesystem::create_directories(directory_);
  // Sweep torn temp files from a previous crash; committed generations are
  // never touched here.
  for (const auto& entry : std::filesystem::directory_iterator(directory_)) {
    const std::string name = entry.path().filename().string();
    if (name.ends_with(".tmp")) {
      std::error_code ec;
      std::filesystem::remove(entry.path(), ec);
    }
  }
}

std::string SnapshotManager::path_for(std::uint64_t step) const {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%012llu",
                static_cast<unsigned long long>(step));
  return directory_ + "/" + kSnapPrefix + buffer + kSnapSuffix;
}

std::string SnapshotManager::write(const TrainerState& state,
                                   FaultInjector* fault) {
  const std::string path = path_for(state.step);
  write_snapshot_file(path, state, fault);
  prune();
  return path;
}

std::vector<std::string> SnapshotManager::list() const {
  std::vector<std::string> paths;
  if (!std::filesystem::exists(directory_)) return paths;
  for (const auto& entry : std::filesystem::directory_iterator(directory_)) {
    const std::string name = entry.path().filename().string();
    if (name.starts_with(kSnapPrefix) && name.ends_with(kSnapSuffix)) {
      paths.push_back(entry.path().string());
    }
  }
  // Zero-padded step numbers make lexicographic order chronological.
  std::sort(paths.begin(), paths.end(), std::greater<>());
  return paths;
}

std::optional<TrainerState> SnapshotManager::load_latest() {
  skipped_.clear();
  for (const std::string& path : list()) {
    try {
      return read_snapshot_file(path);
    } catch (const SnapshotError&) {
      skipped_.push_back(path);
    }
  }
  return std::nullopt;
}

std::uint64_t SnapshotManager::total_bytes() const {
  std::uint64_t total = 0;
  for (const std::string& path : list()) {
    std::error_code ec;
    const std::uintmax_t size = std::filesystem::file_size(path, ec);
    if (!ec) total += static_cast<std::uint64_t>(size);
  }
  return total;
}

void SnapshotManager::prune() {
  const std::vector<std::string> paths = list();
  for (std::size_t i = static_cast<std::size_t>(keep_); i < paths.size();
       ++i) {
    std::error_code ec;
    std::filesystem::remove(paths[i], ec);
  }
}

}  // namespace edgetrain::persist
