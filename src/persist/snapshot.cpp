#include "persist/snapshot.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "persist/crc32.hpp"
#include "persist/wire.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define EDGETRAIN_HAVE_FSYNC 1
#endif

namespace edgetrain::persist {

namespace {

constexpr std::uint32_t kMagic = 0x4E535445;  // "ETSN"
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderBytes = 24;
constexpr const char* kSnapPrefix = "snap_";
constexpr const char* kSnapSuffix = ".etsnap";

/// RAII FILE* that writes through the fault injector and fsyncs before the
/// atomic rename. On PowerLoss the destructor just closes the handle: the
/// torn prefix stays in the .tmp exactly as a real power cut would leave it.
class FileSink {
 public:
  FileSink(const std::string& path, FaultInjector* fault)
      : path_(path), fault_(fault), file_(std::fopen(path.c_str(), "wb")) {
    if (file_ == nullptr) {
      throw SnapshotError("cannot open " + path + " for writing");
    }
  }

  ~FileSink() {
    if (file_ != nullptr) std::fclose(file_);
  }

  FileSink(const FileSink&) = delete;
  FileSink& operator=(const FileSink&) = delete;

  void write(const std::uint8_t* data, std::size_t count) {
    std::size_t offset = 0;
    while (offset < count) {
      // Stop exactly at an armed failure offset so tests can tear the file
      // at any chosen byte.
      std::size_t chunk = count - offset;
      if (fault_ != nullptr && fault_->write_failure_armed()) chunk = 1;
      if (std::fwrite(data + offset, 1, chunk, file_) != chunk) {
        throw SnapshotError("write failed for " + path_);
      }
      offset += chunk;
      written_ += chunk;
      if (fault_ != nullptr) {
        if (fault_->write_failure_armed()) std::fflush(file_);
        fault_->on_write_bytes(written_);
      }
    }
  }

  /// Flush + fsync + close; the data is durable (but not yet named).
  void sync_and_close() {
    if (std::fflush(file_) != 0) {
      throw SnapshotError("flush failed for " + path_);
    }
#ifdef EDGETRAIN_HAVE_FSYNC
    if (::fsync(::fileno(file_)) != 0) {
      throw SnapshotError("fsync failed for " + path_);
    }
#endif
    const int rc = std::fclose(file_);
    file_ = nullptr;
    if (rc != 0) throw SnapshotError("close failed for " + path_);
  }

 private:
  std::string path_;
  FaultInjector* fault_;
  std::FILE* file_;
  std::uint64_t written_ = 0;
};

void fsync_directory(const std::string& directory) {
#ifdef EDGETRAIN_HAVE_FSYNC
  const int fd = ::open(directory.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
#else
  (void)directory;
#endif
}

}  // namespace

std::vector<std::uint8_t> encode_snapshot(const TrainerState& state) {
  ByteWriter payload;
  payload.u64(state.step);
  payload.u64(state.data_cursor);
  payload.u64(state.pass_token);
  payload.i64(state.in_flight_action);
  payload.str(state.rng_state);
  payload.blob(state.model);
  payload.blob(state.optimizer);
  payload.blob(state.buffers);
  const std::vector<std::uint8_t>& body = payload.bytes();

  ByteWriter out;
  out.u32(kMagic);
  out.u32(kVersion);
  out.u64(body.size());
  out.u32(crc32(body.data(), body.size()));
  out.u32(crc32(out.bytes().data(), out.size()));  // header CRC over the 20
  out.raw(body.data(), body.size());
  return out.take();
}

TrainerState decode_snapshot(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < kHeaderBytes) {
    throw SnapshotError("truncated header (" + std::to_string(bytes.size()) +
                        " bytes)");
  }
  ByteReader header(bytes.data(), kHeaderBytes);
  const std::uint32_t magic = header.u32();
  const std::uint32_t version = header.u32();
  const std::uint64_t payload_size = header.u64();
  const std::uint32_t payload_crc = header.u32();
  const std::uint32_t header_crc = header.u32();
  if (crc32(bytes.data(), kHeaderBytes - 4) != header_crc) {
    throw SnapshotError("header CRC mismatch");
  }
  if (magic != kMagic) throw SnapshotError("bad magic");
  if (version != kVersion) {
    throw SnapshotError("unsupported version " + std::to_string(version));
  }
  if (bytes.size() - kHeaderBytes != payload_size) {
    throw SnapshotError("payload size mismatch (header says " +
                        std::to_string(payload_size) + ", file holds " +
                        std::to_string(bytes.size() - kHeaderBytes) + ")");
  }
  if (crc32(bytes.data() + kHeaderBytes, payload_size) != payload_crc) {
    throw SnapshotError("payload CRC mismatch");
  }

  try {
    ByteReader payload(bytes.data() + kHeaderBytes, payload_size);
    TrainerState state;
    state.step = payload.u64();
    state.data_cursor = payload.u64();
    state.pass_token = payload.u64();
    state.in_flight_action = payload.i64();
    state.rng_state = payload.str();
    state.model = payload.blob();
    state.optimizer = payload.blob();
    state.buffers = payload.blob();
    if (!payload.exhausted()) throw SnapshotError("trailing payload bytes");
    return state;
  } catch (const SnapshotError&) {
    throw;
  } catch (const std::runtime_error& error) {
    throw SnapshotError(std::string("malformed payload: ") + error.what());
  }
}

void write_snapshot_file(const std::string& path, const TrainerState& state,
                         FaultInjector* fault) {
  const std::vector<std::uint8_t> bytes = encode_snapshot(state);
  const std::string tmp = path + ".tmp";
  {
    FileSink sink(tmp, fault);
    sink.write(bytes.data(), bytes.size());
    sink.sync_and_close();
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    throw SnapshotError("rename " + tmp + " -> " + path + ": " + ec.message());
  }
  fsync_directory(std::filesystem::path(path).parent_path().string());
}

TrainerState read_snapshot_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary | std::ios::ate);
  if (!file) throw SnapshotError("cannot open " + path);
  const std::streamsize size = file.tellg();
  file.seekg(0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  file.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!file) throw SnapshotError("read failed for " + path);
  return decode_snapshot(bytes);
}

bool snapshot_valid(const std::string& path) {
  try {
    (void)read_snapshot_file(path);
    return true;
  } catch (const SnapshotError&) {
    return false;
  }
}

// ---------------------------------------------------------------------------
// SnapshotManager
// ---------------------------------------------------------------------------

SnapshotManager::SnapshotManager(std::string directory, int keep)
    : directory_(std::move(directory)), keep_(std::max(keep, 1)) {
  std::filesystem::create_directories(directory_);
  // Sweep torn temp files from a previous crash; committed generations are
  // never touched here.
  for (const auto& entry : std::filesystem::directory_iterator(directory_)) {
    const std::string name = entry.path().filename().string();
    if (name.ends_with(".tmp")) {
      std::error_code ec;
      std::filesystem::remove(entry.path(), ec);
    }
  }
}

std::string SnapshotManager::path_for(std::uint64_t step) const {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%012llu",
                static_cast<unsigned long long>(step));
  return directory_ + "/" + kSnapPrefix + buffer + kSnapSuffix;
}

std::string SnapshotManager::write(const TrainerState& state,
                                   FaultInjector* fault) {
  const std::string path = path_for(state.step);
  write_snapshot_file(path, state, fault);
  prune();
  return path;
}

std::vector<std::string> SnapshotManager::list() const {
  std::vector<std::string> paths;
  if (!std::filesystem::exists(directory_)) return paths;
  for (const auto& entry : std::filesystem::directory_iterator(directory_)) {
    const std::string name = entry.path().filename().string();
    if (name.starts_with(kSnapPrefix) && name.ends_with(kSnapSuffix)) {
      paths.push_back(entry.path().string());
    }
  }
  // Zero-padded step numbers make lexicographic order chronological.
  std::sort(paths.begin(), paths.end(), std::greater<>());
  return paths;
}

std::optional<TrainerState> SnapshotManager::load_latest() {
  skipped_.clear();
  for (const std::string& path : list()) {
    try {
      return read_snapshot_file(path);
    } catch (const SnapshotError&) {
      skipped_.push_back(path);
    }
  }
  return std::nullopt;
}

std::uint64_t SnapshotManager::total_bytes() const {
  std::uint64_t total = 0;
  for (const std::string& path : list()) {
    std::error_code ec;
    const std::uintmax_t size = std::filesystem::file_size(path, ec);
    if (!ec) total += static_cast<std::uint64_t>(size);
  }
  return total;
}

void SnapshotManager::prune() {
  const std::vector<std::string> paths = list();
  for (std::size_t i = static_cast<std::size_t>(keep_); i < paths.size();
       ++i) {
    std::error_code ec;
    std::filesystem::remove(paths[i], ec);
  }
}

}  // namespace edgetrain::persist
