// edgetrain: injectable disk latency for the fault/benchmark harness.
//
// The SD card of a Waggle node is orders of magnitude slower than the
// laptops CI runs on, so benchmarks and tests that want to *see* the cost
// of a spill (and prove the async pipeline hides it) inject a per-file-op
// sleep. One knob, read once:
//
//   EDGETRAIN_DISK_LATENCY_US=<microseconds per spill write/read>
//
// Both DiskSlotStore and AsyncDiskSlotStore route every spill-file write
// and read through apply_disk_latency() (see core/spill_io.cpp), so the
// same knob throttles the synchronous and the overlapped path identically
// -- the honest comparison bench_async_io is built on. Tests and benches
// can override programmatically with set_disk_latency_us(), which beats
// the environment. Default (unset/0) is a no-op: production pays nothing.
//
// Header-only on purpose: core links no persist code, but shares the
// persist fault-harness conventions (like persist/crc32.hpp).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>

namespace edgetrain::persist {

namespace detail {
// memory_order_relaxed on this slot is intentional: the latency value is a
// self-contained long -- readers act on the loaded value alone and never
// infer that other memory was initialised, so no acquire/release pairing
// is required. (The race detector's HB model agrees: nothing is published
// through this cell.)
inline std::atomic<long>& disk_latency_slot() {
  static std::atomic<long> latency_us{-1};  // -1: environment not read yet
  return latency_us;
}
}  // namespace detail

/// Current injected latency in microseconds (0 = none). First call reads
/// EDGETRAIN_DISK_LATENCY_US; set_disk_latency_us() overrides.
[[nodiscard]] inline long disk_latency_us() {
  std::atomic<long>& slot = detail::disk_latency_slot();
  long value = slot.load(std::memory_order_relaxed);
  if (value >= 0) return value;
  const char* env = std::getenv("EDGETRAIN_DISK_LATENCY_US");
  long parsed = env != nullptr ? std::atol(env) : 0;
  if (parsed < 0) parsed = 0;
  // Several threads may race the first read; they all parse the same
  // environment, so any winner stores the same value.
  slot.store(parsed, std::memory_order_relaxed);
  return parsed;
}

/// Programmatic override (benchmarks calibrate their own latency; tests pin
/// it). Pass 0 to disable, negative to re-read the environment next call.
inline void set_disk_latency_us(long latency_us) {
  detail::disk_latency_slot().store(latency_us < 0 ? -1 : latency_us,
                                    std::memory_order_relaxed);
}

/// Sleeps for the injected latency; no-op when none is configured. Called
/// once per spill-file write and once per read.
inline void apply_disk_latency() {
  const long latency = disk_latency_us();
  if (latency > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(latency));
  }
}

}  // namespace edgetrain::persist
