// edgetrain: fault-injection harness for the durability layer.
//
// An outdoor node loses power mid-write; an idle-scheduled trainer is
// killed mid-step. Tests must prove recovery from *every* such point, so
// this harness makes the failures reproducible: a FaultInjector threaded
// through the snapshot writer kills a file write after an exact number of
// bytes (leaving a genuine torn file on disk), aborts training at a chosen
// step or mid-step schedule action, and static helpers bit-flip or
// truncate files in place to model SD-card corruption.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace edgetrain::persist {

/// Thrown at an injected failure point. Models power loss / OOM-kill: the
/// process under test treats it as death (no cleanup runs on the write
/// path), and tests catch it where a supervisor would restart the node.
class PowerLoss : public std::runtime_error {
 public:
  explicit PowerLoss(const std::string& where)
      : std::runtime_error("injected power loss: " + where) {}
};

/// Deterministic failure switchboard. All triggers are one-shot: they
/// disarm after firing so the post-restart code path runs clean.
class FaultInjector {
 public:
  /// Kill the next snapshot write after exactly @p byte_offset payload
  /// bytes have reached the file (the torn prefix stays on disk).
  void arm_write_failure(std::uint64_t byte_offset) {
    write_armed_ = true;
    write_fail_offset_ = byte_offset;
  }

  /// Abort training immediately before step @p step executes.
  void arm_abort_at_step(std::uint64_t step) {
    step_armed_ = true;
    abort_step_ = step;
  }

  /// Abort mid-step, immediately before schedule action @p action_index of
  /// the next training step (models preemption inside a pass).
  void arm_abort_at_action(std::int64_t action_index) {
    action_armed_ = true;
    abort_action_ = action_index;
  }

  [[nodiscard]] bool write_failure_armed() const noexcept {
    return write_armed_;
  }

  /// Called by the snapshot file sink with the running byte count; throws
  /// PowerLoss once the armed offset is crossed.
  void on_write_bytes(std::uint64_t total_bytes_written) {
    if (write_armed_ && total_bytes_written >= write_fail_offset_) {
      write_armed_ = false;
      throw PowerLoss("snapshot write at byte " +
                      std::to_string(write_fail_offset_));
    }
  }

  /// Called by ResumableTrainer before each training step.
  void on_step(std::uint64_t step) {
    if (step_armed_ && step >= abort_step_) {
      step_armed_ = false;
      throw PowerLoss("training step " + std::to_string(step));
    }
  }

  /// Called from the executor hook with the in-flight schedule position.
  void on_action(std::int64_t action_index) {
    if (action_armed_ && action_index >= abort_action_) {
      action_armed_ = false;
      throw PowerLoss("schedule action " + std::to_string(action_index));
    }
  }

  [[nodiscard]] bool mid_step_abort_armed() const noexcept {
    return action_armed_;
  }

 private:
  bool write_armed_ = false;
  std::uint64_t write_fail_offset_ = 0;
  bool step_armed_ = false;
  std::uint64_t abort_step_ = 0;
  bool action_armed_ = false;
  std::int64_t abort_action_ = 0;
};

/// XORs one bit of @p path at @p byte_offset (clamped to the last byte).
/// Throws std::runtime_error when the file cannot be opened.
void flip_bit(const std::string& path, std::uint64_t byte_offset,
              int bit = 0);

/// Truncates @p path to @p new_size bytes (must not exceed current size).
void truncate_file(const std::string& path, std::uint64_t new_size);

/// Size of @p path in bytes; throws when it does not exist.
[[nodiscard]] std::uint64_t file_size(const std::string& path);

}  // namespace edgetrain::persist
