// edgetrain: CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//
// Integrity check for every durable artefact: trainer snapshots and
// DiskSlotStore spill files. Header-only so core can verify spill files
// without a persist link dependency. Incremental: feed chunks through
// crc32_update to checksum streamed writes without buffering.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace edgetrain::persist {

namespace detail {
inline const std::array<std::uint32_t, 256>& crc32_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1U) != 0 ? (crc >> 1) ^ 0xEDB88320U : crc >> 1;
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}
}  // namespace detail

/// Folds @p size bytes into a running CRC. Seed with crc32_init(), finish
/// with crc32_final() (the pre/post conditioning is kept explicit so the
/// streaming file writer can checksum without buffering the payload).
[[nodiscard]] constexpr std::uint32_t crc32_init() noexcept {
  return 0xFFFFFFFFU;
}

[[nodiscard]] inline std::uint32_t crc32_update(std::uint32_t crc,
                                                const void* data,
                                                std::size_t size) noexcept {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  const auto& table = detail::crc32_table();
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFFU] ^ (crc >> 8);
  }
  return crc;
}

[[nodiscard]] constexpr std::uint32_t crc32_final(std::uint32_t crc) noexcept {
  return crc ^ 0xFFFFFFFFU;
}

/// One-shot convenience.
[[nodiscard]] inline std::uint32_t crc32(const void* data,
                                         std::size_t size) noexcept {
  return crc32_final(crc32_update(crc32_init(), data, size));
}

}  // namespace edgetrain::persist
