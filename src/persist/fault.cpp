#include "persist/fault.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

namespace edgetrain::persist {

void flip_bit(const std::string& path, std::uint64_t byte_offset, int bit) {
  const std::uint64_t size = file_size(path);
  if (size == 0) throw std::runtime_error("flip_bit: empty file " + path);
  if (byte_offset >= size) byte_offset = size - 1;

  std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
  if (!file) throw std::runtime_error("flip_bit: cannot open " + path);
  file.seekg(static_cast<std::streamoff>(byte_offset));
  char byte = 0;
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ (1 << (bit & 7)));
  file.seekp(static_cast<std::streamoff>(byte_offset));
  file.write(&byte, 1);
  if (!file) throw std::runtime_error("flip_bit: write failed for " + path);
}

void truncate_file(const std::string& path, std::uint64_t new_size) {
  const std::uint64_t size = file_size(path);
  if (new_size > size) {
    throw std::runtime_error("truncate_file: new size exceeds file size");
  }
  std::error_code ec;
  std::filesystem::resize_file(path, new_size, ec);
  if (ec) {
    throw std::runtime_error("truncate_file: " + path + ": " + ec.message());
  }
}

std::uint64_t file_size(const std::string& path) {
  std::error_code ec;
  const std::uintmax_t size = std::filesystem::file_size(path, ec);
  if (ec) {
    throw std::runtime_error("file_size: " + path + ": " + ec.message());
  }
  return static_cast<std::uint64_t>(size);
}

}  // namespace edgetrain::persist
