// edgetrain: the shared durable-file commit protocol.
//
// Three subsystems persist small binary artefacts that must survive power
// loss on an SD card: trainer snapshots ("ETSN", persist/snapshot),
// calibration profiles ("ETCP", calib/device_model) and the fleet server's
// aggregate snapshots ("ETFA", fleet/server). All of them used to
// hand-roll the same two-layer protocol; this header is that protocol,
// once:
//
//   frame    magic | version | payload_size | payload_crc | header_crc
//            (24 bytes, little-endian, dual CRC-32: the header checks
//            itself, the payload CRC checks the body)
//
//   commit   serialize -> <final>.tmp -> fwrite -> fsync(file)
//            -> rename(tmp, final) -> fsync(directory)
//
// Torn writes die inside the .tmp (the final name never exists half
// written); rename is atomic on POSIX; the directory fsync makes the
// rename itself durable. Corruption after commit (SD bit rot) is caught by
// the CRCs at read time. Callers keep their own exception types by
// translating AtomicFileError at the boundary.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "persist/fault.hpp"

namespace edgetrain::persist {

/// Frame/commit failure (bad magic, CRC mismatch, truncation, IO error).
class AtomicFileError : public std::runtime_error {
 public:
  explicit AtomicFileError(const std::string& what)
      : std::runtime_error("atomic_file: " + what) {}
};

/// Size of the fixed frame header preceding the payload.
inline constexpr std::size_t kFrameHeaderBytes = 24;

/// Wraps @p payload in the dual-CRC frame: the result is what goes on
/// disk. @p magic is the caller's little-endian four-byte tag.
[[nodiscard]] std::vector<std::uint8_t> frame_payload(
    std::uint32_t magic, std::uint32_t version,
    const std::vector<std::uint8_t>& payload);

/// Inverse of frame_payload: validates header CRC, magic, version, payload
/// size and payload CRC (in that order) and returns the payload bytes.
/// Throws AtomicFileError on any mismatch -- a corrupt frame never yields
/// partial data.
[[nodiscard]] std::vector<std::uint8_t> unframe_payload(
    std::uint32_t magic, std::uint32_t version,
    const std::vector<std::uint8_t>& bytes);

/// Commits @p size bytes at @p data to @p path with the atomic
/// temp+fsync+rename+dir-fsync protocol. @p fault, when set, may kill the
/// write at an armed byte offset: PowerLoss propagates and the torn .tmp
/// stays on disk exactly as a real power cut would leave it (the final
/// path is untouched). Non-fault IO failures remove the .tmp best-effort
/// and throw AtomicFileError.
void write_file_atomic(const std::string& path, const std::uint8_t* data,
                       std::size_t size, FaultInjector* fault = nullptr);

inline void write_file_atomic(const std::string& path,
                              const std::vector<std::uint8_t>& bytes,
                              FaultInjector* fault = nullptr) {
  write_file_atomic(path, bytes.data(), bytes.size(), fault);
}

/// Reads @p path whole. Throws AtomicFileError when the file is missing or
/// unreadable (callers that treat a missing file as "re-generate" catch
/// and translate).
[[nodiscard]] std::vector<std::uint8_t> read_file_bytes(
    const std::string& path);

}  // namespace edgetrain::persist
