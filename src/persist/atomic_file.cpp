#include "persist/atomic_file.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "persist/crc32.hpp"
#include "persist/wire.hpp"

#ifdef _WIN32
#error "persist: POSIX-only (fsync/rename durability protocol)"
#endif
#include <fcntl.h>
#include <unistd.h>

namespace edgetrain::persist {

namespace {

/// RAII FILE* that writes through the fault injector and fsyncs before the
/// atomic rename. On PowerLoss the destructor just closes the handle: the
/// torn prefix stays in the .tmp exactly as a real power cut would leave it.
class FileSink {
 public:
  FileSink(const std::string& path, FaultInjector* fault)
      : path_(path), fault_(fault), file_(std::fopen(path.c_str(), "wb")) {
    if (file_ == nullptr) {
      throw AtomicFileError("cannot open " + path + " for writing");
    }
  }

  ~FileSink() {
    if (file_ != nullptr) std::fclose(file_);
  }

  FileSink(const FileSink&) = delete;
  FileSink& operator=(const FileSink&) = delete;

  void write(const std::uint8_t* data, std::size_t count) {
    std::size_t offset = 0;
    while (offset < count) {
      // Stop exactly at an armed failure offset so tests can tear the file
      // at any chosen byte.
      std::size_t chunk = count - offset;
      if (fault_ != nullptr && fault_->write_failure_armed()) chunk = 1;
      if (std::fwrite(data + offset, 1, chunk, file_) != chunk) {
        throw AtomicFileError("write failed for " + path_);
      }
      offset += chunk;
      written_ += chunk;
      if (fault_ != nullptr) {
        if (fault_->write_failure_armed()) std::fflush(file_);
        fault_->on_write_bytes(written_);
      }
    }
  }

  /// Flush + fsync + close; the data is durable (but not yet named).
  void sync_and_close() {
    if (std::fflush(file_) != 0) {
      throw AtomicFileError("flush failed for " + path_);
    }
    if (::fsync(::fileno(file_)) != 0) {
      throw AtomicFileError("fsync failed for " + path_);
    }
    const int rc = std::fclose(file_);
    file_ = nullptr;
    if (rc != 0) throw AtomicFileError("close failed for " + path_);
  }

 private:
  std::string path_;
  FaultInjector* fault_;
  std::FILE* file_;
  std::uint64_t written_ = 0;
};

void fsync_directory(const std::string& directory) {
  const std::string dir = directory.empty() ? "." : directory;
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

std::vector<std::uint8_t> frame_payload(
    std::uint32_t magic, std::uint32_t version,
    const std::vector<std::uint8_t>& payload) {
  ByteWriter out;
  out.u32(magic);
  out.u32(version);
  out.u64(payload.size());
  out.u32(crc32(payload.data(), payload.size()));
  out.u32(crc32(out.bytes().data(), out.size()));  // header CRC over the 20
  out.raw(payload.data(), payload.size());
  return out.take();
}

std::vector<std::uint8_t> unframe_payload(
    std::uint32_t magic, std::uint32_t version,
    const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < kFrameHeaderBytes) {
    throw AtomicFileError("truncated header (" + std::to_string(bytes.size()) +
                          " bytes)");
  }
  ByteReader header(bytes.data(), kFrameHeaderBytes);
  const std::uint32_t file_magic = header.u32();
  const std::uint32_t file_version = header.u32();
  const std::uint64_t payload_size = header.u64();
  const std::uint32_t payload_crc = header.u32();
  const std::uint32_t header_crc = header.u32();
  if (crc32(bytes.data(), kFrameHeaderBytes - 4) != header_crc) {
    throw AtomicFileError("header CRC mismatch");
  }
  if (file_magic != magic) throw AtomicFileError("bad magic");
  if (file_version != version) {
    throw AtomicFileError("unsupported version " +
                          std::to_string(file_version));
  }
  if (bytes.size() - kFrameHeaderBytes != payload_size) {
    throw AtomicFileError(
        "payload size mismatch (header says " + std::to_string(payload_size) +
        ", file holds " + std::to_string(bytes.size() - kFrameHeaderBytes) +
        ")");
  }
  if (crc32(bytes.data() + kFrameHeaderBytes, payload_size) != payload_crc) {
    throw AtomicFileError("payload CRC mismatch");
  }
  return {bytes.begin() + static_cast<std::ptrdiff_t>(kFrameHeaderBytes),
          bytes.end()};
}

void write_file_atomic(const std::string& path, const std::uint8_t* data,
                       std::size_t size, FaultInjector* fault) {
  const std::string tmp = path + ".tmp";
  try {
    {
      FileSink sink(tmp, fault);
      sink.write(data, size);
      sink.sync_and_close();
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
      throw AtomicFileError("rename " + tmp + " -> " + path + ": " +
                            ec.message());
    }
  } catch (const PowerLoss&) {
    throw;  // death: the torn .tmp stays, exactly like a real power cut
  } catch (const AtomicFileError&) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    throw;
  }
  fsync_directory(std::filesystem::path(path).parent_path().string());
}

std::vector<std::uint8_t> read_file_bytes(const std::string& path) {
  std::ifstream file(path, std::ios::binary | std::ios::ate);
  if (!file) throw AtomicFileError("cannot open " + path);
  const std::streamsize size = file.tellg();
  file.seekg(0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  file.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!file) throw AtomicFileError("read failed for " + path);
  return bytes;
}

}  // namespace edgetrain::persist
