// edgetrain: one simulated Waggle node of the fleet.
//
// A FleetNode is the compact state machine the discrete-event engine
// drives: it trains inside the idle windows of a shared duty-cycle
// profile (edge::PeriodicIdleProfile), snapshots on the persist cadence
// (every N steps plus a suspend at each sync boundary), wears out its SD
// card one snapshot write at a time, browns out on a per-node exponential
// failure clock, and recovers by falling back to its newest durable
// snapshot generation -- exactly the crash/resume semantics
// persist::SnapshotManager implements for a real node, replayed in
// closed form:
//
//   * durable step = last multiple of snapshot_every_steps that reached
//     the card (suspend snapshots land on the current step);
//   * a crash mid-write tears the newest generation with some
//     probability, falling back one more generation (keep = 2);
//   * a worn-out card stops accepting writes: the durable step freezes
//     and every crash afterwards loses all progress since.
//
// Step cost is priced in calibrated microseconds (calib::DeviceModel) by
// the fleet config, not wall-clock; the node only sees step_seconds.
// All randomness comes from the node's own splitmix64 stream (8 bytes of
// state -- a node must stay small enough that a million of them fit in
// RAM), drawn in event order, so per-node trajectories are independent of
// how the fleet is partitioned across driver threads.
#pragma once

#include <cstdint>

#include "edge/scheduler.hpp"
#include "fleet/delta.hpp"
#include "insitu/student.hpp"

namespace edgetrain::fleet {

struct NodeParams {
  /// One training step, seconds (from calib::DeviceModel pricing).
  double step_seconds = 0.5;
  /// Offset into the shared duty-cycle profile.
  double phase_seconds = 0.0;
  /// Mean time between power failures (exponential), seconds.
  double mtbf_seconds = 6.0 * 3600.0;
  double repair_seconds = 120.0;
  /// P(newest snapshot generation is torn | crash).
  double torn_snapshot_probability = 0.1;
  std::uint64_t snapshot_every_steps = 25;
  /// Snapshot writes the SD card survives before going read-only.
  std::uint64_t sd_endurance_writes = 100000;
  const edge::PeriodicIdleProfile* profile = nullptr;
  insitu::StudentConvergenceModel convergence;
};

class FleetNode {
 public:
  FleetNode(std::uint32_t id, const NodeParams& params, std::uint64_t seed);

  /// Trains through the duty profile over virtual [from, to) seconds:
  /// whole steps only, fractional window time carried forward. Also
  /// writes the periodic every-N snapshots that cadence implies (wear).
  /// Returns steps completed.
  std::uint64_t advance(double from_seconds, double to_seconds);

  /// Sync boundary: suspend-snapshot (one more SD write) and emit the
  /// interval's delta. @p now_seconds is the boundary's virtual time.
  [[nodiscard]] StudentDelta sync(double now_seconds);

  /// Power failure: roll back to the newest durable snapshot generation
  /// (possibly torn -> one generation further). Node is down afterwards.
  void crash(double now_seconds);

  /// Power restored.
  void recover(double now_seconds);

  /// Draws the node's next time-to-failure, seconds from now
  /// (exponential with the node's MTBF).
  [[nodiscard]] double draw_time_to_failure();

  [[nodiscard]] std::uint32_t id() const noexcept { return id_; }
  [[nodiscard]] bool down() const noexcept { return down_; }
  [[nodiscard]] bool worn_out() const noexcept { return worn_out_; }
  [[nodiscard]] std::uint64_t steps_done() const noexcept {
    return steps_done_;
  }
  [[nodiscard]] std::uint64_t steps_wasted() const noexcept {
    return steps_wasted_;
  }
  [[nodiscard]] std::uint64_t crashes() const noexcept { return crashes_; }
  [[nodiscard]] std::uint64_t recoveries() const noexcept {
    return recoveries_;
  }
  [[nodiscard]] std::uint64_t torn_snapshots() const noexcept {
    return torn_snapshots_;
  }
  [[nodiscard]] std::uint64_t sd_writes() const noexcept { return sd_writes_; }
  [[nodiscard]] std::uint64_t deltas_emitted() const noexcept {
    return deltas_emitted_;
  }
  [[nodiscard]] double accuracy() const {
    return params_.convergence.accuracy(static_cast<double>(steps_done_));
  }
  [[nodiscard]] bool converged() const {
    return params_.convergence.converged(static_cast<double>(steps_done_));
  }
  [[nodiscard]] const NodeParams& params() const noexcept { return params_; }

  /// Folds the node's observable state into a rolling CRC (replay tests
  /// compare fleet fingerprints; accumulation order is the caller's).
  [[nodiscard]] std::uint32_t fold_state(std::uint32_t crc_state) const;

 private:
  /// Uniform in (0, 1], fully specified (no std::distribution, whose
  /// algorithm is implementation-defined and would tie the replay
  /// fingerprint to a libstdc++ version).
  double uniform01();

  /// Records @p writes snapshot writes whose newest generation persists
  /// @p durable_step; advances the two-generation ring, applies SD wear.
  void count_snapshot_writes(std::uint64_t writes, std::uint64_t durable_step);

  std::uint32_t id_;
  NodeParams params_;
  std::uint64_t rng_state_;

  bool down_ = false;
  bool worn_out_ = false;
  double carry_seconds_ = 0.0;  ///< sub-step window time carried forward
  std::uint64_t steps_done_ = 0;
  std::uint64_t steps_at_last_sync_ = 0;
  std::uint64_t last_durable_step_ = 0;  ///< newest committed generation
  std::uint64_t prev_durable_step_ = 0;  ///< fallback generation (keep = 2)
  std::uint64_t periodic_snapshots_ = 0; ///< every-N writes already counted
  std::uint64_t sd_writes_ = 0;
  std::uint64_t steps_wasted_ = 0;
  std::uint64_t crashes_ = 0;
  std::uint64_t recoveries_ = 0;
  std::uint64_t torn_snapshots_ = 0;
  std::uint64_t deltas_emitted_ = 0;
};

/// SplitMix64 step: the standard seed mixer (also used to derive per-node
/// seeds from the fleet seed so adjacent node ids get uncorrelated
/// streams).
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state);

}  // namespace edgetrain::fleet
