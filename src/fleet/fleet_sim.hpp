// edgetrain: the whole-fleet discrete-event simulation.
//
// run_fleet() is the top of the fleet stack: it builds N simulated Waggle
// nodes (shared duty-cycle archetypes, per-node phase + failure clocks),
// drives them through a deterministic EventEngine to a virtual horizon,
// and hands every emitted StudentDelta to a DeltaSink -- which in the
// bench is a real multi-threaded FleetServer, so one process exercises
// the full edge-to-server loop at 10k-1M nodes.
//
// Determinism contract (what the replay tests pin down):
//   * a node's trajectory depends only on (config, node id): its RNG is
//     seeded by splitmix64(config.seed, id) and drawn in its own event
//     order, never shared;
//   * driver partitions are contiguous id ranges, each with its own
//     EventEngine, so per-partition traces are reproducible run-to-run
//     (trace_crc) and the id-ordered final-state fingerprint (state_crc)
//     is invariant across driver thread counts;
//   * the merged server aggregate is integer, hence identical no matter
//     how partitions interleave their ingests.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "calib/device_model.hpp"
#include "edge/scheduler.hpp"
#include "fleet/delta.hpp"
#include "fleet/node_model.hpp"

namespace edgetrain::fleet {

/// Where emitted deltas go. accept() must be thread-safe when run_fleet()
/// drives more than one partition (FleetServer::ingest qualifies; test
/// sinks use atomics or a mutex).
class DeltaSink {
 public:
  virtual ~DeltaSink() = default;
  virtual void accept(const StudentDelta& delta) = 0;
};

struct FleetConfig {
  std::uint32_t num_nodes = 10000;
  double horizon_seconds = 24.0 * 3600.0;
  /// Nodes sync (snapshot + upload a delta) once per interval.
  double sync_interval_seconds = 300.0;
  std::uint64_t seed = 1;

  /// Prices one training step: conv_us(step_flops, step_threads) on this
  /// model. Default from default_device_model() when points is empty.
  calib::DeviceModel device;
  double step_flops = 40.0e9;  ///< one student step (MobileNet-ish)
  int step_threads = 4;

  /// Distinct duty-cycle archetypes (sensing payloads) across the fleet;
  /// node i follows archetype i % duty_archetypes at its own phase.
  std::uint32_t duty_archetypes = 4;
  double duty_period_seconds = 600.0;

  // Failure / persistence knobs (NodeParams, fleet-wide).
  double mtbf_seconds = 6.0 * 3600.0;
  double repair_seconds = 120.0;
  double torn_snapshot_probability = 0.1;
  std::uint64_t snapshot_every_steps = 25;
  std::uint64_t sd_endurance_writes = 100000;
  insitu::StudentConvergenceModel convergence;
};

struct FleetReport {
  std::uint32_t num_nodes = 0;
  double horizon_seconds = 0.0;
  double step_seconds = 0.0;  ///< as priced by the device model
  std::uint64_t events_dispatched = 0;
  std::uint64_t deltas_emitted = 0;
  std::uint64_t steps_done = 0;
  std::uint64_t steps_wasted = 0;  ///< recomputed after crash rollbacks
  std::uint64_t crashes = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t torn_snapshots = 0;
  std::uint64_t sd_writes = 0;
  std::uint32_t worn_out_nodes = 0;
  std::uint32_t down_nodes = 0;  ///< still powered off at the horizon
  double mean_accuracy = 0.0;
  double converged_fraction = 0.0;

  /// XOR of the per-partition event-trace CRCs: replay fingerprint for a
  /// fixed (config, driver_threads) pair.
  std::uint32_t trace_crc = 0;
  /// CRC over every node's final state in id order: invariant across
  /// driver thread counts (the thread-equivalence test's handle).
  std::uint32_t state_crc = 0;
};

/// A plausible Waggle-node device model (XU4-class throughput) for benches
/// and tests that must not depend on on-host calibration.
[[nodiscard]] calib::DeviceModel default_device_model();

/// Builds the shared duty-cycle archetypes: one PeriodicIdleProfile per
/// sensing payload, foreground load rising with the archetype index (the
/// fleet spans nearly-idle nodes to heavily duty-cycled ones).
[[nodiscard]] std::vector<std::unique_ptr<edge::PeriodicIdleProfile>>
build_duty_profiles(const FleetConfig& config, double step_seconds);

/// Simulates the fleet to config.horizon_seconds. Every emitted delta is
/// passed to @p sink (may be nullptr: simulate only). @p driver_threads
/// contiguous node partitions run concurrently on the global pool;
/// per-node results are bit-identical for any value (see state_crc).
[[nodiscard]] FleetReport run_fleet(const FleetConfig& config,
                                    DeltaSink* sink,
                                    unsigned driver_threads = 1);

}  // namespace edgetrain::fleet
