#include "fleet/server.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>

#include "analysis/race/race.hpp"
#include "persist/atomic_file.hpp"
#include "persist/wire.hpp"

namespace edgetrain::fleet {

namespace {

constexpr std::uint32_t kAggregateMagic = 0x41465445;  // "ETFA"
constexpr std::uint32_t kAggregateVersion = 1;

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void atomic_store_max(std::atomic<std::uint64_t>& target,
                      std::uint64_t value) {
  std::uint64_t current = target.load(std::memory_order_relaxed);
  while (current < value &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

struct FleetServer::Shard {
  Mutex mutex;
  CondVar not_full;
  std::vector<StudentDelta> queue GUARDED_BY(mutex);
  /// Queued + being-merged deltas; flush() waits for zero. release on the
  /// producer / acquire on the consumer: flush() infers "my delta was
  /// merged" from this counter, so it must order the merge writes.
  std::atomic<std::int64_t> pending{0};
  MergeGroup* group = nullptr;

  /// Swap buffer. Merger-owned: it swaps with `queue` under `mutex` and is
  /// then drained UNLOCKED by the single merge thread that owns this shard,
  /// so it deliberately carries no GUARDED_BY (there is no lock to name).
  std::vector<StudentDelta> batch;
  std::vector<std::uint64_t> last_seq
      GUARDED_BY(agg_mutex);  ///< per node-slot dedup high-water

  mutable Mutex agg_mutex;
  FleetAggregate agg GUARDED_BY(agg_mutex);
};

struct FleetServer::MergeGroup {
  Mutex mutex;
  CondVar cv;
  std::vector<Shard*> shards;
  std::thread thread;
};

FleetServer::FleetServer(ServerConfig config) : config_(std::move(config)) {
  config_.shards = std::max<std::uint32_t>(config_.shards, 1);
  config_.queue_capacity = std::max<std::size_t>(config_.queue_capacity, 1);
  config_.merge_threads =
      std::clamp<std::uint32_t>(config_.merge_threads, 1, config_.shards);
  config_.latency_sample_every =
      std::max<std::uint32_t>(config_.latency_sample_every, 1);

  shards_.reserve(config_.shards);
  for (std::uint32_t s = 0; s < config_.shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
  groups_.reserve(config_.merge_threads);
  for (std::uint32_t g = 0; g < config_.merge_threads; ++g) {
    groups_.push_back(std::make_unique<MergeGroup>());
  }
  for (std::uint32_t s = 0; s < config_.shards; ++s) {
    MergeGroup& group = *groups_[s % config_.merge_threads];
    group.shards.push_back(shards_[s].get());
    shards_[s]->group = &group;
  }
  for (auto& group : groups_) {
    group->thread = std::thread([this, raw = group.get()] {
      merge_loop(*raw);
    });
  }
}

FleetServer::~FleetServer() { stop(); }

void FleetServer::record_latency_ns(std::uint64_t ns) {
  const int bit = 63 - std::countl_zero(ns | 1ULL);
  latency_histogram_[static_cast<std::size_t>(bit)].fetch_add(
      1, std::memory_order_relaxed);
  atomic_store_max(latency_max_ns_, ns);
}

void FleetServer::note_ingest_clock() {
  const std::uint64_t now = steady_now_ns();
  std::uint64_t expected = 0;
  first_ingest_ns_.compare_exchange_strong(expected, now,
                                           std::memory_order_relaxed);
  atomic_store_max(last_ingest_ns_, now);
}

void FleetServer::ingest(const StudentDelta& delta) {
  Shard& shard = *shards_[delta.node % config_.shards];

  thread_local std::uint32_t sample_tick = 0;
  const bool sampled = (sample_tick++ % config_.latency_sample_every) == 0;
  std::uint64_t t0 = 0;
  if (sampled) {
    note_ingest_clock();
    t0 = steady_now_ns();
  }

  {
    MutexLock lock(shard.mutex);
    if (shard.queue.size() >= config_.queue_capacity) {
      backpressure_waits_.fetch_add(1, std::memory_order_relaxed);
      while (shard.queue.size() >= config_.queue_capacity) {
        shard.not_full.wait(lock);
      }
    }
    EDGETRAIN_RACE_WRITE(shard.queue, "FleetServer shard queue");
    shard.queue.push_back(delta);
  }
  shard.pending.fetch_add(1, std::memory_order_release);
  ingested_.fetch_add(1, std::memory_order_relaxed);
  shard.group->cv.notify_one();

  if (sampled) record_latency_ns(steady_now_ns() - t0);
}

bool FleetServer::try_ingest(const StudentDelta& delta) {
  Shard& shard = *shards_[delta.node % config_.shards];
  {
    MutexLock lock(shard.mutex);
    if (shard.queue.size() >= config_.queue_capacity) return false;
    EDGETRAIN_RACE_WRITE(shard.queue, "FleetServer shard queue");
    shard.queue.push_back(delta);
  }
  shard.pending.fetch_add(1, std::memory_order_release);
  ingested_.fetch_add(1, std::memory_order_relaxed);
  shard.group->cv.notify_one();
  return true;
}

void FleetServer::merge_batch(Shard& shard,
                              const std::vector<StudentDelta>& batch) {
  MutexLock lock(shard.agg_mutex);
  EDGETRAIN_RACE_WRITE(shard.agg, "FleetServer shard aggregate");
  for (const StudentDelta& delta : batch) {
    const std::size_t slot = delta.node / config_.shards;
    if (slot >= shard.last_seq.size()) shard.last_seq.resize(slot + 1, 0);
    if (delta.seq <= shard.last_seq[slot]) {
      duplicate_drops_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (shard.last_seq[slot] == 0) ++shard.agg.nodes_seen;
    shard.last_seq[slot] = delta.seq;
    ++shard.agg.deltas;
    shard.agg.samples += delta.samples;
    shard.agg.loss_milli_sum += delta.loss_milli;
    for (std::size_t k = 0; k < kDeltaComponents; ++k) {
      shard.agg.weight_sum[k] += delta.weights[k];
    }
  }
}

void FleetServer::merge_loop(MergeGroup& group) {
  const auto any_work = [&group] {
    for (Shard* shard : group.shards) {
      if (shard->pending.load(std::memory_order_acquire) > 0) return true;
    }
    return false;
  };

  for (;;) {
    {
      // Producers notify without the group lock, so a wakeup can race the
      // predicate check; the timed wait bounds any missed notification.
      MutexLock lock(group.mutex);
      while (!any_work() && !stopping_.load(std::memory_order_acquire)) {
        if (group.cv.wait_for(lock, std::chrono::milliseconds(1)) ==
            std::cv_status::timeout) {
          break;
        }
      }
    }

    bool drained_everything = true;
    for (Shard* shard : group.shards) {
      {
        MutexLock lock(shard->mutex);
        if (shard->queue.empty()) continue;
        EDGETRAIN_RACE_WRITE(shard->queue, "FleetServer shard queue");
        shard->queue.swap(shard->batch);
      }
      shard->not_full.notify_all();
      merge_batch(*shard, shard->batch);
      merged_.fetch_add(shard->batch.size(), std::memory_order_relaxed);
      shard->pending.fetch_sub(static_cast<std::int64_t>(shard->batch.size()),
                               std::memory_order_release);
      shard->batch.clear();
      drained_everything = false;
    }
    maybe_snapshot();

    if (stopping_.load(std::memory_order_acquire) && drained_everything &&
        !any_work()) {
      return;
    }
  }
}

void FleetServer::maybe_snapshot() {
  if (config_.snapshot_path.empty() || config_.snapshot_every_deltas == 0) {
    return;
  }
  const std::uint64_t merged = merged_.load(std::memory_order_relaxed);
  std::uint64_t last = merged_at_last_snapshot_.load(std::memory_order_relaxed);
  if (merged - last < config_.snapshot_every_deltas) return;
  // One merger wins the right to commit this generation.
  if (!merged_at_last_snapshot_.compare_exchange_strong(
          last, merged, std::memory_order_relaxed)) {
    return;
  }
  try {
    write_aggregate_snapshot(config_.snapshot_path);
    snapshots_written_.fetch_add(1, std::memory_order_relaxed);
  } catch (const persist::AtomicFileError& error) {
    // A failed background commit must not take the ingest path down; the
    // next generation retries.
    std::fprintf(stderr, "fleet server: aggregate snapshot failed: %s\n",
                 error.what());
  }
}

void FleetServer::flush() {
  for (;;) {
    bool all_empty = true;
    for (const auto& shard : shards_) {
      if (shard->pending.load(std::memory_order_acquire) != 0) {
        all_empty = false;
        break;
      }
    }
    if (all_empty) return;
    for (auto& group : groups_) group->cv.notify_one();
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
}

void FleetServer::stop() {
  // Serialised: a concurrent stop() (say, an explicit stop racing the
  // destructor from another thread) must block until the first finishes,
  // not observe a half-joined server through an unsynchronised flag.
  MutexLock lock(stop_mu_);
  if (joined_) return;
  flush();
  stopping_.store(true, std::memory_order_release);
  for (auto& group : groups_) group->cv.notify_all();
  for (auto& group : groups_) {
    if (group->thread.joinable()) group->thread.join();
  }
  joined_ = true;
}

FleetAggregate FleetServer::aggregate() const {
  FleetAggregate total;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->agg_mutex);
    EDGETRAIN_RACE_READ(shard->agg, "FleetServer shard aggregate");
    total.deltas += shard->agg.deltas;
    total.samples += shard->agg.samples;
    total.loss_milli_sum += shard->agg.loss_milli_sum;
    total.nodes_seen += shard->agg.nodes_seen;
    for (std::size_t k = 0; k < kDeltaComponents; ++k) {
      total.weight_sum[k] += shard->agg.weight_sum[k];
    }
  }
  return total;
}

ServerStats FleetServer::stats() const {
  ServerStats stats;
  stats.ingested = ingested_.load(std::memory_order_relaxed);
  stats.merged = merged_.load(std::memory_order_relaxed);
  stats.duplicate_drops = duplicate_drops_.load(std::memory_order_relaxed);
  stats.backpressure_waits =
      backpressure_waits_.load(std::memory_order_relaxed);
  stats.snapshots_written = snapshots_written_.load(std::memory_order_relaxed);

  std::uint64_t total_samples = 0;
  std::array<std::uint64_t, kLatencyBuckets> counts{};
  for (std::size_t i = 0; i < kLatencyBuckets; ++i) {
    counts[i] = latency_histogram_[i].load(std::memory_order_relaxed);
    total_samples += counts[i];
  }
  const auto percentile = [&](double q) {
    if (total_samples == 0) return 0.0;
    const auto rank = static_cast<std::uint64_t>(
        q * static_cast<double>(total_samples - 1));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kLatencyBuckets; ++i) {
      seen += counts[i];
      if (seen > rank) {
        // Bucket i holds [2^i, 2^{i+1}) ns; report its geometric middle.
        return static_cast<double>(1ULL << i) * 1.5 / 1000.0;  // us
      }
    }
    return static_cast<double>(latency_max_ns_.load(
               std::memory_order_relaxed)) /
           1000.0;
  };
  stats.p50_ingest_us = percentile(0.50);
  stats.p99_ingest_us = percentile(0.99);
  stats.max_ingest_us =
      static_cast<double>(latency_max_ns_.load(std::memory_order_relaxed)) /
      1000.0;

  const std::uint64_t first = first_ingest_ns_.load(std::memory_order_relaxed);
  const std::uint64_t last = last_ingest_ns_.load(std::memory_order_relaxed);
  if (first != 0 && last > first) {
    stats.elapsed_seconds = static_cast<double>(last - first) * 1e-9;
    stats.ingests_per_second =
        static_cast<double>(stats.ingested) / stats.elapsed_seconds;
  }
  return stats;
}

void FleetServer::write_aggregate_snapshot(const std::string& path) const {
  const FleetAggregate agg = aggregate();
  persist::ByteWriter payload;
  payload.u64(agg.deltas);
  payload.u64(agg.samples);
  payload.i64(agg.loss_milli_sum);
  payload.u64(agg.nodes_seen);
  payload.u32(static_cast<std::uint32_t>(kDeltaComponents));
  for (const std::int64_t w : agg.weight_sum) payload.i64(w);
  const std::vector<std::uint8_t> framed =
      persist::frame_payload(kAggregateMagic, kAggregateVersion,
                             payload.bytes());
  persist::write_file_atomic(path, framed);
}

FleetAggregate FleetServer::read_aggregate_snapshot(const std::string& path) {
  const std::vector<std::uint8_t> body = persist::unframe_payload(
      kAggregateMagic, kAggregateVersion, persist::read_file_bytes(path));
  persist::ByteReader reader(body.data(), body.size());
  FleetAggregate agg;
  try {
    agg.deltas = reader.u64();
    agg.samples = reader.u64();
    agg.loss_milli_sum = reader.i64();
    agg.nodes_seen = reader.u64();
    const std::uint32_t components = reader.u32();
    if (components != kDeltaComponents) {
      throw persist::AtomicFileError("aggregate component count mismatch");
    }
    for (std::size_t k = 0; k < kDeltaComponents; ++k) {
      agg.weight_sum[k] = reader.i64();
    }
    if (!reader.exhausted()) {
      throw persist::AtomicFileError("trailing aggregate payload bytes");
    }
  } catch (const persist::AtomicFileError&) {
    throw;
  } catch (const std::runtime_error& error) {
    throw persist::AtomicFileError(std::string("malformed aggregate: ") +
                                   error.what());
  }
  return agg;
}

}  // namespace edgetrain::fleet
