#include "fleet/event_engine.hpp"

#include <algorithm>

#include "persist/crc32.hpp"

namespace edgetrain::fleet {

void EventEngine::schedule(std::uint64_t time_us, std::uint32_t node,
                           EventKind kind) {
  Event event;
  event.time_us = std::max(time_us, now_us_);
  event.seq = next_seq_++;
  event.node = node;
  event.kind = kind;
  heap_.push(event);
}

std::uint64_t EventEngine::run(std::uint64_t horizon_us,
                               EventHandler handler) {
  std::uint64_t count = 0;
  while (!heap_.empty() && heap_.top().time_us < horizon_us) {
    const Event event = heap_.top();
    heap_.pop();
    now_us_ = event.time_us;
    // Fold the record into the trace fingerprint before dispatch, so a
    // handler that throws still leaves a trace that names the culprit.
    struct Record {
      std::uint64_t time_us;
      std::uint64_t seq;
      std::uint32_t node;
      std::uint32_t kind;
    } record{event.time_us, event.seq, event.node,
             static_cast<std::uint32_t>(event.kind)};
    trace_state_ = persist::crc32_update(trace_state_, &record, sizeof(record));
    ++dispatched_;
    ++count;
    handler(event);
  }
  return count;
}

std::uint32_t EventEngine::trace_crc() const noexcept {
  return persist::crc32_final(trace_state_);
}

}  // namespace edgetrain::fleet
