// edgetrain: the fleet wire unit -- one node's sync-interval contribution.
//
// Every sync interval a node uploads (a) the quantized delta of its
// student weights since the last sync and (b) labelled-sample statistics
// from its harvester. Weights are fixed-point int32 rather than float ON
// PURPOSE: the central server accumulates them in int64, and integer
// addition is exactly associative and commutative, so the merged fleet
// aggregate is bit-identical no matter how producer threads interleave --
// which is what makes the deterministic-replay test possible against a
// genuinely multi-threaded server.
#pragma once

#include <array>
#include <cstdint>

namespace edgetrain::fleet {

/// Components in the quantized student-weight delta (a low-rank sketch of
/// the real update, sized for 10^5-10^6 nodes x 10^3 syncs in RAM).
inline constexpr std::size_t kDeltaComponents = 16;

struct StudentDelta {
  std::uint32_t node = 0;
  /// Per-node emission sequence number, strictly monotone from 1, so the
  /// server can drop duplicate/replayed uploads (at-most-once merge).
  std::uint64_t seq = 0;
  std::uint32_t samples = 0;     ///< labelled samples harvested this interval
  std::int32_t loss_milli = 0;   ///< student loss proxy, millis
  std::array<std::int32_t, kDeltaComponents> weights{};
};

}  // namespace edgetrain::fleet
