#include "fleet/fleet_sim.hpp"

#include <algorithm>
#include <cmath>

#include "fleet/event_engine.hpp"
#include "persist/crc32.hpp"
#include "tensor/parallel.hpp"

namespace edgetrain::fleet {

namespace {

std::uint64_t to_us(double seconds) {
  return static_cast<std::uint64_t>(std::llround(seconds * 1e6));
}

double to_seconds(std::uint64_t us) {
  return static_cast<double>(us) * 1e-6;
}

double mix_uniform01(std::uint64_t& state) {
  return (static_cast<double>(splitmix64(state) >> 11) + 1.0) *
         (1.0 / 9007199254740992.0);
}

/// One contiguous id range [begin, end) with its own engine: the unit of
/// driver-thread parallelism. Nothing in here is shared across partitions
/// except the sink.
struct Partition {
  std::uint32_t begin = 0;
  std::uint32_t end = 0;
  EventEngine engine;
  std::vector<FleetNode> nodes;
  std::vector<std::uint64_t> last_us;       ///< time each node advanced to
  std::vector<std::uint64_t> expected_sync_us;  ///< stale-sync filter
};

}  // namespace

calib::DeviceModel default_device_model() {
  // XU4-class numbers (paper Table: big.LITTLE A15/A7 board with an SD
  // card): sub-linear thread scaling, tens-of-MB/s SD, milliseconds of
  // per-op latency.
  calib::DeviceModel model;
  model.points = {{1, 2.1, 1.6}, {2, 3.9, 3.0}, {4, 6.8, 5.2}, {8, 8.9, 6.7}};
  model.memcpy_bytes_per_sec = 3.2e9;
  model.disk_write_bytes_per_sec = 22.0e6;
  model.disk_read_bytes_per_sec = 38.0e6;
  model.disk_write_latency_us = 4000.0;
  model.disk_read_latency_us = 1500.0;
  return model;
}

std::vector<std::unique_ptr<edge::PeriodicIdleProfile>> build_duty_profiles(
    const FleetConfig& config, double step_seconds) {
  const std::uint32_t count = std::max<std::uint32_t>(config.duty_archetypes, 1);
  const double period = std::max(config.duty_period_seconds, 60.0);
  std::vector<std::unique_ptr<edge::PeriodicIdleProfile>> profiles;
  profiles.reserve(count);
  for (std::uint32_t a = 0; a < count; ++a) {
    // Foreground load rises with the archetype index: sensing every minute
    // (10%..60% of the CPU) plus a periodic uplink burst, so the fleet
    // spans nearly-idle roof nodes to heavily duty-cycled intersections.
    const double load = count > 1
                            ? static_cast<double>(a) /
                                  static_cast<double>(count - 1)
                            : 0.0;
    edge::IdleScheduler scheduler(step_seconds);
    for (edge::ForegroundTask& task : edge::periodic_tasks(
             "sensing", 60.0, 6.0 + 30.0 * load, /*priority=*/1, period)) {
      scheduler.add_task(std::move(task));
    }
    for (edge::ForegroundTask& task : edge::periodic_tasks(
             "uplink", 293.0, 7.0, /*priority=*/2, period)) {
      scheduler.add_task(std::move(task));
    }
    profiles.push_back(
        std::make_unique<edge::PeriodicIdleProfile>(scheduler, period));
  }
  return profiles;
}

FleetReport run_fleet(const FleetConfig& config, DeltaSink* sink,
                      unsigned driver_threads) {
  const calib::DeviceModel device =
      config.device.points.empty() ? default_device_model() : config.device;
  // Price one training step on the (calibrated) device; floor at 1 ms so a
  // degenerate model cannot produce billions of steps per window.
  const double step_seconds = std::max(
      device.conv_us(config.step_flops, config.step_threads) * 1e-6, 1e-3);

  const auto profiles = build_duty_profiles(config, step_seconds);
  const std::uint64_t horizon_us = to_us(config.horizon_seconds);
  const std::uint64_t sync_us =
      std::max<std::uint64_t>(to_us(config.sync_interval_seconds), 1);

  NodeParams base;
  base.step_seconds = step_seconds;
  base.mtbf_seconds = config.mtbf_seconds;
  base.repair_seconds = config.repair_seconds;
  base.torn_snapshot_probability = config.torn_snapshot_probability;
  base.snapshot_every_steps = config.snapshot_every_steps;
  base.sd_endurance_writes = config.sd_endurance_writes;
  base.convergence = config.convergence;

  const std::uint32_t num_nodes = std::max<std::uint32_t>(config.num_nodes, 1);
  const auto partitions_wanted = static_cast<std::uint32_t>(
      std::clamp<unsigned>(driver_threads, 1, 256));
  const std::uint32_t num_partitions = std::min(partitions_wanted, num_nodes);

  std::vector<Partition> partitions(num_partitions);
  for (std::uint32_t p = 0; p < num_partitions; ++p) {
    Partition& part = partitions[p];
    part.begin = static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(num_nodes) * p) / num_partitions);
    part.end = static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(num_nodes) * (p + 1)) / num_partitions);
    const std::size_t count = part.end - part.begin;
    part.nodes.reserve(count);
    part.last_us.assign(count, 0);
    part.expected_sync_us.assign(count, 0);

    for (std::uint32_t id = part.begin; id < part.end; ++id) {
      // Everything node-specific -- RNG stream, duty phase, first-sync
      // stagger -- derives from (fleet seed, id) alone, never from the
      // partition layout, so trajectories survive re-partitioning.
      std::uint64_t mix =
          config.seed ^ (static_cast<std::uint64_t>(id) + 1) * 0x100000001B3ULL;
      const std::uint64_t node_seed = splitmix64(mix);

      NodeParams params = base;
      const auto& profile = *profiles[id % profiles.size()];
      params.profile = &profile;
      params.phase_seconds = mix_uniform01(mix) * profile.period_seconds();
      part.nodes.emplace_back(id, params, node_seed);
      FleetNode& node = part.nodes.back();

      const std::size_t local = id - part.begin;
      const std::uint64_t first_sync =
          std::max<std::uint64_t>(to_us(mix_uniform01(mix) *
                                        config.sync_interval_seconds),
                                  1);
      part.expected_sync_us[local] = first_sync;
      part.engine.schedule(first_sync, id, EventKind::Sync);
      part.engine.schedule(to_us(node.draw_time_to_failure()), id,
                           EventKind::Crash);
    }
  }

  const auto run_partition = [&](Partition& part) {
    const auto handler = [&](const Event& event) {
      const std::size_t local = event.node - part.begin;
      FleetNode& node = part.nodes[local];
      const std::uint64_t now = event.time_us;
      switch (event.kind) {
        case EventKind::Sync: {
          // Stale syncs: scheduled before a crash (wrong timestamp) or
          // arriving while the node is still dark.
          if (node.down() || part.expected_sync_us[local] != now) break;
          node.advance(to_seconds(part.last_us[local]), to_seconds(now));
          part.last_us[local] = now;
          const StudentDelta delta = node.sync(to_seconds(now));
          if (sink != nullptr) sink->accept(delta);
          part.expected_sync_us[local] = now + sync_us;
          part.engine.schedule(now + sync_us, event.node, EventKind::Sync);
          break;
        }
        case EventKind::Crash: {
          if (node.down()) break;  // defensive: one outstanding per up-period
          node.advance(to_seconds(part.last_us[local]), to_seconds(now));
          part.last_us[local] = now;
          node.crash(to_seconds(now));
          part.engine.schedule(now + to_us(config.repair_seconds), event.node,
                               EventKind::Recover);
          break;
        }
        case EventKind::Recover: {
          node.recover(to_seconds(now));
          part.last_us[local] = now;
          part.expected_sync_us[local] = now + sync_us;
          part.engine.schedule(now + sync_us, event.node, EventKind::Sync);
          part.engine.schedule(now + to_us(node.draw_time_to_failure()),
                               event.node, EventKind::Crash);
          break;
        }
      }
    };
    part.engine.run(horizon_us, handler);
    // Tail: surviving nodes train through the last partial sync interval.
    for (std::size_t local = 0; local < part.nodes.size(); ++local) {
      FleetNode& node = part.nodes[local];
      if (!node.down()) {
        node.advance(to_seconds(part.last_us[local]),
                     to_seconds(horizon_us));
        part.last_us[local] = horizon_us;
      }
    }
  };

  if (num_partitions == 1) {
    run_partition(partitions[0]);
  } else {
    edgetrain::parallel_for(
        0, static_cast<std::int64_t>(num_partitions), 1,
        [&](std::int64_t chunk_begin, std::int64_t chunk_end) {
          for (std::int64_t p = chunk_begin; p < chunk_end; ++p) {
            run_partition(partitions[static_cast<std::size_t>(p)]);
          }
        });
  }

  FleetReport report;
  report.num_nodes = num_nodes;
  report.horizon_seconds = config.horizon_seconds;
  report.step_seconds = step_seconds;
  std::uint32_t state = 0xFFFFFFFFU;
  double accuracy_sum = 0.0;
  std::uint64_t converged = 0;
  for (const Partition& part : partitions) {
    report.events_dispatched += part.engine.events_dispatched();
    report.trace_crc ^= part.engine.trace_crc();
    for (const FleetNode& node : part.nodes) {
      report.deltas_emitted += node.deltas_emitted();
      report.steps_done += node.steps_done();
      report.steps_wasted += node.steps_wasted();
      report.crashes += node.crashes();
      report.recoveries += node.recoveries();
      report.torn_snapshots += node.torn_snapshots();
      report.sd_writes += node.sd_writes();
      if (node.worn_out()) ++report.worn_out_nodes;
      if (node.down()) ++report.down_nodes;
      accuracy_sum += node.accuracy();
      if (node.converged()) ++converged;
      state = node.fold_state(state);
    }
  }
  report.state_crc = persist::crc32_final(state);
  report.mean_accuracy = accuracy_sum / static_cast<double>(num_nodes);
  report.converged_fraction =
      static_cast<double>(converged) / static_cast<double>(num_nodes);
  return report;
}

}  // namespace edgetrain::fleet
