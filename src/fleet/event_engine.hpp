// edgetrain: deterministic discrete-event engine for fleet simulation.
//
// The Array of Things deployment the paper targets is hundreds to
// thousands of Waggle nodes training in situ. Simulating 10k-1M of them
// in one process rules out wall-clock pacing and per-node threads; the
// classical tool is a discrete-event simulation: a virtual clock plus a
// binary-heap event queue, where every node action (a sync boundary, a
// power failure, a recovery) is an event at a virtual timestamp and
// handlers schedule the follow-on events.
//
// Determinism is a hard requirement -- the replay test re-runs a fleet
// from the same seed and demands the identical event trace -- so ties are
// broken by a monotonically assigned sequence number (heap order is
// (time, seq)), and the engine keeps a rolling CRC-32 over the dispatched
// event records as the trace fingerprint.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "tensor/function_ref.hpp"

namespace edgetrain::fleet {

/// What a dispatched event asks its node to do.
enum class EventKind : std::uint8_t {
  Sync = 0,     ///< idle-window sync boundary: train, snapshot, emit delta
  Crash = 1,    ///< power failure: lose progress since the last snapshot
  Recover = 2,  ///< power restored: rejoin the duty cycle
};

struct Event {
  std::uint64_t time_us = 0;  ///< virtual time, microseconds
  std::uint64_t seq = 0;      ///< tie-break: schedule order within a time
  std::uint32_t node = 0;
  EventKind kind = EventKind::Sync;
};

/// Handler invoked for each dispatched event; may schedule more events.
using EventHandler = FunctionRef<void(const Event&)>;

class EventEngine {
 public:
  /// Enqueues an event; callable before run() and from inside a handler.
  /// Events at times earlier than the current virtual clock are clamped to
  /// "now" (they dispatch next) so a handler cannot travel backwards.
  void schedule(std::uint64_t time_us, std::uint32_t node, EventKind kind);

  /// Dispatches events in (time, seq) order until the queue empties or the
  /// next event is at or past @p horizon_us (events at the horizon do not
  /// run: the horizon is exclusive). Returns the number dispatched.
  std::uint64_t run(std::uint64_t horizon_us, EventHandler handler);

  /// Virtual clock: timestamp of the most recently dispatched event.
  [[nodiscard]] std::uint64_t now_us() const noexcept { return now_us_; }

  [[nodiscard]] std::uint64_t events_dispatched() const noexcept {
    return dispatched_;
  }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }

  /// Rolling CRC-32 over every dispatched (time, seq, node, kind) record:
  /// two runs are replays of each other iff the fingerprints match.
  [[nodiscard]] std::uint32_t trace_crc() const noexcept;

 private:
  struct Order {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time_us != b.time_us) return a.time_us > b.time_us;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Order> heap_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t now_us_ = 0;
  std::uint64_t dispatched_ = 0;
  std::uint32_t trace_state_ = 0xFFFFFFFFU;  // crc32_init()
};

}  // namespace edgetrain::fleet
