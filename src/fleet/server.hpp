// edgetrain: the central fleet aggregation service.
//
// The "millions of users, heavy traffic" tier: every node in the fleet
// uploads a StudentDelta per sync interval, and one server process must
// ingest them at six-figure request rates on edge-class hardware. The
// design is the classic sharded-ingest pipeline:
//
//   producers --> [shard 0: bounded queue + striped lock] --> merger A
//             --> [shard 1: bounded queue + striped lock] --> merger A
//             --> [shard 2: ...                         ] --> merger B
//
//   * a delta's shard is node % shards, so one node's uploads are totally
//     ordered by a single queue (per-node at-most-once dedup is local to
//     a shard -- no global lock anywhere);
//   * queues are bounded: a full shard blocks the producer (back-pressure,
//     counted) instead of growing without bound on a 2 GB node;
//   * merge threads drain whole batches by swapping the queue vector out
//     under the lock -- the lock is held for O(1) swaps, never for the
//     merge itself;
//   * aggregation is int64 on the fixed-point deltas, so the merged state
//     is exactly order-independent: a multi-threaded run is bit-identical
//     to a serial one (the deterministic-replay tests rely on this);
//   * ingest latency is sampled into a log2 histogram (p50/p99 without
//     storing per-request timestamps);
//   * the merged aggregate is periodically committed to disk through
//     persist::atomic_file ("ETFA" frame), the same torn-write-proof
//     protocol trainer snapshots use.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/thread_annotations.hpp"
#include "fleet/delta.hpp"

namespace edgetrain::fleet {

struct ServerConfig {
  std::uint32_t shards = 32;
  /// Max queued deltas per shard before producers block.
  std::size_t queue_capacity = 4096;
  /// Merge threads; shards are striped across them. Clamped to [1, shards].
  std::uint32_t merge_threads = 2;
  /// Sample every Nth ingest's latency (1 = every request).
  std::uint32_t latency_sample_every = 64;
  /// When non-empty, the mergers commit the fleet aggregate to this path
  /// every snapshot_every_deltas merged deltas (atomic rename, "ETFA").
  std::string snapshot_path;
  std::uint64_t snapshot_every_deltas = 0;
};

/// The merged fleet state. All sums are integer, hence exactly
/// order-independent under any producer/merger interleaving.
struct FleetAggregate {
  std::uint64_t deltas = 0;
  std::uint64_t samples = 0;
  std::int64_t loss_milli_sum = 0;
  std::uint64_t nodes_seen = 0;
  std::array<std::int64_t, kDeltaComponents> weight_sum{};

  [[nodiscard]] bool operator==(const FleetAggregate&) const = default;

  /// Mean student loss across merged deltas (the fleet convergence signal).
  [[nodiscard]] double mean_loss() const {
    return deltas > 0
               ? static_cast<double>(loss_milli_sum) /
                     (1000.0 * static_cast<double>(deltas))
               : 0.0;
  }
};

struct ServerStats {
  std::uint64_t ingested = 0;
  std::uint64_t merged = 0;
  std::uint64_t duplicate_drops = 0;
  std::uint64_t backpressure_waits = 0;
  std::uint64_t snapshots_written = 0;
  double p50_ingest_us = 0.0;
  double p99_ingest_us = 0.0;
  double max_ingest_us = 0.0;
  double elapsed_seconds = 0.0;   ///< first ingest -> last ingest
  double ingests_per_second = 0.0;
};

class FleetServer {
 public:
  explicit FleetServer(ServerConfig config);
  ~FleetServer();  ///< stop() if still running

  FleetServer(const FleetServer&) = delete;
  FleetServer& operator=(const FleetServer&) = delete;

  /// Thread-safe. Enqueues one delta; blocks while the shard queue is full
  /// (back-pressure). Must not be called after stop().
  void ingest(const StudentDelta& delta);

  /// Non-blocking variant: returns false instead of waiting on a full
  /// shard (callers that would rather drop or retry later).
  [[nodiscard]] bool try_ingest(const StudentDelta& delta);

  /// Blocks until every delta ingested so far has been merged.
  void flush();

  /// Drains all queues, then joins the merge threads. Idempotent.
  void stop();

  /// Snapshot of the merged state (takes the shard merge locks briefly;
  /// callable concurrently with ingest, exact after flush()).
  [[nodiscard]] FleetAggregate aggregate() const;

  [[nodiscard]] ServerStats stats() const;
  [[nodiscard]] const ServerConfig& config() const noexcept {
    return config_;
  }

  /// Commits the current aggregate to @p path (atomic rename, "ETFA"
  /// dual-CRC frame). Throws persist::AtomicFileError on IO failure.
  void write_aggregate_snapshot(const std::string& path) const;

  /// Reads a committed aggregate snapshot. Throws persist::AtomicFileError
  /// on any corruption (CRC, magic, truncation).
  [[nodiscard]] static FleetAggregate read_aggregate_snapshot(
      const std::string& path);

 private:
  struct Shard;
  struct MergeGroup;

  void merge_loop(MergeGroup& group);
  void merge_batch(Shard& shard, const std::vector<StudentDelta>& batch);
  void record_latency_ns(std::uint64_t ns);
  void note_ingest_clock();
  void maybe_snapshot();

  // Locking discipline: each Shard carries two independent capabilities --
  // `mutex` guards the producer-facing bounded queue (held only for O(1)
  // push/swap, never across a merge), `agg_mutex` guards the merged
  // aggregate + dedup high-water marks (held for the batch merge, never
  // while holding `mutex`). Server-wide counters are std::atomic with
  // relaxed ordering on purpose: they are monotonic statistics, never used
  // to publish other memory (the queue hand-off itself synchronises via
  // `mutex`, and `pending` uses release/acquire because flush() infers
  // "merge completed" from it). stop_mu_ serialises stop() calls.
  ServerConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<MergeGroup>> groups_;
  std::atomic<bool> stopping_{false};
  Mutex stop_mu_;
  /// True once the merge threads are joined. Guarded: two racing stop()
  /// calls (e.g. explicit stop vs destructor on another thread) used to
  /// both read false from a plain bool and double-join the threads.
  bool joined_ GUARDED_BY(stop_mu_) = false;

  std::atomic<std::uint64_t> ingested_{0};
  std::atomic<std::uint64_t> merged_{0};
  std::atomic<std::uint64_t> duplicate_drops_{0};
  std::atomic<std::uint64_t> backpressure_waits_{0};
  std::atomic<std::uint64_t> snapshots_written_{0};
  std::atomic<std::uint64_t> merged_at_last_snapshot_{0};
  std::atomic<std::uint64_t> first_ingest_ns_{0};
  std::atomic<std::uint64_t> last_ingest_ns_{0};

  /// Log2-bucketed ingest-latency histogram, nanoseconds.
  static constexpr std::size_t kLatencyBuckets = 64;
  std::array<std::atomic<std::uint64_t>, kLatencyBuckets> latency_histogram_{};
  std::atomic<std::uint64_t> latency_max_ns_{0};
};

}  // namespace edgetrain::fleet
