#include "fleet/node_model.hpp"

#include <algorithm>
#include <cmath>

#include "persist/crc32.hpp"

namespace edgetrain::fleet {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

FleetNode::FleetNode(std::uint32_t id, const NodeParams& params,
                     std::uint64_t seed)
    : id_(id), params_(params), rng_state_(seed) {}

double FleetNode::uniform01() {
  // 53 mantissa bits, +1 so the result is in (0, 1] and log() never sees 0.
  return (static_cast<double>(splitmix64(rng_state_) >> 11) + 1.0) *
         (1.0 / 9007199254740992.0);
}

double FleetNode::draw_time_to_failure() {
  return -params_.mtbf_seconds * std::log(uniform01());
}

void FleetNode::count_snapshot_writes(std::uint64_t writes,
                                      std::uint64_t durable_step) {
  if (worn_out_ || writes == 0) return;
  sd_writes_ += writes;
  // The generation ring (persist::SnapshotManager keep=2): the batch's
  // newest write becomes generation 0, what was newest becomes the
  // fallback.
  prev_durable_step_ = last_durable_step_;
  last_durable_step_ = std::max(last_durable_step_, durable_step);
  if (sd_writes_ >= params_.sd_endurance_writes) {
    // Card is read-only from here: the durable generations freeze and
    // every later crash loses all progress past them.
    worn_out_ = true;
  }
}

std::uint64_t FleetNode::advance(double from_seconds, double to_seconds) {
  if (down_ || to_seconds <= from_seconds || params_.profile == nullptr) {
    return 0;
  }
  carry_seconds_ += params_.profile->training_seconds(
      from_seconds, to_seconds, params_.phase_seconds);
  const auto steps =
      static_cast<std::uint64_t>(carry_seconds_ / params_.step_seconds);
  carry_seconds_ -= static_cast<double>(steps) * params_.step_seconds;
  steps_done_ += steps;

  // Periodic every-N snapshots the ResumableTrainer cadence implies.
  const std::uint64_t n = std::max<std::uint64_t>(
      params_.snapshot_every_steps, 1);
  const std::uint64_t cadence_total = steps_done_ / n;
  if (cadence_total > periodic_snapshots_) {
    count_snapshot_writes(cadence_total - periodic_snapshots_,
                          cadence_total * n);
    periodic_snapshots_ = cadence_total;
  }
  return steps;
}

StudentDelta FleetNode::sync(double /*now_seconds*/) {
  // Suspend at the window close: one more durable generation holding the
  // exact current step (unless the card is worn out).
  count_snapshot_writes(1, steps_done_);

  StudentDelta delta;
  delta.node = id_;
  delta.seq = ++deltas_emitted_;
  // Steps the server has not seen yet. After a crash rollback the counter
  // can sit below the high-water mark; those recomputed steps were already
  // uploaded once and must not be double-counted.
  if (steps_done_ > steps_at_last_sync_) {
    delta.samples =
        static_cast<std::uint32_t>(steps_done_ - steps_at_last_sync_);
    steps_at_last_sync_ = steps_done_;
  }
  const double acc = accuracy();
  delta.loss_milli =
      static_cast<std::int32_t>(std::lround((1.0 - acc) * 1000.0));
  // Quantized pseudo-delta: update magnitude decays as the student
  // converges (the aggregate's shrinking norm is the fleet's convergence
  // signal on the server side).
  const double gap = params_.convergence.ceiling - params_.convergence.baseline;
  const double progress =
      gap > 0.0
          ? std::clamp((acc - params_.convergence.baseline) / gap, 0.0, 1.0)
          : 1.0;
  const double scale = 1000.0 * (1.0 - progress) + 1.0;
  for (std::size_t k = 0; k < kDeltaComponents; ++k) {
    const double u = 2.0 * uniform01() - 1.0;
    delta.weights[k] = static_cast<std::int32_t>(std::lround(u * scale));
  }
  return delta;
}

void FleetNode::crash(double /*now_seconds*/) {
  ++crashes_;
  down_ = true;
  std::uint64_t durable = last_durable_step_;
  if (uniform01() < params_.torn_snapshot_probability) {
    // The crash caught the newest generation mid-write: it fails CRC on
    // reboot and recovery falls back one generation.
    ++torn_snapshots_;
    durable = std::min(durable, prev_durable_step_);
  }
  durable = std::min(durable, steps_done_);
  steps_wasted_ += steps_done_ - durable;
  steps_done_ = durable;
  carry_seconds_ = 0.0;  // the in-flight step dies with the power
  const std::uint64_t n = std::max<std::uint64_t>(
      params_.snapshot_every_steps, 1);
  periodic_snapshots_ = steps_done_ / n;
}

void FleetNode::recover(double /*now_seconds*/) {
  down_ = false;
  ++recoveries_;
}

std::uint32_t FleetNode::fold_state(std::uint32_t crc_state) const {
  struct Record {
    std::uint64_t steps_done;
    std::uint64_t steps_wasted;
    std::uint64_t crashes;
    std::uint64_t recoveries;
    std::uint64_t torn;
    std::uint64_t sd_writes;
    std::uint64_t deltas;
    std::uint32_t flags;
    std::uint32_t id;
  } record{steps_done_,
           steps_wasted_,
           crashes_,
           recoveries_,
           torn_snapshots_,
           sd_writes_,
           deltas_emitted_,
           (down_ ? 1U : 0U) | (worn_out_ ? 2U : 0U),
           id_};
  return persist::crc32_update(crc_state, &record, sizeof(record));
}

}  // namespace edgetrain::fleet
