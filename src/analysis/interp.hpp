// edgetrain: abstract interpretation of checkpointing schedules.
//
// The Schedule IR (core/schedule.hpp) is the trust boundary between the
// schedulers (binomial Revolve, uniform segmentation, heterogeneous DP,
// two-level disk Revolve) and the executor that replays the IR against a
// real network. A scheduler bug does not crash: it silently corrupts
// gradients or blows the device memory budget. This module *proves*, per
// schedule, that the IR is safe to execute, by running it through an
// abstract machine whose state is exactly the information the executor's
// correctness depends on:
//
//   current state index | adjoint frontier | live intermediates per step |
//   slot contents       | RAM/disk slot occupancy | cost accumulators
//
// The interpreter checks every invariant the paper's transformation relies
// on and a few the concrete validator (Schedule::validate) cannot see:
//
//   * every Backward consumes intermediates that are provably live;
//   * every Restore reads a slot holding exactly the claimed state;
//   * Free never orphans a state a later Restore still needs (a backward
//     liveness pass over the action stream);
//   * peak activation units never exceed the planner's analytic bound;
//   * total work, under the paper's cost convention (forwards at per-step
//     cost, backwards at the same, IO at the two-level model's weights),
//     never exceeds the scheduler's promise (<= 2 * rho * l);
//   * the reversal completes: every step reversed exactly once, in order.
//
// Violations are reported as machine-readable findings; warnings (redundant
// frees, dead stores) are reported but do not fail a schedule. The sweep
// driver (analysis/sweep.hpp) and the schedule_lint CLI run this
// interpreter over parameter grids covering every scheduler family.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "core/schedule.hpp"

namespace edgetrain::analysis {

/// Invariant classes the interpreter checks. Each finding names one.
enum class Check : std::uint8_t {
  StepRange,          ///< forward/backward step index outside [0, l)
  ForwardState,       ///< forward of step i while holding a state != i
  SaveAlreadyLive,    ///< ForwardSave of a step whose intermediates are live
  BackwardOrder,      ///< Backward out of l-1..0 order
  BackwardLiveness,   ///< Backward without live intermediates
  SlotRange,          ///< slot id outside [0, num_slots)
  StoreState,         ///< Store claims a state other than the current one
  RestoreEmpty,       ///< Restore from an empty slot
  RestoreState,       ///< Restore claims a state the slot does not hold
  FreeOrphan,         ///< Free of a slot a later Restore still needs
  Completion,         ///< reversal incomplete at end of program
  MemoryBound,        ///< peak activation units exceed the analytic bound
  WeightedMemoryBound,///< codec-weighted peak units exceed the planner bound
  SlotBound,          ///< peak RAM slot occupancy exceeds the analytic bound
  WorkBound,          ///< total cost exceeds the scheduler's promise
  RedundantFree,      ///< (warning) Free of an already-empty slot
  DeadStore,          ///< (warning) Store never restored before overwrite/end
};

[[nodiscard]] std::string to_string(Check check);

enum class Severity : std::uint8_t { Error, Warning };

/// One diagnosed fact about a schedule.
struct Finding {
  Severity severity = Severity::Error;
  Check check = Check::Completion;
  /// Action index the finding anchors to; -1 for end-of-program findings.
  std::int64_t position = -1;
  std::string detail;
};

/// Cost model under which the interpreter accumulates work. Defaults give
/// the paper's homogeneous unit-cost convention; the heterogeneous solver
/// supplies per-step costs, the two-level solver supplies IO weights.
struct CostModel {
  /// Per-step forward cost; empty means unit cost for every step. Backward
  /// of step i is charged the same weight (the paper's bwd_ratio = 1).
  std::vector<double> step_costs;
  /// Slots >= first_disk_slot are disk checkpoints (two-level schedules).
  std::int32_t first_disk_slot = std::numeric_limits<std::int32_t>::max();
  /// Forward-unit cost of writing / reading a disk checkpoint.
  double disk_write_cost = 0.0;
  double disk_read_cost = 0.0;
  /// Model disk IO as overlapped with compute (AsyncDiskSlotStore): a
  /// single FIFO background worker with bounded staging, simulated as a
  /// pipeline. io_cost then accumulates only the *stall* time the pipeline
  /// cannot hide -- writes stall when the write-staging budget is full,
  /// restores stall when their read has not completed by consumption time
  /// -- so total_cost() is the modeled wall-clock of the overlapped
  /// replay. Because a stall only accrues while the worker is busy, the
  /// overlapped total never exceeds the serial total (compute + full IO)
  /// and never undercuts the pure-compute cost.
  bool overlapped_io = false;
  /// Staging budgets of the async store (must match the executing store's
  /// AsyncDiskSlotStoreOptions for the wall-clock model to be faithful).
  int write_staging_slots = 1;
  int read_staging_slots = 1;
  /// Bytes a resting (slot-stored or staged) checkpoint costs relative to
  /// plaintext, in (0, 1]: the slot codec's planning ratio. Weighted peak
  /// accounting charges occupied RAM slots and write-behind staging at this
  /// ratio while live intermediates stay at 1 -- exactly the planner's
  /// peak(s) = fixed + (1 + s * ratio) * act model, in activation units.
  double slot_bytes_ratio = 1.0;
  /// Measured per-slot resting ratios, keyed by slot id (e.g. from
  /// SlotStore::measured_slot_ratio after a pass). Slots past the vector's
  /// end fall back to slot_bytes_ratio; empty keeps the homogeneous model
  /// bit-identical. With per-slot ratios the weighted peak charges each
  /// occupied RAM slot at its own ratio (chain-input slot 0 excluded, as
  /// in peak_memory_units), which is the planner's per-slot prefix-sum
  /// peak model and the bound schedule_lint re-checks after a re-plan.
  std::vector<double> slot_bytes_ratios;

  [[nodiscard]] double step_cost(std::int32_t step) const {
    if (step_costs.empty()) return 1.0;
    return step_costs[static_cast<std::size_t>(step)];
  }
  [[nodiscard]] bool is_disk_slot(std::int32_t slot) const noexcept {
    return slot >= first_disk_slot;
  }
  /// Resting ratio charged for @p slot: the measured per-slot entry when
  /// one exists, slot_bytes_ratio otherwise.
  [[nodiscard]] double slot_ratio(std::int32_t slot) const noexcept {
    return slot >= 0 &&
                   static_cast<std::size_t>(slot) < slot_bytes_ratios.size()
               ? slot_bytes_ratios[static_cast<std::size_t>(slot)]
               : slot_bytes_ratio;
  }
};

/// Analytic bounds the schedule must stay within. Unset bounds are not
/// checked; the sweep driver fills them from each scheduler's own model.
struct Bounds {
  /// Peak RAM activation units: occupied RAM slots plus steps with live
  /// intermediates, minus one for the chain input (the convention of
  /// ScheduleStats::peak_memory_units). Revolve with s free slots promises
  /// s + 1; the planner's peak(s) formula counts the same quantity.
  std::optional<int> max_memory_units;
  /// Peak simultaneously occupied RAM slots (disk slots excluded).
  std::optional<int> max_ram_slots;
  /// Total cost bound: weighted forwards + weighted backwards + IO. The
  /// paper's work budget for recompute factor rho is 2 * rho * l.
  std::optional<double> max_total_cost;
  /// Codec-weighted peak activation units (Facts::peak_weighted_units must
  /// stay <= this). For the one-live-save schedule families (binomial
  /// Revolve, two-level disk Revolve) with s free slots and a codec of
  /// ratio r the planner promises 1 + r * s (+ r * staging when the
  /// overlapped-IO model is on). Families that keep several live saves at
  /// once (sequential segmentation, full storage) have no such closed form
  /// -- leave it unset there.
  std::optional<double> max_weighted_units;
};

/// Quantities measured by one abstract run.
struct Facts {
  std::int64_t advances = 0;
  std::int64_t forward_saves = 0;
  /// ForwardSaves executed while the adjoint frontier already sat at the
  /// step's output: the paper's Backward unit absorbs exactly these
  /// re-materialisations, so they are charged no forward cost.
  std::int64_t absorbed_saves = 0;
  std::int64_t backwards = 0;
  std::int64_t stores = 0;
  std::int64_t restores = 0;
  std::int64_t frees = 0;
  int peak_slots_in_use = 0;       ///< all slots (RAM + disk)
  int peak_ram_slots_in_use = 0;   ///< slots below first_disk_slot
  int peak_disk_slots_in_use = 0;  ///< slots at/above first_disk_slot
  int peak_live_saves = 0;         ///< steps with live intermediates
  /// Occupied RAM slots + live saves - 1 (the ScheduleStats convention:
  /// the stored chain input is the data buffer, not a counted activation).
  int peak_memory_units = 0;
  /// Same quantity with resting checkpoints (occupied RAM slots minus the
  /// input, plus write-behind staging) charged at CostModel::
  /// slot_bytes_ratio and live intermediates at 1: peak RAM in plaintext
  /// activation units when slots hold codec blobs. Equals
  /// peak_memory_units when the ratio is 1.
  double peak_weighted_units = 0.0;
  double forward_cost = 0.0;   ///< weighted advances + unabsorbed saves
  double backward_cost = 0.0;  ///< weighted backwards
  /// Serial model: full disk write/read charges. Overlapped model
  /// (CostModel::overlapped_io): only the pipeline stall time.
  double io_cost = 0.0;
  /// Overlapped model only: total worker busy time (every transfer at its
  /// full serial price); 0 under the serial model. Always >= io_cost.
  double io_busy_cost = 0.0;
  /// Overlapped model only: peak staged units (outstanding write-behind
  /// spills + unconsumed prefetched restores) the async store holds in RAM
  /// on top of the planner's activation units.
  int peak_staged_slots = 0;
  /// Serial model: compute + full IO. Overlapped model: the modeled
  /// wall-clock (compute + unhidden stalls).
  [[nodiscard]] double total_cost() const {
    return forward_cost + backward_cost + io_cost;
  }
};

/// Result of interpreting one schedule.
struct Report {
  Facts facts;
  std::vector<Finding> findings;

  /// True when no Error-severity finding was recorded. Warnings pass.
  [[nodiscard]] bool ok() const {
    for (const Finding& f : findings) {
      if (f.severity == Severity::Error) return false;
    }
    return true;
  }
  [[nodiscard]] std::size_t error_count() const {
    std::size_t n = 0;
    for (const Finding& f : findings) {
      if (f.severity == Severity::Error) ++n;
    }
    return n;
  }
  /// One-line-per-finding human-readable summary (empty when clean).
  [[nodiscard]] std::string summary() const;
};

/// Abstractly executes @p schedule, checking the machine invariants and any
/// bounds supplied. Never throws on malformed schedules: every defect
/// becomes a Finding. The interpreter keeps scanning after an error when it
/// can (to report all defects), but abstract state mutations that would
/// mask later checks are still applied in program order.
[[nodiscard]] Report interpret(const core::Schedule& schedule,
                               const CostModel& cost = {},
                               const Bounds& bounds = {});

}  // namespace edgetrain::analysis
