// edgetrain: machine-readable aggregation of a schedule-lint sweep.
//
// SweepReport collects per-case interpreter verdicts (and, in injection
// mode, per-corruption detection results) into totals suitable for a CI
// gate: per-family case/failure counts, per-check finding counts, and a
// capped list of failing cases with their findings spelled out. to_json()
// serialises the whole report; tools/schedule_lint uploads that file as a
// CI artifact so a red gate carries its own diagnosis.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analysis/interp.hpp"
#include "analysis/sweep.hpp"

namespace edgetrain::analysis {

/// One recorded schedule verdict (kept only for failing/warning cases).
struct CaseRecord {
  std::string family;
  std::string name;
  Facts facts;
  std::vector<Finding> findings;
};

/// One fault-injection outcome: did the interpreter reject the corrupted
/// schedule, and which checks fired.
struct InjectionRecord {
  std::string family;
  std::string name;
  std::string corruption;
  bool detected = false;
  std::vector<std::string> checks_fired;
};

struct FamilyStats {
  std::int64_t cases = 0;
  std::int64_t failed = 0;
  std::int64_t with_warnings = 0;
};

/// Aggregated result of one sweep (and optional injection pass).
class SweepReport {
 public:
  /// Cap on retained failing-case details (totals are always exact).
  static constexpr std::size_t kMaxDetailedFailures = 64;

  /// Records one clean-schedule verdict.
  void add(const SweepCase& sweep_case, const Report& report);

  /// Records one fault-injection verdict. @p report is the interpreter's
  /// verdict on the corrupted schedule; detection means >= 1 error finding.
  void add_injection(const SweepCase& sweep_case, Corruption corruption,
                     const Report& report);

  [[nodiscard]] std::int64_t total_cases() const noexcept {
    return total_cases_;
  }
  [[nodiscard]] std::int64_t failed_cases() const noexcept {
    return failed_cases_;
  }
  [[nodiscard]] std::int64_t injections_applied() const noexcept {
    return static_cast<std::int64_t>(injections_.size());
  }
  [[nodiscard]] std::int64_t injections_detected() const noexcept;

  /// Gate verdict for the default (clean-sweep) mode.
  [[nodiscard]] bool ok() const noexcept { return failed_cases_ == 0; }

  /// Gate verdict for --self-check: every applied corruption detected and
  /// every corruption kind applied at least once.
  [[nodiscard]] bool injections_all_detected() const;

  [[nodiscard]] const std::map<std::string, FamilyStats>& families() const {
    return families_;
  }
  [[nodiscard]] const std::map<std::string, std::int64_t>& findings_by_check()
      const {
    return findings_by_check_;
  }
  [[nodiscard]] const std::vector<CaseRecord>& failures() const {
    return failures_;
  }
  [[nodiscard]] const std::vector<InjectionRecord>& injections() const {
    return injections_;
  }

  /// Full report as a JSON document (UTF-8, escaped, newline-terminated).
  [[nodiscard]] std::string to_json() const;

  /// Short human-readable summary for terminal output.
  [[nodiscard]] std::string summary() const;

 private:
  std::int64_t total_cases_ = 0;
  std::int64_t failed_cases_ = 0;
  std::int64_t warning_cases_ = 0;
  std::map<std::string, FamilyStats> families_;
  std::map<std::string, std::int64_t> findings_by_check_;
  std::vector<CaseRecord> failures_;
  std::vector<InjectionRecord> injections_;
};

}  // namespace edgetrain::analysis
