#include "analysis/report.hpp"

#include <algorithm>
#include <set>
#include <sstream>

namespace edgetrain::analysis {

namespace {

void json_escape(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          os << "\\u00" << kHex[(c >> 4) & 0xf] << kHex[c & 0xf];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void json_facts(std::ostream& os, const Facts& f) {
  os << "{\"advances\":" << f.advances
     << ",\"forward_saves\":" << f.forward_saves
     << ",\"absorbed_saves\":" << f.absorbed_saves
     << ",\"backwards\":" << f.backwards << ",\"stores\":" << f.stores
     << ",\"restores\":" << f.restores << ",\"frees\":" << f.frees
     << ",\"peak_slots_in_use\":" << f.peak_slots_in_use
     << ",\"peak_ram_slots_in_use\":" << f.peak_ram_slots_in_use
     << ",\"peak_disk_slots_in_use\":" << f.peak_disk_slots_in_use
     << ",\"peak_live_saves\":" << f.peak_live_saves
     << ",\"peak_memory_units\":" << f.peak_memory_units
     << ",\"forward_cost\":" << f.forward_cost
     << ",\"backward_cost\":" << f.backward_cost
     << ",\"io_cost\":" << f.io_cost << ",\"total_cost\":" << f.total_cost()
     << '}';
}

void json_findings(std::ostream& os, const std::vector<Finding>& findings) {
  os << '[';
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i != 0) os << ',';
    os << "{\"severity\":"
       << (f.severity == Severity::Error ? "\"error\"" : "\"warning\"")
       << ",\"check\":";
    json_escape(os, to_string(f.check));
    os << ",\"position\":" << f.position << ",\"detail\":";
    json_escape(os, f.detail);
    os << '}';
  }
  os << ']';
}

}  // namespace

void SweepReport::add(const SweepCase& sweep_case, const Report& report) {
  ++total_cases_;
  FamilyStats& fam = families_[sweep_case.family];
  ++fam.cases;
  bool has_error = false;
  bool has_warning = false;
  for (const Finding& f : report.findings) {
    ++findings_by_check_[to_string(f.check)];
    if (f.severity == Severity::Error) {
      has_error = true;
    } else {
      has_warning = true;
    }
  }
  if (has_error) {
    ++failed_cases_;
    ++fam.failed;
    if (failures_.size() < kMaxDetailedFailures) {
      failures_.push_back(CaseRecord{sweep_case.family, sweep_case.name,
                                     report.facts, report.findings});
    }
  }
  if (has_warning) {
    ++warning_cases_;
    ++fam.with_warnings;
  }
}

void SweepReport::add_injection(const SweepCase& sweep_case,
                                Corruption corruption, const Report& report) {
  InjectionRecord record;
  record.family = sweep_case.family;
  record.name = sweep_case.name;
  record.corruption = to_string(corruption);
  for (const Finding& f : report.findings) {
    if (f.severity != Severity::Error) continue;
    record.detected = true;
    const std::string check = to_string(f.check);
    if (std::find(record.checks_fired.begin(), record.checks_fired.end(),
                  check) == record.checks_fired.end()) {
      record.checks_fired.push_back(check);
    }
  }
  injections_.push_back(std::move(record));
}

std::int64_t SweepReport::injections_detected() const noexcept {
  std::int64_t n = 0;
  for (const InjectionRecord& r : injections_) {
    if (r.detected) ++n;
  }
  return n;
}

bool SweepReport::injections_all_detected() const {
  if (injections_.empty()) return false;
  std::set<std::string> applied;
  for (const InjectionRecord& r : injections_) {
    if (!r.detected) return false;
    applied.insert(r.corruption);
  }
  for (const Corruption c : kAllCorruptions) {
    if (applied.count(to_string(c)) == 0) return false;
  }
  return true;
}

std::string SweepReport::to_json() const {
  std::ostringstream os;
  os << "{\"total_cases\":" << total_cases_
     << ",\"failed_cases\":" << failed_cases_
     << ",\"warning_cases\":" << warning_cases_ << ",\"families\":{";
  bool first = true;
  for (const auto& [name, stats] : families_) {
    if (!first) os << ',';
    first = false;
    json_escape(os, name);
    os << ":{\"cases\":" << stats.cases << ",\"failed\":" << stats.failed
       << ",\"with_warnings\":" << stats.with_warnings << '}';
  }
  os << "},\"findings_by_check\":{";
  first = true;
  for (const auto& [check, count] : findings_by_check_) {
    if (!first) os << ',';
    first = false;
    json_escape(os, check);
    os << ':' << count;
  }
  os << "},\"failures\":[";
  for (std::size_t i = 0; i < failures_.size(); ++i) {
    const CaseRecord& r = failures_[i];
    if (i != 0) os << ',';
    os << "{\"family\":";
    json_escape(os, r.family);
    os << ",\"name\":";
    json_escape(os, r.name);
    os << ",\"facts\":";
    json_facts(os, r.facts);
    os << ",\"findings\":";
    json_findings(os, r.findings);
    os << '}';
  }
  os << "],\"injections\":{\"applied\":" << injections_applied()
     << ",\"detected\":" << injections_detected() << ",\"records\":[";
  for (std::size_t i = 0; i < injections_.size(); ++i) {
    const InjectionRecord& r = injections_[i];
    if (i != 0) os << ',';
    os << "{\"family\":";
    json_escape(os, r.family);
    os << ",\"name\":";
    json_escape(os, r.name);
    os << ",\"corruption\":";
    json_escape(os, r.corruption);
    os << ",\"detected\":" << (r.detected ? "true" : "false")
       << ",\"checks_fired\":[";
    for (std::size_t k = 0; k < r.checks_fired.size(); ++k) {
      if (k != 0) os << ',';
      json_escape(os, r.checks_fired[k]);
    }
    os << "]}";
  }
  os << "]}}\n";
  return os.str();
}

std::string SweepReport::summary() const {
  std::ostringstream os;
  os << "schedule_lint: " << total_cases_ << " schedules, " << failed_cases_
     << " failed, " << warning_cases_ << " with warnings\n";
  for (const auto& [name, stats] : families_) {
    os << "  " << name << ": " << stats.cases << " cases, " << stats.failed
       << " failed\n";
  }
  if (!injections_.empty()) {
    os << "  injections: " << injections_detected() << '/'
       << injections_applied() << " detected\n";
  }
  for (const CaseRecord& r : failures_) {
    os << "FAIL " << r.family << " [" << r.name << "]\n";
    for (const Finding& f : r.findings) {
      if (f.severity != Severity::Error) continue;
      os << "  " << to_string(f.check) << " at action " << f.position << ": "
         << f.detail << '\n';
    }
  }
  return os.str();
}

}  // namespace edgetrain::analysis
