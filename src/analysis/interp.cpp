#include "analysis/interp.hpp"

#include <algorithm>
#include <deque>
#include <sstream>

namespace edgetrain::analysis {

namespace {
constexpr std::int32_t kNoState = -1;
}  // namespace

std::string to_string(Check check) {
  switch (check) {
    case Check::StepRange: return "step-range";
    case Check::ForwardState: return "forward-state";
    case Check::SaveAlreadyLive: return "save-already-live";
    case Check::BackwardOrder: return "backward-order";
    case Check::BackwardLiveness: return "backward-liveness";
    case Check::SlotRange: return "slot-range";
    case Check::StoreState: return "store-state";
    case Check::RestoreEmpty: return "restore-empty";
    case Check::RestoreState: return "restore-state";
    case Check::FreeOrphan: return "free-orphan";
    case Check::Completion: return "completion";
    case Check::MemoryBound: return "memory-bound";
    case Check::WeightedMemoryBound: return "weighted-memory-bound";
    case Check::SlotBound: return "slot-bound";
    case Check::WorkBound: return "work-bound";
    case Check::RedundantFree: return "redundant-free";
    case Check::DeadStore: return "dead-store";
  }
  return "?";
}

std::string Report::summary() const {
  std::ostringstream os;
  for (const Finding& f : findings) {
    os << (f.severity == Severity::Error ? "error" : "warning") << " ["
       << analysis::to_string(f.check) << "] at action " << f.position << ": "
       << f.detail << '\n';
  }
  return os.str();
}

namespace {

/// Per-Free liveness verdicts and per-Store deadness, from one backward
/// pass: slot k is "needed" at position p when some action after p Restores
/// k before any Store overwrites it.
struct LivenessFacts {
  std::vector<bool> free_orphans;  ///< indexed by action position
  std::vector<bool> dead_stores;   ///< indexed by action position
};

LivenessFacts liveness_pass(const core::Schedule& schedule) {
  const std::vector<core::Action>& actions = schedule.actions();
  LivenessFacts facts;
  facts.free_orphans.assign(actions.size(), false);
  facts.dead_stores.assign(actions.size(), false);
  const std::size_t num_slots =
      static_cast<std::size_t>(std::max(schedule.num_slots(), 0));
  std::vector<bool> needed(num_slots, false);
  for (std::size_t pos = actions.size(); pos-- > 0;) {
    const core::Action& a = actions[pos];
    if (a.slot < 0 || a.slot >= schedule.num_slots()) continue;
    const auto slot = static_cast<std::size_t>(a.slot);
    switch (a.type) {
      case core::ActionType::Restore:
        needed[slot] = true;
        break;
      case core::ActionType::Store:
        facts.dead_stores[pos] = !needed[slot];
        needed[slot] = false;
        break;
      case core::ActionType::Free:
        facts.free_orphans[pos] = needed[slot];
        break;
      default:
        break;
    }
  }
  return facts;
}

class Interpreter {
 public:
  Interpreter(const core::Schedule& schedule, const CostModel& cost,
              const Bounds& bounds)
      : schedule_(schedule),
        cost_(cost),
        bounds_(bounds),
        num_steps_(schedule.num_steps()),
        num_slots_(schedule.num_slots()),
        adjoint_frontier_(schedule.num_steps()),
        saved_(static_cast<std::size_t>(std::max(num_steps_, 0)), false),
        reversed_(static_cast<std::size_t>(std::max(num_steps_, 0)), false),
        slots_(static_cast<std::size_t>(std::max(num_slots_, 0)), kNoState) {}

  Report run() {
    const LivenessFacts liveness = liveness_pass(schedule_);
    const std::vector<core::Action>& actions = schedule_.actions();
    for (std::size_t pos = 0; pos < actions.size(); ++pos) {
      step(pos, actions[pos], liveness);
      update_peaks();
    }
    finish();
    return std::move(report_);
  }

 private:
  void error(std::size_t pos, Check check, std::string detail) {
    report_.findings.push_back(Finding{Severity::Error, check,
                                       static_cast<std::int64_t>(pos),
                                       std::move(detail)});
  }
  void warn(std::size_t pos, Check check, std::string detail) {
    report_.findings.push_back(Finding{Severity::Warning, check,
                                       static_cast<std::int64_t>(pos),
                                       std::move(detail)});
  }
  void error_at_end(Check check, std::string detail) {
    report_.findings.push_back(
        Finding{Severity::Error, check, -1, std::move(detail)});
  }

  [[nodiscard]] bool step_in_range(std::int32_t step) const {
    return step >= 0 && step < num_steps_;
  }
  [[nodiscard]] bool slot_in_range(std::int32_t slot) const {
    return slot >= 0 && slot < num_slots_;
  }

  void step(std::size_t pos, const core::Action& a,
            const LivenessFacts& liveness) {
    switch (a.type) {
      case core::ActionType::Forward:
      case core::ActionType::ForwardSave: {
        if (!step_in_range(a.index)) {
          error(pos, Check::StepRange,
                "forward of step " + std::to_string(a.index) +
                    " outside [0, " + std::to_string(num_steps_) + ")");
          return;
        }
        if (current_state_ != a.index) {
          error(pos, Check::ForwardState,
                "forward of step " + std::to_string(a.index) +
                    " while holding state " + std::to_string(current_state_));
        }
        double charged = 0.0;
        if (a.type == core::ActionType::ForwardSave) {
          ++report_.facts.forward_saves;
          if (saved_[static_cast<std::size_t>(a.index)]) {
            error(pos, Check::SaveAlreadyLive,
                  "ForwardSave of step " + std::to_string(a.index) +
                      " whose intermediates are already live");
          } else {
            saved_[static_cast<std::size_t>(a.index)] = true;
            ++live_saves_;
          }
          // A save executed with the gradient already waiting at its output
          // is the re-materialisation the paper folds into the Backward
          // unit; every scheduler DP prices it at zero (R(1, s) = 0).
          if (adjoint_frontier_ == a.index + 1) {
            ++report_.facts.absorbed_saves;
          } else {
            charged = cost_.step_cost(a.index);
          }
        } else {
          ++report_.facts.advances;
          charged = cost_.step_cost(a.index);
        }
        report_.facts.forward_cost += charged;
        advance_clock(charged);
        current_state_ = a.index + 1;
        break;
      }
      case core::ActionType::Backward: {
        ++report_.facts.backwards;
        if (!step_in_range(a.index)) {
          error(pos, Check::StepRange,
                "backward of step " + std::to_string(a.index) +
                    " outside [0, " + std::to_string(num_steps_) + ")");
          return;
        }
        report_.facts.backward_cost += cost_.step_cost(a.index);
        advance_clock(cost_.step_cost(a.index));
        if (a.index != adjoint_frontier_ - 1) {
          error(pos, Check::BackwardOrder,
                "backward of step " + std::to_string(a.index) +
                    " out of order (expected " +
                    std::to_string(adjoint_frontier_ - 1) + ")");
        }
        if (!saved_[static_cast<std::size_t>(a.index)]) {
          error(pos, Check::BackwardLiveness,
                "backward of step " + std::to_string(a.index) +
                    " without live intermediates");
        } else {
          saved_[static_cast<std::size_t>(a.index)] = false;
          --live_saves_;
        }
        reversed_[static_cast<std::size_t>(a.index)] = true;
        adjoint_frontier_ = a.index;
        break;
      }
      case core::ActionType::Store: {
        ++report_.facts.stores;
        if (!slot_in_range(a.slot)) {
          error(pos, Check::SlotRange,
                "store to slot " + std::to_string(a.slot) + " outside [0, " +
                    std::to_string(num_slots_) + ")");
          return;
        }
        if (current_state_ != a.index) {
          error(pos, Check::StoreState,
                "store of state " + std::to_string(a.index) +
                    " while holding state " + std::to_string(current_state_));
        }
        if (liveness.dead_stores[pos]) {
          warn(pos, Check::DeadStore,
               "state " + std::to_string(a.index) + " stored to slot " +
                   std::to_string(a.slot) + " is never restored");
        }
        if (slots_[static_cast<std::size_t>(a.slot)] == kNoState) {
          occupy(a.slot, +1);
        }
        slots_[static_cast<std::size_t>(a.slot)] = a.index;
        if (cost_.is_disk_slot(a.slot)) {
          if (cost_.overlapped_io) {
            model_overlapped_write(cost_.slot_ratio(a.slot));
          } else {
            report_.facts.io_cost += cost_.disk_write_cost;
          }
        }
        break;
      }
      case core::ActionType::Restore: {
        ++report_.facts.restores;
        if (!slot_in_range(a.slot)) {
          error(pos, Check::SlotRange,
                "restore from slot " + std::to_string(a.slot) +
                    " outside [0, " + std::to_string(num_slots_) + ")");
          return;
        }
        const std::int32_t held = slots_[static_cast<std::size_t>(a.slot)];
        if (held == kNoState) {
          error(pos, Check::RestoreEmpty,
                "restore from empty slot " + std::to_string(a.slot));
        } else if (held != a.index) {
          error(pos, Check::RestoreState,
                "restore expected state " + std::to_string(a.index) +
                    " but slot " + std::to_string(a.slot) + " holds " +
                    std::to_string(held));
        }
        if (cost_.is_disk_slot(a.slot)) {
          if (cost_.overlapped_io) {
            model_overlapped_read();
          } else {
            report_.facts.io_cost += cost_.disk_read_cost;
          }
        }
        // Adopt the claimed state: downstream checks then diagnose against
        // the schedule's own intent rather than cascading this defect.
        current_state_ = a.index;
        break;
      }
      case core::ActionType::Free: {
        ++report_.facts.frees;
        if (!slot_in_range(a.slot)) {
          error(pos, Check::SlotRange,
                "free of slot " + std::to_string(a.slot) + " outside [0, " +
                    std::to_string(num_slots_) + ")");
          return;
        }
        if (liveness.free_orphans[pos]) {
          error(pos, Check::FreeOrphan,
                "free of slot " + std::to_string(a.slot) +
                    " orphans state " +
                    std::to_string(slots_[static_cast<std::size_t>(a.slot)]) +
                    " still needed by a later restore");
        }
        if (slots_[static_cast<std::size_t>(a.slot)] == kNoState) {
          warn(pos, Check::RedundantFree,
               "free of already-empty slot " + std::to_string(a.slot));
        } else {
          occupy(a.slot, -1);
          slots_[static_cast<std::size_t>(a.slot)] = kNoState;
        }
        break;
      }
    }
  }

  // --- Overlapped-IO pipeline model (cost_.overlapped_io only) ------------
  //
  // One FIFO background worker, one clock. Compute advances the clock;
  // transfers occupy the worker back to back. A Store stalls the clock only
  // when the write-staging budget is exhausted (the async store's put()
  // back-pressure); a Restore stalls only for the part of its read that the
  // prefetcher could not finish before consumption. Every stall happens
  // while the worker is busy, so accumulated stalls never exceed
  // io_busy_cost: the modeled wall-clock (total_cost) is bounded by the
  // serial model's compute + full IO, and below by the pure compute.
  // Prefetch issue times are optimistic (the worker picks the read up the
  // moment it is free); the lookahead window of the real store is not
  // modeled, so this is the best wall-clock the staging budgets permit.

  void advance_clock(double compute) {
    if (!cost_.overlapped_io) return;
    clock_ += compute;
    retire_writes();
  }

  void retire_writes() {
    while (!outstanding_writes_.empty() &&
           outstanding_writes_.front().completion <= clock_ + 1e-12) {
      outstanding_writes_.pop_front();
    }
  }

  void model_overlapped_write(double slot_ratio) {
    const double w = cost_.disk_write_cost;
    retire_writes();
    const auto budget =
        static_cast<std::size_t>(std::max(cost_.write_staging_slots, 1));
    if (outstanding_writes_.size() >= budget) {
      const double wait_until = outstanding_writes_.front().completion;
      if (wait_until > clock_) {
        report_.facts.io_cost += wait_until - clock_;
        clock_ = wait_until;
      }
      retire_writes();
    }
    const double completion = std::max(clock_, io_free_at_) + w;
    io_free_at_ = completion;
    outstanding_writes_.push_back(StagedWrite{completion, slot_ratio});
    report_.facts.io_busy_cost += w;
    note_staged(static_cast<int>(outstanding_writes_.size()));
  }

  void model_overlapped_read() {
    const double r = cost_.disk_read_cost;
    report_.facts.io_busy_cost += r;
    // Prefetched reads are issued as soon as the worker frees up (which is
    // never before the slot's own write completed -- FIFO); unprefetched
    // reads cannot start before the Restore reaches them.
    const double start = cost_.read_staging_slots > 0
                             ? io_free_at_
                             : std::max(clock_, io_free_at_);
    const double completion = start + r;
    io_free_at_ = completion;
    note_staged(static_cast<int>(outstanding_writes_.size()) +
                (cost_.read_staging_slots > 0 ? 1 : 0));
    if (completion > clock_) {
      report_.facts.io_cost += completion - clock_;
      clock_ = completion;
    }
    retire_writes();
  }

  void note_staged(int staged) {
    report_.facts.peak_staged_slots =
        std::max(report_.facts.peak_staged_slots, staged);
  }

  void occupy(std::int32_t slot, int delta) {
    slots_in_use_ += delta;
    if (cost_.is_disk_slot(slot)) {
      disk_slots_in_use_ += delta;
    } else {
      ram_slots_in_use_ += delta;
      // Per-slot weighted occupancy; the chain-input slot 0 is the data
      // buffer and never counts (the "- 1" of the homogeneous formula).
      if (slot != 0) weighted_ram_units_ += delta * cost_.slot_ratio(slot);
    }
  }

  void update_peaks() {
    Facts& f = report_.facts;
    f.peak_slots_in_use = std::max(f.peak_slots_in_use, slots_in_use_);
    f.peak_ram_slots_in_use =
        std::max(f.peak_ram_slots_in_use, ram_slots_in_use_);
    f.peak_disk_slots_in_use =
        std::max(f.peak_disk_slots_in_use, disk_slots_in_use_);
    f.peak_live_saves = std::max(f.peak_live_saves, live_saves_);
    // RAM units only: a disk checkpoint is the point of the two-level
    // schedule -- it does not occupy device RAM. Minus one for the chain
    // input, matching ScheduleStats::peak_memory_units. Under the
    // overlapped-IO model the async store's write-behind staging buffers
    // (spills accepted but not yet flushed) are real RAM and count on top;
    // prefetched-read buffers are transient at the consuming Restore and
    // tracked by peak_staged_slots instead.
    const int staged = cost_.overlapped_io
                           ? static_cast<int>(outstanding_writes_.size())
                           : 0;
    f.peak_memory_units = std::max(
        f.peak_memory_units, ram_slots_in_use_ + live_saves_ - 1 + staged);
    // Weighted variant: resting checkpoints (occupied slots minus the
    // input; staged write-behind blobs) rest encoded at the codec ratio,
    // live intermediates stay plaintext. Reduces to peak_memory_units at
    // ratio 1. With measured per-slot ratios every occupied RAM slot and
    // every staged blob is charged at its own slot's ratio instead of the
    // homogeneous fill (the empty-vector path stays bit-identical).
    if (cost_.slot_bytes_ratios.empty()) {
      f.peak_weighted_units =
          std::max(f.peak_weighted_units,
                   static_cast<double>(live_saves_) +
                       cost_.slot_bytes_ratio *
                           (std::max(ram_slots_in_use_ - 1, 0) + staged));
    } else {
      double resting = weighted_ram_units_;
      for (const StagedWrite& write : outstanding_writes_) {
        resting += write.ratio;
      }
      f.peak_weighted_units = std::max(
          f.peak_weighted_units, static_cast<double>(live_saves_) + resting);
    }
  }

  void finish() {
    if (adjoint_frontier_ != 0) {
      error_at_end(Check::Completion,
                   "incomplete reversal: adjoint frontier stopped at " +
                       std::to_string(adjoint_frontier_));
    }
    for (std::int32_t i = 0; i < num_steps_; ++i) {
      if (!reversed_[static_cast<std::size_t>(i)]) {
        error_at_end(Check::Completion,
                     "step " + std::to_string(i) + " never reversed");
      }
    }
    const Facts& f = report_.facts;
    if (bounds_.max_memory_units &&
        f.peak_memory_units > *bounds_.max_memory_units) {
      error_at_end(Check::MemoryBound,
                   "peak memory units " + std::to_string(f.peak_memory_units) +
                       " exceed the analytic bound " +
                       std::to_string(*bounds_.max_memory_units));
    }
    if (bounds_.max_weighted_units &&
        f.peak_weighted_units > *bounds_.max_weighted_units + 1e-9) {
      error_at_end(Check::WeightedMemoryBound,
                   "codec-weighted peak units " +
                       std::to_string(f.peak_weighted_units) +
                       " exceed the planner bound " +
                       std::to_string(*bounds_.max_weighted_units));
    }
    if (bounds_.max_ram_slots &&
        f.peak_ram_slots_in_use > *bounds_.max_ram_slots) {
      error_at_end(Check::SlotBound,
                   "peak RAM slots " + std::to_string(f.peak_ram_slots_in_use) +
                       " exceed the bound " +
                       std::to_string(*bounds_.max_ram_slots));
    }
    if (bounds_.max_total_cost &&
        f.total_cost() > *bounds_.max_total_cost + 1e-9) {
      error_at_end(Check::WorkBound,
                   "total cost " + std::to_string(f.total_cost()) +
                       " exceeds the budget " +
                       std::to_string(*bounds_.max_total_cost));
    }
  }

  const core::Schedule& schedule_;
  const CostModel& cost_;
  const Bounds& bounds_;
  const std::int32_t num_steps_;
  const std::int32_t num_slots_;

  std::int32_t current_state_ = 0;
  std::int32_t adjoint_frontier_ = 0;  // set to num_steps in the constructor
  std::vector<bool> saved_;
  std::vector<bool> reversed_;
  std::vector<std::int32_t> slots_;
  int live_saves_ = 0;
  int slots_in_use_ = 0;
  int ram_slots_in_use_ = 0;
  int disk_slots_in_use_ = 0;
  /// Sum of CostModel::slot_ratio over occupied RAM slots excluding the
  /// chain-input slot 0 (per-slot weighted peak accounting).
  double weighted_ram_units_ = 0.0;

  // Overlapped-IO pipeline state (unused under the serial model).
  struct StagedWrite {
    double completion;  ///< clock time the background flush finishes
    double ratio;       ///< resting ratio of the blob's target slot
  };
  double clock_ = 0.0;       ///< compute timeline position
  double io_free_at_ = 0.0;  ///< when the background worker frees up
  std::deque<StagedWrite> outstanding_writes_;  ///< FIFO, completion order

  Report report_;
};

}  // namespace

Report interpret(const core::Schedule& schedule, const CostModel& cost,
                 const Bounds& bounds) {
  Interpreter interp(schedule, cost, bounds);
  return interp.run();
}

}  // namespace edgetrain::analysis
