// edgetrain: seeded preemption-fuzz injector (PCT-style schedule fuzzing).
//
// Free-running TSan only checks the interleavings the OS scheduler happens
// to produce, which on an idle CI runner is a vanishingly thin slice of the
// schedule space. This injector perturbs the schedule *at the annotation
// boundaries* -- every edgetrain::Mutex lock/unlock, CondVar wait/notify,
// and instrumented guarded access is a potential preemption point -- with
// decisions that are a pure function of (seed, site, per-thread ordinal):
//
//   decision(seed, site, ordinal) = splitmix64-mix, yield on 1/8 of points,
//   occasionally a short sleep for a coarser displacement.
//
// Because the decision function takes no runtime input (no clocks, no
// addresses, no global counter shared across threads), the decision stream
// each thread sees is bit-reproducible per seed: re-running a harness with
// the same seed replays the same per-thread yield pattern, and a different
// seed explores a genuinely different neighbourhood of interleavings. The
// fingerprint() is an order-independent XOR fold of every decision hash, so
// two runs whose threads made identical decision streams report identical
// fingerprints even though the OS interleaved them differently.
//
// Activation: compiled in when EDGETRAIN_GUARDS or EDGETRAIN_PREEMPT is
// defined (the TSan CI job sets the latter so the preemption harness runs
// instrumented without the guards' shadow-memory cost); a zero seed
// (default) disables injection at runtime. Seed comes from set_seed() or,
// if never called, the EDGETRAIN_PREEMPT_SEED environment variable.
#pragma once

#include <cstdint>

namespace edgetrain::analysis::preempt {

/// Sets the injection seed. 0 disables injection (the default). Overrides
/// EDGETRAIN_PREEMPT_SEED. Takes effect for decision points evaluated after
/// the call; tests set it before spawning their workload threads.
void set_seed(std::uint64_t seed);

/// Current seed (reads EDGETRAIN_PREEMPT_SEED on first use; 0 = disabled).
[[nodiscard]] std::uint64_t seed();

/// A potential preemption point (called by the annotated primitives with a
/// stable PreemptSite id). No-op when the seed is 0.
void point(unsigned site);

/// The pure decision hash: depends only on the arguments, never on runtime
/// state. Exposed so the harness can assert bit-reproducibility directly.
[[nodiscard]] std::uint64_t decision_hash(std::uint64_t seed, unsigned site,
                                          std::uint64_t ordinal);

/// True when decision_hash says this point yields the processor.
[[nodiscard]] bool decides_to_yield(std::uint64_t seed, unsigned site,
                                    std::uint64_t ordinal);

/// Decision points evaluated since start / reset_stats().
[[nodiscard]] std::uint64_t decisions();

/// Points that actually yielded or slept.
[[nodiscard]] std::uint64_t yields();

/// Order-independent XOR fold of every decision hash evaluated so far.
[[nodiscard]] std::uint64_t fingerprint();

void reset_stats();

}  // namespace edgetrain::analysis::preempt
