// edgetrain: vector clocks for the happens-before half of the race detector.
//
// Clock values are per-thread event counters keyed by a compact thread id
// the detector registry hands out (see race.hpp). The representation is a
// plain grow-on-demand vector: the detector tracks tens of threads at test
// scale, never the million simulated fleet nodes (those are model objects,
// not OS threads).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace edgetrain::analysis::race {

class VectorClock {
 public:
  /// Component for thread @p tid (0 when never recorded).
  [[nodiscard]] std::uint64_t at(std::size_t tid) const noexcept {
    return tid < clock_.size() ? clock_[tid] : 0;
  }

  /// Advances thread @p tid's own component by one event.
  void bump(std::size_t tid) {
    grow_to(tid);
    ++clock_[tid];
  }

  /// Component-wise maximum: after merge(o), every event o knew about
  /// happens-before everything this clock subsequently tags.
  void merge(const VectorClock& other) {
    if (other.clock_.size() > clock_.size()) {
      clock_.resize(other.clock_.size(), 0);
    }
    for (std::size_t i = 0; i < other.clock_.size(); ++i) {
      clock_[i] = std::max(clock_[i], other.clock_[i]);
    }
  }

  /// True when an event stamped (tid, epoch) happens-before the state this
  /// clock represents: the owner has already synchronised with tid's
  /// epoch-th event.
  [[nodiscard]] bool knows(std::size_t tid, std::uint64_t epoch) const
      noexcept {
    return at(tid) >= epoch;
  }

  void clear() noexcept { clock_.clear(); }

 private:
  void grow_to(std::size_t tid) {
    if (tid >= clock_.size()) clock_.resize(tid + 1, 0);
  }

  std::vector<std::uint64_t> clock_;
};

}  // namespace edgetrain::analysis::race
