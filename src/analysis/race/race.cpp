#include "analysis/race/race.hpp"

#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace edgetrain::analysis::race {

namespace {

/// Everything below g_mu. The detector deliberately uses one plain
/// std::mutex (never edgetrain::Mutex: the instrumented wrapper would
/// re-enter the detector from its own hooks). Production mutexes are only
/// ever acquired *before* detector entry, so the ordering
/// production-lock -> g_mu is acyclic and cannot deadlock.
std::mutex g_mu;

struct ThreadState {
  std::size_t tid = 0;
  VectorClock vc;
  std::vector<const void*> locks;  ///< currently-held Mutex addresses
};

struct Access {
  std::size_t tid = 0;
  std::uint64_t epoch = 0;  ///< owner's own clock component at access time
  bool write = false;
  std::vector<const void*> locks;  ///< lockset held at the access
  const char* file = "";
  int line = 0;
};

struct VarState {
  bool has_write = false;
  Access last_write;
  /// Reads since the last write, one slot per reading thread.
  std::vector<Access> reads;
};

struct Detector {
  std::vector<std::unique_ptr<ThreadState>> threads;
  std::unordered_map<const void*, VectorClock> sync_clocks;
  std::unordered_map<const void*, VarState> vars;
  std::map<std::string, Report> reports;  ///< keyed by text: dedup + sorted
  bool report_to_stderr = true;
};

Detector& detector() {
  static Detector* d = new Detector();  // leaked: alive for atexit checks
  return *d;
}

ThreadState& self_locked() {
  thread_local ThreadState* tls = nullptr;
  if (tls == nullptr) {
    Detector& d = detector();
    auto state = std::make_unique<ThreadState>();
    state->tid = d.threads.size();
    state->vc.bump(state->tid);  // epoch 0 is reserved for "never"
    tls = state.get();
    d.threads.push_back(std::move(state));
  }
  return *tls;
}

const char* basename_of(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

std::string site_string(const Access& access) {
  return std::string(basename_of(access.file)) + ":" +
         std::to_string(access.line) +
         (access.write ? " (write)" : " (read)");
}

bool locksets_disjoint(const std::vector<const void*>& a,
                       const std::vector<const void*>& b) {
  for (const void* lock : a) {
    for (const void* other : b) {
      if (lock == other) return false;
    }
  }
  return true;
}

void report_locked(const char* what, const Access& a, const Access& b) {
  Detector& d = detector();
  Report report;
  report.what = what;
  report.site_a = site_string(a);
  report.site_b = site_string(b);
  if (report.site_b < report.site_a) std::swap(report.site_a, report.site_b);
  const std::string key = report.to_string();
  const auto [it, inserted] = d.reports.emplace(key, std::move(report));
  if (inserted && d.report_to_stderr) {
    std::fprintf(stderr, "edgetrain race detector: %s\n", key.c_str());
  }
}

/// The hybrid check: same address, different threads, at least one write
/// (guaranteed by the call sites), no happens-before edge, disjoint
/// locksets. @p current_vc is the accessing thread's clock.
void check_pair_locked(const char* what, const Access& prev,
                       const Access& current, const VectorClock& current_vc) {
  if (prev.tid == current.tid) return;
  if (current_vc.knows(prev.tid, prev.epoch)) return;  // ordered: no race
  if (!locksets_disjoint(prev.locks, current.locks)) return;  // common lock
  report_locked(what, prev, current);
}

}  // namespace

void reset() {
  std::lock_guard<std::mutex> lock(g_mu);
  Detector& d = detector();
  d.sync_clocks.clear();
  d.vars.clear();
  d.reports.clear();
}

std::size_t report_count() {
  std::lock_guard<std::mutex> lock(g_mu);
  return detector().reports.size();
}

std::vector<Report> reports() {
  std::lock_guard<std::mutex> lock(g_mu);
  std::vector<Report> out;
  out.reserve(detector().reports.size());
  for (const auto& [key, report] : detector().reports) out.push_back(report);
  return out;
}

void set_report_to_stderr(bool enabled) {
  std::lock_guard<std::mutex> lock(g_mu);
  detector().report_to_stderr = enabled;
}

void on_acquire(const void* mutex) {
  std::lock_guard<std::mutex> lock(g_mu);
  ThreadState& ts = self_locked();
  const auto it = detector().sync_clocks.find(mutex);
  if (it != detector().sync_clocks.end()) ts.vc.merge(it->second);
  ts.locks.push_back(mutex);
}

void on_release(const void* mutex) {
  std::lock_guard<std::mutex> lock(g_mu);
  ThreadState& ts = self_locked();
  // Accumulating merge (not copy): a sync object released by several
  // threads before the next acquire -- e.g. a counter -- must order ALL of
  // them before the acquirer. For an exclusive mutex the merge degenerates
  // to the classic copy because critical sections chain.
  detector().sync_clocks[mutex].merge(ts.vc);
  ts.vc.bump(ts.tid);
  for (auto it = ts.locks.begin(); it != ts.locks.end(); ++it) {
    if (*it == mutex) {
      ts.locks.erase(it);
      break;
    }
  }
}

void on_mutex_destroy(const void* mutex) {
  std::lock_guard<std::mutex> lock(g_mu);
  // A new Mutex constructed at a recycled address must not inherit the dead
  // one's release clock (that would fabricate happens-before edges).
  detector().sync_clocks.erase(mutex);
}

void on_sync_release(const void* object) {
  std::lock_guard<std::mutex> lock(g_mu);
  ThreadState& ts = self_locked();
  detector().sync_clocks[object].merge(ts.vc);
  ts.vc.bump(ts.tid);
}

void on_sync_acquire(const void* object) {
  std::lock_guard<std::mutex> lock(g_mu);
  ThreadState& ts = self_locked();
  const auto it = detector().sync_clocks.find(object);
  if (it != detector().sync_clocks.end()) ts.vc.merge(it->second);
}

ForkToken fork() {
  std::lock_guard<std::mutex> lock(g_mu);
  ThreadState& ts = self_locked();
  ForkToken token{ts.vc};
  ts.vc.bump(ts.tid);
  return token;
}

void task_begin(const ForkToken& token) {
  std::lock_guard<std::mutex> lock(g_mu);
  self_locked().vc.merge(token.clock);
}

ForkToken task_end() {
  std::lock_guard<std::mutex> lock(g_mu);
  ThreadState& ts = self_locked();
  ForkToken token{ts.vc};
  ts.vc.bump(ts.tid);
  return token;
}

void join(const ForkToken& token) {
  std::lock_guard<std::mutex> lock(g_mu);
  self_locked().vc.merge(token.clock);
}

void on_access(const void* addr, bool is_write, const char* file, int line,
               const char* what) {
  std::lock_guard<std::mutex> lock(g_mu);
  ThreadState& ts = self_locked();
  Access current;
  current.tid = ts.tid;
  current.epoch = ts.vc.at(ts.tid);
  current.write = is_write;
  current.locks = ts.locks;
  current.file = file;
  current.line = line;

  VarState& var = detector().vars[addr];
  if (var.has_write) check_pair_locked(what, var.last_write, current, ts.vc);
  if (is_write) {
    for (const Access& read : var.reads) {
      check_pair_locked(what, read, current, ts.vc);
    }
    var.last_write = current;
    var.has_write = true;
    var.reads.clear();
  } else {
    for (Access& read : var.reads) {
      if (read.tid == current.tid) {
        read = current;
        return;
      }
    }
    var.reads.push_back(current);
  }
}

}  // namespace edgetrain::analysis::race
