// edgetrain: Eraser-style lockset race detector with vector-clock
// happens-before refinement.
//
// The schedule abstract interpreter (analysis/interp) proved that
// *analyzable* correctness beats hoping a fuzzer stumbles onto the bug;
// this module extends the philosophy from schedules to threads. The static
// half of the story is the clang -Wthread-safety capability annotations
// (core/thread_annotations.hpp); this is the dynamic half, wired into the
// same EDGETRAIN_GUARDS instrumentation layer as the shadow-memory guards:
//
//   * every edgetrain::Mutex acquire/release feeds the per-thread lockset
//     AND the per-mutex release clock (so lock handoffs create
//     happens-before edges);
//   * parallel_for fork/join, BackgroundWorker job submission, and
//     std::thread create/join report explicit fork/join edges through
//     ForkToken;
//   * instrumented field accesses (EDGETRAIN_RACE_READ / _WRITE, placed on
//     the mutex-protected members of the concurrent subsystems) run the
//     hybrid check: two accesses to the same address race iff at least one
//     is a write, they come from different threads, their held locksets are
//     DISJOINT (Eraser), and neither happens-before the other (FastTrack-
//     style epochs). Pure lockset analysis would false-positive on
//     fork/join and release/acquire handoffs; pure happens-before analysis
//     misses races the current schedule didn't exercise. The hybrid flags a
//     race *deterministically from metadata* -- the two accesses never have
//     to interleave in real time for the report to fire.
//
// Reports carry both file:line sites, are deduplicated, and reports() is
// sorted, so a racy fixture produces the identical report text on every
// run -- the self-test corpus (tests/analysis/race_detector_test.cpp)
// asserts that determinism.
//
// The runtime is always compiled (tests drive it directly); the hooks in
// production code compile to nothing unless EDGETRAIN_GUARDS is on, so
// release builds pay zero overhead (bench_async_io / bench_fleet guard the
// claim).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/race/vector_clock.hpp"

namespace edgetrain::analysis::race {

/// One confirmed lockset/happens-before violation. site_a/site_b are
/// "file:line (read|write)" strings in canonical (lexicographic) order, so
/// the same race yields the same report no matter which access came second.
struct Report {
  std::string what;    ///< instrumentation-site name, e.g. "ram_ slot"
  std::string site_a;  ///< one access, "file:line (write)"
  std::string site_b;  ///< the other access
  [[nodiscard]] std::string to_string() const {
    return what + ": " + site_a + " <-> " + site_b;
  }
};

/// Clears shadow variables, mutex clocks, and reports. Thread registrations
/// and their clocks survive (they are monotonic and harmless). Tests call
/// this between fixtures.
void reset();

/// Number of distinct races reported since construction / reset().
[[nodiscard]] std::size_t report_count();

/// All reports, deduplicated and sorted (deterministic).
[[nodiscard]] std::vector<Report> reports();

/// When true (default), each new report is also printed to stderr with an
/// "edgetrain race detector:" prefix.
void set_report_to_stderr(bool enabled);

// --- synchronisation hooks (called by the annotated primitives) ----------

void on_acquire(const void* mutex);
void on_release(const void* mutex);
void on_mutex_destroy(const void* mutex);

/// Release/acquire edges through an atomic used as a synchronisation object
/// (e.g. ThreadPool's `pending` counter): on_sync_release before the
/// releasing store/RMW, on_sync_acquire after the acquire load observes it.
void on_sync_release(const void* object);
void on_sync_acquire(const void* object);

// --- fork / join edges ----------------------------------------------------

/// Captured parent clock: pass to the child (task_begin) to order
/// everything the parent did so far before the child's work, and back to
/// the parent (join) to order the child's work before what follows.
struct ForkToken {
  VectorClock clock;
};

[[nodiscard]] ForkToken fork();
void task_begin(const ForkToken& token);
[[nodiscard]] ForkToken task_end();
void join(const ForkToken& token);

// --- instrumented accesses ------------------------------------------------

void on_access(const void* addr, bool is_write, const char* file, int line,
               const char* what);

}  // namespace edgetrain::analysis::race

// Access macros: annotate the *use sites* of guarded members in concurrent
// subsystems. Compiled out entirely without EDGETRAIN_GUARDS.
#if defined(EDGETRAIN_GUARDS)
#define EDGETRAIN_RACE_READ(lvalue, what)                                  \
  ::edgetrain::analysis::race::on_access(&(lvalue), /*is_write=*/false,    \
                                         __FILE__, __LINE__, (what))
#define EDGETRAIN_RACE_WRITE(lvalue, what)                                 \
  ::edgetrain::analysis::race::on_access(&(lvalue), /*is_write=*/true,     \
                                         __FILE__, __LINE__, (what))
#define EDGETRAIN_RACE_SYNC_RELEASE(ptr) \
  ::edgetrain::analysis::race::on_sync_release(ptr)
#define EDGETRAIN_RACE_SYNC_ACQUIRE(ptr) \
  ::edgetrain::analysis::race::on_sync_acquire(ptr)
#else
#define EDGETRAIN_RACE_READ(lvalue, what) ((void)0)
#define EDGETRAIN_RACE_WRITE(lvalue, what) ((void)0)
#define EDGETRAIN_RACE_SYNC_RELEASE(ptr) ((void)0)
#define EDGETRAIN_RACE_SYNC_ACQUIRE(ptr) ((void)0)
#endif
