#include "analysis/race/preempt.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>

namespace edgetrain::analysis::preempt {

namespace {

constexpr std::uint64_t kSeedUnset = ~0ULL;  ///< environment not read yet

std::atomic<std::uint64_t>& seed_slot() {
  static std::atomic<std::uint64_t> slot{kSeedUnset};
  return slot;
}

std::atomic<std::uint64_t> g_decisions{0};
std::atomic<std::uint64_t> g_yields{0};
std::atomic<std::uint64_t> g_fingerprint{0};

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

void set_seed(std::uint64_t seed) {
  seed_slot().store(seed, std::memory_order_relaxed);
}

std::uint64_t seed() {
  std::atomic<std::uint64_t>& slot = seed_slot();
  std::uint64_t value = slot.load(std::memory_order_relaxed);
  if (value != kSeedUnset) return value;
  const char* env = std::getenv("EDGETRAIN_PREEMPT_SEED");
  std::uint64_t parsed = 0;
  if (env != nullptr) {
    // strtoull: a malformed value degrades to 0 (disabled), never UB.
    parsed = std::strtoull(env, nullptr, 10);
    if (parsed == kSeedUnset) parsed = 0;
  }
  // Racing first reads all parse the same environment: any winner agrees.
  slot.store(parsed, std::memory_order_relaxed);
  return parsed;
}

std::uint64_t decision_hash(std::uint64_t seed, unsigned site,
                            std::uint64_t ordinal) {
  return splitmix64(splitmix64(seed ^ (static_cast<std::uint64_t>(site) + 1) *
                                          0xD1B54A32D192ED03ULL) ^
                    ordinal);
}

bool decides_to_yield(std::uint64_t seed, unsigned site,
                      std::uint64_t ordinal) {
  return (decision_hash(seed, site, ordinal) & 7ULL) == 0;
}

void point(unsigned site) {
  const std::uint64_t s = seed();
  if (s == 0) return;
  thread_local std::uint64_t ordinal = 0;
  const std::uint64_t h = decision_hash(s, site, ordinal++);
  g_decisions.fetch_add(1, std::memory_order_relaxed);
  g_fingerprint.fetch_xor(h, std::memory_order_relaxed);
  if ((h & 7ULL) != 0) return;
  g_yields.fetch_add(1, std::memory_order_relaxed);
  if ((h & 63ULL) == 0) {
    // Coarse displacement: long enough for a whole critical section (or a
    // background IO job) on another thread to slot in between.
    std::this_thread::sleep_for(std::chrono::microseconds(20 + (h >> 8) % 80));
  } else {
    std::this_thread::yield();
  }
}

std::uint64_t decisions() {
  return g_decisions.load(std::memory_order_relaxed);
}
std::uint64_t yields() { return g_yields.load(std::memory_order_relaxed); }
std::uint64_t fingerprint() {
  return g_fingerprint.load(std::memory_order_relaxed);
}

void reset_stats() {
  g_decisions.store(0, std::memory_order_relaxed);
  g_yields.store(0, std::memory_order_relaxed);
  g_fingerprint.store(0, std::memory_order_relaxed);
}

}  // namespace edgetrain::analysis::preempt
