#include "analysis/sweep.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <sstream>

#include "core/disk_revolve.hpp"
#include "core/dynprog.hpp"
#include "core/revolve.hpp"
#include "core/sequential.hpp"

namespace edgetrain::analysis {

namespace {

std::string case_name(const char* family, std::initializer_list<
                                              std::pair<const char*, double>>
                                              params) {
  std::ostringstream os;
  os << family;
  for (const auto& [key, value] : params) {
    os << ' ' << key << '=';
    if (value == std::floor(value) && std::abs(value) < 1e15) {
      os << static_cast<std::int64_t>(value);
    } else {
      os << value;
    }
  }
  return os.str();
}

std::int64_t sweep_revolve(const SweepConfig& config,
                           const CaseVisitor& visit) {
  std::int64_t count = 0;
  auto emit = [&](const core::revolve::RevolveTable& table, int l, int s,
                  std::optional<double> rho_target) {
    s = std::clamp(s, 0, std::min(table.max_free_slots(), l - 1));
    SweepCase c;
    c.family = "revolve";
    const std::int64_t fwd = table.forward_cost(l, s);
    const double exact_cost = static_cast<double>(fwd + l);
    if (rho_target) {
      c.name = case_name("revolve", {{"l", static_cast<double>(l)},
                                     {"rho", *rho_target},
                                     {"s", static_cast<double>(s)}});
      // The paper's promise: work <= 2 rho l whenever the target was
      // achievable within the table; otherwise the DP optimum is the bound.
      const double budget = 2.0 * *rho_target * static_cast<double>(l);
      c.bounds.max_total_cost = std::max(budget, exact_cost);
    } else {
      c.name = case_name("revolve", {{"l", static_cast<double>(l)},
                                     {"s", static_cast<double>(s)}});
      c.bounds.max_total_cost = exact_cost;
    }
    c.bounds.max_memory_units = s + 1;
    c.bounds.max_ram_slots = s + 1;
    // Codec-weighted accounting at the fp16 planning ratio: Revolve holds
    // at most one live save, so the planner's 1 + ratio * s peak is a
    // sound (and tight) bound for compressed resting checkpoints.
    c.cost.slot_bytes_ratio = 0.5;
    c.bounds.max_weighted_units = 1.0 + 0.5 * static_cast<double>(s);
    c.schedule = core::revolve::make_schedule(table, l, s);
    visit(c);
    ++count;
  };

  for (int l = 1; l <= config.revolve_dense_max_l; ++l) {
    const core::revolve::RevolveTable table(l, std::max(l - 1, 0));
    for (int s = 0; s <= std::max(l - 1, 0); ++s) {
      emit(table, l, s, std::nullopt);
    }
  }
  for (const int l : config.revolve_large_l) {
    int cap = config.rho_slot_cap;
    for (const int s : config.revolve_large_s) cap = std::max(cap, s);
    cap = std::min(cap, l - 1);
    const core::revolve::RevolveTable table(l, std::max(cap, 0));
    for (const int s : config.revolve_large_s) {
      if (s > l - 1) continue;
      emit(table, l, s, std::nullopt);
    }
    for (const double rho : config.rho_targets) {
      const int s = core::revolve::min_free_slots_for_rho(table, l, rho);
      emit(table, l, std::min(s, cap), rho);
    }
  }
  return count;
}

std::int64_t sweep_sequential(const SweepConfig& config,
                              const CaseVisitor& visit) {
  std::int64_t count = 0;
  auto emit = [&](int l, int segments) {
    SweepCase c;
    c.family = "sequential";
    c.name = case_name("sequential", {{"l", static_cast<double>(l)},
                                      {"segments",
                                       static_cast<double>(segments)}});
    c.bounds.max_memory_units =
        static_cast<int>(core::seq::memory_units(l, segments));
    c.bounds.max_ram_slots = segments;
    c.bounds.max_total_cost =
        static_cast<double>(core::seq::forward_cost(l, segments) + l);
    c.schedule = core::seq::make_schedule(l, segments);
    visit(c);
    ++count;
  };
  for (int l = 1; l <= config.seq_dense_max_l; ++l) {
    for (int seg = 1; seg <= std::min(l, config.seq_segment_cap); ++seg) {
      emit(l, seg);
    }
  }
  for (const int l : config.seq_large_l) {
    for (int seg = 1; seg <= std::min(l, config.seq_segment_cap); ++seg) {
      emit(l, seg);
    }
  }
  return count;
}

/// Three per-step cost shapes: homogeneous, linear ramp, and a staged
/// profile that doubles across four "network stages" (the ResNet pattern
/// the heterogeneous solver exists for).
std::vector<double> hetero_costs(int l, int profile) {
  std::vector<double> costs(static_cast<std::size_t>(l), 1.0);
  for (int i = 0; i < l; ++i) {
    switch (profile) {
      case 0: break;
      case 1:
        costs[static_cast<std::size_t>(i)] = 1.0 + i;
        break;
      default: {
        const int stage = l <= 1 ? 0 : (4 * i) / l;
        costs[static_cast<std::size_t>(i)] =
            static_cast<double>(1 << stage);
        break;
      }
    }
  }
  return costs;
}

std::int64_t sweep_hetero(const SweepConfig& config,
                          const CaseVisitor& visit) {
  std::int64_t count = 0;
  for (int l = 1; l <= config.hetero_max_l; ++l) {
    for (int profile = 0; profile < 3; ++profile) {
      std::vector<double> costs = hetero_costs(l, profile);
      const int max_s = std::min(config.hetero_max_s, std::max(l - 1, 0));
      const core::hetero::HeteroSolver solver(costs, max_s);
      for (int s = 0; s <= max_s; ++s) {
        SweepCase c;
        c.family = "hetero";
        c.name = case_name("hetero", {{"l", static_cast<double>(l)},
                                      {"profile",
                                       static_cast<double>(profile)},
                                      {"s", static_cast<double>(s)}});
        c.cost.step_costs = costs;
        c.bounds.max_memory_units = s + 1;
        c.bounds.max_ram_slots = s + 1;
        c.bounds.max_total_cost =
            solver.forward_cost(s) + solver.sweep_cost();
        c.schedule = solver.make_schedule(s);
        visit(c);
        ++count;
      }
    }
  }
  return count;
}

std::int64_t sweep_disk(const SweepConfig& config, const CaseVisitor& visit) {
  std::int64_t count = 0;
  for (const int l : config.disk_l) {
    for (const int ram : config.disk_ram_slots) {
      for (std::size_t io = 0; io < config.disk_io_costs.size(); ++io) {
        for (const bool allow_disk : {true, false}) {
          // The disk-disabled degenerate (single-level Revolve) does not
          // depend on the IO point; emit it once.
          if (!allow_disk && io != 0) continue;
          core::disk::DiskRevolveOptions options;
          options.ram_slots = ram;
          options.write_cost = config.disk_io_costs[io];
          options.read_cost = config.disk_io_costs[io];
          options.allow_disk = allow_disk;
          const core::disk::DiskRevolveSolver solver(l, options);
          const int rs = solver.options().ram_slots;  // clamped to l-1
          SweepCase c;
          c.family = "disk";
          c.name = case_name(
              "disk", {{"l", static_cast<double>(l)},
                       {"ram", static_cast<double>(rs)},
                       {"io", options.write_cost},
                       {"disk", allow_disk ? 1.0 : 0.0}});
          c.cost.first_disk_slot = rs + 1;
          c.cost.disk_write_cost = options.write_cost;
          c.cost.disk_read_cost = options.read_cost;
          c.bounds.max_memory_units = rs + 1;
          c.bounds.max_ram_slots = rs + 1;
          // Two-level Revolve also keeps a single live save; RAM-resting
          // checkpoints compressed at the fp16 ratio obey 1 + ratio * rs.
          c.cost.slot_bytes_ratio = 0.5;
          c.bounds.max_weighted_units = 1.0 + 0.5 * static_cast<double>(rs);
          c.bounds.max_total_cost = solver.forward_cost() + l;
          c.schedule = solver.make_schedule();
          visit(c);
          ++count;

          if (!allow_disk) continue;
          // Overlapped variant: the same grid point solved with async-IO
          // pricing and interpreted under the pipeline model (the
          // AsyncDiskSlotStore configuration). The overlap DP is an
          // optimistic planning heuristic, so the sound wall-clock bound
          // is the *serial* total of the emitted schedule -- stalls only
          // accrue while the worker is busy, so the pipeline can never be
          // slower than compute + full IO. Staging (one write-behind slot)
          // is extra RAM on top of the planner's activation bound.
          core::disk::DiskRevolveOptions ov_options = options;
          ov_options.overlap_io = true;
          const core::disk::DiskRevolveSolver ov_solver(l, ov_options);
          const int ov_rs = ov_solver.options().ram_slots;
          SweepCase oc;
          oc.family = "disk-overlap";
          oc.name = case_name(
              "disk-overlap", {{"l", static_cast<double>(l)},
                               {"ram", static_cast<double>(ov_rs)},
                               {"io", ov_options.write_cost}});
          oc.cost.first_disk_slot = ov_rs + 1;
          oc.cost.disk_write_cost = ov_options.write_cost;
          oc.cost.disk_read_cost = ov_options.read_cost;
          oc.cost.overlapped_io = true;
          oc.cost.write_staging_slots = 1;
          oc.cost.read_staging_slots = 1;
          oc.schedule = ov_solver.make_schedule();
          CostModel serial = oc.cost;
          serial.overlapped_io = false;
          const Report serial_report =
              interpret(oc.schedule, serial, Bounds{});
          oc.bounds.max_total_cost = serial_report.facts.total_cost();
          oc.bounds.max_memory_units =
              ov_rs + 1 + oc.cost.write_staging_slots;
          oc.bounds.max_ram_slots = ov_rs + 1;
          // Staged write-behind blobs are encoded too (the async store
          // compresses at put), so staging joins the weighted term.
          oc.cost.slot_bytes_ratio = 0.5;
          oc.bounds.max_weighted_units =
              1.0 + 0.5 * static_cast<double>(ov_rs +
                                              oc.cost.write_staging_slots);
          visit(oc);
          ++count;
        }
      }
    }
  }
  return count;
}

/// Deterministic "measured" bitmap ratios: the achieved compression of
/// post-ReLU activations at 45..95% sparsity, cycling by checkpoint
/// ordinal. Heterogeneous on purpose -- the per-slot accounting must not
/// degenerate to a mean.
double pseudo_measured_ratio(int k) {
  constexpr double kRatios[] = {0.13, 0.31, 0.55, 0.82, 1.0, 0.22};
  return kRatios[static_cast<std::size_t>(k) % std::size(kRatios)];
}

/// Re-planned schedules: the slot count is re-solved from measured
/// per-slot ratios (the AdaptiveReplanner path) and the emitted schedule
/// must obey the per-slot weighted prefix-sum bound -- the gate the issue
/// adds for dynamic-ratio codecs. Covers single-level Revolve plus the
/// serial and overlapped two-level families.
std::int64_t sweep_replan(const SweepConfig& config,
                          const CaseVisitor& visit) {
  std::int64_t count = 0;
  for (const int l : config.replan_l) {
    if (l < 2) continue;
    std::vector<double> measured(static_cast<std::size_t>(l - 1));
    for (int k = 0; k < l - 1; ++k) {
      measured[static_cast<std::size_t>(k)] = pseudo_measured_ratio(k);
    }
    for (const int target : config.replan_target_slots) {
      if (target > l - 1) continue;
      // Capacity sized (act = 1, fixed = 0) to exactly afford the first
      // `target` measured slots: the re-solve must pick s = target.
      double prefix = 0.0;
      for (int k = 0; k < target; ++k) {
        prefix += measured[static_cast<std::size_t>(k)];
      }
      const double capacity = 1.0 + prefix + 1e-9;
      const int s = core::revolve::max_free_slots_for_bytes(
          capacity, 0.0, 1.0, measured, 1.0);
      SweepCase c;
      c.family = "replan-revolve";
      c.name = case_name("replan-revolve",
                         {{"l", static_cast<double>(l)},
                          {"s", static_cast<double>(s)}});
      c.cost.slot_bytes_ratios.assign(static_cast<std::size_t>(s) + 1, 1.0);
      double bound = 1.0;
      for (int slot = 1; slot <= s; ++slot) {
        const double ratio = measured[static_cast<std::size_t>(slot - 1)];
        c.cost.slot_bytes_ratios[static_cast<std::size_t>(slot)] = ratio;
        bound += ratio;
      }
      c.bounds.max_memory_units = s + 1;
      c.bounds.max_ram_slots = s + 1;
      c.bounds.max_weighted_units = bound;
      c.schedule = core::revolve::make_schedule(l, s);
      visit(c);
      ++count;
    }

    for (const int ram : config.replan_ram_slots) {
      for (const bool overlap : {false, true}) {
        core::disk::DiskRevolveOptions options;
        options.ram_slots = ram;
        options.write_cost = 2.0;
        options.read_cost = 2.0;
        options.overlap_io = overlap;
        // Measured spill ratios of the disk slots a previous pass filled:
        // the DP prices IO at their mean; the interpreter still charges
        // each slot its own ratio.
        options.spill_slot_ratios = {0.2, 0.5, 0.35};
        const core::disk::DiskRevolveSolver solver(l, options);
        const int rs = solver.options().ram_slots;
        const double disk_ratio = 0.5;  // >= every spill_slot_ratios entry
        SweepCase c;
        c.family = overlap ? "replan-disk-overlap" : "replan-disk";
        c.name = case_name(c.family.c_str(),
                           {{"l", static_cast<double>(l)},
                            {"ram", static_cast<double>(rs)}});
        c.cost.first_disk_slot = rs + 1;
        c.cost.disk_write_cost = options.write_cost;
        c.cost.disk_read_cost = options.read_cost;
        c.schedule = solver.make_schedule();
        c.cost.slot_bytes_ratios.assign(
            static_cast<std::size_t>(c.schedule.num_slots()), disk_ratio);
        c.cost.slot_bytes_ratios[0] = 1.0;
        double ram_sum = 0.0;
        for (int slot = 1; slot <= rs; ++slot) {
          const double ratio = pseudo_measured_ratio(slot - 1);
          c.cost.slot_bytes_ratios[static_cast<std::size_t>(slot)] = ratio;
          ram_sum += ratio;
        }
        c.bounds.max_ram_slots = rs + 1;
        if (overlap) {
          c.cost.overlapped_io = true;
          c.cost.write_staging_slots = 1;
          c.cost.read_staging_slots = 1;
          c.bounds.max_memory_units =
              rs + 1 + c.cost.write_staging_slots;
          // Staged write-behind blobs are charged at their target disk
          // slot's ratio, all equal to disk_ratio here.
          c.bounds.max_weighted_units =
              1.0 + ram_sum +
              disk_ratio * static_cast<double>(c.cost.write_staging_slots);
        } else {
          c.bounds.max_memory_units = rs + 1;
          c.bounds.max_weighted_units = 1.0 + ram_sum;
        }
        visit(c);
        ++count;
      }
    }
  }
  return count;
}

}  // namespace

SweepConfig SweepConfig::quick() {
  SweepConfig config;
  config.revolve_dense_max_l = 16;
  config.revolve_large_l = {96};
  config.revolve_large_s = {4, 8};
  config.rho_targets = {1.5, 2.5};
  config.rho_slot_cap = 24;
  config.seq_dense_max_l = 16;
  config.seq_large_l = {128};
  config.seq_segment_cap = 8;
  config.hetero_max_l = 8;
  config.hetero_max_s = 3;
  config.disk_l = {1, 2, 5, 9, 16};
  config.disk_ram_slots = {0, 2};
  config.disk_io_costs = {2.0};
  config.replan_l = {6, 12};
  config.replan_target_slots = {1, 3};
  config.replan_ram_slots = {2};
  return config;
}

std::int64_t run_sweep(const SweepConfig& config, const CaseVisitor& visit) {
  std::int64_t count = 0;
  count += sweep_revolve(config, visit);
  count += sweep_sequential(config, visit);
  count += sweep_hetero(config, visit);
  count += sweep_disk(config, visit);
  count += sweep_replan(config, visit);
  return count;
}

std::string to_string(Corruption corruption) {
  switch (corruption) {
    case Corruption::BackwardOutOfOrder: return "backward-out-of-order";
    case Corruption::DropForwardSave: return "drop-forward-save";
    case Corruption::RestoreWrongState: return "restore-wrong-state";
    case Corruption::EarlyFree: return "early-free";
    case Corruption::ExtraStoreOverBudget: return "extra-store-over-budget";
    case Corruption::InflateWork: return "inflate-work";
  }
  return "?";
}

namespace {

using core::Action;
using core::ActionType;
using core::Schedule;

Schedule with_actions(const Schedule& original,
                      const std::vector<Action>& actions, int extra_slots) {
  Schedule out(original.num_steps(), original.num_slots() + extra_slots);
  for (const Action& a : actions) out.push(a);
  return out;
}

std::optional<Schedule> corrupt_backward(const Schedule& schedule) {
  std::vector<Action> actions = schedule.actions();
  for (Action& a : actions) {
    if (a.type == ActionType::Backward) {
      a.index = a.index > 0 ? a.index - 1 : a.index + 1;
      return with_actions(schedule, actions, 0);
    }
  }
  return std::nullopt;
}

std::optional<Schedule> corrupt_drop_save(const Schedule& schedule) {
  std::vector<Action> actions = schedule.actions();
  // Prefer a save whose very next action is its own Backward: demoting it
  // leaves that Backward provably without intermediates.
  for (std::size_t i = 0; i + 1 < actions.size(); ++i) {
    if (actions[i].type == ActionType::ForwardSave &&
        actions[i + 1].type == ActionType::Backward &&
        actions[i + 1].index == actions[i].index) {
      actions[i].type = ActionType::Forward;
      return with_actions(schedule, actions, 0);
    }
  }
  return std::nullopt;
}

std::optional<Schedule> corrupt_restore_state(const Schedule& schedule) {
  std::vector<Action> actions = schedule.actions();
  for (Action& a : actions) {
    if (a.type == ActionType::Restore) {
      a.index += 1;
      return with_actions(schedule, actions, 0);
    }
  }
  return std::nullopt;
}

std::optional<Schedule> corrupt_early_free(const Schedule& schedule) {
  const std::vector<Action>& actions = schedule.actions();
  for (std::size_t i = 0; i < actions.size(); ++i) {
    if (actions[i].type == ActionType::Restore) {
      std::vector<Action> mutated(actions.begin(),
                                  actions.begin() +
                                      static_cast<std::ptrdiff_t>(i));
      mutated.push_back(Action{ActionType::Free, 0, actions[i].slot});
      mutated.insert(mutated.end(),
                     actions.begin() + static_cast<std::ptrdiff_t>(i),
                     actions.end());
      return with_actions(schedule, mutated, 0);
    }
  }
  return std::nullopt;
}

std::optional<Schedule> corrupt_extra_store(const SweepCase& sweep_case) {
  if (!sweep_case.bounds.max_memory_units) return std::nullopt;
  const Schedule& schedule = sweep_case.schedule;
  if (schedule.num_steps() < 1) return std::nullopt;
  // The injected slot id must count as RAM under the case's cost model, or
  // it would not press on the RAM activation bound (two-level cases class
  // high slot ids as disk).
  if (sweep_case.cost.first_disk_slot <= schedule.num_slots()) {
    return std::nullopt;
  }
  // Occupy one slot beyond the planner's budget for the whole program: the
  // peak rises by exactly one unit above the (tight) analytic bound.
  std::vector<Action> actions;
  actions.reserve(schedule.actions().size() + 1);
  actions.push_back(Action{ActionType::Store, 0, schedule.num_slots()});
  actions.insert(actions.end(), schedule.actions().begin(),
                 schedule.actions().end());
  return with_actions(schedule, actions, 1);
}

std::optional<Schedule> corrupt_inflate_work(const SweepCase& sweep_case) {
  if (!sweep_case.bounds.max_total_cost) return std::nullopt;
  const Schedule& schedule = sweep_case.schedule;
  const std::vector<Action>& actions = schedule.actions();
  for (std::size_t i = 0; i < actions.size(); ++i) {
    if (actions[i].type != ActionType::Restore) continue;
    const Action& restore = actions[i];
    if (restore.index >= schedule.num_steps()) continue;
    // Budget-aware churn: advance one step off the checkpoint and restore
    // again until the charged work provably exceeds the promise.
    const Report clean = interpret(schedule, sweep_case.cost, Bounds{});
    // Under the overlapped model a restore's read may hide entirely under
    // compute, and the injected compute can even *shrink* the original
    // schedule's stalls (the worker gets more slack). The only guaranteed
    // floor on the corrupted wall-clock is the compute alone, and the only
    // guaranteed increment per injected pair is the forward's step cost.
    const double pair_cost =
        sweep_case.cost.step_cost(restore.index) +
        (!sweep_case.cost.overlapped_io &&
                 sweep_case.cost.is_disk_slot(restore.slot)
             ? sweep_case.cost.disk_read_cost
             : 0.0);
    const double guaranteed_base =
        sweep_case.cost.overlapped_io
            ? clean.facts.forward_cost + clean.facts.backward_cost
            : clean.facts.total_cost();
    const double deficit =
        *sweep_case.bounds.max_total_cost - guaranteed_base;
    const auto pairs = static_cast<std::int64_t>(
        std::ceil(std::max(deficit, 0.0) / std::max(pair_cost, 1e-9))) + 1;
    std::vector<Action> mutated(actions.begin(),
                                actions.begin() +
                                    static_cast<std::ptrdiff_t>(i + 1));
    for (std::int64_t p = 0; p < pairs; ++p) {
      mutated.push_back(Action{ActionType::Forward, restore.index, -1});
      mutated.push_back(restore);
    }
    mutated.insert(mutated.end(),
                   actions.begin() + static_cast<std::ptrdiff_t>(i + 1),
                   actions.end());
    return with_actions(schedule, mutated, 0);
  }
  return std::nullopt;
}

}  // namespace

std::optional<Schedule> corrupt(const SweepCase& sweep_case,
                                Corruption corruption) {
  switch (corruption) {
    case Corruption::BackwardOutOfOrder:
      return corrupt_backward(sweep_case.schedule);
    case Corruption::DropForwardSave:
      return corrupt_drop_save(sweep_case.schedule);
    case Corruption::RestoreWrongState:
      return corrupt_restore_state(sweep_case.schedule);
    case Corruption::EarlyFree:
      return corrupt_early_free(sweep_case.schedule);
    case Corruption::ExtraStoreOverBudget:
      return corrupt_extra_store(sweep_case);
    case Corruption::InflateWork:
      return corrupt_inflate_work(sweep_case);
  }
  return std::nullopt;
}

}  // namespace edgetrain::analysis
