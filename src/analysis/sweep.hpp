// edgetrain: exhaustive schedule sweeps for the abstract interpreter.
//
// Generates schedules from every scheduler family in the library --
// binomial Revolve (dense small-l grids, large-l slot grids, and
// rho-target-driven slot selection), PyTorch-style uniform segmentation,
// the heterogeneous per-step-cost DP, and two-level RAM+disk Revolve --
// paired with the analytic bounds each scheduler promises (peak activation
// units, RAM slot occupancy, total work under the paper's cost
// convention). Each case is handed to a visitor that typically runs
// analysis::interpret and records the verdict; tools/schedule_lint is that
// visitor wired to a JSON report and a process exit code.
//
// The module also provides the fault injector used to prove the gate has
// teeth: corrupt() applies a targeted mutation that is guaranteed to
// violate a named invariant, so tests (and the CLI's --inject/--self-check
// modes) can assert the interpreter rejects what it must reject.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "analysis/interp.hpp"
#include "core/schedule.hpp"

namespace edgetrain::analysis {

/// One schedule plus the bounds its scheduler promised.
struct SweepCase {
  /// "revolve" | "sequential" | "hetero" | "disk" | "disk-overlap" |
  /// "replan-revolve" | "replan-disk" | "replan-disk-overlap"
  std::string family;
  std::string name;    ///< human-readable parameter string
  core::Schedule schedule;
  CostModel cost;
  Bounds bounds;
};

/// Grid sizes for one sweep. Defaults give the full CI gate (> 1000
/// schedules, a few seconds of wall clock); quick() shrinks the grids for
/// unit tests while keeping every family covered.
struct SweepConfig {
  // Binomial Revolve: every s in [0, l-1] for l <= dense_max_l, then the
  // cartesian product large_l x large_s, then for each large l and rho
  // target the slot count min_free_slots_for_rho selects (slot cap keeps
  // the shared table build bounded).
  int revolve_dense_max_l = 40;
  std::vector<int> revolve_large_l = {256, 1024, 2500};
  std::vector<int> revolve_large_s = {2, 4, 8, 16, 32, 64};
  std::vector<double> rho_targets = {1.1, 1.25, 1.5, 2.0, 3.0};
  int rho_slot_cap = 80;

  // Uniform segmentation: every segment count in [1, min(l, seg_cap)].
  int seq_dense_max_l = 56;
  std::vector<int> seq_large_l = {512, 2048};
  int seq_segment_cap = 24;

  // Heterogeneous DP: l x s grid, three per-step cost profiles each.
  int hetero_max_l = 18;
  int hetero_max_s = 5;

  // Two-level disk Revolve: chain lengths x RAM slots x IO cost points,
  // with the disk-disabled degenerate case included.
  std::vector<int> disk_l = {1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96};
  std::vector<int> disk_ram_slots = {0, 1, 2, 4};
  std::vector<double> disk_io_costs = {0.5, 2.0, 8.0};

  // Re-planned per-slot cases: schedules re-solved from heterogeneous
  // MEASURED per-slot ratios (the dynamic-ratio adaptive path), verified
  // against the per-slot weighted memory bound across the revolve, disk,
  // and disk-overlap families. target_slots are the measured-prefix
  // lengths the synthetic capacity is sized to exactly afford.
  std::vector<int> replan_l = {6, 12, 24, 48};
  std::vector<int> replan_target_slots = {1, 2, 4, 8};
  std::vector<int> replan_ram_slots = {1, 3};

  [[nodiscard]] static SweepConfig full() { return SweepConfig{}; }
  [[nodiscard]] static SweepConfig quick();
};

using CaseVisitor = std::function<void(const SweepCase&)>;

/// Generates every case of @p config and hands each to @p visit.
/// Returns the number of cases generated.
std::int64_t run_sweep(const SweepConfig& config, const CaseVisitor& visit);

/// Targeted schedule mutations, each violating a specific invariant.
enum class Corruption : std::uint8_t {
  /// Retarget a Backward to the wrong step (backward-order).
  BackwardOutOfOrder,
  /// Demote the ForwardSave feeding a Backward to a plain Forward
  /// (backward-liveness: the intermediates are never materialised).
  DropForwardSave,
  /// Change the state a Restore claims (restore-state: slot disagrees).
  RestoreWrongState,
  /// Free a slot immediately before a Restore of it (free-orphan +
  /// restore-empty).
  EarlyFree,
  /// Store into one slot more than the planner budgeted, never freed
  /// (memory-bound: peak activation units exceed the analytic bound).
  ExtraStoreOverBudget,
  /// Insert redundant advance/restore churn (work-bound: total cost
  /// exceeds 2 * rho * l).
  InflateWork,
};

inline constexpr Corruption kAllCorruptions[] = {
    Corruption::BackwardOutOfOrder, Corruption::DropForwardSave,
    Corruption::RestoreWrongState,  Corruption::EarlyFree,
    Corruption::ExtraStoreOverBudget, Corruption::InflateWork,
};

[[nodiscard]] std::string to_string(Corruption corruption);

/// Applies @p corruption to a copy of the case's schedule. Returns
/// std::nullopt when the schedule lacks the action pattern the mutation
/// targets (e.g. a restore-less full-storage schedule cannot host
/// RestoreWrongState) or the case lacks the bound the mutation attacks.
/// A returned schedule is guaranteed to violate the corruption's invariant
/// when interpreted with the case's cost model and bounds.
[[nodiscard]] std::optional<core::Schedule> corrupt(const SweepCase& sweep_case,
                                                    Corruption corruption);

}  // namespace edgetrain::analysis
