// edgetrain: on-node dataset storage model (paper Section III).
//
// "At the standard resolution of 224x224, the size can be expected to be
//  less than 10kb per image. Storing even about 100,000 of these images
//  would require about 1GB of local storage, which is easily provided on
//  an SD card." ImageStore models that budget: a bounded FIFO of labelled
//  images with byte accounting and optional eviction.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

namespace edgetrain::edge {

struct StoredImage {
  std::uint64_t id = 0;
  std::int32_t label = -1;
  std::uint32_t bytes = 0;
};

/// Byte-budgeted FIFO image store.
class ImageStore {
 public:
  /// @p capacity_bytes: total budget; @p evict_oldest: when full, drop the
  /// oldest images to make room (otherwise add() fails).
  ImageStore(std::uint64_t capacity_bytes, bool evict_oldest);

  /// Adds an image of @p bytes with @p label; returns its id, or
  /// std::nullopt when the store is full and eviction is disabled.
  std::optional<std::uint64_t> add(std::int32_t label, std::uint32_t bytes);

  /// Carves @p bytes out of the budget for non-dataset durables (trainer
  /// snapshots, spill files) sharing the same SD card. Eviction frees
  /// dataset images until the dataset fits the shrunken budget. Throws
  /// std::invalid_argument when the reservation exceeds capacity.
  void reserve(std::uint64_t bytes);

  [[nodiscard]] std::uint64_t capacity_bytes() const noexcept {
    return capacity_bytes_;
  }
  [[nodiscard]] std::uint64_t reserved_bytes() const noexcept {
    return reserved_;
  }
  /// Budget left for dataset images after the reservation.
  [[nodiscard]] std::uint64_t dataset_capacity_bytes() const noexcept {
    return capacity_bytes_ - reserved_;
  }
  [[nodiscard]] std::uint64_t used_bytes() const noexcept { return used_; }
  [[nodiscard]] std::size_t size() const noexcept { return images_.size(); }
  [[nodiscard]] std::uint64_t evicted_count() const noexcept {
    return evicted_;
  }

  [[nodiscard]] bool fits(std::uint32_t bytes) const noexcept {
    return used_ + bytes <= dataset_capacity_bytes();
  }

  /// Count of stored images per label (labels < @p num_labels).
  [[nodiscard]] std::vector<std::size_t> label_histogram(int num_labels) const;

  [[nodiscard]] const std::deque<StoredImage>& images() const noexcept {
    return images_;
  }

 private:
  std::uint64_t capacity_bytes_;
  bool evict_oldest_;
  std::uint64_t reserved_ = 0;
  std::uint64_t used_ = 0;
  std::uint64_t next_id_ = 0;
  std::uint64_t evicted_ = 0;
  std::deque<StoredImage> images_;
};

}  // namespace edgetrain::edge
