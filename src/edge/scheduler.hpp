// edgetrain: idle-priority task scheduling on the edge node.
//
// "Since the training of the student model is not time critical, it can be
//  scheduled to run only when the node's CPU does not have a higher
//  priority task." (paper Section III). IdleScheduler is a discrete-event
// simulator of one payload CPU: foreground sensing/inference tasks arrive
// with priorities and durations and always preempt the single background
// training task, which soaks up every idle interval. The report quantifies
// how much training throughput a node's duty cycle leaves available.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace edgetrain::edge {

/// A foreground job (sensing, inference, node management).
struct ForegroundTask {
  std::string name;
  double arrival_seconds = 0.0;
  double duration_seconds = 0.0;
  int priority = 0;  ///< larger = more urgent; ties run FIFO
};

/// One executed interval on the CPU timeline.
struct TimelineSlice {
  double begin_seconds = 0.0;
  double end_seconds = 0.0;
  std::string task;  ///< foreground task name or "training"
};

struct ScheduleReport {
  double horizon_seconds = 0.0;
  double foreground_seconds = 0.0;
  double training_seconds = 0.0;
  double idle_fraction = 0.0;        ///< training_seconds / horizon
  std::int64_t training_steps = 0;   ///< completed training steps
  std::int64_t preemptions = 0;      ///< times training was interrupted
  std::vector<TimelineSlice> timeline;
};

/// One contiguous stretch of CPU time with no foreground work: the trainer
/// runs whole steps inside it and must snapshot (cooperative suspend) by
/// end_seconds, when the foreground reclaims the CPU.
struct IdleWindow {
  double begin_seconds = 0.0;
  double end_seconds = 0.0;

  [[nodiscard]] double duration() const noexcept {
    return end_seconds - begin_seconds;
  }
  /// Whole training steps of @p step_seconds that fit in the window.
  [[nodiscard]] std::int64_t steps(double step_seconds) const noexcept {
    return static_cast<std::int64_t>(duration() / step_seconds);
  }
};

/// Single-CPU preemptive priority scheduler with a background trainer.
class IdleScheduler {
 public:
  /// @p step_seconds: duration of one training step (preemption granularity:
  /// a step in flight when a foreground task arrives is abandoned and
  /// re-run, modelling checkpoint-free preemption).
  explicit IdleScheduler(double step_seconds);

  void add_task(ForegroundTask task);

  /// Simulates [0, horizon_seconds).
  [[nodiscard]] ScheduleReport run(double horizon_seconds) const;

  /// The idle windows of the same simulation: every maximal interval the
  /// background trainer owns the CPU. Drives suspend/resume training
  /// (persist::ResumableTrainer suspends at each window end); the windows
  /// tile exactly the report's training timeline slices.
  [[nodiscard]] std::vector<IdleWindow> idle_windows(
      double horizon_seconds) const;

 private:
  double step_seconds_;
  std::vector<ForegroundTask> tasks_;
};

/// Convenience: periodic task generator (period, jitterless).
[[nodiscard]] std::vector<ForegroundTask> periodic_tasks(
    const std::string& name, double period_seconds, double duration_seconds,
    int priority, double horizon_seconds);

}  // namespace edgetrain::edge
