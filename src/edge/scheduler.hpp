// edgetrain: idle-priority task scheduling on the edge node.
//
// "Since the training of the student model is not time critical, it can be
//  scheduled to run only when the node's CPU does not have a higher
//  priority task." (paper Section III). IdleScheduler is a discrete-event
// simulator of one payload CPU: foreground sensing/inference tasks arrive
// with priorities and durations and always preempt the single background
// training task, which soaks up every idle interval. The report quantifies
// how much training throughput a node's duty cycle leaves available.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace edgetrain::edge {

/// A foreground job (sensing, inference, node management).
struct ForegroundTask {
  std::string name;
  double arrival_seconds = 0.0;
  double duration_seconds = 0.0;
  int priority = 0;  ///< larger = more urgent; ties run FIFO
};

/// One executed interval on the CPU timeline.
struct TimelineSlice {
  double begin_seconds = 0.0;
  double end_seconds = 0.0;
  std::string task;  ///< foreground task name or "training"
};

struct ScheduleReport {
  double horizon_seconds = 0.0;
  double foreground_seconds = 0.0;
  double training_seconds = 0.0;
  double idle_fraction = 0.0;        ///< training_seconds / horizon
  std::int64_t training_steps = 0;   ///< completed training steps
  std::int64_t preemptions = 0;      ///< times training was interrupted
  std::vector<TimelineSlice> timeline;
};

/// One contiguous stretch of CPU time with no foreground work: the trainer
/// runs whole steps inside it and must snapshot (cooperative suspend) by
/// end_seconds, when the foreground reclaims the CPU.
struct IdleWindow {
  double begin_seconds = 0.0;
  double end_seconds = 0.0;

  [[nodiscard]] double duration() const noexcept {
    return end_seconds - begin_seconds;
  }
  /// Whole training steps of @p step_seconds that fit in the window.
  [[nodiscard]] std::int64_t steps(double step_seconds) const noexcept {
    return static_cast<std::int64_t>(duration() / step_seconds);
  }
};

/// Single-CPU preemptive priority scheduler with a background trainer.
class IdleScheduler {
 public:
  /// @p step_seconds: duration of one training step (preemption granularity:
  /// a step in flight when a foreground task arrives is abandoned and
  /// re-run, modelling checkpoint-free preemption).
  explicit IdleScheduler(double step_seconds);

  void add_task(ForegroundTask task);

  /// Simulates [0, horizon_seconds).
  [[nodiscard]] ScheduleReport run(double horizon_seconds) const;

  /// The idle windows of the same simulation: every maximal interval the
  /// background trainer owns the CPU. Drives suspend/resume training
  /// (persist::ResumableTrainer suspends at each window end); the windows
  /// tile exactly the report's training timeline slices.
  [[nodiscard]] std::vector<IdleWindow> idle_windows(
      double horizon_seconds) const;

 private:
  double step_seconds_;
  std::vector<ForegroundTask> tasks_;
};

/// Convenience: periodic task generator (period, jitterless).
[[nodiscard]] std::vector<ForegroundTask> periodic_tasks(
    const std::string& name, double period_seconds, double duration_seconds,
    int priority, double horizon_seconds);

/// One simulated duty cycle, tiled periodically over unbounded time.
///
/// A fleet simulation cannot afford a per-node IdleScheduler timeline
/// (10^5 nodes x 10^4 windows would dominate memory and setup), but
/// nodes running the same sensing payload share the same duty cycle up to
/// a phase offset. PeriodicIdleProfile runs the scheduler ONCE over one
/// period, keeps the idle windows plus a prefix-sum table, and answers
/// "how many training seconds does a node get in virtual [begin, end)?"
/// in O(log windows) for any interval, any phase, any number of periods.
class PeriodicIdleProfile {
 public:
  /// Simulates @p scheduler over [0, period_seconds) and freezes the
  /// resulting idle windows as one period of the cycle.
  PeriodicIdleProfile(const IdleScheduler& scheduler, double period_seconds);

  [[nodiscard]] double period_seconds() const noexcept { return period_; }
  /// Training seconds available in one full period.
  [[nodiscard]] double training_seconds_per_period() const noexcept {
    return total_;
  }
  /// Duty fraction the background trainer owns.
  [[nodiscard]] double idle_fraction() const noexcept {
    return period_ > 0.0 ? total_ / period_ : 0.0;
  }
  [[nodiscard]] const std::vector<IdleWindow>& windows() const noexcept {
    return windows_;
  }

  /// Training seconds available in absolute virtual [begin, end), the
  /// profile tiling forever. @p phase_seconds shifts the node's position
  /// inside the cycle (two nodes with different phases see the same duty
  /// cycle at different wall offsets).
  [[nodiscard]] double training_seconds(double begin_seconds,
                                        double end_seconds,
                                        double phase_seconds = 0.0) const;

 private:
  /// Training seconds in [0, t) of a single period, t in [0, period_].
  [[nodiscard]] double training_before(double t) const;

  double period_ = 0.0;
  double total_ = 0.0;
  std::vector<IdleWindow> windows_;
  std::vector<double> prefix_;  ///< training seconds before windows_[i]
};

}  // namespace edgetrain::edge
