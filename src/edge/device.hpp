// edgetrain: edge-device models (paper Section II).
//
// Parameterises the hardware the paper targets: the Waggle node's payload
// computer (ODROID XU4: Exynos 5422, 4xA15 + 4xA7, 2 GB LPDDR3, SD storage)
// plus a couple of comparison points. Device specs feed the planner
// (memory), the task scheduler (cores), the storage model (SD card) and the
// power model (compute vs radio energy).
#pragma once

#include <cstdint>
#include <string>

namespace edgetrain::edge {

struct EdgeDevice {
  std::string name;
  std::uint64_t memory_bytes = 0;       ///< RAM available to training
  int big_cores = 0;
  int little_cores = 0;
  double peak_gflops = 0.0;             ///< sustained fp32, all cores
  std::uint64_t storage_bytes = 0;      ///< SD/flash for datasets+checkpoints
  double storage_write_mbps = 0.0;      ///< sequential write MB/s
  double storage_read_mbps = 0.0;       ///< sequential read MB/s
  double uplink_mbps = 0.0;             ///< radio/backhaul bandwidth
  double compute_watts = 0.0;           ///< SoC power under load
  double radio_watts_per_mbps = 0.0;    ///< transmit energy coefficient

  /// The Waggle node's ODROID XU4 payload board (paper Section II).
  [[nodiscard]] static EdgeDevice waggle_odroid_xu4();
  /// A Raspberry Pi 4 (4 GB) class device, for comparison sweeps.
  [[nodiscard]] static EdgeDevice raspberry_pi4();
  /// A Jetson-Nano class device (4 GB, small GPU folded into gflops).
  [[nodiscard]] static EdgeDevice jetson_nano();

  [[nodiscard]] int total_cores() const noexcept {
    return big_cores + little_cores;
  }

  /// Seconds to move @p bytes over the uplink.
  [[nodiscard]] double uplink_seconds(double bytes) const;

  /// Seconds to write @p bytes to local storage.
  [[nodiscard]] double storage_write_seconds(double bytes) const;

  /// Disk-checkpoint IO cost in "forward-step units" for the disk-revolve
  /// solver: time to write/read one checkpoint of @p checkpoint_bytes
  /// relative to the time of one forward step costing @p step_flops.
  [[nodiscard]] double disk_write_cost_units(double checkpoint_bytes,
                                             double step_flops) const;
  [[nodiscard]] double disk_read_cost_units(double checkpoint_bytes,
                                            double step_flops) const;
};

}  // namespace edgetrain::edge
