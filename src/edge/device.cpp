#include "edge/device.hpp"

#include <stdexcept>

namespace edgetrain::edge {

namespace {
constexpr double kMiB = 1024.0 * 1024.0;
constexpr std::uint64_t kGiB = 1024ULL * 1024ULL * 1024ULL;
}  // namespace

EdgeDevice EdgeDevice::waggle_odroid_xu4() {
  EdgeDevice d;
  d.name = "Waggle ODROID-XU4";
  d.memory_bytes = 2 * kGiB;
  d.big_cores = 4;    // Cortex-A15 @ 2.0 GHz
  d.little_cores = 4; // Cortex-A7 @ 1.4 GHz
  d.peak_gflops = 15.0;
  d.storage_bytes = 64 * kGiB;  // SD card
  d.storage_write_mbps = 20.0;
  d.storage_read_mbps = 80.0;
  d.uplink_mbps = 5.0;  // shared cellular/backhaul budget
  d.compute_watts = 10.0;
  d.radio_watts_per_mbps = 0.5;
  return d;
}

EdgeDevice EdgeDevice::raspberry_pi4() {
  EdgeDevice d;
  d.name = "Raspberry Pi 4 (4GB)";
  d.memory_bytes = 4 * kGiB;
  d.big_cores = 4;
  d.little_cores = 0;
  d.peak_gflops = 13.5;
  d.storage_bytes = 64 * kGiB;
  d.storage_write_mbps = 25.0;
  d.storage_read_mbps = 90.0;
  d.uplink_mbps = 10.0;
  d.compute_watts = 7.0;
  d.radio_watts_per_mbps = 0.4;
  return d;
}

EdgeDevice EdgeDevice::jetson_nano() {
  EdgeDevice d;
  d.name = "Jetson Nano (4GB)";
  d.memory_bytes = 4 * kGiB;
  d.big_cores = 4;
  d.little_cores = 0;
  d.peak_gflops = 470.0;  // fp16/fp32 mix on the Maxwell GPU
  d.storage_bytes = 128 * kGiB;
  d.storage_write_mbps = 40.0;
  d.storage_read_mbps = 100.0;
  d.uplink_mbps = 50.0;
  d.compute_watts = 10.0;
  d.radio_watts_per_mbps = 0.3;
  return d;
}

double EdgeDevice::uplink_seconds(double bytes) const {
  if (uplink_mbps <= 0.0) throw std::logic_error("device has no uplink");
  return bytes * 8.0 / (uplink_mbps * 1e6);
}

double EdgeDevice::storage_write_seconds(double bytes) const {
  if (storage_write_mbps <= 0.0) throw std::logic_error("device has no storage");
  return bytes / (storage_write_mbps * kMiB);
}

double EdgeDevice::disk_write_cost_units(double checkpoint_bytes,
                                         double step_flops) const {
  const double step_seconds = step_flops / (peak_gflops * 1e9);
  const double io_seconds = checkpoint_bytes / (storage_write_mbps * kMiB);
  return io_seconds / step_seconds;
}

double EdgeDevice::disk_read_cost_units(double checkpoint_bytes,
                                        double step_flops) const {
  const double step_seconds = step_flops / (peak_gflops * 1e9);
  const double io_seconds = checkpoint_bytes / (storage_read_mbps * kMiB);
  return io_seconds / step_seconds;
}

}  // namespace edgetrain::edge
