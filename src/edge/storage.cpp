#include "edge/storage.hpp"

#include <stdexcept>
#include <vector>

namespace edgetrain::edge {

ImageStore::ImageStore(std::uint64_t capacity_bytes, bool evict_oldest)
    : capacity_bytes_(capacity_bytes), evict_oldest_(evict_oldest) {}

std::optional<std::uint64_t> ImageStore::add(std::int32_t label,
                                             std::uint32_t bytes) {
  if (bytes > dataset_capacity_bytes()) return std::nullopt;
  while (used_ + bytes > dataset_capacity_bytes()) {
    if (!evict_oldest_ || images_.empty()) return std::nullopt;
    used_ -= images_.front().bytes;
    images_.pop_front();
    ++evicted_;
  }
  const std::uint64_t id = next_id_++;
  images_.push_back({id, label, bytes});
  used_ += bytes;
  return id;
}

void ImageStore::reserve(std::uint64_t bytes) {
  if (bytes > capacity_bytes_) {
    throw std::invalid_argument(
        "ImageStore: reservation exceeds card capacity");
  }
  reserved_ = bytes;
  while (used_ > dataset_capacity_bytes() && !images_.empty()) {
    used_ -= images_.front().bytes;
    images_.pop_front();
    ++evicted_;
  }
}

std::vector<std::size_t> ImageStore::label_histogram(int num_labels) const {
  std::vector<std::size_t> histogram(static_cast<std::size_t>(num_labels), 0);
  for (const StoredImage& image : images_) {
    if (image.label >= 0 && image.label < num_labels) {
      ++histogram[static_cast<std::size_t>(image.label)];
    }
  }
  return histogram;
}

}  // namespace edgetrain::edge
