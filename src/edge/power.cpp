#include "edge/power.hpp"

namespace edgetrain::edge {

double EnergyModel::transmit_seconds(double dataset_bytes) const {
  return device_.uplink_seconds(dataset_bytes);
}

double EnergyModel::transmit_joules(double dataset_bytes) const {
  // Radio power scales with the link rate; energy = coeff * Mbps * seconds
  // = coeff * megabits transferred.
  const double megabits = dataset_bytes * 8.0 / 1e6;
  return device_.radio_watts_per_mbps * megabits;
}

double EnergyModel::compute_seconds(double training_flops) const {
  return training_flops / (device_.peak_gflops * 1e9);
}

double EnergyModel::compute_joules(double training_flops) const {
  return compute_seconds(training_flops) * device_.compute_watts;
}

EnergyReport EnergyModel::compare(double dataset_bytes,
                                  double training_flops) const {
  EnergyReport report;
  report.transmit_joules = transmit_joules(dataset_bytes);
  report.transmit_seconds = transmit_seconds(dataset_bytes);
  report.compute_joules = compute_joules(training_flops);
  report.compute_seconds = compute_seconds(training_flops);
  return report;
}

double EnergyModel::break_even_bytes(double training_flops) const {
  const double joules = compute_joules(training_flops);
  // joules = coeff * (bytes * 8 / 1e6)  =>  bytes = joules * 1e6 / (8*coeff)
  return joules * 1e6 / (8.0 * device_.radio_watts_per_mbps);
}

}  // namespace edgetrain::edge
