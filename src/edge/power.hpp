// edgetrain: energy accounting for the edge-vs-cloud decision (Section I).
//
// The paper motivates edge training with reduced communication: shipping
// raw data to the cloud costs radio energy and backhaul bandwidth, while
// training in situ costs compute energy. EnergyModel quantifies both sides
// and finds the break-even dataset size.
#pragma once

#include <cstdint>

#include "edge/device.hpp"

namespace edgetrain::edge {

struct EnergyReport {
  double transmit_joules = 0.0;   ///< ship raw data to the cloud
  double compute_joules = 0.0;    ///< train locally instead
  double transmit_seconds = 0.0;
  double compute_seconds = 0.0;
  [[nodiscard]] bool edge_cheaper() const {
    return compute_joules < transmit_joules;
  }
};

class EnergyModel {
 public:
  explicit EnergyModel(EdgeDevice device) : device_(std::move(device)) {}

  /// Energy/time to transmit @p dataset_bytes upstream.
  [[nodiscard]] double transmit_joules(double dataset_bytes) const;
  [[nodiscard]] double transmit_seconds(double dataset_bytes) const;

  /// Energy/time to run @p training_flops locally.
  [[nodiscard]] double compute_joules(double training_flops) const;
  [[nodiscard]] double compute_seconds(double training_flops) const;

  /// Full comparison: ship the dataset vs train on it locally.
  [[nodiscard]] EnergyReport compare(double dataset_bytes,
                                     double training_flops) const;

  /// Dataset size (bytes) at which shipping costs as much energy as
  /// @p training_flops of local compute.
  [[nodiscard]] double break_even_bytes(double training_flops) const;

 private:
  EdgeDevice device_;
};

}  // namespace edgetrain::edge
