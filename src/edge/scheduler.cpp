#include "edge/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

namespace edgetrain::edge {

IdleScheduler::IdleScheduler(double step_seconds)
    : step_seconds_(step_seconds) {
  if (step_seconds <= 0.0) {
    throw std::invalid_argument("IdleScheduler: step_seconds must be > 0");
  }
}

void IdleScheduler::add_task(ForegroundTask task) {
  tasks_.push_back(std::move(task));
}

ScheduleReport IdleScheduler::run(double horizon_seconds) const {
  std::vector<ForegroundTask> tasks = tasks_;
  std::stable_sort(tasks.begin(), tasks.end(),
                   [](const ForegroundTask& a, const ForegroundTask& b) {
                     return a.arrival_seconds < b.arrival_seconds;
                   });

  // Ready queue: highest priority first, FIFO within a priority.
  struct Ready {
    int priority;
    std::size_t seq;
    std::size_t task_index;
  };
  auto cmp = [](const Ready& a, const Ready& b) {
    if (a.priority != b.priority) return a.priority < b.priority;
    return a.seq > b.seq;
  };
  std::priority_queue<Ready, std::vector<Ready>, decltype(cmp)> ready(cmp);

  ScheduleReport report;
  report.horizon_seconds = horizon_seconds;

  std::size_t next_arrival = 0;
  std::size_t seq = 0;
  double now = 0.0;

  auto admit_arrivals = [&](double up_to) {
    while (next_arrival < tasks.size() &&
           tasks[next_arrival].arrival_seconds <= up_to) {
      ready.push({tasks[next_arrival].priority, seq++, next_arrival});
      ++next_arrival;
    }
  };

  auto push_slice = [&](double begin, double end, const std::string& name) {
    if (end <= begin) return;
    if (!report.timeline.empty() && report.timeline.back().task == name &&
        report.timeline.back().end_seconds == begin) {
      report.timeline.back().end_seconds = end;
    } else {
      report.timeline.push_back({begin, end, name});
    }
  };

  while (now < horizon_seconds) {
    admit_arrivals(now);
    if (!ready.empty()) {
      const Ready r = ready.top();
      ready.pop();
      const ForegroundTask& task = tasks[r.task_index];
      const double end = std::min(now + task.duration_seconds, horizon_seconds);
      push_slice(now, end, task.name);
      report.foreground_seconds += end - now;
      now = end;
      continue;
    }
    // CPU idle: run training until the next arrival (or the horizon).
    const double next_time = next_arrival < tasks.size()
                                 ? std::min(tasks[next_arrival].arrival_seconds,
                                            horizon_seconds)
                                 : horizon_seconds;
    if (next_time <= now) {
      now = next_time;
      continue;
    }
    const double gap = next_time - now;
    const auto whole_steps = static_cast<std::int64_t>(gap / step_seconds_);
    const double trained = static_cast<double>(whole_steps) * step_seconds_;
    report.training_steps += whole_steps;
    if (trained > 0.0) push_slice(now, now + trained, "training");
    report.training_seconds += trained;
    double cursor = now + trained;
    if (cursor < next_time && next_time < horizon_seconds) {
      // A step in flight when the foreground task arrives is abandoned.
      push_slice(cursor, next_time, "training");
      report.training_seconds += next_time - cursor;
      ++report.preemptions;
      cursor = next_time;
    }
    now = std::max(cursor, next_time == horizon_seconds ? cursor : next_time);
    if (next_time == horizon_seconds && cursor < horizon_seconds) {
      // Tail shorter than a step at the end of the horizon: leave idle.
      now = horizon_seconds;
    }
  }

  report.idle_fraction =
      horizon_seconds > 0.0 ? report.training_seconds / horizon_seconds : 0.0;
  return report;
}

std::vector<IdleWindow> IdleScheduler::idle_windows(
    double horizon_seconds) const {
  const ScheduleReport report = run(horizon_seconds);
  std::vector<IdleWindow> windows;
  for (const TimelineSlice& slice : report.timeline) {
    if (slice.task != "training") continue;
    if (!windows.empty() &&
        windows.back().end_seconds == slice.begin_seconds) {
      windows.back().end_seconds = slice.end_seconds;
    } else {
      windows.push_back({slice.begin_seconds, slice.end_seconds});
    }
  }
  return windows;
}

PeriodicIdleProfile::PeriodicIdleProfile(const IdleScheduler& scheduler,
                                         double period_seconds)
    : period_(period_seconds) {
  if (period_seconds <= 0.0) {
    throw std::invalid_argument(
        "PeriodicIdleProfile: period_seconds must be > 0");
  }
  windows_ = scheduler.idle_windows(period_seconds);
  prefix_.reserve(windows_.size());
  double running = 0.0;
  for (const IdleWindow& window : windows_) {
    prefix_.push_back(running);
    running += window.duration();
  }
  total_ = running;
}

double PeriodicIdleProfile::training_before(double t) const {
  if (windows_.empty() || t <= 0.0) return 0.0;
  if (t >= period_) return total_;
  // First window beginning at or after t; everything before it is either
  // fully counted (prefix) or partially overlapped (the window before).
  const auto it = std::lower_bound(
      windows_.begin(), windows_.end(), t,
      [](const IdleWindow& w, double value) { return w.begin_seconds < value; });
  const std::size_t index =
      static_cast<std::size_t>(std::distance(windows_.begin(), it));
  double sum = index < prefix_.size() ? prefix_[index] : total_;
  if (index > 0) {
    const IdleWindow& prev = windows_[index - 1];
    // prefix_ counts prev in full; give back the part past t.
    if (t < prev.end_seconds) sum -= prev.end_seconds - t;
  }
  return sum;
}

double PeriodicIdleProfile::training_seconds(double begin_seconds,
                                             double end_seconds,
                                             double phase_seconds) const {
  if (end_seconds <= begin_seconds || total_ <= 0.0) return 0.0;
  // F(t) = training seconds in phase-shifted [0, t).
  const auto cumulative = [&](double t) {
    const double shifted = t + phase_seconds;
    const double periods = std::floor(shifted / period_);
    const double within = shifted - periods * period_;
    return periods * total_ + training_before(within);
  };
  return cumulative(end_seconds) - cumulative(begin_seconds);
}

std::vector<ForegroundTask> periodic_tasks(const std::string& name,
                                           double period_seconds,
                                           double duration_seconds,
                                           int priority,
                                           double horizon_seconds) {
  std::vector<ForegroundTask> tasks;
  for (double t = 0.0; t < horizon_seconds; t += period_seconds) {
    tasks.push_back({name, t, duration_seconds, priority});
  }
  return tasks;
}

}  // namespace edgetrain::edge
