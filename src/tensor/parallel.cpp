#include "tensor/parallel.hpp"

#include <atomic>
#include <deque>
#include <memory>
#include <thread>

#include "analysis/race/race.hpp"
#include "core/thread_annotations.hpp"

namespace edgetrain {

struct ThreadPool::Impl {
  struct Job {
    std::int64_t begin = 0;
    std::int64_t end = 0;
    const ParallelFn* fn = nullptr;
    unsigned num_chunks = 0;
  };

  explicit Impl(unsigned num_threads) {
    if (num_threads == 0) {
      num_threads = std::thread::hardware_concurrency();
      if (num_threads == 0) num_threads = 4;
    }
    // The caller participates in every parallel_for as chunk 0, so a pool
    // of N compute threads needs only N-1 workers. Spawning N (the old
    // behaviour) oversubscribed every machine by one core and -- worse --
    // forced a wake/sleep context-switch pair per kernel on single-core
    // edge devices, where the pool should degrade to plain inline calls.
    const unsigned num_workers = num_threads - 1;
#if defined(EDGETRAIN_GUARDS)
    // Thread-create edge: everything the constructing thread did so far
    // happens-before each worker's first action.
    fork_token = analysis::race::fork();
    end_tokens.resize(num_workers);
#endif
    workers.reserve(num_workers);
    for (unsigned i = 0; i < num_workers; ++i) {
      workers.emplace_back([this, i] { worker_loop(i + 1); });
    }
  }

  ~Impl() {
    {
      MutexLock lock(mutex);
      shutting_down = true;
    }
    cv_start.notify_all();
    for (auto& worker : workers) worker.join();
#if defined(EDGETRAIN_GUARDS)
    // Thread-join edge: each worker's entire history happens-before
    // anything the destroying thread does next.
    for (const auto& token : end_tokens) analysis::race::join(token);
#endif
  }

  void worker_loop(unsigned worker_index) {
    mark_inside_pool_job();  // nested parallel_for from workers runs inline
#if defined(EDGETRAIN_GUARDS)
    analysis::race::task_begin(fork_token);
#endif
    std::uint64_t seen_epoch = 0;
    for (;;) {
      Job local;
      {
        MutexLock lock(mutex);
        while (!shutting_down && epoch == seen_epoch) cv_start.wait(lock);
        if (shutting_down) {
#if defined(EDGETRAIN_GUARDS)
          end_tokens[worker_index - 1] = analysis::race::task_end();
#endif
          return;
        }
        seen_epoch = epoch;
        // Copied under the lock: `job` is only ever touched with `mutex`
        // held, so the annotation story needs no escape hatch here.
        EDGETRAIN_RACE_READ(job, "ThreadPool job");
        local = job;
      }
      run_chunk(local, worker_index);
      // The pending counter is the join barrier: release this worker's
      // clock into it before the decrement the caller's wait acquires.
      EDGETRAIN_RACE_SYNC_RELEASE(&pending);
      if (pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        MutexLock lock(mutex);
        cv_done.notify_all();
      }
    }
  }

  static void run_chunk(const Job& local, unsigned chunk_index) {
    if (chunk_index >= local.num_chunks) return;
    const std::int64_t total = local.end - local.begin;
    const std::int64_t per =
        (total + static_cast<std::int64_t>(local.num_chunks) - 1) /
        static_cast<std::int64_t>(local.num_chunks);
    const std::int64_t b = local.begin + per * chunk_index;
    const std::int64_t e = std::min(local.end, b + per);
    if (b < e) (*local.fn)(b, e);
  }

  void run(std::int64_t begin, std::int64_t end, const ParallelFn& fn) {
    const unsigned num_chunks = static_cast<unsigned>(workers.size()) + 1;
    const Job local{begin, end, &fn, num_chunks};
    {
      MutexLock lock(mutex);
      EDGETRAIN_RACE_WRITE(job, "ThreadPool job");
      job = local;
      pending.store(static_cast<int>(workers.size()),
                    std::memory_order_release);
      ++epoch;
    }
    cv_start.notify_all();
    try {
      run_chunk(local, 0);  // caller participates as chunk 0
    } catch (...) {
      // The workers still hold a pointer to `fn`, which lives in the
      // caller's frame: wait for them before letting the frame unwind.
      wait_done();
      throw;
    }
    wait_done();
  }

  void wait_done() {
    {
      MutexLock lock(mutex);
      while (pending.load(std::memory_order_acquire) != 0) {
        cv_done.wait(lock);
      }
    }
    // Join edge: merge every worker's chunk history before the caller
    // continues past the parallel_for.
    EDGETRAIN_RACE_SYNC_ACQUIRE(&pending);
  }

  static void mark_inside_pool_job();

  std::vector<std::thread> workers;
  Mutex mutex;
  CondVar cv_start;
  CondVar cv_done;
  std::uint64_t epoch GUARDED_BY(mutex) = 0;
  Job job GUARDED_BY(mutex);
  std::atomic<int> pending{0};
  bool shutting_down GUARDED_BY(mutex) = false;
#if defined(EDGETRAIN_GUARDS)
  analysis::race::ForkToken fork_token;  ///< written before workers start
  std::vector<analysis::race::ForkToken> end_tokens GUARDED_BY(mutex);
#endif
};

namespace {
thread_local bool inside_pool_job = false;
}  // namespace

void ThreadPool::Impl::mark_inside_pool_job() { inside_pool_job = true; }

namespace {
std::unique_ptr<ThreadPool>& global_pool_slot() {
  static std::unique_ptr<ThreadPool> pool = std::make_unique<ThreadPool>();
  return pool;
}
}  // namespace

ThreadPool::ThreadPool(unsigned num_threads) : impl_(new Impl(num_threads)) {}

ThreadPool::~ThreadPool() { delete impl_; }

unsigned ThreadPool::size() const noexcept {
  return static_cast<unsigned>(impl_->workers.size()) + 1;
}

void ThreadPool::parallel_for(std::int64_t begin, std::int64_t end,
                              ParallelFn fn) {
  if (begin >= end) return;
  if (inside_pool_job) {  // no nested parallelism: run serially
    fn(begin, end);
    return;
  }
  if (size() == 1) {
    // A single worker would receive the whole range as one chunk anyway;
    // running it inline skips a wake/sleep context-switch pair per
    // dispatch, which dominates small kernels on single-core devices.
    fn(begin, end);
    return;
  }
  // RAII: a throwing chunk must not leave the flag stuck, which would
  // silently serialise every later parallel_for on this thread.
  struct Flag {
    Flag() noexcept { inside_pool_job = true; }
    ~Flag() { inside_pool_job = false; }
  } flag;
  impl_->run(begin, end, fn);
}

ThreadPool& ThreadPool::global() { return *global_pool_slot(); }

void ThreadPool::set_global_threads(unsigned num_threads) {
  global_pool_slot() = std::make_unique<ThreadPool>(num_threads);
}

void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  ParallelFn fn) {
  if (begin >= end) return;
  if (end - begin <= grain) {
    fn(begin, end);
    return;
  }
  ThreadPool::global().parallel_for(begin, end, fn);
}

// ---------------------------------------------------------------------------
// BackgroundWorker
// ---------------------------------------------------------------------------

struct BackgroundWorker::Impl {
  Impl() {
#if defined(EDGETRAIN_GUARDS)
    fork_token = analysis::race::fork();
#endif
    thread = std::thread([this] { loop(); });
  }

  ~Impl() {
    {
      MutexLock lock(mutex);
      shutting_down = true;
    }
    cv_work.notify_all();
    thread.join();
#if defined(EDGETRAIN_GUARDS)
    analysis::race::join(end_token);
#endif
  }

  void loop() {
#if defined(EDGETRAIN_GUARDS)
    analysis::race::task_begin(fork_token);
#endif
    MutexLock lock(mutex);
    for (;;) {
      while (!shutting_down && queue.empty()) cv_work.wait(lock);
      if (queue.empty()) {
        if (shutting_down) {
#if defined(EDGETRAIN_GUARDS)
          end_token = analysis::race::task_end();
#endif
          return;  // drained: safe to exit
        }
        continue;
      }
      std::function<void()> job = std::move(queue.front());
      queue.pop_front();
      ++in_flight;
      lock.unlock();
      job();
      lock.lock();
      --in_flight;
      if (queue.empty() && in_flight == 0) cv_idle.notify_all();
    }
  }

  Mutex mutex;
  CondVar cv_work;
  CondVar cv_idle;
  std::deque<std::function<void()>> queue GUARDED_BY(mutex);
  int in_flight GUARDED_BY(mutex) = 0;
  bool shutting_down GUARDED_BY(mutex) = false;
#if defined(EDGETRAIN_GUARDS)
  analysis::race::ForkToken fork_token;  ///< written before the thread starts
  analysis::race::ForkToken end_token GUARDED_BY(mutex);
#endif
  std::thread thread;  // last member: starts only once the state above exists
};

BackgroundWorker::BackgroundWorker() : impl_(new Impl) {}

BackgroundWorker::~BackgroundWorker() { delete impl_; }

void BackgroundWorker::submit(std::function<void()> job) {
  {
    MutexLock lock(impl_->mutex);
    impl_->queue.push_back(std::move(job));
  }
  impl_->cv_work.notify_one();
}

void BackgroundWorker::drain() {
  MutexLock lock(impl_->mutex);
  while (!impl_->queue.empty() || impl_->in_flight != 0) {
    impl_->cv_idle.wait(lock);
  }
}

std::size_t BackgroundWorker::pending() const {
  MutexLock lock(impl_->mutex);
  return impl_->queue.size() + static_cast<std::size_t>(impl_->in_flight);
}

}  // namespace edgetrain
