#include "tensor/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>

namespace edgetrain {

struct ThreadPool::Impl {
  struct Job {
    std::int64_t begin = 0;
    std::int64_t end = 0;
    const ParallelFn* fn = nullptr;
    unsigned num_chunks = 0;
  };

  explicit Impl(unsigned num_threads) {
    if (num_threads == 0) {
      num_threads = std::thread::hardware_concurrency();
      if (num_threads == 0) num_threads = 4;
    }
    workers.reserve(num_threads);
    for (unsigned i = 0; i < num_threads; ++i) {
      workers.emplace_back([this, i] { worker_loop(i + 1); });
    }
  }

  ~Impl() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      shutting_down = true;
    }
    cv_start.notify_all();
    for (auto& worker : workers) worker.join();
  }

  void worker_loop(unsigned worker_index) {
    mark_inside_pool_job();  // nested parallel_for from workers runs inline
    std::uint64_t seen_epoch = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mutex);
        cv_start.wait(lock,
                      [&] { return shutting_down || epoch != seen_epoch; });
        if (shutting_down) return;
        seen_epoch = epoch;
      }
      run_chunk(worker_index);
      if (pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(mutex);
        cv_done.notify_all();
      }
    }
  }

  void run_chunk(unsigned chunk_index) {
    const Job local = job;  // copied; fields set before epoch bump
    if (chunk_index >= local.num_chunks) return;
    const std::int64_t total = local.end - local.begin;
    const std::int64_t per =
        (total + static_cast<std::int64_t>(local.num_chunks) - 1) /
        static_cast<std::int64_t>(local.num_chunks);
    const std::int64_t b = local.begin + per * chunk_index;
    const std::int64_t e = std::min(local.end, b + per);
    if (b < e) (*local.fn)(b, e);
  }

  void run(std::int64_t begin, std::int64_t end, const ParallelFn& fn) {
    const unsigned num_chunks = static_cast<unsigned>(workers.size()) + 1;
    {
      std::lock_guard<std::mutex> lock(mutex);
      job = Job{begin, end, &fn, num_chunks};
      pending.store(static_cast<int>(workers.size()),
                    std::memory_order_release);
      ++epoch;
    }
    cv_start.notify_all();
    try {
      run_chunk(0);  // caller participates as chunk 0
    } catch (...) {
      // The workers still hold a pointer to `fn`, which lives in the
      // caller's frame: wait for them before letting the frame unwind.
      wait_done();
      throw;
    }
    wait_done();
  }

  void wait_done() {
    std::unique_lock<std::mutex> lock(mutex);
    cv_done.wait(lock,
                 [&] { return pending.load(std::memory_order_acquire) == 0; });
  }

  static void mark_inside_pool_job();

  std::vector<std::thread> workers;
  std::mutex mutex;
  std::condition_variable cv_start;
  std::condition_variable cv_done;
  std::uint64_t epoch = 0;
  std::atomic<int> pending{0};
  Job job;
  bool shutting_down = false;
};

namespace {
thread_local bool inside_pool_job = false;
}  // namespace

void ThreadPool::Impl::mark_inside_pool_job() { inside_pool_job = true; }

namespace {
std::unique_ptr<ThreadPool>& global_pool_slot() {
  static std::unique_ptr<ThreadPool> pool = std::make_unique<ThreadPool>();
  return pool;
}
}  // namespace

ThreadPool::ThreadPool(unsigned num_threads) : impl_(new Impl(num_threads)) {}

ThreadPool::~ThreadPool() { delete impl_; }

unsigned ThreadPool::size() const noexcept {
  return static_cast<unsigned>(impl_->workers.size()) + 1;
}

void ThreadPool::parallel_for(std::int64_t begin, std::int64_t end,
                              ParallelFn fn) {
  if (begin >= end) return;
  if (inside_pool_job) {  // no nested parallelism: run serially
    fn(begin, end);
    return;
  }
  // RAII: a throwing chunk must not leave the flag stuck, which would
  // silently serialise every later parallel_for on this thread.
  struct Flag {
    Flag() noexcept { inside_pool_job = true; }
    ~Flag() { inside_pool_job = false; }
  } flag;
  impl_->run(begin, end, fn);
}

ThreadPool& ThreadPool::global() { return *global_pool_slot(); }

void ThreadPool::set_global_threads(unsigned num_threads) {
  global_pool_slot() = std::make_unique<ThreadPool>(num_threads);
}

void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  ParallelFn fn) {
  if (begin >= end) return;
  if (end - begin <= grain) {
    fn(begin, end);
    return;
  }
  ThreadPool::global().parallel_for(begin, end, fn);
}

// ---------------------------------------------------------------------------
// BackgroundWorker
// ---------------------------------------------------------------------------

struct BackgroundWorker::Impl {
  Impl() : thread([this] { loop(); }) {}

  ~Impl() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      shutting_down = true;
    }
    cv_work.notify_all();
    thread.join();
  }

  void loop() {
    std::unique_lock<std::mutex> lock(mutex);
    for (;;) {
      cv_work.wait(lock, [&] { return shutting_down || !queue.empty(); });
      if (queue.empty()) {
        if (shutting_down) return;  // drained: safe to exit
        continue;
      }
      std::function<void()> job = std::move(queue.front());
      queue.pop_front();
      ++in_flight;
      lock.unlock();
      job();
      lock.lock();
      --in_flight;
      if (queue.empty() && in_flight == 0) cv_idle.notify_all();
    }
  }

  std::mutex mutex;
  std::condition_variable cv_work;
  std::condition_variable cv_idle;
  std::deque<std::function<void()>> queue;
  int in_flight = 0;
  bool shutting_down = false;
  std::thread thread;  // last member: starts only once the state above exists
};

BackgroundWorker::BackgroundWorker() : impl_(new Impl) {}

BackgroundWorker::~BackgroundWorker() { delete impl_; }

void BackgroundWorker::submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->queue.push_back(std::move(job));
  }
  impl_->cv_work.notify_one();
}

void BackgroundWorker::drain() {
  std::unique_lock<std::mutex> lock(impl_->mutex);
  impl_->cv_idle.wait(
      lock, [&] { return impl_->queue.empty() && impl_->in_flight == 0; });
}

std::size_t BackgroundWorker::pending() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->queue.size() + static_cast<std::size_t>(impl_->in_flight);
}

}  // namespace edgetrain
