#include "tensor/guards.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace edgetrain::guards {

namespace {

float from_bits(std::uint32_t bits) {
  float value;
  static_assert(sizeof(value) == sizeof(bits));
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

std::uint32_t to_bits(float value) {
  std::uint32_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

void default_handler(const char* message) {
  std::fprintf(stderr, "edgetrain guard violation: %s\n", message);
  std::fflush(stderr);
  std::abort();
}

FailureHandler g_handler = &default_handler;

// Relaxed ordering is intentional: a monotonic event counter that no
// thread uses to publish or acquire other memory. Tests only compare
// values they read after joining the threads that bumped it.
std::atomic<std::int64_t> g_poison_fills{0};

}  // namespace

void paint(float* ptr, std::int64_t count, std::uint32_t bits) {
  const float value = from_bits(bits);
  for (std::int64_t i = 0; i < count; ++i) ptr[i] = value;
  if (bits == kPoisonBits) {
    g_poison_fills.fetch_add(1, std::memory_order_relaxed);
  }
}

void paint_bytes(std::uint8_t* ptr, std::int64_t count) {
  if (count <= 0) return;
  std::memset(ptr, kPoisonByte, static_cast<std::size_t>(count));
  g_poison_fills.fetch_add(1, std::memory_order_relaxed);
}

bool all_poison_bytes(const std::uint8_t* ptr, std::int64_t count) {
  for (std::int64_t i = 0; i < count; ++i) {
    if (ptr[i] != kPoisonByte) return false;
  }
  return true;
}

std::int64_t poison_fill_count() noexcept {
  return g_poison_fills.load(std::memory_order_relaxed);
}

bool all_match(const float* ptr, std::int64_t count, std::uint32_t bits) {
  for (std::int64_t i = 0; i < count; ++i) {
    if (to_bits(ptr[i]) != bits) return false;
  }
  return true;
}

bool is_poison(float value) { return to_bits(value) == kPoisonBits; }

FailureHandler set_failure_handler(FailureHandler handler) noexcept {
  FailureHandler old = g_handler;
  g_handler = handler != nullptr ? handler : &default_handler;
  return old;
}

void fail(const char* message) {
  g_handler(message);
  // A handler may throw (tests do); one that returns cannot make the
  // violation continuable.
  default_handler(message);
  std::abort();  // unreachable; keeps [[noreturn]] honest
}

void assert_disjoint(const char* what, std::initializer_list<Span> spans) {
  const Span* list = spans.begin();
  const std::int64_t n = static_cast<std::int64_t>(spans.size());
  for (std::int64_t i = 0; i < n; ++i) {
    if (list[i].ptr == nullptr || list[i].numel <= 0) continue;
    for (std::int64_t j = i + 1; j < n; ++j) {
      if (list[j].ptr == nullptr || list[j].numel <= 0) continue;
      // Compare as integers: relational operators on pointers into
      // different objects are unspecified.
      const auto a_lo = reinterpret_cast<std::uintptr_t>(list[i].ptr);
      const auto a_hi = a_lo + static_cast<std::uintptr_t>(list[i].numel) *
                                   sizeof(float);
      const auto b_lo = reinterpret_cast<std::uintptr_t>(list[j].ptr);
      const auto b_hi = b_lo + static_cast<std::uintptr_t>(list[j].numel) *
                                   sizeof(float);
      if (a_lo < b_hi && b_lo < a_hi) {
        char message[160];
        std::snprintf(message, sizeof(message),
                      "%s: kernel buffers %lld and %lld overlap (racy "
                      "concurrent writes)",
                      what, static_cast<long long>(i),
                      static_cast<long long>(j));
        fail(message);
      }
    }
  }
}

}  // namespace edgetrain::guards
