#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>
#include <stdexcept>

namespace edgetrain {

std::string Shape::to_string() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i != 0) os << ", ";
    os << dims_[i];
  }
  os << ']';
  return os.str();
}

namespace detail {

Storage::Storage(std::size_t numel)
    : data_(std::make_unique<float[]>(numel)), numel_(numel) {
  MemoryTracker::instance().on_alloc(numel_ * sizeof(float));
}

Storage::~Storage() {
  MemoryTracker::instance().on_free(numel_ * sizeof(float));
}

}  // namespace detail

Tensor Tensor::empty(const Shape& shape) {
  return Tensor(
      std::make_shared<detail::Storage>(static_cast<std::size_t>(shape.numel())),
      shape);
}

Tensor Tensor::zeros(const Shape& shape) {
  Tensor t = empty(shape);
  std::memset(t.data(), 0, t.bytes());
  return t;
}

Tensor Tensor::full(const Shape& shape, float value) {
  Tensor t = empty(shape);
  t.fill(value);
  return t;
}

Tensor Tensor::randn(const Shape& shape, std::mt19937& rng, float stddev) {
  Tensor t = empty(shape);
  std::normal_distribution<float> dist(0.0F, stddev);
  float* p = t.data();
  const std::int64_t n = t.numel();
  for (std::int64_t i = 0; i < n; ++i) p[i] = dist(rng);
  return t;
}

Tensor Tensor::uniform(const Shape& shape, std::mt19937& rng, float lo,
                       float hi) {
  Tensor t = empty(shape);
  std::uniform_real_distribution<float> dist(lo, hi);
  float* p = t.data();
  const std::int64_t n = t.numel();
  for (std::int64_t i = 0; i < n; ++i) p[i] = dist(rng);
  return t;
}

Tensor Tensor::from_values(std::initializer_list<float> values) {
  Tensor t = empty(Shape{static_cast<std::int64_t>(values.size())});
  std::copy(values.begin(), values.end(), t.data());
  return t;
}

Tensor Tensor::clone() const {
  if (!defined()) return {};
  Tensor t = empty(shape_);
  std::memcpy(t.data(), data(), bytes());
  return t;
}

Tensor Tensor::reshaped(const Shape& new_shape) const {
  if (new_shape.numel() != numel()) {
    throw std::invalid_argument("Tensor::reshaped: numel mismatch " +
                                shape_.to_string() + " -> " +
                                new_shape.to_string());
  }
  return Tensor(storage_, new_shape);
}

void Tensor::fill(float value) {
  std::fill_n(data(), numel(), value);
}

void Tensor::add_(const Tensor& other) { axpy_(1.0F, other); }

void Tensor::axpy_(float alpha, const Tensor& other) {
  if (shape_ != other.shape_) {
    throw std::invalid_argument("Tensor::axpy_: shape mismatch " +
                                shape_.to_string() + " vs " +
                                other.shape_.to_string());
  }
  float* dst = data();
  const float* src = other.data();
  const std::int64_t n = numel();
  for (std::int64_t i = 0; i < n; ++i) dst[i] += alpha * src[i];
}

void Tensor::scale_(float alpha) {
  float* p = data();
  const std::int64_t n = numel();
  for (std::int64_t i = 0; i < n; ++i) p[i] *= alpha;
}

float Tensor::sum() const {
  const float* p = data();
  const std::int64_t n = numel();
  double acc = 0.0;
  for (std::int64_t i = 0; i < n; ++i) acc += p[i];
  return static_cast<float>(acc);
}

float Tensor::max_abs() const {
  const float* p = data();
  const std::int64_t n = numel();
  float best = 0.0F;
  for (std::int64_t i = 0; i < n; ++i) best = std::max(best, std::fabs(p[i]));
  return best;
}

float Tensor::max_abs_diff(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument("max_abs_diff: shape mismatch");
  }
  const float* pa = a.data();
  const float* pb = b.data();
  const std::int64_t n = a.numel();
  float best = 0.0F;
  for (std::int64_t i = 0; i < n; ++i) {
    best = std::max(best, std::fabs(pa[i] - pb[i]));
  }
  return best;
}

}  // namespace edgetrain
