#include "tensor/alloc.hpp"

namespace edgetrain {

MemoryTracker& MemoryTracker::instance() noexcept {
  static MemoryTracker tracker;
  return tracker;
}

void MemoryTracker::on_alloc(std::size_t bytes) noexcept {
  allocations_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t now =
      current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  std::size_t prev_peak = peak_.load(std::memory_order_relaxed);
  while (now > prev_peak &&
         !peak_.compare_exchange_weak(prev_peak, now,
                                      std::memory_order_relaxed)) {
    // prev_peak reloaded by compare_exchange_weak on failure.
  }
}

void MemoryTracker::on_free(std::size_t bytes) noexcept {
  current_.fetch_sub(bytes, std::memory_order_relaxed);
}

void MemoryTracker::reset_peak() noexcept {
  peak_.store(current_.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
}

ScopedPeakProbe::ScopedPeakProbe() noexcept {
  auto& tracker = MemoryTracker::instance();
  baseline_ = tracker.current_bytes();
  tracker.reset_peak();
}

std::size_t ScopedPeakProbe::peak_bytes() const noexcept {
  return MemoryTracker::instance().peak_bytes();
}

std::size_t ScopedPeakProbe::peak_over_baseline() const noexcept {
  const std::size_t peak = peak_bytes();
  return peak > baseline_ ? peak - baseline_ : 0;
}

}  // namespace edgetrain
