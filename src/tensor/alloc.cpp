#include "tensor/alloc.hpp"

namespace edgetrain {

namespace {
/// CAS-raise @p peak to at least @p candidate.
void raise_peak(std::atomic<std::size_t>& peak, std::size_t candidate) noexcept {
  std::size_t prev = peak.load(std::memory_order_relaxed);
  while (candidate > prev &&
         !peak.compare_exchange_weak(prev, candidate,
                                     std::memory_order_relaxed)) {
    // prev reloaded by compare_exchange_weak on failure.
  }
}
}  // namespace

MemoryTracker& MemoryTracker::instance() noexcept {
  static MemoryTracker tracker;
  return tracker;
}

void MemoryTracker::bump_total_peak() noexcept {
  raise_peak(total_peak_, current_.load(std::memory_order_relaxed) +
                              scratch_current_.load(std::memory_order_relaxed));
}

void MemoryTracker::on_alloc(std::size_t bytes) noexcept {
  allocations_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t now =
      current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  raise_peak(peak_, now);
  bump_total_peak();
}

void MemoryTracker::on_free(std::size_t bytes) noexcept {
  current_.fetch_sub(bytes, std::memory_order_relaxed);
}

void MemoryTracker::on_scratch_alloc(std::size_t bytes) noexcept {
  scratch_allocations_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t now =
      scratch_current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  raise_peak(scratch_peak_, now);
  bump_total_peak();
}

void MemoryTracker::on_scratch_free(std::size_t bytes) noexcept {
  scratch_current_.fetch_sub(bytes, std::memory_order_relaxed);
}

void MemoryTracker::reset_peak() noexcept {
  peak_.store(current_.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
  scratch_peak_.store(scratch_current_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  total_peak_.store(current_.load(std::memory_order_relaxed) +
                        scratch_current_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
}

ScopedPeakProbe::ScopedPeakProbe() noexcept {
  auto& tracker = MemoryTracker::instance();
  baseline_ = tracker.current_bytes();
  tracker.reset_peak();
}

std::size_t ScopedPeakProbe::peak_bytes() const noexcept {
  return MemoryTracker::instance().peak_bytes();
}

std::size_t ScopedPeakProbe::peak_over_baseline() const noexcept {
  const std::size_t peak = peak_bytes();
  return peak > baseline_ ? peak - baseline_ : 0;
}

}  // namespace edgetrain
