#include "tensor/quant.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <stdexcept>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
// Dual-MAC int8 GEMM kernel (vpmaddwd) behind a runtime AVX2 check; see
// the int8 GEMM section below.
#define EDGETRAIN_QUANT_X86_MADD 1
#include <immintrin.h>
#endif

#include "tensor/guards.hpp"
#include "tensor/parallel.hpp"
#include "tensor/workspace.hpp"

namespace edgetrain::quant {

namespace {

// Same micro-architecture dispatch as tensor/ops.cpp and tensor/convert.cpp:
// v3/v4 clones resolved by the loader's ifunc, disabled under sanitizers
// (the resolver runs before __tsan_init/__asan_init and an instrumented
// resolver segfaults there).
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define EDGETRAIN_QUANT_CLONES
#elif defined(__GNUC__) && defined(__x86_64__) && !defined(__clang__)
#define EDGETRAIN_QUANT_CLONES \
  __attribute__(               \
      (target_clones("arch=x86-64-v4", "arch=x86-64-v3", "default")))
#else
#define EDGETRAIN_QUANT_CLONES
#endif

constexpr std::int64_t kGrain = 1 << 15;

inline std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

/// Round-to-nearest-even fp32 -> s32 (default FP environment), without
/// lrintf: libm calls defeat the auto-vectoriser (GCC keeps them scalar
/// unless -fno-math-errno), and a per-element call dominated the whole
/// requantize pass. Adding 1.5 * 2^23 pushes the mantissa to integer
/// precision (rounding to nearest-even on the way, the default mode) and
/// the subtraction restores the rounded value exactly for |v| < 2^22;
/// inputs are clamped into that range first, which changes nothing because
/// every caller clamps the result into a narrow integer range anyway.
inline std::int32_t round_to_s32(float value) noexcept {
  const float clamped =
      std::min(std::max(value, -4194304.0F), 4194304.0F);  // +/- 2^22
  constexpr float kMagic = 12582912.0F;                    // 1.5 * 2^23
  return static_cast<std::int32_t>((clamped + kMagic) - kMagic);
}

inline std::uint8_t clamp_u8(std::int32_t q) noexcept {
  return static_cast<std::uint8_t>(std::clamp(q, 0, 255));
}

// ---------------------------------------------------------------------------
// Elementwise chunk kernels (flat loops for the auto-vectoriser) + driver.
// ---------------------------------------------------------------------------

EDGETRAIN_QUANT_CLONES
void quantize_u8_chunk(const float* src, std::uint8_t* dst, std::int64_t begin,
                       std::int64_t end, float inv_scale,
                       std::int32_t zero_point) {
  for (std::int64_t i = begin; i < end; ++i) {
    dst[i] = clamp_u8(zero_point + round_to_s32(src[i] * inv_scale));
  }
}

EDGETRAIN_QUANT_CLONES
void dequantize_u8_chunk(const std::uint8_t* src, float* dst,
                         std::int64_t begin, std::int64_t end, float scale,
                         std::int32_t zero_point) {
  for (std::int64_t i = begin; i < end; ++i) {
    dst[i] =
        scale * static_cast<float>(static_cast<std::int32_t>(src[i]) -
                                   zero_point);
  }
}

EDGETRAIN_QUANT_CLONES
void quantize_s8_chunk(const float* src, std::int8_t* dst, std::int64_t begin,
                       std::int64_t end, float inv_scale) {
  for (std::int64_t i = begin; i < end; ++i) {
    const std::int32_t q = round_to_s32(src[i] * inv_scale);
    dst[i] = static_cast<std::int8_t>(std::clamp(q, -127, 127));
  }
}

EDGETRAIN_QUANT_CLONES
void requantize_row(const std::int32_t* src, std::uint8_t* dst,
                    std::int64_t cols, float multiplier, float bias,
                    std::int32_t zero_point, std::int32_t lo) {
  for (std::int64_t j = 0; j < cols; ++j) {
    const std::int32_t q =
        zero_point +
        round_to_s32(static_cast<float>(src[j]) * multiplier + bias);
    dst[j] = static_cast<std::uint8_t>(std::clamp(q, lo, 255));
  }
}

template <typename Fn>
void drive(std::int64_t n, convert::Threading threading, Fn&& chunk) {
  if (threading == convert::Threading::Serial) {
    chunk(std::int64_t{0}, n);
    return;
  }
  parallel_for(0, n, kGrain, chunk);
}

/// Byte count n viewed as a float span for the disjointness guard.
inline std::int64_t float_span(std::int64_t bytes) { return (bytes + 3) / 4; }

// ---------------------------------------------------------------------------
// int8 GEMM: identical blocking/task-grid structure to the fp32 gemm in
// tensor/ops.cpp. Two micro-kernel paths share it:
//
//   * s16-pair path (x86 with AVX2 at runtime): panels packed as adjacent
//     k-pairs of int16 (A: s8 widened; B: u8 - zp, both in [-255, 255] so
//     every product fits int16's range in s32), consumed by vpmaddwd --
//     one instruction per 16 MACs, i.e. double the fp32 FMA MAC density,
//     which is where the int8 teacher speedup actually comes from;
//   * s32-widened generic path (everything else): plain vector multiply
//     and add on s32 panels.
//
// Both accumulate exact s32 sums, so they agree bit for bit with each
// other and with gemm_s8u8_ref, and (order-independence of exact integer
// addition) across thread counts -- determinism needs no further argument.
// ---------------------------------------------------------------------------

constexpr std::int64_t kMR = 6;
constexpr std::int64_t kNR = 16;
constexpr std::int64_t kMC = 120;
constexpr std::int64_t kKC = 256;
constexpr std::int64_t kNC = 256;

#if defined(__GNUC__) || defined(__clang__)
#define EDGETRAIN_QUANT_VECTOR_EXT 1
using Vec8i = std::int32_t __attribute__((vector_size(32)));
#endif

/// Packs A[i0:i0+mc, p0:p0+kc] (s8, row-major, lda = k) as ceil(mc/kMR)
/// micro-panels of widened s32, zero-padded past the matrix edge.
void pack_a_s32(const std::int8_t* a, std::int64_t lda, std::int64_t i0,
                std::int64_t mc, std::int64_t p0, std::int64_t kc,
                std::int32_t* dst) {
  for (std::int64_t ir = 0; ir < mc; ir += kMR) {
    const std::int64_t rows = std::min(kMR, mc - ir);
    for (std::int64_t r = 0; r < kMR; ++r) {
      if (r < rows) {
        const std::int8_t* src = a + (i0 + ir + r) * lda + p0;
        for (std::int64_t p = 0; p < kc; ++p) {
          dst[p * kMR + r] = static_cast<std::int32_t>(src[p]);
        }
      } else {
        for (std::int64_t p = 0; p < kc; ++p) dst[p * kMR + r] = 0;
      }
    }
    dst += kMR * kc;
  }
}

/// Packs B[p0:p0+kc, j0:j0+nc] (u8, row-major, ldb = n) as ceil(nc/kNR)
/// micro-panels, widening u8 - zp_b to s32. Edge padding is 0, i.e. the
/// zero point itself: padded columns contribute nothing, exactly like the
/// zero-padded fp32 panels.
void pack_b_s32(const std::uint8_t* b, std::int64_t ldb, std::int64_t p0,
                std::int64_t kc, std::int64_t j0, std::int64_t nc,
                std::int32_t zp_b, std::int32_t* dst) {
  for (std::int64_t jr = 0; jr < nc; jr += kNR) {
    const std::int64_t cols = std::min(kNR, nc - jr);
    for (std::int64_t p = 0; p < kc; ++p) {
      const std::uint8_t* src = b + (p0 + p) * ldb + j0 + jr;
      std::int32_t* out = dst + p * kNR;
      for (std::int64_t j = 0; j < cols; ++j) {
        out[j] = static_cast<std::int32_t>(src[j]) - zp_b;
      }
      for (std::int64_t j = cols; j < kNR; ++j) out[j] = 0;
    }
    dst += kNR * kc;
  }
}

/// acc[kMR, kNR] = sum_p ap[p, :] (outer) bp[p, :] in exact s32; the same
/// register-tiled shape as the fp32 micro-kernel (vpmulld + vpaddd).
EDGETRAIN_QUANT_CLONES
void micro_kernel_s32(std::int64_t kc, const std::int32_t* __restrict ap,
                      const std::int32_t* __restrict bp,
                      std::int32_t* __restrict acc) {
#if defined(EDGETRAIN_QUANT_VECTOR_EXT)
  Vec8i c[kMR][2] = {};
  for (std::int64_t p = 0; p < kc; ++p) {
    Vec8i b0;
    Vec8i b1;
    std::memcpy(&b0, bp, sizeof b0);
    std::memcpy(&b1, bp + 8, sizeof b1);
#pragma GCC unroll 6
    for (std::int64_t i = 0; i < kMR; ++i) {
      const std::int32_t av = ap[i];
      const Vec8i avv = {av, av, av, av, av, av, av, av};
      c[i][0] += avv * b0;
      c[i][1] += avv * b1;
    }
    ap += kMR;
    bp += kNR;
  }
  for (std::int64_t i = 0; i < kMR; ++i) {
    std::memcpy(acc + i * kNR, &c[i][0], sizeof(Vec8i));
    std::memcpy(acc + i * kNR + 8, &c[i][1], sizeof(Vec8i));
  }
#else
  std::int32_t c[kMR * kNR] = {};
  for (std::int64_t p = 0; p < kc; ++p) {
    for (std::int64_t i = 0; i < kMR; ++i) {
      const std::int32_t av = ap[i];
      for (std::int64_t j = 0; j < kNR; ++j) c[i * kNR + j] += av * bp[j];
    }
    ap += kMR;
    bp += kNR;
  }
  std::memcpy(acc, c, sizeof c);
#endif
}

#if defined(EDGETRAIN_QUANT_X86_MADD)

/// Two s16 values in one s32 lane, low half first (little-endian order
/// vpmaddwd expects).
inline std::int32_t pack_pair_s16(std::int32_t lo, std::int32_t hi) {
  const std::uint32_t u =
      static_cast<std::uint32_t>(static_cast<std::uint16_t>(lo)) |
      (static_cast<std::uint32_t>(static_cast<std::uint16_t>(hi)) << 16);
  return std::bit_cast<std::int32_t>(u);
}

/// pack_a_s32's layout with adjacent k values paired into s16 halves of
/// one s32: panel stride per kMR row group is kp = ceil(kc/2). Odd kc
/// pads the pair's high half with 0 (contributes nothing).
void pack_a_pairs(const std::int8_t* a, std::int64_t lda, std::int64_t i0,
                  std::int64_t mc, std::int64_t p0, std::int64_t kc,
                  std::int32_t* dst) {
  const std::int64_t kp = ceil_div(kc, 2);
  for (std::int64_t ir = 0; ir < mc; ir += kMR) {
    const std::int64_t rows = std::min(kMR, mc - ir);
    for (std::int64_t r = 0; r < kMR; ++r) {
      if (r < rows) {
        const std::int8_t* src = a + (i0 + ir + r) * lda + p0;
        for (std::int64_t p = 0; p < kp; ++p) {
          const std::int32_t lo = src[2 * p];
          const std::int32_t hi = (2 * p + 1 < kc) ? src[2 * p + 1] : 0;
          dst[p * kMR + r] = pack_pair_s16(lo, hi);
        }
      } else {
        for (std::int64_t p = 0; p < kp; ++p) dst[p * kMR + r] = 0;
      }
    }
    dst += kMR * kp;
  }
}

/// s16 view of the packed s32 panel (the interleaved halves vpmaddwd
/// consumes); may_alias because the same bytes are also written as s32 by
/// the padding stores.
using PairHalf [[gnu::may_alias]] = std::int16_t;

/// pack_b_s32's layout with the k-pair of one column interleaved into one
/// s32 lane: (b[2p][j] - zp, b[2p+1][j] - zp). Edge columns pad 0.
///
/// Packing is the dominant fixed cost of conv-sized GEMMs (B is a fresh
/// im2col buffer every image, so it cannot be cached the way weights
/// could), hence the full-panel inner loops with constant trip count kNR:
/// the auto-vectoriser turns the interleaved s16 stores into unpack
/// shuffles instead of 16 scalar read-modify-writes.
void pack_b_pairs(const std::uint8_t* b, std::int64_t ldb, std::int64_t p0,
                  std::int64_t kc, std::int64_t j0, std::int64_t nc,
                  std::int32_t zp_b, std::int32_t* dst) {
  const std::int64_t kp = ceil_div(kc, 2);
  const auto zp16 = static_cast<PairHalf>(zp_b);
  for (std::int64_t jr = 0; jr < nc; jr += kNR) {
    const std::int64_t cols = std::min(kNR, nc - jr);
    for (std::int64_t p = 0; p < kp; ++p) {
      const std::uint8_t* even = b + (p0 + 2 * p) * ldb + j0 + jr;
      const std::uint8_t* odd = even + ldb;
      const bool has_odd = 2 * p + 1 < kc;
      std::int32_t* out = dst + p * kNR;
      auto* out16 = reinterpret_cast<PairHalf*>(out);
      if (cols == kNR && has_odd) {
        for (std::int64_t j = 0; j < kNR; ++j) {
          out16[2 * j] =
              static_cast<PairHalf>(static_cast<PairHalf>(even[j]) - zp16);
          out16[2 * j + 1] =
              static_cast<PairHalf>(static_cast<PairHalf>(odd[j]) - zp16);
        }
        continue;
      }
      for (std::int64_t j = 0; j < cols; ++j) {
        const std::int32_t lo = static_cast<std::int32_t>(even[j]) - zp_b;
        const std::int32_t hi =
            has_odd ? static_cast<std::int32_t>(odd[j]) - zp_b : 0;
        out[j] = pack_pair_s16(lo, hi);
      }
      for (std::int64_t j = cols; j < kNR; ++j) out[j] = 0;
    }
    dst += kNR * kp;
  }
}

/// vpmaddwd micro-kernel over the paired panels: each madd lane computes
/// a[i][2p]*b[2p][j] + a[i][2p+1]*b[2p+1][j] exactly (products <= 128*255
/// = 32640 fit s32 comfortably; the k <= 65536 guard below keeps the
/// running sum under 2^31). Compiled for AVX2 via the target attribute and
/// only reached when __builtin_cpu_supports("avx2") says so.
__attribute__((target("avx2"))) void micro_kernel_madd(
    std::int64_t kp, const std::int32_t* __restrict ap,
    const std::int32_t* __restrict bp, std::int32_t* __restrict acc) {
  __m256i c[kMR][2];
  for (auto& row : c) {
    row[0] = _mm256_setzero_si256();
    row[1] = _mm256_setzero_si256();
  }
  for (std::int64_t p = 0; p < kp; ++p) {
    const __m256i b0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp));
    const __m256i b1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp + 8));
#pragma GCC unroll 6
    for (std::int64_t i = 0; i < kMR; ++i) {
      const __m256i av = _mm256_set1_epi32(ap[i]);
      c[i][0] = _mm256_add_epi32(c[i][0], _mm256_madd_epi16(av, b0));
      c[i][1] = _mm256_add_epi32(c[i][1], _mm256_madd_epi16(av, b1));
    }
    ap += kMR;
    bp += kNR;
  }
  for (std::int64_t i = 0; i < kMR; ++i) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i * kNR), c[i][0]);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i * kNR + 8),
                        c[i][1]);
  }
}

#endif  // EDGETRAIN_QUANT_X86_MADD

/// c[rows, cols] = acc (first k panel) or += acc (subsequent panels).
void apply_tile_s32(const std::int32_t* acc, std::int32_t* c, std::int64_t ldc,
                    std::int64_t rows, std::int64_t cols, bool accumulate) {
  for (std::int64_t i = 0; i < rows; ++i) {
    const std::int32_t* src = acc + i * kNR;
    std::int32_t* dst = c + i * ldc;
    if (accumulate) {
      for (std::int64_t j = 0; j < cols; ++j) dst[j] += src[j];
    } else {
      for (std::int64_t j = 0; j < cols; ++j) dst[j] = src[j];
    }
  }
}

}  // namespace

QuantParams choose_u8_params(float min_value, float max_value) noexcept {
  // Widen to include 0.0 so the zero point is exact.
  const float lo = std::min(min_value, 0.0F);
  const float hi = std::max(max_value, 0.0F);
  float scale = (hi - lo) / 255.0F;
  if (!(scale > 0.0F)) {
    // Degenerate (all-zero or invalid) range: any scale works, everything
    // maps to the zero point.
    return QuantParams{1.0F, 0};
  }
  const std::int32_t zero_point =
      std::clamp(round_to_s32(-lo / scale), 0, 255);
  return QuantParams{scale, zero_point};
}

float choose_s8_scale(float max_abs) noexcept {
  if (!(max_abs > 0.0F)) return 1.0F;
  return max_abs / 127.0F;
}

std::uint8_t quantize_u8_scalar(float value, const QuantParams& p) noexcept {
  return clamp_u8(p.zero_point + round_to_s32(value / p.scale));
}

float dequantize_u8_scalar(std::uint8_t q, const QuantParams& p) noexcept {
  return p.scale *
         static_cast<float>(static_cast<std::int32_t>(q) - p.zero_point);
}

std::int8_t quantize_s8_scalar(float value, float scale) noexcept {
  const std::int32_t q = round_to_s32(value / scale);
  return static_cast<std::int8_t>(std::clamp(q, -127, 127));
}

std::uint8_t requantize_scalar(std::int32_t acc, float multiplier, float bias,
                               std::int32_t zero_point,
                               bool fuse_relu) noexcept {
  const std::int32_t q =
      zero_point + round_to_s32(static_cast<float>(acc) * multiplier + bias);
  return static_cast<std::uint8_t>(
      std::clamp(q, fuse_relu ? zero_point : 0, 255));
}

void quantize_u8(const float* src, std::uint8_t* dst, std::int64_t n,
                 const QuantParams& p, convert::Threading threading) {
  EDGETRAIN_GUARD_DISJOINT(
      "quantize_u8",
      {src, n}, {reinterpret_cast<const float*>(dst), float_span(n)});
  const float inv_scale = 1.0F / p.scale;
  drive(n, threading, [&](std::int64_t begin, std::int64_t end) {
    quantize_u8_chunk(src, dst, begin, end, inv_scale, p.zero_point);
  });
}

void dequantize_u8(const std::uint8_t* src, float* dst, std::int64_t n,
                   const QuantParams& p, convert::Threading threading) {
  EDGETRAIN_GUARD_DISJOINT(
      "dequantize_u8",
      {reinterpret_cast<const float*>(src), float_span(n)}, {dst, n});
  drive(n, threading, [&](std::int64_t begin, std::int64_t end) {
    dequantize_u8_chunk(src, dst, begin, end, p.scale, p.zero_point);
  });
}

void quantize_s8(const float* src, std::int8_t* dst, std::int64_t n,
                 float scale, convert::Threading threading) {
  EDGETRAIN_GUARD_DISJOINT(
      "quantize_s8",
      {src, n}, {reinterpret_cast<const float*>(dst), float_span(n)});
  const float inv_scale = 1.0F / scale;
  drive(n, threading, [&](std::int64_t begin, std::int64_t end) {
    quantize_s8_chunk(src, dst, begin, end, inv_scale);
  });
}

void requantize_s32_u8(const std::int32_t* src, std::uint8_t* dst,
                       std::int64_t rows, std::int64_t cols,
                       const float* multipliers, const float* bias,
                       std::int32_t zero_point, bool fuse_relu,
                       convert::Threading threading) {
  EDGETRAIN_GUARD_DISJOINT(
      "requantize_s32_u8",
      {reinterpret_cast<const float*>(src), rows * cols},
      {reinterpret_cast<const float*>(dst), float_span(rows * cols)});
  const std::int32_t lo = fuse_relu ? zero_point : 0;
  const auto chunk = [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r) {
      requantize_row(src + r * cols, dst + r * cols, cols, multipliers[r],
                     bias[r], zero_point, lo);
    }
  };
  if (threading == convert::Threading::Serial) {
    chunk(0, rows);
    return;
  }
  const std::int64_t row_grain =
      std::max<std::int64_t>(1, kGrain / std::max<std::int64_t>(1, cols));
  parallel_for(0, rows, row_grain, chunk);
}

namespace {

// Inline byte fills/copies for conv-sized rows. im2col on a patch-CNN
// geometry issues thousands of ~10-byte row copies and 1-2 byte pad
// fringes per image; a libc call per row costs more than the bytes moved.
// Short runs go through constant-size 8-byte memcpy chunks, which compile
// to single moves.
inline void fill_u8(std::uint8_t* dst, std::int64_t n, std::uint8_t v) {
  if (n >= 32) {
    std::memset(dst, v, static_cast<std::size_t>(n));
    return;
  }
  const std::uint64_t v8 = 0x0101010101010101ULL * v;
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) std::memcpy(dst + i, &v8, 8);
  for (; i < n; ++i) dst[i] = v;
}

inline void copy_u8(std::uint8_t* dst, const std::uint8_t* src,
                    std::int64_t n) {
  if (n >= 32) {
    std::memcpy(dst, src, static_cast<std::size_t>(n));
    return;
  }
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t chunk = 0;
    std::memcpy(&chunk, src + i, 8);
    std::memcpy(dst + i, &chunk, 8);
  }
  for (; i < n; ++i) dst[i] = src[i];
}

}  // namespace

void im2col_u8(const std::uint8_t* x, std::int64_t channels, std::int64_t h,
               std::int64_t w, std::int64_t kh, std::int64_t kw,
               const ops::ConvParams& p, std::uint8_t pad_value,
               std::uint8_t* col) {
  const std::int64_t ho = ops::conv_out_size(h, kh, p.stride, p.pad);
  const std::int64_t wo = ops::conv_out_size(w, kw, p.stride, p.pad);
  const std::int64_t out_area = ho * wo;
  for (std::int64_t c = 0; c < channels; ++c) {
    for (std::int64_t ki = 0; ki < kh; ++ki) {
      for (std::int64_t kj = 0; kj < kw; ++kj) {
        const std::int64_t row = (c * kh + ki) * kw + kj;
        std::uint8_t* dst = col + row * out_area;
        if (p.stride == 1) {
          // Fast path mirror of the fp32 im2col: one contiguous memcpy per
          // output row, memset fringes carry the zero point (real 0.0).
          const std::int64_t ox_lo = std::max<std::int64_t>(0, p.pad - kj);
          const std::int64_t ox_hi = std::min(wo, w + p.pad - kj);
          const std::int64_t run = ox_hi - ox_lo;
          for (std::int64_t oy = 0; oy < ho; ++oy) {
            const std::int64_t iy = oy - p.pad + ki;
            std::uint8_t* drow = dst + oy * wo;
            if (iy < 0 || iy >= h || run <= 0) {
              fill_u8(drow, wo, pad_value);
              continue;
            }
            const std::uint8_t* src_row = x + (c * h + iy) * w + kj - p.pad;
            if (ox_lo > 0) fill_u8(drow, ox_lo, pad_value);
            copy_u8(drow + ox_lo, src_row + ox_lo, run);
            if (ox_hi < wo) fill_u8(drow + ox_hi, wo - ox_hi, pad_value);
          }
          continue;
        }
        for (std::int64_t oy = 0; oy < ho; ++oy) {
          const std::int64_t iy = oy * p.stride - p.pad + ki;
          if (iy < 0 || iy >= h) {
            fill_u8(dst + oy * wo, wo, pad_value);
            continue;
          }
          const std::uint8_t* src_row = x + (c * h + iy) * w;
          for (std::int64_t ox = 0; ox < wo; ++ox) {
            const std::int64_t ix = ox * p.stride - p.pad + kj;
            dst[oy * wo + ox] =
                (ix >= 0 && ix < w) ? src_row[ix] : pad_value;
          }
        }
      }
    }
  }
}

void maxpool2d_u8(const std::uint8_t* x, std::int64_t channels, std::int64_t h,
                  std::int64_t w, std::int64_t k, const ops::ConvParams& p,
                  std::uint8_t pad_value, std::uint8_t* y) {
  const std::int64_t ho = ops::conv_out_size(h, k, p.stride, p.pad);
  const std::int64_t wo = ops::conv_out_size(w, k, p.stride, p.pad);
  if (k == 2 && p.stride == 2 && p.pad == 0) {
    // The patch CNN's only pooling shape. Branch-free two-pass form: a
    // vertical max of each row pair (vectorises to pmaxub) followed by a
    // horizontal max of adjacent columns.
    for (std::int64_t c = 0; c < channels; ++c) {
      const std::uint8_t* plane = x + c * h * w;
      std::uint8_t* out = y + c * ho * wo;
      for (std::int64_t oy = 0; oy < ho; ++oy) {
        const std::uint8_t* top = plane + 2 * oy * w;
        const std::uint8_t* bot = top + w;
        std::uint8_t* orow = out + oy * wo;
        for (std::int64_t ox = 0; ox < wo; ++ox) {
          const std::uint8_t left = std::max(top[2 * ox], bot[2 * ox]);
          const std::uint8_t right =
              std::max(top[2 * ox + 1], bot[2 * ox + 1]);
          orow[ox] = std::max(left, right);
        }
      }
    }
    return;
  }
  for (std::int64_t c = 0; c < channels; ++c) {
    const std::uint8_t* plane = x + c * h * w;
    std::uint8_t* out = y + c * ho * wo;
    for (std::int64_t oy = 0; oy < ho; ++oy) {
      for (std::int64_t ox = 0; ox < wo; ++ox) {
        std::uint8_t best = pad_value;
        const std::int64_t iy0 = oy * p.stride - p.pad;
        const std::int64_t ix0 = ox * p.stride - p.pad;
        for (std::int64_t ky = 0; ky < k; ++ky) {
          const std::int64_t iy = iy0 + ky;
          if (iy < 0 || iy >= h) continue;
          for (std::int64_t kx = 0; kx < k; ++kx) {
            const std::int64_t ix = ix0 + kx;
            if (ix < 0 || ix >= w) continue;
            best = std::max(best, plane[iy * w + ix]);
          }
        }
        out[oy * wo + ox] = best;
      }
    }
  }
}

void gemm_s8u8_ref(std::int64_t m, std::int64_t n, std::int64_t k,
                   const std::int8_t* a, const std::uint8_t* b,
                   std::int32_t zp_b, std::int32_t* c) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      std::int32_t acc = 0;
      for (std::int64_t p = 0; p < k; ++p) {
        acc += static_cast<std::int32_t>(a[i * k + p]) *
               (static_cast<std::int32_t>(b[p * n + j]) - zp_b);
      }
      c[i * n + j] = acc;
    }
  }
}

void gemm_s8u8(std::int64_t m, std::int64_t n, std::int64_t k,
               const std::int8_t* a, const std::uint8_t* b,
               std::int32_t zp_b, std::int32_t* c) {
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    std::memset(c, 0, static_cast<std::size_t>(m * n) * sizeof(std::int32_t));
    return;
  }
  if (k > 65536) {
    // |a*b| <= 127*255 = 32385, so 65536 products stay below 2^31.
    throw std::invalid_argument("gemm_s8u8: k too large for s32 accumulation");
  }
  EDGETRAIN_GUARD_DISJOINT(
      "gemm_s8u8",
      {reinterpret_cast<const float*>(a), float_span(m * k)},
      {reinterpret_cast<const float*>(b), float_span(k * n)},
      {reinterpret_cast<const float*>(c), m * n});

  // Same deterministic 2-D task grid as the fp32 gemm (tensor/ops.cpp):
  // shrink M-blocks (to a kMR multiple) when the natural blocking yields
  // fewer tasks than workers, one writer per C tile.
  const std::int64_t n_blocks = ceil_div(n, kNC);
  const auto threads = static_cast<std::int64_t>(ThreadPool::global().size());
  std::int64_t m_blocks = ceil_div(m, kMC);
  const std::int64_t max_m_blocks = ceil_div(m, kMR);
  if (m_blocks * n_blocks < threads) {
    m_blocks = std::min(max_m_blocks, ceil_div(threads, n_blocks));
  }
  const std::int64_t mc_max = ceil_div(ceil_div(m, m_blocks), kMR) * kMR;
  m_blocks = ceil_div(m, mc_max);

#if defined(EDGETRAIN_QUANT_X86_MADD)
  static const bool use_madd = __builtin_cpu_supports("avx2") != 0;
#endif

  parallel_for(0, m_blocks * n_blocks, 1, [&](std::int64_t t0,
                                              std::int64_t t1) {
    Workspace& ws = Workspace::tls();
    const WorkspaceScope scope(ws);
    // s32 panels are the same byte size as fp32 panels; the arena hands out
    // float-typed 64-byte-aligned spans, reinterpreted here.
    auto* packed_a = reinterpret_cast<std::int32_t*>(ws.alloc(mc_max * kKC));
    auto* packed_b = reinterpret_cast<std::int32_t*>(ws.alloc(kKC * kNC));
    for (std::int64_t t = t0; t < t1; ++t) {
      const std::int64_t i0 = (t % m_blocks) * mc_max;
      const std::int64_t j0 = (t / m_blocks) * kNC;
      const std::int64_t mc = std::min(mc_max, m - i0);
      const std::int64_t nc = std::min(kNC, n - j0);
      for (std::int64_t p0 = 0; p0 < k; p0 += kKC) {
        const std::int64_t kc = std::min(kKC, k - p0);
#if defined(EDGETRAIN_QUANT_X86_MADD)
        if (use_madd) {
          const std::int64_t kp = ceil_div(kc, 2);
          pack_a_pairs(a, k, i0, mc, p0, kc, packed_a);
          pack_b_pairs(b, n, p0, kc, j0, nc, zp_b, packed_b);
          for (std::int64_t jr = 0; jr < nc; jr += kNR) {
            for (std::int64_t ir = 0; ir < mc; ir += kMR) {
              alignas(64) std::int32_t acc[kMR * kNR];
              micro_kernel_madd(kp, packed_a + ir * kp, packed_b + jr * kp,
                                acc);
              apply_tile_s32(acc, c + (i0 + ir) * n + j0 + jr, n,
                             std::min(kMR, mc - ir), std::min(kNR, nc - jr),
                             p0 != 0);
            }
          }
          continue;
        }
#endif
        pack_a_s32(a, k, i0, mc, p0, kc, packed_a);
        pack_b_s32(b, n, p0, kc, j0, nc, zp_b, packed_b);
        for (std::int64_t jr = 0; jr < nc; jr += kNR) {
          for (std::int64_t ir = 0; ir < mc; ir += kMR) {
            alignas(64) std::int32_t acc[kMR * kNR];
            micro_kernel_s32(kc, packed_a + ir * kc, packed_b + jr * kc, acc);
            apply_tile_s32(acc, c + (i0 + ir) * n + j0 + jr, n,
                           std::min(kMR, mc - ir), std::min(kNR, nc - jr),
                           p0 != 0);
          }
        }
      }
    }
  });
}

}  // namespace edgetrain::quant
