// edgetrain: int8 quantization kernels (quantize / dequantize / requantize,
// u8 im2col, and a blocked s8 x u8 -> s32 GEMM).
//
// The in-situ teacher (insitu::PatchClassifier) is pure inference and
// dominates harvest throughput; these kernels are the compute substrate of
// its post-training-quantized path (insitu::QuantizedPatchClassifier).
// Scheme: activations are affine u8 (real = scale * (q - zero_point), the
// zero point chosen so 0.0 is exactly representable -- required for exact
// zero padding and ReLU), weights are symmetric per-output-channel s8
// (real = scale * q). The GEMM accumulates in s32 *exactly* -- integer
// addition is associative, so the result is independent of blocking and
// thread count by construction: the same bit-determinism bar as the fp32
// GEMM, met for free.
//
// Requantization (s32 accumulator -> next layer's u8 activation) applies
// the per-channel fp32 multiplier and folded bias in one rounding step and
// can fuse ReLU as a clamp at the output zero point, so a quantized conv
// layer is im2col_u8 + gemm_s8u8 + requantize_s32_u8 with no intermediate
// fp32 tensor and no heap traffic (all scratch from the Workspace arena).
#pragma once

#include <cstdint>

#include "tensor/convert.hpp"
#include "tensor/ops.hpp"

namespace edgetrain::quant {

/// Affine u8 quantization parameters: real = scale * (q - zero_point).
struct QuantParams {
  float scale = 1.0F;
  std::int32_t zero_point = 0;  // in [0, 255]

  [[nodiscard]] bool operator==(const QuantParams&) const = default;
};

/// Chooses u8 params covering [min_value, max_value]. The range is widened
/// to include 0.0 so that the zero point is exact (padding and ReLU both
/// need a representable zero); a degenerate (empty) range quantizes
/// everything to the zero point.
[[nodiscard]] QuantParams choose_u8_params(float min_value,
                                           float max_value) noexcept;

/// Symmetric s8 scale for weights with the given max |w|; q in [-127, 127].
[[nodiscard]] float choose_s8_scale(float max_abs) noexcept;

// ---------------------------------------------------------------------------
// Scalar references (ground truth for the bulk kernels; used by tests and
// by one-off conversions where bulk dispatch is not worth it).
// ---------------------------------------------------------------------------

[[nodiscard]] std::uint8_t quantize_u8_scalar(float value,
                                              const QuantParams& p) noexcept;
[[nodiscard]] float dequantize_u8_scalar(std::uint8_t q,
                                         const QuantParams& p) noexcept;
[[nodiscard]] std::int8_t quantize_s8_scalar(float value,
                                             float scale) noexcept;

/// s32 accumulator -> u8: q = clamp(round(acc * multiplier + bias) +
/// zero_point). With @p fuse_relu the lower clamp is the zero point itself
/// (real 0.0), which is exactly ReLU in the quantized domain.
[[nodiscard]] std::uint8_t requantize_scalar(std::int32_t acc,
                                             float multiplier, float bias,
                                             std::int32_t zero_point,
                                             bool fuse_relu) noexcept;

// ---------------------------------------------------------------------------
// Bulk kernels (parallelised like tensor/convert.cpp; elementwise, so any
// partition yields bit-identical results).
// ---------------------------------------------------------------------------

void quantize_u8(const float* src, std::uint8_t* dst, std::int64_t n,
                 const QuantParams& p,
                 convert::Threading threading = convert::Threading::Parallel);

void dequantize_u8(const std::uint8_t* src, float* dst, std::int64_t n,
                   const QuantParams& p,
                   convert::Threading threading = convert::Threading::Parallel);

void quantize_s8(const float* src, std::int8_t* dst, std::int64_t n,
                 float scale,
                 convert::Threading threading = convert::Threading::Parallel);

/// Requantizes a [rows, cols] s32 accumulator row-by-row (row r uses
/// multipliers[r] / bias[r] -- rows are output channels for conv layers).
void requantize_s32_u8(const std::int32_t* src, std::uint8_t* dst,
                       std::int64_t rows, std::int64_t cols,
                       const float* multipliers, const float* bias,
                       std::int32_t zero_point, bool fuse_relu,
                       convert::Threading threading =
                           convert::Threading::Parallel);

// ---------------------------------------------------------------------------
// Quantized conv support
// ---------------------------------------------------------------------------

/// u8 analogue of ops::im2col: lowers one image x[C,H,W] into
/// col[C*kh*kw, Ho*Wo]. Out-of-bounds taps take @p pad_value (the input's
/// zero point, i.e. real 0.0 -- the same semantics as fp32 zero padding).
/// Stride-1 rows use contiguous memcpy runs like the fp32 fast path.
void im2col_u8(const std::uint8_t* x, std::int64_t channels, std::int64_t h,
               std::int64_t w, std::int64_t kh, std::int64_t kw,
               const ops::ConvParams& p, std::uint8_t pad_value,
               std::uint8_t* col);

/// u8 max pooling over one plane set x[C,H,W] -> y[C,Ho,Wo]. Quantization
/// is monotonic, so pooling commutes with (de)quantization and operates on
/// the u8 codes directly. Padding contributes @p pad_value.
void maxpool2d_u8(const std::uint8_t* x, std::int64_t channels, std::int64_t h,
                  std::int64_t w, std::int64_t k, const ops::ConvParams& p,
                  std::uint8_t pad_value, std::uint8_t* y);

// ---------------------------------------------------------------------------
// int8 GEMM
// ---------------------------------------------------------------------------

/// C[M,N] (s32) = op(A)(s8) x (B(u8) - zp_b), row-major; A is M x K
/// (weights: s8 symmetric), B is K x N (activations: u8 affine). The
/// activation zero point is subtracted while B's panel widens to s32 during
/// packing, so no separate row-sum correction pass is needed. Blocked and
/// parallelised exactly like ops::gemm (same tile sizes, 2-D task grid,
/// Workspace panels); accumulation is exact in s32, hence bit-deterministic
/// for any thread count. Requires k <= 65536 (overflow headroom:
/// |a*b| <= 127*255, so 65536 products always fit s32).
void gemm_s8u8(std::int64_t m, std::int64_t n, std::int64_t k,
               const std::int8_t* a, const std::uint8_t* b,
               std::int32_t zp_b, std::int32_t* c);

/// Triple-loop scalar reference for gemm_s8u8 (tests).
void gemm_s8u8_ref(std::int64_t m, std::int64_t n, std::int64_t k,
                   const std::int8_t* a, const std::uint8_t* b,
                   std::int32_t zp_b, std::int32_t* c);

}  // namespace edgetrain::quant
