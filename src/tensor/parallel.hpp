// edgetrain: shared-memory parallelism substrate.
//
// A small persistent thread pool with a static-partition parallel_for, in
// the spirit of an OpenMP "parallel for schedule(static)". The Waggle edge
// node the paper targets has 4 big + 4 little cores; all compute kernels in
// the tensor substrate parallelise over this pool. Having our own pool (and
// not OpenMP) keeps the library dependency-free and lets tests pin the
// worker count deterministically.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "tensor/function_ref.hpp"

namespace edgetrain {

/// Non-allocating chunk callback: fn(chunk_begin, chunk_end).
using ParallelFn = FunctionRef<void(std::int64_t, std::int64_t)>;

/// Persistent worker pool executing half-open index ranges.
class ThreadPool {
 public:
  /// Creates a pool of @p num_threads compute threads: the calling thread
  /// participates in every parallel_for as chunk 0, plus num_threads - 1
  /// pool workers. 0 means hardware_concurrency(). A single-thread pool
  /// has no workers at all and runs every range inline on the caller.
  explicit ThreadPool(unsigned num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of compute threads a parallel_for spans (caller + workers,
  /// >= 1).
  [[nodiscard]] unsigned size() const noexcept;

  /// Runs fn(chunk_begin, chunk_end) over [begin, end) split statically
  /// across workers. Blocks until all chunks complete. Reentrant calls from
  /// inside a worker run serially (no nested parallelism). The callable is
  /// taken by non-owning FunctionRef: no allocation per dispatch; it must
  /// stay alive for the (blocking) duration of the call.
  void parallel_for(std::int64_t begin, std::int64_t end, ParallelFn fn);

  /// The process-wide pool used by tensor kernels.
  static ThreadPool& global();

  /// Replaces the global pool's worker count (for tests / device emulation).
  /// Not thread-safe with concurrent kernel execution.
  static void set_global_threads(unsigned num_threads);

 private:
  struct Impl;
  Impl* impl_;  // owned; raw to keep the header light (defined in .cpp)
};

/// Convenience wrapper over the global pool with a minimum grain size:
/// ranges smaller than @p grain run inline on the caller.
void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  ParallelFn fn);

/// One dedicated thread draining a FIFO of jobs, for work that must overlap
/// with compute rather than partition it (the ThreadPool is a fork-join
/// pool: parallel_for blocks the caller, which is exactly wrong for
/// write-behind checkpoint IO). Jobs run strictly in submission order, so a
/// producer can rely on FIFO ordering for per-key consistency (e.g. a spill
/// write enqueued before a prefetch read of the same slot completes first).
/// Jobs must not throw: the worker catches nothing; propagate errors through
/// captured state (core::AsyncDiskSlotStore stores an exception_ptr).
class BackgroundWorker {
 public:
  BackgroundWorker();
  ~BackgroundWorker();  ///< drains every pending job, then joins the thread

  BackgroundWorker(const BackgroundWorker&) = delete;
  BackgroundWorker& operator=(const BackgroundWorker&) = delete;

  /// Enqueues @p job; returns immediately. Callable from any thread,
  /// including from inside a running job (the queue is unbounded here --
  /// producers needing back-pressure bound themselves, as the slot store's
  /// staging budget does).
  void submit(std::function<void()> job);

  /// Blocks until every job submitted before the call has finished.
  void drain();

  /// Jobs submitted but not yet completed (pending + in flight).
  [[nodiscard]] std::size_t pending() const;

 private:
  struct Impl;
  Impl* impl_;  // owned; raw to keep the header light (defined in .cpp)
};

}  // namespace edgetrain
