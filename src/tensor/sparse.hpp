// edgetrain: sparse bitmap kernels (popcount / compact / scatter).
//
// Post-ReLU activations are mostly zeros, so a checkpoint slot can be
// stored as a bitmap of nonzero positions plus the packed nonzero values
// (BitTrain-style). The primitives here are the hot half of that codec
// (core/slot_codec.hpp SlotCodec::Bitmap): building the bitmap, counting
// its population, gathering the nonzeros into a dense payload, and
// scattering them back. They follow the tensor/convert.cpp playbook --
// branchless flat-loop chunk kernels under the target_clones v3/v4
// dispatch, parallelised over the global pool -- with one extra wrinkle:
// compact/scatter outputs are data-dependent offsets, so the parallel
// drivers run a two-phase count -> exclusive-prefix -> disjoint-write plan
// with the chunk grain a multiple of 64, giving every bitmap word (and
// every packed output range) exactly one owning worker.
//
// Bit-exactness contract: a position is "nonzero" iff its 32-bit pattern
// is nonzero, so -0.0f and NaN payloads survive; scatter writes the exact
// 0x00000000 pattern (+0.0f) at every zero bit. Scalar `_scalar` variants
// are the property-test references for the vectorised paths.
#pragma once

#include <cstdint>

#include "tensor/convert.hpp"

namespace edgetrain::sparse {

/// u64 words needed to cover @p n bitmap bits.
[[nodiscard]] constexpr std::int64_t bitmap_words(std::int64_t n) noexcept {
  return (n + 63) / 64;
}

/// Builds the nonzero bitmap of src[0, n): bit (i % 64) of bitmap[i / 64]
/// is set iff the 32-bit pattern of src[i] is nonzero. Tail bits of the
/// last word are cleared. Writes bitmap_words(n) words; returns the number
/// of set bits. src and bitmap must not overlap.
std::int64_t nonzero_bitmap(
    const float* src, std::int64_t n, std::uint64_t* bitmap,
    convert::Threading threading = convert::Threading::Parallel);

/// Total population count of words[0, n_words).
[[nodiscard]] std::int64_t popcount_words(
    const std::uint64_t* words, std::int64_t n_words,
    convert::Threading threading = convert::Threading::Parallel);

/// Gathers src values at the bitmap's set bits into dst, in ascending
/// position order. dst must have room for the bitmap's population count
/// over [0, n). src, bitmap and dst must be pairwise disjoint.
void compact_nonzeros(
    const float* src, const std::uint64_t* bitmap, std::int64_t n, float* dst,
    convert::Threading threading = convert::Threading::Parallel);

/// Inverse of compact_nonzeros: dst[i] gets the next packed value when bit
/// i is set, the exact +0.0f pattern otherwise, for i in [0, n). packed,
/// bitmap and dst must be pairwise disjoint.
void scatter_nonzeros(
    const float* packed, const std::uint64_t* bitmap, std::int64_t n,
    float* dst,
    convert::Threading threading = convert::Threading::Parallel);

// Scalar references (one plain loop each) the vectorised/parallel paths
// are property-tested against.
std::int64_t nonzero_bitmap_scalar(const float* src, std::int64_t n,
                                   std::uint64_t* bitmap) noexcept;
[[nodiscard]] std::int64_t popcount_words_scalar(
    const std::uint64_t* words, std::int64_t n_words) noexcept;
void compact_nonzeros_scalar(const float* src, const std::uint64_t* bitmap,
                             std::int64_t n, float* dst) noexcept;
void scatter_nonzeros_scalar(const float* packed, const std::uint64_t* bitmap,
                             std::int64_t n, float* dst) noexcept;

}  // namespace edgetrain::sparse
