#include "tensor/convert.hpp"

#include <bit>

#include "tensor/guards.hpp"
#include "tensor/parallel.hpp"

namespace edgetrain::convert {

namespace {

// Same micro-architecture dispatch as tensor/ops.cpp: v3/v4 clones resolved
// by the loader's ifunc, disabled under sanitizers (the resolver runs before
// __tsan_init/__asan_init and an instrumented resolver segfaults there).
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define EDGETRAIN_CONVERT_CLONES
#elif defined(__GNUC__) && defined(__x86_64__) && !defined(__clang__)
#define EDGETRAIN_CONVERT_CLONES \
  __attribute__(                 \
      (target_clones("arch=x86-64-v4", "arch=x86-64-v3", "default")))
#else
#define EDGETRAIN_CONVERT_CLONES
#endif

/// Elements per parallel_for grain: big enough that chunk dispatch is noise
/// next to the conversion, small enough that a ResNet activation still
/// splits across the Waggle node's cores.
constexpr std::int64_t kGrain = 1 << 15;

// ---------------------------------------------------------------------------
// Scalar cores. Branchless float-arithmetic formulations (the magic-constant
// technique of the classic FP16 conversion routines): the fp32 hardware
// itself performs the round-to-nearest-even at the half mantissa boundary,
// including gradual underflow, so the loop bodies contain only integer ops,
// one multiply/add, and selects -- exactly what the auto-vectoriser turns
// into mask/blend code. Bitwise equivalence with the explicit-rounding
// reference (core::float_to_half/half_to_float) is property-tested
// exhaustively in tests/core/slot_codec_test.cpp.
// ---------------------------------------------------------------------------

inline std::uint16_t encode_half(float value) noexcept {
  // Scale |value| so the half-precision exponent range maps onto fp32's;
  // the first product saturates overflow to inf, the second lands the
  // magnitude where fp32 rounding equals half rounding (subnormals
  // included, via the exponent-dependent bias added below).
  constexpr float kScaleToInf = 0x1.0p+112F;
  constexpr float kScaleToZero = 0x1.0p-110F;
  const std::uint32_t w = std::bit_cast<std::uint32_t>(value);
  const std::uint32_t shl1_w = w + w;
  const std::uint32_t sign = w & 0x80000000U;
  const float abs_value = std::bit_cast<float>(w & 0x7FFFFFFFU);
  float base = (abs_value * kScaleToInf) * kScaleToZero;

  std::uint32_t bias = shl1_w & 0xFF000000U;
  if (bias < 0x71000000U) bias = 0x71000000U;
  base = std::bit_cast<float>((bias >> 1) + 0x07800000U) + base;

  const std::uint32_t bits = std::bit_cast<std::uint32_t>(base);
  const std::uint32_t exp_bits = (bits >> 13) & 0x00007C00U;
  const std::uint32_t mantissa_bits = bits & 0x00000FFFU;
  const std::uint32_t nonsign = exp_bits + mantissa_bits;
  return static_cast<std::uint16_t>(
      (sign >> 16) | (shl1_w > 0xFF000000U ? 0x7E00U : nonsign));
}

inline float decode_half(std::uint16_t value) noexcept {
  const std::uint32_t w = static_cast<std::uint32_t>(value) << 16;
  const std::uint32_t sign = w & 0x80000000U;
  const std::uint32_t two_w = w + w;

  // Normal/inf/NaN: shift the half exponent into fp32 position and rescale.
  constexpr std::uint32_t kExpOffset = 0xE0U << 23;
  constexpr float kExpScale = 0x1.0p-112F;
  const float normalized =
      std::bit_cast<float>((two_w >> 4) + kExpOffset) * kExpScale;

  // Subnormal/zero: place the mantissa behind the exponent of 0.5 so the
  // subtraction re-normalises it exactly.
  constexpr std::uint32_t kMagicMask = 126U << 23;
  constexpr float kMagicBias = 0.5F;
  const float denormalized =
      std::bit_cast<float>((two_w >> 17) | kMagicMask) - kMagicBias;

  constexpr std::uint32_t kDenormCutoff = 1U << 27;
  const std::uint32_t result =
      sign | (two_w < kDenormCutoff ? std::bit_cast<std::uint32_t>(denormalized)
                                    : std::bit_cast<std::uint32_t>(normalized));
  return std::bit_cast<float>(result);
}

inline std::uint16_t encode_bf16(float value) noexcept {
  const std::uint32_t bits = std::bit_cast<std::uint32_t>(value);
  if ((bits & 0x7FFFFFFFU) > 0x7F800000U) {
    // NaN: truncation could zero the payload and turn it into inf; force
    // the quiet bit instead (sign and surviving payload bits kept).
    return static_cast<std::uint16_t>((bits >> 16) | 0x0040U);
  }
  const std::uint32_t rounded = bits + 0x7FFFU + ((bits >> 16) & 1U);
  return static_cast<std::uint16_t>(rounded >> 16);
}

inline float decode_bf16(std::uint16_t value) noexcept {
  return std::bit_cast<float>(static_cast<std::uint32_t>(value) << 16);
}

// ---------------------------------------------------------------------------
// Cloned chunk kernels (one flat loop each, so the vectoriser sees a
// straight-line body) and the parallel drivers.
// ---------------------------------------------------------------------------

EDGETRAIN_CONVERT_CLONES
void fp32_to_fp16_chunk(const float* src, std::uint16_t* dst,
                        std::int64_t begin, std::int64_t end) {
  for (std::int64_t i = begin; i < end; ++i) dst[i] = encode_half(src[i]);
}

EDGETRAIN_CONVERT_CLONES
void fp16_to_fp32_chunk(const std::uint16_t* src, float* dst,
                        std::int64_t begin, std::int64_t end) {
  for (std::int64_t i = begin; i < end; ++i) dst[i] = decode_half(src[i]);
}

EDGETRAIN_CONVERT_CLONES
void fp32_to_bf16_chunk(const float* src, std::uint16_t* dst,
                        std::int64_t begin, std::int64_t end) {
  for (std::int64_t i = begin; i < end; ++i) dst[i] = encode_bf16(src[i]);
}

EDGETRAIN_CONVERT_CLONES
void bf16_to_fp32_chunk(const std::uint16_t* src, float* dst,
                        std::int64_t begin, std::int64_t end) {
  for (std::int64_t i = begin; i < end; ++i) dst[i] = decode_bf16(src[i]);
}

EDGETRAIN_CONVERT_CLONES
void split_chunk(const std::uint8_t* src, std::int64_t n_words,
                 std::int64_t begin, std::int64_t end, std::uint8_t* dst) {
  for (int b = 0; b < 4; ++b) {
    std::uint8_t* plane = dst + static_cast<std::int64_t>(b) * n_words;
    const std::uint8_t* lane = src + b;
    for (std::int64_t i = begin; i < end; ++i) plane[i] = lane[4 * i];
  }
}

EDGETRAIN_CONVERT_CLONES
void merge_chunk(const std::uint8_t* src, std::int64_t n_words,
                 std::int64_t begin, std::int64_t end, std::uint8_t* dst) {
  for (int b = 0; b < 4; ++b) {
    const std::uint8_t* plane = src + static_cast<std::int64_t>(b) * n_words;
    std::uint8_t* lane = dst + b;
    for (std::int64_t i = begin; i < end; ++i) lane[4 * i] = plane[i];
  }
}

template <typename Fn>
void drive(std::int64_t n, Threading threading, Fn&& chunk) {
  if (threading == Threading::Serial) {
    chunk(std::int64_t{0}, n);
    return;
  }
  parallel_for(0, n, kGrain, chunk);
}

}  // namespace

std::uint16_t fp32_to_fp16_scalar(float value) noexcept {
  return encode_half(value);
}
float fp16_to_fp32_scalar(std::uint16_t value) noexcept {
  return decode_half(value);
}
std::uint16_t fp32_to_bf16_scalar(float value) noexcept {
  return encode_bf16(value);
}
float bf16_to_fp32_scalar(std::uint16_t value) noexcept {
  return decode_bf16(value);
}

void fp32_to_fp16(const float* src, std::uint16_t* dst, std::int64_t n,
                  Threading threading) {
  EDGETRAIN_GUARD_DISJOINT(
      "fp32_to_fp16",
      {src, n}, {reinterpret_cast<const float*>(dst), (n + 1) / 2});
  drive(n, threading, [&](std::int64_t begin, std::int64_t end) {
    fp32_to_fp16_chunk(src, dst, begin, end);
  });
}

void fp16_to_fp32(const std::uint16_t* src, float* dst, std::int64_t n,
                  Threading threading) {
  EDGETRAIN_GUARD_DISJOINT(
      "fp16_to_fp32",
      {reinterpret_cast<const float*>(src), (n + 1) / 2}, {dst, n});
  drive(n, threading, [&](std::int64_t begin, std::int64_t end) {
    fp16_to_fp32_chunk(src, dst, begin, end);
  });
}

void fp32_to_bf16(const float* src, std::uint16_t* dst, std::int64_t n,
                  Threading threading) {
  EDGETRAIN_GUARD_DISJOINT(
      "fp32_to_bf16",
      {src, n}, {reinterpret_cast<const float*>(dst), (n + 1) / 2});
  drive(n, threading, [&](std::int64_t begin, std::int64_t end) {
    fp32_to_bf16_chunk(src, dst, begin, end);
  });
}

void bf16_to_fp32(const std::uint16_t* src, float* dst, std::int64_t n,
                  Threading threading) {
  EDGETRAIN_GUARD_DISJOINT(
      "bf16_to_fp32",
      {reinterpret_cast<const float*>(src), (n + 1) / 2}, {dst, n});
  drive(n, threading, [&](std::int64_t begin, std::int64_t end) {
    bf16_to_fp32_chunk(src, dst, begin, end);
  });
}

void byte_plane_split(const std::uint8_t* src, std::int64_t n_words,
                      std::uint8_t* dst, Threading threading) {
  drive(n_words, threading, [&](std::int64_t begin, std::int64_t end) {
    split_chunk(src, n_words, begin, end, dst);
  });
}

void byte_plane_merge(const std::uint8_t* src, std::int64_t n_words,
                      std::uint8_t* dst, Threading threading) {
  drive(n_words, threading, [&](std::int64_t begin, std::int64_t end) {
    merge_chunk(src, n_words, begin, end, dst);
  });
}

}  // namespace edgetrain::convert
