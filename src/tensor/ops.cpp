#include "tensor/ops.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "tensor/convert.hpp"
#include "tensor/guards.hpp"
#include "tensor/parallel.hpp"
#include "tensor/workspace.hpp"

namespace edgetrain::ops {

namespace {
void check(bool cond, const char* msg) {
  if (!cond) throw std::invalid_argument(msg);
}

constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) noexcept {
  return (a + b - 1) / b;
}
}  // namespace

std::int64_t conv_out_size(std::int64_t in, std::int64_t kernel,
                           std::int64_t stride, std::int64_t pad) noexcept {
  return (in + 2 * pad - kernel) / stride + 1;
}

// ---------------------------------------------------------------------------
// GEMM: cache-blocked, packed, register-tiled (BLIS-style).
//
// op(A)/op(B) are packed into contiguous panels drawn from the per-thread
// Workspace arena -- A as column-major micro-panels of kMR rows, B as
// row-major micro-panels of kNR columns -- so the inner kernel streams two
// contiguous buffers regardless of the trans_a/trans_b combination. The
// kMR x kNR accumulator tile lives in registers (target_clones emits
// AVX-512/AVX2/SSE variants and dispatches at load time; no intrinsics).
// Work is parallelised 2-D over (M-block x N-block) tasks; each C tile is
// written by exactly one task with a fixed reduction order, so results are
// bit-for-bit reproducible for any worker count.
// ---------------------------------------------------------------------------

namespace {

constexpr std::int64_t kMR = 6;    // micro-tile rows (register blocking)
constexpr std::int64_t kNR = 16;   // micro-tile cols (one AVX-512 vector)
constexpr std::int64_t kMC = 120;  // A-block rows per task (multiple of kMR)
constexpr std::int64_t kKC = 256;  // packed panel depth (L1/L2 resident)
constexpr std::int64_t kNC = 256;  // B-block cols per task (multiple of kNR)

// Micro-architecture levels (not bare ISA bits: v3/v4 imply FMA, which the
// accumulator update contracts into) cloned per function and dispatched by
// the loader's ifunc resolver, so the standard build needs no -march flags.
//
// Sanitizer builds must NOT multi-version: the ifunc resolver runs during
// relocation, before __tsan_init/__asan_init, and gcc instruments it like
// any other function -- the first __tsan_func_entry then dereferences
// uninitialised sanitizer TLS and the binary segfaults before main.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define EDGETRAIN_KERNEL_CLONES
#elif defined(__GNUC__) && defined(__x86_64__) && !defined(__clang__)
#define EDGETRAIN_KERNEL_CLONES \
  __attribute__(                \
      (target_clones("arch=x86-64-v4", "arch=x86-64-v3", "default")))
#else
#define EDGETRAIN_KERNEL_CLONES
#endif

// GNU vector extensions give the micro-kernel named vector accumulators the
// compiler keeps in registers for the whole k loop; a plain scalar tile
// written through a pointer gets spilled to the stack every iteration
// (load-op-store per row), which is ~40x slower. Portable across GCC/Clang
// on every target; scalar fallback for anything else.
#if defined(__GNUC__) || defined(__clang__)
#define EDGETRAIN_VECTOR_EXT 1
using Vec8f = float __attribute__((vector_size(32)));
#endif

/// Packing-time element widening: fp32 operands copy through, bf16 bit
/// patterns decode (exactly -- bf16 is truncated fp32) while the panel is
/// being laid out, so the micro-kernel always consumes fp32 and both
/// precisions share one engine. The decode is inlined (same bit pattern as
/// convert::bf16_to_fp32_scalar, exhaustively cross-checked in tests) so
/// the packer loops stay call-free and vectorisable.
inline float widen(float v) { return v; }
inline float widen(std::uint16_t v) {
  return std::bit_cast<float>(static_cast<std::uint32_t>(v) << 16);
}

/// Packs op(A)[i0:i0+mc, p0:p0+kc] as ceil(mc/kMR) micro-panels; panel ir
/// holds kc columns of kMR rows each (zero-padded past the matrix edge).
template <typename TA>
void pack_a(const TA* a, bool trans, std::int64_t lda, std::int64_t i0,
            std::int64_t mc, std::int64_t p0, std::int64_t kc, float* dst) {
  for (std::int64_t ir = 0; ir < mc; ir += kMR) {
    const std::int64_t rows = std::min(kMR, mc - ir);
    if (trans) {
      // op(A)[i, p] = a[p * lda + i]: rows are contiguous in memory.
      for (std::int64_t p = 0; p < kc; ++p) {
        const TA* src = a + (p0 + p) * lda + i0 + ir;
        float* out = dst + p * kMR;
        for (std::int64_t r = 0; r < rows; ++r) out[r] = widen(src[r]);
        for (std::int64_t r = rows; r < kMR; ++r) out[r] = 0.0F;
      }
    } else {
      // a[i * lda + p]: depth is contiguous, scatter into panel slots.
      for (std::int64_t r = 0; r < kMR; ++r) {
        if (r < rows) {
          const TA* src = a + (i0 + ir + r) * lda + p0;
          for (std::int64_t p = 0; p < kc; ++p) {
            dst[p * kMR + r] = widen(src[p]);
          }
        } else {
          for (std::int64_t p = 0; p < kc; ++p) dst[p * kMR + r] = 0.0F;
        }
      }
    }
    dst += kMR * kc;
  }
}

/// Packs op(B)[p0:p0+kc, j0:j0+nc] as ceil(nc/kNR) micro-panels; panel jr
/// holds kc rows of kNR columns each (zero-padded past the matrix edge).
template <typename TB>
void pack_b(const TB* b, bool trans, std::int64_t ldb, std::int64_t p0,
            std::int64_t kc, std::int64_t j0, std::int64_t nc, float* dst) {
  for (std::int64_t jr = 0; jr < nc; jr += kNR) {
    const std::int64_t cols = std::min(kNR, nc - jr);
    if (trans) {
      // op(B)[p, j] = b[j * ldb + p]: depth is contiguous per column.
      for (std::int64_t j = 0; j < kNR; ++j) {
        if (j < cols) {
          const TB* src = b + (j0 + jr + j) * ldb + p0;
          for (std::int64_t p = 0; p < kc; ++p) {
            dst[p * kNR + j] = widen(src[p]);
          }
        } else {
          for (std::int64_t p = 0; p < kc; ++p) dst[p * kNR + j] = 0.0F;
        }
      }
    } else {
      // b[p * ldb + j]: columns are contiguous per depth step.
      for (std::int64_t p = 0; p < kc; ++p) {
        const TB* src = b + (p0 + p) * ldb + j0 + jr;
        float* out = dst + p * kNR;
        for (std::int64_t j = 0; j < cols; ++j) out[j] = widen(src[j]);
        for (std::int64_t j = cols; j < kNR; ++j) out[j] = 0.0F;
      }
    }
    dst += kNR * kc;
  }
}

/// acc[kMR, kNR] = sum_p ap[p, :] (outer) bp[p, :]. The hot loop: both
/// panels stream contiguously while the 6x16 accumulator tile lives in
/// twelve 8-wide vector registers for the entire depth loop.
EDGETRAIN_KERNEL_CLONES
void micro_kernel(std::int64_t kc, const float* __restrict ap,
                  const float* __restrict bp, float* __restrict acc) {
#if defined(EDGETRAIN_VECTOR_EXT)
  Vec8f c[kMR][2] = {};
  for (std::int64_t p = 0; p < kc; ++p) {
    Vec8f b0;
    Vec8f b1;
    std::memcpy(&b0, bp, sizeof b0);
    std::memcpy(&b1, bp + 8, sizeof b1);
#pragma GCC unroll 6
    for (std::int64_t i = 0; i < kMR; ++i) {
      const float av = ap[i];
      const Vec8f avv = {av, av, av, av, av, av, av, av};
      c[i][0] += avv * b0;
      c[i][1] += avv * b1;
    }
    ap += kMR;
    bp += kNR;
  }
  for (std::int64_t i = 0; i < kMR; ++i) {
    std::memcpy(acc + i * kNR, &c[i][0], sizeof(Vec8f));
    std::memcpy(acc + i * kNR + 8, &c[i][1], sizeof(Vec8f));
  }
#else
  float c[kMR * kNR] = {};
  for (std::int64_t p = 0; p < kc; ++p) {
    for (std::int64_t i = 0; i < kMR; ++i) {
      const float av = ap[i];
      for (std::int64_t j = 0; j < kNR; ++j) c[i * kNR + j] += av * bp[j];
    }
    ap += kMR;
    bp += kNR;
  }
  std::memcpy(acc, c, sizeof c);
#endif
}

/// c[rows, cols] = alpha * acc + beta * c (beta folds the previous value;
/// rows/cols clip the zero-padded accumulator at the matrix edge).
void apply_tile(const float* acc, float* c, std::int64_t ldc,
                std::int64_t rows, std::int64_t cols, float alpha,
                float beta) {
  for (std::int64_t i = 0; i < rows; ++i) {
    const float* src = acc + i * kNR;
    float* dst = c + i * ldc;
    if (beta == 0.0F) {
      for (std::int64_t j = 0; j < cols; ++j) dst[j] = alpha * src[j];
    } else if (beta == 1.0F) {
      for (std::int64_t j = 0; j < cols; ++j) dst[j] += alpha * src[j];
    } else {
      for (std::int64_t j = 0; j < cols; ++j) {
        dst[j] = alpha * src[j] + beta * dst[j];
      }
    }
  }
}

/// C *= beta for the degenerate k == 0 / alpha == 0 cases.
void scale_c(float* c, std::int64_t m, std::int64_t n, float beta) {
  if (beta == 1.0F) return;
  parallel_for(0, m, 64, [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t i = r0; i < r1; ++i) {
      float* row = c + i * n;
      if (beta == 0.0F) {
        std::memset(row, 0, static_cast<std::size_t>(n) * sizeof(float));
      } else {
        for (std::int64_t j = 0; j < n; ++j) row[j] *= beta;
      }
    }
  });
}

/// Shared blocked driver: fp32 and bf16 gemm differ only in the element
/// type the packers widen from, so the task grid, workspace use and
/// accumulation order -- hence the determinism guarantees -- are one piece
/// of code. Callers have already handled degenerate shapes and guards.
template <typename TA, typename TB>
void gemm_blocked(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
                  std::int64_t k, float alpha, const TA* a, const TB* b,
                  float beta, float* c) {
  // Row-major: A is m x k (lda=k) or, transposed, stored k x m (lda=m).
  const std::int64_t lda = trans_a ? m : k;
  const std::int64_t ldb = trans_b ? k : n;

  // 2-D task grid over (M-block x N-block). When the natural kMC blocking
  // yields fewer tasks than workers, M-blocks shrink (to a kMR multiple) so
  // every worker gets a disjoint slab of C. The grid depends only on the
  // shapes and the pool size, and each C tile has a single writer with a
  // fixed k-accumulation order: results are deterministic.
  const std::int64_t n_blocks = ceil_div(n, kNC);
  const auto threads = static_cast<std::int64_t>(ThreadPool::global().size());
  std::int64_t m_blocks = ceil_div(m, kMC);
  const std::int64_t max_m_blocks = ceil_div(m, kMR);
  if (m_blocks * n_blocks < threads) {
    m_blocks = std::min(max_m_blocks, ceil_div(threads, n_blocks));
  }
  const std::int64_t mc_max = ceil_div(ceil_div(m, m_blocks), kMR) * kMR;
  m_blocks = ceil_div(m, mc_max);

  parallel_for(0, m_blocks * n_blocks, 1, [&](std::int64_t t0,
                                              std::int64_t t1) {
    Workspace& ws = Workspace::tls();
    const WorkspaceScope scope(ws);
    float* packed_a = ws.alloc(mc_max * kKC);
    float* packed_b = ws.alloc(kKC * kNC);
    for (std::int64_t t = t0; t < t1; ++t) {
      const std::int64_t i0 = (t % m_blocks) * mc_max;
      const std::int64_t j0 = (t / m_blocks) * kNC;
      const std::int64_t mc = std::min(mc_max, m - i0);
      const std::int64_t nc = std::min(kNC, n - j0);
      for (std::int64_t p0 = 0; p0 < k; p0 += kKC) {
        const std::int64_t kc = std::min(kKC, k - p0);
        pack_a(a, trans_a, lda, i0, mc, p0, kc, packed_a);
        pack_b(b, trans_b, ldb, p0, kc, j0, nc, packed_b);
        const float beta_eff = p0 == 0 ? beta : 1.0F;
        for (std::int64_t jr = 0; jr < nc; jr += kNR) {
          for (std::int64_t ir = 0; ir < mc; ir += kMR) {
            alignas(64) float acc[kMR * kNR];
            micro_kernel(kc, packed_a + ir * kc, packed_b + jr * kc, acc);
            apply_tile(acc, c + (i0 + ir) * n + j0 + jr, n,
                       std::min(kMR, mc - ir), std::min(kNR, nc - jr), alpha,
                       beta_eff);
          }
        }
      }
    }
  });
}

// Per-thread gemm compute mode. thread_local (not global) so a bf16-scoped
// training step never changes what a concurrently running fp32 caller sees;
// pool workers never call gemm themselves, so the mode of the thread that
// *enters* gemm is the one that applies to the whole operation.
thread_local GemmPrecision tls_gemm_precision = GemmPrecision::Fp32;

}  // namespace

void set_gemm_precision(GemmPrecision mode) noexcept {
  tls_gemm_precision = mode;
}

GemmPrecision gemm_precision() noexcept { return tls_gemm_precision; }

void gemm(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
          std::int64_t k, float alpha, const float* a, const float* b,
          float beta, float* c) {
  if (m <= 0 || n <= 0) return;
  if (k <= 0 || alpha == 0.0F) {
    scale_c(c, m, n, beta);
    return;
  }
  if (tls_gemm_precision == GemmPrecision::Bf16) {
    // Mixed-precision mode: round both operands to bf16 in workspace
    // scratch and run the bf16 engine (fp32 accumulate). C (and beta's
    // read of it) stays full fp32 -- that is the master-weight contract.
    Workspace& ws = Workspace::tls();
    const WorkspaceScope scope(ws);
    auto* ab = reinterpret_cast<std::uint16_t*>(ws.alloc((m * k + 1) / 2));
    auto* bb = reinterpret_cast<std::uint16_t*>(ws.alloc((k * n + 1) / 2));
    convert::fp32_to_bf16(a, ab, m * k);
    convert::fp32_to_bf16(b, bb, k * n);
    gemm_bf16(trans_a, trans_b, m, n, k, alpha, ab, bb, beta, c);
    return;
  }

  // C tiles are written by concurrent workers that read A and B unsynchronised;
  // an in-place gemm would race.
  EDGETRAIN_GUARD_DISJOINT("gemm", {a, m * k}, {b, k * n}, {c, m * n});

  gemm_blocked(trans_a, trans_b, m, n, k, alpha, a, b, beta, c);
}

void gemm_bf16(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
               std::int64_t k, float alpha, const std::uint16_t* a,
               const std::uint16_t* b, float beta, float* c) {
  if (m <= 0 || n <= 0) return;
  if (k <= 0 || alpha == 0.0F) {
    scale_c(c, m, n, beta);
    return;
  }
  EDGETRAIN_GUARD_DISJOINT("gemm_bf16",
                           {reinterpret_cast<const float*>(a), (m * k + 1) / 2},
                           {reinterpret_cast<const float*>(b), (k * n + 1) / 2},
                           {c, m * n});
  gemm_blocked(trans_a, trans_b, m, n, k, alpha, a, b, beta, c);
}

// ---------------------------------------------------------------------------
// Convolution
// ---------------------------------------------------------------------------

void im2col(const float* x, std::int64_t channels, std::int64_t h,
            std::int64_t w, std::int64_t kh, std::int64_t kw,
            const ConvParams& p, float* col) {
  const std::int64_t ho = conv_out_size(h, kh, p.stride, p.pad);
  const std::int64_t wo = conv_out_size(w, kw, p.stride, p.pad);
  const std::int64_t out_area = ho * wo;
  for (std::int64_t c = 0; c < channels; ++c) {
    for (std::int64_t ki = 0; ki < kh; ++ki) {
      for (std::int64_t kj = 0; kj < kw; ++kj) {
        const std::int64_t row = (c * kh + ki) * kw + kj;
        float* dst = col + row * out_area;
        if (p.stride == 1) {
          // Fast path: ix = ox - pad + kj walks in lockstep with ox, so the
          // valid span [ox_lo, ox_hi) is one contiguous memcpy per output
          // row, with memset fringes for the padding (bounds hoisted out of
          // the inner loop).
          const std::int64_t ox_lo = std::max<std::int64_t>(0, p.pad - kj);
          const std::int64_t ox_hi = std::min(wo, w + p.pad - kj);
          const std::int64_t run = ox_hi - ox_lo;
          for (std::int64_t oy = 0; oy < ho; ++oy) {
            const std::int64_t iy = oy - p.pad + ki;
            float* drow = dst + oy * wo;
            if (iy < 0 || iy >= h || run <= 0) {
              std::memset(drow, 0, static_cast<std::size_t>(wo) * sizeof(float));
              continue;
            }
            const float* src_row = x + (c * h + iy) * w + kj - p.pad;
            if (ox_lo > 0) {
              std::memset(drow, 0, static_cast<std::size_t>(ox_lo) * sizeof(float));
            }
            std::memcpy(drow + ox_lo, src_row + ox_lo,
                        static_cast<std::size_t>(run) * sizeof(float));
            if (ox_hi < wo) {
              std::memset(drow + ox_hi, 0,
                          static_cast<std::size_t>(wo - ox_hi) * sizeof(float));
            }
          }
          continue;
        }
        for (std::int64_t oy = 0; oy < ho; ++oy) {
          const std::int64_t iy = oy * p.stride - p.pad + ki;
          if (iy < 0 || iy >= h) {
            std::memset(dst + oy * wo, 0,
                        static_cast<std::size_t>(wo) * sizeof(float));
            continue;
          }
          const float* src_row = x + (c * h + iy) * w;
          for (std::int64_t ox = 0; ox < wo; ++ox) {
            const std::int64_t ix = ox * p.stride - p.pad + kj;
            dst[oy * wo + ox] =
                (ix >= 0 && ix < w) ? src_row[ix] : 0.0F;
          }
        }
      }
    }
  }
}

void col2im(const float* col, std::int64_t channels, std::int64_t h,
            std::int64_t w, std::int64_t kh, std::int64_t kw,
            const ConvParams& p, float* x) {
  const std::int64_t ho = conv_out_size(h, kh, p.stride, p.pad);
  const std::int64_t wo = conv_out_size(w, kw, p.stride, p.pad);
  const std::int64_t out_area = ho * wo;
  for (std::int64_t c = 0; c < channels; ++c) {
    for (std::int64_t ki = 0; ki < kh; ++ki) {
      for (std::int64_t kj = 0; kj < kw; ++kj) {
        const std::int64_t row = (c * kh + ki) * kw + kj;
        const float* src = col + row * out_area;
        if (p.stride == 1) {
          // Fast path mirror of im2col: one contiguous accumulate run per
          // output row, no per-pixel bounds checks.
          const std::int64_t ox_lo = std::max<std::int64_t>(0, p.pad - kj);
          const std::int64_t ox_hi = std::min(wo, w + p.pad - kj);
          if (ox_hi <= ox_lo) continue;
          for (std::int64_t oy = 0; oy < ho; ++oy) {
            const std::int64_t iy = oy - p.pad + ki;
            if (iy < 0 || iy >= h) continue;
            float* dst_row = x + (c * h + iy) * w + kj - p.pad;
            const float* srow = src + oy * wo;
            for (std::int64_t ox = ox_lo; ox < ox_hi; ++ox) {
              dst_row[ox] += srow[ox];
            }
          }
          continue;
        }
        for (std::int64_t oy = 0; oy < ho; ++oy) {
          const std::int64_t iy = oy * p.stride - p.pad + ki;
          if (iy < 0 || iy >= h) continue;
          float* dst_row = x + (c * h + iy) * w;
          for (std::int64_t ox = 0; ox < wo; ++ox) {
            const std::int64_t ix = ox * p.stride - p.pad + kj;
            if (ix >= 0 && ix < w) dst_row[ix] += src[oy * wo + ox];
          }
        }
      }
    }
  }
}

Tensor conv2d_forward(const Tensor& x, const Tensor& w, const Tensor& bias,
                      const ConvParams& p) {
  check(x.shape().rank() == 4, "conv2d: x must be NCHW");
  check(w.shape().rank() == 4, "conv2d: w must be [Cout,Cin,kh,kw]");
  const std::int64_t n = x.shape()[0];
  const std::int64_t cin = x.shape()[1];
  const std::int64_t h = x.shape()[2];
  const std::int64_t wd = x.shape()[3];
  const std::int64_t cout = w.shape()[0];
  check(w.shape()[1] == cin, "conv2d: channel mismatch");
  const std::int64_t kh = w.shape()[2];
  const std::int64_t kw = w.shape()[3];
  const std::int64_t ho = conv_out_size(h, kh, p.stride, p.pad);
  const std::int64_t wo = conv_out_size(wd, kw, p.stride, p.pad);
  check(ho > 0 && wo > 0, "conv2d: empty output");

  Tensor y = Tensor::empty(Shape{n, cout, ho, wo});
  const std::int64_t col_rows = cin * kh * kw;
  const std::int64_t out_area = ho * wo;
  Workspace& ws = Workspace::tls();
  const WorkspaceScope scope(ws);
  float* col = ws.alloc(col_rows * out_area);

  for (std::int64_t img = 0; img < n; ++img) {
    im2col(x.data() + img * cin * h * wd, cin, h, wd, kh, kw, p, col);
    // y[img] = W[cout, col_rows] * col
    gemm(false, false, cout, out_area, col_rows, 1.0F, w.data(), col,
         0.0F, y.data() + img * cout * out_area);
    if (bias.defined()) {
      float* yp = y.data() + img * cout * out_area;
      for (std::int64_t c = 0; c < cout; ++c) {
        const float b = bias.data()[c];
        for (std::int64_t i = 0; i < out_area; ++i) yp[c * out_area + i] += b;
      }
    }
  }
  return y;
}

Tensor conv2d_backward_acc(const Tensor& grad_y, const Tensor& x,
                           const Tensor& w, const ConvParams& p,
                           Tensor& grad_w_acc, Tensor* grad_b_acc) {
  const std::int64_t n = x.shape()[0];
  const std::int64_t cin = x.shape()[1];
  const std::int64_t h = x.shape()[2];
  const std::int64_t wd = x.shape()[3];
  const std::int64_t cout = w.shape()[0];
  const std::int64_t kh = w.shape()[2];
  const std::int64_t kw = w.shape()[3];
  const std::int64_t ho = grad_y.shape()[2];
  const std::int64_t wo = grad_y.shape()[3];
  const std::int64_t out_area = ho * wo;
  const std::int64_t col_rows = cin * kh * kw;
  check(grad_w_acc.shape() == w.shape(), "conv2d_backward: grad_w shape");

  Tensor grad_x = Tensor::zeros(x.shape());

  Workspace& ws = Workspace::tls();
  const WorkspaceScope scope(ws);
  float* col = ws.alloc(col_rows * out_area);
  float* col_grad = ws.alloc(col_rows * out_area);

  for (std::int64_t img = 0; img < n; ++img) {
    const float* gy = grad_y.data() + img * cout * out_area;
    // grad_w += gy[cout, area] * col^T -> [cout, col_rows]
    im2col(x.data() + img * cin * h * wd, cin, h, wd, kh, kw, p, col);
    gemm(false, true, cout, col_rows, out_area, 1.0F, gy, col, 1.0F,
         grad_w_acc.data());
    // col_grad = W^T[col_rows, cout] * gy
    gemm(true, false, col_rows, out_area, cout, 1.0F, w.data(), gy, 0.0F,
         col_grad);
    col2im(col_grad, cin, h, wd, kh, kw, p,
           grad_x.data() + img * cin * h * wd);
    if (grad_b_acc != nullptr) {
      float* gb = grad_b_acc->data();
      for (std::int64_t c = 0; c < cout; ++c) {
        double acc = 0.0;
        for (std::int64_t i = 0; i < out_area; ++i) acc += gy[c * out_area + i];
        gb[c] += static_cast<float>(acc);
      }
    }
  }
  return grad_x;
}

Conv2dGrads conv2d_backward(const Tensor& grad_y, const Tensor& x,
                            const Tensor& w, const ConvParams& p,
                            bool with_bias) {
  Conv2dGrads grads;
  grads.grad_w = Tensor::zeros(w.shape());
  if (with_bias) grads.grad_b = Tensor::zeros(Shape{w.shape()[0]});
  grads.grad_x =
      conv2d_backward_acc(grad_y, x, w, p, grads.grad_w,
                          with_bias ? &grads.grad_b : nullptr);
  return grads;
}

// ---------------------------------------------------------------------------
// Activation / pooling
// ---------------------------------------------------------------------------

Tensor relu_forward(const Tensor& x) {
  Tensor y = Tensor::empty(x.shape());
  const float* xp = x.data();
  float* yp = y.data();
  const std::int64_t n = x.numel();
  EDGETRAIN_GUARD_DISJOINT("relu_forward", {xp, n}, {yp, n});
  parallel_for(0, n, 1 << 16, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) yp[i] = xp[i] > 0.0F ? xp[i] : 0.0F;
  });
  return y;
}

Tensor relu_backward(const Tensor& grad_y, const Tensor& y) {
  check(grad_y.shape() == y.shape(), "relu_backward: shape mismatch");
  Tensor gx = Tensor::empty(y.shape());
  const float* gy = grad_y.data();
  const float* yp = y.data();
  float* gp = gx.data();
  const std::int64_t n = y.numel();
  EDGETRAIN_GUARD_DISJOINT("relu_backward", {gy, n}, {yp, n}, {gp, n});
  parallel_for(0, n, 1 << 16, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) gp[i] = yp[i] > 0.0F ? gy[i] : 0.0F;
  });
  return gx;
}

MaxPoolResult maxpool2d_forward(const Tensor& x, std::int64_t k,
                                const ConvParams& p) {
  const std::int64_t n = x.shape()[0];
  const std::int64_t c = x.shape()[1];
  const std::int64_t h = x.shape()[2];
  const std::int64_t w = x.shape()[3];
  const std::int64_t ho = conv_out_size(h, k, p.stride, p.pad);
  const std::int64_t wo = conv_out_size(w, k, p.stride, p.pad);

  MaxPoolResult result;
  result.y = Tensor::empty(Shape{n, c, ho, wo});
  result.argmax.assign(static_cast<std::size_t>(n * c * ho * wo), 0);

  const float* xp = x.data();
  float* yp = result.y.data();
  std::int32_t* am = result.argmax.data();

  for (std::int64_t img = 0; img < n; ++img) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* plane = xp + (img * c + ch) * h * w;
      for (std::int64_t oy = 0; oy < ho; ++oy) {
        for (std::int64_t ox = 0; ox < wo; ++ox) {
          float best = -std::numeric_limits<float>::infinity();
          std::int64_t best_idx = 0;
          for (std::int64_t ki = 0; ki < k; ++ki) {
            const std::int64_t iy = oy * p.stride - p.pad + ki;
            if (iy < 0 || iy >= h) continue;
            for (std::int64_t kj = 0; kj < k; ++kj) {
              const std::int64_t ix = ox * p.stride - p.pad + kj;
              if (ix < 0 || ix >= w) continue;
              const float v = plane[iy * w + ix];
              if (v > best) {
                best = v;
                best_idx = iy * w + ix;
              }
            }
          }
          const std::int64_t out_idx = ((img * c + ch) * ho + oy) * wo + ox;
          yp[out_idx] = best;
          am[out_idx] = static_cast<std::int32_t>(best_idx);
        }
      }
    }
  }
  return result;
}

Tensor maxpool2d_backward(const Tensor& grad_y,
                          const std::vector<std::int32_t>& argmax,
                          const Shape& x_shape) {
  Tensor gx = Tensor::zeros(x_shape);
  const std::int64_t n = grad_y.shape()[0];
  const std::int64_t c = grad_y.shape()[1];
  const std::int64_t area_out = grad_y.shape()[2] * grad_y.shape()[3];
  const std::int64_t area_in = x_shape[2] * x_shape[3];
  const float* gy = grad_y.data();
  float* gp = gx.data();
  for (std::int64_t plane = 0; plane < n * c; ++plane) {
    const float* gy_plane = gy + plane * area_out;
    float* gx_plane = gp + plane * area_in;
    const std::int32_t* am = argmax.data() + plane * area_out;
    for (std::int64_t i = 0; i < area_out; ++i) {
      gx_plane[am[i]] += gy_plane[i];
    }
  }
  return gx;
}

Tensor global_avgpool_forward(const Tensor& x) {
  const std::int64_t n = x.shape()[0];
  const std::int64_t c = x.shape()[1];
  const std::int64_t area = x.shape()[2] * x.shape()[3];
  Tensor y = Tensor::empty(Shape{n, c});
  const float* xp = x.data();
  float* yp = y.data();
  for (std::int64_t plane = 0; plane < n * c; ++plane) {
    double acc = 0.0;
    const float* src = xp + plane * area;
    for (std::int64_t i = 0; i < area; ++i) acc += src[i];
    yp[plane] = static_cast<float>(acc / static_cast<double>(area));
  }
  return y;
}

Tensor global_avgpool_backward(const Tensor& grad_y, const Shape& x_shape) {
  const std::int64_t n = x_shape[0];
  const std::int64_t c = x_shape[1];
  const std::int64_t area = x_shape[2] * x_shape[3];
  Tensor gx = Tensor::empty(x_shape);
  const float* gy = grad_y.data();
  float* gp = gx.data();
  const float inv_area = 1.0F / static_cast<float>(area);
  for (std::int64_t plane = 0; plane < n * c; ++plane) {
    const float g = gy[plane] * inv_area;
    float* dst = gp + plane * area;
    for (std::int64_t i = 0; i < area; ++i) dst[i] = g;
  }
  return gx;
}

Tensor avgpool2d_forward(const Tensor& x, std::int64_t k,
                         const ConvParams& p) {
  const std::int64_t n = x.shape()[0];
  const std::int64_t c = x.shape()[1];
  const std::int64_t h = x.shape()[2];
  const std::int64_t w = x.shape()[3];
  const std::int64_t ho = conv_out_size(h, k, p.stride, p.pad);
  const std::int64_t wo = conv_out_size(w, k, p.stride, p.pad);
  Tensor y = Tensor::empty(Shape{n, c, ho, wo});
  const float* xp = x.data();
  float* yp = y.data();
  const float inv = 1.0F / static_cast<float>(k * k);
  for (std::int64_t plane = 0; plane < n * c; ++plane) {
    const float* src = xp + plane * h * w;
    float* dst = yp + plane * ho * wo;
    for (std::int64_t oy = 0; oy < ho; ++oy) {
      for (std::int64_t ox = 0; ox < wo; ++ox) {
        double acc = 0.0;
        for (std::int64_t ky = 0; ky < k; ++ky) {
          const std::int64_t iy = oy * p.stride - p.pad + ky;
          if (iy < 0 || iy >= h) continue;
          for (std::int64_t kx = 0; kx < k; ++kx) {
            const std::int64_t ix = ox * p.stride - p.pad + kx;
            if (ix < 0 || ix >= w) continue;
            acc += src[iy * w + ix];
          }
        }
        dst[oy * wo + ox] = static_cast<float>(acc) * inv;
      }
    }
  }
  return y;
}

Tensor avgpool2d_backward(const Tensor& grad_y, std::int64_t k,
                          const ConvParams& p, const Shape& x_shape) {
  const std::int64_t n = x_shape[0];
  const std::int64_t c = x_shape[1];
  const std::int64_t h = x_shape[2];
  const std::int64_t w = x_shape[3];
  const std::int64_t ho = grad_y.shape()[2];
  const std::int64_t wo = grad_y.shape()[3];
  Tensor gx = Tensor::zeros(x_shape);
  const float* gy = grad_y.data();
  float* gp = gx.data();
  const float inv = 1.0F / static_cast<float>(k * k);
  for (std::int64_t plane = 0; plane < n * c; ++plane) {
    const float* src = gy + plane * ho * wo;
    float* dst = gp + plane * h * w;
    for (std::int64_t oy = 0; oy < ho; ++oy) {
      for (std::int64_t ox = 0; ox < wo; ++ox) {
        const float g = src[oy * wo + ox] * inv;
        for (std::int64_t ky = 0; ky < k; ++ky) {
          const std::int64_t iy = oy * p.stride - p.pad + ky;
          if (iy < 0 || iy >= h) continue;
          for (std::int64_t kx = 0; kx < k; ++kx) {
            const std::int64_t ix = ox * p.stride - p.pad + kx;
            if (ix < 0 || ix >= w) continue;
            dst[iy * w + ix] += g;
          }
        }
      }
    }
  }
  return gx;
}

Tensor sigmoid_forward(const Tensor& x) {
  Tensor y = Tensor::empty(x.shape());
  const float* xp = x.data();
  float* yp = y.data();
  const std::int64_t n = x.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    yp[i] = 1.0F / (1.0F + std::exp(-xp[i]));
  }
  return y;
}

Tensor sigmoid_backward(const Tensor& grad_y, const Tensor& y) {
  Tensor gx = Tensor::empty(y.shape());
  const float* gy = grad_y.data();
  const float* yp = y.data();
  float* gp = gx.data();
  const std::int64_t n = y.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    gp[i] = gy[i] * yp[i] * (1.0F - yp[i]);
  }
  return gx;
}

Tensor tanh_forward(const Tensor& x) {
  Tensor y = Tensor::empty(x.shape());
  const float* xp = x.data();
  float* yp = y.data();
  const std::int64_t n = x.numel();
  for (std::int64_t i = 0; i < n; ++i) yp[i] = std::tanh(xp[i]);
  return y;
}

Tensor tanh_backward(const Tensor& grad_y, const Tensor& y) {
  Tensor gx = Tensor::empty(y.shape());
  const float* gy = grad_y.data();
  const float* yp = y.data();
  float* gp = gx.data();
  const std::int64_t n = y.numel();
  for (std::int64_t i = 0; i < n; ++i) gp[i] = gy[i] * (1.0F - yp[i] * yp[i]);
  return gx;
}

namespace {
/// SplitMix64: high-quality counter-based hash; uniform in [0, 1).
inline float unit_hash(std::uint64_t seed, std::uint64_t index) {
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z ^= z >> 31;
  return static_cast<float>(z >> 40) * (1.0F / 16777216.0F);
}
}  // namespace

Tensor dropout_forward(const Tensor& x, float rate, std::uint64_t seed) {
  check(rate >= 0.0F && rate < 1.0F, "dropout: rate must be in [0,1)");
  Tensor y = Tensor::empty(x.shape());
  const float* xp = x.data();
  float* yp = y.data();
  const float scale = 1.0F / (1.0F - rate);
  const std::int64_t n = x.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    yp[i] = unit_hash(seed, static_cast<std::uint64_t>(i)) >= rate
                ? xp[i] * scale
                : 0.0F;
  }
  return y;
}

Tensor dropout_backward(const Tensor& grad_y, float rate, std::uint64_t seed) {
  Tensor gx = Tensor::empty(grad_y.shape());
  const float* gy = grad_y.data();
  float* gp = gx.data();
  const float scale = 1.0F / (1.0F - rate);
  const std::int64_t n = grad_y.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    gp[i] = unit_hash(seed, static_cast<std::uint64_t>(i)) >= rate
                ? gy[i] * scale
                : 0.0F;
  }
  return gx;
}

// ---------------------------------------------------------------------------
// Linear
// ---------------------------------------------------------------------------

Tensor linear_forward(const Tensor& x, const Tensor& w, const Tensor& b) {
  check(x.shape().rank() == 2, "linear: x must be [N,in]");
  const std::int64_t n = x.shape()[0];
  const std::int64_t in = x.shape()[1];
  const std::int64_t out = w.shape()[0];
  check(w.shape()[1] == in, "linear: dim mismatch");
  Tensor y = Tensor::empty(Shape{n, out});
  // y = x[n,in] * w^T[in,out]
  gemm(false, true, n, out, in, 1.0F, x.data(), w.data(), 0.0F, y.data());
  if (b.defined()) {
    float* yp = y.data();
    const float* bp = b.data();
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t j = 0; j < out; ++j) yp[i * out + j] += bp[j];
    }
  }
  return y;
}

Tensor linear_backward_acc(const Tensor& grad_y, const Tensor& x,
                           const Tensor& w, Tensor& grad_w_acc,
                           Tensor* grad_b_acc) {
  const std::int64_t n = x.shape()[0];
  const std::int64_t in = x.shape()[1];
  const std::int64_t out = w.shape()[0];
  check(grad_w_acc.shape() == w.shape(), "linear_backward: grad_w shape");
  Tensor grad_x = Tensor::empty(Shape{n, in});
  // grad_x = gy[n,out] * w[out,in]
  gemm(false, false, n, in, out, 1.0F, grad_y.data(), w.data(), 0.0F,
       grad_x.data());
  // grad_w += gy^T[out,n] * x[n,in]
  gemm(true, false, out, in, n, 1.0F, grad_y.data(), x.data(), 1.0F,
       grad_w_acc.data());
  if (grad_b_acc != nullptr) {
    float* gb = grad_b_acc->data();
    const float* gy = grad_y.data();
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t j = 0; j < out; ++j) gb[j] += gy[i * out + j];
    }
  }
  return grad_x;
}

LinearGrads linear_backward(const Tensor& grad_y, const Tensor& x,
                            const Tensor& w, bool with_bias) {
  LinearGrads grads;
  grads.grad_w = Tensor::zeros(w.shape());
  if (with_bias) grads.grad_b = Tensor::zeros(Shape{w.shape()[0]});
  grads.grad_x = linear_backward_acc(grad_y, x, w, grads.grad_w,
                                     with_bias ? &grads.grad_b : nullptr);
  return grads;
}

// ---------------------------------------------------------------------------
// Batch normalisation
// ---------------------------------------------------------------------------

BatchNormState batchnorm2d_forward(const Tensor& x, const Tensor& gamma,
                                   const Tensor& beta, Tensor& running_mean,
                                   Tensor& running_var, float momentum,
                                   float eps, bool update_running) {
  const std::int64_t n = x.shape()[0];
  const std::int64_t c = x.shape()[1];
  const std::int64_t area = x.shape()[2] * x.shape()[3];
  const std::int64_t count = n * area;

  BatchNormState state;
  state.y = Tensor::empty(x.shape());
  state.mean = Tensor::empty(Shape{c});
  state.inv_std = Tensor::empty(Shape{c});

  const float* xp = x.data();
  float* yp = state.y.data();
  float* mean = state.mean.data();
  float* inv_std = state.inv_std.data();
  const float* g = gamma.data();
  const float* bt = beta.data();

  EDGETRAIN_GUARD_DISJOINT("batchnorm2d_forward", {xp, n * c * area},
                           {yp, n * c * area}, {mean, c}, {inv_std, c});
  parallel_for(0, c, 1, [&](std::int64_t c0, std::int64_t c1) {
    for (std::int64_t ch = c0; ch < c1; ++ch) {
      double sum = 0.0;
      double sumsq = 0.0;
      for (std::int64_t img = 0; img < n; ++img) {
        const float* plane = xp + (img * c + ch) * area;
        for (std::int64_t i = 0; i < area; ++i) {
          sum += plane[i];
          sumsq += static_cast<double>(plane[i]) * plane[i];
        }
      }
      const double mu = sum / static_cast<double>(count);
      const double var = sumsq / static_cast<double>(count) - mu * mu;
      const double istd = 1.0 / std::sqrt(std::max(var, 0.0) + eps);
      mean[ch] = static_cast<float>(mu);
      inv_std[ch] = static_cast<float>(istd);
      const float scale = static_cast<float>(istd) * g[ch];
      const float shift = bt[ch] - static_cast<float>(mu) * scale;
      for (std::int64_t img = 0; img < n; ++img) {
        const float* src = xp + (img * c + ch) * area;
        float* dst = yp + (img * c + ch) * area;
        for (std::int64_t i = 0; i < area; ++i) dst[i] = src[i] * scale + shift;
      }
      if (update_running) {
        running_mean.data()[ch] = (1.0F - momentum) * running_mean.data()[ch] +
                                  momentum * static_cast<float>(mu);
        running_var.data()[ch] = (1.0F - momentum) * running_var.data()[ch] +
                                 momentum * static_cast<float>(var);
      }
    }
  });
  return state;
}

Tensor batchnorm2d_infer(const Tensor& x, const Tensor& gamma,
                         const Tensor& beta, const Tensor& running_mean,
                         const Tensor& running_var, float eps) {
  const std::int64_t n = x.shape()[0];
  const std::int64_t c = x.shape()[1];
  const std::int64_t area = x.shape()[2] * x.shape()[3];
  Tensor y = Tensor::empty(x.shape());
  const float* xp = x.data();
  float* yp = y.data();
  for (std::int64_t ch = 0; ch < c; ++ch) {
    const float istd =
        1.0F / std::sqrt(running_var.data()[ch] + eps);
    const float scale = istd * gamma.data()[ch];
    const float shift = beta.data()[ch] - running_mean.data()[ch] * scale;
    for (std::int64_t img = 0; img < n; ++img) {
      const float* src = xp + (img * c + ch) * area;
      float* dst = yp + (img * c + ch) * area;
      for (std::int64_t i = 0; i < area; ++i) dst[i] = src[i] * scale + shift;
    }
  }
  return y;
}

BatchNormGrads batchnorm2d_backward(const Tensor& grad_y, const Tensor& x,
                                    const Tensor& gamma,
                                    const BatchNormState& state) {
  const std::int64_t n = x.shape()[0];
  const std::int64_t c = x.shape()[1];
  const std::int64_t area = x.shape()[2] * x.shape()[3];
  const std::int64_t count = n * area;

  BatchNormGrads grads;
  grads.grad_x = Tensor::empty(x.shape());
  grads.grad_gamma = Tensor::zeros(Shape{c});
  grads.grad_beta = Tensor::zeros(Shape{c});

  const float* xp = x.data();
  const float* gy = grad_y.data();
  float* gx = grads.grad_x.data();
  float* gg = grads.grad_gamma.data();
  float* gb = grads.grad_beta.data();

  EDGETRAIN_GUARD_DISJOINT("batchnorm2d_backward", {xp, n * c * area},
                           {gy, n * c * area}, {gx, n * c * area}, {gg, c},
                           {gb, c});
  parallel_for(0, c, 1, [&](std::int64_t c0, std::int64_t c1) {
    for (std::int64_t ch = c0; ch < c1; ++ch) {
      const float mu = state.mean.data()[ch];
      const float istd = state.inv_std.data()[ch];
      const float g = gamma.data()[ch];
      double sum_gy = 0.0;
      double sum_gy_xhat = 0.0;
      for (std::int64_t img = 0; img < n; ++img) {
        const float* src = xp + (img * c + ch) * area;
        const float* gsrc = gy + (img * c + ch) * area;
        for (std::int64_t i = 0; i < area; ++i) {
          const float xhat = (src[i] - mu) * istd;
          sum_gy += gsrc[i];
          sum_gy_xhat += static_cast<double>(gsrc[i]) * xhat;
        }
      }
      gg[ch] = static_cast<float>(sum_gy_xhat);
      gb[ch] = static_cast<float>(sum_gy);
      const float mean_gy =
          static_cast<float>(sum_gy / static_cast<double>(count));
      const float mean_gy_xhat =
          static_cast<float>(sum_gy_xhat / static_cast<double>(count));
      for (std::int64_t img = 0; img < n; ++img) {
        const float* src = xp + (img * c + ch) * area;
        const float* gsrc = gy + (img * c + ch) * area;
        float* dst = gx + (img * c + ch) * area;
        for (std::int64_t i = 0; i < area; ++i) {
          const float xhat = (src[i] - mu) * istd;
          dst[i] = g * istd * (gsrc[i] - mean_gy - xhat * mean_gy_xhat);
        }
      }
    }
  });
  return grads;
}

// ---------------------------------------------------------------------------
// Loss
// ---------------------------------------------------------------------------

SoftmaxXentResult softmax_xent_forward(const Tensor& logits,
                                       const std::vector<std::int32_t>& labels) {
  const std::int64_t n = logits.shape()[0];
  const std::int64_t k = logits.shape()[1];
  check(static_cast<std::int64_t>(labels.size()) == n,
        "softmax_xent: label count mismatch");
  SoftmaxXentResult result;
  result.probs = Tensor::empty(logits.shape());
  const float* lp = logits.data();
  float* pp = result.probs.data();
  double loss = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const float* row = lp + i * k;
    float* prow = pp + i * k;
    float mx = row[0];
    for (std::int64_t j = 1; j < k; ++j) mx = std::max(mx, row[j]);
    double denom = 0.0;
    for (std::int64_t j = 0; j < k; ++j) {
      prow[j] = std::exp(row[j] - mx);
      denom += prow[j];
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (std::int64_t j = 0; j < k; ++j) prow[j] *= inv;
    const std::int32_t label = labels[static_cast<std::size_t>(i)];
    check(label >= 0 && label < k, "softmax_xent: label out of range");
    loss -= std::log(std::max(static_cast<double>(prow[label]), 1e-12));
  }
  result.loss = static_cast<float>(loss / static_cast<double>(n));
  return result;
}

Tensor softmax_xent_backward(const Tensor& probs,
                             const std::vector<std::int32_t>& labels) {
  const std::int64_t n = probs.shape()[0];
  const std::int64_t k = probs.shape()[1];
  Tensor grad = probs.clone();
  float* gp = grad.data();
  const float inv_n = 1.0F / static_cast<float>(n);
  for (std::int64_t i = 0; i < n; ++i) {
    gp[i * k + labels[static_cast<std::size_t>(i)]] -= 1.0F;
    for (std::int64_t j = 0; j < k; ++j) gp[i * k + j] *= inv_n;
  }
  return grad;
}

std::vector<std::int32_t> argmax_rows(const Tensor& logits) {
  const std::int64_t n = logits.shape()[0];
  const std::int64_t k = logits.shape()[1];
  std::vector<std::int32_t> out(static_cast<std::size_t>(n));
  const float* lp = logits.data();
  for (std::int64_t i = 0; i < n; ++i) {
    const float* row = lp + i * k;
    std::int32_t best = 0;
    for (std::int64_t j = 1; j < k; ++j) {
      if (row[j] > row[best]) best = static_cast<std::int32_t>(j);
    }
    out[static_cast<std::size_t>(i)] = best;
  }
  return out;
}

Tensor softmax_rows(const Tensor& logits, float temperature) {
  check(temperature > 0.0F, "softmax_rows: temperature must be > 0");
  const std::int64_t n = logits.shape()[0];
  const std::int64_t k = logits.shape()[1];
  Tensor probs = Tensor::empty(logits.shape());
  const float* lp = logits.data();
  float* pp = probs.data();
  for (std::int64_t i = 0; i < n; ++i) {
    const float* row = lp + i * k;
    float* prow = pp + i * k;
    float mx = row[0];
    for (std::int64_t j = 1; j < k; ++j) mx = std::max(mx, row[j]);
    double denom = 0.0;
    for (std::int64_t j = 0; j < k; ++j) {
      prow[j] = std::exp((row[j] - mx) / temperature);
      denom += prow[j];
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (std::int64_t j = 0; j < k; ++j) prow[j] *= inv;
  }
  return probs;
}

DistillResult distill_loss(const Tensor& student_logits,
                           const Tensor& teacher_logits,
                           const std::vector<std::int32_t>& labels,
                           float alpha, float temperature) {
  check(student_logits.shape() == teacher_logits.shape(),
        "distill: logits shape mismatch");
  check(alpha >= 0.0F && alpha <= 1.0F, "distill: alpha must be in [0,1]");
  const std::int64_t n = student_logits.shape()[0];
  const std::int64_t k = student_logits.shape()[1];

  DistillResult result;
  result.grad_student_logits = Tensor::zeros(student_logits.shape());
  float* grad = result.grad_student_logits.data();
  double loss = 0.0;
  const float inv_n = 1.0F / static_cast<float>(n);

  // Hard-label term.
  if (alpha > 0.0F) {
    const SoftmaxXentResult hard =
        softmax_xent_forward(student_logits, labels);
    loss += static_cast<double>(alpha) * hard.loss;
    const float* p = hard.probs.data();
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t j = 0; j < k; ++j) {
        const float onehot =
            j == labels[static_cast<std::size_t>(i)] ? 1.0F : 0.0F;
        grad[i * k + j] += alpha * (p[i * k + j] - onehot) * inv_n;
      }
    }
  }

  // Soft-label term: T^2 * KL(p_teacher^T || p_student^T); gradient
  // T^2 * (1/T) * (ps - pt) = T * (ps - pt).
  if (alpha < 1.0F) {
    const Tensor ps = softmax_rows(student_logits, temperature);
    const Tensor pt = softmax_rows(teacher_logits, temperature);
    const float t2 = temperature * temperature;
    const float soft_weight = 1.0F - alpha;
    double kl = 0.0;
    for (std::int64_t i = 0; i < n * k; ++i) {
      const double teacher_p = std::max<double>(pt.data()[i], 1e-12);
      const double student_p = std::max<double>(ps.data()[i], 1e-12);
      kl += teacher_p * std::log(teacher_p / student_p);
      grad[i] += soft_weight * temperature *
                 (ps.data()[i] - pt.data()[i]) * inv_n;
    }
    loss += static_cast<double>(soft_weight) * t2 * kl /
            static_cast<double>(n);
  }

  result.loss = static_cast<float>(loss);
  return result;
}

}  // namespace edgetrain::ops
