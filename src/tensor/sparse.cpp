#include "tensor/sparse.hpp"

#include <algorithm>
#include <bit>
#include <vector>

#include "tensor/guards.hpp"
#include "tensor/parallel.hpp"

namespace edgetrain::sparse {

namespace {

// Same micro-architecture dispatch as tensor/convert.cpp: v3/v4 clones
// resolved by the loader's ifunc, disabled under sanitizers (the resolver
// runs before __tsan_init/__asan_init and an instrumented resolver
// segfaults there).
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define EDGETRAIN_SPARSE_CLONES
#elif defined(__GNUC__) && defined(__x86_64__) && !defined(__clang__)
#define EDGETRAIN_SPARSE_CLONES \
  __attribute__(                \
      (target_clones("arch=x86-64-v4", "arch=x86-64-v3", "default")))
#else
#define EDGETRAIN_SPARSE_CLONES
#endif

/// Elements per parallel chunk. A multiple of 64 so each u64 bitmap word
/// has exactly one owning chunk; the same 2^15 sweet spot as convert.cpp.
constexpr std::int64_t kChunkElems = 1 << 15;
constexpr std::int64_t kChunkWords = kChunkElems / 64;

[[nodiscard]] std::int64_t num_chunks(std::int64_t n_words) noexcept {
  return (n_words + kChunkWords - 1) / kChunkWords;
}

// ---------------------------------------------------------------------------
// Chunk kernels over half-open word ranges. The bitmap-build loop is a flat
// 64-lane reduction the vectoriser turns into compare/movemask code; the
// compact/scatter inner loops walk set bits with countr_zero + clear-lowest,
// so their cost scales with nnz, not n.
// ---------------------------------------------------------------------------

EDGETRAIN_SPARSE_CLONES
std::int64_t bitmap_chunk(const float* src, std::int64_t n,
                          std::int64_t word_begin, std::int64_t word_end,
                          std::uint64_t* bitmap) {
  std::int64_t nnz = 0;
  for (std::int64_t w = word_begin; w < word_end; ++w) {
    const std::int64_t base = w * 64;
    const std::int64_t lanes = std::min<std::int64_t>(64, n - base);
    std::uint64_t bits = 0;
    for (std::int64_t b = 0; b < lanes; ++b) {
      const auto u = std::bit_cast<std::uint32_t>(src[base + b]);
      bits |= static_cast<std::uint64_t>(u != 0U ? 1U : 0U)
              << static_cast<unsigned>(b);
    }
    bitmap[w] = bits;
    nnz += std::popcount(bits);
  }
  return nnz;
}

EDGETRAIN_SPARSE_CLONES
std::int64_t popcount_chunk(const std::uint64_t* words, std::int64_t begin,
                            std::int64_t end) {
  std::int64_t total = 0;
  for (std::int64_t i = begin; i < end; ++i) total += std::popcount(words[i]);
  return total;
}

EDGETRAIN_SPARSE_CLONES
void compact_chunk(const float* src, const std::uint64_t* bitmap,
                   std::int64_t word_begin, std::int64_t word_end,
                   float* dst) {
  float* out = dst;
  for (std::int64_t w = word_begin; w < word_end; ++w) {
    const std::int64_t base = w * 64;
    std::uint64_t bits = bitmap[w];
    while (bits != 0) {
      const int b = std::countr_zero(bits);
      *out++ = src[base + b];
      bits &= bits - 1;
    }
  }
}

EDGETRAIN_SPARSE_CLONES
void scatter_chunk(const float* packed, const std::uint64_t* bitmap,
                   std::int64_t n, std::int64_t word_begin,
                   std::int64_t word_end, float* dst) {
  const float* in = packed;
  for (std::int64_t w = word_begin; w < word_end; ++w) {
    const std::int64_t base = w * 64;
    const std::int64_t lanes = std::min<std::int64_t>(64, n - base);
    for (std::int64_t b = 0; b < lanes; ++b) dst[base + b] = 0.0F;
    std::uint64_t bits = bitmap[w];
    while (bits != 0) {
      const int b = std::countr_zero(bits);
      dst[base + b] = *in++;
      bits &= bits - 1;
    }
  }
}

/// Per-chunk popcounts of the bitmap followed by a serial exclusive prefix
/// sum: offsets[c] is where chunk c's packed values begin; returns nnz.
std::int64_t chunk_offsets(const std::uint64_t* bitmap, std::int64_t n_words,
                           std::vector<std::int64_t>& offsets,
                           convert::Threading threading) {
  const std::int64_t nc = num_chunks(n_words);
  offsets.assign(static_cast<std::size_t>(nc) + 1, 0);
  auto count = [&](std::int64_t cb, std::int64_t ce) {
    for (std::int64_t c = cb; c < ce; ++c) {
      const std::int64_t wb = c * kChunkWords;
      const std::int64_t we = std::min(n_words, wb + kChunkWords);
      offsets[static_cast<std::size_t>(c) + 1] =
          popcount_chunk(bitmap, wb, we);
    }
  };
  if (threading == convert::Threading::Serial) {
    count(0, nc);
  } else {
    parallel_for(0, nc, 1, count);
  }
  for (std::int64_t c = 0; c < nc; ++c) {
    offsets[static_cast<std::size_t>(c) + 1] +=
        offsets[static_cast<std::size_t>(c)];
  }
  return offsets[static_cast<std::size_t>(nc)];
}

}  // namespace

std::int64_t nonzero_bitmap_scalar(const float* src, std::int64_t n,
                                   std::uint64_t* bitmap) noexcept {
  const std::int64_t n_words = bitmap_words(n);
  std::int64_t nnz = 0;
  for (std::int64_t w = 0; w < n_words; ++w) bitmap[w] = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    if (std::bit_cast<std::uint32_t>(src[i]) != 0U) {
      bitmap[i / 64] |= std::uint64_t{1} << static_cast<unsigned>(i % 64);
      ++nnz;
    }
  }
  return nnz;
}

std::int64_t popcount_words_scalar(const std::uint64_t* words,
                                   std::int64_t n_words) noexcept {
  std::int64_t total = 0;
  for (std::int64_t i = 0; i < n_words; ++i) total += std::popcount(words[i]);
  return total;
}

void compact_nonzeros_scalar(const float* src, const std::uint64_t* bitmap,
                             std::int64_t n, float* dst) noexcept {
  float* out = dst;
  for (std::int64_t i = 0; i < n; ++i) {
    if ((bitmap[i / 64] >> static_cast<unsigned>(i % 64) & 1U) != 0U) {
      *out++ = src[i];
    }
  }
}

void scatter_nonzeros_scalar(const float* packed, const std::uint64_t* bitmap,
                             std::int64_t n, float* dst) noexcept {
  const float* in = packed;
  for (std::int64_t i = 0; i < n; ++i) {
    if ((bitmap[i / 64] >> static_cast<unsigned>(i % 64) & 1U) != 0U) {
      dst[i] = *in++;
    } else {
      dst[i] = 0.0F;
    }
  }
}

std::int64_t nonzero_bitmap(const float* src, std::int64_t n,
                            std::uint64_t* bitmap,
                            convert::Threading threading) {
  const std::int64_t n_words = bitmap_words(n);
  EDGETRAIN_GUARD_DISJOINT(
      "nonzero_bitmap", {src, n},
      {reinterpret_cast<const float*>(bitmap), n_words * 2});
  if (threading == convert::Threading::Serial || n_words <= kChunkWords) {
    return bitmap_chunk(src, n, 0, n_words, bitmap);
  }
  const std::int64_t nc = num_chunks(n_words);
  std::vector<std::int64_t> counts(static_cast<std::size_t>(nc), 0);
  parallel_for(0, nc, 1, [&](std::int64_t cb, std::int64_t ce) {
    for (std::int64_t c = cb; c < ce; ++c) {
      const std::int64_t wb = c * kChunkWords;
      const std::int64_t we = std::min(n_words, wb + kChunkWords);
      counts[static_cast<std::size_t>(c)] = bitmap_chunk(src, n, wb, we,
                                                         bitmap);
    }
  });
  std::int64_t nnz = 0;
  for (const std::int64_t c : counts) nnz += c;
  return nnz;
}

std::int64_t popcount_words(const std::uint64_t* words, std::int64_t n_words,
                            convert::Threading threading) {
  if (threading == convert::Threading::Serial || n_words <= kChunkWords) {
    return popcount_chunk(words, 0, n_words);
  }
  const std::int64_t nc = num_chunks(n_words);
  std::vector<std::int64_t> counts(static_cast<std::size_t>(nc), 0);
  parallel_for(0, nc, 1, [&](std::int64_t cb, std::int64_t ce) {
    for (std::int64_t c = cb; c < ce; ++c) {
      const std::int64_t wb = c * kChunkWords;
      const std::int64_t we = std::min(n_words, wb + kChunkWords);
      counts[static_cast<std::size_t>(c)] = popcount_chunk(words, wb, we);
    }
  });
  std::int64_t total = 0;
  for (const std::int64_t c : counts) total += c;
  return total;
}

void compact_nonzeros(const float* src, const std::uint64_t* bitmap,
                      std::int64_t n, float* dst,
                      convert::Threading threading) {
  const std::int64_t n_words = bitmap_words(n);
  EDGETRAIN_GUARD_DISJOINT(
      "compact_nonzeros", {src, n},
      {reinterpret_cast<const float*>(bitmap), n_words * 2},
      {dst, popcount_words_scalar(bitmap, n_words)});
  if (threading == convert::Threading::Serial || n_words <= kChunkWords) {
    compact_chunk(src, bitmap, 0, n_words, dst);
    return;
  }
  std::vector<std::int64_t> offsets;
  chunk_offsets(bitmap, n_words, offsets, threading);
  const std::int64_t nc = num_chunks(n_words);
  parallel_for(0, nc, 1, [&](std::int64_t cb, std::int64_t ce) {
    for (std::int64_t c = cb; c < ce; ++c) {
      const std::int64_t wb = c * kChunkWords;
      const std::int64_t we = std::min(n_words, wb + kChunkWords);
      compact_chunk(src, bitmap, wb, we,
                    dst + offsets[static_cast<std::size_t>(c)]);
    }
  });
}

void scatter_nonzeros(const float* packed, const std::uint64_t* bitmap,
                      std::int64_t n, float* dst,
                      convert::Threading threading) {
  const std::int64_t n_words = bitmap_words(n);
  EDGETRAIN_GUARD_DISJOINT(
      "scatter_nonzeros",
      {packed, popcount_words_scalar(bitmap, n_words)},
      {reinterpret_cast<const float*>(bitmap), n_words * 2}, {dst, n});
  if (threading == convert::Threading::Serial || n_words <= kChunkWords) {
    scatter_chunk(packed, bitmap, n, 0, n_words, dst);
    return;
  }
  std::vector<std::int64_t> offsets;
  chunk_offsets(bitmap, n_words, offsets, threading);
  const std::int64_t nc = num_chunks(n_words);
  parallel_for(0, nc, 1, [&](std::int64_t cb, std::int64_t ce) {
    for (std::int64_t c = cb; c < ce; ++c) {
      const std::int64_t wb = c * kChunkWords;
      const std::int64_t we = std::min(n_words, wb + kChunkWords);
      scatter_chunk(packed + offsets[static_cast<std::size_t>(c)], bitmap, n,
                    wb, we, dst);
    }
  });
}

}  // namespace edgetrain::sparse
