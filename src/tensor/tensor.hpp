// edgetrain: dense float32 tensor with tracked storage.
//
// The substrate deliberately supports exactly what CNN training needs:
// contiguous row-major float tensors of rank <= 4, value semantics with
// shared storage (cheap copies, explicit clone()), and allocation routed
// through MemoryTracker so that experiments can measure live bytes.
#pragma once

#include <cassert>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "tensor/alloc.hpp"

namespace edgetrain {

/// Tensor shape: up to 4 dimensions, row-major.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::int64_t> dims) : dims_(dims) {}
  explicit Shape(std::vector<std::int64_t> dims) : dims_(std::move(dims)) {}

  [[nodiscard]] int rank() const noexcept { return static_cast<int>(dims_.size()); }
  [[nodiscard]] std::int64_t operator[](int i) const { return dims_.at(static_cast<std::size_t>(i)); }
  [[nodiscard]] std::int64_t numel() const noexcept {
    std::int64_t n = 1;
    for (const std::int64_t d : dims_) n *= d;
    return n;
  }
  [[nodiscard]] const std::vector<std::int64_t>& dims() const noexcept { return dims_; }
  [[nodiscard]] bool operator==(const Shape& other) const noexcept = default;
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::int64_t> dims_;
};

namespace detail {
/// Reference-counted, tracker-accounted float buffer.
class Storage {
 public:
  explicit Storage(std::size_t numel);
  ~Storage();
  Storage(const Storage&) = delete;
  Storage& operator=(const Storage&) = delete;

  [[nodiscard]] float* data() noexcept { return data_.get(); }
  [[nodiscard]] const float* data() const noexcept { return data_.get(); }
  [[nodiscard]] std::size_t numel() const noexcept { return numel_; }

 private:
  std::unique_ptr<float[]> data_;
  std::size_t numel_;
};
}  // namespace detail

/// Dense float32 tensor. Copying shares storage; use clone() for a deep copy.
/// A default-constructed Tensor is "empty" (no storage); empty tensors are
/// used as "no value" markers by the executor and layers.
class Tensor {
 public:
  Tensor() = default;

  /// Uninitialised tensor of the given shape.
  static Tensor empty(const Shape& shape);
  /// Zero-filled tensor.
  static Tensor zeros(const Shape& shape);
  /// Constant-filled tensor.
  static Tensor full(const Shape& shape, float value);
  /// I.i.d. N(0, stddev^2) entries from @p rng.
  static Tensor randn(const Shape& shape, std::mt19937& rng, float stddev = 1.0F);
  /// Uniform[lo, hi) entries from @p rng.
  static Tensor uniform(const Shape& shape, std::mt19937& rng, float lo, float hi);
  /// 1-D tensor from explicit values.
  static Tensor from_values(std::initializer_list<float> values);

  [[nodiscard]] bool defined() const noexcept { return storage_ != nullptr; }
  [[nodiscard]] const Shape& shape() const noexcept { return shape_; }
  [[nodiscard]] std::int64_t numel() const noexcept { return shape_.numel(); }
  [[nodiscard]] std::size_t bytes() const noexcept {
    return static_cast<std::size_t>(numel()) * sizeof(float);
  }

  [[nodiscard]] float* data() {
    assert(defined());
    return storage_->data();
  }
  [[nodiscard]] const float* data() const {
    assert(defined());
    return storage_->data();
  }

  [[nodiscard]] float& at(std::int64_t i) { return data()[i]; }
  [[nodiscard]] float at(std::int64_t i) const { return data()[i]; }

  /// Deep copy with fresh storage.
  [[nodiscard]] Tensor clone() const;

  /// Same storage, different shape (numel must match).
  [[nodiscard]] Tensor reshaped(const Shape& new_shape) const;

  /// Releases this handle's reference to the storage.
  void reset() noexcept {
    storage_.reset();
    shape_ = Shape{};
  }

  /// Number of Tensor handles sharing this storage (0 when empty). Used by
  /// the shadow-memory guards to poison buffers only when the last handle
  /// releases them.
  [[nodiscard]] long storage_use_count() const noexcept {
    return storage_.use_count();
  }

  void fill(float value);
  /// this += other (shapes must match).
  void add_(const Tensor& other);
  /// this += alpha * other.
  void axpy_(float alpha, const Tensor& other);
  /// this *= alpha.
  void scale_(float alpha);

  [[nodiscard]] float sum() const;
  [[nodiscard]] float max_abs() const;
  /// Max |a - b| over all entries; shapes must match.
  [[nodiscard]] static float max_abs_diff(const Tensor& a, const Tensor& b);

 private:
  Tensor(std::shared_ptr<detail::Storage> storage, Shape shape)
      : storage_(std::move(storage)), shape_(std::move(shape)) {}

  std::shared_ptr<detail::Storage> storage_;
  Shape shape_;
};

}  // namespace edgetrain
