// edgetrain: shadow-memory guards for scratch arenas and checkpoint slots.
//
// Debug-build instrumentation (CMake -DEDGETRAIN_GUARDS=ON) that makes the
// two classes of memory bug this codebase is structurally exposed to fail
// loudly instead of corrupting training:
//
//   * buffer overflow past a Workspace scratch span -- kernels size their
//     im2col/packing buffers by hand; an off-by-one write lands in the
//     *next* kernel's scratch and shows up as a wrong gradient three layers
//     away. With guards on, every span is followed by a canary zone that
//     Workspace::rewind verifies.
//   * use-after-release -- a stale pointer into a rewound arena region or a
//     dropped checkpoint slot reads whatever the next kernel left there.
//     With guards on, released regions are poisoned with a recognisable
//     quiet-NaN pattern, so stale reads produce NaNs (and tests can assert
//     poisoning directly with is_poison).
//
// The module also provides the aliasing checker used at parallel_for kernel
// entries: buffers handed to concurrently executing chunks must be pairwise
// disjoint, or two workers race on the overlap. EDGETRAIN_GUARD_DISJOINT
// compiles to nothing in release builds; all guard state lives behind the
// same macro, so release builds pay zero bytes and zero cycles.
#pragma once

#include <cstdint>
#include <initializer_list>

namespace edgetrain::guards {

#if defined(EDGETRAIN_GUARDS)
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

/// Canary / poison bit patterns: quiet NaNs with distinctive payloads, so
/// they are inert in comparisons, propagate through arithmetic, and are
/// recognisable in a debugger's hex view.
inline constexpr std::uint32_t kCanaryBits = 0x7FC0'CAFEU;
inline constexpr std::uint32_t kPoisonBits = 0x7FC0'DEADU;

/// Poison byte for encoded (non-float) buffers -- compressed checkpoint
/// blobs are opaque byte streams, so the float quiet-NaN pattern does not
/// apply; a released blob is filled with this byte instead.
inline constexpr std::uint8_t kPoisonByte = 0xDD;

/// Number of guard floats after every Workspace span (one 64-byte line).
inline constexpr std::int64_t kCanaryFloats = 16;

/// Fills @p count floats with the given bit pattern.
void paint(float* ptr, std::int64_t count, std::uint32_t bits);

/// Fills @p count bytes with kPoisonByte (counts as one poison fill, like
/// paint with kPoisonBits): stale reads of a released encoded checkpoint
/// blob see a recognisable pattern, never leftover plaintext.
void paint_bytes(std::uint8_t* ptr, std::int64_t count);

/// True when all @p count bytes carry kPoisonByte.
[[nodiscard]] bool all_poison_bytes(const std::uint8_t* ptr,
                                    std::int64_t count);

/// True when all @p count floats carry exactly the given bit pattern.
[[nodiscard]] bool all_match(const float* ptr, std::int64_t count,
                             std::uint32_t bits);

/// True when @p value is the poison pattern (bitwise, not isnan).
[[nodiscard]] bool is_poison(float value);

/// Number of poison fills performed so far (process-wide). Lets tests
/// assert that a release path poisoned its buffer without dereferencing
/// memory that is about to be freed.
[[nodiscard]] std::int64_t poison_fill_count() noexcept;

/// Guard-failure hook. The default handler prints the message to stderr
/// and aborts; tests install a throwing handler to assert detection.
using FailureHandler = void (*)(const char* message);
FailureHandler set_failure_handler(FailureHandler handler) noexcept;

/// Reports a guard violation through the installed handler. If the handler
/// returns, aborts: guard violations are never continuable.
[[noreturn]] void fail(const char* message);

/// One kernel buffer for the aliasing checker.
struct Span {
  const float* ptr = nullptr;
  std::int64_t numel = 0;
};

/// Verifies the spans are pairwise non-overlapping (null/empty spans are
/// ignored); calls fail() naming @p what otherwise. Used at the entry of
/// kernels whose parallel_for chunks write the spans concurrently.
void assert_disjoint(const char* what, std::initializer_list<Span> spans);

}  // namespace edgetrain::guards

#if defined(EDGETRAIN_GUARDS)
#define EDGETRAIN_GUARD_DISJOINT(what, ...) \
  ::edgetrain::guards::assert_disjoint((what), {__VA_ARGS__})
#else
#define EDGETRAIN_GUARD_DISJOINT(what, ...) ((void)0)
#endif
