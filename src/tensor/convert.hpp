// edgetrain: bulk precision-conversion and byte-plane kernels.
//
// The slot-compression codecs (core/slot_codec.hpp) move checkpointed
// activations between fp32 and half-width encodings on every Store/Restore
// of a compressed slot, and a Revolve schedule touches each checkpoint
// several times per training step -- so these conversions sit on the hot
// path next to the GEMM. The kernels here are branchless bit-manipulation
// formulations that GCC auto-vectorises under the same target_clones
// v3/v4 dispatch as tensor/ops.cpp (no intrinsics), parallelised with
// parallel_for over cache-friendly grains.
//
//   * fp32 <-> IEEE 754 binary16, round-to-nearest-even. Bit-identical to
//     the scalar reference core::float_to_half/half_to_float (NaNs collapse
//     to the same sign-preserving quiet NaN 0x7E00); property-tested
//     exhaustively over all 2^16 half patterns and against the reference
//     on random and adversarial floats.
//   * fp32 <-> bfloat16, round-to-nearest-even truncation (NaNs quieted).
//   * byte-plane split/merge: transposes n 32-bit words into 4 planes of n
//     bytes (plane b holds byte b of every word). Post-ReLU activations
//     are zero-heavy and float exponents cluster, so the planes are far
//     more RLE-compressible than the interleaved bytes; this is the
//     shuffle half of the lossless slot codec.
#pragma once

#include <cstdint>

namespace edgetrain::convert {

/// fp32 -> binary16 with round-to-nearest-even; branchless, safe to call
/// from vectorised loops. NaN -> sign | 0x7E00, overflow -> +-inf.
[[nodiscard]] std::uint16_t fp32_to_fp16_scalar(float value) noexcept;

/// binary16 -> fp32 (exact; subnormals and inf/NaN included).
[[nodiscard]] float fp16_to_fp32_scalar(std::uint16_t value) noexcept;

/// fp32 -> bfloat16 with round-to-nearest-even; NaN payloads are quieted.
[[nodiscard]] std::uint16_t fp32_to_bf16_scalar(float value) noexcept;

/// bfloat16 -> fp32 (exact: bf16 is a truncated fp32).
[[nodiscard]] float bf16_to_fp32_scalar(std::uint16_t value) noexcept;

/// Thread placement for the bulk kernels. Parallel uses the global
/// ThreadPool (the default; call only from the training thread -- the pool
/// is not reentrant across callers). Serial keeps the work on the calling
/// thread, which is what the async store's background IO thread must use:
/// its decompression overlaps recompute precisely because it does NOT
/// borrow the compute pool.
enum class Threading : std::uint8_t { Parallel, Serial };

/// Bulk conversions, dst[i] = convert(src[i]) for i in [0, n).
/// src and dst must not overlap.
void fp32_to_fp16(const float* src, std::uint16_t* dst, std::int64_t n,
                  Threading threading = Threading::Parallel);
void fp16_to_fp32(const std::uint16_t* src, float* dst, std::int64_t n,
                  Threading threading = Threading::Parallel);
void fp32_to_bf16(const float* src, std::uint16_t* dst, std::int64_t n,
                  Threading threading = Threading::Parallel);
void bf16_to_fp32(const std::uint16_t* src, float* dst, std::int64_t n,
                  Threading threading = Threading::Parallel);

/// Splits @p n_words 32-bit words (4 * n_words bytes at @p src) into four
/// byte planes: dst[b * n_words + i] = src[4 * i + b]. src/dst disjoint.
void byte_plane_split(const std::uint8_t* src, std::int64_t n_words,
                      std::uint8_t* dst,
                      Threading threading = Threading::Parallel);

/// Inverse of byte_plane_split: dst[4 * i + b] = src[b * n_words + i].
void byte_plane_merge(const std::uint8_t* src, std::int64_t n_words,
                      std::uint8_t* dst,
                      Threading threading = Threading::Parallel);

}  // namespace edgetrain::convert
