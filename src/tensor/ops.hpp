// edgetrain: CNN compute kernels (forward and backward).
//
// All kernels operate on NCHW float tensors and are free functions so that
// layers stay thin. Convolution uses im2col + GEMM; GEMM, conv and batch
// norm parallelise over the global thread pool. Backward kernels implement
// the exact adjoints of the forwards (validated by numerical grad-checks in
// tests/nn/gradcheck_test.cpp).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "tensor/tensor.hpp"

namespace edgetrain::ops {

/// Output spatial size of a conv/pool: floor((in + 2*pad - kernel)/stride)+1.
[[nodiscard]] std::int64_t conv_out_size(std::int64_t in, std::int64_t kernel,
                                         std::int64_t stride,
                                         std::int64_t pad) noexcept;

// ---------------------------------------------------------------------------
// GEMM
// ---------------------------------------------------------------------------

/// C[M,N] = alpha * op(A) * op(B) + beta * C, row-major.
/// op(A) is A[M,K] if !trans_a, else A[K,M] read transposed (same for B).
///
/// Cache-blocked and packed: op(A)/op(B) panels are copied into contiguous
/// tiles in the per-thread Workspace arena and consumed by a register-tiled
/// micro-kernel; work is parallelised 2-D over (M-block x N-block) tasks on
/// the global ThreadPool. Every C tile has exactly one writer with a fixed
/// k-accumulation order, so output is bit-for-bit reproducible across runs
/// and worker counts. Steady state allocates nothing (arena reuse).
void gemm(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
          std::int64_t k, float alpha, const float* a, const float* b,
          float beta, float* c);

/// gemm with bfloat16 operands and fp32 accumulation: both panels widen to
/// fp32 during packing and run through the *same* blocked micro-kernel as
/// the fp32 gemm, so the result is bit-identical to ops::gemm called on
/// pre-widened copies of a and b -- and inherits its determinism across
/// thread counts. a/b hold bf16 bit patterns (see tensor/convert.hpp).
void gemm_bf16(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
               std::int64_t k, float alpha, const std::uint16_t* a,
               const std::uint16_t* b, float beta, float* c);

/// Compute precision of ops::gemm on the *calling thread*. In Bf16 mode
/// every gemm call rounds both operands to bfloat16 (round-to-nearest-even,
/// into Workspace scratch) and accumulates in fp32 -- the mixed-precision
/// recipe for master-weight training: parameters and optimizer state stay
/// fp32, only the GEMM operands are rounded. Conv and linear layers (and
/// their backwards) all funnel through gemm, so scoping a training step
/// switches the whole chain.
enum class GemmPrecision : std::uint8_t { Fp32, Bf16 };

void set_gemm_precision(GemmPrecision mode) noexcept;
[[nodiscard]] GemmPrecision gemm_precision() noexcept;

/// RAII scope for GemmPrecision; restores the previous mode on exit.
class ScopedGemmPrecision {
 public:
  explicit ScopedGemmPrecision(GemmPrecision mode) noexcept
      : previous_(gemm_precision()) {
    set_gemm_precision(mode);
  }
  ~ScopedGemmPrecision() { set_gemm_precision(previous_); }
  ScopedGemmPrecision(const ScopedGemmPrecision&) = delete;
  ScopedGemmPrecision& operator=(const ScopedGemmPrecision&) = delete;

 private:
  GemmPrecision previous_;
};

// ---------------------------------------------------------------------------
// Convolution (im2col + GEMM)
// ---------------------------------------------------------------------------

struct ConvParams {
  std::int64_t stride = 1;
  std::int64_t pad = 0;
};

/// x[N,Cin,H,W] (*) w[Cout,Cin,kh,kw] + bias[Cout] -> y[N,Cout,Ho,Wo].
/// @p bias may be undefined (no bias).
[[nodiscard]] Tensor conv2d_forward(const Tensor& x, const Tensor& w,
                                    const Tensor& bias, const ConvParams& p);

struct Conv2dGrads {
  Tensor grad_x;
  Tensor grad_w;
  Tensor grad_b;  // undefined when the forward had no bias
};

/// Adjoint of conv2d_forward. @p with_bias selects whether grad_b is formed.
[[nodiscard]] Conv2dGrads conv2d_backward(const Tensor& grad_y,
                                          const Tensor& x, const Tensor& w,
                                          const ConvParams& p, bool with_bias);

/// Adjoint of conv2d_forward that *accumulates* parameter gradients in
/// place: grad_w_acc += dL/dw and, when non-null, grad_b_acc += dL/db.
/// Returns dL/dx. Skips the temporary grad_w tensor (and the extra add
/// pass) that the struct-returning overload pays per step; all scratch is
/// drawn from the per-thread Workspace.
[[nodiscard]] Tensor conv2d_backward_acc(const Tensor& grad_y, const Tensor& x,
                                         const Tensor& w, const ConvParams& p,
                                         Tensor& grad_w_acc,
                                         Tensor* grad_b_acc);

/// Lowers one image x[C,H,W] into col[C*kh*kw, Ho*Wo]; exposed for tests.
void im2col(const float* x, std::int64_t channels, std::int64_t h,
            std::int64_t w, std::int64_t kh, std::int64_t kw,
            const ConvParams& p, float* col);

/// Adjoint of im2col: accumulates col back into x (x must be pre-zeroed).
void col2im(const float* col, std::int64_t channels, std::int64_t h,
            std::int64_t w, std::int64_t kh, std::int64_t kw,
            const ConvParams& p, float* x);

// ---------------------------------------------------------------------------
// Activation / pooling
// ---------------------------------------------------------------------------

/// y = max(x, 0).
[[nodiscard]] Tensor relu_forward(const Tensor& x);
/// grad_x = grad_y * (y > 0). Uses the *output* (valid since y>0 iff x>0).
[[nodiscard]] Tensor relu_backward(const Tensor& grad_y, const Tensor& y);

struct MaxPoolResult {
  Tensor y;
  std::vector<std::int32_t> argmax;  // flat input offset per output element
};

/// Max pooling with kernel @p k, stride and pad from @p p; -inf padding.
[[nodiscard]] MaxPoolResult maxpool2d_forward(const Tensor& x, std::int64_t k,
                                              const ConvParams& p);
[[nodiscard]] Tensor maxpool2d_backward(const Tensor& grad_y,
                                        const std::vector<std::int32_t>& argmax,
                                        const Shape& x_shape);

/// Global average pool: x[N,C,H,W] -> y[N,C].
[[nodiscard]] Tensor global_avgpool_forward(const Tensor& x);
[[nodiscard]] Tensor global_avgpool_backward(const Tensor& grad_y,
                                             const Shape& x_shape);

/// Windowed average pooling (count includes padding, PyTorch default).
[[nodiscard]] Tensor avgpool2d_forward(const Tensor& x, std::int64_t k,
                                       const ConvParams& p);
[[nodiscard]] Tensor avgpool2d_backward(const Tensor& grad_y, std::int64_t k,
                                        const ConvParams& p,
                                        const Shape& x_shape);

/// y = 1 / (1 + exp(-x)).
[[nodiscard]] Tensor sigmoid_forward(const Tensor& x);
/// grad_x = grad_y * y * (1 - y), from the saved output.
[[nodiscard]] Tensor sigmoid_backward(const Tensor& grad_y, const Tensor& y);

/// y = tanh(x).
[[nodiscard]] Tensor tanh_forward(const Tensor& x);
/// grad_x = grad_y * (1 - y^2), from the saved output.
[[nodiscard]] Tensor tanh_backward(const Tensor& grad_y, const Tensor& y);

/// Inverted dropout driven by a counter-based generator: element i keeps
/// its value (scaled by 1/(1-rate)) iff hash(seed, i) maps above rate.
/// Deterministic in (seed, i): recomputation with the same seed reproduces
/// the identical mask, which is what checkpointed training requires.
[[nodiscard]] Tensor dropout_forward(const Tensor& x, float rate,
                                     std::uint64_t seed);
[[nodiscard]] Tensor dropout_backward(const Tensor& grad_y, float rate,
                                      std::uint64_t seed);

// ---------------------------------------------------------------------------
// Linear
// ---------------------------------------------------------------------------

/// y[N,out] = x[N,in] * w[out,in]^T + b[out] (b optional).
[[nodiscard]] Tensor linear_forward(const Tensor& x, const Tensor& w,
                                    const Tensor& b);

struct LinearGrads {
  Tensor grad_x;
  Tensor grad_w;
  Tensor grad_b;
};

[[nodiscard]] LinearGrads linear_backward(const Tensor& grad_y,
                                          const Tensor& x, const Tensor& w,
                                          bool with_bias);

/// Like linear_backward but accumulates grad_w_acc += dL/dw (and optionally
/// grad_b_acc += dL/db) in place; returns dL/dx.
[[nodiscard]] Tensor linear_backward_acc(const Tensor& grad_y, const Tensor& x,
                                         const Tensor& w, Tensor& grad_w_acc,
                                         Tensor* grad_b_acc);

// ---------------------------------------------------------------------------
// Batch normalisation (2d, per-channel)
// ---------------------------------------------------------------------------

struct BatchNormState {
  Tensor y;
  Tensor mean;     // [C] batch mean used in the forward
  Tensor inv_std;  // [C] 1/sqrt(var + eps)
};

/// Training-mode forward: normalises with batch statistics.
/// When @p update_running is true, running_mean/var (shape [C]) are updated
/// in place with @p momentum; recomputation passes set it false so that
/// re-forwarding does not double-update the statistics.
[[nodiscard]] BatchNormState batchnorm2d_forward(
    const Tensor& x, const Tensor& gamma, const Tensor& beta, Tensor& running_mean,
    Tensor& running_var, float momentum, float eps, bool update_running);

/// Inference-mode forward: normalises with running statistics.
[[nodiscard]] Tensor batchnorm2d_infer(const Tensor& x, const Tensor& gamma,
                                       const Tensor& beta,
                                       const Tensor& running_mean,
                                       const Tensor& running_var, float eps);

struct BatchNormGrads {
  Tensor grad_x;
  Tensor grad_gamma;
  Tensor grad_beta;
};

[[nodiscard]] BatchNormGrads batchnorm2d_backward(const Tensor& grad_y,
                                                  const Tensor& x,
                                                  const Tensor& gamma,
                                                  const BatchNormState& state);

// ---------------------------------------------------------------------------
// Loss
// ---------------------------------------------------------------------------

struct SoftmaxXentResult {
  float loss = 0.0F;  // mean over the batch
  Tensor probs;       // [N,K] softmax probabilities (saved for backward)
};

/// Mean softmax cross-entropy of logits[N,K] against integer labels[N].
[[nodiscard]] SoftmaxXentResult softmax_xent_forward(
    const Tensor& logits, const std::vector<std::int32_t>& labels);

/// grad_logits = (probs - onehot(labels)) / N.
[[nodiscard]] Tensor softmax_xent_backward(
    const Tensor& probs, const std::vector<std::int32_t>& labels);

/// Row-wise argmax of logits[N,K].
[[nodiscard]] std::vector<std::int32_t> argmax_rows(const Tensor& logits);

/// Row-wise softmax with temperature: softmax(logits / T).
[[nodiscard]] Tensor softmax_rows(const Tensor& logits, float temperature);

struct DistillResult {
  float loss = 0.0F;  ///< alpha * CE + (1-alpha) * T^2 * KL
  Tensor grad_student_logits;
};

/// Hinton-style knowledge distillation (the paper's citation [7] uses the
/// same student-teacher loss family): combines hard-label cross-entropy
/// with the KL divergence to the teacher's temperature-softened
/// distribution, with the standard T^2 gradient scaling.
[[nodiscard]] DistillResult distill_loss(const Tensor& student_logits,
                                         const Tensor& teacher_logits,
                                         const std::vector<std::int32_t>& labels,
                                         float alpha, float temperature);

}  // namespace edgetrain::ops
