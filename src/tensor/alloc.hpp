// edgetrain: byte-accurate memory tracking for training-footprint experiments.
//
// Every Tensor allocation in the library is routed through MemoryTracker so
// that the quantity the paper tabulates (peak bytes held during a training
// step) can be *measured*, not only modelled. The tracker is a process-wide
// singleton with atomic counters; ScopedPeakProbe measures the peak over a
// region (e.g. one checkpointed backpropagation) without disturbing global
// statistics of other threads.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace edgetrain {

/// Process-wide allocation statistics for tensor storage.
///
/// Bytes are split into two categories so that paper-facing tables can
/// include or exclude kernel scratch explicitly:
///  - *persistent*: Tensor storage -- weights, activations, checkpoints.
///    This is the quantity Tables I-III of the paper tabulate.
///  - *scratch*: per-thread Workspace arenas -- GEMM packing panels and
///    im2col/col2im buffers. Bounded, reused across steps, and zero new
///    allocations in steady-state training.
///
/// The legacy accessors (current_bytes, peak_bytes, allocation_count) keep
/// their original persistent-only semantics; scratch has parallel accessors
/// and total_* reports the inclusive view.
///
/// Thread-safe: counters are atomics; peaks are maintained with CAS loops.
class MemoryTracker {
 public:
  /// The global tracker used by all Tensor storage.
  static MemoryTracker& instance() noexcept;

  /// Record a persistent (Tensor storage) allocation of @p bytes.
  void on_alloc(std::size_t bytes) noexcept;

  /// Record a persistent deallocation of @p bytes.
  void on_free(std::size_t bytes) noexcept;

  /// Record a scratch (Workspace arena) allocation of @p bytes.
  void on_scratch_alloc(std::size_t bytes) noexcept;

  /// Record a scratch deallocation of @p bytes.
  void on_scratch_free(std::size_t bytes) noexcept;

  /// Persistent bytes currently live.
  [[nodiscard]] std::size_t current_bytes() const noexcept {
    return current_.load(std::memory_order_relaxed);
  }

  /// Scratch bytes currently live.
  [[nodiscard]] std::size_t scratch_bytes() const noexcept {
    return scratch_current_.load(std::memory_order_relaxed);
  }

  /// Persistent + scratch bytes currently live.
  [[nodiscard]] std::size_t total_bytes() const noexcept {
    return current_bytes() + scratch_bytes();
  }

  /// Persistent high-water mark since construction or the last reset_peak().
  [[nodiscard]] std::size_t peak_bytes() const noexcept {
    return peak_.load(std::memory_order_relaxed);
  }

  /// Scratch high-water mark since construction or the last reset_peak().
  [[nodiscard]] std::size_t scratch_peak_bytes() const noexcept {
    return scratch_peak_.load(std::memory_order_relaxed);
  }

  /// High-water mark of persistent + scratch live bytes (tracked jointly,
  /// not the sum of the two individual peaks).
  [[nodiscard]] std::size_t total_peak_bytes() const noexcept {
    return total_peak_.load(std::memory_order_relaxed);
  }

  /// Number of persistent allocations since construction.
  [[nodiscard]] std::uint64_t allocation_count() const noexcept {
    return allocations_.load(std::memory_order_relaxed);
  }

  /// Number of scratch allocations since construction. Flat across steady-
  /// state training steps: workspaces grow only while warming up.
  [[nodiscard]] std::uint64_t scratch_allocation_count() const noexcept {
    return scratch_allocations_.load(std::memory_order_relaxed);
  }

  /// Reset all high-water marks to the current live sizes.
  void reset_peak() noexcept;

 private:
  void bump_total_peak() noexcept;

  // memory_order_relaxed throughout is intentional, not an optimisation
  // oversight: these are pure statistics counters. No thread ever uses a
  // counter value to decide that *other* memory is safe to read (nothing is
  // published through them), so the only property needed is atomicity of
  // each individual update. The peaks tolerate a documented, benign
  // cross-thread approximation: a concurrent alloc/free pair can make
  // total_peak_ momentarily over- or under-shoot by the in-flight delta,
  // which is why ScopedPeakProbe is specified for single-threaded regions.
  std::atomic<std::size_t> current_{0};
  std::atomic<std::size_t> peak_{0};
  std::atomic<std::uint64_t> allocations_{0};
  std::atomic<std::size_t> scratch_current_{0};
  std::atomic<std::size_t> scratch_peak_{0};
  std::atomic<std::uint64_t> scratch_allocations_{0};
  std::atomic<std::size_t> total_peak_{0};
};

/// Measures the peak number of live bytes over a lexical region.
///
/// On construction records the current live size as the baseline and resets
/// the global peak; peak_bytes() then reports the high-water mark reached
/// since construction. Intended for single-threaded measurement regions
/// (benchmarks, tests).
class ScopedPeakProbe {
 public:
  ScopedPeakProbe() noexcept;

  ScopedPeakProbe(const ScopedPeakProbe&) = delete;
  ScopedPeakProbe& operator=(const ScopedPeakProbe&) = delete;

  /// Bytes live when the probe was created.
  [[nodiscard]] std::size_t baseline_bytes() const noexcept { return baseline_; }

  /// High-water mark of live bytes since the probe was created.
  [[nodiscard]] std::size_t peak_bytes() const noexcept;

  /// Peak minus baseline: the additional memory the region needed.
  [[nodiscard]] std::size_t peak_over_baseline() const noexcept;

 private:
  std::size_t baseline_{0};
};

}  // namespace edgetrain
