// edgetrain: byte-accurate memory tracking for training-footprint experiments.
//
// Every Tensor allocation in the library is routed through MemoryTracker so
// that the quantity the paper tabulates (peak bytes held during a training
// step) can be *measured*, not only modelled. The tracker is a process-wide
// singleton with atomic counters; ScopedPeakProbe measures the peak over a
// region (e.g. one checkpointed backpropagation) without disturbing global
// statistics of other threads.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace edgetrain {

/// Process-wide allocation statistics for tensor storage.
///
/// Thread-safe: counters are atomics; the peak is maintained with a CAS loop.
class MemoryTracker {
 public:
  /// The global tracker used by all Tensor storage.
  static MemoryTracker& instance() noexcept;

  /// Record an allocation of @p bytes.
  void on_alloc(std::size_t bytes) noexcept;

  /// Record a deallocation of @p bytes.
  void on_free(std::size_t bytes) noexcept;

  /// Bytes currently live.
  [[nodiscard]] std::size_t current_bytes() const noexcept {
    return current_.load(std::memory_order_relaxed);
  }

  /// High-water mark since construction or the last reset_peak().
  [[nodiscard]] std::size_t peak_bytes() const noexcept {
    return peak_.load(std::memory_order_relaxed);
  }

  /// Number of allocations since construction.
  [[nodiscard]] std::uint64_t allocation_count() const noexcept {
    return allocations_.load(std::memory_order_relaxed);
  }

  /// Reset the high-water mark to the current live size.
  void reset_peak() noexcept;

 private:
  std::atomic<std::size_t> current_{0};
  std::atomic<std::size_t> peak_{0};
  std::atomic<std::uint64_t> allocations_{0};
};

/// Measures the peak number of live bytes over a lexical region.
///
/// On construction records the current live size as the baseline and resets
/// the global peak; peak_bytes() then reports the high-water mark reached
/// since construction. Intended for single-threaded measurement regions
/// (benchmarks, tests).
class ScopedPeakProbe {
 public:
  ScopedPeakProbe() noexcept;

  ScopedPeakProbe(const ScopedPeakProbe&) = delete;
  ScopedPeakProbe& operator=(const ScopedPeakProbe&) = delete;

  /// Bytes live when the probe was created.
  [[nodiscard]] std::size_t baseline_bytes() const noexcept { return baseline_; }

  /// High-water mark of live bytes since the probe was created.
  [[nodiscard]] std::size_t peak_bytes() const noexcept;

  /// Peak minus baseline: the additional memory the region needed.
  [[nodiscard]] std::size_t peak_over_baseline() const noexcept;

 private:
  std::size_t baseline_{0};
};

}  // namespace edgetrain
