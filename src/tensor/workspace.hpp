// edgetrain: per-thread scratch arenas for kernel workspaces.
//
// Training repeats the same conv/GEMM shapes every step (and Revolve-style
// recomputation repeats them *within* a step, multiplied by the recompute
// factor rho). Allocating im2col buffers and GEMM packing panels from the
// heap on every call both throttles the hot path and pollutes the
// MemoryTracker numbers the paper tabulates. A Workspace is a bump arena,
// one per thread (workers of the global ThreadPool each own one through
// tls()): kernels take a WorkspaceScope, alloc() what they need, and the
// scope rewinds on exit. Capacity is retained between calls, so after the
// first training step the arena has seen the step's high-water mark and
// steady-state training performs zero scratch heap allocations
// (MemoryTracker::scratch_allocation_count stays flat).
//
// Growth uses chained blocks so that spans handed out earlier in a scope
// stay valid while the arena grows; when a scope rewinds to empty, the
// chain is consolidated into one contiguous block sized for everything the
// scope used, which is what makes the steady state allocation-free.
//
// Arena bytes are accounted to MemoryTracker's *scratch* category, keeping
// the persistent numbers (weights, activations, checkpoints -- the paper's
// Tables I-III quantity) clean; see alloc.hpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace edgetrain {

class Workspace {
 public:
  /// Position in the arena; obtained from mark(), restored by rewind().
  struct Marker {
    std::size_t block = 0;
    std::size_t used = 0;
  };

  Workspace() = default;
  ~Workspace();

  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// The calling thread's arena. Distinct per thread; pool workers keep
  /// theirs alive for the lifetime of the pool, so capacity is reused
  /// across kernel invocations.
  [[nodiscard]] static Workspace& tls();

  /// @p numel floats of uninitialised scratch, 64-byte aligned. The span
  /// stays valid until the enclosing scope rewinds past it, even if the
  /// arena grows in between.
  [[nodiscard]] float* alloc(std::int64_t numel);

  [[nodiscard]] Marker mark() const noexcept;

  /// Releases everything allocated after @p marker (capacity is retained).
  /// Rewinding to an empty arena consolidates chained blocks into one.
  void rewind(const Marker& marker);

  /// Total backing capacity in bytes (scratch-accounted).
  [[nodiscard]] std::size_t capacity_bytes() const noexcept;

  /// Frees all backing blocks (e.g. before a long idle period). The arena
  /// stays usable and will regrow on demand.
  void release();

 private:
  struct AlignedFree {
    void operator()(float* p) const noexcept;
  };

  struct Block {
    std::unique_ptr<float[], AlignedFree> data;
    std::size_t capacity = 0;  // floats
    std::size_t used = 0;      // floats
  };

  Block make_block(std::size_t numel) const;
  void free_block(Block& block) const;

  std::vector<Block> blocks_;
  std::size_t active_ = 0;  // blocks_[active_] is the current bump target

#if defined(EDGETRAIN_GUARDS)
  /// One live guarded span: a canary line sits at data + offset + payload.
  /// Records form a stack (allocation order); rewind pops and verifies.
  struct GuardRecord {
    std::size_t block = 0;
    std::size_t offset = 0;   // floats from block start to the span
    std::size_t payload = 0;  // span floats (rounded); canary follows
  };
  void guard_on_alloc(std::size_t block, std::size_t offset,
                      std::size_t payload);
  void guard_on_rewind(const Marker& marker);
  std::vector<GuardRecord> guard_records_;
#else
  // Inline no-ops: release builds pay zero bytes and zero cycles.
  void guard_on_alloc(std::size_t, std::size_t, std::size_t) noexcept {}
  void guard_on_rewind(const Marker&) noexcept {}
#endif
};

/// RAII scope: marks the arena on construction, rewinds on destruction.
class WorkspaceScope {
 public:
  explicit WorkspaceScope(Workspace& ws) noexcept
      : ws_(ws), marker_(ws.mark()) {}
  ~WorkspaceScope() { ws_.rewind(marker_); }

  WorkspaceScope(const WorkspaceScope&) = delete;
  WorkspaceScope& operator=(const WorkspaceScope&) = delete;

 private:
  Workspace& ws_;
  Workspace::Marker marker_;
};

}  // namespace edgetrain
