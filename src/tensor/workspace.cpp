#include "tensor/workspace.hpp"

#include <algorithm>
#include <new>

#include "tensor/alloc.hpp"
#include "tensor/guards.hpp"

namespace edgetrain {

namespace {
constexpr std::size_t kAlignFloats = 16;  // 64-byte span alignment
constexpr std::size_t kMinBlockFloats = 1U << 14;  // 64 KiB floor per block

// With guards on, every span carries a trailing canary line; the alignment
// is preserved because the canary is exactly one alignment unit.
constexpr std::size_t kGuardFloats =
    guards::kEnabled ? static_cast<std::size_t>(guards::kCanaryFloats) : 0;
static_assert(kGuardFloats % kAlignFloats == 0 || kGuardFloats == 0);

std::size_t round_up(std::size_t numel) noexcept {
  return (numel + kAlignFloats - 1) / kAlignFloats * kAlignFloats;
}
}  // namespace

void Workspace::AlignedFree::operator()(float* p) const noexcept {
  ::operator delete[](p, std::align_val_t{kAlignFloats * sizeof(float)});
}

Workspace& Workspace::tls() {
  thread_local Workspace ws;
  return ws;
}

Workspace::~Workspace() { release(); }

Workspace::Block Workspace::make_block(std::size_t numel) const {
  Block block;
  block.capacity = numel;
  block.data.reset(static_cast<float*>(::operator new[](
      numel * sizeof(float), std::align_val_t{kAlignFloats * sizeof(float)})));
  MemoryTracker::instance().on_scratch_alloc(numel * sizeof(float));
  return block;
}

void Workspace::free_block(Block& block) const {
  if (!block.data) return;
  block.data.reset();
  MemoryTracker::instance().on_scratch_free(block.capacity * sizeof(float));
  block.capacity = 0;
  block.used = 0;
}

float* Workspace::alloc(std::int64_t numel) {
  const std::size_t payload = round_up(static_cast<std::size_t>(numel));
  const std::size_t need = payload + kGuardFloats;
  if (blocks_.empty()) {
    blocks_.push_back(make_block(std::max(need, kMinBlockFloats)));
    active_ = 0;
  }
  if (blocks_[active_].capacity - blocks_[active_].used >= need) {
    const std::size_t offset = blocks_[active_].used;
    float* ptr = blocks_[active_].data.get() + offset;
    blocks_[active_].used += need;
    guard_on_alloc(active_, offset, payload);
    return ptr;
  }
  // Overflow: move to a later block. Blocks past the bump point hold no
  // live spans, so they can be restarted from zero.
  while (active_ + 1 < blocks_.size()) {
    ++active_;
    blocks_[active_].used = 0;
    if (blocks_[active_].capacity >= need) {
      blocks_[active_].used = need;
      guard_on_alloc(active_, 0, payload);
      return blocks_[active_].data.get();
    }
  }
  std::size_t total = 0;
  for (const Block& block : blocks_) total += block.capacity;
  blocks_.push_back(make_block(std::max({need, total, kMinBlockFloats})));
  active_ = blocks_.size() - 1;
  blocks_[active_].used = need;
  guard_on_alloc(active_, 0, payload);
  return blocks_[active_].data.get();
}

Workspace::Marker Workspace::mark() const noexcept {
  if (blocks_.empty()) return Marker{};
  return Marker{active_, blocks_[active_].used};
}

void Workspace::rewind(const Marker& marker) {
  if (blocks_.empty()) return;
  guard_on_rewind(marker);
  for (std::size_t i = marker.block + 1; i <= active_; ++i) {
    blocks_[i].used = 0;
  }
  active_ = marker.block;
  blocks_[active_].used = marker.used;
  if (marker.block == 0 && marker.used == 0 && blocks_.size() > 1) {
    // Fully unwound after growing through a chain: consolidate so the next
    // pass of the same shapes fits one block and allocates nothing.
    std::size_t total = 0;
    for (Block& block : blocks_) {
      total += block.capacity;
      free_block(block);
    }
    blocks_.clear();
    blocks_.push_back(make_block(total));
    active_ = 0;
  }
}

std::size_t Workspace::capacity_bytes() const noexcept {
  std::size_t total = 0;
  for (const Block& block : blocks_) total += block.capacity;
  return total * sizeof(float);
}

void Workspace::release() {
  guard_on_rewind(Marker{});
  for (Block& block : blocks_) free_block(block);
  blocks_.clear();
  active_ = 0;
}

#if defined(EDGETRAIN_GUARDS)

void Workspace::guard_on_alloc(std::size_t block, std::size_t offset,
                               std::size_t payload) {
  float* span = blocks_[block].data.get() + offset;
  // Fresh scratch is documented uninitialised: poison it so a kernel that
  // reads before writing produces NaNs instead of stale prior results.
  guards::paint(span, static_cast<std::int64_t>(payload), guards::kPoisonBits);
  guards::paint(span + payload, guards::kCanaryFloats, guards::kCanaryBits);
  guard_records_.push_back(GuardRecord{block, offset, payload});
}

void Workspace::guard_on_rewind(const Marker& marker) {
  while (!guard_records_.empty()) {
    const GuardRecord rec = guard_records_.back();
    const bool released =
        rec.block > marker.block ||
        (rec.block == marker.block && rec.offset >= marker.used);
    if (!released) break;
    // Pop and poison before reporting: a throwing failure handler (tests)
    // must not leave the smashed record behind for the destructor to re-fire
    // on -- that would throw out of ~Workspace.
    guard_records_.pop_back();
    float* span = blocks_[rec.block].data.get() + rec.offset;
    const bool smashed = !guards::all_match(
        span + rec.payload, guards::kCanaryFloats, guards::kCanaryBits);
    // Poison the released region so stale pointers read NaNs.
    guards::paint(span,
                  static_cast<std::int64_t>(rec.payload) +
                      guards::kCanaryFloats,
                  guards::kPoisonBits);
    if (smashed) {
      guards::fail(
          "Workspace canary smashed: a kernel wrote past the end of its "
          "scratch span");
    }
  }
}

#endif  // EDGETRAIN_GUARDS

}  // namespace edgetrain
