// edgetrain: non-owning, non-allocating callable reference.
//
// std::function in the parallel_for hot path costs a potential heap
// allocation and an indirect call through type-erased storage on every
// kernel dispatch. FunctionRef erases the callable down to {object pointer,
// trampoline pointer} -- two words, trivially copyable, never allocating.
// The referenced callable must outlive the FunctionRef; parallel_for blocks
// until completion, so stack lambdas at the call site are always safe.
#pragma once

#include <type_traits>
#include <utility>

namespace edgetrain {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  FunctionRef() = delete;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design, mirrors
  // the conversion callers previously had to std::function.
  FunctionRef(F&& f) noexcept
      : obj_(const_cast<void*>(static_cast<const void*>(std::addressof(f)))),
        call_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_;
  R (*call_)(void*, Args...);
};

}  // namespace edgetrain
