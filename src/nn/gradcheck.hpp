// edgetrain: numerical gradient checking.
//
// Central-difference verification of layer and chain backward passes; the
// foundation of the substrate's correctness test suite.
#pragma once

#include <functional>

#include "nn/layer.hpp"

namespace edgetrain::nn {

struct GradCheckResult {
  float max_abs_error = 0.0F;
  float max_rel_error = 0.0F;
  std::size_t checks = 0;       ///< coordinates compared
  std::size_t violations = 0;   ///< coordinates beyond tolerance
  bool passed = false;
};

/// Checks d sum(w * layer(x)) / d x against central differences, where w is
/// a fixed random cotangent. Also checks all parameter gradients.
/// @p epsilon is the finite-difference step, @p tolerance the max allowed
/// |analytic - numeric| / max(1, |numeric|). Up to @p max_violations
/// coordinates may exceed the tolerance: layers containing ReLUs after
/// batch norm have pre-activations centred at zero, so a few probed
/// coordinates legitimately flip a kink within +-epsilon.
[[nodiscard]] GradCheckResult check_layer(Layer& layer, const Tensor& x,
                                          std::mt19937& rng,
                                          float epsilon = 1e-3F,
                                          float tolerance = 5e-2F,
                                          std::size_t max_violations = 0);

/// Generic scalar-function input-gradient check:
/// @p f maps x to a scalar; @p analytic_grad is d f / d x at x.
[[nodiscard]] GradCheckResult check_function(
    const std::function<float(const Tensor&)>& f, const Tensor& x,
    const Tensor& analytic_grad, float epsilon = 1e-3F,
    float tolerance = 5e-2F);

}  // namespace edgetrain::nn
