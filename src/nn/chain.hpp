// edgetrain: a sequential network as a checkpointable chain.
//
// A LayerChain is an ordered list of layers; each layer is one chain step
// for the schedule executor. Residual blocks are single steps (their skip
// connections stay inside the step), so every network here is a genuine
// linear chain, the structure the paper's LinearResNet analysis assumes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/layer.hpp"

namespace edgetrain::nn {

class LayerChain {
 public:
  LayerChain() = default;
  LayerChain(LayerChain&&) = default;
  LayerChain& operator=(LayerChain&&) = default;

  /// Appends a layer; returns *this for fluent building.
  LayerChain& push(std::unique_ptr<Layer> layer);

  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(layers_.size());
  }
  [[nodiscard]] Layer& layer(int i) { return *layers_[static_cast<std::size_t>(i)]; }
  [[nodiscard]] const Layer& layer(int i) const {
    return *layers_[static_cast<std::size_t>(i)];
  }

  /// Forward through the whole chain (no checkpointing).
  [[nodiscard]] Tensor forward(const Tensor& x, const RunContext& ctx);

  /// Backward through the whole chain; requires a prior saving forward.
  [[nodiscard]] Tensor backward(const Tensor& grad_out);

  /// All parameters of all layers.
  [[nodiscard]] std::vector<ParamRef> params();

  /// All persistent non-trainable buffers of all layers (batch-norm
  /// running statistics). Part of durable model state: suspend/resume
  /// must carry them or eval behaviour diverges after a power cycle.
  [[nodiscard]] std::vector<BufferRef> buffers();

  [[nodiscard]] std::int64_t param_count();

  void zero_grad();
  void clear_saved();

  /// Shape after each step for input shape @p in; result[i] is the output
  /// shape of step i-1 (result[0] == in).
  [[nodiscard]] std::vector<Shape> shapes(const Shape& in) const;

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace edgetrain::nn
