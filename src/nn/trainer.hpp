// edgetrain: high-level training loop.
//
// Bundles the pieces every caller was wiring by hand -- optimizer, chain
// runner, checkpointing schedule, slot store, loss head -- behind one
// configuration struct. The strategy enum covers every scheduler in the
// library, so switching from full storage to Revolve (or spilling
// checkpoints to disk) is a one-line change.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/executor.hpp"
#include "nn/chain.hpp"
#include "nn/chain_runner.hpp"
#include "nn/optim.hpp"

namespace edgetrain::nn {

enum class CheckpointStrategy : std::uint8_t {
  FullStorage,  ///< rho = 1, maximal memory
  Revolve,      ///< optimal binomial checkpointing
  Sequential,   ///< PyTorch checkpoint_sequential (free_slots+1 segments)
  Periodic,     ///< uniform-stride checkpoints
};

enum class SlotBackend : std::uint8_t {
  Ram,       ///< full-precision in-memory checkpoints
  DiskSpill, ///< all non-input slots round-trip through files
  Fp16,      ///< half-precision checkpoints (2x memory saving, lossy)
  Int8,      ///< 8-bit affine checkpoints (4x memory saving, lossy)
};

enum class OptimizerKind : std::uint8_t {
  Sgd,   ///< SGD with optional momentum (momentum/weight_decay options)
  Adam,  ///< Adam with bias correction (adam_* options)
};

struct TrainerOptions {
  CheckpointStrategy strategy = CheckpointStrategy::FullStorage;
  int free_slots = 2;          ///< checkpoint budget (ignored for FullStorage)
  SlotBackend backend = SlotBackend::Ram;
  std::string spill_directory = "/tmp";  ///< for SlotBackend::DiskSpill
  OptimizerKind optimizer = OptimizerKind::Sgd;
  float lr = 0.05F;
  float momentum = 0.9F;
  float weight_decay = 0.0F;
  float adam_beta1 = 0.9F;
  float adam_beta2 = 0.999F;
  float adam_eps = 1e-8F;
};

struct StepStats {
  float loss = 0.0F;
  std::size_t peak_bytes = 0;       ///< tracked peak over the step
  std::int64_t advances = 0;        ///< recomputation forwards
};

/// Owns the optimizer, runner, schedule and slot store for one network.
/// Not copyable; the chain must outlive the trainer.
class Trainer {
 public:
  Trainer(LayerChain& chain, const TrainerOptions& options);

  /// One optimisation step on a batch with integer labels (softmax
  /// cross-entropy head).
  StepStats step(const Tensor& x, const std::vector<std::int32_t>& labels);

  /// One optimisation step with a caller-supplied loss gradient.
  StepStats step_with_loss(const Tensor& x, const core::LossGradFn& loss_grad);

  /// The schedule in force (for inspection/reporting).
  [[nodiscard]] const core::Schedule& schedule() const noexcept {
    return schedule_;
  }
  [[nodiscard]] Optimizer& optimizer() noexcept { return *optimizer_; }
  [[nodiscard]] LayerChain& chain() noexcept { return chain_; }

  /// Executor hooks threaded through every subsequent step (in-flight
  /// schedule position reporting / mid-step abort injection).
  void set_hooks(core::ExecutorHooks hooks) { hooks_ = std::move(hooks); }

  /// Pass counter of the underlying runner; persist/ saves and restores it
  /// so per-pass randomness (dropout) continues its stream after resume.
  [[nodiscard]] std::uint64_t pass_token() const noexcept {
    return runner_.pass_token();
  }
  void set_pass_token(std::uint64_t token) noexcept {
    runner_.set_pass_token(token);
  }

 private:
  LayerChain& chain_;
  TrainerOptions options_;
  core::Schedule schedule_;
  std::unique_ptr<core::SlotStore> store_;
  std::unique_ptr<Optimizer> optimizer_;
  LayerChainRunner runner_;
  core::ScheduleExecutor executor_;
  core::ExecutorHooks hooks_;
  float last_loss_ = 0.0F;
};

}  // namespace edgetrain::nn
