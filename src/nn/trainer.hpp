// edgetrain: high-level training loop.
//
// Bundles the pieces every caller was wiring by hand -- optimizer, chain
// runner, checkpointing schedule, slot store, loss head -- behind one
// configuration struct. The strategy enum covers every scheduler in the
// library, so switching from full storage to Revolve (or spilling
// checkpoints to disk) is a one-line change.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/executor.hpp"
#include "nn/chain.hpp"
#include "nn/chain_runner.hpp"
#include "nn/optim.hpp"

namespace edgetrain::nn {

enum class CheckpointStrategy : std::uint8_t {
  FullStorage,  ///< rho = 1, maximal memory
  Revolve,      ///< optimal binomial checkpointing
  Sequential,   ///< PyTorch checkpoint_sequential (free_slots+1 segments)
  Periodic,     ///< uniform-stride checkpoints
};

enum class SlotBackend : std::uint8_t {
  Ram,       ///< full-precision in-memory checkpoints
  DiskSpill, ///< all non-input slots round-trip through files
  Fp16,      ///< half-precision checkpoints (2x memory saving, lossy)
  Int8,      ///< 8-bit affine checkpoints (4x memory saving, lossy)
};

struct TrainerOptions {
  CheckpointStrategy strategy = CheckpointStrategy::FullStorage;
  int free_slots = 2;          ///< checkpoint budget (ignored for FullStorage)
  SlotBackend backend = SlotBackend::Ram;
  std::string spill_directory = "/tmp";  ///< for SlotBackend::DiskSpill
  float lr = 0.05F;
  float momentum = 0.9F;
  float weight_decay = 0.0F;
};

struct StepStats {
  float loss = 0.0F;
  std::size_t peak_bytes = 0;       ///< tracked peak over the step
  std::int64_t advances = 0;        ///< recomputation forwards
};

/// Owns the optimizer, runner, schedule and slot store for one network.
/// Not copyable; the chain must outlive the trainer.
class Trainer {
 public:
  Trainer(LayerChain& chain, const TrainerOptions& options);

  /// One optimisation step on a batch with integer labels (softmax
  /// cross-entropy head).
  StepStats step(const Tensor& x, const std::vector<std::int32_t>& labels);

  /// One optimisation step with a caller-supplied loss gradient.
  StepStats step_with_loss(const Tensor& x, const core::LossGradFn& loss_grad);

  /// The schedule in force (for inspection/reporting).
  [[nodiscard]] const core::Schedule& schedule() const noexcept {
    return schedule_;
  }
  [[nodiscard]] SGD& optimizer() noexcept { return optimizer_; }

 private:
  LayerChain& chain_;
  TrainerOptions options_;
  core::Schedule schedule_;
  std::unique_ptr<core::SlotStore> store_;
  SGD optimizer_;
  LayerChainRunner runner_;
  core::ScheduleExecutor executor_;
  float last_loss_ = 0.0F;
};

}  // namespace edgetrain::nn
