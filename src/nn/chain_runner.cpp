#include "nn/chain_runner.hpp"

#include <algorithm>

namespace edgetrain::nn {

void LayerChainRunner::begin_pass() {
  std::fill(visits_.begin(), visits_.end(), 0);
  ++pass_token_;
}

Tensor LayerChainRunner::forward(int step, const Tensor& input, bool save) {
  RunContext ctx;
  ctx.phase = phase_;
  ctx.save_for_backward = save;
  ctx.first_visit = visits_[static_cast<std::size_t>(step)] == 0;
  ctx.pass_token = pass_token_;
  ++visits_[static_cast<std::size_t>(step)];
  return chain_.layer(step).forward(input, ctx);
}

Tensor LayerChainRunner::backward(int step, const Tensor& grad_output) {
  return chain_.layer(step).backward(grad_output);
}

}  // namespace edgetrain::nn
