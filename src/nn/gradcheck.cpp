#include "nn/gradcheck.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace edgetrain::nn {

namespace {

/// Up to @p max_samples distinct flat indices of a tensor.
std::vector<std::int64_t> sample_indices(std::int64_t numel,
                                         std::size_t max_samples,
                                         std::mt19937& rng) {
  std::vector<std::int64_t> indices;
  if (static_cast<std::size_t>(numel) <= max_samples) {
    indices.resize(static_cast<std::size_t>(numel));
    for (std::int64_t i = 0; i < numel; ++i) {
      indices[static_cast<std::size_t>(i)] = i;
    }
    return indices;
  }
  std::uniform_int_distribution<std::int64_t> dist(0, numel - 1);
  indices.reserve(max_samples);
  for (std::size_t i = 0; i < max_samples; ++i) indices.push_back(dist(rng));
  std::sort(indices.begin(), indices.end());
  indices.erase(std::unique(indices.begin(), indices.end()), indices.end());
  return indices;
}

void accumulate(GradCheckResult& result, float analytic, float numeric,
                float tolerance) {
  const float abs_err = std::fabs(analytic - numeric);
  const float rel_err = abs_err / std::max(1.0F, std::fabs(numeric));
  result.max_abs_error = std::max(result.max_abs_error, abs_err);
  result.max_rel_error = std::max(result.max_rel_error, rel_err);
  ++result.checks;
  if (rel_err > tolerance) ++result.violations;
}

}  // namespace

GradCheckResult check_layer(Layer& layer, const Tensor& x, std::mt19937& rng,
                            float epsilon, float tolerance,
                            std::size_t max_violations) {
  constexpr std::size_t kMaxSamples = 48;

  RunContext ctx;
  ctx.phase = Phase::Train;
  ctx.save_for_backward = true;
  ctx.first_visit = false;  // keep running statistics untouched

  // Fixed random cotangent defines the scalar loss sum(w * y).
  Tensor x0 = x.clone();
  Tensor y0 = layer.forward(x0, ctx);
  Tensor cot = Tensor::randn(y0.shape(), rng, 1.0F);

  auto loss_at = [&](const Tensor& input) -> double {
    RunContext eval_ctx = ctx;
    eval_ctx.save_for_backward = false;
    Tensor y = layer.forward(input, eval_ctx);
    const float* yp = y.data();
    const float* wp = cot.data();
    double acc = 0.0;
    for (std::int64_t i = 0; i < y.numel(); ++i) {
      acc += static_cast<double>(yp[i]) * wp[i];
    }
    return acc;
  };

  layer.zero_grad();
  // Re-run a saving forward so backward has fresh state, then backward.
  Tensor y1 = layer.forward(x0, ctx);
  (void)y1;
  Tensor analytic_gx = layer.backward(cot);

  GradCheckResult result;
  result.passed = true;

  // Input gradient.
  {
    Tensor probe = x0.clone();
    for (const std::int64_t idx :
         sample_indices(probe.numel(), kMaxSamples, rng)) {
      const float saved = probe.data()[idx];
      probe.data()[idx] = saved + epsilon;
      const double up = loss_at(probe);
      probe.data()[idx] = saved - epsilon;
      const double down = loss_at(probe);
      probe.data()[idx] = saved;
      const float numeric =
          static_cast<float>((up - down) / (2.0 * epsilon));
      accumulate(result, analytic_gx.data()[idx], numeric, tolerance);
    }
  }

  // Parameter gradients.
  std::vector<ParamRef> params;
  layer.collect_params(params);
  for (ParamRef& p : params) {
    for (const std::int64_t idx :
         sample_indices(p.value->numel(), kMaxSamples / 2, rng)) {
      const float saved = p.value->data()[idx];
      p.value->data()[idx] = saved + epsilon;
      const double up = loss_at(x0);
      p.value->data()[idx] = saved - epsilon;
      const double down = loss_at(x0);
      p.value->data()[idx] = saved;
      const float numeric =
          static_cast<float>((up - down) / (2.0 * epsilon));
      accumulate(result, p.grad->data()[idx], numeric, tolerance);
    }
  }
  result.passed = result.violations <= max_violations;
  return result;
}

GradCheckResult check_function(const std::function<float(const Tensor&)>& f,
                               const Tensor& x, const Tensor& analytic_grad,
                               float epsilon, float tolerance) {
  GradCheckResult result;
  result.passed = true;
  Tensor probe = x.clone();
  std::mt19937 rng(1234);
  for (const std::int64_t idx : sample_indices(probe.numel(), 64, rng)) {
    const float saved = probe.data()[idx];
    probe.data()[idx] = saved + epsilon;
    const float up = f(probe);
    probe.data()[idx] = saved - epsilon;
    const float down = f(probe);
    probe.data()[idx] = saved;
    const float numeric = (up - down) / (2.0F * epsilon);
    accumulate(result, analytic_grad.data()[idx], numeric, tolerance);
  }
  result.passed = result.violations == 0;
  return result;
}

}  // namespace edgetrain::nn
