#include "nn/serialize.hpp"

#include <fstream>
#include <stdexcept>

#include "persist/wire.hpp"

namespace edgetrain::nn {

namespace {

constexpr std::uint32_t kMagic = 0x45444754;        // "EDGT"
constexpr std::uint32_t kBufferMagic = 0x45444742;  // "EDGB"
constexpr std::uint32_t kVersion = 1;

}  // namespace

std::vector<std::uint8_t> serialize_weights(LayerChain& chain) {
  const std::vector<ParamRef> params = chain.params();
  persist::ByteWriter out;
  out.u32(kMagic);
  out.u32(kVersion);
  out.u32(static_cast<std::uint32_t>(params.size()));
  for (const ParamRef& p : params) {
    out.str(p.name);
    out.u32(static_cast<std::uint32_t>(p.value->shape().rank()));
    for (const std::int64_t dim : p.value->shape().dims()) out.i64(dim);
    out.raw(p.value->data(), p.value->bytes());
  }
  return out.take();
}

void deserialize_weights(LayerChain& chain,
                         const std::vector<std::uint8_t>& bytes) {
  persist::ByteReader reader(bytes);
  if (reader.u32() != kMagic) throw std::runtime_error("weights: bad magic");
  if (reader.u32() != kVersion) {
    throw std::runtime_error("weights: unsupported version");
  }
  const std::vector<ParamRef> params = chain.params();
  const std::uint32_t count = reader.u32();
  if (count != params.size()) {
    throw std::runtime_error("weights: parameter count mismatch (file " +
                             std::to_string(count) + ", chain " +
                             std::to_string(params.size()) + ")");
  }
  for (const ParamRef& p : params) {
    const std::string name = reader.str();
    if (name != p.name) {
      throw std::runtime_error("weights: parameter name mismatch: file '" +
                               name + "' vs chain '" + p.name + "'");
    }
    const std::uint32_t rank = reader.u32();
    std::vector<std::int64_t> dims(rank);
    for (std::uint32_t d = 0; d < rank; ++d) dims[d] = reader.i64();
    if (Shape(dims) != p.value->shape()) {
      throw std::runtime_error("weights: shape mismatch for '" + p.name + "'");
    }
    reader.raw(p.value->data(), p.value->bytes());
  }
  if (!reader.exhausted()) {
    throw std::runtime_error("weights: trailing bytes");
  }
}

std::vector<std::uint8_t> serialize_buffers(LayerChain& chain) {
  const std::vector<BufferRef> buffers = chain.buffers();
  persist::ByteWriter out;
  out.u32(kBufferMagic);
  out.u32(kVersion);
  out.u32(static_cast<std::uint32_t>(buffers.size()));
  for (const BufferRef& b : buffers) {
    out.str(b.name);
    out.u32(static_cast<std::uint32_t>(b.value->shape().rank()));
    for (const std::int64_t dim : b.value->shape().dims()) out.i64(dim);
    out.raw(b.value->data(), b.value->bytes());
  }
  return out.take();
}

void deserialize_buffers(LayerChain& chain,
                         const std::vector<std::uint8_t>& bytes) {
  persist::ByteReader reader(bytes);
  if (reader.u32() != kBufferMagic) {
    throw std::runtime_error("buffers: bad magic");
  }
  if (reader.u32() != kVersion) {
    throw std::runtime_error("buffers: unsupported version");
  }
  const std::vector<BufferRef> buffers = chain.buffers();
  const std::uint32_t count = reader.u32();
  if (count != buffers.size()) {
    throw std::runtime_error("buffers: buffer count mismatch (file " +
                             std::to_string(count) + ", chain " +
                             std::to_string(buffers.size()) + ")");
  }
  for (const BufferRef& b : buffers) {
    const std::string name = reader.str();
    if (name != b.name) {
      throw std::runtime_error("buffers: buffer name mismatch: file '" + name +
                               "' vs chain '" + b.name + "'");
    }
    const std::uint32_t rank = reader.u32();
    std::vector<std::int64_t> dims(rank);
    for (std::uint32_t d = 0; d < rank; ++d) dims[d] = reader.i64();
    if (Shape(dims) != b.value->shape()) {
      throw std::runtime_error("buffers: shape mismatch for '" + b.name + "'");
    }
    reader.raw(b.value->data(), b.value->bytes());
  }
  if (!reader.exhausted()) {
    throw std::runtime_error("buffers: trailing bytes");
  }
}

void save_weights(LayerChain& chain, const std::string& path) {
  const std::vector<std::uint8_t> bytes = serialize_weights(chain);
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) throw std::runtime_error("weights: cannot open " + path);
  file.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  if (!file) throw std::runtime_error("weights: write failed for " + path);
}

void load_weights(LayerChain& chain, const std::string& path) {
  std::ifstream file(path, std::ios::binary | std::ios::ate);
  if (!file) throw std::runtime_error("weights: cannot open " + path);
  const std::streamsize size = file.tellg();
  file.seekg(0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  file.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!file) throw std::runtime_error("weights: read failed for " + path);
  deserialize_weights(chain, bytes);
}

}  // namespace edgetrain::nn
