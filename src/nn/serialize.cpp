#include "nn/serialize.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace edgetrain::nn {

namespace {

constexpr std::uint32_t kMagic = 0x45444754;  // "EDGT"
constexpr std::uint32_t kVersion = 1;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
  }
}

void put_i64(std::vector<std::uint8_t>& out, std::int64_t value) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(
        static_cast<std::uint64_t>(value) >> (8 * i)));
  }
}

class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& bytes) : bytes_(bytes) {}

  std::uint32_t u32() {
    require(4);
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      value |= static_cast<std::uint32_t>(bytes_[pos_ + static_cast<std::size_t>(i)])
               << (8 * i);
    }
    pos_ += 4;
    return value;
  }

  std::int64_t i64() {
    require(8);
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
      value |= static_cast<std::uint64_t>(bytes_[pos_ + static_cast<std::size_t>(i)])
               << (8 * i);
    }
    pos_ += 8;
    return static_cast<std::int64_t>(value);
  }

  std::string str(std::size_t length) {
    require(length);
    std::string value(reinterpret_cast<const char*>(bytes_.data() + pos_),
                      length);
    pos_ += length;
    return value;
  }

  void floats(float* dst, std::size_t count) {
    require(count * sizeof(float));
    std::memcpy(dst, bytes_.data() + pos_, count * sizeof(float));
    pos_ += count * sizeof(float);
  }

  [[nodiscard]] bool exhausted() const { return pos_ == bytes_.size(); }

 private:
  void require(std::size_t count) const {
    if (pos_ + count > bytes_.size()) {
      throw std::runtime_error("weights: truncated payload");
    }
  }

  const std::vector<std::uint8_t>& bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<std::uint8_t> serialize_weights(LayerChain& chain) {
  const std::vector<ParamRef> params = chain.params();
  std::vector<std::uint8_t> out;
  put_u32(out, kMagic);
  put_u32(out, kVersion);
  put_u32(out, static_cast<std::uint32_t>(params.size()));
  for (const ParamRef& p : params) {
    put_u32(out, static_cast<std::uint32_t>(p.name.size()));
    out.insert(out.end(), p.name.begin(), p.name.end());
    put_u32(out, static_cast<std::uint32_t>(p.value->shape().rank()));
    for (const std::int64_t dim : p.value->shape().dims()) put_i64(out, dim);
    const auto* data = reinterpret_cast<const std::uint8_t*>(p.value->data());
    out.insert(out.end(), data, data + p.value->bytes());
  }
  return out;
}

void deserialize_weights(LayerChain& chain,
                         const std::vector<std::uint8_t>& bytes) {
  Reader reader(bytes);
  if (reader.u32() != kMagic) throw std::runtime_error("weights: bad magic");
  if (reader.u32() != kVersion) {
    throw std::runtime_error("weights: unsupported version");
  }
  const std::vector<ParamRef> params = chain.params();
  const std::uint32_t count = reader.u32();
  if (count != params.size()) {
    throw std::runtime_error("weights: parameter count mismatch (file " +
                             std::to_string(count) + ", chain " +
                             std::to_string(params.size()) + ")");
  }
  for (const ParamRef& p : params) {
    const std::uint32_t name_length = reader.u32();
    const std::string name = reader.str(name_length);
    if (name != p.name) {
      throw std::runtime_error("weights: parameter name mismatch: file '" +
                               name + "' vs chain '" + p.name + "'");
    }
    const std::uint32_t rank = reader.u32();
    std::vector<std::int64_t> dims(rank);
    for (std::uint32_t d = 0; d < rank; ++d) dims[d] = reader.i64();
    if (Shape(dims) != p.value->shape()) {
      throw std::runtime_error("weights: shape mismatch for '" + p.name + "'");
    }
    reader.floats(p.value->data(), static_cast<std::size_t>(p.value->numel()));
  }
  if (!reader.exhausted()) {
    throw std::runtime_error("weights: trailing bytes");
  }
}

void save_weights(LayerChain& chain, const std::string& path) {
  const std::vector<std::uint8_t> bytes = serialize_weights(chain);
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) throw std::runtime_error("weights: cannot open " + path);
  file.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  if (!file) throw std::runtime_error("weights: write failed for " + path);
}

void load_weights(LayerChain& chain, const std::string& path) {
  std::ifstream file(path, std::ios::binary | std::ios::ate);
  if (!file) throw std::runtime_error("weights: cannot open " + path);
  const std::streamsize size = file.tellg();
  file.seekg(0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  file.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!file) throw std::runtime_error("weights: read failed for " + path);
  deserialize_weights(chain, bytes);
}

}  // namespace edgetrain::nn
