#include "nn/chain.hpp"

namespace edgetrain::nn {

LayerChain& LayerChain::push(std::unique_ptr<Layer> layer) {
  layers_.push_back(std::move(layer));
  return *this;
}

Tensor LayerChain::forward(const Tensor& x, const RunContext& ctx) {
  Tensor h = x;
  for (auto& layer : layers_) h = layer->forward(h, ctx);
  return h;
}

Tensor LayerChain::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

std::vector<ParamRef> LayerChain::params() {
  std::vector<ParamRef> out;
  for (auto& layer : layers_) layer->collect_params(out);
  return out;
}

std::vector<BufferRef> LayerChain::buffers() {
  std::vector<BufferRef> out;
  for (auto& layer : layers_) layer->collect_buffers(out);
  return out;
}

std::int64_t LayerChain::param_count() {
  std::int64_t total = 0;
  for (auto& layer : layers_) total += layer->param_count();
  return total;
}

void LayerChain::zero_grad() {
  for (auto& layer : layers_) layer->zero_grad();
}

void LayerChain::clear_saved() {
  for (auto& layer : layers_) layer->clear_saved();
}

std::vector<Shape> LayerChain::shapes(const Shape& in) const {
  std::vector<Shape> result;
  result.reserve(layers_.size() + 1);
  result.push_back(in);
  for (const auto& layer : layers_) {
    result.push_back(layer->output_shape(result.back()));
  }
  return result;
}

}  // namespace edgetrain::nn
