// edgetrain: gradient accumulation (micro-batching).
//
// The folk remedy the paper contrasts checkpointing against: "the batch
// size is often adjusted so that a single batch can fit in memory --
// however the batch size also affects the convergence properties" (Sec.
// IV). Micro-batching keeps the *effective* batch (and its convergence
// behaviour) while cutting activation memory linearly: the batch is split
// into m chunks, each runs forward+backward with full storage, and the
// gradients accumulate with chunk-proportional weights.
//
// Caveat, verified by tests: with batch-normalisation the chunk statistics
// differ from the full-batch statistics, so gradients are only
// approximately equal (BN-free chains match bit-exactly). Checkpointing
// has no such semantic drift -- one of its under-appreciated advantages,
// quantified in bench_microbatch.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/chain.hpp"

namespace edgetrain::nn {

struct MicrobatchResult {
  float loss = 0.0F;                   ///< batch-mean loss
  std::size_t peak_tracked_bytes = 0;  ///< high-water mark over all chunks
  std::size_t baseline_bytes = 0;
  int chunks_run = 0;
};

/// Runs one training pass of `chain` over batch `x` / `labels` (softmax
/// cross-entropy head) in `num_microbatches` chunks, accumulating
/// parameter gradients exactly as a single full-batch pass would (up to
/// batch-norm statistics). Gradients are NOT zeroed first.
/// The final chunk absorbs the remainder when the batch does not divide
/// evenly. Throws std::invalid_argument for an empty batch or more chunks
/// than samples.
[[nodiscard]] MicrobatchResult run_microbatched(
    LayerChain& chain, const Tensor& x,
    const std::vector<std::int32_t>& labels, int num_microbatches);

}  // namespace edgetrain::nn
