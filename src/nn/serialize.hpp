// edgetrain: weight (de)serialization.
//
// A deployed node needs to receive teacher weights from the cloud and
// persist its specialised student across power cycles (SD card). The
// format is a simple versioned binary: per parameter its name, shape and
// float32 payload. Loading is strict: names, order and shapes must match
// the target chain exactly (architecture mismatches are configuration
// errors a node must not silently absorb).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/chain.hpp"

namespace edgetrain::nn {

/// Serialises all parameters of @p chain (weights only, no gradients or
/// optimizer state).
[[nodiscard]] std::vector<std::uint8_t> serialize_weights(LayerChain& chain);

/// Restores parameters serialized by serialize_weights into @p chain.
/// Throws std::runtime_error on format or architecture mismatch.
void deserialize_weights(LayerChain& chain,
                         const std::vector<std::uint8_t>& bytes);

/// Serialises all persistent buffers of @p chain (batch-norm running
/// statistics). Separate from weights so older weight files stay valid.
[[nodiscard]] std::vector<std::uint8_t> serialize_buffers(LayerChain& chain);

/// Restores buffers serialized by serialize_buffers into @p chain.
/// Throws std::runtime_error on format or architecture mismatch.
void deserialize_buffers(LayerChain& chain,
                         const std::vector<std::uint8_t>& bytes);

/// File convenience wrappers.
void save_weights(LayerChain& chain, const std::string& path);
void load_weights(LayerChain& chain, const std::string& path);

}  // namespace edgetrain::nn
