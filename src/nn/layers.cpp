#include "nn/layers.hpp"

#include <cmath>
#include <stdexcept>

namespace edgetrain::nn {

namespace {
Tensor he_normal(const Shape& shape, std::int64_t fan_in, std::mt19937& rng) {
  const float stddev = std::sqrt(2.0F / static_cast<float>(fan_in));
  return Tensor::randn(shape, rng, stddev);
}
}  // namespace

// ---------------------------------------------------------------------------
// Conv2d
// ---------------------------------------------------------------------------

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, std::int64_t stride, std::int64_t pad,
               bool with_bias, std::mt19937& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      params_{stride, pad},
      with_bias_(with_bias) {
  const Shape wshape{out_channels, in_channels, kernel, kernel};
  w_ = he_normal(wshape, in_channels * kernel * kernel, rng);
  gw_ = Tensor::zeros(wshape);
  if (with_bias_) {
    b_ = Tensor::zeros(Shape{out_channels});
    gb_ = Tensor::zeros(Shape{out_channels});
  }
}

std::string Conv2d::name() const {
  return "conv" + std::to_string(kernel_) + "x" + std::to_string(kernel_) +
         "(" + std::to_string(in_channels_) + "->" +
         std::to_string(out_channels_) + ",s" +
         std::to_string(params_.stride) + ")";
}

Tensor Conv2d::forward(const Tensor& x, const RunContext& ctx) {
  if (ctx.save_for_backward) {
    saved_x_ = x;
  } else {
    saved_x_.reset();
  }
  return ops::conv2d_forward(x, w_, b_, params_);
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  if (!saved_x_.defined()) no_saved_state();
  // Accumulate straight into the layer's grad buffers: no temporary grad_w
  // tensor and no extra add pass in the training hot loop.
  Tensor grad_x = ops::conv2d_backward_acc(grad_out, saved_x_, w_, params_,
                                           gw_, with_bias_ ? &gb_ : nullptr);
  saved_x_.reset();
  return grad_x;
}

void Conv2d::collect_params(std::vector<ParamRef>& out) {
  out.push_back({name() + ".weight", &w_, &gw_});
  if (with_bias_) out.push_back({name() + ".bias", &b_, &gb_});
}

Shape Conv2d::output_shape(const Shape& in) const {
  return Shape{in[0], out_channels_,
               ops::conv_out_size(in[2], kernel_, params_.stride, params_.pad),
               ops::conv_out_size(in[3], kernel_, params_.stride, params_.pad)};
}

// ---------------------------------------------------------------------------
// BatchNorm2d
// ---------------------------------------------------------------------------

BatchNorm2d::BatchNorm2d(std::int64_t channels, float momentum, float eps)
    : channels_(channels), momentum_(momentum), eps_(eps) {
  gamma_ = Tensor::full(Shape{channels}, 1.0F);
  ggamma_ = Tensor::zeros(Shape{channels});
  beta_ = Tensor::zeros(Shape{channels});
  gbeta_ = Tensor::zeros(Shape{channels});
  running_mean_ = Tensor::zeros(Shape{channels});
  running_var_ = Tensor::full(Shape{channels}, 1.0F);
}

std::string BatchNorm2d::name() const {
  return "bn(" + std::to_string(channels_) + ")";
}

Tensor BatchNorm2d::forward(const Tensor& x, const RunContext& ctx) {
  if (ctx.phase == Phase::Eval) {
    clear_saved();
    return ops::batchnorm2d_infer(x, gamma_, beta_, running_mean_,
                                  running_var_, eps_);
  }
  const bool update_running = ctx.first_visit;
  ops::BatchNormState state = ops::batchnorm2d_forward(
      x, gamma_, beta_, running_mean_, running_var_, momentum_, eps_,
      update_running);
  Tensor y = state.y;
  if (ctx.save_for_backward) {
    saved_x_ = x;
    saved_state_ = std::move(state);
    saved_state_->y.reset();  // the output is not needed for backward
  } else {
    clear_saved();
  }
  return y;
}

Tensor BatchNorm2d::backward(const Tensor& grad_out) {
  if (!saved_x_.defined() || !saved_state_.has_value()) no_saved_state();
  ops::BatchNormGrads grads =
      ops::batchnorm2d_backward(grad_out, saved_x_, gamma_, *saved_state_);
  ggamma_.add_(grads.grad_gamma);
  gbeta_.add_(grads.grad_beta);
  clear_saved();
  return std::move(grads.grad_x);
}

void BatchNorm2d::collect_params(std::vector<ParamRef>& out) {
  out.push_back({name() + ".gamma", &gamma_, &ggamma_});
  out.push_back({name() + ".beta", &beta_, &gbeta_});
}

void BatchNorm2d::collect_buffers(std::vector<BufferRef>& out) {
  out.push_back({name() + ".running_mean", &running_mean_});
  out.push_back({name() + ".running_var", &running_var_});
}

Shape BatchNorm2d::output_shape(const Shape& in) const { return in; }

void BatchNorm2d::clear_saved() {
  saved_x_.reset();
  saved_state_.reset();
}

// ---------------------------------------------------------------------------
// ReLU / pooling / flatten
// ---------------------------------------------------------------------------

Tensor ReLU::forward(const Tensor& x, const RunContext& ctx) {
  Tensor y = ops::relu_forward(x);
  if (ctx.save_for_backward) {
    saved_y_ = y;
  } else {
    saved_y_.reset();
  }
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  if (!saved_y_.defined()) no_saved_state();
  Tensor gx = ops::relu_backward(grad_out, saved_y_);
  saved_y_.reset();
  return gx;
}

MaxPool2d::MaxPool2d(std::int64_t kernel, std::int64_t stride, std::int64_t pad)
    : kernel_(kernel), params_{stride, pad} {}

Tensor MaxPool2d::forward(const Tensor& x, const RunContext& ctx) {
  ops::MaxPoolResult result = ops::maxpool2d_forward(x, kernel_, params_);
  if (ctx.save_for_backward) {
    saved_argmax_ = std::move(result.argmax);
    saved_x_shape_ = x.shape();
    has_saved_ = true;
  } else {
    clear_saved();
  }
  return result.y;
}

Tensor MaxPool2d::backward(const Tensor& grad_out) {
  if (!has_saved_) no_saved_state();
  Tensor gx = ops::maxpool2d_backward(grad_out, saved_argmax_, saved_x_shape_);
  clear_saved();
  return gx;
}

Shape MaxPool2d::output_shape(const Shape& in) const {
  return Shape{in[0], in[1],
               ops::conv_out_size(in[2], kernel_, params_.stride, params_.pad),
               ops::conv_out_size(in[3], kernel_, params_.stride, params_.pad)};
}

void MaxPool2d::clear_saved() {
  saved_argmax_.clear();
  saved_argmax_.shrink_to_fit();
  has_saved_ = false;
}

Tensor GlobalAvgPool::forward(const Tensor& x, const RunContext& ctx) {
  if (ctx.save_for_backward) {
    saved_x_shape_ = x.shape();
    has_saved_ = true;
  } else {
    has_saved_ = false;
  }
  return ops::global_avgpool_forward(x);
}

Tensor GlobalAvgPool::backward(const Tensor& grad_out) {
  if (!has_saved_) no_saved_state();
  has_saved_ = false;
  return ops::global_avgpool_backward(grad_out, saved_x_shape_);
}

Shape GlobalAvgPool::output_shape(const Shape& in) const {
  return Shape{in[0], in[1]};
}

AvgPool2d::AvgPool2d(std::int64_t kernel, std::int64_t stride,
                     std::int64_t pad)
    : kernel_(kernel), params_{stride, pad} {}

Tensor AvgPool2d::forward(const Tensor& x, const RunContext& ctx) {
  if (ctx.save_for_backward) {
    saved_x_shape_ = x.shape();
    has_saved_ = true;
  } else {
    has_saved_ = false;
  }
  return ops::avgpool2d_forward(x, kernel_, params_);
}

Tensor AvgPool2d::backward(const Tensor& grad_out) {
  if (!has_saved_) no_saved_state();
  has_saved_ = false;
  return ops::avgpool2d_backward(grad_out, kernel_, params_, saved_x_shape_);
}

Shape AvgPool2d::output_shape(const Shape& in) const {
  return Shape{in[0], in[1],
               ops::conv_out_size(in[2], kernel_, params_.stride, params_.pad),
               ops::conv_out_size(in[3], kernel_, params_.stride, params_.pad)};
}

Tensor Sigmoid::forward(const Tensor& x, const RunContext& ctx) {
  Tensor y = ops::sigmoid_forward(x);
  if (ctx.save_for_backward) {
    saved_y_ = y;
  } else {
    saved_y_.reset();
  }
  return y;
}

Tensor Sigmoid::backward(const Tensor& grad_out) {
  if (!saved_y_.defined()) no_saved_state();
  Tensor gx = ops::sigmoid_backward(grad_out, saved_y_);
  saved_y_.reset();
  return gx;
}

Tensor Tanh::forward(const Tensor& x, const RunContext& ctx) {
  Tensor y = ops::tanh_forward(x);
  if (ctx.save_for_backward) {
    saved_y_ = y;
  } else {
    saved_y_.reset();
  }
  return y;
}

Tensor Tanh::backward(const Tensor& grad_out) {
  if (!saved_y_.defined()) no_saved_state();
  Tensor gx = ops::tanh_backward(grad_out, saved_y_);
  saved_y_.reset();
  return gx;
}

Dropout::Dropout(float rate, std::uint64_t seed) : rate_(rate), seed_(seed) {
  if (rate < 0.0F || rate >= 1.0F) {
    throw std::invalid_argument("Dropout: rate must be in [0,1)");
  }
}

std::string Dropout::name() const {
  return "dropout(" + std::to_string(rate_) + ")";
}

Tensor Dropout::forward(const Tensor& x, const RunContext& ctx) {
  if (ctx.phase == Phase::Eval || rate_ == 0.0F) {
    has_saved_ = ctx.save_for_backward;
    saved_pass_seed_ = 0;  // identity mask
    return x;
  }
  // Derive the pass seed deterministically: recomputation visits of the
  // same pass regenerate the same mask.
  const std::uint64_t pass_seed =
      seed_ ^ (0x9E3779B97F4A7C15ULL * (ctx.pass_token + 1));
  if (ctx.save_for_backward) {
    saved_pass_seed_ = pass_seed;
    has_saved_ = true;
  } else {
    has_saved_ = false;
  }
  return ops::dropout_forward(x, rate_, pass_seed);
}

Tensor Dropout::backward(const Tensor& grad_out) {
  if (!has_saved_) no_saved_state();
  has_saved_ = false;
  if (saved_pass_seed_ == 0) return grad_out;  // eval/identity
  return ops::dropout_backward(grad_out, rate_, saved_pass_seed_);
}

Tensor Flatten::forward(const Tensor& x, const RunContext& ctx) {
  if (ctx.save_for_backward) {
    saved_x_shape_ = x.shape();
    has_saved_ = true;
  } else {
    has_saved_ = false;
  }
  return x.reshaped(output_shape(x.shape()));
}

Tensor Flatten::backward(const Tensor& grad_out) {
  if (!has_saved_) no_saved_state();
  has_saved_ = false;
  return grad_out.reshaped(saved_x_shape_);
}

Shape Flatten::output_shape(const Shape& in) const {
  return Shape{in[0], in.numel() / in[0]};
}

// ---------------------------------------------------------------------------
// Linear
// ---------------------------------------------------------------------------

Linear::Linear(std::int64_t in_features, std::int64_t out_features,
               bool with_bias, std::mt19937& rng)
    : in_features_(in_features),
      out_features_(out_features),
      with_bias_(with_bias) {
  w_ = he_normal(Shape{out_features, in_features}, in_features, rng);
  gw_ = Tensor::zeros(Shape{out_features, in_features});
  if (with_bias_) {
    b_ = Tensor::zeros(Shape{out_features});
    gb_ = Tensor::zeros(Shape{out_features});
  }
}

std::string Linear::name() const {
  return "linear(" + std::to_string(in_features_) + "->" +
         std::to_string(out_features_) + ")";
}

Tensor Linear::forward(const Tensor& x, const RunContext& ctx) {
  if (ctx.save_for_backward) {
    saved_x_ = x;
  } else {
    saved_x_.reset();
  }
  return ops::linear_forward(x, w_, b_);
}

Tensor Linear::backward(const Tensor& grad_out) {
  if (!saved_x_.defined()) no_saved_state();
  Tensor grad_x = ops::linear_backward_acc(grad_out, saved_x_, w_, gw_,
                                           with_bias_ ? &gb_ : nullptr);
  saved_x_.reset();
  return grad_x;
}

void Linear::collect_params(std::vector<ParamRef>& out) {
  out.push_back({name() + ".weight", &w_, &gw_});
  if (with_bias_) out.push_back({name() + ".bias", &b_, &gb_});
}

Shape Linear::output_shape(const Shape& in) const {
  return Shape{in[0], out_features_};
}

// ---------------------------------------------------------------------------
// BasicBlock
// ---------------------------------------------------------------------------

BasicBlock::BasicBlock(std::int64_t in_channels, std::int64_t out_channels,
                       std::int64_t stride, std::mt19937& rng) {
  conv1_ = std::make_unique<Conv2d>(in_channels, out_channels, 3, stride, 1,
                                    false, rng);
  bn1_ = std::make_unique<BatchNorm2d>(out_channels);
  relu1_ = std::make_unique<ReLU>();
  conv2_ = std::make_unique<Conv2d>(out_channels, out_channels, 3, 1, 1, false,
                                    rng);
  bn2_ = std::make_unique<BatchNorm2d>(out_channels);
  if (stride != 1 || in_channels != out_channels) {
    proj_conv_ = std::make_unique<Conv2d>(in_channels, out_channels, 1, stride,
                                          0, false, rng);
    proj_bn_ = std::make_unique<BatchNorm2d>(out_channels);
  }
  relu_out_ = std::make_unique<ReLU>();
}

std::string BasicBlock::name() const { return "basic_block"; }

Tensor BasicBlock::forward(const Tensor& x, const RunContext& ctx) {
  Tensor h = conv1_->forward(x, ctx);
  h = bn1_->forward(h, ctx);
  h = relu1_->forward(h, ctx);
  h = conv2_->forward(h, ctx);
  h = bn2_->forward(h, ctx);
  Tensor shortcut = x;
  if (proj_conv_) {
    shortcut = proj_conv_->forward(x, ctx);
    shortcut = proj_bn_->forward(shortcut, ctx);
  }
  h.add_(shortcut);
  return relu_out_->forward(h, ctx);
}

Tensor BasicBlock::backward(const Tensor& grad_out) {
  Tensor g = relu_out_->backward(grad_out);
  // g flows to both the residual branch and the shortcut.
  Tensor g_branch = bn2_->backward(g);
  g_branch = conv2_->backward(g_branch);
  g_branch = relu1_->backward(g_branch);
  g_branch = bn1_->backward(g_branch);
  g_branch = conv1_->backward(g_branch);
  Tensor g_short = g;
  if (proj_conv_) {
    g_short = proj_bn_->backward(g_short);
    g_short = proj_conv_->backward(g_short);
  }
  g_branch.add_(g_short);
  return g_branch;
}

void BasicBlock::collect_params(std::vector<ParamRef>& out) {
  conv1_->collect_params(out);
  bn1_->collect_params(out);
  conv2_->collect_params(out);
  bn2_->collect_params(out);
  if (proj_conv_) {
    proj_conv_->collect_params(out);
    proj_bn_->collect_params(out);
  }
}

void BasicBlock::collect_buffers(std::vector<BufferRef>& out) {
  bn1_->collect_buffers(out);
  bn2_->collect_buffers(out);
  if (proj_bn_) proj_bn_->collect_buffers(out);
}

Shape BasicBlock::output_shape(const Shape& in) const {
  return conv1_->output_shape(in);
}

void BasicBlock::clear_saved() {
  conv1_->clear_saved();
  bn1_->clear_saved();
  relu1_->clear_saved();
  conv2_->clear_saved();
  bn2_->clear_saved();
  if (proj_conv_) {
    proj_conv_->clear_saved();
    proj_bn_->clear_saved();
  }
  relu_out_->clear_saved();
}

// ---------------------------------------------------------------------------
// Bottleneck
// ---------------------------------------------------------------------------

Bottleneck::Bottleneck(std::int64_t in_channels, std::int64_t mid_channels,
                       std::int64_t stride, std::mt19937& rng) {
  const std::int64_t out_channels = mid_channels * 4;
  conv1_ = std::make_unique<Conv2d>(in_channels, mid_channels, 1, 1, 0, false,
                                    rng);
  bn1_ = std::make_unique<BatchNorm2d>(mid_channels);
  relu1_ = std::make_unique<ReLU>();
  conv2_ = std::make_unique<Conv2d>(mid_channels, mid_channels, 3, stride, 1,
                                    false, rng);
  bn2_ = std::make_unique<BatchNorm2d>(mid_channels);
  relu2_ = std::make_unique<ReLU>();
  conv3_ = std::make_unique<Conv2d>(mid_channels, out_channels, 1, 1, 0, false,
                                    rng);
  bn3_ = std::make_unique<BatchNorm2d>(out_channels);
  if (stride != 1 || in_channels != out_channels) {
    proj_conv_ = std::make_unique<Conv2d>(in_channels, out_channels, 1, stride,
                                          0, false, rng);
    proj_bn_ = std::make_unique<BatchNorm2d>(out_channels);
  }
  relu_out_ = std::make_unique<ReLU>();
}

std::string Bottleneck::name() const { return "bottleneck"; }

Tensor Bottleneck::forward(const Tensor& x, const RunContext& ctx) {
  Tensor h = conv1_->forward(x, ctx);
  h = bn1_->forward(h, ctx);
  h = relu1_->forward(h, ctx);
  h = conv2_->forward(h, ctx);
  h = bn2_->forward(h, ctx);
  h = relu2_->forward(h, ctx);
  h = conv3_->forward(h, ctx);
  h = bn3_->forward(h, ctx);
  Tensor shortcut = x;
  if (proj_conv_) {
    shortcut = proj_conv_->forward(x, ctx);
    shortcut = proj_bn_->forward(shortcut, ctx);
  }
  h.add_(shortcut);
  return relu_out_->forward(h, ctx);
}

Tensor Bottleneck::backward(const Tensor& grad_out) {
  Tensor g = relu_out_->backward(grad_out);
  Tensor g_branch = bn3_->backward(g);
  g_branch = conv3_->backward(g_branch);
  g_branch = relu2_->backward(g_branch);
  g_branch = bn2_->backward(g_branch);
  g_branch = conv2_->backward(g_branch);
  g_branch = relu1_->backward(g_branch);
  g_branch = bn1_->backward(g_branch);
  g_branch = conv1_->backward(g_branch);
  Tensor g_short = g;
  if (proj_conv_) {
    g_short = proj_bn_->backward(g_short);
    g_short = proj_conv_->backward(g_short);
  }
  g_branch.add_(g_short);
  return g_branch;
}

void Bottleneck::collect_params(std::vector<ParamRef>& out) {
  conv1_->collect_params(out);
  bn1_->collect_params(out);
  conv2_->collect_params(out);
  bn2_->collect_params(out);
  conv3_->collect_params(out);
  bn3_->collect_params(out);
  if (proj_conv_) {
    proj_conv_->collect_params(out);
    proj_bn_->collect_params(out);
  }
}

void Bottleneck::collect_buffers(std::vector<BufferRef>& out) {
  bn1_->collect_buffers(out);
  bn2_->collect_buffers(out);
  bn3_->collect_buffers(out);
  if (proj_bn_) proj_bn_->collect_buffers(out);
}

Shape Bottleneck::output_shape(const Shape& in) const {
  const Shape mid = conv2_->output_shape(
      Shape{in[0], conv1_->output_shape(in)[1], in[2], in[3]});
  return conv3_->output_shape(mid);
}

void Bottleneck::clear_saved() {
  conv1_->clear_saved();
  bn1_->clear_saved();
  relu1_->clear_saved();
  conv2_->clear_saved();
  bn2_->clear_saved();
  relu2_->clear_saved();
  conv3_->clear_saved();
  bn3_->clear_saved();
  if (proj_conv_) {
    proj_conv_->clear_saved();
    proj_bn_->clear_saved();
  }
  relu_out_->clear_saved();
}

}  // namespace edgetrain::nn
