// edgetrain: concrete layers (conv, batch norm, activations, pooling,
// linear) and the ResNet residual blocks used as chain steps.
//
// Weight initialisation follows He et al. (fan-in scaled normal) so that
// small CNNs train from scratch in the tests and the in-situ pipeline.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <random>
#include <vector>

#include "nn/layer.hpp"
#include "tensor/ops.hpp"

namespace edgetrain::nn {

/// 2-D convolution, NCHW, square kernel. Bias optional (ResNet convs are
/// bias-free because batch norm follows).
class Conv2d final : public Layer {
 public:
  Conv2d(std::int64_t in_channels, std::int64_t out_channels,
         std::int64_t kernel, std::int64_t stride, std::int64_t pad,
         bool with_bias, std::mt19937& rng);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] Tensor forward(const Tensor& x, const RunContext& ctx) override;
  [[nodiscard]] Tensor backward(const Tensor& grad_out) override;
  void collect_params(std::vector<ParamRef>& out) override;
  [[nodiscard]] Shape output_shape(const Shape& in) const override;
  void clear_saved() override { saved_x_.reset(); }

  // Read-only structure accessors: the post-training-quantized teacher path
  // (insitu/quant_classifier.cpp) rebuilds the layer's arithmetic outside
  // the Layer interface, so it needs the geometry and parameters.
  [[nodiscard]] const Tensor& weight() const noexcept { return w_; }
  [[nodiscard]] const Tensor& bias() const noexcept { return b_; }
  [[nodiscard]] bool has_bias() const noexcept { return with_bias_; }
  [[nodiscard]] std::int64_t kernel() const noexcept { return kernel_; }
  [[nodiscard]] const ops::ConvParams& conv_params() const noexcept {
    return params_;
  }

 private:
  std::int64_t in_channels_;
  std::int64_t out_channels_;
  std::int64_t kernel_;
  ops::ConvParams params_;
  bool with_bias_;
  Tensor w_, gw_;
  Tensor b_, gb_;
  Tensor saved_x_;
};

/// Per-channel batch normalisation with running statistics.
class BatchNorm2d final : public Layer {
 public:
  explicit BatchNorm2d(std::int64_t channels, float momentum = 0.1F,
                       float eps = 1e-5F);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] Tensor forward(const Tensor& x, const RunContext& ctx) override;
  [[nodiscard]] Tensor backward(const Tensor& grad_out) override;
  void collect_params(std::vector<ParamRef>& out) override;
  void collect_buffers(std::vector<BufferRef>& out) override;
  [[nodiscard]] Shape output_shape(const Shape& in) const override;
  void clear_saved() override;

  [[nodiscard]] const Tensor& running_mean() const noexcept {
    return running_mean_;
  }
  [[nodiscard]] const Tensor& running_var() const noexcept {
    return running_var_;
  }
  [[nodiscard]] const Tensor& gamma() const noexcept { return gamma_; }
  [[nodiscard]] const Tensor& beta() const noexcept { return beta_; }
  [[nodiscard]] float eps() const noexcept { return eps_; }

 private:
  std::int64_t channels_;
  float momentum_;
  float eps_;
  Tensor gamma_, ggamma_;
  Tensor beta_, gbeta_;
  Tensor running_mean_, running_var_;
  Tensor saved_x_;
  std::optional<ops::BatchNormState> saved_state_;
};

class ReLU final : public Layer {
 public:
  ReLU() = default;
  [[nodiscard]] std::string name() const override { return "relu"; }
  [[nodiscard]] Tensor forward(const Tensor& x, const RunContext& ctx) override;
  [[nodiscard]] Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] Shape output_shape(const Shape& in) const override { return in; }
  void clear_saved() override { saved_y_.reset(); }

 private:
  Tensor saved_y_;
};

class MaxPool2d final : public Layer {
 public:
  MaxPool2d(std::int64_t kernel, std::int64_t stride, std::int64_t pad);
  [[nodiscard]] std::string name() const override { return "maxpool2d"; }
  [[nodiscard]] Tensor forward(const Tensor& x, const RunContext& ctx) override;
  [[nodiscard]] Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] Shape output_shape(const Shape& in) const override;
  void clear_saved() override;

  [[nodiscard]] std::int64_t kernel() const noexcept { return kernel_; }
  [[nodiscard]] const ops::ConvParams& pool_params() const noexcept {
    return params_;
  }

 private:
  std::int64_t kernel_;
  ops::ConvParams params_;
  std::vector<std::int32_t> saved_argmax_;
  Shape saved_x_shape_;
  bool has_saved_ = false;
};

/// Global average pooling: [N,C,H,W] -> [N,C].
class GlobalAvgPool final : public Layer {
 public:
  GlobalAvgPool() = default;
  [[nodiscard]] std::string name() const override { return "global_avgpool"; }
  [[nodiscard]] Tensor forward(const Tensor& x, const RunContext& ctx) override;
  [[nodiscard]] Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] Shape output_shape(const Shape& in) const override;
  void clear_saved() override { has_saved_ = false; }

 private:
  Shape saved_x_shape_;
  bool has_saved_ = false;
};

/// Windowed average pooling (count includes padding).
class AvgPool2d final : public Layer {
 public:
  AvgPool2d(std::int64_t kernel, std::int64_t stride, std::int64_t pad);
  [[nodiscard]] std::string name() const override { return "avgpool2d"; }
  [[nodiscard]] Tensor forward(const Tensor& x, const RunContext& ctx) override;
  [[nodiscard]] Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] Shape output_shape(const Shape& in) const override;
  void clear_saved() override { has_saved_ = false; }

 private:
  std::int64_t kernel_;
  ops::ConvParams params_;
  Shape saved_x_shape_;
  bool has_saved_ = false;
};

class Sigmoid final : public Layer {
 public:
  Sigmoid() = default;
  [[nodiscard]] std::string name() const override { return "sigmoid"; }
  [[nodiscard]] Tensor forward(const Tensor& x, const RunContext& ctx) override;
  [[nodiscard]] Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] Shape output_shape(const Shape& in) const override { return in; }
  void clear_saved() override { saved_y_.reset(); }

 private:
  Tensor saved_y_;
};

class Tanh final : public Layer {
 public:
  Tanh() = default;
  [[nodiscard]] std::string name() const override { return "tanh"; }
  [[nodiscard]] Tensor forward(const Tensor& x, const RunContext& ctx) override;
  [[nodiscard]] Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] Shape output_shape(const Shape& in) const override { return in; }
  void clear_saved() override { saved_y_.reset(); }

 private:
  Tensor saved_y_;
};

/// Inverted dropout whose mask is a pure function of (layer seed,
/// pass_token): checkpointed recomputation of the same pass regenerates
/// the identical mask, so gradients stay bit-identical to full storage
/// (tested in tests/core/executor_test.cpp). Identity in Eval phase.
class Dropout final : public Layer {
 public:
  explicit Dropout(float rate, std::uint64_t seed = 0x9E3779B9ULL);
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] Tensor forward(const Tensor& x, const RunContext& ctx) override;
  [[nodiscard]] Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] Shape output_shape(const Shape& in) const override { return in; }
  void clear_saved() override { has_saved_ = false; }

 private:
  float rate_;
  std::uint64_t seed_;
  std::uint64_t saved_pass_seed_ = 0;
  bool has_saved_ = false;
};

/// Reshapes [N, ...] to [N, prod(...)]; backward restores the shape.
class Flatten final : public Layer {
 public:
  Flatten() = default;
  [[nodiscard]] std::string name() const override { return "flatten"; }
  [[nodiscard]] Tensor forward(const Tensor& x, const RunContext& ctx) override;
  [[nodiscard]] Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] Shape output_shape(const Shape& in) const override;
  void clear_saved() override { has_saved_ = false; }

 private:
  Shape saved_x_shape_;
  bool has_saved_ = false;
};

class Linear final : public Layer {
 public:
  Linear(std::int64_t in_features, std::int64_t out_features, bool with_bias,
         std::mt19937& rng);
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] Tensor forward(const Tensor& x, const RunContext& ctx) override;
  [[nodiscard]] Tensor backward(const Tensor& grad_out) override;
  void collect_params(std::vector<ParamRef>& out) override;
  [[nodiscard]] Shape output_shape(const Shape& in) const override;
  void clear_saved() override { saved_x_.reset(); }

  [[nodiscard]] const Tensor& weight() const noexcept { return w_; }
  [[nodiscard]] const Tensor& bias() const noexcept { return b_; }
  [[nodiscard]] bool has_bias() const noexcept { return with_bias_; }

 private:
  std::int64_t in_features_;
  std::int64_t out_features_;
  bool with_bias_;
  Tensor w_, gw_;
  Tensor b_, gb_;
  Tensor saved_x_;
};

/// ResNet basic block: conv3x3-bn-relu-conv3x3-bn (+ projection shortcut
/// when shape changes) followed by relu. One chain step in the executable
/// ResNets; its internals are several tensors, which is exactly why block-
/// level checkpointing pays off.
class BasicBlock final : public Layer {
 public:
  BasicBlock(std::int64_t in_channels, std::int64_t out_channels,
             std::int64_t stride, std::mt19937& rng);
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] Tensor forward(const Tensor& x, const RunContext& ctx) override;
  [[nodiscard]] Tensor backward(const Tensor& grad_out) override;
  void collect_params(std::vector<ParamRef>& out) override;
  void collect_buffers(std::vector<BufferRef>& out) override;
  [[nodiscard]] Shape output_shape(const Shape& in) const override;
  void clear_saved() override;

 private:
  std::unique_ptr<Conv2d> conv1_;
  std::unique_ptr<BatchNorm2d> bn1_;
  std::unique_ptr<ReLU> relu1_;
  std::unique_ptr<Conv2d> conv2_;
  std::unique_ptr<BatchNorm2d> bn2_;
  std::unique_ptr<Conv2d> proj_conv_;   // nullptr for identity shortcuts
  std::unique_ptr<BatchNorm2d> proj_bn_;
  std::unique_ptr<ReLU> relu_out_;
};

/// ResNet bottleneck block: conv1x1-bn-relu-conv3x3-bn-relu-conv1x1-bn
/// (+ projection shortcut) followed by relu.
class Bottleneck final : public Layer {
 public:
  /// @p mid_channels is the squeezed width; output is 4 * mid_channels.
  Bottleneck(std::int64_t in_channels, std::int64_t mid_channels,
             std::int64_t stride, std::mt19937& rng);
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] Tensor forward(const Tensor& x, const RunContext& ctx) override;
  [[nodiscard]] Tensor backward(const Tensor& grad_out) override;
  void collect_params(std::vector<ParamRef>& out) override;
  void collect_buffers(std::vector<BufferRef>& out) override;
  [[nodiscard]] Shape output_shape(const Shape& in) const override;
  void clear_saved() override;

 private:
  std::unique_ptr<Conv2d> conv1_;
  std::unique_ptr<BatchNorm2d> bn1_;
  std::unique_ptr<ReLU> relu1_;
  std::unique_ptr<Conv2d> conv2_;
  std::unique_ptr<BatchNorm2d> bn2_;
  std::unique_ptr<ReLU> relu2_;
  std::unique_ptr<Conv2d> conv3_;
  std::unique_ptr<BatchNorm2d> bn3_;
  std::unique_ptr<Conv2d> proj_conv_;
  std::unique_ptr<BatchNorm2d> proj_bn_;
  std::unique_ptr<ReLU> relu_out_;
};

}  // namespace edgetrain::nn
