// edgetrain: optimizers.
//
// The fixed training footprint the paper's tables imply is about 4x the
// weight bytes: weights + gradients + two Adam moments. SGD (with optional
// momentum) and Adam are provided; their state tensors go through the
// tracked allocator so the 4x shows up in measurements too.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/layer.hpp"

namespace edgetrain::nn {

/// Mutable view of an optimizer's durable state, in a stable order, for
/// snapshot/restore (persist/). `step_counter` points at the update count
/// for optimizers whose trajectory depends on it (Adam bias correction);
/// nullptr otherwise.
struct OptimizerState {
  std::vector<Tensor*> tensors;
  std::int64_t* step_counter = nullptr;
};

class Optimizer {
 public:
  explicit Optimizer(std::vector<ParamRef> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;
  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update from the accumulated gradients.
  virtual void step() = 0;

  /// Zeroes all gradients.
  void zero_grad();

  /// Bytes of optimizer state (momentum/moment tensors).
  [[nodiscard]] virtual std::size_t state_bytes() const = 0;

  /// Durable state for suspend/resume; restoring every tensor (and the
  /// step counter, when present) reproduces the update trajectory exactly.
  [[nodiscard]] virtual OptimizerState mutable_state() = 0;

 protected:
  std::vector<ParamRef> params_;
};

/// Stochastic gradient descent with optional momentum and weight decay.
class SGD final : public Optimizer {
 public:
  SGD(std::vector<ParamRef> params, float lr, float momentum = 0.0F,
      float weight_decay = 0.0F);
  void step() override;
  [[nodiscard]] std::size_t state_bytes() const override;
  [[nodiscard]] OptimizerState mutable_state() override;

  void set_lr(float lr) noexcept { lr_ = lr; }
  [[nodiscard]] float lr() const noexcept { return lr_; }

 private:
  float lr_;
  float momentum_;
  float weight_decay_;
  std::vector<Tensor> velocity_;  // empty when momentum == 0
};

/// Adam (Kingma & Ba) with bias correction.
class Adam final : public Optimizer {
 public:
  Adam(std::vector<ParamRef> params, float lr, float beta1 = 0.9F,
       float beta2 = 0.999F, float eps = 1e-8F, float weight_decay = 0.0F);
  void step() override;
  [[nodiscard]] std::size_t state_bytes() const override;
  [[nodiscard]] OptimizerState mutable_state() override;

  void set_lr(float lr) noexcept { lr_ = lr; }
  [[nodiscard]] float lr() const noexcept { return lr_; }

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  float weight_decay_;
  std::int64_t t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

}  // namespace edgetrain::nn
