#include "nn/microbatch.hpp"

#include <cstring>
#include <stdexcept>

#include "tensor/alloc.hpp"
#include "tensor/ops.hpp"

namespace edgetrain::nn {

MicrobatchResult run_microbatched(LayerChain& chain, const Tensor& x,
                                  const std::vector<std::int32_t>& labels,
                                  int num_microbatches) {
  const std::int64_t total = x.shape()[0];
  if (total < 1) throw std::invalid_argument("microbatch: empty batch");
  if (num_microbatches < 1 || num_microbatches > total) {
    throw std::invalid_argument(
        "microbatch: chunk count must be in [1, batch]");
  }
  const std::int64_t sample_elems = x.numel() / total;
  const std::int64_t chunk = total / num_microbatches;

  ScopedPeakProbe probe;
  MicrobatchResult result;
  result.baseline_bytes = probe.baseline_bytes();

  double loss_acc = 0.0;
  std::int64_t begin = 0;
  for (int c = 0; c < num_microbatches; ++c) {
    const std::int64_t count =
        c == num_microbatches - 1 ? total - begin : chunk;
    // Slice the chunk out of the batch.
    std::vector<std::int64_t> dims = x.shape().dims();
    dims[0] = count;
    Tensor cx = Tensor::empty(Shape(dims));
    std::memcpy(cx.data(), x.data() + begin * sample_elems,
                static_cast<std::size_t>(count * sample_elems) *
                    sizeof(float));
    const std::vector<std::int32_t> chunk_labels(
        labels.begin() + static_cast<std::ptrdiff_t>(begin),
        labels.begin() + static_cast<std::ptrdiff_t>(begin + count));

    RunContext ctx;
    ctx.phase = Phase::Train;
    ctx.save_for_backward = true;
    ctx.first_visit = true;
    Tensor logits = chain.forward(cx, ctx);
    const ops::SoftmaxXentResult head =
        ops::softmax_xent_forward(logits, chunk_labels);
    // Chunk losses/gradients are means over `count`; reweight so the
    // accumulated gradient equals the full-batch mean.
    const float weight =
        static_cast<float>(count) / static_cast<float>(total);
    loss_acc += static_cast<double>(head.loss) * weight;
    Tensor grad = ops::softmax_xent_backward(head.probs, chunk_labels);
    grad.scale_(weight);
    (void)chain.backward(grad);

    begin += count;
    ++result.chunks_run;
  }

  result.loss = static_cast<float>(loss_acc);
  result.peak_tracked_bytes = probe.peak_bytes();
  return result;
}

}  // namespace edgetrain::nn
