// edgetrain: neural-network layer abstraction.
//
// Layers are stateful modules with explicit save-for-backward semantics:
// forward(x, ctx) with ctx.save_for_backward == true retains exactly what
// one backward() call needs; with false it retains nothing (that is what
// checkpointed execution relies on). Recomputation passes set
// ctx.first_visit == false so that once-per-pass side effects (batch-norm
// running statistics) are not repeated — the gradient-equivalence tests in
// tests/core/executor_test.cpp depend on this.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace edgetrain::nn {

enum class Phase : std::uint8_t { Train, Eval };

struct RunContext {
  Phase phase = Phase::Train;
  /// Retain internals for one backward() call.
  bool save_for_backward = true;
  /// False on recomputation passes: suppress once-per-pass side effects.
  bool first_visit = true;
  /// Identifies the training pass. Stochastic layers (Dropout) derive their
  /// randomness from (layer seed, pass_token) so a checkpointed
  /// recomputation of the same pass reproduces the identical mask.
  std::uint64_t pass_token = 0;
};

/// A named (parameter, gradient) pair owned by some layer.
struct ParamRef {
  std::string name;
  Tensor* value = nullptr;
  Tensor* grad = nullptr;
};

/// A named non-trainable persistent tensor (batch-norm running statistics).
/// Buffers evolve during training without gradients, yet are part of the
/// model's durable state: suspend/resume (persist/) and deployment exports
/// must carry them or eval behaviour silently diverges.
struct BufferRef {
  std::string name;
  Tensor* value = nullptr;
};

/// Base class for all layers. Gradients accumulate across backward calls
/// until zero_grad(); parameter and gradient tensors are allocated at
/// construction (so the tracker sees the paper's persistent 2x-weights
/// footprint even before the first step; optimizers add their own state).
class Layer {
 public:
  virtual ~Layer() = default;
  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Runs the layer. See RunContext for the saving/side-effect contract.
  [[nodiscard]] virtual Tensor forward(const Tensor& x,
                                       const RunContext& ctx) = 0;

  /// Adjoint; consumes the internals retained by the most recent saving
  /// forward and returns d loss / d x. Throws std::logic_error when no
  /// saved internals are live.
  [[nodiscard]] virtual Tensor backward(const Tensor& grad_out) = 0;

  /// Appends this layer's parameters to @p out (default: none).
  virtual void collect_params(std::vector<ParamRef>& out);

  /// Appends this layer's persistent buffers to @p out (default: none).
  virtual void collect_buffers(std::vector<BufferRef>& out);

  /// Output shape for a given input shape (shape inference only).
  [[nodiscard]] virtual Shape output_shape(const Shape& in) const = 0;

  /// Total trainable scalar parameters.
  [[nodiscard]] std::int64_t param_count();

  /// Drops any retained internals (e.g. after an aborted pass).
  virtual void clear_saved() {}

  /// Zeroes all gradient tensors.
  void zero_grad();

 protected:
  Layer() = default;

  [[noreturn]] void no_saved_state() const;
};

}  // namespace edgetrain::nn
