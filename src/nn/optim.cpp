#include "nn/optim.hpp"

#include <cmath>

namespace edgetrain::nn {

void Optimizer::zero_grad() {
  for (ParamRef& p : params_) p.grad->fill(0.0F);
}

SGD::SGD(std::vector<ParamRef> params, float lr, float momentum,
         float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  if (momentum_ != 0.0F) {
    velocity_.reserve(params_.size());
    for (const ParamRef& p : params_) {
      velocity_.push_back(Tensor::zeros(p.value->shape()));
    }
  }
}

void SGD::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    ParamRef& p = params_[i];
    float* w = p.value->data();
    const float* g = p.grad->data();
    const std::int64_t n = p.value->numel();
    if (momentum_ != 0.0F) {
      float* v = velocity_[i].data();
      for (std::int64_t k = 0; k < n; ++k) {
        const float grad = g[k] + weight_decay_ * w[k];
        v[k] = momentum_ * v[k] + grad;
        w[k] -= lr_ * v[k];
      }
    } else {
      for (std::int64_t k = 0; k < n; ++k) {
        const float grad = g[k] + weight_decay_ * w[k];
        w[k] -= lr_ * grad;
      }
    }
  }
}

std::size_t SGD::state_bytes() const {
  std::size_t total = 0;
  for (const Tensor& v : velocity_) total += v.bytes();
  return total;
}

OptimizerState SGD::mutable_state() {
  OptimizerState state;
  state.tensors.reserve(velocity_.size());
  for (Tensor& v : velocity_) state.tensors.push_back(&v);
  return state;
}

Adam::Adam(std::vector<ParamRef> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const ParamRef& p : params_) {
    m_.push_back(Tensor::zeros(p.value->shape()));
    v_.push_back(Tensor::zeros(p.value->shape()));
  }
}

void Adam::step() {
  ++t_;
  const float bias1 =
      1.0F - std::pow(beta1_, static_cast<float>(t_));
  const float bias2 =
      1.0F - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    ParamRef& p = params_[i];
    float* w = p.value->data();
    const float* g = p.grad->data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    const std::int64_t n = p.value->numel();
    for (std::int64_t k = 0; k < n; ++k) {
      const float grad = g[k] + weight_decay_ * w[k];
      m[k] = beta1_ * m[k] + (1.0F - beta1_) * grad;
      v[k] = beta2_ * v[k] + (1.0F - beta2_) * grad * grad;
      const float mhat = m[k] / bias1;
      const float vhat = v[k] / bias2;
      w[k] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

std::size_t Adam::state_bytes() const {
  std::size_t total = 0;
  for (const Tensor& m : m_) total += m.bytes();
  for (const Tensor& v : v_) total += v.bytes();
  return total;
}

OptimizerState Adam::mutable_state() {
  OptimizerState state;
  state.tensors.reserve(m_.size() + v_.size());
  for (Tensor& m : m_) state.tensors.push_back(&m);
  for (Tensor& v : v_) state.tensors.push_back(&v);
  state.step_counter = &t_;
  return state;
}

}  // namespace edgetrain::nn
