#include "nn/trainer.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/periodic.hpp"
#include "core/revolve.hpp"
#include "core/sequential.hpp"
#include "tensor/ops.hpp"

namespace edgetrain::nn {

namespace {

core::Schedule build_schedule(int num_steps, const TrainerOptions& options) {
  const int slots = std::clamp(options.free_slots, 0,
                               std::max(num_steps - 1, 0));
  switch (options.strategy) {
    case CheckpointStrategy::FullStorage:
      return core::full_storage_schedule(num_steps);
    case CheckpointStrategy::Revolve:
      return core::revolve::make_schedule(num_steps, slots);
    case CheckpointStrategy::Sequential:
      return core::seq::make_schedule(
          num_steps, std::clamp(slots + 1, 1, num_steps));
    case CheckpointStrategy::Periodic:
      return core::periodic::make_schedule(num_steps, slots);
  }
  throw std::invalid_argument("Trainer: unknown strategy");
}

std::unique_ptr<core::SlotStore> build_store(const core::Schedule& schedule,
                                             const TrainerOptions& options) {
  switch (options.backend) {
    case SlotBackend::Ram:
      return std::make_unique<core::RamSlotStore>(schedule.num_slots());
    case SlotBackend::DiskSpill:
      return std::make_unique<core::DiskSlotStore>(
          schedule.num_slots(), /*first_disk_slot=*/1,
          options.spill_directory);
    case SlotBackend::Fp16:
      return std::make_unique<core::QuantizedSlotStore>(
          schedule.num_slots(), core::QuantizedSlotStore::Precision::Half);
    case SlotBackend::Int8:
      return std::make_unique<core::QuantizedSlotStore>(
          schedule.num_slots(), core::QuantizedSlotStore::Precision::Int8);
  }
  throw std::invalid_argument("Trainer: unknown backend");
}

std::unique_ptr<Optimizer> build_optimizer(LayerChain& chain,
                                           const TrainerOptions& options) {
  switch (options.optimizer) {
    case OptimizerKind::Sgd:
      return std::make_unique<SGD>(chain.params(), options.lr,
                                   options.momentum, options.weight_decay);
    case OptimizerKind::Adam:
      return std::make_unique<Adam>(chain.params(), options.lr,
                                    options.adam_beta1, options.adam_beta2,
                                    options.adam_eps, options.weight_decay);
  }
  throw std::invalid_argument("Trainer: unknown optimizer");
}

}  // namespace

Trainer::Trainer(LayerChain& chain, const TrainerOptions& options)
    : chain_(chain),
      options_(options),
      schedule_(build_schedule(chain.size(), options)),
      store_(build_store(schedule_, options)),
      optimizer_(build_optimizer(chain, options)),
      runner_(chain, Phase::Train) {}

StepStats Trainer::step(const Tensor& x,
                        const std::vector<std::int32_t>& labels) {
  return step_with_loss(x, [this, &labels](const Tensor& logits) {
    const ops::SoftmaxXentResult result =
        ops::softmax_xent_forward(logits, labels);
    last_loss_ = result.loss;
    return ops::softmax_xent_backward(result.probs, labels);
  });
}

StepStats Trainer::step_with_loss(const Tensor& x,
                                  const core::LossGradFn& loss_grad) {
  optimizer_->zero_grad();
  runner_.begin_pass();
  last_loss_ = 0.0F;
  const core::ExecutionResult result =
      executor_.run(runner_, schedule_, x, loss_grad, *store_, hooks_);
  optimizer_->step();

  StepStats stats;
  stats.loss = last_loss_;
  stats.peak_bytes = result.peak_tracked_bytes - result.baseline_bytes;
  stats.advances = result.stats.advances;
  return stats;
}

}  // namespace edgetrain::nn
