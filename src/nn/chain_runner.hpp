// edgetrain: adapter exposing a LayerChain to the schedule executor.
//
// Guards once-per-pass side effects: the first time a step runs in a pass
// its RunContext has first_visit == true (batch-norm updates running
// statistics); recomputation visits get first_visit == false, so a
// checkpointed pass produces bit-identical gradients and statistics to a
// full-storage pass (asserted in tests/core/executor_test.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "core/executor.hpp"
#include "nn/chain.hpp"

namespace edgetrain::nn {

class LayerChainRunner final : public core::ChainRunner {
 public:
  explicit LayerChainRunner(LayerChain& chain, Phase phase = Phase::Train)
      : chain_(chain),
        phase_(phase),
        visits_(static_cast<std::size_t>(chain.size()), 0) {}

  /// Resets the per-pass visit counters; call before every executor run.
  void begin_pass();

  /// The pass counter feeding per-pass randomness (dropout masks). Exposed
  /// so suspend/resume (persist/) can restore it and keep the dropout
  /// stream identical across process death.
  [[nodiscard]] std::uint64_t pass_token() const noexcept {
    return pass_token_;
  }
  void set_pass_token(std::uint64_t token) noexcept { pass_token_ = token; }

  [[nodiscard]] int num_steps() const override { return chain_.size(); }

  [[nodiscard]] Tensor forward(int step, const Tensor& input,
                               bool save) override;

  [[nodiscard]] Tensor backward(int step, const Tensor& grad_output) override;

 private:
  LayerChain& chain_;
  Phase phase_;
  std::vector<int> visits_;
  std::uint64_t pass_token_ = 0;
};

}  // namespace edgetrain::nn
