#include "nn/layer.hpp"

#include <stdexcept>

namespace edgetrain::nn {

void Layer::collect_params(std::vector<ParamRef>& out) { (void)out; }

void Layer::collect_buffers(std::vector<BufferRef>& out) { (void)out; }

std::int64_t Layer::param_count() {
  std::vector<ParamRef> params;
  collect_params(params);
  std::int64_t total = 0;
  for (const ParamRef& p : params) total += p.value->numel();
  return total;
}

void Layer::zero_grad() {
  std::vector<ParamRef> params;
  collect_params(params);
  for (ParamRef& p : params) p.grad->fill(0.0F);
}

void Layer::no_saved_state() const {
  throw std::logic_error("layer '" + name() +
                         "': backward without saved forward state");
}

}  // namespace edgetrain::nn
