#include "core/slot_store.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "core/spill_io.hpp"
#include "tensor/alloc.hpp"
#include "tensor/convert.hpp"
#include "tensor/guards.hpp"
#include "tensor/workspace.hpp"

namespace edgetrain::core {

namespace {
[[noreturn]] void empty_slot(std::int32_t slot) {
  throw std::logic_error("SlotStore: slot " + std::to_string(slot) +
                         " is empty");
}

}  // namespace

namespace detail {
void poison_if_sole_owner([[maybe_unused]] Tensor& held) {
#if defined(EDGETRAIN_GUARDS)
  if (held.defined() && held.storage_use_count() == 1) {
    guards::paint(held.data(), held.numel(), guards::kPoisonBits);
  }
#endif
}

void poison_blob([[maybe_unused]] std::vector<std::uint8_t>& blob) {
#if defined(EDGETRAIN_GUARDS)
  if (!blob.empty()) {
    guards::paint_bytes(blob.data(), static_cast<std::int64_t>(blob.size()));
  }
#endif
}
}  // namespace detail

// ---------------------------------------------------------------------------
// RamSlotStore
// ---------------------------------------------------------------------------

RamSlotStore::RamSlotStore(int num_slots)
    : slots_(static_cast<std::size_t>(num_slots)) {}

void RamSlotStore::put(std::int32_t slot, const Tensor& value) {
  Tensor& held = slots_.at(static_cast<std::size_t>(slot));
  guard_release(held);
  held = value;
}

Tensor RamSlotStore::get(std::int32_t slot) {
  Tensor& held = slots_.at(static_cast<std::size_t>(slot));
  if (!held.defined()) empty_slot(slot);
  return held;
}

void RamSlotStore::drop(std::int32_t slot) {
  Tensor& held = slots_.at(static_cast<std::size_t>(slot));
  guard_release(held);
  held.reset();
}

/// Guards-only: poison a checkpoint buffer being released so a stale raw
/// pointer into the dropped slot reads NaNs for as long as the allocator
/// has not recycled the pages. Only safe when this store is the storage's
/// sole owner -- the handles RamSlotStore hands out are zero-copy, and
/// poisoning a buffer the executor still reads through a live handle would
/// corrupt real activations. The buffer is NOT retained: holding dropped
/// checkpoints alive would distort the resident-memory accounting the
/// paper's tables (and their tests) are built on.
void RamSlotStore::guard_release(Tensor& held) {
  detail::poison_if_sole_owner(held);
}

std::size_t RamSlotStore::resident_bytes() const {
  std::size_t total = 0;
  for (const Tensor& t : slots_) {
    if (t.defined()) total += t.bytes();
  }
  return total;
}

// ---------------------------------------------------------------------------
// DiskSlotStore
// ---------------------------------------------------------------------------

DiskSlotStore::DiskSlotStore(int num_slots, int first_disk_slot,
                             std::string directory, SlotCodec codec)
    : first_disk_slot_(first_disk_slot),
      directory_(std::move(directory)),
      codec_(codec),
      ram_(static_cast<std::size_t>(num_slots)),
      disk_shapes_(static_cast<std::size_t>(num_slots)),
      disk_crcs_(static_cast<std::size_t>(num_slots), 0),
      disk_payload_bytes_(static_cast<std::size_t>(num_slots), 0),
      on_disk_(static_cast<std::size_t>(num_slots), false),
      slot_ratios_(static_cast<std::size_t>(num_slots), 1.0) {}

DiskSlotStore::~DiskSlotStore() {
  for (std::int32_t slot = 0; slot < static_cast<std::int32_t>(on_disk_.size());
       ++slot) {
    if (on_disk_[static_cast<std::size_t>(slot)]) {
      std::remove(path_for(slot).c_str());
    }
  }
}

std::string DiskSlotStore::path_for(std::int32_t slot) const {
  return directory_ + "/slot_" + std::to_string(slot) + ".ckpt";
}

void DiskSlotStore::put(std::int32_t slot, const Tensor& value) {
  if (!is_disk_slot(slot)) {
    ram_.at(static_cast<std::size_t>(slot)) = value;
    return;
  }
  const auto idx = static_cast<std::size_t>(slot);
  std::uint32_t crc = 0;
  std::size_t payload = 0;
  if (codec_ == SlotCodec::None) {
    crc = spill::write_spill("DiskSlotStore", path_for(slot), value);
    payload = value.bytes();
  } else {
    const std::vector<std::uint8_t> blob = codec::encode(codec_, value);
    crc = spill::write_spill_blob("DiskSlotStore", path_for(slot),
                                  blob.data(), blob.size());
    payload = blob.size();
  }
  if (on_disk_.at(idx)) disk_bytes_ -= disk_payload_bytes_[idx];
  disk_shapes_[idx] = value.shape();
  disk_crcs_[idx] = crc;
  disk_payload_bytes_[idx] = payload;
  on_disk_[idx] = true;
  disk_bytes_ += payload;
  plain_seen_ += value.bytes();
  encoded_seen_ += payload;
  if (value.bytes() > 0) {
    slot_ratios_[idx] = static_cast<double>(payload) /
                        static_cast<double>(value.bytes());
  }
  ++writes_;
}

Tensor DiskSlotStore::get(std::int32_t slot) {
  if (!is_disk_slot(slot)) {
    Tensor& held = ram_.at(static_cast<std::size_t>(slot));
    if (!held.defined()) empty_slot(slot);
    return held;
  }
  const auto idx = static_cast<std::size_t>(slot);
  if (!on_disk_.at(idx)) empty_slot(slot);
  Tensor out;
  if (codec_ == SlotCodec::None) {
    out = spill::read_spill("DiskSlotStore", path_for(slot),
                            disk_shapes_[idx], disk_crcs_[idx]);
  } else {
    // The encoded image passes through the arena (no heap per restore),
    // then decodes with the parallel convert kernels on this thread.
    const std::size_t size = disk_payload_bytes_[idx];
    WorkspaceScope scope(Workspace::tls());
    auto* encoded = reinterpret_cast<std::uint8_t*>(Workspace::tls().alloc(
        static_cast<std::int64_t>((size + sizeof(float) - 1) /
                                  sizeof(float))));
    spill::read_spill_blob("DiskSlotStore", path_for(slot), size,
                           disk_crcs_[idx], encoded);
    out = codec::decode(codec_, "DiskSlotStore", disk_shapes_[idx], encoded,
                        size);
  }
  ++reads_;
  return out;
}

void DiskSlotStore::drop(std::int32_t slot) {
  if (!is_disk_slot(slot)) {
    ram_.at(static_cast<std::size_t>(slot)).reset();
    return;
  }
  const auto idx = static_cast<std::size_t>(slot);
  if (on_disk_.at(idx)) {
    disk_bytes_ -= disk_payload_bytes_[idx];
    disk_payload_bytes_[idx] = 0;
    on_disk_[idx] = false;
    std::remove(path_for(slot).c_str());
  }
}

std::size_t DiskSlotStore::resident_bytes() const {
  std::size_t total = 0;
  for (const Tensor& t : ram_) {
    if (t.defined()) total += t.bytes();
  }
  return total;
}

std::size_t DiskSlotStore::external_bytes() const { return disk_bytes_; }

// ---------------------------------------------------------------------------
// CompressedSlotStore
// ---------------------------------------------------------------------------

CompressedSlotStore::CompressedSlotStore(int num_slots, SlotCodec codec)
    : codec_(codec),
      slots_(static_cast<std::size_t>(num_slots)),
      slot_ratios_(static_cast<std::size_t>(num_slots), 1.0) {}

CompressedSlotStore::~CompressedSlotStore() {
  for (EncodedSlot& slot : slots_) release(slot);
}

void CompressedSlotStore::release(EncodedSlot& slot) {
  if (slot.occupied) {
    // No stale plaintext-derived bytes may survive the release: the blob
    // is poisoned before the allocator can hand its pages to anyone else.
    detail::poison_blob(slot.blob);
  }
  if (slot.tracked > 0) {
    MemoryTracker::instance().on_free(slot.tracked);
    slot.tracked = 0;
  }
  slot.blob.clear();
  slot.blob.shrink_to_fit();
  slot.occupied = false;
}

void CompressedSlotStore::put(std::int32_t slot, const Tensor& value) {
  EncodedSlot& encoded = slots_.at(static_cast<std::size_t>(slot));
  release(encoded);
  encoded.shape = value.shape();
  encoded.blob = codec::encode(codec_, value);
  encoded.tracked = encoded.blob.size();
  MemoryTracker::instance().on_alloc(encoded.tracked);
  encoded.occupied = true;
  plain_seen_ += value.bytes();
  encoded_seen_ += encoded.blob.size();
  if (value.bytes() > 0) {
    slot_ratios_[static_cast<std::size_t>(slot)] =
        static_cast<double>(encoded.blob.size()) /
        static_cast<double>(value.bytes());
  }
}

Tensor CompressedSlotStore::get(std::int32_t slot) {
  EncodedSlot& encoded = slots_.at(static_cast<std::size_t>(slot));
  if (!encoded.occupied) empty_slot(slot);
  return codec::decode(codec_, "CompressedSlotStore", encoded.shape,
                       encoded.blob.data(), encoded.blob.size());
}

void CompressedSlotStore::drop(std::int32_t slot) {
  release(slots_.at(static_cast<std::size_t>(slot)));
}

std::size_t CompressedSlotStore::resident_bytes() const {
  std::size_t total = 0;
  for (const EncodedSlot& slot : slots_) total += slot.tracked;
  return total;
}

// ---------------------------------------------------------------------------
// Half conversions
// ---------------------------------------------------------------------------

std::uint16_t float_to_half(float value) {
  const std::uint32_t bits = std::bit_cast<std::uint32_t>(value);
  const std::uint32_t sign = (bits >> 16) & 0x8000U;
  const std::int32_t exponent =
      static_cast<std::int32_t>((bits >> 23) & 0xFF) - 127 + 15;
  std::uint32_t mantissa = bits & 0x7FFFFFU;

  if (exponent >= 31) {  // overflow or inf/nan
    if (((bits >> 23) & 0xFF) == 0xFF && mantissa != 0) {
      return static_cast<std::uint16_t>(sign | 0x7E00U);  // NaN
    }
    return static_cast<std::uint16_t>(sign | 0x7C00U);  // +-inf
  }
  if (exponent <= 0) {  // subnormal or zero
    if (exponent < -10) return static_cast<std::uint16_t>(sign);
    mantissa |= 0x800000U;
    const int shift = 14 - exponent;
    std::uint32_t half_mantissa = mantissa >> shift;
    // round to nearest even
    const std::uint32_t rest = mantissa & ((1U << shift) - 1U);
    const std::uint32_t halfway = 1U << (shift - 1);
    if (rest > halfway || (rest == halfway && (half_mantissa & 1U))) {
      ++half_mantissa;
    }
    return static_cast<std::uint16_t>(sign | half_mantissa);
  }
  std::uint32_t half =
      sign | (static_cast<std::uint32_t>(exponent) << 10) | (mantissa >> 13);
  const std::uint32_t rest = mantissa & 0x1FFFU;
  if (rest > 0x1000U || (rest == 0x1000U && (half & 1U))) ++half;
  return static_cast<std::uint16_t>(half);
}

float half_to_float(std::uint16_t value) {
  const std::uint32_t sign = (static_cast<std::uint32_t>(value) & 0x8000U)
                             << 16;
  const std::uint32_t exponent = (value >> 10) & 0x1FU;
  const std::uint32_t mantissa = value & 0x3FFU;
  std::uint32_t bits;
  if (exponent == 0) {
    if (mantissa == 0) {
      bits = sign;  // zero
    } else {        // subnormal: normalise
      int e = -1;
      std::uint32_t m = mantissa;
      do {
        ++e;
        m <<= 1;
      } while ((m & 0x400U) == 0);
      bits = sign | (static_cast<std::uint32_t>(127 - 15 - e) << 23) |
             ((m & 0x3FFU) << 13);
    }
  } else if (exponent == 31) {
    bits = sign | 0x7F800000U | (mantissa << 13);  // inf/nan
  } else {
    bits = sign | ((exponent - 15 + 127) << 23) | (mantissa << 13);
  }
  return std::bit_cast<float>(bits);
}

// ---------------------------------------------------------------------------
// QuantizedSlotStore
// ---------------------------------------------------------------------------

QuantizedSlotStore::QuantizedSlotStore(int num_slots, Precision precision)
    : precision_(precision),
      slots_(static_cast<std::size_t>(num_slots)) {}

QuantizedSlotStore::~QuantizedSlotStore() {
  for (Encoded& slot : slots_) release(slot);
}

void QuantizedSlotStore::release(Encoded& slot) {
  if (slot.tracked > 0) {
    MemoryTracker::instance().on_free(slot.tracked);
    slot.tracked = 0;
  }
  slot.half.clear();
  slot.half.shrink_to_fit();
  slot.bytes.clear();
  slot.bytes.shrink_to_fit();
  slot.occupied = false;
}

void QuantizedSlotStore::put(std::int32_t slot, const Tensor& value) {
  Encoded& encoded = slots_.at(static_cast<std::size_t>(slot));
  release(encoded);
  encoded.shape = value.shape();
  const std::int64_t n = value.numel();
  const float* data = value.data();

  if (precision_ == Precision::Half) {
    encoded.half.resize(static_cast<std::size_t>(n));
    // Bulk SIMD kernel; bit-identical to the scalar float_to_half
    // reference (property-tested in slot_codec_test).
    convert::fp32_to_fp16(data, encoded.half.data(), n);
    encoded.tracked = static_cast<std::size_t>(n) * 2;
  } else {
    float lo = data[0];
    float hi = data[0];
    for (std::int64_t i = 1; i < n; ++i) {
      lo = std::min(lo, data[i]);
      hi = std::max(hi, data[i]);
    }
    const float range = std::max(hi - lo, 1e-12F);
    encoded.scale = range / 255.0F;
    encoded.zero = lo;
    encoded.bytes.resize(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
      const float q = (data[i] - lo) / encoded.scale;
      encoded.bytes[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(
          std::clamp(std::lround(q), 0L, 255L));
    }
    encoded.tracked = static_cast<std::size_t>(n);
  }
  MemoryTracker::instance().on_alloc(encoded.tracked);
  encoded.occupied = true;
}

Tensor QuantizedSlotStore::get(std::int32_t slot) {
  Encoded& encoded = slots_.at(static_cast<std::size_t>(slot));
  if (!encoded.occupied) empty_slot(slot);
  Tensor out = Tensor::empty(encoded.shape);
  float* data = out.data();
  const std::int64_t n = out.numel();
  if (precision_ == Precision::Half) {
    convert::fp16_to_fp32(encoded.half.data(), data, n);
  } else {
    for (std::int64_t i = 0; i < n; ++i) {
      data[i] = encoded.zero +
                encoded.scale *
                    static_cast<float>(encoded.bytes[static_cast<std::size_t>(i)]);
    }
  }
  return out;
}

void QuantizedSlotStore::drop(std::int32_t slot) {
  release(slots_.at(static_cast<std::size_t>(slot)));
}

std::size_t QuantizedSlotStore::resident_bytes() const {
  std::size_t total = 0;
  for (const Encoded& slot : slots_) total += slot.tracked;
  return total;
}

}  // namespace edgetrain::core
