#include "core/spill_io.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "persist/crc32.hpp"
#include "persist/io_latency.hpp"
#include "tensor/workspace.hpp"

namespace edgetrain::core::spill {

namespace {

constexpr std::uint32_t kVersion = 1;
constexpr char kMagic[4] = {'E', 'T', 'S', 'P'};
constexpr char kBlobMagic[4] = {'E', 'T', 'S', 'C'};
constexpr int kMaxRank = 4;

[[noreturn]] void io_error(const std::string& who, const std::string& what,
                           const std::string& path) {
  throw std::runtime_error(who + ": " + what + " " + path +
                           (errno != 0 ? std::string(" (") +
                                             std::strerror(errno) + ")"
                                       : std::string()));
}

/// Workspace span big enough for @p bytes, handed out as char*.
[[nodiscard]] char* scratch_bytes(std::size_t bytes) {
  const auto floats =
      static_cast<std::int64_t>((bytes + sizeof(float) - 1) / sizeof(float));
  return reinterpret_cast<char*>(Workspace::tls().alloc(floats));
}

void write_all(int fd, const char* data, std::size_t size,
               const std::string& who, const std::string& path) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      io_error(who, "write failed for", path);
    }
    done += static_cast<std::size_t>(n);
  }
}

}  // namespace

std::uint32_t write_spill(const std::string& who, const std::string& path,
                          const Tensor& value) {
  const std::size_t payload = value.bytes();
  const std::size_t total = kHeaderBytes + payload;

  // Assemble the whole file image in the arena: header, then payload, so
  // the spill leaves this thread with a single write() syscall and zero
  // heap traffic once the arena has warmed up.
  WorkspaceScope scope(Workspace::tls());
  char* image = scratch_bytes(total);
  std::memcpy(image + kHeaderBytes, value.data(), payload);
  const std::uint32_t crc = persist::crc32(image + kHeaderBytes, payload);

  std::memset(image, 0, kHeaderBytes);
  std::memcpy(image, kMagic, sizeof(kMagic));
  std::memcpy(image + 4, &kVersion, sizeof(kVersion));
  std::memcpy(image + 8, &crc, sizeof(crc));
  const auto rank = static_cast<std::uint32_t>(value.shape().rank());
  std::memcpy(image + 12, &rank, sizeof(rank));
  for (int d = 0; d < value.shape().rank() && d < kMaxRank; ++d) {
    const std::int64_t dim = value.shape()[d];
    std::memcpy(image + 16 + static_cast<std::size_t>(d) * sizeof(dim), &dim,
                sizeof(dim));
  }

  persist::apply_disk_latency();
  errno = 0;
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) io_error(who, "cannot open", path);
  write_all(fd, image, total, who, path);
  if (::close(fd) != 0) io_error(who, "close failed for", path);
  return crc;
}

Tensor read_spill(const std::string& who, const std::string& path,
                  const Shape& shape, std::uint32_t crc) {
  const auto payload = static_cast<std::size_t>(shape.numel()) * sizeof(float);
  persist::apply_disk_latency();
  errno = 0;
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) io_error(who, "cannot open", path);

  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    io_error(who, "cannot stat", path);
  }
  const auto file_size = static_cast<std::size_t>(st.st_size);
  if (file_size != kHeaderBytes + payload) {
    ::close(fd);
    throw std::runtime_error(
        who + ": spill file " + path +
        " is truncated or corrupt (expected " + std::to_string(payload) +
        " payload bytes behind a " + std::to_string(kHeaderBytes) +
        " byte header, found " + std::to_string(file_size) +
        " bytes in total)");
  }

  WorkspaceScope scope(Workspace::tls());
  char* image = scratch_bytes(file_size);
  std::size_t done = 0;
  while (done < file_size) {
    const ssize_t n = ::read(fd, image + done, file_size - done);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      ::close(fd);
      io_error(who, "read failed for", path);
    }
    done += static_cast<std::size_t>(n);
  }
  ::close(fd);

  // Ground truth is the in-RAM metadata recorded at write time: a spill
  // file whose header is self-consistent but belongs to different data
  // (swapped, stale, or rewritten behind our back) must still fail.
  if (std::memcmp(image, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error(who + ": spill file " + path +
                             " is truncated or corrupt (bad magic)");
  }
  if (persist::crc32(image + kHeaderBytes, payload) != crc) {
    throw std::runtime_error(
        who + ": spill file " + path +
        " failed its checksum (bit rot or concurrent modification); "
        "refusing to return a corrupt checkpoint");
  }

  Tensor out = Tensor::empty(shape);
  std::memcpy(out.data(), image + kHeaderBytes, payload);
  return out;
}

std::uint32_t write_spill_blob(const std::string& who, const std::string& path,
                               const std::uint8_t* data, std::size_t size) {
  const std::size_t total = kHeaderBytes + size;

  WorkspaceScope scope(Workspace::tls());
  char* image = scratch_bytes(total);
  std::memcpy(image + kHeaderBytes, data, size);
  const std::uint32_t crc = persist::crc32(image + kHeaderBytes, size);

  std::memset(image, 0, kHeaderBytes);
  std::memcpy(image, kBlobMagic, sizeof(kBlobMagic));
  std::memcpy(image + 4, &kVersion, sizeof(kVersion));
  std::memcpy(image + 8, &crc, sizeof(crc));
  // rank stays 0; dims[0] records the encoded byte length instead.
  const auto length = static_cast<std::int64_t>(size);
  std::memcpy(image + 16, &length, sizeof(length));

  persist::apply_disk_latency();
  errno = 0;
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) io_error(who, "cannot open", path);
  write_all(fd, image, total, who, path);
  if (::close(fd) != 0) io_error(who, "close failed for", path);
  return crc;
}

void read_spill_blob(const std::string& who, const std::string& path,
                     std::size_t size, std::uint32_t crc, std::uint8_t* out) {
  persist::apply_disk_latency();
  errno = 0;
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) io_error(who, "cannot open", path);

  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    io_error(who, "cannot stat", path);
  }
  const auto file_size = static_cast<std::size_t>(st.st_size);
  if (file_size != kHeaderBytes + size) {
    ::close(fd);
    throw std::runtime_error(
        who + ": spill file " + path + " is truncated or corrupt (expected " +
        std::to_string(size) + " encoded bytes behind a " +
        std::to_string(kHeaderBytes) + " byte header, found " +
        std::to_string(file_size) + " bytes in total)");
  }

  WorkspaceScope scope(Workspace::tls());
  char* image = scratch_bytes(file_size);
  std::size_t done = 0;
  while (done < file_size) {
    const ssize_t n = ::read(fd, image + done, file_size - done);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      ::close(fd);
      io_error(who, "read failed for", path);
    }
    done += static_cast<std::size_t>(n);
  }
  ::close(fd);

  if (std::memcmp(image, kBlobMagic, sizeof(kBlobMagic)) != 0) {
    throw std::runtime_error(who + ": spill file " + path +
                             " is truncated or corrupt (bad magic)");
  }
  if (persist::crc32(image + kHeaderBytes, size) != crc) {
    throw std::runtime_error(
        who + ": spill file " + path +
        " failed its checksum (bit rot or concurrent modification); "
        "refusing to return a corrupt checkpoint");
  }
  std::memcpy(out, image + kHeaderBytes, size);
}

}  // namespace edgetrain::core::spill
