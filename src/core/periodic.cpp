#include "core/periodic.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace edgetrain::core::periodic {

namespace {

/// Segment boundaries 0 = b_0 < b_1 < ... < b_{s+1} = l, as even as
/// possible (first segments one longer when l % (s+1) != 0).
std::vector<std::int32_t> boundaries(int num_steps, int free_slots) {
  const int segments = std::min(free_slots, num_steps - 1) + 1;
  std::vector<std::int32_t> b(static_cast<std::size_t>(segments) + 1, 0);
  const int base = num_steps / segments;
  const int extra = num_steps % segments;
  for (int i = 0; i < segments; ++i) {
    b[static_cast<std::size_t>(i) + 1] =
        b[static_cast<std::size_t>(i)] + base + (i < extra ? 1 : 0);
  }
  return b;
}

}  // namespace

std::int64_t forward_cost(int num_steps, int free_slots) {
  if (num_steps < 1) throw std::invalid_argument("periodic: num_steps < 1");
  if (free_slots < 0) throw std::invalid_argument("periodic: free_slots < 0");
  const auto b = boundaries(num_steps, free_slots);
  std::int64_t cost = num_steps;  // the sweep
  for (std::size_t seg = 0; seg + 1 < b.size(); ++seg) {
    const std::int64_t m = b[seg + 1] - b[seg];
    cost += m * (m - 1) / 2;  // re-advances within the segment
  }
  // Accounting matches core/revolve.hpp's analytic model (backward(i)
  // needs state_i current; its re-materialisation is inside the backward
  // unit). The emitted executor schedule folds the last backward into the
  // sweep, so its advance count is slightly below this analytic figure
  // (asserted in tests/core/periodic_test.cpp).
  return cost;
}

double recompute_factor(int num_steps, int free_slots) {
  return static_cast<double>(forward_cost(num_steps, free_slots) + num_steps) /
         (2.0 * static_cast<double>(num_steps));
}

Schedule make_schedule(int num_steps, int free_slots) {
  if (num_steps < 1) throw std::invalid_argument("periodic: num_steps < 1");
  free_slots = std::clamp(free_slots, 0, std::max(num_steps - 1, 0));
  const auto b = boundaries(num_steps, free_slots);
  const int segments = static_cast<int>(b.size()) - 1;
  Schedule sched(num_steps, segments);

  // Sweep: advance everything, storing each segment input; the last step
  // runs in saving mode so the first backward comes off the sweep.
  sched.store(0, 0);
  for (std::int32_t i = 0; i < num_steps - 1; ++i) {
    // Store segment boundaries as they are reached.
    sched.forward(i);
    for (int seg = 1; seg < segments; ++seg) {
      if (b[static_cast<std::size_t>(seg)] == i + 1) {
        sched.store(i + 1, static_cast<std::int32_t>(seg));
      }
    }
  }
  sched.forward_save(num_steps - 1);
  sched.backward(num_steps - 1);

  // Reversal: for each remaining step, re-advance from its segment input.
  for (std::int32_t i = num_steps - 2; i >= 0; --i) {
    // Find the segment input at or below i.
    int seg = segments - 1;
    while (b[static_cast<std::size_t>(seg)] > i) --seg;
    const std::int32_t base = b[static_cast<std::size_t>(seg)];
    sched.restore(base, static_cast<std::int32_t>(seg));
    for (std::int32_t k = base; k < i; ++k) sched.forward(k);
    sched.forward_save(i);
    sched.backward(i);
    if (i == base && seg > 0) {
      sched.free(static_cast<std::int32_t>(seg));  // segment fully reversed
    }
  }
  sched.free(0);
  return sched;
}

}  // namespace edgetrain::core::periodic
