// edgetrain: optimal checkpointing for heterogeneous chains.
//
// Real ResNets are not homogeneous: the stem, the four stages and the head
// have different forward costs. Treating each residual block as one chain
// step gives a short (tens of steps) heterogeneous chain; this solver
// generalises the Revolve DP to per-step forward costs (checkpoint slots
// remain uniform: one boundary activation each, the block-level M_A).
//
//   R(a, b, s) = min_{a<j<b} [ sum(f_a..f_{j-1}) + R(j, b, s-1) + R(a, j, s) ]
//   F(a, b, s) = min_{a<j<b} [ sum(f_a..f_{j-1}) + F(j, b, s-1) + R(a, j, s) ]
//
// with R(a,a+1,s) = 0, F(a,a+1,s) = f_a, and the slot-less bases given by
// repeated re-advancing from the segment input. With all f_i = 1 the costs
// coincide with core/revolve.hpp (property-tested).
//
// F's bookkeeping follows the paper (and core/revolve.hpp): the length-1
// base charges f_a for the saving forward that feeds the step's backward.
// The executor's ground-truth cost model (analysis::interp) instead
// absorbs every such re-materialisation into its Backward unit -- each
// step pays it exactly once under any schedule, so it is a constant -- and
// charges only the re-advances. Minimising F is NOT the same as
// minimising re-advances (F carries the saving forwards of only the
// innermost base segment, a split-dependent term), so the solvers keep a
// third table E with save-free bases
//
//   E(a, a+1, s) = 0,   E(a, b, 0) = R(a, b, 0)
//   E(a, b, s) = min_{a<j<b} [ sum(f_a..f_{j-1}) + E(j, b, s-1) + R(a, j, s) ]
//
// whose argmins drive make_schedule: the emitted schedule is optimal in
// real (interpreter / wall-clock) cost, while forward_cost() still
// reports the paper-convention F.
//
// Complexity: O(l^2 * s) states, O(l) transitions each -> O(l^3 * s).
// Intended for block-level chains (l <= ~200).
#pragma once

#include <cstdint>
#include <vector>

#include "core/schedule.hpp"

namespace edgetrain::core::hetero {

/// DP solver for one chain; build once, query/emit schedules per slot count.
class HeteroSolver {
 public:
  /// @p forward_costs: per-step forward cost (arbitrary positive units).
  /// @p max_free_slots: largest s the tables cover (clamped to l-1).
  HeteroSolver(std::vector<double> forward_costs, int max_free_slots);

  [[nodiscard]] int num_steps() const noexcept {
    return static_cast<int>(costs_.size());
  }
  [[nodiscard]] int max_free_slots() const noexcept { return max_slots_; }

  /// Total forward cost of one un-checkpointed sweep (sum of step costs).
  [[nodiscard]] double sweep_cost() const noexcept { return total_; }

  /// F(0, l, s): forward cost of a full training pass with s free slots.
  [[nodiscard]] double forward_cost(int free_slots) const;

  /// E(0, l, s): the pure re-advance cost of the optimal schedule, i.e.
  /// what analysis::interpret charges as forward cost (re-materialisation
  /// saves absorbed into Backward). make_schedule minimises this.
  [[nodiscard]] double advance_cost(int free_slots) const;

  /// Recompute factor with backward cost = bwd_ratio * forward cost of the
  /// same step: rho = (F(s) + bwd) / (sweep + bwd).
  [[nodiscard]] double recompute_factor(int free_slots,
                                        double bwd_ratio = 1.0) const;

  /// Smallest s with recompute_factor(s) <= rho_budget (clamped to l-1).
  [[nodiscard]] int min_free_slots_for_rho(double rho_budget,
                                           double bwd_ratio = 1.0) const;

  /// Executor-dialect schedule realising advance_cost(free_slots): no
  /// schedule with the same slot budget interprets to a lower cost.
  [[nodiscard]] Schedule make_schedule(int free_slots) const;

 private:
  [[nodiscard]] std::size_t idx(int a, int b, int s) const {
    const std::size_t l = costs_.size();
    return (static_cast<std::size_t>(a) * (l + 1) +
            static_cast<std::size_t>(b)) *
               static_cast<std::size_t>(max_slots_ + 1) +
           static_cast<std::size_t>(s);
  }
  [[nodiscard]] double span(int a, int b) const {
    return prefix_[static_cast<std::size_t>(b)] -
           prefix_[static_cast<std::size_t>(a)];
  }

  std::vector<double> costs_;
  std::vector<double> prefix_;  // prefix_[i] = sum of costs_[0..i)
  double total_ = 0.0;
  int max_slots_ = 0;
  std::vector<double> rev_;        // R(a, b, s)
  std::vector<double> fwd_;        // F(a, b, s): paper convention
  std::vector<double> exec_;       // E(a, b, s): interpreter convention
  std::vector<std::int32_t> rev_split_;
  std::vector<std::int32_t> fwd_split_;
  std::vector<std::int32_t> exec_split_;
};

/// Byte-budget heterogeneous checkpointing.
///
/// HeteroSolver treats all checkpoints as equally sized ("slots"), but the
/// boundary states of a real ResNet differ by ~8x across stages (spatial
/// halving vs channel doubling). This solver plans against an actual byte
/// budget: storing state j consumes state_units[j] of the budget, so the
/// optimum prefers the cheap-to-store boundaries (stage transitions). The
/// budget is expressed in caller-chosen units (e.g. one unit = the
/// smallest boundary's bytes).
///
///   R(a, b, M) = min( re-advance fallback,
///                     min_{a<j<b, u_j<=M} span(a,j) + R(j,b,M-u_j)
///                                         + R(a,j,M) )
/// with the chain input always available for free. With all u_j == 1 this
/// reduces exactly to HeteroSolver with M slots (property-tested).
class ByteBudgetSolver {
 public:
  /// @p forward_costs: per-step cost, size l.
  /// @p state_units: storage cost of each boundary state 1..l-1 in budget
  ///    units (size l-1; the chain input and output are never stored).
  /// @p budget_units: total checkpoint budget.
  ByteBudgetSolver(std::vector<double> forward_costs,
                   std::vector<int> state_units, int budget_units);

  [[nodiscard]] int num_steps() const noexcept {
    return static_cast<int>(costs_.size());
  }
  [[nodiscard]] int budget_units() const noexcept { return budget_; }
  [[nodiscard]] double sweep_cost() const noexcept { return total_; }

  /// F(0, l, budget): forward cost of a full training pass.
  [[nodiscard]] double forward_cost() const;

  /// E(0, l, budget): pure re-advance cost (interpreter convention; see
  /// the HeteroSolver table notes). make_schedule minimises this.
  [[nodiscard]] double advance_cost() const;

  /// rho with backward = bwd_ratio * forward per step.
  [[nodiscard]] double recompute_factor(double bwd_ratio = 1.0) const;

  /// Executor-dialect schedule realising advance_cost(). Stored states use
  /// slot ids equal to their state index (slot 0 = input); peak *bytes*
  /// are governed by the unit budget, not the slot count.
  [[nodiscard]] Schedule make_schedule() const;

 private:
  [[nodiscard]] std::size_t idx(int a, int b, int m) const {
    const std::size_t l = costs_.size();
    return (static_cast<std::size_t>(a) * (l + 1) +
            static_cast<std::size_t>(b)) *
               static_cast<std::size_t>(budget_ + 1) +
           static_cast<std::size_t>(m);
  }
  [[nodiscard]] double span(int a, int b) const {
    return prefix_[static_cast<std::size_t>(b)] -
           prefix_[static_cast<std::size_t>(a)];
  }
  void solve_cell(int a, int b, int m);

  std::vector<double> costs_;
  std::vector<int> units_;    // index by state 1..l-1 (units_[state-1])
  std::vector<double> prefix_;
  double total_ = 0.0;
  int budget_ = 0;
  std::vector<double> rev_;
  std::vector<double> fwd_;
  std::vector<double> exec_;
  std::vector<std::int32_t> rev_split_;  // 0 = fallback
  std::vector<std::int32_t> fwd_split_;
  std::vector<std::int32_t> exec_split_;
};

}  // namespace edgetrain::core::hetero
