#include "core/online.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace edgetrain::core::online {

OnlineCheckpointer::OnlineCheckpointer(int free_slots)
    : free_slots_(free_slots) {
  if (free_slots < 0) {
    throw std::invalid_argument("OnlineCheckpointer: free_slots < 0");
  }
  stored_.reserve(static_cast<std::size_t>(free_slots));
}

bool OnlineCheckpointer::advance(std::int32_t state) {
  if (state != last_state_ + 1) {
    throw std::logic_error("OnlineCheckpointer: states must arrive in order");
  }
  last_state_ = state;
  if (free_slots_ == 0) return false;
  if (state % stride_ != 0) return false;
  if (static_cast<int>(stored_.size()) == free_slots_) {
    // All slots busy: double the stride, evicting the states that no
    // longer lie on the coarser grid.
    const std::int32_t doubled = stride_ * 2;
    const std::size_t before = stored_.size();
    std::erase_if(stored_,
                  [doubled](std::int32_t s) { return s % doubled != 0; });
    evictions_ += static_cast<std::int64_t>(before - stored_.size());
    stride_ = doubled;
    if (state % stride_ != 0) return false;
  }
  stored_.push_back(state);
  return true;
}

std::vector<std::int32_t> OnlineCheckpointer::stored_states() const {
  std::vector<std::int32_t> result;
  result.reserve(stored_.size() + 1);
  result.push_back(0);
  result.insert(result.end(), stored_.begin(), stored_.end());
  return result;
}

std::int64_t OnlineCheckpointer::reversal_cost() const {
  const std::vector<std::int32_t> bases = stored_states();
  std::int64_t cost = 0;
  for (std::size_t seg = 0; seg < bases.size(); ++seg) {
    const std::int64_t begin = bases[seg];
    const std::int64_t end =
        seg + 1 < bases.size() ? bases[seg + 1] : last_state_;
    const std::int64_t m = end - begin;  // steps whose input is in [begin,end)
    cost += m * (m - 1) / 2;
  }
  return cost;
}

Schedule OnlineCheckpointer::make_schedule() const {
  const std::int32_t l = last_state_;
  if (l < 1) throw std::logic_error("OnlineCheckpointer: empty chain");
  Schedule sched(l, free_slots_ + 1);
  sched.store(0, 0);

  // Re-simulate the policy, assigning slots as they free up.
  std::vector<std::int32_t> pool;
  for (std::int32_t slot = free_slots_; slot >= 1; --slot) {
    pool.push_back(slot);
  }
  std::unordered_map<std::int32_t, std::int32_t> slot_of;
  slot_of[0] = 0;
  std::vector<std::int32_t> live;  // stored states excluding 0, ascending
  std::int32_t stride = 1;

  for (std::int32_t state = 1; state <= l; ++state) {
    sched.forward(state - 1);
    if (free_slots_ == 0 || state % stride != 0) continue;
    if (static_cast<int>(live.size()) == free_slots_) {
      const std::int32_t doubled = stride * 2;
      for (auto it = live.begin(); it != live.end();) {
        if (*it % doubled != 0) {
          sched.free(slot_of.at(*it));
          pool.push_back(slot_of.at(*it));
          slot_of.erase(*it);
          it = live.erase(it);
        } else {
          ++it;
        }
      }
      stride = doubled;
      if (state % stride != 0) continue;
    }
    const std::int32_t slot = pool.back();
    pool.pop_back();
    slot_of[state] = slot;
    live.push_back(state);
    sched.store(state, slot);
  }

  // Reversal: re-advance each step from its nearest surviving checkpoint.
  const std::vector<std::int32_t> bases = stored_states();
  for (std::int32_t i = l - 1; i >= 0; --i) {
    auto it = std::upper_bound(bases.begin(), bases.end(), i);
    const std::int32_t base = *std::prev(it);
    sched.restore(base, slot_of.at(base));
    for (std::int32_t k = base; k < i; ++k) sched.forward(k);
    sched.forward_save(i);
    sched.backward(i);
    if (i == base && base != 0) {
      sched.free(slot_of.at(base));
    }
  }
  sched.free(0);
  return sched;
}

OnlineCheckpointer simulate_stream(int num_steps, int free_slots) {
  OnlineCheckpointer policy(free_slots);
  for (std::int32_t state = 1; state <= num_steps; ++state) {
    (void)policy.advance(state);
  }
  return policy;
}

}  // namespace edgetrain::core::online
