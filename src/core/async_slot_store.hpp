// edgetrain: asynchronous (write-behind + prefetch) disk checkpointing.
//
// With DiskSlotStore every spill blocks the training step, so SD-card
// latency adds *on top of* the paper's 2*rho*l recompute bound. But the
// executor replays a fully known Schedule: every future spill and restore
// is predictable, which is the classic overlap opportunity of hierarchical
// checkpointing (multi-level Revolve / out-of-core adjoints). This store
// hides the IO inside the recompute:
//
//   * put() is write-behind: the tensor handle is staged (bounded budget)
//     and handed to a dedicated BackgroundWorker thread; the call returns
//     as soon as staging space is available, and the file write, CRC and
//     injected SD-latency all happen off the training thread.
//   * get() joins only its own slot: a write still staged is returned
//     straight from RAM (write-behind cache hit); a flushed slot is served
//     from the prefetch staging buffer when the lookahead already read it,
//     and only falls back to a blocking read when prefetch never got to it.
//   * the executor feeds the remaining action tape through the
//     SlotStore::begin_replay/on_replay_position lookahead API; the store
//     scans the upcoming Restores and prefetches spilled slots into a
//     double-buffered staging area while the CPU recomputes the sweep.
//
// Failure semantics stay as loud as the synchronous store's: a failed or
// corrupted background write/read is captured as an exception_ptr and
// re-thrown by the get() that owns the slot (never swallowed); checksum
// verification runs on every byte that comes back from disk, prefetched or
// not. Destruction drains the worker before deleting spill files.
//
// Memory honesty: staged writes and prefetched reads are real RAM and are
// charged to resident_bytes(); the staging budget (default one slot per
// direction) is the `+ staging` term the analysis:: interpreter adds to
// the planner bound when it models overlapped schedules.
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/slot_store.hpp"
#include "core/thread_annotations.hpp"
#include "tensor/parallel.hpp"

namespace edgetrain::core {

struct AsyncDiskSlotStoreOptions {
  /// Staged (written-behind) spills the training thread may run ahead of
  /// the disk; put() blocks once the budget is full. >= 1.
  int write_staging_slots = 1;
  /// Prefetched restores held in RAM ahead of their Restore action. >= 0
  /// (0 disables prefetch; gets still benefit from write-behind).
  int read_staging_slots = 1;
  /// Upcoming Restore actions scanned per lookahead step when choosing
  /// what to prefetch next.
  int lookahead_window = 8;
  /// Slot codec applied to spilled payloads (core/slot_codec.hpp). put()
  /// encodes on the calling thread (parallel kernels) and stages the
  /// *encoded* blob, so write-behind staging holds compressed bytes, the
  /// file write moves compressed bytes, and -- for the lossy casts --
  /// every get() path (write-behind hit, prefetch hit, blocking read)
  /// returns the identical decode of the same blob. Prefetched restores
  /// are decoded on the background IO thread (Threading::Serial), so
  /// decompression overlaps recompute instead of borrowing the pool.
  SlotCodec codec = SlotCodec::None;
  /// Test hook: called on the IO thread before each spill write
  /// (is_write=true) / prefetch or blocking read (false); may throw to
  /// inject an IO failure for that slot.
  std::function<void(std::int32_t slot, bool is_write)> io_fault;
};

class AsyncDiskSlotStore final : public SlotStore {
 public:
  AsyncDiskSlotStore(int num_slots, int first_disk_slot,
                     std::string directory,
                     AsyncDiskSlotStoreOptions options = {});
  ~AsyncDiskSlotStore() override;

  void put(std::int32_t slot, const Tensor& value) override;
  [[nodiscard]] Tensor get(std::int32_t slot) override;
  void drop(std::int32_t slot) override;
  [[nodiscard]] std::size_t resident_bytes() const override;
  [[nodiscard]] std::size_t external_bytes() const override;
  /// Encoded/plaintext ratio of the last put into @p slot (1.0 for RAM
  /// slots, codec-less stores, and slots never spilled). Recorded at
  /// encode time on the training thread, so it is current the moment
  /// put() returns even while the write is still in flight.
  [[nodiscard]] double measured_slot_ratio(std::int32_t slot) const override;

  void begin_replay(const Schedule& schedule) override;
  void on_replay_position(std::int64_t next_action) override;
  void end_replay() override;

  /// Blocks until every staged write has reached disk (or failed). The
  /// executor never needs this; tests and checkpoint-consistency points
  /// (e.g. before a snapshot) do.
  void flush();

  // Counters (totals since construction; cheap, lock-protected).
  [[nodiscard]] std::int64_t disk_writes() const;
  [[nodiscard]] std::int64_t disk_reads() const;
  /// get() calls served from the prefetch staging buffer.
  [[nodiscard]] std::int64_t prefetch_hits() const;
  /// get() calls served from a still-staged write (no disk read at all).
  [[nodiscard]] std::int64_t write_behind_hits() const;
  /// get() calls that had to fall back to a blocking read.
  [[nodiscard]] std::int64_t blocking_reads() const;

 private:
  enum class State : std::uint8_t {
    Empty,        ///< nothing stored
    WritePending, ///< staged; write queued or running on the IO thread
    OnDisk,       ///< flushed; payload lives only in the spill file
    Failed,       ///< background write failed; error re-thrown by get()
  };

  struct DiskSlot {
    State state = State::Empty;
    std::uint64_t generation = 0;  ///< bumped by put/drop to void old jobs
    Tensor staged;       ///< write-behind payload (shares caller storage)
    /// Encoded write-behind payload (codec != None); replaces `staged` so
    /// staging RAM holds compressed bytes and every get() decodes the same
    /// blob the file write flushes. shared_ptr: the IO thread keeps the
    /// blob alive through a write that an invalidate races.
    std::shared_ptr<std::vector<std::uint8_t>> staged_blob;
    Tensor prefetched;   ///< read-ahead staging buffer (owned)
    bool prefetch_queued = false;  ///< a prefetch job is queued/in flight
    Shape shape;
    std::uint32_t crc = 0;
    std::size_t disk_bytes = 0;    ///< payload bytes of the on-disk file
    std::exception_ptr error;      ///< failed write / corrupt prefetch
  };

  [[nodiscard]] std::string path_for(std::int32_t slot) const;
  [[nodiscard]] bool is_disk_slot(std::int32_t slot) const {
    return slot >= first_disk_slot_;
  }
  [[nodiscard]] DiskSlot& disk_at(std::int32_t slot) REQUIRES(mu_) {
    return disk_.at(static_cast<std::size_t>(slot));
  }

  // All private helpers below require mu_ held (enforced by clang TSA).
  void invalidate_locked(DiskSlot& slot) REQUIRES(mu_);
  void maybe_prefetch_locked() REQUIRES(mu_);
  [[nodiscard]] bool restored_again_soon_locked(std::int32_t slot) const
      REQUIRES(mu_);
  void enqueue_write_locked(std::int32_t slot) REQUIRES(mu_);
  void enqueue_prefetch_locked(std::int32_t slot) REQUIRES(mu_);
  [[nodiscard]] Tensor take_prefetched_locked(DiskSlot& slot) REQUIRES(mu_);

  // IO-thread bodies (take mu_ themselves).
  void run_write(std::int32_t slot, std::uint64_t generation) EXCLUDES(mu_);
  void run_prefetch(std::int32_t slot, std::uint64_t generation)
      EXCLUDES(mu_);

  int first_disk_slot_;
  std::string directory_;
  AsyncDiskSlotStoreOptions options_;

  // Locking discipline: mu_ is the single lock for ALL mutable store state,
  // including the RAM tier -- resident_bytes() walks ram_ from whatever
  // thread polls memory while the training thread puts/drops, so the RAM
  // fast path takes the lock too (it is uncontended and never held across
  // IO). The lock is never held across a file read/write, a codec
  // encode/decode, or a worker_.submit() callback boundary: IO-thread
  // bodies copy what they need out under mu_, do the slow work unlocked,
  // and re-acquire to publish. Waits are all while-loop shaped so the
  // predicate reads are visibly under the capability.
  mutable Mutex mu_;
  CondVar cv_;                   ///< staging space / job completion
  /// RAM tier (slots below first_disk_slot). Guarded: see discipline note.
  std::vector<Tensor> ram_ GUARDED_BY(mu_);
  std::vector<DiskSlot> disk_ GUARDED_BY(mu_);
  /// Last measured encoded/plaintext ratio per slot (1.0 until spilled).
  std::vector<double> slot_ratios_ GUARDED_BY(mu_);
  int staged_writes_ GUARDED_BY(mu_) = 0;  ///< queued/in flight (<= budget)
  int staged_reads_ GUARDED_BY(mu_) = 0;   ///< prefetch buffers (<= budget)
  std::size_t disk_bytes_ GUARDED_BY(mu_) = 0;

  // Lookahead state: (action position, slot) of every future disk Restore,
  // and the replay cursor that retires them.
  std::vector<std::pair<std::int64_t, std::int32_t>> future_restores_
      GUARDED_BY(mu_);
  std::size_t restore_cursor_ GUARDED_BY(mu_) = 0;
  bool replay_active_ GUARDED_BY(mu_) = false;

  std::int64_t writes_ GUARDED_BY(mu_) = 0;
  std::int64_t reads_ GUARDED_BY(mu_) = 0;
  std::int64_t prefetch_hits_ GUARDED_BY(mu_) = 0;
  std::int64_t write_behind_hits_ GUARDED_BY(mu_) = 0;
  std::int64_t blocking_reads_ GUARDED_BY(mu_) = 0;

  BackgroundWorker worker_;  ///< last member: jobs reference state above
};

}  // namespace edgetrain::core
