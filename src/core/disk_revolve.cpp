#include "core/disk_revolve.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace edgetrain::core::disk {

DiskRevolveSolver::DiskRevolveSolver(int num_steps,
                                     const DiskRevolveOptions& options)
    : num_steps_(num_steps), options_(options) {
  if (num_steps < 1) throw std::invalid_argument("DiskRevolve: l < 1");
  if (options_.ram_slots < 0) {
    throw std::invalid_argument("DiskRevolve: ram_slots < 0");
  }
  if (options_.write_cost < 0.0 || options_.read_cost < 0.0) {
    throw std::invalid_argument("DiskRevolve: negative IO cost");
  }
  if (options_.spill_bytes_ratio <= 0.0 || options_.spill_bytes_ratio > 1.0) {
    throw std::invalid_argument(
        "DiskRevolve: spill_bytes_ratio must be in (0, 1]");
  }
  double spill_ratio = options_.spill_bytes_ratio;
  if (!options_.spill_slot_ratios.empty()) {
    double sum = 0.0;
    for (const double ratio : options_.spill_slot_ratios) {
      if (ratio <= 0.0 || ratio > 1.0) {
        throw std::invalid_argument(
            "DiskRevolve: spill_slot_ratios must be in (0, 1]");
      }
      sum += ratio;
    }
    spill_ratio =
        sum / static_cast<double>(options_.spill_slot_ratios.size());
  }
  options_.ram_slots = std::min(options_.ram_slots, std::max(num_steps - 1, 0));

  const std::size_t size = static_cast<std::size_t>(num_steps + 1) *
                           static_cast<std::size_t>(options_.ram_slots + 1) * 2;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  fwd_.assign(size, kInf);
  rev_.assign(size, kInf);
  fwd_choice_.assign(size, Choice{});
  rev_choice_.assign(size, Choice{});

  // IO time is proportional to bytes moved, so the codec ratio scales the
  // calibrated per-checkpoint costs directly.
  const double read[2] = {0.0, options_.read_cost * spill_ratio};
  const double write[2] = {0.0, options_.write_cost * spill_ratio};
  // Overlap pricing (async store): a restore issued behind @p window forward
  // units of guaranteed compute only bills the part the pipeline cannot
  // hide. Serial pricing is the window = 0 special case.
  const auto eff_read = [&](std::size_t li, double window) {
    return options_.overlap_io ? std::max(read[li] - window, 0.0) : read[li];
  };

  // Convention (matches the schedule emitter exactly): every recursion
  // enters with the current state positioned at the segment input; restores
  // are charged where the emitter issues them (re-positioning after the
  // right sub-segment, and per backward in the slot-less base case). The
  // sweep cost F is counted analytically: the paper's Backward unit absorbs
  // its own re-materialisation, so F(1) = 1 (the sweep through the step).
  for (int c = 0; c <= options_.ram_slots; ++c) {
    for (const Level level : {Level::Ram, Level::Disk}) {
      fwd_[idx(1, c, level)] = 1.0;
      rev_[idx(1, c, level)] = 0.0;
    }
  }

  for (int len = 2; len <= num_steps; ++len) {
    for (int c = 0; c <= options_.ram_slots; ++c) {
      for (const Level level : {Level::Ram, Level::Disk}) {
        const auto li = static_cast<std::size_t>(level);
        double best_f = kInf;
        double best_r = kInf;
        Choice cf;
        Choice cr;
        for (int j = 1; j < len; ++j) {
          for (const Level m : {Level::Ram, Level::Disk}) {
            if (m == Level::Ram && c == 0) continue;
            if (m == Level::Disk && !options_.allow_disk) continue;
            const auto mi = static_cast<std::size_t>(m);
            const int c_inner = m == Level::Ram ? c - 1 : c;
            // advance j + write checkpoint, recurse right, re-position to
            // the segment input (one read at this level), recurse left.
            // Overlapped: the write-behind store hides under the advance
            // (max instead of sum) and the re-positioning read prefetches
            // under the right sub-segment's reversal, which performs at
            // least its len - j backwards before the restore is consumed.
            const double rev_left =
                eff_read(li, static_cast<double>(len - j)) +
                rev_[idx(j, c, level)];
            const double common =
                options_.overlap_io
                    ? std::max(static_cast<double>(j), write[mi])
                    : static_cast<double>(j) + write[mi];
            const double f = common + fwd_[idx(len - j, c_inner, m)] + rev_left;
            if (f < best_f) {
              best_f = f;
              cf = Choice{static_cast<std::int32_t>(j), m};
            }
            const double r = common + rev_[idx(len - j, c_inner, m)] + rev_left;
            if (r < best_r) {
              best_r = r;
              cr = Choice{static_cast<std::int32_t>(j), m};
            }
          }
        }
        // Slot-less fallback: re-advance from the segment input every time.
        {
          const double readvance =
              static_cast<double>(len) * (len - 1) / 2.0;
          // Overlapped: the restore before the k-step re-advance prefetches
          // under the previous iteration's k+1 advances and one backward.
          double repositions = 0.0;
          for (int k = 0; k <= len - 2; ++k) {
            repositions += eff_read(li, static_cast<double>(k + 2));
          }
          const double r0 = readvance + repositions;
          // A sweep additionally pays one more reposition: after reaching
          // the chain end, the first backward's re-advance starts with a
          // restore of the segment input (the reversal base enters with the
          // input already current, the sweep leaves the end current). Its
          // prefetch window is the whole len-step sweep.
          const double f0 = static_cast<double>(len) + r0 +
                            eff_read(li, static_cast<double>(len));
          if (f0 < best_f) {
            best_f = f0;
            cf = Choice{0, level};
          }
          if (r0 < best_r) {
            best_r = r0;
            cr = Choice{0, level};
          }
        }
        fwd_[idx(len, c, level)] = best_f;
        rev_[idx(len, c, level)] = best_r;
        fwd_choice_[idx(len, c, level)] = cf;
        rev_choice_[idx(len, c, level)] = cr;
      }
    }
  }
}

double DiskRevolveSolver::forward_cost() const {
  return fwd_[idx(num_steps_, options_.ram_slots, Level::Ram)];
}

double DiskRevolveSolver::recompute_factor() const {
  return (forward_cost() + static_cast<double>(num_steps_)) /
         (2.0 * static_cast<double>(num_steps_));
}

Schedule DiskRevolveSolver::make_schedule() const {
  // Slot ids: 0..ram_slots are RAM (0 = input); disk ids grow from
  // ram_slots+1 with LIFO reuse.
  const int disk_slot_budget = num_steps_;  // safe upper bound
  Schedule sched(num_steps_,
                 options_.ram_slots + 1 + disk_slot_budget);
  std::vector<std::int32_t> free_ram;
  for (int slot = options_.ram_slots; slot >= 1; --slot) {
    free_ram.push_back(static_cast<std::int32_t>(slot));
  }
  std::vector<std::int32_t> free_disk;
  for (int slot = options_.ram_slots + disk_slot_budget;
       slot > options_.ram_slots; --slot) {
    free_disk.push_back(static_cast<std::int32_t>(slot));
  }

  auto reverse_one = [&](std::int32_t step) {
    sched.forward_save(step);
    sched.backward(step);
  };

  // Pre for both emitters: current state == a; state a stored in input_slot.
  auto reverse_impl = [&](auto&& self, int a, int b, int c, Level level,
                          std::int32_t input_slot) -> void {
    if (b - a == 1) {
      reverse_one(static_cast<std::int32_t>(a));
      return;
    }
    const Choice choice =
        rev_choice_[idx(b - a, c, level)];
    if (choice.split == 0) {
      for (int i = b - 1; i >= a; --i) {
        if (i != b - 1) sched.restore(static_cast<std::int32_t>(a), input_slot);
        for (int k = a; k < i; ++k) sched.forward(static_cast<std::int32_t>(k));
        reverse_one(static_cast<std::int32_t>(i));
      }
      return;
    }
    const int j = a + choice.split;
    for (int i = a; i < j; ++i) sched.forward(static_cast<std::int32_t>(i));
    auto& pool = choice.store_level == Level::Ram ? free_ram : free_disk;
    const std::int32_t slot = pool.back();
    pool.pop_back();
    sched.store(static_cast<std::int32_t>(j), slot);
    const int c_inner = choice.store_level == Level::Ram ? c - 1 : c;
    self(self, j, b, c_inner, choice.store_level, slot);
    sched.free(slot);
    pool.push_back(slot);
    sched.restore(static_cast<std::int32_t>(a), input_slot);
    self(self, a, j, c, level, input_slot);
  };

  auto sweep_impl = [&](auto&& self, int a, int b, int c, Level level,
                        std::int32_t input_slot) -> void {
    if (b - a == 1) {
      reverse_one(static_cast<std::int32_t>(a));
      return;
    }
    const Choice choice = fwd_choice_[idx(b - a, c, level)];
    if (choice.split == 0) {
      for (int i = a; i < b - 1; ++i) sched.forward(static_cast<std::int32_t>(i));
      reverse_one(static_cast<std::int32_t>(b - 1));
      for (int i = b - 2; i >= a; --i) {
        sched.restore(static_cast<std::int32_t>(a), input_slot);
        for (int k = a; k < i; ++k) sched.forward(static_cast<std::int32_t>(k));
        reverse_one(static_cast<std::int32_t>(i));
      }
      return;
    }
    const int j = a + choice.split;
    for (int i = a; i < j; ++i) sched.forward(static_cast<std::int32_t>(i));
    auto& pool = choice.store_level == Level::Ram ? free_ram : free_disk;
    const std::int32_t slot = pool.back();
    pool.pop_back();
    sched.store(static_cast<std::int32_t>(j), slot);
    const int c_inner = choice.store_level == Level::Ram ? c - 1 : c;
    self(self, j, b, c_inner, choice.store_level, slot);
    sched.free(slot);
    pool.push_back(slot);
    sched.restore(static_cast<std::int32_t>(a), input_slot);
    reverse_impl(reverse_impl, a, j, c, level, input_slot);
  };

  sched.store(0, 0);
  sweep_impl(sweep_impl, 0, num_steps_, options_.ram_slots, Level::Ram, 0);
  sched.free(0);
  return sched;
}

int DiskRevolveSolver::peak_disk_slots() const {
  if (peak_disk_ >= 0) return peak_disk_;
  const Schedule sched = make_schedule();
  int live = 0;
  int peak = 0;
  std::vector<bool> occupied(
      static_cast<std::size_t>(sched.num_slots()), false);
  for (const Action& a : sched.actions()) {
    if (a.type == ActionType::Store && is_disk_slot(a.slot)) {
      if (!occupied[static_cast<std::size_t>(a.slot)]) {
        occupied[static_cast<std::size_t>(a.slot)] = true;
        peak = std::max(peak, ++live);
      }
    } else if (a.type == ActionType::Free && is_disk_slot(a.slot)) {
      if (occupied[static_cast<std::size_t>(a.slot)]) {
        occupied[static_cast<std::size_t>(a.slot)] = false;
        --live;
      }
    }
  }
  peak_disk_ = peak;
  return peak_disk_;
}

}  // namespace edgetrain::core::disk
