// edgetrain: periodic ("uniform-stride") checkpointing baseline.
//
// The third classical strategy alongside Revolve and PyTorch's
// checkpoint_sequential: store every p-th boundary state during the sweep
// and re-advance *within* each segment for every backward. Compared to
// checkpoint_sequential it never keeps a whole segment's internals live,
// so its memory is only (s+1) activation units -- at the price of a
// quadratic-in-segment-length recompute cost:
//   F(l, s) = l + sum over segments of m_i (m_i - 1) / 2.
// Revolve dominates it at every slot count (property-tested); the three-way
// comparison is printed by bench_seq_vs_binomial.
#pragma once

#include <cstdint>

#include "core/schedule.hpp"

namespace edgetrain::core::periodic {

/// Total forward executions of periodic checkpointing with s free slots
/// (input always stored): segments are as even as possible.
[[nodiscard]] std::int64_t forward_cost(int num_steps, int free_slots);

/// Recompute factor (F + l) / (2 l).
[[nodiscard]] double recompute_factor(int num_steps, int free_slots);

/// Executor-dialect schedule; slot 0 holds the input, slots 1..s the
/// periodic checkpoints. Replays to peak_memory_units == min(s, l-1) + 1.
[[nodiscard]] Schedule make_schedule(int num_steps, int free_slots);

}  // namespace edgetrain::core::periodic
