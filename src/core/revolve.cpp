#include "core/revolve.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

namespace edgetrain::core::revolve {

namespace {
constexpr std::int64_t kSaturate =
    std::numeric_limits<std::int64_t>::max() / 4;
}  // namespace

std::int64_t binomial_beta(int s, int t) {
  if (t < 0) return 0;
  if (s < 0) return 0;
  // C(s+t, s) computed with the multiplicative formula, saturating.
  std::int64_t result = 1;
  for (int i = 1; i <= s; ++i) {
    // result *= (t + i); result /= i;  -- keep exact by multiplying first.
    if (result > kSaturate / (t + i)) return kSaturate;
    result = result * (t + i) / i;
  }
  return result;
}

RevolveTable::RevolveTable(int max_steps, int max_free_slots)
    : max_steps_(max_steps), max_free_slots_(max_free_slots) {
  if (max_steps < 1) throw std::invalid_argument("RevolveTable: max_steps < 1");
  if (max_free_slots < 0) {
    throw std::invalid_argument("RevolveTable: max_free_slots < 0");
  }
  const std::size_t size = static_cast<std::size_t>(max_steps + 1) *
                           static_cast<std::size_t>(max_free_slots + 1);
  fwd_.assign(size, 0);
  rev_.assign(size, 0);
  fwd_split_.assign(size, 0);
  rev_split_.assign(size, 0);

  for (int s = 0; s <= max_free_slots; ++s) {
    fwd_[idx(1, s)] = 1;
    rev_[idx(1, s)] = 0;
  }
  for (int l = 2; l <= max_steps; ++l) {
    const std::int64_t ll = l;
    fwd_[idx(l, 0)] = ll * (ll + 1) / 2;
    rev_[idx(l, 0)] = ll * (ll - 1) / 2;
  }
  for (int s = 1; s <= max_free_slots; ++s) {
    for (int l = 2; l <= max_steps; ++l) {
      std::int64_t best_f = std::numeric_limits<std::int64_t>::max();
      std::int64_t best_r = best_f;
      int split_f = 1;
      int split_r = 1;
      for (int j = 1; j < l; ++j) {
        const std::int64_t f =
            j + fwd_[idx(l - j, s - 1)] + rev_[idx(j, s)];
        if (f < best_f) {
          best_f = f;
          split_f = j;
        }
        const std::int64_t r =
            j + rev_[idx(l - j, s - 1)] + rev_[idx(j, s)];
        if (r < best_r) {
          best_r = r;
          split_r = j;
        }
      }
      fwd_[idx(l, s)] = best_f;
      rev_[idx(l, s)] = best_r;
      fwd_split_[idx(l, s)] = split_f;
      rev_split_[idx(l, s)] = split_r;
    }
  }
}

std::int64_t RevolveTable::forward_cost(int l, int s) const {
  assert(l >= 1 && l <= max_steps_);
  s = std::clamp(s, 0, std::min(max_free_slots_, l - 1));
  return fwd_[idx(l, s)];
}

std::int64_t RevolveTable::reversal_cost(int l, int s) const {
  assert(l >= 1 && l <= max_steps_);
  s = std::clamp(s, 0, std::min(max_free_slots_, l - 1));
  return rev_[idx(l, s)];
}

int RevolveTable::best_split_sweep(int l, int s) const {
  if (l <= 1 || s <= 0) return 0;
  s = std::min(s, std::min(max_free_slots_, l - 1));
  return fwd_split_[idx(l, s)];
}

int RevolveTable::best_split_reverse(int l, int s) const {
  if (l <= 1 || s <= 0) return 0;
  s = std::min(s, std::min(max_free_slots_, l - 1));
  return rev_split_[idx(l, s)];
}

std::int64_t forward_cost(int num_steps, int free_slots) {
  const RevolveTable table(num_steps,
                           std::min(free_slots, std::max(num_steps - 1, 0)));
  return table.forward_cost(num_steps, free_slots);
}

std::int64_t reversal_cost(int num_steps, int free_slots) {
  const RevolveTable table(num_steps,
                           std::min(free_slots, std::max(num_steps - 1, 0)));
  return table.reversal_cost(num_steps, free_slots);
}

std::int64_t closed_form_forward_cost(int num_steps, int free_slots) {
  if (num_steps < 1) throw std::invalid_argument("closed_form: l < 1");
  const int s = std::min(free_slots, num_steps - 1);
  if (s == 0) {
    return static_cast<std::int64_t>(num_steps) * (num_steps + 1) / 2;
  }
  int t = 0;
  while (binomial_beta(s, t) < num_steps) ++t;
  return static_cast<std::int64_t>(t) * num_steps -
         binomial_beta(s + 1, t - 1) + 1;
}

double recompute_factor(int num_steps, int free_slots) {
  const std::int64_t f = forward_cost(num_steps, free_slots);
  return static_cast<double>(f + num_steps) /
         (2.0 * static_cast<double>(num_steps));
}

int min_free_slots_for_rho(const RevolveTable& table, int num_steps,
                           double rho_budget) {
  const int s_max = std::max(num_steps - 1, 0);
  if (rho_budget <= 1.0) return s_max;
  // Work budget in forward units: F <= (2 rho - 1) l.
  const auto budget = static_cast<std::int64_t>(
      (2.0 * rho_budget - 1.0) * static_cast<double>(num_steps) + 1e-9);
  for (int s = 0; s <= s_max; ++s) {
    if (table.forward_cost(num_steps, s) <= budget) return s;
  }
  return s_max;
}

int min_free_slots_for_rho(int num_steps, double rho_budget) {
  const RevolveTable table(num_steps, std::max(num_steps - 1, 0));
  return min_free_slots_for_rho(table, num_steps, rho_budget);
}

int min_free_slots_for_cost(int num_steps, std::int64_t max_forwards) {
  if (max_forwards < num_steps) return -1;
  const RevolveTable table(num_steps, std::max(num_steps - 1, 0));
  for (int s = 0; s <= num_steps - 1; ++s) {
    if (table.forward_cost(num_steps, s) <= max_forwards) return s;
  }
  return num_steps - 1;
}

int max_free_slots_for_bytes(double capacity_bytes, double fixed_bytes,
                             double act_bytes, double checkpoint_bytes_ratio) {
  if (act_bytes <= 0.0) {
    throw std::invalid_argument(
        "max_free_slots_for_bytes: act_bytes must be > 0");
  }
  if (checkpoint_bytes_ratio <= 0.0 || checkpoint_bytes_ratio > 1.0) {
    throw std::invalid_argument(
        "max_free_slots_for_bytes: ratio must be in (0, 1]");
  }
  // Room left after the fixed state and the plaintext frontier activation.
  const double room = capacity_bytes - fixed_bytes - act_bytes;
  if (room < 0.0) return -1;
  return static_cast<int>(room / (act_bytes * checkpoint_bytes_ratio));
}

int max_free_slots_for_bytes(double capacity_bytes, double fixed_bytes,
                             double act_bytes,
                             const std::vector<double>& slot_ratios,
                             double fill_ratio) {
  if (act_bytes <= 0.0) {
    throw std::invalid_argument(
        "max_free_slots_for_bytes: act_bytes must be > 0");
  }
  if (fill_ratio <= 0.0 || fill_ratio > 1.0) {
    throw std::invalid_argument(
        "max_free_slots_for_bytes: fill_ratio must be in (0, 1]");
  }
  for (const double ratio : slot_ratios) {
    if (ratio <= 0.0 || ratio > 1.0) {
      throw std::invalid_argument(
          "max_free_slots_for_bytes: slot ratios must be in (0, 1]");
    }
  }
  const double room = capacity_bytes - fixed_bytes - act_bytes;
  if (room < 0.0) return -1;
  // The weighted prefix sum is strictly increasing, so the first measured
  // slot that overflows the room bounds the answer; past the measured
  // vector the ratios are constant and the tail is closed-form.
  int s = 0;
  double units = 0.0;
  while (s < static_cast<int>(slot_ratios.size())) {
    const double next = units + slot_ratios[static_cast<std::size_t>(s)];
    if (next * act_bytes > room) return s;
    units = next;
    ++s;
  }
  const double tail = room / act_bytes - units;
  return tail <= 0.0 ? s : s + static_cast<int>(tail / fill_ratio);
}

namespace {

/// Recursive emission of the executor-dialect schedule.
class ScheduleBuilder {
 public:
  ScheduleBuilder(const RevolveTable& table, int num_steps, int free_slots)
      : table_(table), schedule_(num_steps, free_slots + 1) {
    for (int slot = free_slots; slot >= 1; --slot) free_slots_.push_back(slot);
  }

  Schedule build() {
    schedule_.store(0, 0);
    sweep(0, schedule_.num_steps(), available(), 0);
    schedule_.free(0);
    return std::move(schedule_);
  }

 private:
  [[nodiscard]] int available() const {
    return static_cast<int>(free_slots_.size());
  }

  /// ForwardSave + Backward of a single step; current state must be `step`.
  void reverse_one(std::int32_t step) {
    schedule_.forward_save(step);
    schedule_.backward(step);
  }

  /// Full training pass over [a, b): loss-computing sweep then reversal.
  /// Pre: current state == a, state a stored in input_slot, `s` free slots.
  void sweep(std::int32_t a, std::int32_t b, int s, std::int32_t input_slot) {
    const std::int32_t len = b - a;
    if (len == 1) {
      reverse_one(a);
      return;
    }
    if (s == 0) {
      // Advance to the last step, reverse it off the sweep, then re-advance
      // from the input for every remaining step.
      for (std::int32_t i = a; i < b - 1; ++i) schedule_.forward(i);
      reverse_one(b - 1);
      for (std::int32_t i = b - 2; i >= a; --i) {
        schedule_.restore(a, input_slot);
        for (std::int32_t k = a; k < i; ++k) schedule_.forward(k);
        reverse_one(i);
      }
      return;
    }
    const int j = table_.best_split_sweep(len, s);
    for (std::int32_t i = a; i < a + j; ++i) schedule_.forward(i);
    const std::int32_t slot = free_slots_.back();
    free_slots_.pop_back();
    schedule_.store(a + j, slot);
    sweep(a + j, b, s - 1, slot);
    schedule_.free(slot);
    free_slots_.push_back(slot);
    schedule_.restore(a, input_slot);
    reverse(a, a + j, s, input_slot);
  }

  /// Reversal of [a, b) when the gradient at b is already available.
  /// Pre: current state == a, state a stored in input_slot, `s` free slots.
  void reverse(std::int32_t a, std::int32_t b, int s, std::int32_t input_slot) {
    const std::int32_t len = b - a;
    if (len == 1) {
      reverse_one(a);
      return;
    }
    if (s == 0) {
      for (std::int32_t i = b - 1; i >= a; --i) {
        if (i != b - 1) schedule_.restore(a, input_slot);
        for (std::int32_t k = a; k < i; ++k) schedule_.forward(k);
        reverse_one(i);
      }
      return;
    }
    const int j = table_.best_split_reverse(len, s);
    for (std::int32_t i = a; i < a + j; ++i) schedule_.forward(i);
    const std::int32_t slot = free_slots_.back();
    free_slots_.pop_back();
    schedule_.store(a + j, slot);
    reverse(a + j, b, s - 1, slot);
    schedule_.free(slot);
    free_slots_.push_back(slot);
    schedule_.restore(a, input_slot);
    reverse(a, a + j, s, input_slot);
  }

  const RevolveTable& table_;
  Schedule schedule_;
  std::vector<std::int32_t> free_slots_;
};

}  // namespace

Schedule make_schedule(int num_steps, int free_slots) {
  if (num_steps < 1) throw std::invalid_argument("make_schedule: l < 1");
  free_slots = std::clamp(free_slots, 0, std::max(num_steps - 1, 0));
  const RevolveTable table(num_steps, free_slots);
  ScheduleBuilder builder(table, num_steps, free_slots);
  return builder.build();
}

Schedule make_schedule(const RevolveTable& table, int num_steps,
                       int free_slots) {
  if (num_steps < 1) throw std::invalid_argument("make_schedule: l < 1");
  if (num_steps > table.max_steps()) {
    throw std::invalid_argument("make_schedule: l exceeds table");
  }
  free_slots = std::clamp(
      free_slots, 0,
      std::min(table.max_free_slots(), std::max(num_steps - 1, 0)));
  ScheduleBuilder builder(table, num_steps, free_slots);
  return builder.build();
}

}  // namespace edgetrain::core::revolve
