// edgetrain: pluggable compression codecs for checkpoint slots.
//
// Every byte shaved off a stored activation slot is a byte the Revolve DP
// can turn into an extra checkpoint, moving the paper's Figure-1 curve
// down (lower peak) AND left (lower recompute factor rho at the same RAM
// cap); on the disk-spill path it directly cuts SD-card traffic. A
// SlotCodec names one encoding of an fp32 activation payload:
//
//   None     -- identity (the plaintext baseline).
//   Lossless -- byte-plane shuffle + per-plane PackBits-style RLE.
//               Post-ReLU activations are zero-heavy and float exponents
//               cluster, so transposing the payload into four byte planes
//               (tensor/convert.hpp) makes runs the RLE collapses.
//               Restore is bit-exact; incompressible payloads fall back to
//               a raw-stored mode, bounding the blob at payload + 1 byte.
//   Fp16     -- IEEE binary16 cast (round-to-nearest-even), 2 bytes/elem.
//   Bf16     -- bfloat16 cast (round-to-nearest-even), 2 bytes/elem.
//   Bitmap   -- nonzero bitmap + packed fp32 nonzeros (BitTrain-style),
//               built on the tensor/sparse.hpp popcount/compact/scatter
//               kernels. Bit-exact ("nonzero" means the 32-bit pattern, so
//               -0.0f and NaNs survive; zeros restore as +0.0f exactly,
//               which is what a ReLU produced). The sparse form carries a
//               CRC32 over the whole blob, so any truncation or bit flip
//               of a sparse-mode blob is rejected; incompressible payloads
//               fall back to a raw-stored mode bounding the blob at
//               payload + 1 byte (plaintext semantics, like Lossless raw).
//   BitmapFp16 -- same bitmap, nonzeros cast to binary16; falls back to a
//               dense fp16 cast, bounding the blob at payload/2 + 1.
//
// The lossy casts change recomputed forwards by the cast's rounding error;
// tests/core/ validates end-to-end gradients against the gradcheck
// tolerances. Encode/decode run through the SIMD parallel_for kernels of
// tensor/convert.hpp; the async store decodes with Threading::Serial on
// its background IO thread, so decompression overlaps recompute instead of
// borrowing the compute pool.
//
// Planner integration: planning_bytes_ratio() is the per-slot byte ratio
// the schedulers (core/planner.hpp, core/revolve.hpp, core/disk_revolve.hpp)
// and the analysis:: interpreter use to re-solve plans with more slots per
// byte budget. Lossless is data-dependent, so its planning ratio is the
// conservative 1.0; measured ratios from real activations can be fed to
// the planner explicitly (bench_fig1 --compress does).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "tensor/convert.hpp"
#include "tensor/tensor.hpp"

namespace edgetrain::core {

enum class SlotCodec : std::uint8_t {
  None, Lossless, Fp16, Bf16, Bitmap, BitmapFp16
};

[[nodiscard]] std::string to_string(SlotCodec codec);

/// Parses "none" | "lossless" | "fp16" | "bf16" | "bitmap" | "bitmap-fp16"
/// (the --compress flag vocabulary); nullopt on anything else.
[[nodiscard]] std::optional<SlotCodec> parse_slot_codec(std::string_view name);

/// Guaranteed worst-case encoded bytes / plaintext bytes for planning:
/// None, Lossless and Bitmap 1.0 (data-dependent; their raw fallbacks
/// bound them at plaintext), Fp16/Bf16/BitmapFp16 exactly 0.5. The
/// data-dependent codecs usually land far below their worst case on real
/// activations -- the slot stores report the achieved ratio per slot
/// (SlotStore::measured_slot_ratio) so planners can re-solve with measured
/// per-slot vectors instead of this static bound.
[[nodiscard]] double planning_bytes_ratio(SlotCodec codec);

namespace codec {

/// Upper bound on encode()'s blob size for @p numel fp32 elements.
[[nodiscard]] std::size_t max_encoded_bytes(SlotCodec codec,
                                            std::int64_t numel);

/// Encodes @p value's payload. Scratch comes from the calling thread's
/// Workspace arena (zero steady-state heap traffic beyond the returned
/// blob). The blob is decodable given the codec and the tensor's shape.
[[nodiscard]] std::vector<std::uint8_t> encode(
    SlotCodec codec, const Tensor& value,
    convert::Threading threading = convert::Threading::Parallel);

/// Decodes an encode() blob back into a tensor of @p shape. Throws
/// std::runtime_error naming @p who on any structural corruption (size
/// mismatch, malformed RLE stream, over/underrun); a Lossless blob decodes
/// bit-identically to the encoded payload.
[[nodiscard]] Tensor decode(
    SlotCodec codec, const std::string& who, const Shape& shape,
    const std::uint8_t* data, std::size_t size,
    convert::Threading threading = convert::Threading::Parallel);

}  // namespace codec

}  // namespace edgetrain::core
