// edgetrain: the checkpoint spill-file format shared by the disk stores.
//
// One self-describing file per spilled slot:
//
//   "ETSP" | u32 version | u32 payload CRC-32 | u32 rank | i64 dims[4]
//   float32 payload, row-major                              (48-byte header)
//
// DiskSlotStore and AsyncDiskSlotStore both read and write this format, so
// the fault-injection tests (bit flips, truncation) exercise one code path
// and the async store's files stay inspectable with the same tools. Three
// properties matter on the SD-card path:
//
//   * zero steady-state heap allocation -- the file image is assembled in
//     (and read back through) the calling thread's Workspace arena, which
//     retains capacity across calls (satisfying the "one persistent
//     serialization buffer" rule; the background IO thread gets its own
//     arena via Workspace::tls());
//   * one write()/read() syscall per spill -- no iostream buffering layers;
//   * verification against *in-RAM* metadata -- the expected shape and CRC
//     live with the store, so a swapped or stale spill file fails even when
//     its own header is internally consistent.
//
// Every operation applies the fault harness's injected disk latency
// (persist/io_latency.hpp), making SD-card timings reproducible on CI.
#pragma once

#include <cstdint>
#include <string>

#include "tensor/tensor.hpp"

namespace edgetrain::core::spill {

/// Bytes preceding the payload in every spill file.
inline constexpr std::size_t kHeaderBytes = 48;

/// Serialises @p value to @p path (header + payload, single syscall).
/// Returns the payload CRC-32 for the caller to retain as ground truth.
/// Throws std::runtime_error naming @p who on any IO failure.
std::uint32_t write_spill(const std::string& who, const std::string& path,
                          const Tensor& value);

/// Reads @p path back, verifying the file size and payload checksum against
/// the in-RAM @p shape / @p crc recorded at write time. Throws
/// std::runtime_error with a descriptive message ("truncated or corrupt",
/// "failed its checksum") naming @p who on any mismatch.
[[nodiscard]] Tensor read_spill(const std::string& who,
                                const std::string& path, const Shape& shape,
                                std::uint32_t crc);

// --- Encoded (compressed) spills ------------------------------------------
// Same header discipline and IO path, magic "ETSC": the payload is an
// opaque codec blob (core/slot_codec.hpp) whose byte length replaces the
// tensor dims (rank 0, dims[0] = size). The store keeps shape, codec, CRC
// and size in RAM, so verification still runs against in-RAM ground truth.

/// Writes @p size encoded bytes to @p path; returns the payload CRC-32.
std::uint32_t write_spill_blob(const std::string& who, const std::string& path,
                               const std::uint8_t* data, std::size_t size);

/// Reads exactly @p size encoded bytes back into @p out, verifying the file
/// size and CRC against the recorded @p size / @p crc. Throws like
/// read_spill on any mismatch.
void read_spill_blob(const std::string& who, const std::string& path,
                     std::size_t size, std::uint32_t crc, std::uint8_t* out);

}  // namespace edgetrain::core::spill
