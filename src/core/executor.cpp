#include "core/executor.hpp"

#include <stdexcept>
#include <string>

#include "tensor/alloc.hpp"

namespace edgetrain::core {

namespace {
[[noreturn]] void die(const std::string& what) {
  throw std::logic_error("ScheduleExecutor: " + what);
}
}  // namespace

ExecutionResult ScheduleExecutor::run(ChainRunner& runner,
                                      const Schedule& schedule,
                                      const Tensor& input,
                                      const LossGradFn& loss_grad) const {
  RamSlotStore store(schedule.num_slots());
  return run(runner, schedule, input, loss_grad, store);
}

ExecutionResult ScheduleExecutor::run(ChainRunner& runner,
                                      const Schedule& schedule,
                                      const Tensor& input,
                                      const LossGradFn& loss_grad,
                                      SlotStore& store) const {
  return run(runner, schedule, input, loss_grad, store, ExecutorHooks{});
}

ExecutionResult ScheduleExecutor::run(ChainRunner& runner,
                                      const Schedule& schedule,
                                      const Tensor& input,
                                      const LossGradFn& loss_grad,
                                      SlotStore& store,
                                      const ExecutorHooks& hooks) const {
  if (runner.num_steps() != schedule.num_steps()) {
    die("runner has " + std::to_string(runner.num_steps()) +
        " steps but schedule was built for " +
        std::to_string(schedule.num_steps()));
  }
  const int num_steps = schedule.num_steps();

  ScopedPeakProbe probe;
  ExecutionResult result;
  result.baseline_bytes = probe.baseline_bytes();

  // Hand the store the full action tape so lookahead-capable backends
  // (AsyncDiskSlotStore) can prefetch upcoming restores during recompute.
  // RAII so end_replay fires on every exit path, including the throws the
  // fault-injection tests drive through the middle of a replay.
  struct ReplayScope {
    SlotStore& store;
    ReplayScope(SlotStore& s, const Schedule& sched) : store(s) {
      store.begin_replay(sched);
    }
    ~ReplayScope() { store.end_replay(); }
  } replay_scope(store, schedule);

  Tensor current = input;
  std::int32_t current_state = 0;
  Tensor grad;
  bool seeded = false;

  for (const Action& a : schedule.actions()) {
    if (hooks.on_action) hooks.on_action(result.actions_executed, a);
    store.on_replay_position(result.actions_executed);
    ++result.actions_executed;
    switch (a.type) {
      case ActionType::Forward:
      case ActionType::ForwardSave: {
        if (current_state != a.index) {
          die("forward of step " + std::to_string(a.index) +
              " from state " + std::to_string(current_state));
        }
        Tensor next =
            runner.forward(a.index, current, a.type == ActionType::ForwardSave);
        current = std::move(next);
        current_state = a.index + 1;
        if (current_state == num_steps && !result.output.defined()) {
          result.output = current;
        }
        break;
      }
      case ActionType::Backward: {
        if (!seeded) {
          if (a.index != num_steps - 1) {
            die("first backward must be the last step");
          }
          if (current_state != num_steps) {
            die("output gradient seeded before the chain output exists");
          }
          grad = loss_grad(current);
          seeded = true;
          // The frontier activation is consumed by the loss; release our
          // handle so peak accounting reflects the executor's true state.
          current.reset();
          current_state = -1;
        }
        grad = runner.backward(a.index, grad);
        break;
      }
      case ActionType::Store: {
        if (current_state != a.index) {
          die("store of state " + std::to_string(a.index) + " from state " +
              std::to_string(current_state));
        }
        store.put(a.slot, current);
        break;
      }
      case ActionType::Restore: {
        current = store.get(a.slot);
        current_state = a.index;
        break;
      }
      case ActionType::Free: {
        store.drop(a.slot);
        break;
      }
    }
  }

  if (!seeded) die("schedule never reached the output");
  result.input_grad = std::move(grad);
  result.stats = schedule.stats();
  result.peak_tracked_bytes = probe.peak_bytes();
  return result;
}

ExecutionResult ScheduleExecutor::run_full_storage(
    ChainRunner& runner, const Tensor& input,
    const LossGradFn& loss_grad) const {
  return run(runner, full_storage_schedule(runner.num_steps()), input,
             loss_grad);
}

Schedule full_storage_schedule(int num_steps) {
  Schedule sched(num_steps, 1);
  sched.store(0, 0);
  for (std::int32_t i = 0; i < num_steps; ++i) sched.forward_save(i);
  for (std::int32_t i = num_steps - 1; i >= 0; --i) sched.backward(i);
  sched.free(0);
  return sched;
}

}  // namespace edgetrain::core
