// edgetrain: the PyTorch `checkpoint_sequential` baseline (paper Section V).
//
// PyTorch divides the l-step chain into `segments` equal parts (the last
// absorbs the remainder), stores the inputs of the first segments-1 parts
// during the forward sweep and keeps the last part fully stored; backward
// then re-forwards each earlier segment once. The paper gives its memory
// footprint, in activation units, as
//     Memory(l, s) = (s - 1) + (l - floor(l/s) * (s - 1))
// and notes the 2*sqrt(l) lower bound over s, which Revolve's binomial
// schedules beat decisively for the same work budget (bench_seq_vs_binomial
// reproduces that comparison).
#pragma once

#include <cstdint>

#include "core/schedule.hpp"

namespace edgetrain::core::seq {

/// The paper's Section V memory formula, in activation units (M_A).
[[nodiscard]] std::int64_t memory_units(int num_steps, int segments);

/// Total forward executions: sweep l plus one re-forward of every segment
/// but the last: l + (s-1) * floor(l/s).
[[nodiscard]] std::int64_t forward_cost(int num_steps, int segments);

/// Recompute factor (forwards + backwards) / (2 l); bounded by 1.5.
[[nodiscard]] double recompute_factor(int num_steps, int segments);

/// The s minimising memory_units and its footprint / work.
struct SegmentedPlan {
  int segments = 1;
  std::int64_t memory_units = 0;
  std::int64_t forward_cost = 0;
  double rho = 1.0;
};
[[nodiscard]] SegmentedPlan best_plan(int num_steps);

/// Asymptotic lower bound on memory_units over all s: 2*sqrt(l) (paper).
[[nodiscard]] double memory_lower_bound(int num_steps);

/// Executor-dialect schedule for checkpoint_sequential(l, segments).
/// Slot i holds the input of segment i (slot 0 = chain input). Validates
/// and replays to peak_memory_units == memory_units(l, segments).
[[nodiscard]] Schedule make_schedule(int num_steps, int segments);

}  // namespace edgetrain::core::seq
