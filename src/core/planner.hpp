// edgetrain: the Section VI memory planner.
//
// Combines the Revolve cost tables with the paper's linearised memory model
//   peak(s) = fixed_bytes + (1 + s * ratio) * activation_bytes_per_step
// (s free checkpoint slots plus the live frontier activation; the chain
// input is excluded, as in the paper's tables) and the recompute factor
//   rho(s) = (F(l, s) + l) / (2 l).
// `ratio` is the slot-codec compression factor (core/slot_codec.hpp): the
// frontier activation is always held in plaintext, but the s checkpoints
// rest encoded, so a 0.5 fp16 codec buys ~2x the slots per byte budget and
// the planner provably selects a lower rho at the same RAM cap. ratio = 1
// (the default) reproduces the paper's model bit for bit.
// The planner answers the two questions Figure 1 plots: "given a recompute
// budget rho, how much memory do I need?" and "given a device, what is the
// smallest rho that fits?". It also computes the paper's n_max = the
// deepest chain trainable without checkpointing.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/dynprog.hpp"
#include "core/revolve.hpp"

namespace edgetrain::core {

/// A homogenised chain (the paper's LinearResNet_x at a given batch size
/// and image size).
struct ChainSpec {
  std::string name;                      ///< e.g. "LinearResNet152"
  int depth = 1;                         ///< l
  double fixed_bytes = 0.0;              ///< weights + grads + optimizer state
  double activation_bytes_per_step = 0;  ///< k * M_A (batch folded in)
  /// Bytes a resting checkpoint slot costs relative to plaintext, in
  /// (0, 1]: 1.0 = uncompressed, 0.5 = fp16/bf16 cast codec; use
  /// planning_bytes_ratio(codec) or a measured_ratio() for lossless. The
  /// live frontier activation is always charged at full size.
  double checkpoint_bytes_ratio = 1.0;
  /// Measured per-slot ratios, each in (0, 1]: entry k prices the k-th
  /// checkpoint slot a plan occupies (the order the executor's store slots
  /// fill, so SlotStore::measured_slot_ratio feeds this directly --
  /// core/adaptive.hpp does). Slots past the vector's end fall back to
  /// checkpoint_bytes_ratio. Empty (the default) keeps the homogeneous
  /// model above bit for bit; non-empty switches every peak formula to the
  /// prefix-sum form fixed + (1 + sum_k ratio[k]) * act_bytes.
  std::vector<double> checkpoint_slot_ratios;
  /// Measured per-step forward costs (any positive unit; calib:: supplies
  /// microseconds), size == depth. Empty keeps the paper's unit-cost model
  /// (binomial Revolve); non-empty switches the planner to the
  /// heterogeneous DP, so plan selection and achieved_rho are computed in
  /// these measured units.
  std::vector<double> step_costs;
  /// Backward/forward cost ratio entering rho; 1 is the paper's
  /// convention, calib::ChainCosts::backward_ratio() supplies the
  /// measured value. Only consulted when step_costs is non-empty.
  double backward_ratio = 1.0;
};

/// One point of the memory/recompute trade-off curve.
struct PlanPoint {
  double rho_budget = 1.0;       ///< requested bound
  double achieved_rho = 1.0;     ///< rho of the chosen schedule (<= budget)
  int free_slots = 0;            ///< s
  int total_slots = 1;           ///< s + 1 (the analytic memory unit count)
  std::int64_t forward_cost = 0; ///< F(l, s) (rounded when measured)
  /// F(l, s) in the chain's measured cost units (microseconds when the
  /// spec came from calib::measured_chain_spec); 0 under unit costs.
  double forward_cost_us = 0.0;
  double peak_bytes = 0.0;       ///< fixed + (1 + s * ratio) * act_bytes

  [[nodiscard]] bool fits(double capacity_bytes) const {
    return peak_bytes <= capacity_bytes;
  }
};

/// Device-feasibility summary for one chain.
struct PlanReport {
  ChainSpec chain;
  double capacity_bytes = 0.0;
  double no_checkpoint_bytes = 0.0;   ///< rho = 1 footprint
  double min_possible_bytes = 0.0;    ///< s = 0 footprint
  bool fits_without_checkpointing = false;
  bool fits_with_checkpointing = false;
  /// Smallest recompute factor whose footprint fits the device; +inf when
  /// even s = 0 does not fit. This is the x-coordinate where the chain's
  /// Figure 1 curve crosses the device's capacity line.
  double min_rho_to_fit = 0.0;
  PlanPoint recommended;  ///< the plan at min_rho_to_fit (when feasible)
};

/// Planner for one chain; builds the Revolve table once (O(l^2 * l)).
class MemoryPlanner {
 public:
  explicit MemoryPlanner(ChainSpec spec);

  [[nodiscard]] const ChainSpec& chain() const noexcept { return spec_; }

  /// Footprint with all activations stored (rho = 1).
  [[nodiscard]] double no_checkpoint_bytes() const noexcept;

  /// Footprint of the most frugal schedule (s = 0: input + frontier only).
  [[nodiscard]] double min_possible_bytes() const noexcept;

  /// Minimal-memory plan whose recompute factor is <= rho_budget.
  [[nodiscard]] PlanPoint plan_for_rho(double rho_budget) const;

  /// Curve for Figure 1: plan_for_rho over a uniform rho grid.
  [[nodiscard]] std::vector<PlanPoint> sweep_rho(double rho_min,
                                                 double rho_max,
                                                 int points) const;

  /// Feasibility report against a device memory capacity.
  [[nodiscard]] PlanReport report_for_device(double capacity_bytes) const;

  /// The paper's n_max = (M_C - M_W) / (k * M_A): the deepest chain whose
  /// full activation set fits in capacity without checkpointing.
  [[nodiscard]] static int max_depth_without_checkpointing(
      double capacity_bytes, double fixed_bytes,
      double activation_bytes_per_step);

  /// Sum of the first @p free_slots per-slot ratios (scalar-filled past
  /// the measured vector): the "s * ratio" term of the peak formula,
  /// generalised. Equals free_slots * checkpoint_bytes_ratio when no
  /// per-slot measurements are set.
  [[nodiscard]] double weighted_slot_units(int free_slots) const noexcept;

 private:
  [[nodiscard]] PlanPoint point_for_slots(int free_slots) const;

  ChainSpec spec_;
  /// Exactly one of the two is built: the Revolve table under unit costs,
  /// the heterogeneous solver when spec_.step_costs is populated.
  std::unique_ptr<revolve::RevolveTable> table_;
  std::unique_ptr<hetero::HeteroSolver> hetero_;
};

}  // namespace edgetrain::core
