// edgetrain: clang thread-safety capability annotations + annotated
// synchronisation primitives.
//
// Locking discipline in this codebase is *statically checked*, not folklore:
// every mutex-protected member is declared GUARDED_BY its mutex, every
// lock-requiring helper is declared REQUIRES, and the clang CI job compiles
// all of src/ with -Wthread-safety -Werror, so an unannotated or lock-free
// access to guarded state is a build failure, not a latent race. On GCC (and
// any non-clang compiler) every annotation expands to nothing and the
// wrappers below compile down to plain std::mutex / lock_guard.
//
// The wrappers are also the dynamic instrumentation boundary. When the
// shadow-memory guards are on (-DEDGETRAIN_GUARDS=ON), Mutex and CondVar
// report every acquire/release to the lockset/happens-before race detector
// (analysis/race/race.hpp), and when the seeded preemption injector is
// enabled (guards, or -DEDGETRAIN_PREEMPT=ON for TSan runs), every lock
// boundary is a potential yield/sleep point that drives the schedule through
// adversarial interleavings (analysis/race/preempt.hpp). Release builds with
// both switches off pay zero bytes and zero cycles: the hooks compile away
// and the classes below are thin inline shims.
//
// Three rules keep the static analysis airtight (see DESIGN.md §15):
//   1. Never name std::mutex in src/ -- always edgetrain::Mutex, so every
//      lock is annotated, race-instrumented, and preemption-fuzzable.
//   2. Condition-variable waits use the while-loop form with the predicate
//      spelled in the annotated function body (not a lambda): clang cannot
//      see a captured lock inside a predicate lambda, the loop form it can.
//   3. Escape hatches (NO_THREAD_SAFETY_ANALYSIS, native()) need a comment
//      explaining which invariant replaces the lock.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define EDGETRAIN_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define EDGETRAIN_THREAD_ANNOTATION(x)  // non-clang: annotations vanish
#endif

// The classic capability-annotation macro set from the clang thread-safety
// docs. Unprefixed on purpose: they appear on nearly every concurrent class
// in src/ and the long form would drown the declarations they qualify.
#define CAPABILITY(x) EDGETRAIN_THREAD_ANNOTATION(capability(x))
#define SCOPED_CAPABILITY EDGETRAIN_THREAD_ANNOTATION(scoped_lockable)
#define GUARDED_BY(x) EDGETRAIN_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) EDGETRAIN_THREAD_ANNOTATION(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) \
  EDGETRAIN_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  EDGETRAIN_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define REQUIRES(...) \
  EDGETRAIN_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define ACQUIRE(...) \
  EDGETRAIN_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define RELEASE(...) \
  EDGETRAIN_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  EDGETRAIN_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) EDGETRAIN_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) EDGETRAIN_THREAD_ANNOTATION(assert_capability(x))
#define RETURN_CAPABILITY(x) EDGETRAIN_THREAD_ANNOTATION(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS \
  EDGETRAIN_THREAD_ANNOTATION(no_thread_safety_analysis)

// ---------------------------------------------------------------------------
// Instrumentation hooks (declared here, defined in src/analysis/race/).
// ---------------------------------------------------------------------------

#if defined(EDGETRAIN_GUARDS)
namespace edgetrain::analysis::race {
void on_acquire(const void* mutex);
void on_release(const void* mutex);
void on_mutex_destroy(const void* mutex);
}  // namespace edgetrain::analysis::race
#define EDGETRAIN_SYNC_ACQUIRED(m) ::edgetrain::analysis::race::on_acquire(m)
#define EDGETRAIN_SYNC_RELEASING(m) ::edgetrain::analysis::race::on_release(m)
#define EDGETRAIN_SYNC_DESTROYED(m) \
  ::edgetrain::analysis::race::on_mutex_destroy(m)
#else
#define EDGETRAIN_SYNC_ACQUIRED(m) ((void)0)
#define EDGETRAIN_SYNC_RELEASING(m) ((void)0)
#define EDGETRAIN_SYNC_DESTROYED(m) ((void)0)
#endif

#if defined(EDGETRAIN_GUARDS) || defined(EDGETRAIN_PREEMPT)
namespace edgetrain::analysis::preempt {
void point(unsigned site);
}  // namespace edgetrain::analysis::preempt
#define EDGETRAIN_PREEMPT_POINT(site) ::edgetrain::analysis::preempt::point(site)
#else
#define EDGETRAIN_PREEMPT_POINT(site) ((void)0)
#endif

namespace edgetrain {

/// Stable preemption-site ids (never raw pointers: addresses change run to
/// run under ASLR, and the injector's decision stream must be a pure
/// function of seed/site/ordinal to stay bit-reproducible per seed).
enum PreemptSite : unsigned {
  kPreemptBeforeLock = 0,
  kPreemptAfterUnlock = 1,
  kPreemptBeforeWait = 2,
  kPreemptBeforeNotify = 3,
  kPreemptAtAccess = 4,
};

// ---------------------------------------------------------------------------
// Annotated primitives
// ---------------------------------------------------------------------------

/// std::mutex with the "mutex" capability. The only mutex type allowed in
/// src/: locking through it is what makes an acquire visible to both the
/// static analysis and the dynamic race detector.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  ~Mutex() { EDGETRAIN_SYNC_DESTROYED(this); }

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  // The primitive bodies are exempt from the analysis (the contract is the
  // declared attribute; inside, the capability expression for the wrapped
  // std::mutex cannot be matched to `this`). Callers are still checked.
  void lock() ACQUIRE() NO_THREAD_SAFETY_ANALYSIS {
    EDGETRAIN_PREEMPT_POINT(kPreemptBeforeLock);
    mu_.lock();
    EDGETRAIN_SYNC_ACQUIRED(this);
  }

  void unlock() RELEASE() NO_THREAD_SAFETY_ANALYSIS {
    EDGETRAIN_SYNC_RELEASING(this);
    mu_.unlock();
    EDGETRAIN_PREEMPT_POINT(kPreemptAfterUnlock);
  }

  [[nodiscard]] bool try_lock() TRY_ACQUIRE(true) NO_THREAD_SAFETY_ANALYSIS {
    if (!mu_.try_lock()) return false;
    EDGETRAIN_SYNC_ACQUIRED(this);
    return true;
  }

  /// Escape hatch for CondVar (std::condition_variable demands the native
  /// type). Callers other than CondVar/MutexLock must not use it.
  [[nodiscard]] std::mutex& native() noexcept { return mu_; }

 private:
  std::mutex mu_;
};

/// Scoped lock over Mutex with std::unique_lock ergonomics: RAII acquire on
/// construction, manual unlock()/lock() for the drop-the-lock-around-IO
/// pattern, and a native handle for CondVar. All transitions route through
/// Mutex::lock/unlock so the race detector and the preemption injector see
/// every boundary.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) NO_THREAD_SAFETY_ANALYSIS
      : mu_(&mu), lock_(mu.native(), std::defer_lock) {
    mu_->lock();
    lock_ = std::unique_lock<std::mutex>(mu_->native(), std::adopt_lock);
  }

  ~MutexLock() RELEASE() NO_THREAD_SAFETY_ANALYSIS {
    if (lock_.owns_lock()) {
      lock_.release();  // disown without unlocking...
      mu_->unlock();    // ...so the instrumented release path runs
    }
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Temporarily drop the lock (e.g. around a blocking disk read).
  void unlock() RELEASE() NO_THREAD_SAFETY_ANALYSIS {
    lock_.release();
    mu_->unlock();
  }

  /// Re-acquire after unlock().
  void lock() ACQUIRE() NO_THREAD_SAFETY_ANALYSIS {
    mu_->lock();
    lock_ = std::unique_lock<std::mutex>(mu_->native(), std::adopt_lock);
  }

  /// For CondVar only.
  [[nodiscard]] std::unique_lock<std::mutex>& native() noexcept {
    return lock_;
  }
  [[nodiscard]] const void* mutex_id() const noexcept { return mu_; }

 private:
  Mutex* mu_;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable over MutexLock. Waits are untimed/timed *without*
/// predicates by design: spell the predicate as a while loop in the calling
/// function so -Wthread-safety can see the guarded reads under the held
/// lock (rule 2 above). The internal unlock/relock a wait performs is
/// re-reported to the race detector, so the happens-before edge a
/// notify-then-wake handoff creates is never lost.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(MutexLock& lock) {
    EDGETRAIN_PREEMPT_POINT(kPreemptBeforeWait);
    EDGETRAIN_SYNC_RELEASING(lock.mutex_id());
    cv_.wait(lock.native());
    EDGETRAIN_SYNC_ACQUIRED(lock.mutex_id());
  }

  template <typename Rep, typename Period>
  std::cv_status wait_for(MutexLock& lock,
                          const std::chrono::duration<Rep, Period>& timeout) {
    EDGETRAIN_PREEMPT_POINT(kPreemptBeforeWait);
    EDGETRAIN_SYNC_RELEASING(lock.mutex_id());
    const std::cv_status status = cv_.wait_for(lock.native(), timeout);
    EDGETRAIN_SYNC_ACQUIRED(lock.mutex_id());
    return status;
  }

  void notify_one() noexcept {
    EDGETRAIN_PREEMPT_POINT(kPreemptBeforeNotify);
    cv_.notify_one();
  }

  void notify_all() noexcept {
    EDGETRAIN_PREEMPT_POINT(kPreemptBeforeNotify);
    cv_.notify_all();
  }

 private:
  std::condition_variable cv_;
};

}  // namespace edgetrain
