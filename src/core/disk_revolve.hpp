// edgetrain: two-level (RAM + SD-card) checkpointing.
//
// Waggle nodes carry flash storage that is orders of magnitude larger than
// their 2 GB RAM but slow to access. The paper cites INRIA's disk-revolve
// ([1] in the paper); this module implements the two-level dynamic program:
// checkpoints may be written to RAM (free, but only `c` slots) or to disk
// (unlimited slots, but each write costs `write_cost` and each read
// `read_cost` forward-step units).
//
// DP over (segment length, free RAM slots, level of the segment input):
//   F_L(1, c) = 1 + r_L
//   R_L(1, c) = r_L
//   F_L(n, c) = min_{j,m} [ j + w_m + F_m(n-j, c-[m=ram]) + R_L(j, c) ]
//   R_L(n, c) = r_L + min_{j,m} [ j + w_m + R_m(n-j, c-[m=ram]) + R_L(j, c) ]
// where L, m range over {ram, disk}, r_ram = w_ram = 0, and the m = ram
// branch requires c > 0. With disk disabled this reduces exactly to
// core/revolve.hpp (property-tested).
#pragma once

#include <cstdint>
#include <vector>

#include "core/schedule.hpp"

namespace edgetrain::core::disk {

/// Storage level of a checkpoint.
enum class Level : std::uint8_t { Ram = 0, Disk = 1 };

struct DiskRevolveOptions {
  int ram_slots = 1;        ///< free RAM checkpoint slots (input not counted)
  double write_cost = 2.0;  ///< disk write, in forward-step units
  double read_cost = 2.0;   ///< disk read, in forward-step units
  /// Encoded bytes per plaintext byte for spilled checkpoints, in (0, 1]
  /// (core::planning_bytes_ratio). Disk IO time is bytes moved / bandwidth,
  /// so the DP prices each write/read at cost * ratio: a 0.5 codec halves
  /// the IO penalty, shifting the optimal splits toward more disk
  /// checkpoints at the same write_cost calibration.
  double spill_bytes_ratio = 1.0;
  /// Measured per-checkpoint spill ratios (each in (0, 1]), e.g. the
  /// SlotStore::measured_slot_ratio values of the disk slots a previous
  /// pass filled. The DP's state space does not track which disk ordinal
  /// a checkpoint lands in, so when this is non-empty every spill is
  /// priced at the vector's MEAN ratio instead of spill_bytes_ratio -- an
  /// aggregate that keeps the solve exact in expectation; the per-slot
  /// byte bound of the resulting schedule is enforced exactly downstream
  /// by the analysis:: interpreter's per-slot WeightedMemoryBound.
  std::vector<double> spill_slot_ratios;
  bool allow_disk = true;   ///< disable to recover single-level Revolve
  /// Price disk IO as overlapped with recompute instead of serial, matching
  /// AsyncDiskSlotStore: a write is hidden under the advance it trails
  /// (max(j, w) instead of j + w) and a restore is discounted by the
  /// guaranteed compute of the sub-segment reversed while it prefetches
  /// (max(r - window, 0) instead of r). This shifts the DP's splits toward
  /// more disk checkpoints once the IO is (partially) free; the analysis::
  /// interpreter's pipeline model is the ground truth for the resulting
  /// schedule's wall-clock. With overlap_io the solved cost never exceeds
  /// the serial cost and never undercuts the pure-compute cost.
  bool overlap_io = false;
};

/// Solver for one chain length; build once, query costs and schedules.
class DiskRevolveSolver {
 public:
  DiskRevolveSolver(int num_steps, const DiskRevolveOptions& options);

  [[nodiscard]] int num_steps() const noexcept { return num_steps_; }
  [[nodiscard]] const DiskRevolveOptions& options() const noexcept {
    return options_;
  }

  /// F_ram(l, ram_slots): total cost (forward units + weighted IO) of a full
  /// training pass; the chain input counts as a free RAM checkpoint.
  [[nodiscard]] double forward_cost() const;

  /// Recompute factor (forward_cost + l backwards) / (2 l).
  [[nodiscard]] double recompute_factor() const;

  /// Peak number of simultaneously live disk checkpoints in the emitted
  /// schedule (0 when allow_disk is false or disk is never profitable).
  [[nodiscard]] int peak_disk_slots() const;

  /// Executor-dialect schedule. RAM slots are numbered 0..ram_slots (0 is
  /// the input); disk checkpoints use slot ids >= ram_slots+1. Use
  /// is_disk_slot() to map ids to levels.
  [[nodiscard]] Schedule make_schedule() const;

  [[nodiscard]] bool is_disk_slot(std::int32_t slot) const noexcept {
    return slot > options_.ram_slots;
  }

 private:
  [[nodiscard]] std::size_t idx(int len, int c, Level level) const {
    return (static_cast<std::size_t>(len) *
                static_cast<std::size_t>(options_.ram_slots + 1) +
            static_cast<std::size_t>(c)) *
               2 +
           static_cast<std::size_t>(level);
  }

  struct Choice {
    std::int32_t split = 0;  // 0 = base case
    Level store_level = Level::Ram;
  };

  int num_steps_;
  DiskRevolveOptions options_;
  std::vector<double> fwd_;
  std::vector<double> rev_;
  std::vector<Choice> fwd_choice_;
  std::vector<Choice> rev_choice_;
  mutable int peak_disk_ = -1;  // lazily computed from the schedule
};

}  // namespace edgetrain::core::disk
