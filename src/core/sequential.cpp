#include "core/sequential.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

namespace edgetrain::core::seq {

namespace {
void check_args(int num_steps, int segments) {
  if (num_steps < 1) throw std::invalid_argument("seq: num_steps < 1");
  if (segments < 1 || segments > num_steps) {
    throw std::invalid_argument("seq: segments must be in [1, num_steps]");
  }
}

/// Segment boundaries b_0=0 < b_1 < ... < b_s = l with PyTorch's split:
/// the first s-1 segments have floor(l/s) steps, the last the remainder.
std::vector<std::int32_t> boundaries(int num_steps, int segments) {
  std::vector<std::int32_t> b(static_cast<std::size_t>(segments) + 1, 0);
  const std::int32_t chunk = num_steps / segments;
  for (int i = 1; i < segments; ++i) {
    b[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(i) * chunk;
  }
  b[static_cast<std::size_t>(segments)] = num_steps;
  return b;
}
}  // namespace

std::int64_t memory_units(int num_steps, int segments) {
  check_args(num_steps, segments);
  const std::int64_t l = num_steps;
  const std::int64_t s = segments;
  return (s - 1) + (l - (l / s) * (s - 1));
}

std::int64_t forward_cost(int num_steps, int segments) {
  check_args(num_steps, segments);
  const std::int64_t l = num_steps;
  const std::int64_t s = segments;
  return l + (s - 1) * (l / s);
}

double recompute_factor(int num_steps, int segments) {
  const std::int64_t f = forward_cost(num_steps, segments);
  return static_cast<double>(f + num_steps) /
         (2.0 * static_cast<double>(num_steps));
}

SegmentedPlan best_plan(int num_steps) {
  SegmentedPlan best;
  best.memory_units = std::numeric_limits<std::int64_t>::max();
  for (int s = 1; s <= num_steps; ++s) {
    const std::int64_t mem = memory_units(num_steps, s);
    if (mem < best.memory_units) {
      best.segments = s;
      best.memory_units = mem;
      best.forward_cost = forward_cost(num_steps, s);
      best.rho = recompute_factor(num_steps, s);
    }
  }
  return best;
}

double memory_lower_bound(int num_steps) {
  return 2.0 * std::sqrt(static_cast<double>(num_steps));
}

Schedule make_schedule(int num_steps, int segments) {
  check_args(num_steps, segments);
  const auto b = boundaries(num_steps, segments);
  Schedule sched(num_steps, segments);

  // Forward sweep: store each segment input; the last segment runs in
  // saving mode (its intermediates stay live for immediate backward).
  sched.store(0, 0);
  for (int seg = 0; seg < segments; ++seg) {
    const bool last = seg == segments - 1;
    for (std::int32_t i = b[static_cast<std::size_t>(seg)];
         i < b[static_cast<std::size_t>(seg) + 1]; ++i) {
      if (last) {
        sched.forward_save(i);
      } else {
        sched.forward(i);
      }
    }
    if (!last) {
      sched.store(b[static_cast<std::size_t>(seg) + 1],
                  static_cast<std::int32_t>(seg) + 1);
    }
  }

  // Backward: the last segment reverses off its live intermediates; each
  // earlier segment is re-forwarded in saving mode from its checkpoint.
  for (std::int32_t i = num_steps - 1; i >= b[static_cast<std::size_t>(segments) - 1];
       --i) {
    sched.backward(i);
  }
  for (int seg = segments - 2; seg >= 0; --seg) {
    sched.restore(b[static_cast<std::size_t>(seg)],
                  static_cast<std::int32_t>(seg));
    if (seg + 1 < segments) sched.free(static_cast<std::int32_t>(seg) + 1);
    for (std::int32_t i = b[static_cast<std::size_t>(seg)];
         i < b[static_cast<std::size_t>(seg) + 1]; ++i) {
      sched.forward_save(i);
    }
    for (std::int32_t i = b[static_cast<std::size_t>(seg) + 1] - 1;
         i >= b[static_cast<std::size_t>(seg)]; --i) {
      sched.backward(i);
    }
  }
  sched.free(0);
  return sched;
}

}  // namespace edgetrain::core::seq
