#include "core/dynprog.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace edgetrain::core::hetero {

HeteroSolver::HeteroSolver(std::vector<double> forward_costs,
                           int max_free_slots)
    : costs_(std::move(forward_costs)) {
  const int l = static_cast<int>(costs_.size());
  if (l < 1) throw std::invalid_argument("HeteroSolver: empty chain");
  for (const double c : costs_) {
    if (!(c > 0.0)) {
      throw std::invalid_argument("HeteroSolver: step costs must be > 0");
    }
  }
  max_slots_ = std::clamp(max_free_slots, 0, std::max(l - 1, 0));

  prefix_.assign(static_cast<std::size_t>(l) + 1, 0.0);
  for (int i = 0; i < l; ++i) {
    prefix_[static_cast<std::size_t>(i) + 1] =
        prefix_[static_cast<std::size_t>(i)] + costs_[static_cast<std::size_t>(i)];
  }
  total_ = prefix_.back();

  const std::size_t size = static_cast<std::size_t>(l + 1) *
                           static_cast<std::size_t>(l + 1) *
                           static_cast<std::size_t>(max_slots_ + 1);
  constexpr std::size_t kMaxStates = 64ULL << 20;  // ~64M doubles guard
  if (size > kMaxStates) {
    throw std::invalid_argument(
        "HeteroSolver: chain too long for the cubic DP; use block-level "
        "steps or the homogeneous RevolveTable");
  }
  rev_.assign(size, 0.0);
  fwd_.assign(size, 0.0);
  exec_.assign(size, 0.0);
  rev_split_.assign(size, 0);
  fwd_split_.assign(size, 0);
  exec_split_.assign(size, 0);

  // Bases: length-1 segments and slot-less segments. E's bases are
  // save-free (the re-materialisation forward is absorbed into Backward).
  for (int a = 0; a < l; ++a) {
    for (int s = 0; s <= max_slots_; ++s) {
      rev_[idx(a, a + 1, s)] = 0.0;
      fwd_[idx(a, a + 1, s)] = costs_[static_cast<std::size_t>(a)];
      exec_[idx(a, a + 1, s)] = 0.0;
    }
  }
  for (int a = 0; a < l; ++a) {
    for (int b = a + 2; b <= l; ++b) {
      double r0 = 0.0;
      for (int k = a + 1; k < b; ++k) r0 += span(a, k);
      rev_[idx(a, b, 0)] = r0;
      fwd_[idx(a, b, 0)] = span(a, b) + r0;
      exec_[idx(a, b, 0)] = r0;
    }
  }

  // Fill by increasing slot count, then segment length.
  for (int s = 1; s <= max_slots_; ++s) {
    for (int len = 2; len <= l; ++len) {
      for (int a = 0; a + len <= l; ++a) {
        const int b = a + len;
        double best_r = std::numeric_limits<double>::infinity();
        double best_f = best_r;
        double best_e = best_r;
        int split_r = a + 1;
        int split_f = a + 1;
        int split_e = a + 1;
        for (int j = a + 1; j < b; ++j) {
          const double advance = span(a, j);
          const double r = advance + rev_[idx(j, b, s - 1)] +
                           rev_[idx(a, j, s)];
          if (r < best_r) {
            best_r = r;
            split_r = j;
          }
          const double f = advance + fwd_[idx(j, b, s - 1)] +
                           rev_[idx(a, j, s)];
          if (f < best_f) {
            best_f = f;
            split_f = j;
          }
          const double e = advance + exec_[idx(j, b, s - 1)] +
                           rev_[idx(a, j, s)];
          if (e < best_e) {
            best_e = e;
            split_e = j;
          }
        }
        rev_[idx(a, b, s)] = best_r;
        fwd_[idx(a, b, s)] = best_f;
        exec_[idx(a, b, s)] = best_e;
        rev_split_[idx(a, b, s)] = split_r;
        fwd_split_[idx(a, b, s)] = split_f;
        exec_split_[idx(a, b, s)] = split_e;
      }
    }
  }
}

double HeteroSolver::forward_cost(int free_slots) const {
  const int l = num_steps();
  const int s = std::clamp(free_slots, 0, std::min(max_slots_, l - 1));
  return fwd_[idx(0, l, s)];
}

double HeteroSolver::advance_cost(int free_slots) const {
  const int l = num_steps();
  const int s = std::clamp(free_slots, 0, std::min(max_slots_, l - 1));
  return exec_[idx(0, l, s)];
}

double HeteroSolver::recompute_factor(int free_slots, double bwd_ratio) const {
  const double bwd = bwd_ratio * total_;
  return (forward_cost(free_slots) + bwd) / (total_ + bwd);
}

int HeteroSolver::min_free_slots_for_rho(double rho_budget,
                                         double bwd_ratio) const {
  const int s_max = std::min(max_slots_, num_steps() - 1);
  for (int s = 0; s <= s_max; ++s) {
    if (recompute_factor(s, bwd_ratio) <= rho_budget + 1e-12) return s;
  }
  return s_max;
}

Schedule HeteroSolver::make_schedule(int free_slots) const {
  const int l = num_steps();
  const int s_top = std::clamp(free_slots, 0, std::min(max_slots_, l - 1));
  Schedule sched(l, s_top + 1);
  std::vector<std::int32_t> free_list;
  for (int slot = s_top; slot >= 1; --slot) {
    free_list.push_back(static_cast<std::int32_t>(slot));
  }

  auto reverse_one = [&](std::int32_t step) {
    sched.forward_save(step);
    sched.backward(step);
  };

  // Recursive emitters mirroring the DP; `sweep` handles the F problem and
  // `reverse` the R problem. Pre: current state == a, state a in input_slot.
  auto reverse_impl = [&](auto&& self, int a, int b, int s,
                          std::int32_t input_slot) -> void {
    if (b - a == 1) {
      reverse_one(static_cast<std::int32_t>(a));
      return;
    }
    if (s == 0) {
      for (int i = b - 1; i >= a; --i) {
        if (i != b - 1) sched.restore(static_cast<std::int32_t>(a), input_slot);
        for (int k = a; k < i; ++k) sched.forward(static_cast<std::int32_t>(k));
        reverse_one(static_cast<std::int32_t>(i));
      }
      return;
    }
    const int j = rev_split_[idx(a, b, s)];
    for (int i = a; i < j; ++i) sched.forward(static_cast<std::int32_t>(i));
    const std::int32_t slot = free_list.back();
    free_list.pop_back();
    sched.store(static_cast<std::int32_t>(j), slot);
    self(self, j, b, s - 1, slot);
    sched.free(slot);
    free_list.push_back(slot);
    sched.restore(static_cast<std::int32_t>(a), input_slot);
    self(self, a, j, s, input_slot);
  };

  auto sweep_impl = [&](auto&& self, int a, int b, int s,
                        std::int32_t input_slot) -> void {
    if (b - a == 1) {
      reverse_one(static_cast<std::int32_t>(a));
      return;
    }
    if (s == 0) {
      for (int i = a; i < b - 1; ++i) sched.forward(static_cast<std::int32_t>(i));
      reverse_one(static_cast<std::int32_t>(b - 1));
      for (int i = b - 2; i >= a; --i) {
        sched.restore(static_cast<std::int32_t>(a), input_slot);
        for (int k = a; k < i; ++k) sched.forward(static_cast<std::int32_t>(k));
        reverse_one(static_cast<std::int32_t>(i));
      }
      return;
    }
    const int j = exec_split_[idx(a, b, s)];
    for (int i = a; i < j; ++i) sched.forward(static_cast<std::int32_t>(i));
    const std::int32_t slot = free_list.back();
    free_list.pop_back();
    sched.store(static_cast<std::int32_t>(j), slot);
    self(self, j, b, s - 1, slot);
    sched.free(slot);
    free_list.push_back(slot);
    sched.restore(static_cast<std::int32_t>(a), input_slot);
    reverse_impl(reverse_impl, a, j, s, input_slot);
  };

  sched.store(0, 0);
  sweep_impl(sweep_impl, 0, l, s_top, 0);
  sched.free(0);
  return sched;
}

// ---------------------------------------------------------------------------
// ByteBudgetSolver
// ---------------------------------------------------------------------------

ByteBudgetSolver::ByteBudgetSolver(std::vector<double> forward_costs,
                                   std::vector<int> state_units,
                                   int budget_units)
    : costs_(std::move(forward_costs)),
      units_(std::move(state_units)),
      budget_(budget_units) {
  const int l = static_cast<int>(costs_.size());
  if (l < 1) throw std::invalid_argument("ByteBudgetSolver: empty chain");
  if (static_cast<int>(units_.size()) != std::max(l - 1, 0)) {
    throw std::invalid_argument(
        "ByteBudgetSolver: state_units must cover states 1..l-1");
  }
  for (const double c : costs_) {
    if (!(c > 0.0)) {
      throw std::invalid_argument("ByteBudgetSolver: step costs must be > 0");
    }
  }
  for (const int u : units_) {
    if (u < 1) {
      throw std::invalid_argument("ByteBudgetSolver: state units must be >= 1");
    }
  }
  if (budget_ < 0) throw std::invalid_argument("ByteBudgetSolver: budget < 0");

  prefix_.assign(static_cast<std::size_t>(l) + 1, 0.0);
  for (int i = 0; i < l; ++i) {
    prefix_[static_cast<std::size_t>(i) + 1] =
        prefix_[static_cast<std::size_t>(i)] + costs_[static_cast<std::size_t>(i)];
  }
  total_ = prefix_.back();

  const std::size_t size = static_cast<std::size_t>(l + 1) *
                           static_cast<std::size_t>(l + 1) *
                           static_cast<std::size_t>(budget_ + 1);
  constexpr std::size_t kMaxStates = 96ULL << 20;
  if (size > kMaxStates) {
    throw std::invalid_argument(
        "ByteBudgetSolver: state space too large; coarsen the budget units");
  }
  rev_.assign(size, 0.0);
  fwd_.assign(size, 0.0);
  exec_.assign(size, 0.0);
  rev_split_.assign(size, 0);
  fwd_split_.assign(size, 0);
  exec_split_.assign(size, 0);

  for (int len = 1; len <= l; ++len) {
    for (int a = 0; a + len <= l; ++a) {
      for (int m = 0; m <= budget_; ++m) solve_cell(a, a + len, m);
    }
  }
}

void ByteBudgetSolver::solve_cell(int a, int b, int m) {
  if (b - a == 1) {
    rev_[idx(a, b, m)] = 0.0;
    fwd_[idx(a, b, m)] = costs_[static_cast<std::size_t>(a)];
    exec_[idx(a, b, m)] = 0.0;
    return;
  }
  // Fallback: never store, re-advance from the segment input each time.
  double fallback_r = 0.0;
  for (int k = a + 1; k < b; ++k) fallback_r += span(a, k);
  double best_r = fallback_r;
  double best_f = span(a, b) + fallback_r;
  double best_e = fallback_r;  // E's fallback is save-free: R only
  std::int32_t split_r = 0;
  std::int32_t split_f = 0;
  std::int32_t split_e = 0;

  for (int j = a + 1; j < b; ++j) {
    const int u = units_[static_cast<std::size_t>(j) - 1];
    if (u > m) continue;
    const double advance = span(a, j);
    const double r =
        advance + rev_[idx(j, b, m - u)] + rev_[idx(a, j, m)];
    if (r < best_r) {
      best_r = r;
      split_r = static_cast<std::int32_t>(j);
    }
    const double f =
        advance + fwd_[idx(j, b, m - u)] + rev_[idx(a, j, m)];
    if (f < best_f) {
      best_f = f;
      split_f = static_cast<std::int32_t>(j);
    }
    const double e =
        advance + exec_[idx(j, b, m - u)] + rev_[idx(a, j, m)];
    if (e < best_e) {
      best_e = e;
      split_e = static_cast<std::int32_t>(j);
    }
  }
  rev_[idx(a, b, m)] = best_r;
  fwd_[idx(a, b, m)] = best_f;
  exec_[idx(a, b, m)] = best_e;
  rev_split_[idx(a, b, m)] = split_r;
  fwd_split_[idx(a, b, m)] = split_f;
  exec_split_[idx(a, b, m)] = split_e;
}

double ByteBudgetSolver::forward_cost() const {
  return fwd_[idx(0, num_steps(), budget_)];
}

double ByteBudgetSolver::advance_cost() const {
  return exec_[idx(0, num_steps(), budget_)];
}

double ByteBudgetSolver::recompute_factor(double bwd_ratio) const {
  const double bwd = bwd_ratio * total_;
  return (forward_cost() + bwd) / (total_ + bwd);
}

Schedule ByteBudgetSolver::make_schedule() const {
  const int l = num_steps();
  Schedule sched(l, l + 1);  // slot id == state id; bytes governed by budget

  auto reverse_one = [&](std::int32_t step) {
    sched.forward_save(step);
    sched.backward(step);
  };

  auto reverse_impl = [&](auto&& self, int a, int b, int m,
                          std::int32_t input_slot) -> void {
    if (b - a == 1) {
      reverse_one(static_cast<std::int32_t>(a));
      return;
    }
    const std::int32_t j = rev_split_[idx(a, b, m)];
    if (j == 0) {  // fallback
      for (int i = b - 1; i >= a; --i) {
        if (i != b - 1) sched.restore(static_cast<std::int32_t>(a), input_slot);
        for (int k = a; k < i; ++k) sched.forward(static_cast<std::int32_t>(k));
        reverse_one(static_cast<std::int32_t>(i));
      }
      return;
    }
    const int u = units_[static_cast<std::size_t>(j) - 1];
    for (int i = a; i < j; ++i) sched.forward(static_cast<std::int32_t>(i));
    sched.store(j, j);
    self(self, j, b, m - u, j);
    sched.free(j);
    sched.restore(static_cast<std::int32_t>(a), input_slot);
    self(self, a, j, m, input_slot);
  };

  auto sweep_impl = [&](auto&& self, int a, int b, int m,
                        std::int32_t input_slot) -> void {
    if (b - a == 1) {
      reverse_one(static_cast<std::int32_t>(a));
      return;
    }
    const std::int32_t j = exec_split_[idx(a, b, m)];
    if (j == 0) {  // fallback
      for (int i = a; i < b - 1; ++i) sched.forward(static_cast<std::int32_t>(i));
      reverse_one(static_cast<std::int32_t>(b - 1));
      for (int i = b - 2; i >= a; --i) {
        sched.restore(static_cast<std::int32_t>(a), input_slot);
        for (int k = a; k < i; ++k) sched.forward(static_cast<std::int32_t>(k));
        reverse_one(static_cast<std::int32_t>(i));
      }
      return;
    }
    const int u = units_[static_cast<std::size_t>(j) - 1];
    for (int i = a; i < j; ++i) sched.forward(static_cast<std::int32_t>(i));
    sched.store(j, j);
    self(self, j, b, m - u, j);
    sched.free(j);
    sched.restore(static_cast<std::int32_t>(a), input_slot);
    reverse_impl(reverse_impl, a, j, m, input_slot);
  };

  sched.store(0, 0);
  sweep_impl(sweep_impl, 0, l, budget_, 0);
  sched.free(0);
  return sched;
}

}  // namespace edgetrain::core::hetero
