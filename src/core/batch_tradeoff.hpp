// edgetrain: the paper's closing argument, made quantitative (Section VI).
//
// "the effective increase in the total time to solution is likely to be
//  smaller than what is shown ... because a larger batch size will enable
//  fewer batches per epoch. Also, on the typical multi-threaded vector
//  architectures, having a larger batch-size enables to increase the
//  computational efficiency."
//
// This planner sweeps the batch size under a fixed device memory budget:
// bigger batches shrink the checkpoint budget (each slot costs k * M_A),
// raising the recompute factor rho(k), but improve per-sample efficiency
// eff(k). Epoch time per sample is modelled as
//     t(k) = t1 * (2 rho(k) / 2) / eff(k),   eff(k) = k^e / (k^e + c)
// normalised so the reported times are relative to (batch 1, rho achieved
// at batch 1). The sweep exposes the paper's point: the optimal batch under
// checkpointing is typically well above 1 even though rho grows.
#pragma once

#include <cstdint>
#include <vector>

#include "core/revolve.hpp"

namespace edgetrain::core {

struct BatchTradeoffConfig {
  int depth = 1;                       ///< chain length l
  double capacity_bytes = 0.0;         ///< device memory budget
  double fixed_bytes = 0.0;            ///< weights + grads + optimizer
  double act_bytes_per_sample = 0.0;   ///< M_A per step for batch 1
  /// Vectorisation-efficiency exponent and half-saturation constant:
  /// eff(k) = k^e / (k^e + c); e = 0 disables the efficiency bonus.
  double efficiency_exponent = 1.0;
  double efficiency_half_batch = 4.0;
};

struct BatchPoint {
  std::int64_t batch = 1;
  bool feasible = false;
  int total_slots = 0;          ///< checkpoints affordable at this batch
  double rho = 1.0;             ///< achieved recompute factor
  double peak_bytes = 0.0;
  double efficiency = 1.0;      ///< throughput multiplier vs saturation
  double time_per_sample = 0.0; ///< relative; lower is better
};

class BatchTradeoffPlanner {
 public:
  explicit BatchTradeoffPlanner(BatchTradeoffConfig config);

  /// Evaluates one batch size.
  [[nodiscard]] BatchPoint evaluate(std::int64_t batch) const;

  /// Evaluates every batch in @p batches.
  [[nodiscard]] std::vector<BatchPoint> sweep(
      const std::vector<std::int64_t>& batches) const;

  /// The feasible batch minimising time_per_sample (batch 0 when nothing
  /// fits).
  [[nodiscard]] BatchPoint best(std::int64_t max_batch) const;

 private:
  BatchTradeoffConfig config_;
  revolve::RevolveTable table_;
};

}  // namespace edgetrain::core
