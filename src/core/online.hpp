// edgetrain: online checkpointing for chains of unknown length.
//
// Revolve assumes the chain length l is known before the sweep starts. On
// an edge node that is not always true: an idle-time training window can
// close at any moment (see edge/scheduler.hpp), and streaming adjoint
// workloads advance until an external stop. The classical answer (Stumm &
// Walther's online checkpointing) keeps the s stored states approximately
// evenly spread at all times; this implementation uses the standard
// doubling strategy:
//
//   * store every `stride`-th state (stride starts at 1);
//   * when all s slots are full and a new candidate arrives, evict every
//     other checkpoint and double the stride.
//
// At any stop point the stored positions are an even grid of spacing
// `stride`, so the reversal cost is within a small constant of the offline
// periodic optimum for that memory (property-tested against offline
// Revolve in tests/core/online_test.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "core/schedule.hpp"

namespace edgetrain::core::online {

/// Incremental checkpoint-placement policy. Feed states as the sweep
/// advances; interrogate or finalise at any time.
class OnlineCheckpointer {
 public:
  /// @p free_slots: checkpoint slots in addition to the input (state 0),
  /// which is always retained.
  explicit OnlineCheckpointer(int free_slots);

  /// Notifies the policy that the sweep produced `state` (call with
  /// 1, 2, 3, ... in order). Returns true when the state was stored.
  bool advance(std::int32_t state);

  /// States currently checkpointed, ascending; always begins with 0.
  [[nodiscard]] std::vector<std::int32_t> stored_states() const;

  /// Number of evictions performed so far (stride doublings * slots/2).
  [[nodiscard]] std::int64_t evictions() const noexcept { return evictions_; }

  [[nodiscard]] std::int32_t current_stride() const noexcept {
    return stride_;
  }

  /// Forward re-advance cost of reversing the chain now (last observed
  /// state = l), re-running each gap from its checkpoint (periodic-style).
  [[nodiscard]] std::int64_t reversal_cost() const;

  /// Full executor-dialect schedule for the chain as observed so far:
  /// the sweep with exactly the stores/evictions this policy performed,
  /// then the reversal. Validates and replays within free_slots + 1 units.
  [[nodiscard]] Schedule make_schedule() const;

 private:
  int free_slots_;
  std::int32_t stride_ = 1;
  std::int32_t last_state_ = 0;
  std::int64_t evictions_ = 0;
  std::vector<std::int32_t> stored_;  // ascending, excludes state 0
};

/// Convenience: run the policy over a whole chain of length l.
[[nodiscard]] OnlineCheckpointer simulate_stream(int num_steps,
                                                 int free_slots);

}  // namespace edgetrain::core::online
