// edgetrain: schedule executor.
//
// Replays a Schedule against any ChainRunner (typically a neural network
// split into chain steps, see nn/chain_runner.hpp). The executor owns the
// checkpoint slots, enforces the slot bound, seeds the output gradient the
// first time the adjoint is needed, and reports the peak tracked memory of
// the run, so tests and benches can verify that a schedule's *measured*
// footprint matches the planner's analytic model.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/schedule.hpp"
#include "core/slot_store.hpp"
#include "tensor/tensor.hpp"

namespace edgetrain::core {

/// Abstraction of an l-step chain the executor drives.
///
/// Implementations must be replay-safe: forward(step, x, save) may be called
/// several times per run (recomputation); side effects that must happen only
/// once per training pass (e.g. batch-norm running statistics) are the
/// implementation's responsibility to guard (see nn::LayerChainRunner).
class ChainRunner {
 public:
  virtual ~ChainRunner() = default;

  [[nodiscard]] virtual int num_steps() const = 0;

  /// Runs step `step` on `input`, returning the step's output. When `save`
  /// is true the step must retain whatever it needs for one backward(step)
  /// call; when false it must retain nothing.
  [[nodiscard]] virtual Tensor forward(int step, const Tensor& input,
                                       bool save) = 0;

  /// Adjoint of step `step`; consumes the state saved by the most recent
  /// forward(step, ..., true) and returns the gradient w.r.t. the input.
  [[nodiscard]] virtual Tensor backward(int step, const Tensor& grad_output) = 0;
};

/// Computes the gradient of the loss w.r.t. the chain output. Called exactly
/// once per execution, with the chain output (state_l).
using LossGradFn = std::function<Tensor(const Tensor& output)>;

/// Observation/abort hook threaded through a run. When set, on_action is
/// invoked with the in-flight schedule position immediately before each
/// action executes. It may throw to abandon the pass: the executor holds no
/// state between runs, so an abandoned pass updates nothing and the step
/// can simply be replayed from its boundary (the paper's abandon-and-rerun
/// preemption model; persist/fault.hpp uses this to kill training mid-step).
struct ExecutorHooks {
  std::function<void(std::int64_t action_index, const Action& action)>
      on_action;
};

struct ExecutionResult {
  Tensor input_grad;               ///< d loss / d chain-input
  Tensor output;                   ///< chain output (state_l), from the sweep
  ScheduleStats stats;             ///< replayed action counts
  std::size_t peak_tracked_bytes = 0;  ///< high-water mark during the run
  std::size_t baseline_bytes = 0;      ///< live bytes when the run started
  std::int64_t actions_executed = 0;   ///< schedule actions replayed
};

/// Replays schedules; stateless between runs.
class ScheduleExecutor {
 public:
  /// Executes `schedule` on `runner` starting from `input`, keeping
  /// checkpoints in a RamSlotStore.
  /// Throws std::logic_error on schedule/runner disagreement (the schedule
  /// should have been validate()d first; the executor still guards).
  [[nodiscard]] ExecutionResult run(ChainRunner& runner,
                                    const Schedule& schedule,
                                    const Tensor& input,
                                    const LossGradFn& loss_grad) const;

  /// Same, with caller-provided checkpoint storage (disk spill, quantised
  /// checkpoints, ...). The store must cover schedule.num_slots() slots.
  [[nodiscard]] ExecutionResult run(ChainRunner& runner,
                                    const Schedule& schedule,
                                    const Tensor& input,
                                    const LossGradFn& loss_grad,
                                    SlotStore& store) const;

  /// Same, additionally reporting the in-flight schedule position through
  /// @p hooks before every action.
  [[nodiscard]] ExecutionResult run(ChainRunner& runner,
                                    const Schedule& schedule,
                                    const Tensor& input,
                                    const LossGradFn& loss_grad,
                                    SlotStore& store,
                                    const ExecutorHooks& hooks) const;

  /// Convenience: full-storage execution (ForwardSave every step, then
  /// backward), the rho = 1 baseline.
  [[nodiscard]] ExecutionResult run_full_storage(ChainRunner& runner,
                                                 const Tensor& input,
                                                 const LossGradFn& loss_grad) const;
};

/// Builds the full-storage schedule for an l-step chain (slot 0 holds the
/// input; every step ForwardSaves; backwards run off live intermediates).
[[nodiscard]] Schedule full_storage_schedule(int num_steps);

}  // namespace edgetrain::core
