#include "core/adaptive.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/revolve.hpp"

namespace edgetrain::core {

AdaptiveReplanner::AdaptiveReplanner(int num_steps,
                                     const AdaptiveReplannerOptions& options)
    : num_steps_(num_steps), options_(options) {
  if (num_steps < 1) {
    throw std::invalid_argument("AdaptiveReplanner: num_steps < 1");
  }
  if (options_.fallback_ratio <= 0.0 || options_.fallback_ratio > 1.0) {
    throw std::invalid_argument(
        "AdaptiveReplanner: fallback_ratio must be in (0, 1]");
  }
  if (!(options_.drift_threshold > 0.0)) {
    throw std::invalid_argument(
        "AdaptiveReplanner: drift_threshold must be > 0");
  }
  const int s = revolve::max_free_slots_for_bytes(
      options_.capacity_bytes, options_.fixed_bytes,
      options_.activation_bytes_per_step, options_.fallback_ratio);
  if (s < 0) {
    throw std::invalid_argument(
        "AdaptiveReplanner: capacity cannot fit even the slot-less plan");
  }
  rebuild(std::min(s, num_steps_ - 1));
}

double AdaptiveReplanner::planned_ratio(std::int32_t slot) const {
  const auto k = static_cast<std::size_t>(slot - 1);
  return k < planned_ratios_.size() ? planned_ratios_[k]
                                    : options_.fallback_ratio;
}

void AdaptiveReplanner::note_store(const SlotStore& store,
                                   std::int32_t slot) {
  if (slot <= 0) return;  // slot 0 is the chain input, never re-priced
  stored_[static_cast<std::size_t>(slot)] = true;
  if (drift_latched_) return;
  // measured_slot_ratio(slot) reflects every put that already returned, so
  // by the time a later Store fires, all earlier fills of this pass are
  // visible -- the latch arms mid-pass, one action late at worst.
  for (std::int32_t watched = 1;
       watched < static_cast<std::int32_t>(stored_.size()); ++watched) {
    if (!stored_[static_cast<std::size_t>(watched)]) continue;
    const double planned = planned_ratio(watched);
    const double measured = store.measured_slot_ratio(watched);
    if (std::abs(measured - planned) / planned > options_.drift_threshold) {
      drift_latched_ = true;
      return;
    }
  }
}

ExecutorHooks AdaptiveReplanner::hooks(const SlotStore& store) {
  ExecutorHooks hooks;
  hooks.on_action = [this, &store](std::int64_t, const Action& action) {
    if (action.type == ActionType::Store) note_store(store, action.slot);
  };
  return hooks;
}

bool AdaptiveReplanner::finish_pass(const SlotStore& store) {
  // The last Store of a pass has no later hook invocation to observe it;
  // run one final latch sweep before deciding.
  for (std::int32_t slot = 1;
       slot < static_cast<std::int32_t>(stored_.size()) && !drift_latched_;
       ++slot) {
    if (stored_[static_cast<std::size_t>(slot)]) note_store(store, slot);
  }
  const bool armed = drift_latched_;
  drift_latched_ = false;
  std::fill(stored_.begin(), stored_.end(), false);
  if (!armed) return false;

  // Measured ratios in checkpoint order (entry k = slot k + 1); slots the
  // pass never filled keep their planned price.
  std::vector<double> measured(static_cast<std::size_t>(free_slots_),
                               options_.fallback_ratio);
  for (int k = 0; k < free_slots_; ++k) {
    const auto slot = static_cast<std::int32_t>(k + 1);
    measured[static_cast<std::size_t>(k)] =
        std::clamp(store.measured_slot_ratio(slot), 1e-6, 1.0);
  }
  // Slots beyond the measured prefix are priced at the WORST measured
  // ratio: conservative among what this chain actually produced, yet able
  // to buy more slots than the codec's static fallback -- the whole point
  // of re-planning. If a new slot then measures worse, the next pass
  // latches drift again and the plan shrinks back.
  const double fill =
      measured.empty()
          ? options_.fallback_ratio
          : *std::max_element(measured.begin(), measured.end());
  const int s = revolve::max_free_slots_for_bytes(
      options_.capacity_bytes, options_.fixed_bytes,
      options_.activation_bytes_per_step, measured, fill);
  if (s < 0) return false;  // nothing fits; keep the plan we have
  const int clamped = std::min(s, num_steps_ - 1);
  planned_ratios_ = std::move(measured);
  planned_ratios_.resize(static_cast<std::size_t>(clamped), fill);
  if (clamped == free_slots_) return false;  // same shape, just re-priced
  rebuild(clamped);
  ++replans_;
  return true;
}

void AdaptiveReplanner::rebuild(int free_slots) {
  free_slots_ = free_slots;
  schedule_ = revolve::make_schedule(num_steps_, free_slots_);
  planned_ratios_.resize(static_cast<std::size_t>(free_slots_),
                         options_.fallback_ratio);
  stored_.assign(static_cast<std::size_t>(schedule_.num_slots()), false);
}

}  // namespace edgetrain::core
