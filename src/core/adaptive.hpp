// edgetrain: dynamic-ratio adaptive re-planning.
//
// Data-dependent codecs (SlotCodec::Bitmap and friends) achieve a
// compression ratio that depends on the activations actually flowing
// through the chain: a 90%-sparse post-ReLU map packs to ~0.13x, a dense
// one falls back to ~1x. The planner can only assume the codec's
// worst-case planning_bytes_ratio up front, so the first plan is
// conservative. This module closes the loop:
//
//   1. every pass, the ExecutorHooks returned by hooks() watch which
//      checkpoint slots the schedule fills and latch when any slot's
//      SlotStore::measured_slot_ratio drifts more than
//      options.drift_threshold (relative) from the ratio the current plan
//      priced it at;
//   2. at the pass boundary, finish_pass() samples the measured per-slot
//      ratios and -- only if the latch is set -- re-solves
//      revolve::max_free_slots_for_bytes with the measured vector and
//      rebuilds the schedule. The new plan takes effect at the NEXT pass;
//      the pass that measured the drift ran to completion under the old
//      plan.
//
// Gradients are bit-identical across re-plans: every Revolve schedule is
// exact (checkpoint/recompute never changes the arithmetic as long as the
// codec is lossless and the chain is replay-safe), so switching schedules
// between passes cannot perturb training. tests/core/adaptive_test.cpp
// asserts this on real chains.
#pragma once

#include <cstdint>
#include <vector>

#include "core/executor.hpp"
#include "core/schedule.hpp"
#include "core/slot_store.hpp"

namespace edgetrain::core {

struct AdaptiveReplannerOptions {
  /// Device RAM budget the plan must fit (the paper's 2 GB Waggle cap).
  double capacity_bytes = 0.0;
  /// Non-activation resident bytes (weights, gradients, optimizer state).
  double fixed_bytes = 0.0;
  /// Plaintext bytes of one boundary activation.
  double activation_bytes_per_step = 0.0;
  /// Ratio assumed for slots with no measurement yet: the codec's
  /// worst-case planning_bytes_ratio (1.0 for Bitmap, 0.5 for BitmapFp16).
  double fallback_ratio = 1.0;
  /// Relative drift |measured - planned| / planned that arms the re-plan
  /// latch. The issue's acceptance threshold is 10%.
  double drift_threshold = 0.10;
};

/// Re-solves a single-level Revolve plan between passes from measured
/// per-slot compression ratios. Not thread-safe; drive one training loop
/// with one instance.
///
/// Usage per pass:
///   auto result = executor.run(runner, replanner.schedule(), input,
///                              loss_grad, store, replanner.hooks(store));
///   if (replanner.finish_pass(store)) {
///     store = make_store(replanner.schedule().num_slots());  // caller
///   }
class AdaptiveReplanner {
 public:
  /// @p num_steps is the chain depth l. The initial plan prices every slot
  /// at options.fallback_ratio. Throws std::invalid_argument on a
  /// non-positive activation size, a fallback/threshold outside their
  /// domains, or a capacity even s = 0 cannot fit.
  AdaptiveReplanner(int num_steps, const AdaptiveReplannerOptions& options);

  /// The schedule the next pass should replay.
  [[nodiscard]] const Schedule& schedule() const noexcept { return schedule_; }

  /// Free checkpoint slots of the current plan (schedule slot ids 1..s).
  [[nodiscard]] int free_slots() const noexcept { return free_slots_; }

  /// Ratio the current plan prices checkpoint slot k+1 at (entry k).
  [[nodiscard]] const std::vector<double>& planned_ratios() const noexcept {
    return planned_ratios_;
  }

  /// Number of times finish_pass() rebuilt the schedule.
  [[nodiscard]] int replans() const noexcept { return replans_; }

  /// True once any watched slot's measured ratio drifted past the
  /// threshold during the current pass (cleared by finish_pass).
  [[nodiscard]] bool drift_latched() const noexcept { return drift_latched_; }

  /// Executor hooks that watch Store actions of the in-flight pass. The
  /// returned object borrows @p store and this; both must outlive the run.
  [[nodiscard]] ExecutorHooks hooks(const SlotStore& store);

  /// Pass boundary: evaluates the drift latch against @p store's measured
  /// ratios and, when armed, re-solves the slot count with the measured
  /// per-slot vector and rebuilds the schedule. Returns true when the plan
  /// changed -- the caller must then size its next store for the new
  /// schedule().num_slots(). When the measured ratios no longer fit any
  /// s >= 0 (pathological), the current plan is kept and false returned.
  bool finish_pass(const SlotStore& store);

 private:
  [[nodiscard]] double planned_ratio(std::int32_t slot) const;
  void note_store(const SlotStore& store, std::int32_t slot);
  void rebuild(int free_slots);

  int num_steps_;
  AdaptiveReplannerOptions options_;
  int free_slots_ = 0;
  Schedule schedule_;
  std::vector<double> planned_ratios_;  ///< entry k = checkpoint slot k+1
  std::vector<bool> stored_;            ///< slots filled this pass
  bool drift_latched_ = false;
  int replans_ = 0;
};

}  // namespace edgetrain::core
