#include "core/async_slot_store.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "analysis/race/race.hpp"
#include "core/slot_codec.hpp"
#include "core/spill_io.hpp"
#include "tensor/convert.hpp"

namespace edgetrain::core {

namespace {
[[noreturn]] void empty_slot(std::int32_t slot) {
  throw std::logic_error("SlotStore: slot " + std::to_string(slot) +
                         " is empty");
}

/// Drops a staged encoded blob, poisoning it first when nothing else
/// (an in-flight write or a decoding get()) still holds a reference.
void release_staged_blob(std::shared_ptr<std::vector<std::uint8_t>>& blob) {
  if (!blob) return;
  if (blob.use_count() == 1) detail::poison_blob(*blob);
  blob.reset();
}
}  // namespace

AsyncDiskSlotStore::AsyncDiskSlotStore(int num_slots, int first_disk_slot,
                                       std::string directory,
                                       AsyncDiskSlotStoreOptions options)
    : first_disk_slot_(first_disk_slot),
      directory_(std::move(directory)),
      options_(std::move(options)),
      ram_(static_cast<std::size_t>(num_slots)),
      disk_(static_cast<std::size_t>(num_slots)),
      slot_ratios_(static_cast<std::size_t>(num_slots), 1.0) {
  if (options_.write_staging_slots < 1) {
    throw std::invalid_argument(
        "AsyncDiskSlotStore: write_staging_slots must be >= 1 (got " +
        std::to_string(options_.write_staging_slots) + ")");
  }
  if (options_.read_staging_slots < 0) {
    throw std::invalid_argument(
        "AsyncDiskSlotStore: read_staging_slots must be >= 0");
  }
}

AsyncDiskSlotStore::~AsyncDiskSlotStore() {
  // Outstanding jobs reference this object; join them before tearing any
  // state down. Nothing can enqueue more work once destruction has begun.
  worker_.drain();
  for (std::int32_t slot = first_disk_slot_;
       slot < static_cast<std::int32_t>(disk_.size()); ++slot) {
    // Unconditional: a dropped-while-pending generation can leave a stale
    // file behind that no state flag remembers.
    std::remove(path_for(slot).c_str());
  }
}

std::string AsyncDiskSlotStore::path_for(std::int32_t slot) const {
  return directory_ + "/slot_" + std::to_string(slot) + ".ckpt";
}

// --------------------------------------------------------------------------
// put / get / drop
// --------------------------------------------------------------------------

void AsyncDiskSlotStore::put(std::int32_t slot, const Tensor& value) {
  if (!is_disk_slot(slot)) {
    // The RAM tier shares mu_ with everything else: resident_bytes() walks
    // ram_ from monitoring threads, so the fast path must not mutate the
    // vector's elements unlocked (it used to -- a real data race, now a
    // regression test under TSan).
    MutexLock lock(mu_);
    Tensor& held = ram_.at(static_cast<std::size_t>(slot));
    EDGETRAIN_RACE_WRITE(held, "AsyncDiskSlotStore ram_ slot");
    detail::poison_if_sole_owner(held);
    held = value;
    return;
  }
  std::shared_ptr<std::vector<std::uint8_t>> blob;
  if (options_.codec != SlotCodec::None) {
    // Encode on the calling thread (parallel kernels) before staging: the
    // write-behind buffer then holds compressed bytes, and -- for the lossy
    // casts -- every later get() decodes this exact blob, so results are
    // identical whether served from staging, prefetch, or a blocking read.
    blob = std::make_shared<std::vector<std::uint8_t>>(
        codec::encode(options_.codec, value));
  }
  MutexLock lock(mu_);
  // Back-pressure: the training thread may run at most write_staging_slots
  // spills ahead of the disk. Stale (superseded) jobs still occupy staging
  // until the worker retires them -- the queue itself is what is bounded.
  while (staged_writes_ >= options_.write_staging_slots) cv_.wait(lock);
  DiskSlot& state = disk_at(slot);
  invalidate_locked(state);
  state.state = State::WritePending;
  if (blob) {
    if (value.bytes() > 0) {
      slot_ratios_[static_cast<std::size_t>(slot)] =
          static_cast<double>(blob->size()) /
          static_cast<double>(value.bytes());
    }
    state.staged_blob = std::move(blob);
  } else {
    state.staged = value;  // shares the caller's storage; no copy
  }
  state.shape = value.shape();
  enqueue_write_locked(slot);
}

Tensor AsyncDiskSlotStore::get(std::int32_t slot) {
  if (!is_disk_slot(slot)) {
    MutexLock lock(mu_);
    Tensor& slot_ref = ram_.at(static_cast<std::size_t>(slot));
    EDGETRAIN_RACE_READ(slot_ref, "AsyncDiskSlotStore ram_ slot");
    Tensor held = slot_ref;  // shared handle; copied under mu_
    if (!held.defined()) empty_slot(slot);
    return held;
  }
  MutexLock lock(mu_);
  for (;;) {
    DiskSlot& state = disk_at(slot);
    switch (state.state) {
      case State::Empty:
        empty_slot(slot);
      case State::Failed:
        // The background write for this slot failed; the error surfaces on
        // the get() that owns the slot, exactly as a synchronous put would
        // have thrown. Kept until put/drop so retries stay loud too.
        std::rethrow_exception(state.error);
      case State::WritePending: {
        // Write-behind cache hit: the payload is still staged in RAM.
        if (state.staged_blob) {
          // Decode the staged blob -- not the original tensor -- so lossy
          // codecs return the same values a post-flush read would. Shared
          // handle lets the write proceed while we decode unlocked.
          const std::shared_ptr<std::vector<std::uint8_t>> blob =
              state.staged_blob;
          const Shape shape = state.shape;
          lock.unlock();
          Tensor out =
              codec::decode(options_.codec, "AsyncDiskSlotStore", shape,
                            blob->data(), blob->size());
          lock.lock();
          ++write_behind_hits_;
          return out;
        }
        ++write_behind_hits_;
        return state.staged;
      }
      case State::OnDisk:
        break;
    }
    if (state.error) {
      // A prefetch came back corrupt (checksum/truncation). The restore
      // that would have consumed it must fail as loudly as a synchronous
      // read would have.
      std::rethrow_exception(state.error);
    }
    if (state.prefetched.defined()) {
      // Revolve-style schedules restore the same checkpoint several times
      // (once per sub-segment). When the lookahead shows this slot coming
      // up again, hand out a shared handle and KEEP the staging buffer:
      // the repeat restore is then served from RAM instead of re-reading
      // the spill file. Otherwise consume the buffer and free the budget.
      Tensor out = restored_again_soon_locked(slot)
                       ? state.prefetched
                       : take_prefetched_locked(state);
      ++prefetch_hits_;
      maybe_prefetch_locked();
      return out;
    }
    if (state.prefetch_queued) {
      // The IO thread is already reading this slot; joining it is cheaper
      // than issuing a second read. Re-evaluate from scratch afterwards
      // (a concurrent drop may have invalidated the slot meanwhile).
      const std::uint64_t gen = state.generation;
      while (disk_at(slot).generation == gen && disk_at(slot).prefetch_queued) {
        cv_.wait(lock);
      }
      continue;
    }
    // Prefetch never got to this slot: blocking read on the caller.
    const std::uint64_t gen = state.generation;
    const std::string path = path_for(slot);
    const Shape shape = state.shape;
    const std::uint32_t crc = state.crc;
    const std::size_t encoded_size = state.disk_bytes;
    lock.unlock();
    Tensor out;
    std::exception_ptr error;
    try {
      if (options_.io_fault) options_.io_fault(slot, /*is_write=*/false);
      if (options_.codec == SlotCodec::None) {
        out = spill::read_spill("AsyncDiskSlotStore", path, shape, crc);
      } else {
        std::vector<std::uint8_t> blob(encoded_size);
        spill::read_spill_blob("AsyncDiskSlotStore", path, encoded_size, crc,
                               blob.data());
        out = codec::decode(options_.codec, "AsyncDiskSlotStore", shape,
                            blob.data(), blob.size());
      }
    } catch (...) {
      error = std::current_exception();
    }
    lock.lock();
    // A put/drop that raced with the read may have rewritten or removed
    // the file under us; whatever we read (or failed to read) belongs to a
    // dead generation, so re-evaluate instead of reporting a phantom error.
    if (disk_at(slot).generation != gen) continue;
    if (error) std::rethrow_exception(error);
    ++reads_;
    ++blocking_reads_;
    return out;
  }
}

void AsyncDiskSlotStore::drop(std::int32_t slot) {
  if (!is_disk_slot(slot)) {
    MutexLock lock(mu_);  // same discipline as put(): ram_ is guarded
    Tensor& held = ram_.at(static_cast<std::size_t>(slot));
    EDGETRAIN_RACE_WRITE(held, "AsyncDiskSlotStore ram_ slot");
    detail::poison_if_sole_owner(held);
    held.reset();
    return;
  }
  MutexLock lock(mu_);
  DiskSlot& state = disk_at(slot);
  const bool on_disk = state.state == State::OnDisk;
  invalidate_locked(state);
  if (on_disk) {
    // No job owns the file any more; a WritePending slot's file is instead
    // cleaned up by its (now stale) write job when the worker reaches it.
    std::remove(path_for(slot).c_str());
  }
}

// --------------------------------------------------------------------------
// Accounting
// --------------------------------------------------------------------------

std::size_t AsyncDiskSlotStore::resident_bytes() const {
  MutexLock lock(mu_);
  std::size_t total = 0;
  for (const Tensor& t : ram_) {
    EDGETRAIN_RACE_READ(t, "AsyncDiskSlotStore ram_ slot");
    if (t.defined()) total += t.bytes();
  }
  // Staging is real RAM: spills not yet flushed and restores fetched early
  // both count, so the "async is cheaper" story can never hide memory.
  for (const DiskSlot& d : disk_) {
    if (d.staged.defined()) total += d.staged.bytes();
    if (d.staged_blob) total += d.staged_blob->size();
    if (d.prefetched.defined()) total += d.prefetched.bytes();
  }
  return total;
}

std::size_t AsyncDiskSlotStore::external_bytes() const {
  MutexLock lock(mu_);
  return disk_bytes_;
}

double AsyncDiskSlotStore::measured_slot_ratio(std::int32_t slot) const {
  MutexLock lock(mu_);
  return slot_ratios_.at(static_cast<std::size_t>(slot));
}

std::int64_t AsyncDiskSlotStore::disk_writes() const {
  MutexLock lock(mu_);
  return writes_;
}
std::int64_t AsyncDiskSlotStore::disk_reads() const {
  MutexLock lock(mu_);
  return reads_;
}
std::int64_t AsyncDiskSlotStore::prefetch_hits() const {
  MutexLock lock(mu_);
  return prefetch_hits_;
}
std::int64_t AsyncDiskSlotStore::write_behind_hits() const {
  MutexLock lock(mu_);
  return write_behind_hits_;
}
std::int64_t AsyncDiskSlotStore::blocking_reads() const {
  MutexLock lock(mu_);
  return blocking_reads_;
}

void AsyncDiskSlotStore::flush() {
  MutexLock lock(mu_);
  while (staged_writes_ != 0) cv_.wait(lock);
}

// --------------------------------------------------------------------------
// Schedule lookahead
// --------------------------------------------------------------------------

void AsyncDiskSlotStore::begin_replay(const Schedule& schedule) {
  MutexLock lock(mu_);
  future_restores_.clear();
  restore_cursor_ = 0;
  const auto& actions = schedule.actions();
  for (std::size_t i = 0; i < actions.size(); ++i) {
    if (actions[i].type == ActionType::Restore &&
        is_disk_slot(actions[i].slot)) {
      future_restores_.emplace_back(static_cast<std::int64_t>(i),
                                    actions[i].slot);
    }
  }
  replay_active_ = true;
  maybe_prefetch_locked();
}

void AsyncDiskSlotStore::on_replay_position(std::int64_t next_action) {
  MutexLock lock(mu_);
  if (!replay_active_) return;
  // Retire entries up to AND including the action about to execute: its
  // get() is served synchronously either way, so prefetching it now buys
  // nothing -- worse, re-fetching the slot just consumed would hog the
  // read-staging budget and starve the genuinely-upcoming restores.
  while (restore_cursor_ < future_restores_.size() &&
         future_restores_[restore_cursor_].first <= next_action) {
    ++restore_cursor_;
  }
  maybe_prefetch_locked();
}

void AsyncDiskSlotStore::end_replay() {
  MutexLock lock(mu_);
  replay_active_ = false;
  future_restores_.clear();
  restore_cursor_ = 0;
  // Unconsumed prefetch buffers are dead weight once the tape is gone;
  // release the RAM (and the read-staging budget) immediately. In-flight
  // prefetch jobs keep their reservation until they land and the slot is
  // next touched, which the accounting below leaves intact.
  for (DiskSlot& d : disk_) {
    if (d.prefetched.defined()) {
      detail::poison_if_sole_owner(d.prefetched);
      d.prefetched.reset();
      --staged_reads_;
    }
  }
}

// --------------------------------------------------------------------------
// Locked helpers
// --------------------------------------------------------------------------

void AsyncDiskSlotStore::invalidate_locked(DiskSlot& slot) {
  ++slot.generation;  // voids every queued/in-flight job for this slot
  if (slot.staged.defined()) {
    // staged_writes_ is NOT decremented here: the superseded job still
    // occupies the worker queue and releases its staging unit itself.
    detail::poison_if_sole_owner(slot.staged);
    slot.staged.reset();
  }
  release_staged_blob(slot.staged_blob);
  if (slot.prefetch_queued) {
    slot.prefetch_queued = false;
    --staged_reads_;  // the stale job sees the generation bump and exits
  }
  if (slot.prefetched.defined()) {
    detail::poison_if_sole_owner(slot.prefetched);
    slot.prefetched.reset();
    --staged_reads_;
  }
  if (slot.state == State::OnDisk) {
    disk_bytes_ -= slot.disk_bytes;
    slot.disk_bytes = 0;
  }
  slot.state = State::Empty;
  slot.error = nullptr;
}

Tensor AsyncDiskSlotStore::take_prefetched_locked(DiskSlot& slot) {
  Tensor out = std::move(slot.prefetched);
  slot.prefetched.reset();
  --staged_reads_;
  return out;
}

bool AsyncDiskSlotStore::restored_again_soon_locked(std::int32_t slot) const {
  if (!replay_active_) return false;
  const std::size_t window_end =
      std::min(future_restores_.size(),
               restore_cursor_ + static_cast<std::size_t>(
                                     std::max(options_.lookahead_window, 0)));
  for (std::size_t i = restore_cursor_; i < window_end; ++i) {
    if (future_restores_[i].second == slot) return true;
  }
  return false;
}

void AsyncDiskSlotStore::maybe_prefetch_locked() {
  if (!replay_active_) return;
  const std::size_t window_end =
      std::min(future_restores_.size(),
               restore_cursor_ + static_cast<std::size_t>(
                                     std::max(options_.lookahead_window, 0)));
  for (std::size_t i = restore_cursor_; i < window_end; ++i) {
    DiskSlot& state = disk_at(future_restores_[i].second);
    if (state.prefetch_queued || state.prefetched.defined()) {
      continue;  // already settled; look further ahead
    }
    // Strictly in restore order: stop at the first entry whose payload is
    // not on disk yet (still staged, not stored, or failed). Jumping over
    // it to a later restore would pin the staging budget on the furthest
    // future while the very next restore falls back to a blocking read --
    // exactly backwards. A skipped-over WritePending slot is re-scanned by
    // run_write() the moment its flush lands.
    if (state.state != State::OnDisk || state.error) break;
    if (staged_reads_ >= options_.read_staging_slots) break;
    enqueue_prefetch_locked(future_restores_[i].second);
  }
}

void AsyncDiskSlotStore::enqueue_write_locked(std::int32_t slot) {
  ++staged_writes_;
  const std::uint64_t gen = disk_at(slot).generation;
  worker_.submit([this, slot, gen] { run_write(slot, gen); });
}

void AsyncDiskSlotStore::enqueue_prefetch_locked(std::int32_t slot) {
  DiskSlot& state = disk_at(slot);
  state.prefetch_queued = true;
  ++staged_reads_;
  const std::uint64_t gen = state.generation;
  worker_.submit([this, slot, gen] { run_prefetch(slot, gen); });
}

// --------------------------------------------------------------------------
// IO-thread job bodies (must not throw: BackgroundWorker jobs are noexcept
// by contract, so every failure is captured as an exception_ptr and routed
// to the owning get()).
// --------------------------------------------------------------------------

void AsyncDiskSlotStore::run_write(std::int32_t slot, std::uint64_t gen) {
  Tensor payload;
  std::shared_ptr<std::vector<std::uint8_t>> blob;
  {
    MutexLock lock(mu_);
    DiskSlot& state = disk_at(slot);
    if (state.generation != gen) {
      // Superseded before we ran. The worker is FIFO, so no newer job for
      // this slot has written yet: any file present holds stale bytes from
      // an even older generation -- remove it and release our staging unit.
      --staged_writes_;
      cv_.notify_all();
      std::remove(path_for(slot).c_str());
      return;
    }
    if (state.staged_blob) {
      blob = state.staged_blob;  // shared handle; blob bytes are immutable
    } else {
      payload = state.staged;  // shared handle; payload bytes are immutable
    }
  }

  std::uint32_t crc = 0;
  std::exception_ptr error;
  try {
    if (options_.io_fault) options_.io_fault(slot, /*is_write=*/true);
    if (blob) {
      crc = spill::write_spill_blob("AsyncDiskSlotStore", path_for(slot),
                                    blob->data(), blob->size());
    } else {
      crc = spill::write_spill("AsyncDiskSlotStore", path_for(slot), payload);
    }
  } catch (...) {
    error = std::current_exception();
  }

  MutexLock lock(mu_);
  DiskSlot& state = disk_at(slot);
  --staged_writes_;
  if (state.generation != gen) {
    // Dropped or overwritten while we were writing; the bytes we just
    // produced (if any) belong to a dead generation.
    std::remove(path_for(slot).c_str());
  } else if (error) {
    state.state = State::Failed;
    state.error = error;
    detail::poison_if_sole_owner(state.staged);
    state.staged.reset();
    blob.reset();
    release_staged_blob(state.staged_blob);
  } else {
    state.state = State::OnDisk;
    state.crc = crc;
    state.disk_bytes = blob ? blob->size() : state.staged.bytes();
    disk_bytes_ += state.disk_bytes;
    detail::poison_if_sole_owner(state.staged);
    state.staged.reset();
    blob.reset();
    release_staged_blob(state.staged_blob);
    ++writes_;
    maybe_prefetch_locked();  // this slot may be an upcoming Restore
  }
  cv_.notify_all();
}

void AsyncDiskSlotStore::run_prefetch(std::int32_t slot, std::uint64_t gen) {
  Shape shape;
  std::uint32_t crc = 0;
  std::size_t encoded_size = 0;
  {
    MutexLock lock(mu_);
    DiskSlot& state = disk_at(slot);
    if (state.generation != gen) return;  // invalidation paid our unit back
    shape = state.shape;
    crc = state.crc;
    encoded_size = state.disk_bytes;
  }

  Tensor result;
  std::exception_ptr error;
  try {
    if (options_.io_fault) options_.io_fault(slot, /*is_write=*/false);
    if (options_.codec == SlotCodec::None) {
      result = spill::read_spill("AsyncDiskSlotStore", path_for(slot), shape,
                                 crc);
    } else {
      // Read AND decode here, on the IO thread, with Threading::Serial:
      // decompression overlaps the training thread's recompute instead of
      // borrowing the compute pool mid-sweep (ThreadPool::parallel_for has
      // no external-caller serialisation).
      std::vector<std::uint8_t> blob(encoded_size);
      spill::read_spill_blob("AsyncDiskSlotStore", path_for(slot),
                             encoded_size, crc, blob.data());
      result = codec::decode(options_.codec, "AsyncDiskSlotStore", shape,
                             blob.data(), blob.size(),
                             convert::Threading::Serial);
    }
  } catch (...) {
    error = std::current_exception();
  }

  MutexLock lock(mu_);
  DiskSlot& state = disk_at(slot);
  if (state.generation != gen) {
    cv_.notify_all();  // a get() may be parked on the old generation
    return;
  }
  state.prefetch_queued = false;
  if (error) {
    state.error = error;
    --staged_reads_;
  } else {
    state.prefetched = std::move(result);
    ++reads_;
  }
  cv_.notify_all();
}

}  // namespace edgetrain::core
