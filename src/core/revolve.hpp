// edgetrain: optimal binomial checkpointing (Revolve).
//
// Implements the dynamic program behind Griewank & Walther's REVOLVE
// (Algorithm 799) in the activation-checkpoint model the paper uses for
// neural network training:
//
//   * the chain has l homogeneous steps; one checkpoint slot holds one
//     boundary activation (the paper's M_A);
//   * the chain input (state_0) is always available (it is the data batch);
//   * reversing step i costs one backward unit and requires state_i; the
//     re-materialisation of step i's internals is part of that unit;
//   * forward work is counted per step execution ("advances").
//
// Two cost functions:
//
//   forward_cost(l, s)  -- F(l, s): total forward executions for a full
//     training step (initial loss-computing sweep INCLUDED) with s free
//     slots.  F(1,s)=1, F(l,0)=l(l+1)/2,
//     F(l,s) = min_{1<=j<l} [ j + F(l-j, s-1) + R(j, s) ].
//
//   reversal_cost(l, s) -- R(l, s): forwards to reverse a segment whose
//     output gradient is already available.  R(1,s)=0, R(l,0)=l(l-1)/2,
//     R(l,s) = min_{1<=j<l} [ j + R(l-j, s-1) + R(j, s) ].
//
// The paper's recompute factor is rho(l, s) = (F(l,s) + l) / (2 l), so
// rho == 1 iff s >= l-1 (full storage, no recomputation), exactly the
// reading of Figure 1 at rho = 1.
//
// Relation to the classical theory (property-tested in
// tests/core/revolve_test.cpp): Griewank & Walther's *youturn* model, in
// which every Backward re-runs its own step's forward, has the closed-form
// optimum  t*l - beta(s+1, t-1) + 1  with beta(s,t) = C(s+t, s) and t
// minimal such that beta(s,t) >= l. The activation-checkpoint model lets a
// Backward run directly off a stored boundary state, so F(l,s) is bounded
// above by that closed form (equality at full storage) and is itself the
// true optimum of the boundary-state machine (verified against exhaustive
// uniform-cost search for small chains).
#pragma once

#include <cstdint>
#include <vector>

#include "core/schedule.hpp"

namespace edgetrain::core::revolve {

/// beta(s, t) = C(s+t, s), saturating at int64 max / 4. beta(s, -1) = 0.
[[nodiscard]] std::int64_t binomial_beta(int s, int t);

/// Memoised DP tables for one maximum chain length / slot count.
/// Building the table costs O(max_steps^2 * max_free_slots); all queries are
/// O(1) afterwards. Costs are exact (no saturation) for the sizes the
/// library targets (l <= ~2000).
class RevolveTable {
 public:
  RevolveTable(int max_steps, int max_free_slots);

  [[nodiscard]] int max_steps() const noexcept { return max_steps_; }
  [[nodiscard]] int max_free_slots() const noexcept { return max_free_slots_; }

  /// F(l, s). s is clamped to [0, max_free_slots]; costs are monotone
  /// non-increasing in s and constant for s >= l-1.
  [[nodiscard]] std::int64_t forward_cost(int l, int s) const;

  /// R(l, s), the reversal-only cost.
  [[nodiscard]] std::int64_t reversal_cost(int l, int s) const;

  /// The minimising split j of F(l, s); 0 when l == 1.
  [[nodiscard]] int best_split_sweep(int l, int s) const;

  /// The minimising split j of R(l, s); 0 when l == 1.
  [[nodiscard]] int best_split_reverse(int l, int s) const;

 private:
  [[nodiscard]] std::size_t idx(int l, int s) const {
    return static_cast<std::size_t>(l) *
               static_cast<std::size_t>(max_free_slots_ + 1) +
           static_cast<std::size_t>(s);
  }

  int max_steps_;
  int max_free_slots_;
  std::vector<std::int64_t> fwd_;   // F table, index (l, s)
  std::vector<std::int64_t> rev_;   // R table
  std::vector<std::int32_t> fwd_split_;
  std::vector<std::int32_t> rev_split_;
};

/// Convenience one-shot queries (build a table internally).
[[nodiscard]] std::int64_t forward_cost(int num_steps, int free_slots);
[[nodiscard]] std::int64_t reversal_cost(int num_steps, int free_slots);

/// Closed-form optimum of the Griewank-Walther youturn model; an upper
/// bound on forward_cost() (equal at full storage).
[[nodiscard]] std::int64_t closed_form_forward_cost(int num_steps,
                                                    int free_slots);

/// The paper's recompute factor rho(l, s) = (F(l,s) + l) / (2l).
[[nodiscard]] double recompute_factor(int num_steps, int free_slots);

/// Smallest s such that rho(l, s) <= rho_budget; returns l-1 (full storage)
/// when rho_budget <= 1. Uses a prebuilt table when supplied.
[[nodiscard]] int min_free_slots_for_rho(int num_steps, double rho_budget);
[[nodiscard]] int min_free_slots_for_rho(const RevolveTable& table,
                                         int num_steps, double rho_budget);

/// Smallest s such that F(l, s) <= max_forwards; -1 if unachievable
/// (max_forwards < l).
[[nodiscard]] int min_free_slots_for_cost(int num_steps,
                                          std::int64_t max_forwards);

/// Largest s whose compressed-checkpoint footprint
///   fixed_bytes + (1 + s * checkpoint_bytes_ratio) * act_bytes
/// fits @p capacity_bytes; -1 when even s = 0 (input + frontier only) does
/// not fit. ratio = 1 is the paper's plaintext model; a 0.5 codec doubles
/// the slots the same budget buys, which is how compression becomes a
/// lower achievable rho. Throws std::invalid_argument on act_bytes <= 0 or
/// ratio outside (0, 1].
[[nodiscard]] int max_free_slots_for_bytes(double capacity_bytes,
                                           double fixed_bytes,
                                           double act_bytes,
                                           double checkpoint_bytes_ratio = 1.0);

/// Per-slot variant: the k-th free slot rests at slot_ratios[k] (entries
/// past the vector's end cost fill_ratio), so the footprint of s slots is
///   fixed_bytes + (1 + sum_{k<s} ratio_k) * act_bytes.
/// Returns the largest s that fits; -1 when even s = 0 does not. The
/// prefix sum is monotone (ratios are positive), matching the scalar
/// overload exactly when every entry equals fill_ratio. Throws
/// std::invalid_argument on act_bytes <= 0 or any ratio outside (0, 1].
[[nodiscard]] int max_free_slots_for_bytes(
    double capacity_bytes, double fixed_bytes, double act_bytes,
    const std::vector<double>& slot_ratios, double fill_ratio = 1.0);

/// Generates the executor-dialect schedule realising F(l, s): slot 0 holds
/// the chain input, slots 1..s are the free checkpoints, every Backward is
/// preceded by its re-materialising ForwardSave. The result validates and
/// replays to peak_memory_units == s + 1.
[[nodiscard]] Schedule make_schedule(int num_steps, int free_slots);

/// Same, emitting from a prebuilt table (num_steps <= table.max_steps(),
/// free_slots <= table.max_free_slots()). Sweeps that emit many schedules
/// per chain length amortise the O(l^2 s) table build this way.
[[nodiscard]] Schedule make_schedule(const RevolveTable& table, int num_steps,
                                     int free_slots);

}  // namespace edgetrain::core::revolve
