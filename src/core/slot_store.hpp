// edgetrain: checkpoint slot storage backends.
//
// The executor keeps checkpointed activations in a SlotStore. Four
// backends make the paper's memory story physical:
//   * RamSlotStore      -- shares tensor handles (zero copy; the default);
//   * DiskSlotStore     -- spills designated slots to files (the SD card of
//                          a Waggle node; pairs with core/disk_revolve.hpp),
//                          optionally through a slot codec, which shrinks
//                          the SD-card bytes per spill;
//   * CompressedSlotStore -- keeps slots in RAM as codec blobs
//                          (core/slot_codec.hpp): lossless byte-plane RLE
//                          (bit-exact restores) or fp16/bf16 casts (half
//                          the bytes, gradcheck-tolerance error), so the
//                          planner fits more checkpoints per byte budget;
//   * QuantizedSlotStore-- stores slots at reduced precision (fp16 or
//                          affine int8), halving/quartering checkpoint
//                          memory at a small, measurable gradient error
//                          (bench_slot_stores quantifies it).
// Backends report resident (RAM) and external (disk) bytes so experiments
// can account for both tiers.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/schedule.hpp"
#include "core/slot_codec.hpp"
#include "tensor/tensor.hpp"

namespace edgetrain::core {

class SlotStore {
 public:
  virtual ~SlotStore() = default;

  /// Stores @p value into @p slot (overwrites).
  virtual void put(std::int32_t slot, const Tensor& value) = 0;

  /// Retrieves the tensor stored in @p slot.
  /// Throws std::logic_error when the slot is empty.
  [[nodiscard]] virtual Tensor get(std::int32_t slot) = 0;

  /// Frees @p slot (no-op when already empty).
  virtual void drop(std::int32_t slot) = 0;

  /// Bytes currently held in RAM by this store.
  [[nodiscard]] virtual std::size_t resident_bytes() const = 0;

  /// Bytes currently held outside RAM (disk); 0 for RAM-only stores.
  [[nodiscard]] virtual std::size_t external_bytes() const = 0;

  /// Measured encoded/plaintext byte ratio of the most recent put() into
  /// @p slot; 1.0 for uncodecced stores or slots never stored. Codec
  /// stores record this on every put, so after one pass the planners can
  /// re-solve with the per-slot ratios this chain's activations actually
  /// achieve instead of the codec's worst-case planning_bytes_ratio()
  /// (core/adaptive.hpp closes that loop).
  [[nodiscard]] virtual double measured_slot_ratio(std::int32_t /*slot*/) const {
    return 1.0;
  }

  // --- Schedule lookahead (optional) ---------------------------------------
  // A Schedule is a fully known tape, so every future Restore is visible
  // before it executes: the executor announces the tape once per run and
  // the position of every action as it replays. Stores that can exploit
  // the future (AsyncDiskSlotStore prefetches the next spilled restores
  // while the CPU recomputes) override these; the defaults make lookahead
  // invisible to plain stores. The Schedule reference is only guaranteed
  // valid during the begin_replay call -- copy what you need.

  /// Called once, before the first action of a replay, with the full tape.
  virtual void begin_replay(const Schedule& /*schedule*/) {}

  /// Called immediately before the action at @p next_action executes.
  virtual void on_replay_position(std::int64_t /*next_action*/) {}

  /// Called when the replay ends -- normally or by abandonment (the
  /// executor guarantees the call on every exit path).
  virtual void end_replay() {}
};

/// Shares tensor handles; put/get are O(1) and copy-free.
class RamSlotStore final : public SlotStore {
 public:
  explicit RamSlotStore(int num_slots);
  void put(std::int32_t slot, const Tensor& value) override;
  [[nodiscard]] Tensor get(std::int32_t slot) override;
  void drop(std::int32_t slot) override;
  [[nodiscard]] std::size_t resident_bytes() const override;
  [[nodiscard]] std::size_t external_bytes() const override { return 0; }

 private:
  void guard_release(Tensor& held);

  std::vector<Tensor> slots_;
};

/// Slots below `first_disk_slot` stay in RAM; the rest round-trip through
/// files in `directory` (created by the caller). File IO errors throw.
/// Every spill is checksummed on put and verified on get, so a truncated
/// or bit-rotted spill file raises a descriptive std::runtime_error
/// instead of feeding garbage activations back into training. Put and get
/// block on the file IO; AsyncDiskSlotStore (core/async_slot_store.hpp)
/// overlaps the same format with recompute. Serialisation runs through the
/// calling thread's persistent Workspace arena (core/spill_io.hpp): zero
/// heap allocation per spill in steady state.
class DiskSlotStore final : public SlotStore {
 public:
  /// With a codec other than SlotCodec::None, spilled slots are encoded on
  /// put (parallel convert kernels on the calling thread) and decoded on
  /// get; external_bytes() then reports the *encoded* footprint -- the
  /// quantity the SD card actually stores.
  DiskSlotStore(int num_slots, int first_disk_slot, std::string directory,
                SlotCodec codec = SlotCodec::None);
  ~DiskSlotStore() override;
  void put(std::int32_t slot, const Tensor& value) override;
  [[nodiscard]] Tensor get(std::int32_t slot) override;
  void drop(std::int32_t slot) override;
  [[nodiscard]] std::size_t resident_bytes() const override;
  [[nodiscard]] std::size_t external_bytes() const override;

  [[nodiscard]] std::int64_t disk_writes() const noexcept { return writes_; }
  [[nodiscard]] std::int64_t disk_reads() const noexcept { return reads_; }
  [[nodiscard]] SlotCodec codec() const noexcept { return codec_; }

  /// Cumulative plaintext vs encoded bytes over every spilled put; their
  /// ratio is the measured compression on real activations (1.0 when no
  /// codec or nothing spilled yet).
  [[nodiscard]] std::size_t plain_bytes_seen() const noexcept {
    return plain_seen_;
  }
  [[nodiscard]] std::size_t encoded_bytes_seen() const noexcept {
    return encoded_seen_;
  }
  [[nodiscard]] double measured_ratio() const noexcept {
    return plain_seen_ == 0 ? 1.0
                            : static_cast<double>(encoded_seen_) /
                                  static_cast<double>(plain_seen_);
  }

  /// Encoded/plaintext ratio of the last spill into @p slot (1.0 for RAM
  /// slots and slots never spilled).
  [[nodiscard]] double measured_slot_ratio(std::int32_t slot) const override {
    return slot_ratios_.at(static_cast<std::size_t>(slot));
  }

 private:
  [[nodiscard]] std::string path_for(std::int32_t slot) const;
  [[nodiscard]] bool is_disk_slot(std::int32_t slot) const {
    return slot >= first_disk_slot_;
  }

  int first_disk_slot_;
  std::string directory_;
  SlotCodec codec_;
  std::vector<Tensor> ram_;             // RAM tier
  std::vector<Shape> disk_shapes_;      // shape per spilled slot
  std::vector<std::uint32_t> disk_crcs_;  // payload CRC32 per spilled slot
  std::vector<std::size_t> disk_payload_bytes_;  // on-disk payload per slot
  std::vector<bool> on_disk_;
  std::vector<double> slot_ratios_;  // last measured ratio per slot
  std::size_t disk_bytes_ = 0;
  std::size_t plain_seen_ = 0;
  std::size_t encoded_seen_ = 0;
  std::int64_t writes_ = 0;
  std::int64_t reads_ = 0;
};

namespace detail {
/// Guards-only: poisons a buffer this store is releasing, iff @p held is
/// the sole owner (poisoning a shared buffer would corrupt a live handle).
/// No-op in release builds. Shared by the RAM store (dropped checkpoints)
/// and the async store (discarded staging buffers).
void poison_if_sole_owner(Tensor& held);

/// Guards-only: poisons an encoded blob being released (byte pattern
/// guards::kPoisonByte), so no stale plaintext-derived bytes survive a
/// drop/overwrite. No-op in release builds.
void poison_blob(std::vector<std::uint8_t>& blob);
}  // namespace detail

/// Keeps every slot in RAM as an encoded codec blob. put() encodes with
/// the parallel convert kernels, get() decodes; with SlotCodec::Lossless
/// restores are bit-exact while resident_bytes() reports the *encoded*
/// footprint -- the byte savings the planner converts into extra
/// checkpoint slots (lower rho at the same RAM cap). Blob bytes are
/// MemoryTracker-accounted and poisoned on release under EDGETRAIN_GUARDS.
class CompressedSlotStore final : public SlotStore {
 public:
  CompressedSlotStore(int num_slots, SlotCodec codec);
  ~CompressedSlotStore() override;
  void put(std::int32_t slot, const Tensor& value) override;
  [[nodiscard]] Tensor get(std::int32_t slot) override;
  void drop(std::int32_t slot) override;
  [[nodiscard]] std::size_t resident_bytes() const override;
  [[nodiscard]] std::size_t external_bytes() const override { return 0; }

  [[nodiscard]] SlotCodec codec() const noexcept { return codec_; }

  /// Cumulative plaintext vs encoded bytes over every put; the measured
  /// compression ratio on the activations this store actually saw.
  [[nodiscard]] std::size_t plain_bytes_seen() const noexcept {
    return plain_seen_;
  }
  [[nodiscard]] std::size_t encoded_bytes_seen() const noexcept {
    return encoded_seen_;
  }
  [[nodiscard]] double measured_ratio() const noexcept {
    return plain_seen_ == 0 ? 1.0
                            : static_cast<double>(encoded_seen_) /
                                  static_cast<double>(plain_seen_);
  }

  /// Encoded/plaintext ratio of the last put into @p slot (1.0 before any).
  [[nodiscard]] double measured_slot_ratio(std::int32_t slot) const override {
    return slot_ratios_.at(static_cast<std::size_t>(slot));
  }

 private:
  struct EncodedSlot {
    Shape shape;
    std::vector<std::uint8_t> blob;
    bool occupied = false;
    std::size_t tracked = 0;  // bytes registered with the MemoryTracker
  };

  void release(EncodedSlot& slot);

  SlotCodec codec_;
  std::vector<EncodedSlot> slots_;
  std::vector<double> slot_ratios_;  // last measured ratio per slot
  std::size_t plain_seen_ = 0;
  std::size_t encoded_seen_ = 0;
};

/// Stores checkpoints at reduced precision. The decoded tensor differs
/// from the original by quantisation error; recomputed forwards then run
/// from the approximate state (lossy checkpointing).
class QuantizedSlotStore final : public SlotStore {
 public:
  enum class Precision : std::uint8_t {
    Half,  ///< IEEE binary16 round-to-nearest (2 bytes/element)
    Int8,  ///< per-tensor affine quantisation   (1 byte/element)
  };

  QuantizedSlotStore(int num_slots, Precision precision);
  ~QuantizedSlotStore() override;
  void put(std::int32_t slot, const Tensor& value) override;
  [[nodiscard]] Tensor get(std::int32_t slot) override;
  void drop(std::int32_t slot) override;
  [[nodiscard]] std::size_t resident_bytes() const override;
  [[nodiscard]] std::size_t external_bytes() const override { return 0; }

 private:
  struct Encoded {
    Shape shape;
    std::vector<std::uint16_t> half;  // Precision::Half payload
    std::vector<std::uint8_t> bytes;  // Precision::Int8 payload
    float scale = 1.0F;               // Int8 affine parameters
    float zero = 0.0F;
    bool occupied = false;
    std::size_t tracked = 0;          // bytes registered with the tracker
  };

  void release(Encoded& slot);

  Precision precision_;
  std::vector<Encoded> slots_;
};

/// IEEE 754 binary16 conversions (round-to-nearest-even), exposed for tests.
[[nodiscard]] std::uint16_t float_to_half(float value);
[[nodiscard]] float half_to_float(std::uint16_t value);

}  // namespace edgetrain::core
