#include "core/strategy.hpp"

#include <sstream>

#include "core/batch_tradeoff.hpp"

namespace edgetrain::core {

std::string to_string(Feasibility feasibility) {
  switch (feasibility) {
    case Feasibility::FitsWithoutCheckpointing:
      return "fits without checkpointing";
    case Feasibility::FitsWithCheckpointing:
      return "fits with Revolve checkpointing";
    case Feasibility::FitsWithCompressedSlots:
      return "fits with fp16-compressed checkpoints";
    case Feasibility::FitsWithDiskSpill:
      return "fits with SD-card checkpoint spill";
    case Feasibility::Infeasible:
      return "infeasible on this device";
  }
  return "?";
}

namespace {

/// Batch suggestion once a per-slot byte cost is settled.
void fill_batch(const StrategyRequest& request, double slot_byte_factor,
                StrategyRecommendation& rec) {
  BatchTradeoffConfig config;
  config.depth = request.chain.depth;
  config.capacity_bytes = request.device_memory_bytes;
  config.fixed_bytes = request.chain.fixed_bytes;
  config.act_bytes_per_sample =
      request.chain.activation_bytes_per_step * slot_byte_factor;
  config.efficiency_exponent = request.efficiency_exponent;
  config.efficiency_half_batch = request.efficiency_half_batch;
  const BatchTradeoffPlanner planner(config);
  const BatchPoint best = planner.best(request.max_batch);
  if (best.feasible) {
    rec.recommended_batch = best.batch;
    rec.batch_rho = best.rho;
  }
}

}  // namespace

StrategyRecommendation recommend_strategy(const StrategyRequest& request) {
  StrategyRecommendation rec;
  std::ostringstream why;
  const double capacity = request.device_memory_bytes;
  const ChainSpec& chain = request.chain;

  if (chain.fixed_bytes >= capacity) {
    rec.feasibility = Feasibility::Infeasible;
    why << chain.name << ": fixed training state ("
        << chain.fixed_bytes / 1048576.0 << " MB: weights, gradients and "
        << "optimizer moments) alone exceeds the device ("
        << capacity / 1048576.0 << " MB). Checkpointing compresses "
        << "activations, not fixed state; pick a smaller architecture.";
    rec.rationale = why.str();
    return rec;
  }

  const MemoryPlanner planner(chain);
  const PlanReport report = planner.report_for_device(capacity);

  if (report.fits_without_checkpointing) {
    rec.feasibility = Feasibility::FitsWithoutCheckpointing;
    rec.free_slots = chain.depth - 1;
    rec.rho = 1.0;
    rec.peak_bytes = report.no_checkpoint_bytes;
    why << chain.name << " fits at rho=1 ("
        << report.no_checkpoint_bytes / 1048576.0 << " MB of "
        << capacity / 1048576.0 << " MB); checkpointing is optional.";
    fill_batch(request, 1.0, rec);
  } else if (report.fits_with_checkpointing &&
             report.min_rho_to_fit <= request.rho_budget) {
    rec.feasibility = Feasibility::FitsWithCheckpointing;
    rec.free_slots = report.recommended.free_slots;
    rec.rho = report.recommended.achieved_rho;
    rec.peak_bytes = report.recommended.peak_bytes;
    why << chain.name << " fits with " << report.recommended.total_slots
        << " Revolve checkpoints at rho=" << rec.rho << " (budget "
        << request.rho_budget << ").";
    fill_batch(request, 1.0, rec);
  } else {
    // Try fp16 checkpoint compression: halves every slot.
    ChainSpec half = chain;
    half.activation_bytes_per_step = chain.activation_bytes_per_step / 2.0;
    const MemoryPlanner half_planner(half);
    const PlanReport half_report = half_planner.report_for_device(capacity);
    if (half_report.fits_with_checkpointing &&
        half_report.min_rho_to_fit <= request.rho_budget) {
      rec.feasibility = Feasibility::FitsWithCompressedSlots;
      rec.free_slots = half_report.recommended.free_slots;
      rec.rho = half_report.recommended.achieved_rho;
      rec.peak_bytes = half_report.recommended.peak_bytes;
      why << chain.name << " needs fp16 checkpoint compression: "
          << half_report.recommended.total_slots
          << " half-precision checkpoints reach rho=" << rec.rho
          << " within the budget (full precision needs rho="
          << report.min_rho_to_fit << ").";
      fill_batch(request, 0.5, rec);
    } else if (request.has_local_storage &&
               report.fits_with_checkpointing) {
      // Disk spill keeps only the frontier + one slot in RAM.
      rec.feasibility = Feasibility::FitsWithDiskSpill;
      rec.free_slots = report.recommended.free_slots;
      rec.rho = report.recommended.achieved_rho;
      rec.peak_bytes =
          chain.fixed_bytes + 2.0 * chain.activation_bytes_per_step;
      why << chain.name << " exceeds the rho budget in RAM; spilling "
          << "checkpoints to local storage keeps only ~2 activations "
          << "resident (plus IO latency; see core/disk_revolve.hpp for the "
          << "cost model).";
      fill_batch(request, 1.0, rec);
    } else {
      rec.feasibility = Feasibility::Infeasible;
      why << chain.name << " does not fit: even the most frugal schedule "
          << "needs " << report.min_possible_bytes / 1048576.0
          << " MB against " << capacity / 1048576.0 << " MB"
          << (request.has_local_storage ? "" : " and no local storage is "
                                               "available for spilling")
          << ".";
    }
  }
  rec.rationale = why.str();
  return rec;
}

}  // namespace edgetrain::core
