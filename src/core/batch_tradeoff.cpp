#include "core/batch_tradeoff.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace edgetrain::core {

BatchTradeoffPlanner::BatchTradeoffPlanner(BatchTradeoffConfig config)
    : config_(config),
      table_(config.depth, std::max(config.depth - 1, 0)) {
  if (config_.depth < 1) {
    throw std::invalid_argument("BatchTradeoff: depth < 1");
  }
  if (config_.act_bytes_per_sample <= 0.0) {
    throw std::invalid_argument("BatchTradeoff: activation size must be > 0");
  }
}

BatchPoint BatchTradeoffPlanner::evaluate(std::int64_t batch) const {
  BatchPoint point;
  point.batch = batch;
  const double slot_bytes =
      static_cast<double>(batch) * config_.act_bytes_per_sample;
  const double room = config_.capacity_bytes - config_.fixed_bytes;
  const int affordable = room > slot_bytes
                             ? static_cast<int>(room / slot_bytes)
                             : 0;
  if (affordable < 1) {
    point.feasible = false;
    point.time_per_sample = std::numeric_limits<double>::infinity();
    return point;
  }
  point.feasible = true;
  point.total_slots = std::min(affordable, config_.depth);
  const int free_slots = point.total_slots - 1;
  const std::int64_t forwards = table_.forward_cost(config_.depth, free_slots);
  point.rho = static_cast<double>(forwards + config_.depth) /
              (2.0 * static_cast<double>(config_.depth));
  point.peak_bytes =
      config_.fixed_bytes + static_cast<double>(point.total_slots) * slot_bytes;

  const double e = config_.efficiency_exponent;
  if (e > 0.0) {
    const double ke = std::pow(static_cast<double>(batch), e);
    const double ce = std::pow(config_.efficiency_half_batch, e);
    point.efficiency = ke / (ke + ce);
  } else {
    point.efficiency = 1.0;
  }
  point.time_per_sample = point.rho / point.efficiency;
  return point;
}

std::vector<BatchPoint> BatchTradeoffPlanner::sweep(
    const std::vector<std::int64_t>& batches) const {
  std::vector<BatchPoint> points;
  points.reserve(batches.size());
  for (const std::int64_t batch : batches) points.push_back(evaluate(batch));
  return points;
}

BatchPoint BatchTradeoffPlanner::best(std::int64_t max_batch) const {
  BatchPoint best_point;
  best_point.batch = 0;
  best_point.time_per_sample = std::numeric_limits<double>::infinity();
  for (std::int64_t k = 1; k <= max_batch; ++k) {
    const BatchPoint point = evaluate(k);
    if (point.feasible &&
        point.time_per_sample < best_point.time_per_sample) {
      best_point = point;
    }
  }
  return best_point;
}

}  // namespace edgetrain::core
