#include "core/planner.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace edgetrain::core {

MemoryPlanner::MemoryPlanner(ChainSpec spec) : spec_(std::move(spec)) {
  if (spec_.depth < 1) throw std::invalid_argument("MemoryPlanner: depth < 1");
  if (spec_.activation_bytes_per_step <= 0.0) {
    throw std::invalid_argument("MemoryPlanner: activation size must be > 0");
  }
  if (spec_.checkpoint_bytes_ratio <= 0.0 ||
      spec_.checkpoint_bytes_ratio > 1.0) {
    throw std::invalid_argument(
        "MemoryPlanner: checkpoint_bytes_ratio must be in (0, 1]");
  }
  for (const double ratio : spec_.checkpoint_slot_ratios) {
    if (ratio <= 0.0 || ratio > 1.0) {
      throw std::invalid_argument(
          "MemoryPlanner: checkpoint_slot_ratios must be in (0, 1]");
    }
  }
  if (spec_.step_costs.empty()) {
    table_ = std::make_unique<revolve::RevolveTable>(
        spec_.depth, std::max(spec_.depth - 1, 0));
    return;
  }
  if (static_cast<int>(spec_.step_costs.size()) != spec_.depth) {
    throw std::invalid_argument(
        "MemoryPlanner: step_costs size must equal depth");
  }
  for (const double cost : spec_.step_costs) {
    if (!(cost > 0.0)) {
      throw std::invalid_argument(
          "MemoryPlanner: step_costs must be strictly positive");
    }
  }
  if (!(spec_.backward_ratio > 0.0)) {
    throw std::invalid_argument("MemoryPlanner: backward_ratio must be > 0");
  }
  hetero_ = std::make_unique<hetero::HeteroSolver>(
      spec_.step_costs, std::max(spec_.depth - 1, 0));
}

double MemoryPlanner::weighted_slot_units(int free_slots) const noexcept {
  const auto& measured = spec_.checkpoint_slot_ratios;
  if (measured.empty()) {
    return static_cast<double>(free_slots) * spec_.checkpoint_bytes_ratio;
  }
  double units = 0.0;
  for (int k = 0; k < free_slots; ++k) {
    units += k < static_cast<int>(measured.size())
                 ? measured[static_cast<std::size_t>(k)]
                 : spec_.checkpoint_bytes_ratio;
  }
  return units;
}

double MemoryPlanner::no_checkpoint_bytes() const noexcept {
  // All depth activations stored: the frontier in plaintext, the other
  // depth - 1 resting at the codec ratio (which is 1 when uncompressed).
  return spec_.fixed_bytes +
         (1.0 + weighted_slot_units(spec_.depth - 1)) *
             spec_.activation_bytes_per_step;
}

double MemoryPlanner::min_possible_bytes() const noexcept {
  return spec_.fixed_bytes + spec_.activation_bytes_per_step;
}

PlanPoint MemoryPlanner::point_for_slots(int free_slots) const {
  PlanPoint point;
  point.free_slots = free_slots;
  point.total_slots = free_slots + 1;
  if (hetero_ != nullptr) {
    point.forward_cost_us = hetero_->forward_cost(free_slots);
    point.forward_cost =
        static_cast<std::int64_t>(std::llround(point.forward_cost_us));
    point.achieved_rho =
        hetero_->recompute_factor(free_slots, spec_.backward_ratio);
  } else {
    point.forward_cost = table_->forward_cost(spec_.depth, free_slots);
    point.achieved_rho =
        static_cast<double>(point.forward_cost + spec_.depth) /
        (2.0 * static_cast<double>(spec_.depth));
  }
  point.peak_bytes = spec_.fixed_bytes +
                     (1.0 + weighted_slot_units(free_slots)) *
                         spec_.activation_bytes_per_step;
  return point;
}

PlanPoint MemoryPlanner::plan_for_rho(double rho_budget) const {
  const int s =
      hetero_ != nullptr
          ? hetero_->min_free_slots_for_rho(rho_budget, spec_.backward_ratio)
          : revolve::min_free_slots_for_rho(*table_, spec_.depth, rho_budget);
  PlanPoint point = point_for_slots(s);
  point.rho_budget = rho_budget;
  return point;
}

std::vector<PlanPoint> MemoryPlanner::sweep_rho(double rho_min, double rho_max,
                                                int points) const {
  if (points < 2) throw std::invalid_argument("sweep_rho: points < 2");
  std::vector<PlanPoint> curve;
  curve.reserve(static_cast<std::size_t>(points));
  for (int i = 0; i < points; ++i) {
    const double rho = rho_min + (rho_max - rho_min) * i / (points - 1);
    curve.push_back(plan_for_rho(rho));
  }
  return curve;
}

PlanReport MemoryPlanner::report_for_device(double capacity_bytes) const {
  PlanReport report;
  report.chain = spec_;
  report.capacity_bytes = capacity_bytes;
  report.no_checkpoint_bytes = no_checkpoint_bytes();
  report.min_possible_bytes = min_possible_bytes();
  report.fits_without_checkpointing =
      report.no_checkpoint_bytes <= capacity_bytes;
  report.fits_with_checkpointing = report.min_possible_bytes <= capacity_bytes;

  if (!report.fits_with_checkpointing) {
    report.min_rho_to_fit = std::numeric_limits<double>::infinity();
    return report;
  }
  // Largest slot count that fits determines the smallest achievable rho:
  // fixed + (1 + s * ratio) * act <= capacity solved for the free slots s.
  // At ratio = 1 this reduces to the paper's floor((cap - fixed) / act) - 1
  // exactly; at ratio < 1 the same budget buys proportionally more slots.
  int total_slots = 1;
  if (spec_.checkpoint_slot_ratios.empty()) {
    const double budget_free_slots =
        (capacity_bytes - spec_.fixed_bytes -
         spec_.activation_bytes_per_step) /
        (spec_.activation_bytes_per_step * spec_.checkpoint_bytes_ratio);
    total_slots = std::clamp(
        static_cast<int>(budget_free_slots) + 1, 1, spec_.depth);
  } else {
    // Per-slot ratios: the weighted prefix sum is monotone in s (every
    // ratio is positive), so walk up to the largest s that still fits.
    int s = 0;
    while (s + 1 <= spec_.depth - 1 &&
           spec_.fixed_bytes + (1.0 + weighted_slot_units(s + 1)) *
                                   spec_.activation_bytes_per_step <=
               capacity_bytes) {
      ++s;
    }
    total_slots = s + 1;
  }
  report.recommended = point_for_slots(total_slots - 1);
  report.recommended.rho_budget = report.recommended.achieved_rho;
  report.min_rho_to_fit = report.recommended.achieved_rho;
  return report;
}

int MemoryPlanner::max_depth_without_checkpointing(
    double capacity_bytes, double fixed_bytes,
    double activation_bytes_per_step) {
  if (activation_bytes_per_step <= 0.0) {
    throw std::invalid_argument("max_depth: activation size must be > 0");
  }
  const double room = capacity_bytes - fixed_bytes;
  if (room <= 0.0) return 0;
  return static_cast<int>(room / activation_bytes_per_step);
}

}  // namespace edgetrain::core
