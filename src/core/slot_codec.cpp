#include "core/slot_codec.hpp"

#include <cstring>
#include <stdexcept>

#include "persist/crc32.hpp"
#include "tensor/parallel.hpp"
#include "tensor/sparse.hpp"
#include "tensor/workspace.hpp"

namespace edgetrain::core {

namespace {

// --------------------------------------------------------------------------
// Lossless blob layout (shape travels out of band with the store):
//
//   byte 0          mode: 0 = raw payload, 1 = byte planes
//   mode 0          the 4n plaintext payload bytes
//   mode 1          u32 encoded_size[4] (LE), then the four RLE streams
//
// Per-plane RLE is PackBits-style: control c in [0, 127] copies the next
// c + 1 literal bytes; c in [129, 255] repeats the next byte 257 - c times
// (runs of 3..128); 128 is never emitted, so the decoder treats it (and
// any over/underrun) as corruption. Worst case a plane costs
// n + ceil(n / 128) bytes, and encode() falls back to raw mode whenever
// the plane form is not strictly smaller -- so a Lossless blob never
// exceeds plaintext + 1 byte.
// --------------------------------------------------------------------------

constexpr std::uint8_t kModeRaw = 0;
constexpr std::uint8_t kModePlanes = 1;
constexpr std::size_t kPlaneHeaderBytes = 1 + 4 * sizeof(std::uint32_t);
constexpr std::int64_t kMinRun = 3;
constexpr std::int64_t kMaxToken = 128;

[[nodiscard]] std::size_t rle_cap(std::int64_t n) {
  return static_cast<std::size_t>(n + (n + kMaxToken - 1) / kMaxToken + 2);
}

/// Encodes @p n bytes at @p src into @p dst (capacity >= rle_cap(n));
/// returns the encoded size.
std::size_t rle_encode(const std::uint8_t* src, std::int64_t n,
                       std::uint8_t* dst) {
  std::size_t out = 0;
  std::int64_t i = 0;
  while (i < n) {
    std::int64_t run = 1;
    while (i + run < n && src[i + run] == src[i] && run < kMaxToken) ++run;
    if (run >= kMinRun) {
      dst[out++] = static_cast<std::uint8_t>(257 - run);
      dst[out++] = src[i];
      i += run;
      continue;
    }
    const std::int64_t literal_start = i;
    std::int64_t literal = 0;
    while (i < n && literal < kMaxToken) {
      if (i + kMinRun - 1 < n && src[i] == src[i + 1] &&
          src[i] == src[i + 2]) {
        break;  // a run worth a token starts here
      }
      ++i;
      ++literal;
    }
    dst[out++] = static_cast<std::uint8_t>(literal - 1);
    std::memcpy(dst + out, src + literal_start,
                static_cast<std::size_t>(literal));
    out += static_cast<std::size_t>(literal);
  }
  return out;
}

[[noreturn]] void corrupt(const std::string& who, const char* what) {
  throw std::runtime_error(who + ": compressed slot blob is corrupt (" +
                           what + "); refusing to return a damaged "
                           "checkpoint");
}

/// Decodes exactly @p n bytes into @p dst; throws on any malformation.
void rle_decode(const std::string& who, const std::uint8_t* src,
                std::size_t size, std::uint8_t* dst, std::int64_t n) {
  std::size_t in = 0;
  std::int64_t out = 0;
  while (in < size) {
    const std::uint8_t control = src[in++];
    if (control < kMaxToken) {
      const std::int64_t len = static_cast<std::int64_t>(control) + 1;
      if (in + static_cast<std::size_t>(len) > size) {
        corrupt(who, "literal token overruns the stream");
      }
      if (out + len > n) corrupt(who, "literal token overruns the payload");
      std::memcpy(dst + out, src + in, static_cast<std::size_t>(len));
      in += static_cast<std::size_t>(len);
      out += len;
    } else if (control > kMaxToken) {
      const std::int64_t len = 257 - static_cast<std::int64_t>(control);
      if (in >= size) corrupt(who, "run token misses its byte");
      if (out + len > n) corrupt(who, "run token overruns the payload");
      std::memset(dst + out, src[in++], static_cast<std::size_t>(len));
      out += len;
    } else {
      corrupt(who, "reserved control byte 128");
    }
  }
  if (out != n) corrupt(who, "stream ends short of the payload");
}

/// Workspace span handed out as bytes (64-byte aligned).
[[nodiscard]] std::uint8_t* scratch_bytes(std::size_t bytes) {
  const auto floats =
      static_cast<std::int64_t>((bytes + sizeof(float) - 1) / sizeof(float));
  return reinterpret_cast<std::uint8_t*>(Workspace::tls().alloc(floats));
}

void store_u32(std::uint8_t* dst, std::uint32_t value) {
  std::memcpy(dst, &value, sizeof(value));
}

void store_u64(std::uint8_t* dst, std::uint64_t value) {
  std::memcpy(dst, &value, sizeof(value));
}

[[nodiscard]] std::uint32_t load_u32(const std::uint8_t* src) {
  std::uint32_t value = 0;
  std::memcpy(&value, src, sizeof(value));
  return value;
}

std::vector<std::uint8_t> encode_lossless(const Tensor& value,
                                          convert::Threading threading) {
  const std::int64_t n = value.numel();
  const auto payload = static_cast<std::size_t>(n) * sizeof(float);
  const auto* src = reinterpret_cast<const std::uint8_t*>(value.data());

  WorkspaceScope scope(Workspace::tls());
  std::uint8_t* planes = scratch_bytes(payload);
  convert::byte_plane_split(src, n, planes, threading);

  const std::size_t cap = rle_cap(n);
  std::uint8_t* streams = scratch_bytes(4 * cap);
  std::size_t sizes[4] = {0, 0, 0, 0};
  // The four plane encodes are independent; grain 1 fans them across the
  // pool (rle_encode cannot throw, so pool execution is safe).
  const auto encode_plane = [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t b = begin; b < end; ++b) {
      sizes[b] = rle_encode(planes + b * n, n,
                            streams + static_cast<std::size_t>(b) * cap);
    }
  };
  if (threading == convert::Threading::Parallel) {
    parallel_for(0, 4, 1, encode_plane);
  } else {
    encode_plane(0, 4);
  }

  const std::size_t plane_total =
      kPlaneHeaderBytes + sizes[0] + sizes[1] + sizes[2] + sizes[3];
  if (plane_total >= 1 + payload) {
    // Incompressible: store raw behind the mode byte.
    std::vector<std::uint8_t> blob(1 + payload);
    blob[0] = kModeRaw;
    std::memcpy(blob.data() + 1, src, payload);
    return blob;
  }
  std::vector<std::uint8_t> blob(plane_total);
  blob[0] = kModePlanes;
  std::size_t offset = kPlaneHeaderBytes;
  for (int b = 0; b < 4; ++b) {
    store_u32(blob.data() + 1 + static_cast<std::size_t>(b) * 4,
              static_cast<std::uint32_t>(sizes[b]));
    std::memcpy(blob.data() + offset, streams + static_cast<std::size_t>(b) * cap,
                sizes[b]);
    offset += sizes[b];
  }
  return blob;
}

Tensor decode_lossless(const std::string& who, const Shape& shape,
                       const std::uint8_t* data, std::size_t size,
                       convert::Threading threading) {
  const std::int64_t n = shape.numel();
  const auto payload = static_cast<std::size_t>(n) * sizeof(float);
  if (size < 1) corrupt(who, "empty blob");
  Tensor out = Tensor::empty(shape);
  auto* dst = reinterpret_cast<std::uint8_t*>(out.data());

  if (data[0] == kModeRaw) {
    if (size != 1 + payload) corrupt(who, "raw mode size mismatch");
    std::memcpy(dst, data + 1, payload);
    return out;
  }
  if (data[0] != kModePlanes) corrupt(who, "unknown mode byte");
  if (size < kPlaneHeaderBytes) corrupt(who, "plane header truncated");

  std::size_t sizes[4];
  std::size_t total = kPlaneHeaderBytes;
  for (int b = 0; b < 4; ++b) {
    sizes[b] = load_u32(data + 1 + static_cast<std::size_t>(b) * 4);
    total += sizes[b];
  }
  if (total != size) corrupt(who, "plane sizes disagree with the blob size");

  WorkspaceScope scope(Workspace::tls());
  std::uint8_t* planes = scratch_bytes(payload);
  // Decode serially: the streams need validation and pool jobs must not
  // throw. RLE decode runs at memcpy/memset speed anyway.
  std::size_t offset = kPlaneHeaderBytes;
  for (int b = 0; b < 4; ++b) {
    rle_decode(who, data + offset, sizes[b],
               planes + static_cast<std::int64_t>(b) * n, n);
    offset += sizes[b];
  }
  convert::byte_plane_merge(planes, n, dst, threading);
  return out;
}

// --------------------------------------------------------------------------
// Bitmap blob layout (shape travels out of band with the store):
//
//   byte 0            mode: 0 = dense fallback, 1 = sparse bitmap
//   mode 0 (Bitmap)   the 4n plaintext fp32 payload bytes
//   mode 0 (Fp16)     the 2n binary16 payload bytes
//   mode 1            u32 crc (LE), u32 nnz (LE), ceil(n / 64) u64 bitmap
//                     words (LE), then nnz packed values (fp32 or fp16)
//
// The sparse mode's crc is a CRC-32 (persist/crc32.hpp) seeded with the
// element count n (which travels out of band with the store) and taken
// over the mode byte and everything after the crc field, so every
// truncation and every single-bit flip of a sparse blob -- mode byte, crc
// itself, nnz, bitmap, packed values -- fails either a structural check or
// the checksum; there is no silent corruption. Folding n in also rejects
// decoding under the wrong shape even when the structural lengths happen
// to line up (e.g. n-1 elements sharing the same bitmap word count with a
// zero final element). Belt-and-braces structural checks (nnz vs the
// bitmap's popcount, zero tail bits, exact size) run before the payload is
// touched, so a hostile blob cannot drive an out-of-bounds gather. The
// dense fallback keeps the Lossless raw-mode contract instead (pure
// plaintext behind a mode byte, blob <= payload + 1): a value-byte flip
// there is indistinguishable from the same flip on an uncompressed slot.
// --------------------------------------------------------------------------

constexpr std::uint8_t kBitmapModeDense = 0;
constexpr std::uint8_t kBitmapModeSparse = 1;
/// mode byte + u32 crc + u32 nnz.
constexpr std::size_t kBitmapHeaderBytes = 1 + 2 * sizeof(std::uint32_t);
constexpr std::size_t kBitmapCrcOffset = 1;
constexpr std::size_t kBitmapNnzOffset = 1 + sizeof(std::uint32_t);

[[nodiscard]] std::uint32_t bitmap_blob_crc(const std::uint8_t* data,
                                            std::size_t size,
                                            std::int64_t numel) {
  std::uint32_t crc = persist::crc32_init();
  std::uint8_t n_le[sizeof(std::uint64_t)];
  store_u64(n_le, static_cast<std::uint64_t>(numel));
  crc = persist::crc32_update(crc, n_le, sizeof(n_le));
  crc = persist::crc32_update(crc, data, 1);  // mode byte
  crc = persist::crc32_update(crc, data + kBitmapNnzOffset,
                              size - kBitmapNnzOffset);
  return persist::crc32_final(crc);
}

std::vector<std::uint8_t> encode_bitmap(const Tensor& value, bool halve,
                                        convert::Threading threading) {
  const std::int64_t n = value.numel();
  const std::size_t value_size = halve ? sizeof(std::uint16_t) : sizeof(float);
  const std::size_t dense_total = 1 + static_cast<std::size_t>(n) * value_size;

  WorkspaceScope scope(Workspace::tls());
  const std::int64_t n_words = sparse::bitmap_words(n);
  auto* bitmap = reinterpret_cast<std::uint64_t*>(
      scratch_bytes(static_cast<std::size_t>(n_words) * sizeof(std::uint64_t)));
  const std::int64_t nnz = sparse::nonzero_bitmap(value.data(), n, bitmap,
                                                  threading);

  const std::size_t sparse_total =
      kBitmapHeaderBytes +
      static_cast<std::size_t>(n_words) * sizeof(std::uint64_t) +
      static_cast<std::size_t>(nnz) * value_size;
  if (sparse_total >= dense_total) {
    // Too dense for the bitmap to pay: store the dense form behind the
    // mode byte (raw fp32, or the straight fp16 cast).
    std::vector<std::uint8_t> blob(dense_total);
    blob[0] = kBitmapModeDense;
    if (halve) {
      auto* half = reinterpret_cast<std::uint16_t*>(
          scratch_bytes(static_cast<std::size_t>(n) * sizeof(std::uint16_t)));
      convert::fp32_to_fp16(value.data(), half, n, threading);
      std::memcpy(blob.data() + 1, half, blob.size() - 1);
    } else {
      std::memcpy(blob.data() + 1, value.data(), blob.size() - 1);
    }
    return blob;
  }

  // Compact through aligned scratch: the blob's value area sits at an odd
  // offset, so the kernels never store through it directly.
  auto* packed = reinterpret_cast<float*>(
      scratch_bytes(static_cast<std::size_t>(nnz) * sizeof(float)));
  sparse::compact_nonzeros(value.data(), bitmap, n, packed, threading);

  std::vector<std::uint8_t> blob(sparse_total);
  blob[0] = kBitmapModeSparse;
  store_u32(blob.data() + kBitmapNnzOffset, static_cast<std::uint32_t>(nnz));
  std::memcpy(blob.data() + kBitmapHeaderBytes, bitmap,
              static_cast<std::size_t>(n_words) * sizeof(std::uint64_t));
  std::uint8_t* values =
      blob.data() + kBitmapHeaderBytes +
      static_cast<std::size_t>(n_words) * sizeof(std::uint64_t);
  if (halve) {
    auto* half = reinterpret_cast<std::uint16_t*>(
        scratch_bytes(static_cast<std::size_t>(nnz) * sizeof(std::uint16_t)));
    convert::fp32_to_fp16(packed, half, nnz, threading);
    std::memcpy(values, half, static_cast<std::size_t>(nnz) * value_size);
  } else {
    std::memcpy(values, packed, static_cast<std::size_t>(nnz) * value_size);
  }
  store_u32(blob.data() + kBitmapCrcOffset,
            bitmap_blob_crc(blob.data(), blob.size(), n));
  return blob;
}

Tensor decode_bitmap(const std::string& who, const Shape& shape,
                     const std::uint8_t* data, std::size_t size, bool halve,
                     convert::Threading threading) {
  const std::int64_t n = shape.numel();
  const std::size_t value_size = halve ? sizeof(std::uint16_t) : sizeof(float);
  if (size < 1) corrupt(who, "empty blob");

  WorkspaceScope scope(Workspace::tls());
  if (data[0] == kBitmapModeDense) {
    if (size != 1 + static_cast<std::size_t>(n) * value_size) {
      corrupt(who, "dense mode size mismatch");
    }
    Tensor out = Tensor::empty(shape);
    if (halve) {
      auto* half = reinterpret_cast<std::uint16_t*>(
          scratch_bytes(static_cast<std::size_t>(n) * sizeof(std::uint16_t)));
      std::memcpy(half, data + 1, size - 1);
      convert::fp16_to_fp32(half, out.data(), n, threading);
    } else {
      std::memcpy(out.data(), data + 1, size - 1);
    }
    return out;
  }
  if (data[0] != kBitmapModeSparse) corrupt(who, "unknown mode byte");

  if (size < kBitmapHeaderBytes) corrupt(who, "bitmap header truncated");
  const std::uint32_t stored_crc = load_u32(data + kBitmapCrcOffset);
  const std::uint32_t nnz_u32 = load_u32(data + kBitmapNnzOffset);
  const auto nnz = static_cast<std::int64_t>(nnz_u32);
  if (nnz > n) corrupt(who, "nonzero count exceeds the payload");
  const std::int64_t n_words = sparse::bitmap_words(n);
  const std::size_t expected =
      kBitmapHeaderBytes +
      static_cast<std::size_t>(n_words) * sizeof(std::uint64_t) +
      static_cast<std::size_t>(nnz) * value_size;
  if (size != expected) corrupt(who, "bitmap blob size mismatch");
  if (bitmap_blob_crc(data, size, n) != stored_crc) {
    corrupt(who, "checksum mismatch");
  }

  auto* bitmap = reinterpret_cast<std::uint64_t*>(
      scratch_bytes(static_cast<std::size_t>(n_words) * sizeof(std::uint64_t)));
  std::memcpy(bitmap, data + kBitmapHeaderBytes,
              static_cast<std::size_t>(n_words) * sizeof(std::uint64_t));
  // Redundant with the checksum, but these keep the scatter provably
  // in-bounds without trusting 2^-32 odds: the bitmap's population must
  // match nnz, and bits past the payload must be clear.
  if (sparse::popcount_words(bitmap, n_words, threading) != nnz) {
    corrupt(who, "bitmap population disagrees with the nonzero count");
  }
  if (n % 64 != 0 && n_words > 0) {
    const std::uint64_t tail_mask =
        ~((std::uint64_t{1} << static_cast<unsigned>(n % 64)) - 1);
    if ((bitmap[n_words - 1] & tail_mask) != 0) {
      corrupt(who, "bitmap tail bits set past the payload");
    }
  }

  const std::uint8_t* values =
      data + kBitmapHeaderBytes +
      static_cast<std::size_t>(n_words) * sizeof(std::uint64_t);
  auto* packed = reinterpret_cast<float*>(
      scratch_bytes(static_cast<std::size_t>(nnz) * sizeof(float)));
  if (halve) {
    auto* half = reinterpret_cast<std::uint16_t*>(
        scratch_bytes(static_cast<std::size_t>(nnz) * sizeof(std::uint16_t)));
    std::memcpy(half, values, static_cast<std::size_t>(nnz) * value_size);
    convert::fp16_to_fp32(half, packed, nnz, threading);
  } else {
    std::memcpy(packed, values, static_cast<std::size_t>(nnz) * value_size);
  }
  Tensor out = Tensor::empty(shape);
  sparse::scatter_nonzeros(packed, bitmap, n, out.data(), threading);
  return out;
}

}  // namespace

std::string to_string(SlotCodec codec) {
  switch (codec) {
    case SlotCodec::None: return "none";
    case SlotCodec::Lossless: return "lossless";
    case SlotCodec::Fp16: return "fp16";
    case SlotCodec::Bf16: return "bf16";
    case SlotCodec::Bitmap: return "bitmap";
    case SlotCodec::BitmapFp16: return "bitmap-fp16";
  }
  return "?";
}

std::optional<SlotCodec> parse_slot_codec(std::string_view name) {
  if (name == "none") return SlotCodec::None;
  if (name == "lossless") return SlotCodec::Lossless;
  if (name == "fp16") return SlotCodec::Fp16;
  if (name == "bf16") return SlotCodec::Bf16;
  if (name == "bitmap") return SlotCodec::Bitmap;
  if (name == "bitmap-fp16") return SlotCodec::BitmapFp16;
  return std::nullopt;
}

double planning_bytes_ratio(SlotCodec codec) {
  switch (codec) {
    case SlotCodec::None:
    case SlotCodec::Lossless:
    case SlotCodec::Bitmap:
      return 1.0;
    case SlotCodec::Fp16:
    case SlotCodec::Bf16:
    case SlotCodec::BitmapFp16:
      return 0.5;
  }
  return 1.0;
}

namespace codec {

std::size_t max_encoded_bytes(SlotCodec codec, std::int64_t numel) {
  const auto n = static_cast<std::size_t>(numel);
  switch (codec) {
    case SlotCodec::None: return n * sizeof(float);
    case SlotCodec::Lossless: return 1 + n * sizeof(float);
    case SlotCodec::Fp16:
    case SlotCodec::Bf16:
      return n * sizeof(std::uint16_t);
    case SlotCodec::Bitmap: return 1 + n * sizeof(float);
    case SlotCodec::BitmapFp16: return 1 + n * sizeof(std::uint16_t);
  }
  return n * sizeof(float);
}

std::vector<std::uint8_t> encode(SlotCodec codec, const Tensor& value,
                                 convert::Threading threading) {
  const std::int64_t n = value.numel();
  switch (codec) {
    case SlotCodec::None: {
      std::vector<std::uint8_t> blob(static_cast<std::size_t>(n) *
                                     sizeof(float));
      std::memcpy(blob.data(), value.data(), blob.size());
      return blob;
    }
    case SlotCodec::Lossless:
      return encode_lossless(value, threading);
    case SlotCodec::Fp16:
    case SlotCodec::Bf16: {
      std::vector<std::uint8_t> blob(static_cast<std::size_t>(n) *
                                     sizeof(std::uint16_t));
      auto* dst = reinterpret_cast<std::uint16_t*>(blob.data());
      if (codec == SlotCodec::Fp16) {
        convert::fp32_to_fp16(value.data(), dst, n, threading);
      } else {
        convert::fp32_to_bf16(value.data(), dst, n, threading);
      }
      return blob;
    }
    case SlotCodec::Bitmap:
      return encode_bitmap(value, /*halve=*/false, threading);
    case SlotCodec::BitmapFp16:
      return encode_bitmap(value, /*halve=*/true, threading);
  }
  throw std::logic_error("SlotCodec: unknown codec");
}

Tensor decode(SlotCodec codec, const std::string& who, const Shape& shape,
              const std::uint8_t* data, std::size_t size,
              convert::Threading threading) {
  const std::int64_t n = shape.numel();
  switch (codec) {
    case SlotCodec::None: {
      if (size != static_cast<std::size_t>(n) * sizeof(float)) {
        corrupt(who, "raw blob size mismatch");
      }
      Tensor out = Tensor::empty(shape);
      std::memcpy(out.data(), data, size);
      return out;
    }
    case SlotCodec::Lossless:
      return decode_lossless(who, shape, data, size, threading);
    case SlotCodec::Fp16:
    case SlotCodec::Bf16: {
      if (size != static_cast<std::size_t>(n) * sizeof(std::uint16_t)) {
        corrupt(who, "half blob size mismatch");
      }
      Tensor out = Tensor::empty(shape);
      const auto* src = reinterpret_cast<const std::uint16_t*>(data);
      if (codec == SlotCodec::Fp16) {
        convert::fp16_to_fp32(src, out.data(), n, threading);
      } else {
        convert::bf16_to_fp32(src, out.data(), n, threading);
      }
      return out;
    }
    case SlotCodec::Bitmap:
      return decode_bitmap(who, shape, data, size, /*halve=*/false,
                           threading);
    case SlotCodec::BitmapFp16:
      return decode_bitmap(who, shape, data, size, /*halve=*/true, threading);
  }
  throw std::logic_error("SlotCodec: unknown codec");
}

}  // namespace codec

}  // namespace edgetrain::core
