// edgetrain: one-call training-strategy recommendation.
//
// "Can I train this model on this device, and how?" -- the question the
// paper answers for the Waggle node, generalised. The recommender composes
// the machinery of this library:
//   * the memory planner (Section VI): smallest rho whose Revolve footprint
//     fits the device;
//   * the slot backends: when full-precision checkpoints do not fit, fp16
//     halves them; when a storage path exists, disk spill removes almost
//     all checkpoint RAM at an IO cost;
//   * the batch trade-off: the throughput-optimal batch size within the
//     surviving budget.
// The result is a typed decision plus a human-readable rationale.
#pragma once

#include <cstdint>
#include <string>

#include "core/planner.hpp"

namespace edgetrain::core {

struct StrategyRequest {
  ChainSpec chain;              ///< homogenised model at batch 1 (M_A for k=1)
  double device_memory_bytes = 0.0;
  /// Acceptable recompute factor (work budget); the paper's Figure 1 reads
  /// 1.5-2.0 as "dramatically changes the situation".
  double rho_budget = 2.0;
  bool has_local_storage = false;   ///< SD card available for spilling
  std::int64_t max_batch = 32;
  /// Vectorisation efficiency parameters (see BatchTradeoffConfig).
  double efficiency_exponent = 1.0;
  double efficiency_half_batch = 4.0;
};

enum class Feasibility : std::uint8_t {
  FitsWithoutCheckpointing,  ///< full storage fits: rho = 1
  FitsWithCheckpointing,     ///< Revolve within the rho budget
  FitsWithCompressedSlots,   ///< needs fp16 checkpoint compression
  FitsWithDiskSpill,         ///< needs the SD card
  Infeasible,                ///< fixed state (weights+optimizer) too large
};

struct StrategyRecommendation {
  Feasibility feasibility = Feasibility::Infeasible;
  int free_slots = 0;            ///< Revolve checkpoint budget (batch 1)
  double rho = 1.0;              ///< achieved recompute factor
  double peak_bytes = 0.0;       ///< modelled footprint at batch 1
  std::int64_t recommended_batch = 1;
  double batch_rho = 1.0;        ///< rho at the recommended batch
  std::string rationale;         ///< human-readable summary
};

/// Produces the cheapest workable configuration for the request.
[[nodiscard]] StrategyRecommendation recommend_strategy(
    const StrategyRequest& request);

[[nodiscard]] std::string to_string(Feasibility feasibility);

}  // namespace edgetrain::core
