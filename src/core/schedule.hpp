// edgetrain: checkpointing schedule intermediate representation.
//
// Every scheduler in this library (binomial Revolve, PyTorch-style uniform
// segmentation, heterogeneous DP, two-level disk Revolve) emits the same
// Schedule IR: a linear program of typed actions over an l-step chain and a
// bounded set of checkpoint slots. The executor replays the IR against a
// real neural network; the validator replays it symbolically and checks
// well-formedness, so scheduler bugs are caught without running tensor code.
//
// Chain model (the paper's LinearResNet formulation):
//   state_0 --step 0--> state_1 --step 1--> ... --step l-1--> state_l
// Reversing step i requires the step's internal intermediates, which are
// produced by running the step forward in "saving" mode (ForwardSave).
// Storing a boundary state into a checkpoint slot costs one activation unit
// of memory; so does keeping one step's saved intermediates live. Full
// storage = ForwardSave every step during the sweep (l live units, no
// recomputation); Revolve = store a few boundary states and re-advance.
//
// Cost accounting. The paper counts work in forward/backward units where a
// Backward unit *includes* re-materialising the step's internals from its
// input, so a ForwardSave immediately consumed by its Backward is free under
// the paper's convention. The paper's recompute factor rho is therefore an
// analytic quantity of the scheduler's DP cost model (see core/revolve.hpp);
// ScheduleStats reports the strict executed-operation counts.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace edgetrain::core {

/// One primitive operation of a checkpointing schedule.
enum class ActionType : std::uint8_t {
  /// Run step `index` forward without saving intermediates ("advance").
  Forward,
  /// Run step `index` forward, keeping its intermediates live for a later
  /// Backward of the same step. Multiple steps may have live intermediates
  /// simultaneously (that is what full storage does).
  ForwardSave,
  /// Run the adjoint of step `index`; consumes the live intermediates of
  /// that step and moves the adjoint frontier from index+1 to index.
  Backward,
  /// Copy the current state (which must be state_index) into `slot`.
  Store,
  /// Load `slot` into the current state; the slot must hold state_index.
  Restore,
  /// Free `slot` (bookkeeping; lets the executor release memory eagerly).
  Free,
};

[[nodiscard]] std::string to_string(ActionType type);

struct Action {
  ActionType type{ActionType::Forward};
  /// Step index for Forward/ForwardSave/Backward; state index for
  /// Store/Restore (the state the slot holds); unused for Free.
  std::int32_t index{0};
  /// Slot number for Store/Restore/Free; -1 otherwise.
  std::int32_t slot{-1};

  [[nodiscard]] bool operator==(const Action&) const = default;
};

/// Replay statistics of a schedule.
struct ScheduleStats {
  std::int64_t advances = 0;       // Forward actions
  std::int64_t forward_saves = 0;  // ForwardSave actions
  std::int64_t backwards = 0;      // Backward actions
  std::int64_t stores = 0;
  std::int64_t restores = 0;
  /// Max simultaneously occupied checkpoint slots.
  int peak_slots_in_use = 0;
  /// Peak simultaneous activation units (occupied slots + steps with live
  /// intermediates), minus one for the chain input (state_0), which resides
  /// in the data buffer and is not an activation the paper counts.
  /// Full storage over l steps replays to l; Revolve with s free slots to
  /// s + 1 (matching the planner's analytic model).
  int peak_memory_units = 0;

  /// Recompute factor counting every executed forward at full cost
  /// (what our executor actually pays): (advances + saves + backwards)/(2l).
  /// Note: the *paper's* recompute factor rho — in which a Backward unit
  /// absorbs the cost of re-materialising its own step — is an analytic
  /// quantity; it is computed by revolve::recompute_factor() from the DP
  /// cost model, not from IR replay.
  [[nodiscard]] double recompute_factor_strict(std::int64_t num_steps) const {
    return (static_cast<double>(advances) + static_cast<double>(forward_saves) +
            static_cast<double>(backwards)) /
           (2.0 * static_cast<double>(num_steps));
  }
};

/// A validated-on-demand checkpointing schedule for an l-step chain.
class Schedule {
 public:
  Schedule() = default;
  Schedule(std::int32_t num_steps, std::int32_t num_slots)
      : num_steps_(num_steps), num_slots_(num_slots) {}

  [[nodiscard]] std::int32_t num_steps() const noexcept { return num_steps_; }
  [[nodiscard]] std::int32_t num_slots() const noexcept { return num_slots_; }
  [[nodiscard]] const std::vector<Action>& actions() const noexcept {
    return actions_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return actions_.size(); }

  void push(Action action) { actions_.push_back(action); }
  void forward(std::int32_t step) { push({ActionType::Forward, step, -1}); }
  void forward_save(std::int32_t step) {
    push({ActionType::ForwardSave, step, -1});
  }
  void backward(std::int32_t step) { push({ActionType::Backward, step, -1}); }
  void store(std::int32_t state, std::int32_t slot) {
    push({ActionType::Store, state, slot});
  }
  void restore(std::int32_t state, std::int32_t slot) {
    push({ActionType::Restore, state, slot});
  }
  void free(std::int32_t slot) { push({ActionType::Free, 0, slot}); }

  /// Counts actions, peak slot occupancy and peak activation units.
  [[nodiscard]] ScheduleStats stats() const;

  /// Symbolically replays the schedule. Returns std::nullopt when the
  /// schedule is a well-formed full reversal (every step backward exactly
  /// once, in order l-1..0, intermediates live when consumed, forwards only
  /// from the matching current state, slot bounds respected); otherwise a
  /// human-readable diagnostic.
  [[nodiscard]] std::optional<std::string> validate() const;

  /// Multi-line human-readable dump (for debugging and docs).
  [[nodiscard]] std::string to_string() const;

 private:
  std::int32_t num_steps_ = 0;
  std::int32_t num_slots_ = 0;
  std::vector<Action> actions_;
};

std::ostream& operator<<(std::ostream& os, const Schedule& schedule);

}  // namespace edgetrain::core
