#include "core/schedule.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <unordered_set>

namespace edgetrain::core {

std::string to_string(ActionType type) {
  switch (type) {
    case ActionType::Forward: return "Forward";
    case ActionType::ForwardSave: return "ForwardSave";
    case ActionType::Backward: return "Backward";
    case ActionType::Store: return "Store";
    case ActionType::Restore: return "Restore";
    case ActionType::Free: return "Free";
  }
  return "?";
}

ScheduleStats Schedule::stats() const {
  ScheduleStats stats;
  int slots_in_use = 0;
  int live_saves = 0;
  std::vector<bool> occupied(static_cast<std::size_t>(std::max(num_slots_, 0)),
                             false);
  std::vector<bool> saved(static_cast<std::size_t>(std::max(num_steps_, 0)),
                          false);
  auto update_peaks = [&] {
    stats.peak_slots_in_use = std::max(stats.peak_slots_in_use, slots_in_use);
    // Discount one unit for the stored chain input (state_0): it lives in
    // the data buffer and is not an activation the paper's tables count.
    stats.peak_memory_units =
        std::max(stats.peak_memory_units, slots_in_use + live_saves - 1);
  };
  for (const Action& action : actions_) {
    switch (action.type) {
      case ActionType::Forward:
        ++stats.advances;
        break;
      case ActionType::ForwardSave:
        ++stats.forward_saves;
        if (action.index >= 0 && action.index < num_steps_ &&
            !saved[static_cast<std::size_t>(action.index)]) {
          saved[static_cast<std::size_t>(action.index)] = true;
          ++live_saves;
        }
        break;
      case ActionType::Backward:
        ++stats.backwards;
        if (action.index >= 0 && action.index < num_steps_ &&
            saved[static_cast<std::size_t>(action.index)]) {
          saved[static_cast<std::size_t>(action.index)] = false;
          --live_saves;
        }
        break;
      case ActionType::Store:
        ++stats.stores;
        if (action.slot >= 0 &&
            action.slot < static_cast<std::int32_t>(occupied.size()) &&
            !occupied[static_cast<std::size_t>(action.slot)]) {
          occupied[static_cast<std::size_t>(action.slot)] = true;
          ++slots_in_use;
        }
        break;
      case ActionType::Restore:
        ++stats.restores;
        break;
      case ActionType::Free:
        if (action.slot >= 0 &&
            action.slot < static_cast<std::int32_t>(occupied.size()) &&
            occupied[static_cast<std::size_t>(action.slot)]) {
          occupied[static_cast<std::size_t>(action.slot)] = false;
          --slots_in_use;
        }
        break;
    }
    update_peaks();
  }
  return stats;
}

std::optional<std::string> Schedule::validate() const {
  constexpr std::int32_t kNoState = -1;
  std::int32_t current_state = 0;  // we begin holding state_0 (the input)
  std::int32_t adjoint_frontier = num_steps_;  // next Backward must be this-1
  std::vector<bool> saved(static_cast<std::size_t>(num_steps_), false);
  std::vector<std::int32_t> slots(static_cast<std::size_t>(num_slots_),
                                  kNoState);
  std::vector<bool> reversed(static_cast<std::size_t>(num_steps_), false);

  auto fail = [&](std::size_t pos, const std::string& why) {
    std::ostringstream os;
    os << "action " << pos << ": " << why;
    return os.str();
  };

  for (std::size_t pos = 0; pos < actions_.size(); ++pos) {
    const Action& a = actions_[pos];
    switch (a.type) {
      case ActionType::Forward:
      case ActionType::ForwardSave: {
        if (a.index < 0 || a.index >= num_steps_) {
          return fail(pos, "forward step out of range");
        }
        if (current_state != a.index) {
          return fail(pos, "forward of step " + std::to_string(a.index) +
                               " but current state is " +
                               std::to_string(current_state));
        }
        if (a.type == ActionType::ForwardSave) {
          if (saved[static_cast<std::size_t>(a.index)]) {
            return fail(pos, "ForwardSave of step " + std::to_string(a.index) +
                                 " whose intermediates are already live");
          }
          saved[static_cast<std::size_t>(a.index)] = true;
        }
        current_state = a.index + 1;
        break;
      }
      case ActionType::Backward: {
        if (a.index != adjoint_frontier - 1) {
          return fail(pos, "backward of step " + std::to_string(a.index) +
                               " out of order (expected " +
                               std::to_string(adjoint_frontier - 1) + ")");
        }
        if (!saved[static_cast<std::size_t>(a.index)]) {
          return fail(pos, "backward of step " + std::to_string(a.index) +
                               " without live intermediates");
        }
        saved[static_cast<std::size_t>(a.index)] = false;
        reversed[static_cast<std::size_t>(a.index)] = true;
        adjoint_frontier = a.index;
        break;
      }
      case ActionType::Store: {
        if (a.slot < 0 || a.slot >= num_slots_) {
          return fail(pos, "store to slot out of range");
        }
        if (current_state != a.index) {
          return fail(pos, "store of state " + std::to_string(a.index) +
                               " but current state is " +
                               std::to_string(current_state));
        }
        slots[static_cast<std::size_t>(a.slot)] = a.index;
        break;
      }
      case ActionType::Restore: {
        if (a.slot < 0 || a.slot >= num_slots_) {
          return fail(pos, "restore from slot out of range");
        }
        const std::int32_t held = slots[static_cast<std::size_t>(a.slot)];
        if (held == kNoState) {
          return fail(pos,
                      "restore from empty slot " + std::to_string(a.slot));
        }
        if (held != a.index) {
          return fail(pos, "restore expected state " + std::to_string(a.index) +
                               " but slot holds " + std::to_string(held));
        }
        current_state = held;
        break;
      }
      case ActionType::Free: {
        if (a.slot < 0 || a.slot >= num_slots_) {
          return fail(pos, "free of slot out of range");
        }
        slots[static_cast<std::size_t>(a.slot)] = kNoState;
        break;
      }
    }
  }

  if (adjoint_frontier != 0) {
    return "incomplete reversal: adjoint frontier stopped at " +
           std::to_string(adjoint_frontier);
  }
  for (std::int32_t i = 0; i < num_steps_; ++i) {
    if (!reversed[static_cast<std::size_t>(i)]) {
      return "step " + std::to_string(i) + " never reversed";
    }
  }
  return std::nullopt;
}

std::string Schedule::to_string() const {
  std::ostringstream os;
  os << "Schedule(l=" << num_steps_ << ", slots=" << num_slots_ << ")\n";
  for (const Action& a : actions_) {
    os << "  " << edgetrain::core::to_string(a.type);
    if (a.type == ActionType::Store || a.type == ActionType::Restore) {
      os << " state=" << a.index << " slot=" << a.slot;
    } else if (a.type == ActionType::Free) {
      os << " slot=" << a.slot;
    } else {
      os << " step=" << a.index;
    }
    os << '\n';
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Schedule& schedule) {
  return os << schedule.to_string();
}

}  // namespace edgetrain::core
