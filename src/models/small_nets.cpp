#include "models/small_nets.hpp"

#include "nn/layers.hpp"

namespace edgetrain::models {

nn::LayerChain build_mini_resnet(int blocks_per_stage,
                                 std::int64_t base_channels, int num_classes,
                                 std::int64_t in_channels, std::mt19937& rng) {
  nn::LayerChain chain;
  chain.push(std::make_unique<nn::Conv2d>(in_channels, base_channels, 3, 1, 1,
                                          false, rng));
  chain.push(std::make_unique<nn::BatchNorm2d>(base_channels));
  chain.push(std::make_unique<nn::ReLU>());
  std::int64_t current = base_channels;
  for (int stage = 0; stage < 2; ++stage) {
    const std::int64_t width = base_channels << stage;
    for (int b = 0; b < blocks_per_stage; ++b) {
      const std::int64_t stride = (stage > 0 && b == 0) ? 2 : 1;
      chain.push(std::make_unique<nn::BasicBlock>(current, width, stride, rng));
      current = width;
    }
  }
  chain.push(std::make_unique<nn::GlobalAvgPool>());
  chain.push(std::make_unique<nn::Linear>(current, num_classes, true, rng));
  return chain;
}

nn::LayerChain build_conv_chain(int depth, std::int64_t channels,
                                std::mt19937& rng) {
  nn::LayerChain chain;
  for (int i = 0; i < depth; ++i) {
    chain.push(
        std::make_unique<nn::Conv2d>(channels, channels, 3, 1, 1, false, rng));
  }
  return chain;
}

nn::LayerChain build_pyramid_chain(int stages, int steps_per_stage,
                                   std::int64_t channels, std::mt19937& rng) {
  nn::LayerChain chain;
  for (int stage = 0; stage < stages; ++stage) {
    for (int step = 0; step < steps_per_stage; ++step) {
      const std::int64_t stride = (stage > 0 && step == 0) ? 2 : 1;
      chain.push(std::make_unique<nn::Conv2d>(channels, channels, 3, stride, 1,
                                              false, rng));
    }
  }
  return chain;
}

nn::LayerChain build_patch_cnn(std::int64_t patch, std::int64_t in_channels,
                               std::int64_t base_channels, int num_classes,
                               std::mt19937& rng) {
  nn::LayerChain chain;
  chain.push(std::make_unique<nn::Conv2d>(in_channels, base_channels, 3, 1, 1,
                                          false, rng));
  chain.push(std::make_unique<nn::BatchNorm2d>(base_channels));
  chain.push(std::make_unique<nn::ReLU>());
  chain.push(std::make_unique<nn::MaxPool2d>(2, 2, 0));
  chain.push(std::make_unique<nn::Conv2d>(base_channels, base_channels * 2, 3,
                                          1, 1, false, rng));
  chain.push(std::make_unique<nn::BatchNorm2d>(base_channels * 2));
  chain.push(std::make_unique<nn::ReLU>());
  chain.push(std::make_unique<nn::MaxPool2d>(2, 2, 0));
  chain.push(std::make_unique<nn::GlobalAvgPool>());
  chain.push(std::make_unique<nn::Linear>(base_channels * 2, num_classes, true,
                                          rng));
  (void)patch;
  return chain;
}

nn::LayerChain build_mlp(std::int64_t in_features, std::int64_t hidden,
                         int hidden_layers, int num_classes,
                         std::mt19937& rng) {
  nn::LayerChain chain;
  chain.push(std::make_unique<nn::Flatten>());
  std::int64_t current = in_features;
  for (int i = 0; i < hidden_layers; ++i) {
    chain.push(std::make_unique<nn::Linear>(current, hidden, true, rng));
    chain.push(std::make_unique<nn::ReLU>());
    current = hidden;
  }
  chain.push(std::make_unique<nn::Linear>(current, num_classes, true, rng));
  return chain;
}

}  // namespace edgetrain::models
