// edgetrain: the ResNet family, as analytic specs and as executable chains.
//
// ResNetSpec enumerates every operator of a torchvision-style ResNet
// (conv/bn/relu/pool/add/linear) with exact shape arithmetic, giving
//   * exact trainable-parameter counts (unit-tested against the canonical
//     values: ResNet-18 = 11,689,512 ... ResNet-152 = 60,192,808), and
//   * exact activation-element counts at any image size and batch size,
// the two ingredients of the paper's Tables I-III.
//
// build_resnet_chain() constructs the same architecture as an executable
// nn::LayerChain whose steps are {stem ops, residual blocks, head ops} --
// the block-level heterogeneous chain used by core::hetero.
#pragma once

#include <array>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "nn/chain.hpp"

namespace edgetrain::models {

enum class ResNetVariant { ResNet18, ResNet34, ResNet50, ResNet101, ResNet152 };

/// All five variants, in paper order.
[[nodiscard]] const std::array<ResNetVariant, 5>& all_resnet_variants();

/// The x in ResNet_x (18, 34, 50, 101, 152).
[[nodiscard]] int depth_of(ResNetVariant variant);
[[nodiscard]] std::string name_of(ResNetVariant variant);
/// Blocks per stage, e.g. {2,2,2,2} for ResNet-18.
[[nodiscard]] std::array<int, 4> stage_blocks(ResNetVariant variant);
/// True for the 1x1-3x3-1x1 bottleneck variants (50/101/152).
[[nodiscard]] bool uses_bottleneck(ResNetVariant variant);

enum class OpKind : std::uint8_t {
  Conv,
  BatchNorm,
  ReLU,
  MaxPool,
  GlobalAvgPool,
  Add,
  Linear,
};

/// One operator of the linearised network.
struct OpSpec {
  OpKind kind{OpKind::Conv};
  std::int64_t in_channels = 0;
  std::int64_t out_channels = 0;
  std::int64_t kernel = 0;
  std::int64_t stride = 1;
  std::int64_t pad = 0;
  /// Chain step (block index) this op belongs to: 0 = stem, then one per
  /// residual block, last = head.
  std::int32_t chain_step = 0;
  /// True for ops on the projection shortcut (their input is the block
  /// input, not the previous op's output).
  bool on_shortcut = false;
};

/// Analytic description of one ResNet.
class ResNetSpec {
 public:
  static ResNetSpec make(ResNetVariant variant, int num_classes = 1000,
                         std::int64_t in_channels = 3);

  [[nodiscard]] ResNetVariant variant() const noexcept { return variant_; }
  [[nodiscard]] std::string name() const { return name_of(variant_); }
  [[nodiscard]] int depth() const { return depth_of(variant_); }
  [[nodiscard]] const std::vector<OpSpec>& ops() const noexcept { return ops_; }
  [[nodiscard]] int num_chain_steps() const noexcept { return num_chain_steps_; }

  /// Exact trainable parameter count (conv + bn affine + fc).
  [[nodiscard]] std::int64_t param_count() const;

  /// Exact total activation elements (one per op output element) for a
  /// square image of @p image_size pixels and batch @p batch.
  [[nodiscard]] std::int64_t activation_elems(int image_size,
                                              std::int64_t batch) const;

  /// Activation elements produced within each chain step (stem, blocks,
  /// head) -- the per-step M_A of the block-level heterogeneous chain.
  [[nodiscard]] std::vector<std::int64_t> chain_step_activation_elems(
      int image_size, std::int64_t batch) const;

  /// Forward cost (multiply-accumulates, plus element ops) per chain step.
  [[nodiscard]] std::vector<double> chain_step_forward_costs(
      int image_size, std::int64_t batch) const;

  /// Output elements of each chain step (the last main-branch op's output)
  /// -- the boundary states a checkpoint slot holds between steps, and the
  /// sizes calib::predict_resnet prices spills with.
  [[nodiscard]] std::vector<std::int64_t> chain_step_output_elems(
      int image_size, std::int64_t batch) const;

 private:
  ResNetVariant variant_{ResNetVariant::ResNet18};
  int num_classes_ = 1000;
  std::int64_t in_channels_ = 3;
  int num_chain_steps_ = 0;
  std::vector<OpSpec> ops_;
};

/// Executable ResNet with the canonical topology. Chain steps: conv-stem
/// layers individually (conv, bn, relu, maxpool), one step per residual
/// block, then global average pool and the classifier.
/// @p width_multiple scales all channel counts (use < 1 only via
/// small_nets.hpp helpers; the canonical network uses 1).
[[nodiscard]] nn::LayerChain build_resnet_chain(ResNetVariant variant,
                                                int num_classes,
                                                std::int64_t in_channels,
                                                std::mt19937& rng);

}  // namespace edgetrain::models
