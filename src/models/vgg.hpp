// edgetrain: the VGG family, analytic specs.
//
// A second architecture family for the memory analysis: VGG nets carry
// ~2-11x the parameters of ResNets (the fully-connected head), so their
// *fixed* training state (weights + grads + optimizer moments) consumes
// >= 99% of a 2 GB edge node before a single activation is stored --
// checkpointing cannot help with fixed state. This is why the paper's
// in-situ training story is told with ResNets.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace edgetrain::models {

enum class VggVariant { Vgg11, Vgg13, Vgg16, Vgg19 };

[[nodiscard]] const std::array<VggVariant, 4>& all_vgg_variants();
[[nodiscard]] int depth_of(VggVariant variant);   // 11 / 13 / 16 / 19
[[nodiscard]] std::string name_of(VggVariant variant);

/// Analytic description (torchvision topology, batch-norm-free "plain"
/// configuration, 1000-class classifier with 4096-wide FC layers).
class VggSpec {
 public:
  static VggSpec make(VggVariant variant, int num_classes = 1000,
                      std::int64_t in_channels = 3);

  [[nodiscard]] VggVariant variant() const noexcept { return variant_; }
  [[nodiscard]] std::string name() const { return name_of(variant_); }
  [[nodiscard]] int depth() const { return depth_of(variant_); }

  /// Exact trainable parameter count (matches torchvision).
  [[nodiscard]] std::int64_t param_count() const;

  /// Total op-output elements for a square image (conv/relu/pool/fc
  /// outputs, same counting convention as ResNetSpec).
  [[nodiscard]] std::int64_t activation_elems(int image_size,
                                              std::int64_t batch) const;

 private:
  struct ConvLayer {
    std::int64_t in = 0;
    std::int64_t out = 0;
  };
  VggVariant variant_{VggVariant::Vgg11};
  int num_classes_ = 1000;
  std::int64_t in_channels_ = 3;
  std::vector<std::vector<ConvLayer>> stages_;  // 5 stages, pool after each
  std::array<std::int64_t, 3> fc_{4096, 4096, 1000};
};

}  // namespace edgetrain::models
