// edgetrain: the training-memory model behind the paper's Tables I-III.
//
// Reverse-engineering the tables shows their structure exactly:
//   total(k, img) = fixed + k * act(img),    act(img) = act(224) * (img/224)^2
// with fixed ~= 3.93-3.98 x weight bytes across all five ResNets. We model
//   fixed      = 4 * weight_bytes   (weights + gradients + 2 Adam moments)
//   activation = policy-dependent multiple of the exact op-output elements:
//     OutputsOnly          1x  (each op output stored once)
//     OutputsPlusGradients 2x  (plus one gradient buffer per activation)
// SpatialMode::Exact re-runs the conv arithmetic at the requested image
// size; SpatialMode::AreaScaled replicates the paper's (img/224)^2 scaling.
// Absolute deviations from the paper's tables are recorded per cell in
// EXPERIMENTS.md; the structure (linearity in batch, area scaling, model
// ordering, 2 GB feasibility boundary) is reproduced exactly.
#pragma once

#include <cstdint>

#include "models/resnet.hpp"

namespace edgetrain::models {

enum class ActivationPolicy : std::uint8_t {
  OutputsOnly,
  OutputsPlusGradients,
};

enum class SpatialMode : std::uint8_t {
  Exact,       ///< conv arithmetic at the requested image size
  AreaScaled,  ///< act(224) * (image/224)^2, the paper's methodology
};

struct MemoryBreakdown {
  double weight_bytes = 0.0;
  double fixed_bytes = 0.0;       ///< weights + grads + optimizer state
  double activation_bytes = 0.0;  ///< batch-scaled
  [[nodiscard]] double total_bytes() const {
    return fixed_bytes + activation_bytes;
  }
  [[nodiscard]] double total_mib() const {
    return total_bytes() / (1024.0 * 1024.0);
  }
};

/// Memory estimator for one ResNet spec.
class ResNetMemoryModel {
 public:
  explicit ResNetMemoryModel(
      ResNetSpec spec,
      ActivationPolicy policy = ActivationPolicy::OutputsPlusGradients,
      SpatialMode mode = SpatialMode::Exact);

  [[nodiscard]] const ResNetSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] ActivationPolicy policy() const noexcept { return policy_; }
  [[nodiscard]] SpatialMode mode() const noexcept { return mode_; }

  /// Persistent bytes: 4 * weights * sizeof(float).
  [[nodiscard]] double fixed_bytes() const;
  [[nodiscard]] double weight_bytes() const;

  /// Activation bytes for one batch (policy/mode applied).
  [[nodiscard]] double activation_bytes(int image_size,
                                        std::int64_t batch) const;

  [[nodiscard]] MemoryBreakdown estimate(int image_size,
                                         std::int64_t batch) const;

 private:
  ResNetSpec spec_;
  ActivationPolicy policy_;
  SpatialMode mode_;
  double act224_per_sample_bytes_;  // cached for AreaScaled
};

/// The paper's 2 GB Waggle budget, for feasibility shading in the tables.
inline constexpr double kWaggleMemoryBytes = 2.0 * 1024.0 * 1024.0 * 1024.0;

}  // namespace edgetrain::models
