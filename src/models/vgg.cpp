#include "models/vgg.hpp"

#include <stdexcept>

namespace edgetrain::models {

const std::array<VggVariant, 4>& all_vgg_variants() {
  static const std::array<VggVariant, 4> variants = {
      VggVariant::Vgg11, VggVariant::Vgg13, VggVariant::Vgg16,
      VggVariant::Vgg19};
  return variants;
}

int depth_of(VggVariant variant) {
  switch (variant) {
    case VggVariant::Vgg11: return 11;
    case VggVariant::Vgg13: return 13;
    case VggVariant::Vgg16: return 16;
    case VggVariant::Vgg19: return 19;
  }
  throw std::invalid_argument("unknown VGG variant");
}

std::string name_of(VggVariant variant) {
  return "VGG" + std::to_string(depth_of(variant));
}

namespace {
/// Convs per stage for each variant (stages end with a 2x2 maxpool).
std::array<int, 5> stage_convs(VggVariant variant) {
  switch (variant) {
    case VggVariant::Vgg11: return {1, 1, 2, 2, 2};
    case VggVariant::Vgg13: return {2, 2, 2, 2, 2};
    case VggVariant::Vgg16: return {2, 2, 3, 3, 3};
    case VggVariant::Vgg19: return {2, 2, 4, 4, 4};
  }
  throw std::invalid_argument("unknown VGG variant");
}
constexpr std::int64_t kStageWidths[5] = {64, 128, 256, 512, 512};
}  // namespace

VggSpec VggSpec::make(VggVariant variant, int num_classes,
                      std::int64_t in_channels) {
  VggSpec spec;
  spec.variant_ = variant;
  spec.num_classes_ = num_classes;
  spec.in_channels_ = in_channels;
  spec.fc_ = {4096, 4096, num_classes};

  const std::array<int, 5> convs = stage_convs(variant);
  std::int64_t current = in_channels;
  for (int stage = 0; stage < 5; ++stage) {
    std::vector<ConvLayer> layers;
    for (int c = 0; c < convs[static_cast<std::size_t>(stage)]; ++c) {
      layers.push_back({current, kStageWidths[stage]});
      current = kStageWidths[stage];
    }
    spec.stages_.push_back(std::move(layers));
  }
  return spec;
}

std::int64_t VggSpec::param_count() const {
  std::int64_t total = 0;
  for (const auto& stage : stages_) {
    for (const ConvLayer& conv : stage) {
      total += 9 * conv.in * conv.out + conv.out;  // 3x3 conv + bias
    }
  }
  // Classifier: flatten(512*7*7) -> 4096 -> 4096 -> classes, all biased.
  std::int64_t features = 512 * 7 * 7;
  for (const std::int64_t width : fc_) {
    total += features * width + width;
    features = width;
  }
  return total;
}

std::int64_t VggSpec::activation_elems(int image_size,
                                       std::int64_t batch) const {
  std::int64_t total = 0;
  std::int64_t side = image_size;
  for (const auto& stage : stages_) {
    for (const ConvLayer& conv : stage) {
      total += 2 * conv.out * side * side;  // conv output + relu output
    }
    side /= 2;  // 2x2 maxpool
    total += stage.back().out * side * side;
  }
  // Classifier activations (adaptive pool to 7x7 assumed for 224-family).
  std::int64_t features = 512 * side * side;
  (void)features;
  for (const std::int64_t width : fc_) {
    total += 2 * width;  // fc output + relu (last has none; negligible)
  }
  return total * batch;
}

}  // namespace edgetrain::models
