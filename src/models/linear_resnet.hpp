// edgetrain: the paper's LinearResNet_x abstraction (Section VI).
//
// "We will denote by LinearResNet_x a linear homogeneous network built by
//  analogy to ResNet_x. The memory needed to store all network weights is
//  the same ... and the size of the forward activation ... is defined as
//  the overall activation weights for ResNet_x divided by the depth."
#pragma once

#include <cstdint>
#include <string>

#include "core/planner.hpp"
#include "models/memory_model.hpp"

namespace edgetrain::models {

struct LinearResNet {
  std::string name;                    ///< "LinearResNet152" etc.
  int depth = 1;                       ///< l = x
  double fixed_bytes = 0.0;            ///< same as ResNet_x (incl. optimizer)
  double act_bytes_per_step = 0.0;     ///< k * M_A, batch folded in

  /// Homogenises ResNet_x at the given image/batch size.
  [[nodiscard]] static LinearResNet from_resnet(const ResNetMemoryModel& model,
                                                int image_size,
                                                std::int64_t batch);

  /// The planner's chain description. @p checkpoint_bytes_ratio is the
  /// slot-codec compression factor for resting checkpoints (1.0 =
  /// uncompressed, core::planning_bytes_ratio(codec) for a codec).
  [[nodiscard]] core::ChainSpec to_chain_spec(
      double checkpoint_bytes_ratio = 1.0) const;

  /// Footprint with all activations stored (rho = 1).
  [[nodiscard]] double full_storage_bytes() const {
    return fixed_bytes + static_cast<double>(depth) * act_bytes_per_step;
  }
};

}  // namespace edgetrain::models
