#include "models/resnet.hpp"

#include <stdexcept>

#include "nn/layers.hpp"
#include "tensor/ops.hpp"

namespace edgetrain::models {

const std::array<ResNetVariant, 5>& all_resnet_variants() {
  static const std::array<ResNetVariant, 5> variants = {
      ResNetVariant::ResNet18, ResNetVariant::ResNet34, ResNetVariant::ResNet50,
      ResNetVariant::ResNet101, ResNetVariant::ResNet152};
  return variants;
}

int depth_of(ResNetVariant variant) {
  switch (variant) {
    case ResNetVariant::ResNet18: return 18;
    case ResNetVariant::ResNet34: return 34;
    case ResNetVariant::ResNet50: return 50;
    case ResNetVariant::ResNet101: return 101;
    case ResNetVariant::ResNet152: return 152;
  }
  throw std::invalid_argument("unknown ResNet variant");
}

std::string name_of(ResNetVariant variant) {
  return "ResNet" + std::to_string(depth_of(variant));
}

std::array<int, 4> stage_blocks(ResNetVariant variant) {
  switch (variant) {
    case ResNetVariant::ResNet18: return {2, 2, 2, 2};
    case ResNetVariant::ResNet34: return {3, 4, 6, 3};
    case ResNetVariant::ResNet50: return {3, 4, 6, 3};
    case ResNetVariant::ResNet101: return {3, 4, 23, 3};
    case ResNetVariant::ResNet152: return {3, 8, 36, 3};
  }
  throw std::invalid_argument("unknown ResNet variant");
}

bool uses_bottleneck(ResNetVariant variant) {
  return variant == ResNetVariant::ResNet50 ||
         variant == ResNetVariant::ResNet101 ||
         variant == ResNetVariant::ResNet152;
}

// ---------------------------------------------------------------------------
// Spec construction
// ---------------------------------------------------------------------------

namespace {
constexpr std::int64_t kStageWidths[4] = {64, 128, 256, 512};
}  // namespace

ResNetSpec ResNetSpec::make(ResNetVariant variant, int num_classes,
                            std::int64_t in_channels) {
  ResNetSpec spec;
  spec.variant_ = variant;
  spec.num_classes_ = num_classes;
  spec.in_channels_ = in_channels;

  const bool bottleneck = uses_bottleneck(variant);
  const std::array<int, 4> blocks = stage_blocks(variant);
  auto& ops = spec.ops_;
  std::int32_t step = 0;

  auto conv = [&](std::int64_t cin, std::int64_t cout, std::int64_t k,
                  std::int64_t stride, std::int64_t pad, bool shortcut) {
    ops.push_back({OpKind::Conv, cin, cout, k, stride, pad, step, shortcut});
  };
  auto bn = [&](std::int64_t c, bool shortcut) {
    ops.push_back({OpKind::BatchNorm, c, c, 0, 1, 0, step, shortcut});
  };
  auto relu = [&](std::int64_t c) {
    ops.push_back({OpKind::ReLU, c, c, 0, 1, 0, step, false});
  };

  // Stem (chain step 0).
  conv(in_channels, 64, 7, 2, 3, false);
  bn(64, false);
  relu(64);
  ops.push_back({OpKind::MaxPool, 64, 64, 3, 2, 1, step, false});
  ++step;

  std::int64_t current = 64;  // channels entering the next block
  for (int stage = 0; stage < 4; ++stage) {
    const std::int64_t width = kStageWidths[stage];
    const std::int64_t out = bottleneck ? width * 4 : width;
    for (int b = 0; b < blocks[static_cast<std::size_t>(stage)]; ++b) {
      const std::int64_t stride = (stage > 0 && b == 0) ? 2 : 1;
      const bool project = stride != 1 || current != out;
      if (bottleneck) {
        conv(current, width, 1, 1, 0, false);
        bn(width, false);
        relu(width);
        conv(width, width, 3, stride, 1, false);
        bn(width, false);
        relu(width);
        conv(width, out, 1, 1, 0, false);
        bn(out, false);
      } else {
        conv(current, width, 3, stride, 1, false);
        bn(width, false);
        relu(width);
        conv(width, width, 3, 1, 1, false);
        bn(width, false);
      }
      if (project) {
        conv(current, out, 1, stride, 0, true);
        bn(out, true);
      }
      ops.push_back({OpKind::Add, out, out, 0, 1, 0, step, false});
      relu(out);
      current = out;
      ++step;
    }
  }

  // Head (final chain step).
  ops.push_back({OpKind::GlobalAvgPool, current, current, 0, 1, 0, step, false});
  ops.push_back({OpKind::Linear, current, num_classes, 0, 1, 0, step, false});
  ++step;
  spec.num_chain_steps_ = step;
  return spec;
}

std::int64_t ResNetSpec::param_count() const {
  std::int64_t total = 0;
  for (const OpSpec& op : ops_) {
    switch (op.kind) {
      case OpKind::Conv:
        total += op.kernel * op.kernel * op.in_channels * op.out_channels;
        break;
      case OpKind::BatchNorm:
        total += 2 * op.out_channels;  // affine gamma + beta
        break;
      case OpKind::Linear:
        total += op.in_channels * op.out_channels + op.out_channels;
        break;
      default:
        break;
    }
  }
  return total;
}

namespace {
/// Replays op shapes, invoking visit(op, output_elems_per_sample).
template <typename Visitor>
void replay(const std::vector<OpSpec>& ops, int image_size, Visitor&& visit) {
  std::int64_t h = image_size;
  std::int64_t w = image_size;
  std::int64_t h_entry = h;   // block-entry dims, for shortcut branches
  std::int64_t w_entry = w;
  std::int64_t hs = h;        // running dims on the shortcut branch
  std::int64_t ws = w;
  std::int32_t current_step = 0;

  for (const OpSpec& op : ops) {
    if (op.chain_step != current_step) {
      current_step = op.chain_step;
      h_entry = h;
      w_entry = w;
    }
    std::int64_t elems = 0;
    switch (op.kind) {
      case OpKind::Conv:
      case OpKind::MaxPool: {
        if (op.on_shortcut) {
          hs = ops::conv_out_size(h_entry, op.kernel, op.stride, op.pad);
          ws = ops::conv_out_size(w_entry, op.kernel, op.stride, op.pad);
          elems = op.out_channels * hs * ws;
        } else {
          h = ops::conv_out_size(h, op.kernel, op.stride, op.pad);
          w = ops::conv_out_size(w, op.kernel, op.stride, op.pad);
          elems = op.out_channels * h * w;
        }
        break;
      }
      case OpKind::BatchNorm:
      case OpKind::ReLU:
      case OpKind::Add:
        elems = op.on_shortcut ? op.out_channels * hs * ws
                               : op.out_channels * h * w;
        break;
      case OpKind::GlobalAvgPool:
        elems = op.out_channels;
        h = 1;
        w = 1;
        break;
      case OpKind::Linear:
        elems = op.out_channels;
        break;
    }
    visit(op, elems, h, w);
  }
}
}  // namespace

std::int64_t ResNetSpec::activation_elems(int image_size,
                                          std::int64_t batch) const {
  std::int64_t total = 0;
  replay(ops_, image_size,
         [&](const OpSpec&, std::int64_t elems, std::int64_t, std::int64_t) {
           total += elems;
         });
  return total * batch;
}

std::vector<std::int64_t> ResNetSpec::chain_step_activation_elems(
    int image_size, std::int64_t batch) const {
  std::vector<std::int64_t> per_step(
      static_cast<std::size_t>(num_chain_steps_), 0);
  replay(ops_, image_size,
         [&](const OpSpec& op, std::int64_t elems, std::int64_t,
             std::int64_t) {
           per_step[static_cast<std::size_t>(op.chain_step)] += elems * batch;
         });
  return per_step;
}

std::vector<double> ResNetSpec::chain_step_forward_costs(
    int image_size, std::int64_t batch) const {
  std::vector<double> per_step(static_cast<std::size_t>(num_chain_steps_),
                               0.0);
  replay(ops_, image_size,
         [&](const OpSpec& op, std::int64_t elems, std::int64_t, std::int64_t) {
           double cost = 0.0;
           switch (op.kind) {
             case OpKind::Conv:
               // MACs: output elems * (k^2 * in_channels)
               cost = static_cast<double>(elems) *
                      static_cast<double>(op.kernel * op.kernel *
                                          op.in_channels);
               break;
             case OpKind::Linear:
               cost = static_cast<double>(op.in_channels) *
                      static_cast<double>(op.out_channels);
               break;
             case OpKind::MaxPool:
               cost = static_cast<double>(elems) *
                      static_cast<double>(op.kernel * op.kernel);
               break;
             default:
               cost = static_cast<double>(elems);
               break;
           }
           per_step[static_cast<std::size_t>(op.chain_step)] +=
               cost * static_cast<double>(batch);
         });
  return per_step;
}

std::vector<std::int64_t> ResNetSpec::chain_step_output_elems(
    int image_size, std::int64_t batch) const {
  std::vector<std::int64_t> per_step(
      static_cast<std::size_t>(num_chain_steps_), 0);
  replay(ops_, image_size,
         [&](const OpSpec& op, std::int64_t elems, std::int64_t,
             std::int64_t) {
           // The step's boundary is the output of its last main-branch op;
           // shortcut branches merge before the boundary.
           if (!op.on_shortcut) {
             per_step[static_cast<std::size_t>(op.chain_step)] = elems * batch;
           }
         });
  return per_step;
}

// ---------------------------------------------------------------------------
// Executable builder
// ---------------------------------------------------------------------------

nn::LayerChain build_resnet_chain(ResNetVariant variant, int num_classes,
                                  std::int64_t in_channels, std::mt19937& rng) {
  const bool bottleneck = uses_bottleneck(variant);
  const std::array<int, 4> blocks = stage_blocks(variant);

  nn::LayerChain chain;
  chain.push(std::make_unique<nn::Conv2d>(in_channels, 64, 7, 2, 3, false, rng));
  chain.push(std::make_unique<nn::BatchNorm2d>(64));
  chain.push(std::make_unique<nn::ReLU>());
  chain.push(std::make_unique<nn::MaxPool2d>(3, 2, 1));

  std::int64_t current = 64;
  for (int stage = 0; stage < 4; ++stage) {
    const std::int64_t width = kStageWidths[stage];
    const std::int64_t out = bottleneck ? width * 4 : width;
    for (int b = 0; b < blocks[static_cast<std::size_t>(stage)]; ++b) {
      const std::int64_t stride = (stage > 0 && b == 0) ? 2 : 1;
      if (bottleneck) {
        chain.push(std::make_unique<nn::Bottleneck>(current, width, stride, rng));
      } else {
        chain.push(std::make_unique<nn::BasicBlock>(current, width, stride, rng));
      }
      current = out;
    }
  }

  chain.push(std::make_unique<nn::GlobalAvgPool>());
  chain.push(std::make_unique<nn::Linear>(current, num_classes, true, rng));
  return chain;
}

}  // namespace edgetrain::models
