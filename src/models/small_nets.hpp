// edgetrain: small executable networks for tests, examples and the in-situ
// pipeline (laptop/edge-scale stand-ins for the ImageNet ResNets).
#pragma once

#include <cstdint>
#include <random>

#include "nn/chain.hpp"

namespace edgetrain::models {

/// Scaled-down ResNet: @p blocks_per_stage basic blocks in each of two
/// stages starting at @p base_channels, for small images (e.g. 32x32).
/// Chain steps: conv-bn-relu stem, the blocks, global pool + classifier.
[[nodiscard]] nn::LayerChain build_mini_resnet(int blocks_per_stage,
                                               std::int64_t base_channels,
                                               int num_classes,
                                               std::int64_t in_channels,
                                               std::mt19937& rng);

/// Homogeneous convolutional chain: `depth` identical conv3x3(c->c)+relu
/// steps at constant spatial size. This is a *physical* LinearResNet: every
/// step has the same activation size and cost, so executor measurements can
/// be compared against the paper's homogeneous model point-by-point.
[[nodiscard]] nn::LayerChain build_conv_chain(int depth,
                                              std::int64_t channels,
                                              std::mt19937& rng);

/// Deliberately cost-imbalanced conv chain: @p stages groups of
/// @p steps_per_stage conv3x3(c->c) steps, each stage after the first
/// entered through a stride-2 step, so the per-step forward cost falls
/// ~4x per stage while channel count (and hence boundary-state *shape
/// diversity*) stays simple. Unit-cost planners place checkpoints
/// uniformly over such a chain and waste recomputation on the expensive
/// early stages; measured-cost planners shift the recompute into the
/// cheap tail. This is the adversarial workload bench_calib and the
/// calibration tests quantify that gap on.
[[nodiscard]] nn::LayerChain build_pyramid_chain(int stages,
                                                 int steps_per_stage,
                                                 std::int64_t channels,
                                                 std::mt19937& rng);

/// Small classifier CNN used as the in-situ teacher/student: two conv-bn-
/// relu-pool stages plus a linear head, for @p patch pixels grayscale input.
[[nodiscard]] nn::LayerChain build_patch_cnn(std::int64_t patch,
                                             std::int64_t in_channels,
                                             std::int64_t base_channels,
                                             int num_classes,
                                             std::mt19937& rng);

/// Plain MLP (flatten + linear/relu stack) for quick optimizer tests.
[[nodiscard]] nn::LayerChain build_mlp(std::int64_t in_features,
                                       std::int64_t hidden, int hidden_layers,
                                       int num_classes, std::mt19937& rng);

}  // namespace edgetrain::models
