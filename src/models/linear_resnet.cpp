#include "models/linear_resnet.hpp"

namespace edgetrain::models {

LinearResNet LinearResNet::from_resnet(const ResNetMemoryModel& model,
                                       int image_size, std::int64_t batch) {
  LinearResNet linear;
  linear.name = "Linear" + model.spec().name();
  linear.depth = model.spec().depth();
  linear.fixed_bytes = model.fixed_bytes();
  linear.act_bytes_per_step = model.activation_bytes(image_size, batch) /
                              static_cast<double>(linear.depth);
  return linear;
}

core::ChainSpec LinearResNet::to_chain_spec(
    double checkpoint_bytes_ratio) const {
  core::ChainSpec spec;
  spec.name = name;
  spec.depth = depth;
  spec.fixed_bytes = fixed_bytes;
  spec.activation_bytes_per_step = act_bytes_per_step;
  spec.checkpoint_bytes_ratio = checkpoint_bytes_ratio;
  return spec;
}

}  // namespace edgetrain::models
