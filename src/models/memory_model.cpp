#include "models/memory_model.hpp"

namespace edgetrain::models {

namespace {
constexpr double kBytesPerScalar = 4.0;  // float32
constexpr double kFixedMultiple = 4.0;   // weights + grads + 2 Adam moments

double policy_multiple(ActivationPolicy policy) {
  switch (policy) {
    case ActivationPolicy::OutputsOnly: return 1.0;
    case ActivationPolicy::OutputsPlusGradients: return 2.0;
  }
  return 2.0;
}
}  // namespace

ResNetMemoryModel::ResNetMemoryModel(ResNetSpec spec, ActivationPolicy policy,
                                     SpatialMode mode)
    : spec_(std::move(spec)), policy_(policy), mode_(mode) {
  act224_per_sample_bytes_ =
      static_cast<double>(spec_.activation_elems(224, 1)) * kBytesPerScalar *
      policy_multiple(policy_);
}

double ResNetMemoryModel::weight_bytes() const {
  return static_cast<double>(spec_.param_count()) * kBytesPerScalar;
}

double ResNetMemoryModel::fixed_bytes() const {
  return kFixedMultiple * weight_bytes();
}

double ResNetMemoryModel::activation_bytes(int image_size,
                                           std::int64_t batch) const {
  if (mode_ == SpatialMode::AreaScaled) {
    const double scale = static_cast<double>(image_size) / 224.0;
    return act224_per_sample_bytes_ * scale * scale *
           static_cast<double>(batch);
  }
  return static_cast<double>(spec_.activation_elems(image_size, batch)) *
         kBytesPerScalar * policy_multiple(policy_);
}

MemoryBreakdown ResNetMemoryModel::estimate(int image_size,
                                            std::int64_t batch) const {
  MemoryBreakdown breakdown;
  breakdown.weight_bytes = weight_bytes();
  breakdown.fixed_bytes = fixed_bytes();
  breakdown.activation_bytes = activation_bytes(image_size, batch);
  return breakdown;
}

}  // namespace edgetrain::models
