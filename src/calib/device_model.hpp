// edgetrain: the fitted per-device performance model.
//
// Every planner in the library prices schedules in *some* unit -- forward
// steps, bytes, IO weights. On a real device those units have exchange
// rates (a conv flop is not a GEMM flop; an SD-card byte is slower than a
// RAM byte; adding threads helps big cores more than little ones), and the
// paper's recompute-vs-memory tradeoff is only as good as those rates. A
// DeviceModel is the compact record of the rates measured on the running
// machine by calib::calibrate():
//
//   * sustained GEMM and conv GFLOPS per worker-thread count (the
//     thread-count dimension captures big.LITTLE-style asymmetry: points
//     are measured, not extrapolated, so a pool spanning slow cores shows
//     its real sub-linear scaling);
//   * memcpy bandwidth (checkpoint stores copy activations around);
//   * SD/disk spill bandwidth and fixed per-op latency, measured through
//     the same DiskSlotStore path training uses (so an injected
//     EDGETRAIN_DISK_LATENCY_US shows up here, exactly as it would in a
//     training pass).
//
// Prediction queries convert analytic work (flops, bytes) into calibrated
// microseconds. The profile round-trips through a checksummed on-disk
// cache ("ETCP": magic | version | payload_size | payload_crc | header_crc,
// written temp + fsync + atomic-rename like persist/snapshot.hpp), so
// calibration runs once per device and a corrupt or truncated profile is
// detected and re-measured, never trusted.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace edgetrain::calib {

/// One calibrated operating point: sustained kernel throughput with the
/// global pool pinned to `threads` workers.
struct ThreadPoint {
  int threads = 1;
  double gemm_gflops = 0.0;
  double conv_gflops = 0.0;
  /// Quantized-kernel throughput (profile v2). 0.0 means "not measured"
  /// (e.g. a probe was skipped): still a valid point, and the precision
  /// queries fall back to the fp32 GEMM rate.
  double bf16_gemm_gflops = 0.0;
  /// int8 GEMM in giga-ops/sec (one multiply-accumulate = 2 ops, the same
  /// counting as GFLOPS, so ratios against gemm_gflops compare directly).
  double s8_gemm_gops = 0.0;

  [[nodiscard]] bool operator==(const ThreadPoint&) const = default;
};

/// The fitted device model. All query results are wall-clock microseconds.
struct DeviceModel {
  /// Measured points, ascending in threads (at least one entry).
  std::vector<ThreadPoint> points;
  double memcpy_bytes_per_sec = 0.0;
  /// Spill path: time(bytes) = latency_us + bytes / bytes_per_sec.
  double disk_write_bytes_per_sec = 0.0;
  double disk_read_bytes_per_sec = 0.0;
  double disk_write_latency_us = 0.0;
  double disk_read_latency_us = 0.0;

  [[nodiscard]] bool operator==(const DeviceModel&) const = default;

  /// True when the model is usable: >= 1 point, ascending threads, every
  /// throughput strictly positive, latencies non-negative.
  [[nodiscard]] bool valid() const;

  /// Largest measured thread count.
  [[nodiscard]] int calibrated_threads() const;

  /// Thread count with the highest conv throughput (the setting a trainer
  /// should pin the pool to).
  [[nodiscard]] int best_threads() const;

  /// Throughput at @p threads: linear interpolation between measured
  /// points, clamped at the ends (no extrapolation beyond measurements).
  [[nodiscard]] double gemm_gflops_at(int threads) const;
  [[nodiscard]] double conv_gflops_at(int threads) const;
  /// Quantized GEMM rates. 0.0 when no point measured them (pre-v2
  /// profiles or skipped probes).
  [[nodiscard]] double bf16_gemm_gflops_at(int threads) const;
  [[nodiscard]] double s8_gemm_gops_at(int threads) const;

  /// Predicted microseconds for @p flops of GEMM / conv work.
  [[nodiscard]] double gemm_us(double flops, int threads) const;
  [[nodiscard]] double conv_us(double flops, int threads) const;
  /// Quantized-GEMM predictions; when the quantized rate is unmeasured
  /// (0.0) these conservatively fall back to the fp32 GEMM rate.
  [[nodiscard]] double bf16_gemm_us(double flops, int threads) const;
  [[nodiscard]] double s8_gemm_us(double ops, int threads) const;

  /// Predicted microseconds to copy / spill-write / spill-read @p bytes.
  [[nodiscard]] double memcpy_us(double bytes) const;
  [[nodiscard]] double disk_write_us(double bytes) const;
  [[nodiscard]] double disk_read_us(double bytes) const;
};

/// Decode/read failure (bad magic, version, CRC mismatch, truncation).
class ProfileError : public std::runtime_error {
 public:
  explicit ProfileError(const std::string& what)
      : std::runtime_error("calib profile: " + what) {}
};

/// Numeric precision a planner wants work priced at. Fp32 is the measured
/// baseline; Bf16/Int8 use the quantized GEMM probes (with fp32 fallback
/// when a profile predates them).
enum class Precision : std::uint8_t { Fp32, Bf16, Int8 };

/// v2 adds bf16/int8 GEMM throughput per point. Cached v1 profiles fail
/// the version check and are simply re-measured by load_or_calibrate.
inline constexpr std::uint32_t kProfileVersion = 2;

/// Serialises @p model into the versioned, CRC-protected "ETCP" container.
[[nodiscard]] std::vector<std::uint8_t> encode_profile(
    const DeviceModel& model);

/// Inverse of encode_profile. Throws ProfileError on any mismatch (magic,
/// version, size, either CRC, trailing garbage, invalid model).
[[nodiscard]] DeviceModel decode_profile(
    const std::vector<std::uint8_t>& bytes);

/// Writes @p model to @p path via temp + fsync + atomic rename: the final
/// name never holds a torn profile. Parent directories must exist.
void save_profile(const std::string& path, const DeviceModel& model);

/// Reads and validates one profile. Returns nullopt when the file is
/// missing, truncated, corrupt or holds an invalid model -- the caller's
/// cue to re-calibrate (load_or_calibrate in calib/calibrate.hpp does
/// exactly that).
[[nodiscard]] std::optional<DeviceModel> load_profile(const std::string& path);

}  // namespace edgetrain::calib
