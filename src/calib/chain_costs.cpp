#include "calib/chain_costs.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <numeric>
#include <random>
#include <stdexcept>

#include "calib/calibrate.hpp"
#include "tensor/tensor.hpp"

namespace edgetrain::calib {

double ChainCosts::sweep_us() const {
  return std::accumulate(forward_us.begin(), forward_us.end(), 0.0);
}

double ChainCosts::backward_total_us() const {
  return std::accumulate(backward_us.begin(), backward_us.end(), 0.0);
}

double ChainCosts::ideal_step_us() const {
  return sweep_us() + backward_total_us();
}

double ChainCosts::mean_forward_us() const {
  return forward_us.empty()
             ? 0.0
             : sweep_us() / static_cast<double>(forward_us.size());
}

double ChainCosts::backward_ratio() const {
  const double fwd = sweep_us();
  return fwd > 0.0 ? backward_total_us() / fwd : 1.0;
}

double ChainCosts::mean_boundary_bytes() const {
  if (boundary_bytes.empty()) return 0.0;
  return std::accumulate(boundary_bytes.begin(), boundary_bytes.end(), 0.0) /
         static_cast<double>(boundary_bytes.size());
}

double ChainCosts::max_boundary_bytes() const {
  return boundary_bytes.empty()
             ? 0.0
             : *std::max_element(boundary_bytes.begin(), boundary_bytes.end());
}

bool ChainCosts::valid() const {
  const std::size_t l = forward_us.size();
  if (l == 0) return false;
  if (backward_us.size() != l) return false;
  if (boundary_bytes.size() != l - 1) return false;
  for (const double c : forward_us)
    if (!(c > 0.0)) return false;
  for (const double c : backward_us)
    if (!(c > 0.0)) return false;
  for (const double b : boundary_bytes)
    if (!(b > 0.0)) return false;
  return input_bytes > 0.0 && output_bytes > 0.0;
}

ChainCosts measure_chain(nn::LayerChain& chain, const Tensor& input,
                         const MeasureOptions& options) {
  const int l = chain.size();
  if (l < 1) throw std::invalid_argument("measure_chain: empty chain");

  ChainCosts costs;
  costs.forward_us.resize(static_cast<std::size_t>(l));
  costs.backward_us.resize(static_cast<std::size_t>(l));

  const std::vector<Shape> shapes = chain.shapes(input.shape());
  costs.input_bytes =
      static_cast<double>(shapes.front().numel()) * sizeof(float);
  costs.output_bytes =
      static_cast<double>(shapes.back().numel()) * sizeof(float);
  for (int j = 1; j < l; ++j) {
    costs.boundary_bytes.push_back(
        static_cast<double>(shapes[static_cast<std::size_t>(j)].numel()) *
        sizeof(float));
  }

  // first_visit = false keeps batch-norm running statistics untouched, so a
  // calibration pass over a live model perturbs nothing but the gradient
  // accumulators (zeroed below).
  nn::RunContext ctx;
  ctx.phase = nn::Phase::Train;
  ctx.save_for_backward = true;
  ctx.first_visit = false;
  ctx.pass_token = 0;

  // One un-timed saving sweep records the true input of every step.
  std::vector<Tensor> acts;
  acts.reserve(static_cast<std::size_t>(l) + 1);
  acts.push_back(input);
  for (int i = 0; i < l; ++i) {
    acts.push_back(chain.layer(i).forward(acts.back(), ctx));
  }

  std::mt19937 rng(17);
  for (int i = 0; i < l; ++i) {
    nn::Layer& layer = chain.layer(i);
    const Tensor& x = acts[static_cast<std::size_t>(i)];
    Tensor grad_out = Tensor::randn(shapes[static_cast<std::size_t>(i) + 1],
                                    rng);

    const double fwd_secs = time_per_iteration_seconds(
        options.min_sample_seconds, options.repeats, [&] {
          Tensor y = layer.forward(x, ctx);
          if (y.data() == nullptr) std::abort();
        });
    // backward() consumes the saved internals, so each backward sample must
    // be preceded by a fresh saving forward; the pair is timed together and
    // the forward share subtracted.
    const double pair_secs = time_per_iteration_seconds(
        options.min_sample_seconds, options.repeats, [&] {
          Tensor y = layer.forward(x, ctx);
          Tensor gx = layer.backward(grad_out);
          if (y.data() == nullptr || gx.data() == nullptr) std::abort();
        });
    costs.forward_us[static_cast<std::size_t>(i)] = fwd_secs * 1e6;
    // Clamp: on a noisy machine the pair sample can come in under the
    // forward sample; a zero/negative backward would poison the DP.
    costs.backward_us[static_cast<std::size_t>(i)] =
        std::max(pair_secs - fwd_secs, 0.05 * fwd_secs) * 1e6;
  }

  chain.clear_saved();
  chain.zero_grad();
  return costs;
}

ChainCosts predict_resnet(const models::ResNetSpec& spec, int image_size,
                          std::int64_t batch, const DeviceModel& model,
                          int threads, Precision precision) {
  if (!model.valid()) {
    throw std::invalid_argument("predict_resnet: invalid device model");
  }
  // Quantized pricing: conv work lowers to GEMM, so the measured
  // fp32-GEMM/quantized-GEMM throughput ratio is the speedup the conv rate
  // inherits. A factor of 1.0 (unmeasured quantized rate falls back to the
  // fp32 gemm_us) degrades gracefully to the fp32 prediction.
  double scale = 1.0;
  if (precision != Precision::Fp32) {
    const double fp32_us = model.gemm_us(1e9, threads);
    const double quant_us = precision == Precision::Bf16
                                ? model.bf16_gemm_us(1e9, threads)
                                : model.s8_gemm_us(1e9, threads);
    if (fp32_us > 0.0 && quant_us > 0.0) scale = quant_us / fp32_us;
  }
  ChainCosts costs;
  const std::vector<double> macs =
      spec.chain_step_forward_costs(image_size, batch);
  const std::vector<std::int64_t> out_elems =
      spec.chain_step_output_elems(image_size, batch);
  const std::size_t l = macs.size();
  costs.forward_us.reserve(l);
  costs.backward_us.reserve(l);
  for (std::size_t i = 0; i < l; ++i) {
    // MACs -> flops (x2), priced at conv throughput: every step of a
    // ResNet is conv-dominated except the (negligible) head linear.
    const double us = scale * model.conv_us(2.0 * macs[i], threads);
    costs.forward_us.push_back(us);
    // Backward of a conv is the dX + dW GEMM pair: 2x the forward work.
    costs.backward_us.push_back(2.0 * us);
  }
  costs.input_bytes = 3.0 * static_cast<double>(image_size) *
                      static_cast<double>(image_size) *
                      static_cast<double>(batch) * sizeof(float);
  costs.output_bytes =
      static_cast<double>(out_elems.back()) * sizeof(float);
  for (std::size_t j = 0; j + 1 < l; ++j) {
    costs.boundary_bytes.push_back(static_cast<double>(out_elems[j]) *
                                   sizeof(float));
  }
  return costs;
}

std::vector<int> state_units(const ChainCosts& costs) {
  std::vector<int> units;
  if (costs.boundary_bytes.empty()) return units;
  const double unit =
      *std::min_element(costs.boundary_bytes.begin(),
                        costs.boundary_bytes.end());
  units.reserve(costs.boundary_bytes.size());
  for (const double bytes : costs.boundary_bytes) {
    units.push_back(static_cast<int>(std::ceil(bytes / unit - 1e-9)));
  }
  return units;
}

int budget_units_for_bytes(const ChainCosts& costs, double budget_bytes) {
  if (costs.boundary_bytes.empty() || budget_bytes <= 0.0) return 0;
  const double unit =
      *std::min_element(costs.boundary_bytes.begin(),
                        costs.boundary_bytes.end());
  return static_cast<int>(budget_bytes / unit);
}

core::ChainSpec measured_chain_spec(std::string name, const ChainCosts& costs,
                                    double fixed_bytes,
                                    double checkpoint_bytes_ratio) {
  if (!costs.valid()) {
    throw std::invalid_argument("measured_chain_spec: invalid ChainCosts");
  }
  core::ChainSpec spec;
  spec.name = std::move(name);
  spec.depth = costs.num_steps();
  spec.fixed_bytes = fixed_bytes;
  // The planner's homogeneous byte model keeps one number per step; the
  // mean boundary is the faithful aggregate (total slot bytes at s slots
  // matches the measured chain in expectation).
  spec.activation_bytes_per_step =
      costs.boundary_bytes.empty() ? costs.output_bytes
                                   : costs.mean_boundary_bytes();
  spec.checkpoint_bytes_ratio = checkpoint_bytes_ratio;
  spec.step_costs = costs.forward_us;
  spec.backward_ratio = costs.backward_ratio();
  return spec;
}

std::vector<double> measured_slot_ratios(const core::SlotStore& store,
                                         std::int32_t first_slot,
                                         std::int32_t count) {
  std::vector<double> ratios;
  ratios.reserve(static_cast<std::size_t>(std::max(count, 0)));
  for (std::int32_t slot = first_slot; slot < first_slot + count; ++slot) {
    ratios.push_back(std::clamp(store.measured_slot_ratio(slot), 1e-6, 1.0));
  }
  return ratios;
}

core::ChainSpec measured_chain_spec(std::string name, const ChainCosts& costs,
                                    double fixed_bytes,
                                    std::vector<double> checkpoint_slot_ratios,
                                    double fallback_ratio) {
  core::ChainSpec spec = measured_chain_spec(std::move(name), costs,
                                             fixed_bytes, fallback_ratio);
  spec.checkpoint_slot_ratios = std::move(checkpoint_slot_ratios);
  return spec;
}

core::disk::DiskRevolveOptions priced_disk_options(
    const ChainCosts& costs, const DeviceModel& model,
    core::disk::DiskRevolveOptions base) {
  const double fwd_us = costs.mean_forward_us();
  if (!(fwd_us > 0.0)) {
    throw std::invalid_argument("priced_disk_options: no forward costs");
  }
  const double bytes = costs.mean_boundary_bytes() > 0.0
                           ? costs.mean_boundary_bytes()
                           : costs.output_bytes;
  // The DP prices IO in forward-step units and multiplies by
  // spill_bytes_ratio itself, so the weights here are the *plaintext*
  // spill times of this chain's mean boundary on this device.
  base.write_cost = model.disk_write_us(bytes) / fwd_us;
  base.read_cost = model.disk_read_us(bytes) / fwd_us;
  return base;
}

core::disk::DiskRevolveOptions priced_disk_options(
    const ChainCosts& costs, const DeviceModel& model,
    core::disk::DiskRevolveOptions base,
    std::vector<double> spill_slot_ratios) {
  base.spill_slot_ratios = std::move(spill_slot_ratios);
  return priced_disk_options(costs, model, std::move(base));
}

analysis::CostModel cost_model(const ChainCosts& costs,
                               const DeviceModel& model,
                               std::int32_t first_disk_slot) {
  analysis::CostModel cm;
  cm.step_costs = costs.forward_us;
  cm.first_disk_slot = first_disk_slot;
  const double bytes = costs.mean_boundary_bytes() > 0.0
                           ? costs.mean_boundary_bytes()
                           : costs.output_bytes;
  cm.disk_write_cost = model.disk_write_us(bytes);
  cm.disk_read_cost = model.disk_read_us(bytes);
  return cm;
}

analysis::CostModel cost_model(const ChainCosts& costs,
                               const DeviceModel& model,
                               std::int32_t first_disk_slot,
                               std::vector<double> slot_bytes_ratios) {
  analysis::CostModel cm = cost_model(costs, model, first_disk_slot);
  cm.slot_bytes_ratios = std::move(slot_bytes_ratios);
  return cm;
}

}  // namespace edgetrain::calib
