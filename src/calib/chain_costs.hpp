// edgetrain: converting chains into measured per-step cost/size vectors.
//
// The DP planners (core/dynprog, core/disk_revolve, core/planner) and the
// schedule interpreter (analysis/interp) all accept arbitrary per-step
// cost vectors but were historically fed unit or analytic FLOP counts --
// optimal for an abstraction, not for the hardware. This module closes the
// loop: a ChainCosts carries per-step forward/backward microseconds and
// boundary-state bytes for one concrete chain on *this* device, obtained
// either by
//
//   * measure_chain(): timing the real layers of a live nn::LayerChain
//     (ground truth; what bench_calib proves schedules against), or
//   * predict_resnet(): converting ResNetSpec's exact analytic MAC counts
//     into microseconds through the fitted DeviceModel (no network
//     instantiation -- plan a ResNet-152 on a 2 GB node without building
//     one),
//
// and the feeder helpers translate a ChainCosts into every planner's
// native inputs: HeteroSolver/ByteBudgetSolver cost-and-unit vectors,
// DiskRevolveOptions whose IO weights come from the measured SD bandwidth,
// a measured ChainSpec for MemoryPlanner, and an analysis::CostModel whose
// lint bounds are stated in calibrated microseconds.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "analysis/interp.hpp"
#include "calib/device_model.hpp"
#include "core/disk_revolve.hpp"
#include "core/planner.hpp"
#include "core/slot_store.hpp"
#include "models/resnet.hpp"
#include "nn/chain.hpp"

namespace edgetrain::calib {

/// Per-step timings and sizes of one concrete chain on one device.
struct ChainCosts {
  std::vector<double> forward_us;   ///< size l, > 0 each
  std::vector<double> backward_us;  ///< size l
  /// Bytes of boundary state j (the output of step j-1), j = 1..l-1 --
  /// the states a checkpoint slot may hold (size l-1). The chain input
  /// and output are never checkpointed (ByteBudgetSolver's convention).
  std::vector<double> boundary_bytes;
  double input_bytes = 0.0;
  double output_bytes = 0.0;

  [[nodiscard]] int num_steps() const {
    return static_cast<int>(forward_us.size());
  }
  /// One un-checkpointed forward sweep, microseconds.
  [[nodiscard]] double sweep_us() const;
  [[nodiscard]] double backward_total_us() const;
  /// The rho = 1 training step: sweep + full backward.
  [[nodiscard]] double ideal_step_us() const;
  [[nodiscard]] double mean_forward_us() const;
  /// Measured backward/forward cost ratio (the paper's bwd_ratio, but
  /// observed instead of assumed 1).
  [[nodiscard]] double backward_ratio() const;
  [[nodiscard]] double mean_boundary_bytes() const;
  [[nodiscard]] double max_boundary_bytes() const;

  /// True when sizes are consistent and every cost is positive.
  [[nodiscard]] bool valid() const;
};

struct MeasureOptions {
  /// Per-step samples are grown (iterations doubled) until one lasts at
  /// least this long, then the minimum over repeats is kept -- the same
  /// protocol as calib::time_per_iteration_seconds.
  double min_sample_seconds = 0.005;
  int repeats = 3;
};

/// Times every step of @p chain (forward with save, then backward) on a
/// real @p input batch. Runs in Phase::Train with first_visit = false, so
/// batch-norm running statistics are not perturbed; accumulated parameter
/// gradients are zeroed and saved state cleared before returning.
[[nodiscard]] ChainCosts measure_chain(nn::LayerChain& chain,
                                       const Tensor& input,
                                       const MeasureOptions& options = {});

/// Predicts a block-level ResNet chain's per-step costs from its analytic
/// MAC counts through the fitted model: forward MACs at conv throughput,
/// backward charged 2x forward (the dX + dW GEMM pair). Boundary bytes use
/// the spec's per-step activation accounting.
///
/// @p precision prices the compute at the device's measured quantized GEMM
/// rate (Bf16/Int8 probes; fp32 fallback when unmeasured): forward times
/// scale by the fp32-GEMM/quantized-GEMM throughput ratio. Boundary bytes
/// stay fp32 -- the planners checkpoint master-precision activations (the
/// bf16 training path keeps fp32 boundaries; see ops::GemmPrecision).
[[nodiscard]] ChainCosts predict_resnet(const models::ResNetSpec& spec,
                                        int image_size, std::int64_t batch,
                                        const DeviceModel& model, int threads,
                                        Precision precision = Precision::Fp32);

// --- planner feeders -------------------------------------------------------

/// Boundary sizes as integer budget units for ByteBudgetSolver: one unit =
/// the smallest boundary's bytes, each state rounded up.
[[nodiscard]] std::vector<int> state_units(const ChainCosts& costs);

/// The checkpoint budget @p budget_bytes expressed in the same units.
[[nodiscard]] int budget_units_for_bytes(const ChainCosts& costs,
                                         double budget_bytes);

/// MemoryPlanner chain description carrying the measured per-step costs:
/// plan selection and achieved_rho are then computed by the heterogeneous
/// DP in calibrated microseconds instead of unit Revolve counts.
[[nodiscard]] core::ChainSpec measured_chain_spec(
    std::string name, const ChainCosts& costs, double fixed_bytes,
    double checkpoint_bytes_ratio = 1.0);

/// Samples SlotStore::measured_slot_ratio for slots [first_slot,
/// first_slot + count) in slot order -- the per-slot ratio vector the
/// planners, interpreter, and DiskRevolveOptions accept. Ratios are
/// clamped into (0, 1] (a blob a data-dependent codec could not shrink
/// reports slightly above 1 because of its mode byte; the planners price
/// it as plaintext).
[[nodiscard]] std::vector<double> measured_slot_ratios(
    const core::SlotStore& store, std::int32_t first_slot,
    std::int32_t count);

/// measured_chain_spec with measured per-slot checkpoint ratios (e.g. the
/// measured_slot_ratios of the previous pass's store, slots 1..s): the
/// planner then prices checkpoint slot k at entry k's MEASURED ratio
/// instead of the single static checkpoint_bytes_ratio, which is what lets
/// a data-dependent codec (SlotCodec::Bitmap) buy more slots than its
/// worst-case planning ratio promises. @p fallback_ratio prices slots past
/// the vector's end.
[[nodiscard]] core::ChainSpec measured_chain_spec(
    std::string name, const ChainCosts& costs, double fixed_bytes,
    std::vector<double> checkpoint_slot_ratios, double fallback_ratio);

/// Disk-revolve options whose write/read weights are the measured spill
/// time of this chain's mean boundary (scaled by @p base.spill_bytes_ratio)
/// divided by the measured mean forward step -- the DP's "forward-step
/// units", finally tied to the device's actual SD bandwidth.
[[nodiscard]] core::disk::DiskRevolveOptions priced_disk_options(
    const ChainCosts& costs, const DeviceModel& model,
    core::disk::DiskRevolveOptions base);

/// priced_disk_options additionally threading measured per-spill ratios
/// (e.g. measured_slot_ratios of the disk slots a previous pass filled)
/// into base.spill_slot_ratios: the DP then prices IO at the measured mean
/// achieved ratio instead of the static spill_bytes_ratio -- the feeder
/// that fixes the static-ratio blind spot for data-dependent codecs.
[[nodiscard]] core::disk::DiskRevolveOptions priced_disk_options(
    const ChainCosts& costs, const DeviceModel& model,
    core::disk::DiskRevolveOptions base,
    std::vector<double> spill_slot_ratios);

/// Interpreter cost model in calibrated microseconds: per-step forward
/// weights from the measurement, disk IO weights from the measured spill
/// path. total_cost() of a clean interpretation is then the predicted
/// wall-clock (microseconds) of replaying the schedule on this device.
[[nodiscard]] analysis::CostModel cost_model(
    const ChainCosts& costs, const DeviceModel& model,
    std::int32_t first_disk_slot = std::numeric_limits<std::int32_t>::max());

/// cost_model with measured per-slot resting ratios (keyed by slot id)
/// threaded into the interpreter's per-slot weighted peak accounting, so
/// schedule_lint re-checks a re-planned schedule against the ratios it was
/// actually solved with.
[[nodiscard]] analysis::CostModel cost_model(
    const ChainCosts& costs, const DeviceModel& model,
    std::int32_t first_disk_slot, std::vector<double> slot_bytes_ratios);

}  // namespace edgetrain::calib
