// edgetrain: on-device calibration.
//
// calibrate() times the three substrates a training schedule actually
// spends wall-clock in -- compute kernels (GEMM and conv forward+backward,
// across a sweep of worker-thread counts), memory copies, and spill IO
// through the real DiskSlotStore path (so EDGETRAIN_DISK_LATENCY_US and SD
// bandwidth are observed, not assumed) -- and fits the DeviceModel the
// planners consume. The probes auto-scale their iteration counts until a
// sample exceeds min_sample_seconds and report the minimum over repeats
// (the bench convention: the minimum is the least-noisy estimator of the
// achievable rate on a machine with background load).
//
// load_or_calibrate() is the once-per-device entry point: a valid cached
// profile is returned immediately; a missing, truncated or corrupt one is
// silently re-measured and re-cached.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "calib/device_model.hpp"

namespace edgetrain::calib {

struct CalibrationOptions {
  /// A timing sample is grown (iterations doubled) until it lasts at least
  /// this long; the quick presets in tests/CI shrink it to keep smoke runs
  /// cheap at the price of noisier rates.
  double min_sample_seconds = 0.02;
  /// Samples per probe; the minimum is reported.
  int repeats = 3;
  /// GEMM probe: square n x n x n.
  std::int64_t gemm_size = 192;
  /// Conv probe: channels x 32 x 32 image, 3x3 same-padding.
  std::int64_t conv_channels = 32;
  std::int64_t conv_image = 32;
  /// Thread counts to measure. Empty = {1, 2, 4, ...} up to
  /// hardware_concurrency (the last point is hardware_concurrency itself).
  std::vector<int> thread_counts;
  /// Spill probe tensor sizes (floats); two sizes separate the fixed
  /// per-op latency from the streaming bandwidth by a linear fit.
  std::int64_t io_small_elems = 64 * 1024;
  std::int64_t io_large_elems = 1024 * 1024;
  /// Directory for the spill probe's temporary files (created if missing).
  std::string scratch_dir = "/tmp/edgetrain_calib";
};

/// Quick preset for CI smoke jobs and tests: one repeat, 2 ms samples.
[[nodiscard]] CalibrationOptions quick_calibration();

/// Measures this machine. Temporarily repins the global ThreadPool for the
/// thread sweep and restores the previous worker count before returning.
[[nodiscard]] DeviceModel calibrate(const CalibrationOptions& options = {});

/// Returns the cached profile at @p profile_path when it loads and
/// validates; otherwise calibrates, writes the profile (atomic rename) and
/// returns the fresh model. @p was_cached, when non-null, reports which
/// path was taken.
[[nodiscard]] DeviceModel load_or_calibrate(
    const std::string& profile_path, const CalibrationOptions& options = {},
    bool* was_cached = nullptr);

/// The timing primitive the probes share: runs @p fn repeatedly, growing
/// the iteration count until one sample exceeds @p min_sample_seconds, and
/// returns the minimum per-iteration seconds over @p repeats samples.
[[nodiscard]] double time_per_iteration_seconds(
    double min_sample_seconds, int repeats, const std::function<void()>& fn);

}  // namespace edgetrain::calib
