#include "calib/device_model.hpp"

#include <algorithm>
#include <bit>

#include "persist/atomic_file.hpp"
#include "persist/wire.hpp"

namespace edgetrain::calib {

namespace {

constexpr std::uint32_t kMagic = 0x50435445;  // "ETCP" little-endian

void wr_f64(persist::ByteWriter& w, double value) {
  w.u64(std::bit_cast<std::uint64_t>(value));
}

double rd_f64(persist::ByteReader& r) {
  return std::bit_cast<double>(r.u64());
}

}  // namespace

bool DeviceModel::valid() const {
  if (points.empty()) return false;
  int prev = 0;
  for (const ThreadPoint& p : points) {
    if (p.threads <= prev) return false;  // ascending, >= 1
    if (!(p.gemm_gflops > 0.0) || !(p.conv_gflops > 0.0)) return false;
    // Quantized rates may legitimately be 0.0 (unmeasured) but never
    // negative or NaN.
    if (!(p.bf16_gemm_gflops >= 0.0) || !(p.s8_gemm_gops >= 0.0)) {
      return false;
    }
    prev = p.threads;
  }
  if (!(memcpy_bytes_per_sec > 0.0)) return false;
  if (!(disk_write_bytes_per_sec > 0.0)) return false;
  if (!(disk_read_bytes_per_sec > 0.0)) return false;
  if (disk_write_latency_us < 0.0 || disk_read_latency_us < 0.0) return false;
  return true;
}

int DeviceModel::calibrated_threads() const {
  return points.empty() ? 0 : points.back().threads;
}

int DeviceModel::best_threads() const {
  int best = 1;
  double best_gflops = 0.0;
  for (const ThreadPoint& p : points) {
    if (p.conv_gflops > best_gflops) {
      best_gflops = p.conv_gflops;
      best = p.threads;
    }
  }
  return best;
}

namespace {

double interpolate(const std::vector<ThreadPoint>& points, int threads,
                   double ThreadPoint::* field) {
  if (points.empty()) return 0.0;
  if (threads <= points.front().threads) return points.front().*field;
  if (threads >= points.back().threads) return points.back().*field;
  for (std::size_t i = 1; i < points.size(); ++i) {
    if (threads <= points[i].threads) {
      const ThreadPoint& lo = points[i - 1];
      const ThreadPoint& hi = points[i];
      const double t = static_cast<double>(threads - lo.threads) /
                       static_cast<double>(hi.threads - lo.threads);
      return lo.*field + t * (hi.*field - lo.*field);
    }
  }
  return points.back().*field;
}

}  // namespace

double DeviceModel::gemm_gflops_at(int threads) const {
  return interpolate(points, threads, &ThreadPoint::gemm_gflops);
}

double DeviceModel::conv_gflops_at(int threads) const {
  return interpolate(points, threads, &ThreadPoint::conv_gflops);
}

double DeviceModel::bf16_gemm_gflops_at(int threads) const {
  return interpolate(points, threads, &ThreadPoint::bf16_gemm_gflops);
}

double DeviceModel::s8_gemm_gops_at(int threads) const {
  return interpolate(points, threads, &ThreadPoint::s8_gemm_gops);
}

double DeviceModel::gemm_us(double flops, int threads) const {
  const double gflops = gemm_gflops_at(threads);
  return gflops > 0.0 ? flops / (gflops * 1e9) * 1e6 : 0.0;
}

double DeviceModel::conv_us(double flops, int threads) const {
  const double gflops = conv_gflops_at(threads);
  return gflops > 0.0 ? flops / (gflops * 1e9) * 1e6 : 0.0;
}

double DeviceModel::bf16_gemm_us(double flops, int threads) const {
  const double gflops = bf16_gemm_gflops_at(threads);
  if (gflops > 0.0) return flops / (gflops * 1e9) * 1e6;
  return gemm_us(flops, threads);  // unmeasured: conservative fp32 rate
}

double DeviceModel::s8_gemm_us(double ops, int threads) const {
  const double gops = s8_gemm_gops_at(threads);
  if (gops > 0.0) return ops / (gops * 1e9) * 1e6;
  return gemm_us(ops, threads);  // unmeasured: conservative fp32 rate
}

double DeviceModel::memcpy_us(double bytes) const {
  return memcpy_bytes_per_sec > 0.0 ? bytes / memcpy_bytes_per_sec * 1e6 : 0.0;
}

double DeviceModel::disk_write_us(double bytes) const {
  const double xfer = disk_write_bytes_per_sec > 0.0
                          ? bytes / disk_write_bytes_per_sec * 1e6
                          : 0.0;
  return disk_write_latency_us + xfer;
}

double DeviceModel::disk_read_us(double bytes) const {
  const double xfer = disk_read_bytes_per_sec > 0.0
                          ? bytes / disk_read_bytes_per_sec * 1e6
                          : 0.0;
  return disk_read_latency_us + xfer;
}

std::vector<std::uint8_t> encode_profile(const DeviceModel& model) {
  persist::ByteWriter payload;
  payload.u32(static_cast<std::uint32_t>(model.points.size()));
  for (const ThreadPoint& p : model.points) {
    payload.u32(static_cast<std::uint32_t>(p.threads));
    wr_f64(payload, p.gemm_gflops);
    wr_f64(payload, p.conv_gflops);
    wr_f64(payload, p.bf16_gemm_gflops);
    wr_f64(payload, p.s8_gemm_gops);
  }
  wr_f64(payload, model.memcpy_bytes_per_sec);
  wr_f64(payload, model.disk_write_bytes_per_sec);
  wr_f64(payload, model.disk_read_bytes_per_sec);
  wr_f64(payload, model.disk_write_latency_us);
  wr_f64(payload, model.disk_read_latency_us);

  return persist::frame_payload(kMagic, kProfileVersion, payload.bytes());
}

DeviceModel decode_profile(const std::vector<std::uint8_t>& bytes) {
  std::vector<std::uint8_t> body;
  try {
    body = persist::unframe_payload(kMagic, kProfileVersion, bytes);
  } catch (const persist::AtomicFileError& error) {
    throw ProfileError(error.what());
  }

  persist::ByteReader r(body.data(), body.size());
  DeviceModel model;
  try {
    const std::uint32_t num_points = r.u32();
    if (num_points > 4096) throw ProfileError("implausible point count");
    model.points.reserve(num_points);
    for (std::uint32_t i = 0; i < num_points; ++i) {
      ThreadPoint p;
      p.threads = static_cast<int>(r.u32());
      p.gemm_gflops = rd_f64(r);
      p.conv_gflops = rd_f64(r);
      p.bf16_gemm_gflops = rd_f64(r);
      p.s8_gemm_gops = rd_f64(r);
      model.points.push_back(p);
    }
    model.memcpy_bytes_per_sec = rd_f64(r);
    model.disk_write_bytes_per_sec = rd_f64(r);
    model.disk_read_bytes_per_sec = rd_f64(r);
    model.disk_write_latency_us = rd_f64(r);
    model.disk_read_latency_us = rd_f64(r);
  } catch (const std::runtime_error& e) {
    throw ProfileError(e.what());
  }
  if (!r.exhausted()) throw ProfileError("trailing bytes after payload");
  if (!model.valid()) throw ProfileError("decoded model fails validation");
  return model;
}

void save_profile(const std::string& path, const DeviceModel& model) {
  const std::vector<std::uint8_t> bytes = encode_profile(model);
  try {
    persist::write_file_atomic(path, bytes);
  } catch (const persist::AtomicFileError& error) {
    throw ProfileError(error.what());
  }
}

std::optional<DeviceModel> load_profile(const std::string& path) {
  std::vector<std::uint8_t> bytes;
  try {
    bytes = persist::read_file_bytes(path);
  } catch (const persist::AtomicFileError&) {
    return std::nullopt;
  }
  try {
    return decode_profile(bytes);
  } catch (const ProfileError&) {
    return std::nullopt;
  }
}

}  // namespace edgetrain::calib
