#include "calib/device_model.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <filesystem>
#include <system_error>

#include "persist/crc32.hpp"
#include "persist/wire.hpp"

#ifdef _WIN32
#error "calib: POSIX-only (fsync/rename durability protocol)"
#endif
#include <fcntl.h>
#include <unistd.h>

namespace edgetrain::calib {

namespace {

constexpr std::uint32_t kMagic = 0x50435445;  // "ETCP" little-endian

void wr_f64(persist::ByteWriter& w, double value) {
  w.u64(std::bit_cast<std::uint64_t>(value));
}

double rd_f64(persist::ByteReader& r) {
  return std::bit_cast<double>(r.u64());
}

}  // namespace

bool DeviceModel::valid() const {
  if (points.empty()) return false;
  int prev = 0;
  for (const ThreadPoint& p : points) {
    if (p.threads <= prev) return false;  // ascending, >= 1
    if (!(p.gemm_gflops > 0.0) || !(p.conv_gflops > 0.0)) return false;
    prev = p.threads;
  }
  if (!(memcpy_bytes_per_sec > 0.0)) return false;
  if (!(disk_write_bytes_per_sec > 0.0)) return false;
  if (!(disk_read_bytes_per_sec > 0.0)) return false;
  if (disk_write_latency_us < 0.0 || disk_read_latency_us < 0.0) return false;
  return true;
}

int DeviceModel::calibrated_threads() const {
  return points.empty() ? 0 : points.back().threads;
}

int DeviceModel::best_threads() const {
  int best = 1;
  double best_gflops = 0.0;
  for (const ThreadPoint& p : points) {
    if (p.conv_gflops > best_gflops) {
      best_gflops = p.conv_gflops;
      best = p.threads;
    }
  }
  return best;
}

namespace {

double interpolate(const std::vector<ThreadPoint>& points, int threads,
                   double ThreadPoint::* field) {
  if (points.empty()) return 0.0;
  if (threads <= points.front().threads) return points.front().*field;
  if (threads >= points.back().threads) return points.back().*field;
  for (std::size_t i = 1; i < points.size(); ++i) {
    if (threads <= points[i].threads) {
      const ThreadPoint& lo = points[i - 1];
      const ThreadPoint& hi = points[i];
      const double t = static_cast<double>(threads - lo.threads) /
                       static_cast<double>(hi.threads - lo.threads);
      return lo.*field + t * (hi.*field - lo.*field);
    }
  }
  return points.back().*field;
}

}  // namespace

double DeviceModel::gemm_gflops_at(int threads) const {
  return interpolate(points, threads, &ThreadPoint::gemm_gflops);
}

double DeviceModel::conv_gflops_at(int threads) const {
  return interpolate(points, threads, &ThreadPoint::conv_gflops);
}

double DeviceModel::gemm_us(double flops, int threads) const {
  const double gflops = gemm_gflops_at(threads);
  return gflops > 0.0 ? flops / (gflops * 1e9) * 1e6 : 0.0;
}

double DeviceModel::conv_us(double flops, int threads) const {
  const double gflops = conv_gflops_at(threads);
  return gflops > 0.0 ? flops / (gflops * 1e9) * 1e6 : 0.0;
}

double DeviceModel::memcpy_us(double bytes) const {
  return memcpy_bytes_per_sec > 0.0 ? bytes / memcpy_bytes_per_sec * 1e6 : 0.0;
}

double DeviceModel::disk_write_us(double bytes) const {
  const double xfer = disk_write_bytes_per_sec > 0.0
                          ? bytes / disk_write_bytes_per_sec * 1e6
                          : 0.0;
  return disk_write_latency_us + xfer;
}

double DeviceModel::disk_read_us(double bytes) const {
  const double xfer = disk_read_bytes_per_sec > 0.0
                          ? bytes / disk_read_bytes_per_sec * 1e6
                          : 0.0;
  return disk_read_latency_us + xfer;
}

std::vector<std::uint8_t> encode_profile(const DeviceModel& model) {
  persist::ByteWriter payload;
  payload.u32(static_cast<std::uint32_t>(model.points.size()));
  for (const ThreadPoint& p : model.points) {
    payload.u32(static_cast<std::uint32_t>(p.threads));
    wr_f64(payload, p.gemm_gflops);
    wr_f64(payload, p.conv_gflops);
  }
  wr_f64(payload, model.memcpy_bytes_per_sec);
  wr_f64(payload, model.disk_write_bytes_per_sec);
  wr_f64(payload, model.disk_read_bytes_per_sec);
  wr_f64(payload, model.disk_write_latency_us);
  wr_f64(payload, model.disk_read_latency_us);

  persist::ByteWriter out;
  out.u32(kMagic);
  out.u32(kProfileVersion);
  out.u64(payload.size());
  out.u32(persist::crc32(payload.bytes().data(), payload.size()));
  out.u32(persist::crc32(out.bytes().data(), out.size()));  // header CRC
  out.raw(payload.bytes().data(), payload.size());
  return out.take();
}

DeviceModel decode_profile(const std::vector<std::uint8_t>& bytes) {
  constexpr std::size_t kHeaderBytes = 4 + 4 + 8 + 4 + 4;
  if (bytes.size() < kHeaderBytes) throw ProfileError("truncated header");
  persist::ByteReader header(bytes.data(), kHeaderBytes);
  if (header.u32() != kMagic) throw ProfileError("bad magic");
  const std::uint32_t version = header.u32();
  if (version != kProfileVersion) {
    throw ProfileError("unsupported version " + std::to_string(version));
  }
  const std::uint64_t payload_size = header.u64();
  const std::uint32_t payload_crc = header.u32();
  const std::uint32_t header_crc = header.u32();
  if (persist::crc32(bytes.data(), kHeaderBytes - 4) != header_crc) {
    throw ProfileError("header CRC mismatch");
  }
  if (bytes.size() - kHeaderBytes != payload_size) {
    throw ProfileError("payload size mismatch");
  }
  if (persist::crc32(bytes.data() + kHeaderBytes, payload_size) !=
      payload_crc) {
    throw ProfileError("payload CRC mismatch");
  }

  persist::ByteReader r(bytes.data() + kHeaderBytes, payload_size);
  DeviceModel model;
  try {
    const std::uint32_t num_points = r.u32();
    if (num_points > 4096) throw ProfileError("implausible point count");
    model.points.reserve(num_points);
    for (std::uint32_t i = 0; i < num_points; ++i) {
      ThreadPoint p;
      p.threads = static_cast<int>(r.u32());
      p.gemm_gflops = rd_f64(r);
      p.conv_gflops = rd_f64(r);
      model.points.push_back(p);
    }
    model.memcpy_bytes_per_sec = rd_f64(r);
    model.disk_write_bytes_per_sec = rd_f64(r);
    model.disk_read_bytes_per_sec = rd_f64(r);
    model.disk_write_latency_us = rd_f64(r);
    model.disk_read_latency_us = rd_f64(r);
  } catch (const std::runtime_error& e) {
    throw ProfileError(e.what());
  }
  if (!r.exhausted()) throw ProfileError("trailing bytes after payload");
  if (!model.valid()) throw ProfileError("decoded model fails validation");
  return model;
}

void save_profile(const std::string& path, const DeviceModel& model) {
  const std::vector<std::uint8_t> bytes = encode_profile(model);
  const std::string tmp = path + ".tmp";
  {
    std::FILE* file = std::fopen(tmp.c_str(), "wb");
    if (file == nullptr) {
      throw ProfileError("cannot open " + tmp + " for writing");
    }
    const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), file);
    const int fd = fileno(file);
    const bool synced = written == bytes.size() && fd >= 0 && fsync(fd) == 0;
    if (std::fclose(file) != 0 || !synced) {
      std::remove(tmp.c_str());
      throw ProfileError("write to " + tmp + " failed");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw ProfileError("rename " + tmp + " -> " + path + " failed");
  }
  // Make the rename itself durable: fsync the containing directory.
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  const std::string dir = parent.empty() ? "." : parent.string();
  const int dir_fd = open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    (void)fsync(dir_fd);
    (void)close(dir_fd);
  }
}

std::optional<DeviceModel> load_profile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return std::nullopt;
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), file)) > 0) {
    bytes.insert(bytes.end(), buf, buf + got);
  }
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) return std::nullopt;
  try {
    return decode_profile(bytes);
  } catch (const ProfileError&) {
    return std::nullopt;
  }
}

}  // namespace edgetrain::calib
