#include "calib/calibrate.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <limits>
#include <random>
#include <thread>

#include "core/slot_store.hpp"
#include "tensor/convert.hpp"
#include "tensor/ops.hpp"
#include "tensor/parallel.hpp"
#include "tensor/quant.hpp"
#include "tensor/tensor.hpp"

namespace edgetrain::calib {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Restores the global pool's worker count on scope exit, so a thrown
/// probe cannot leave the process pinned to one worker.
class ThreadPinGuard {
 public:
  ThreadPinGuard() : previous_(ThreadPool::global().size()) {}
  ~ThreadPinGuard() { ThreadPool::set_global_threads(previous_); }
  ThreadPinGuard(const ThreadPinGuard&) = delete;
  ThreadPinGuard& operator=(const ThreadPinGuard&) = delete;

 private:
  unsigned previous_;
};

std::vector<int> default_thread_counts() {
  const unsigned hw = std::max(1U, std::thread::hardware_concurrency());
  std::vector<int> counts;
  for (unsigned t = 1; t < hw; t *= 2) counts.push_back(static_cast<int>(t));
  counts.push_back(static_cast<int>(hw));
  return counts;
}

}  // namespace

double time_per_iteration_seconds(double min_sample_seconds, int repeats,
                                  const std::function<void()>& fn) {
  repeats = std::max(1, repeats);
  // Grow the iteration count until one sample is long enough to trust the
  // clock, then keep it fixed across repeats.
  std::int64_t iters = 1;
  double sample = 0.0;
  for (;;) {
    const auto start = Clock::now();
    for (std::int64_t i = 0; i < iters; ++i) fn();
    sample = seconds_since(start);
    if (sample >= min_sample_seconds || iters >= (1LL << 30)) break;
    iters *= 2;
  }
  double best = sample / static_cast<double>(iters);
  for (int r = 1; r < repeats; ++r) {
    const auto start = Clock::now();
    for (std::int64_t i = 0; i < iters; ++i) fn();
    best = std::min(best,
                    seconds_since(start) / static_cast<double>(iters));
  }
  return best;
}

CalibrationOptions quick_calibration() {
  CalibrationOptions options;
  options.min_sample_seconds = 0.002;
  options.repeats = 1;
  options.gemm_size = 96;
  options.conv_channels = 16;
  options.conv_image = 16;
  options.io_small_elems = 16 * 1024;
  options.io_large_elems = 128 * 1024;
  return options;
}

namespace {

ThreadPoint measure_compute_point(int threads,
                                  const CalibrationOptions& options) {
  ThreadPool::set_global_threads(static_cast<unsigned>(threads));
  ThreadPoint point;
  point.threads = threads;

  {
    const std::int64_t n = options.gemm_size;
    std::mt19937 rng(11);
    Tensor a = Tensor::randn(Shape{n, n}, rng);
    Tensor b = Tensor::randn(Shape{n, n}, rng);
    Tensor c = Tensor::zeros(Shape{n, n});
    const double flops = 2.0 * static_cast<double>(n) * static_cast<double>(n) *
                         static_cast<double>(n);
    const double secs = time_per_iteration_seconds(
        options.min_sample_seconds, options.repeats, [&] {
          ops::gemm(false, false, n, n, n, 1.0F, a.data(), b.data(), 0.0F,
                    c.data());
        });
    point.gemm_gflops = flops / secs * 1e-9;

    // bf16 GEMM probe on the same operands, pre-rounded once (the
    // steady-state shape: persistent bf16 weights, repeated products).
    std::vector<std::uint16_t> a16(static_cast<std::size_t>(n * n));
    std::vector<std::uint16_t> b16(static_cast<std::size_t>(n * n));
    convert::fp32_to_bf16(a.data(), a16.data(), n * n);
    convert::fp32_to_bf16(b.data(), b16.data(), n * n);
    const double bf16_secs = time_per_iteration_seconds(
        options.min_sample_seconds, options.repeats, [&] {
          ops::gemm_bf16(false, false, n, n, n, 1.0F, a16.data(), b16.data(),
                         0.0F, c.data());
        });
    point.bf16_gemm_gflops = flops / bf16_secs * 1e-9;

    // int8 GEMM probe: same dimensions, s8 weights x u8 activations into
    // s32 -- one MAC counted as 2 ops so the rate compares to gemm_gflops.
    std::vector<std::int8_t> a8(static_cast<std::size_t>(n * n));
    std::vector<std::uint8_t> b8(static_cast<std::size_t>(n * n));
    for (std::size_t i = 0; i < a8.size(); ++i) {
      a8[i] = static_cast<std::int8_t>(static_cast<int>(i * 37 % 255) - 127);
      b8[i] = static_cast<std::uint8_t>(i * 101 % 256);
    }
    std::vector<std::int32_t> c32(static_cast<std::size_t>(n * n));
    const double s8_secs = time_per_iteration_seconds(
        options.min_sample_seconds, options.repeats, [&] {
          quant::gemm_s8u8(n, n, n, a8.data(), b8.data(), /*zp_b=*/128,
                           c32.data());
        });
    point.s8_gemm_gops = flops / s8_secs * 1e-9;
  }

  {
    const std::int64_t c = options.conv_channels;
    const std::int64_t hw = options.conv_image;
    std::mt19937 rng(12);
    Tensor x = Tensor::randn(Shape{1, c, hw, hw}, rng);
    Tensor w = Tensor::randn(Shape{c, c, 3, 3}, rng);
    Tensor gy = Tensor::randn(Shape{1, c, hw, hw}, rng);
    const ops::ConvParams params{1, 1};
    // Forward + backward together: the ratio a training step sees. Forward
    // is one implicit GEMM, backward two (dX and dW) of the same shape.
    const double flops = 3.0 * 2.0 * static_cast<double>(c) *
                         static_cast<double>(c) * 9.0 *
                         static_cast<double>(hw) * static_cast<double>(hw);
    const double secs = time_per_iteration_seconds(
        options.min_sample_seconds, options.repeats, [&] {
          Tensor y = ops::conv2d_forward(x, w, Tensor{}, params);
          ops::Conv2dGrads grads = ops::conv2d_backward(gy, x, w, params, true);
          // The outputs feed nothing; keep the calls from being elided.
          if (y.data() == nullptr || grads.grad_x.data() == nullptr) {
            std::abort();
          }
        });
    point.conv_gflops = flops / secs * 1e-9;
  }
  return point;
}

double measure_memcpy_bytes_per_sec(const CalibrationOptions& options) {
  constexpr std::size_t kBytes = 8U << 20;
  std::vector<std::uint8_t> src(kBytes, 0x5A);
  std::vector<std::uint8_t> dst(kBytes);
  const double secs = time_per_iteration_seconds(
      options.min_sample_seconds, options.repeats, [&] {
        std::memcpy(dst.data(), src.data(), kBytes);
        // Defeat dead-store elimination across iterations.
        src[0] = static_cast<std::uint8_t>(dst[kBytes - 1] + 1);
      });
  return static_cast<double>(kBytes) / secs;
}

struct IoFit {
  double bytes_per_sec = 0.0;
  double latency_us = 0.0;
};

/// Two-point linear fit time(bytes) = latency + bytes / bandwidth over the
/// real spill path (serialize + CRC + file IO + injected latency).
void measure_disk(const CalibrationOptions& options, IoFit* write_fit,
                  IoFit* read_fit) {
  std::filesystem::create_directories(options.scratch_dir);
  core::DiskSlotStore store(/*num_slots=*/1, /*first_disk_slot=*/0,
                            options.scratch_dir);
  std::mt19937 rng(13);

  const auto probe = [&](std::int64_t elems, double* put_secs,
                         double* get_secs) {
    Tensor value = Tensor::randn(Shape{elems}, rng);
    store.put(0, value);  // warm the file and allocator paths
    *put_secs = time_per_iteration_seconds(options.min_sample_seconds,
                                           options.repeats,
                                           [&] { store.put(0, value); });
    *get_secs = time_per_iteration_seconds(
        options.min_sample_seconds, options.repeats, [&] {
          Tensor restored = store.get(0);
          if (restored.data() == nullptr) std::abort();
        });
    store.drop(0);
  };

  const std::int64_t small = std::max<std::int64_t>(1024, options.io_small_elems);
  const std::int64_t large = std::max(small * 2, options.io_large_elems);
  double put_small = 0.0, get_small = 0.0, put_large = 0.0, get_large = 0.0;
  probe(small, &put_small, &get_small);
  probe(large, &put_large, &get_large);

  const double small_bytes = static_cast<double>(small) * sizeof(float);
  const double large_bytes = static_cast<double>(large) * sizeof(float);
  const auto fit = [&](double t_small, double t_large) {
    IoFit f;
    const double dt = t_large - t_small;
    if (dt > 0.0) {
      f.bytes_per_sec = (large_bytes - small_bytes) / dt;
      f.latency_us = std::max(0.0, t_small - small_bytes / f.bytes_per_sec) *
                     1e6;
    } else {
      // Degenerate timing (cache effects swamped the size difference):
      // fall back to pure bandwidth from the large probe.
      f.bytes_per_sec = large_bytes / std::max(t_large, 1e-9);
      f.latency_us = 0.0;
    }
    return f;
  };
  *write_fit = fit(put_small, put_large);
  *read_fit = fit(get_small, get_large);
}

}  // namespace

DeviceModel calibrate(const CalibrationOptions& options) {
  ThreadPinGuard restore_threads;
  DeviceModel model;

  std::vector<int> counts = options.thread_counts.empty()
                                ? default_thread_counts()
                                : options.thread_counts;
  std::sort(counts.begin(), counts.end());
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
  for (const int threads : counts) {
    if (threads < 1) continue;
    model.points.push_back(measure_compute_point(threads, options));
  }

  model.memcpy_bytes_per_sec = measure_memcpy_bytes_per_sec(options);

  IoFit write_fit;
  IoFit read_fit;
  measure_disk(options, &write_fit, &read_fit);
  model.disk_write_bytes_per_sec = write_fit.bytes_per_sec;
  model.disk_write_latency_us = write_fit.latency_us;
  model.disk_read_bytes_per_sec = read_fit.bytes_per_sec;
  model.disk_read_latency_us = read_fit.latency_us;
  return model;
}

DeviceModel load_or_calibrate(const std::string& profile_path,
                              const CalibrationOptions& options,
                              bool* was_cached) {
  if (std::optional<DeviceModel> cached = load_profile(profile_path)) {
    if (was_cached != nullptr) *was_cached = true;
    return *cached;
  }
  if (was_cached != nullptr) *was_cached = false;
  DeviceModel model = calibrate(options);
  const std::filesystem::path parent =
      std::filesystem::path(profile_path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
  save_profile(profile_path, model);
  return model;
}

}  // namespace edgetrain::calib
