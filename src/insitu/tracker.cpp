#include "insitu/tracker.hpp"

#include <algorithm>

namespace edgetrain::insitu {

IoUTracker::IoUTracker(float min_iou, std::int64_t max_gap)
    : min_iou_(min_iou), max_gap_(max_gap) {}

std::vector<std::int64_t> IoUTracker::update(
    std::int64_t frame_index, const std::vector<BBox>& detections) {
  std::vector<std::int64_t> assigned(detections.size(), -1);
  std::vector<bool> track_taken(active_.size(), false);
  std::vector<bool> det_taken(detections.size(), false);

  // Greedy global matching: repeatedly take the best remaining pair.
  for (;;) {
    float best = min_iou_;
    std::size_t best_track = active_.size();
    std::size_t best_det = detections.size();
    for (std::size_t t = 0; t < active_.size(); ++t) {
      if (track_taken[t]) continue;
      const BBox& last = active_[t].sightings.back().box;
      for (std::size_t d = 0; d < detections.size(); ++d) {
        if (det_taken[d]) continue;
        const float score = iou(last, detections[d]);
        if (score > best) {
          best = score;
          best_track = t;
          best_det = d;
        }
      }
    }
    if (best_track == active_.size()) break;
    track_taken[best_track] = true;
    det_taken[best_det] = true;
    active_[best_track].sightings.push_back(
        {frame_index, detections[best_det]});
    active_[best_track].last_frame = frame_index;
    assigned[best_det] = active_[best_track].id;
  }

  // New tracks for unmatched detections.
  for (std::size_t d = 0; d < detections.size(); ++d) {
    if (det_taken[d]) continue;
    Track track;
    track.id = next_id_++;
    track.sightings.push_back({frame_index, detections[d]});
    track.last_frame = frame_index;
    assigned[d] = track.id;
    active_.push_back(std::move(track));
  }

  // Finish stale tracks.
  std::vector<Track> still_active;
  still_active.reserve(active_.size());
  for (Track& track : active_) {
    if (frame_index - track.last_frame > max_gap_) {
      track.finished = true;
      finished_.push_back(std::move(track));
    } else {
      still_active.push_back(std::move(track));
    }
  }
  active_ = std::move(still_active);
  return assigned;
}

std::vector<Track> IoUTracker::take_finished() {
  std::vector<Track> out = std::move(finished_);
  finished_.clear();
  return out;
}

void IoUTracker::flush() {
  for (Track& track : active_) {
    track.finished = true;
    finished_.push_back(std::move(track));
  }
  active_.clear();
}

}  // namespace edgetrain::insitu
