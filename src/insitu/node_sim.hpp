// edgetrain: integrated Waggle-node lifecycle simulation.
//
// Ties the whole paper together in one event loop. Simulated hours tick
// by; each hour the node
//   1. captures camera frames and runs the harvesting pipeline (teacher
//      gating + tracker back-labelling) within its SD budget,
//   2. computes its idle-time training budget from the foreground duty
//      cycle (sensing + inference tasks preempt training), and
//   3. spends that budget on real checkpointed student training steps,
// then evaluates the student across viewpoint bins. The report shows
// accuracy climbing hour over hour while everything stays inside the
// device's memory, storage and CPU envelopes.
#pragma once

#include <cstdint>
#include <vector>

#include "edge/device.hpp"
#include "edge/scheduler.hpp"
#include "insitu/harvester.hpp"
#include "insitu/scene.hpp"
#include "insitu/teacher.hpp"

namespace edgetrain::insitu {

struct NodeSimConfig {
  SceneConfig scene;
  HarvestConfig harvest;
  edge::EdgeDevice device = edge::EdgeDevice::waggle_odroid_xu4();
  int hours = 6;
  int frames_per_hour = 300;
  /// Foreground duty cycle per hour: inference bursts + sensor sampling.
  double inference_period_seconds = 6.0;
  double inference_duration_seconds = 1.0;
  double sensing_period_seconds = 30.0;
  double sensing_duration_seconds = 0.4;
  /// Wall-clock cost of one (checkpointed) student training step on the
  /// device; converts idle seconds into a step budget.
  double step_seconds = 2.0;
  /// Cap on real training steps executed per simulated hour (keeps the
  /// simulation itself fast; the *budget* is still reported in full).
  int max_real_steps_per_hour = 40;
  int teacher_examples_per_class = 120;
  TrainOptions teacher_train{.epochs = 8};
  /// Incremental on-node training favours a gentler step size than the
  /// batch experiments (data arrives track-correlated and is revisited).
  TrainOptions student_train{.epochs = 1, .lr = 0.02F,
                             .checkpoint_free_slots = 2};
  int eval_bins = 4;
  int eval_per_class_per_bin = 12;
  std::int64_t classifier_channels = 6;
  std::uint32_t seed = 5;
};

struct HourReport {
  int hour = 0;
  std::int64_t frames = 0;
  std::int64_t dataset_images = 0;      ///< cumulative harvested images
  std::uint64_t storage_used_bytes = 0; ///< SD usage of the image store
  double idle_fraction = 0.0;           ///< share of the hour spent training
  std::int64_t step_budget = 0;         ///< steps the idle time would allow
  std::int64_t steps_run = 0;           ///< real steps executed (capped)
  double student_accuracy = 0.0;        ///< mean over viewpoint bins
  double teacher_accuracy = 0.0;
};

struct NodeSimResult {
  std::vector<HourReport> hours;
  HarvestStats harvest;
  double final_student_accuracy = 0.0;
  double teacher_accuracy = 0.0;
};

/// Runs the simulation; deterministic for a fixed config.
[[nodiscard]] NodeSimResult run_node_simulation(const NodeSimConfig& config);

}  // namespace edgetrain::insitu
