#include "insitu/vision.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace edgetrain::insitu {

float iou(const BBox& a, const BBox& b) {
  const int ix1 = std::max(a.x, b.x);
  const int iy1 = std::max(a.y, b.y);
  const int ix2 = std::min(a.x2(), b.x2());
  const int iy2 = std::min(a.y2(), b.y2());
  const int iw = std::max(0, ix2 - ix1);
  const int ih = std::max(0, iy2 - iy1);
  const int inter = iw * ih;
  if (inter == 0) return 0.0F;
  const int uni = a.area() + b.area() - inter;
  return static_cast<float>(inter) / static_cast<float>(uni);
}

GrayImage abs_diff(const GrayImage& a, const GrayImage& b) {
  if (a.height != b.height || a.width != b.width) {
    throw std::invalid_argument("abs_diff: frame size mismatch");
  }
  GrayImage out(a.height, a.width);
  for (std::size_t i = 0; i < out.pixels.size(); ++i) {
    out.pixels[i] = std::fabs(a.pixels[i] - b.pixels[i]);
  }
  return out;
}

std::vector<BBox> detect_blobs(const GrayImage& image, float threshold,
                               int min_area) {
  const int h = image.height;
  const int w = image.width;
  std::vector<std::int32_t> label(
      static_cast<std::size_t>(h) * static_cast<std::size_t>(w), 0);
  std::vector<BBox> boxes;
  std::vector<std::pair<int, int>> stack;

  auto idx = [w](int y, int x) {
    return static_cast<std::size_t>(y) * static_cast<std::size_t>(w) +
           static_cast<std::size_t>(x);
  };

  std::int32_t next_label = 0;
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      if (image.at(y, x) <= threshold || label[idx(y, x)] != 0) continue;
      ++next_label;
      int min_x = x;
      int max_x = x;
      int min_y = y;
      int max_y = y;
      int area = 0;
      stack.clear();
      stack.emplace_back(y, x);
      label[idx(y, x)] = next_label;
      while (!stack.empty()) {
        const auto [cy, cx] = stack.back();
        stack.pop_back();
        ++area;
        min_x = std::min(min_x, cx);
        max_x = std::max(max_x, cx);
        min_y = std::min(min_y, cy);
        max_y = std::max(max_y, cy);
        for (int dy = -1; dy <= 1; ++dy) {
          for (int dx = -1; dx <= 1; ++dx) {
            const int ny = cy + dy;
            const int nx = cx + dx;
            if (!image.in_bounds(ny, nx) || label[idx(ny, nx)] != 0 ||
                image.at(ny, nx) <= threshold) {
              continue;
            }
            label[idx(ny, nx)] = next_label;
            stack.emplace_back(ny, nx);
          }
        }
      }
      if (area >= min_area) {
        boxes.push_back({min_x, min_y, max_x - min_x + 1, max_y - min_y + 1});
      }
    }
  }
  return boxes;
}

BBox expand(const BBox& box, float fraction, int frame_width,
            int frame_height) {
  const int dx = static_cast<int>(fraction * static_cast<float>(box.w)) + 1;
  const int dy = static_cast<int>(fraction * static_cast<float>(box.h)) + 1;
  const int x1 = std::max(0, box.x - dx);
  const int y1 = std::max(0, box.y - dy);
  const int x2 = std::min(frame_width, box.x2() + dx);
  const int y2 = std::min(frame_height, box.y2() + dy);
  return {x1, y1, std::max(1, x2 - x1), std::max(1, y2 - y1)};
}

std::vector<float> crop_resize(const GrayImage& image, const BBox& box,
                               int patch) {
  const int x1 = std::clamp(box.x, 0, image.width - 1);
  const int y1 = std::clamp(box.y, 0, image.height - 1);
  const int x2 = std::clamp(box.x2(), x1 + 1, image.width);
  const int y2 = std::clamp(box.y2(), y1 + 1, image.height);
  const float sx = static_cast<float>(x2 - x1) / static_cast<float>(patch);
  const float sy = static_cast<float>(y2 - y1) / static_cast<float>(patch);

  std::vector<float> out(static_cast<std::size_t>(patch) *
                         static_cast<std::size_t>(patch));
  for (int py = 0; py < patch; ++py) {
    for (int px = 0; px < patch; ++px) {
      const float fy = static_cast<float>(y1) +
                       (static_cast<float>(py) + 0.5F) * sy - 0.5F;
      const float fx = static_cast<float>(x1) +
                       (static_cast<float>(px) + 0.5F) * sx - 0.5F;
      const int y0 = static_cast<int>(std::floor(fy));
      const int x0 = static_cast<int>(std::floor(fx));
      const float wy = fy - static_cast<float>(y0);
      const float wx = fx - static_cast<float>(x0);
      auto sample = [&](int yy, int xx) -> float {
        yy = std::clamp(yy, 0, image.height - 1);
        xx = std::clamp(xx, 0, image.width - 1);
        return image.at(yy, xx);
      };
      const float v =
          (1.0F - wy) * ((1.0F - wx) * sample(y0, x0) + wx * sample(y0, x0 + 1)) +
          wy * ((1.0F - wx) * sample(y0 + 1, x0) + wx * sample(y0 + 1, x0 + 1));
      out[static_cast<std::size_t>(py) * static_cast<std::size_t>(patch) +
          static_cast<std::size_t>(px)] = v;
    }
  }
  return out;
}

Tensor patches_to_tensor(const std::vector<std::vector<float>>& patches,
                         int patch) {
  const auto n = static_cast<std::int64_t>(patches.size());
  Tensor out = Tensor::empty(Shape{n, 1, patch, patch});
  float* dst = out.data();
  const std::size_t per = static_cast<std::size_t>(patch) *
                          static_cast<std::size_t>(patch);
  for (std::size_t i = 0; i < patches.size(); ++i) {
    if (patches[i].size() != per) {
      throw std::invalid_argument("patches_to_tensor: patch size mismatch");
    }
    std::copy(patches[i].begin(), patches[i].end(), dst + i * per);
  }
  return out;
}

}  // namespace edgetrain::insitu
