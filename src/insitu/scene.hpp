// edgetrain: synthetic street-scene generator with a viewpoint problem.
//
// Stand-in for the Array-of-Things camera feed (see DESIGN.md,
// substitutions). Objects of K procedural classes enter at the left edge
// and traverse to the right. Appearance is warped by a *viewpoint skew*
// that depends on horizontal position: at the right edge objects appear in
// the canonical pose the (cloud-trained) teacher saw; towards the left they
// are progressively sheared, squashed and darkened. This reproduces the
// paper's premise: the teacher recognises objects only near the canonical
// viewpoint, the tracker back-labels the skewed sightings, and the student
// learns the node's own viewpoint distribution.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "insitu/vision.hpp"

namespace edgetrain::insitu {

struct SceneConfig {
  int frame_width = 128;
  int frame_height = 48;
  int object_size = 20;     ///< nominal glyph size in pixels
  int num_classes = 4;      ///< procedural glyph classes (max 5)
  float speed = 4.0F;       ///< pixels per frame, left to right
  float noise = 0.03F;      ///< background noise stddev
  float max_skew = 0.9F;    ///< skew intensity at the left edge (0 = none)
  std::uint32_t seed = 42;
};

/// Margin, as a fraction of the tight box, added around every classifier
/// crop (shared by the scene's patch renderers and the harvester).
inline constexpr float kPatchMargin = 0.15F;

struct GroundTruth {
  BBox box;
  std::int32_t label = -1;
  std::int64_t object_id = -1;
};

struct Frame {
  std::int64_t index = 0;
  GrayImage image;
  std::vector<GroundTruth> truths;
};

class SceneSimulator {
 public:
  explicit SceneSimulator(const SceneConfig& config);

  [[nodiscard]] const SceneConfig& config() const noexcept { return config_; }

  /// Advances the world one frame and renders it. Objects spawn with
  /// probability @p spawn_prob when fewer than @p max_objects are active.
  [[nodiscard]] Frame next_frame(float spawn_prob = 0.25F,
                                 int max_objects = 2);

  /// Skew intensity at horizontal position @p x (1 at the left edge,
  /// 0 at the right edge, scaled by max_skew).
  [[nodiscard]] float skew_at(float x) const;

  /// Renders a canonical-pose (skew ~ 0) patch of @p label with small
  /// pose jitter: the teacher's cloud-side training distribution.
  [[nodiscard]] std::vector<float> canonical_patch(std::int32_t label,
                                                   int patch);

  /// Renders a patch of @p label at the skew of position @p x: the node's
  /// local distribution (for evaluation sweeps).
  [[nodiscard]] std::vector<float> skewed_patch(std::int32_t label, float x,
                                                int patch);

 private:
  struct ActiveObject {
    std::int64_t id;
    std::int32_t label;
    float x;  ///< left edge of the glyph
    float y;
  };

  void draw_glyph(GrayImage& canvas, std::int32_t label, float skew,
                  int left, int top, int size, float jitter_angle);

  SceneConfig config_;
  std::mt19937 rng_;
  std::int64_t next_object_id_ = 0;
  std::int64_t frame_index_ = 0;
  std::vector<ActiveObject> objects_;
};

}  // namespace edgetrain::insitu
