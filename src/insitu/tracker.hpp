// edgetrain: IoU multi-object tracker with label back-propagation.
//
// The Section III mechanism: "an object-tracking model can be used to
// identify and segment all the previous frames which contain the same
// subject", so one confident teacher identification labels tens of earlier
// sightings. IoUTracker is a greedy IoU matcher (the standard lightweight
// edge tracker); Track accumulates the per-frame boxes and their crops and
// can be back-labelled as a unit.
#pragma once

#include <cstdint>
#include <vector>

#include "insitu/vision.hpp"

namespace edgetrain::insitu {

struct Sighting {
  std::int64_t frame_index = 0;
  BBox box;
};

struct Track {
  std::int64_t id = 0;
  std::vector<Sighting> sightings;
  std::int64_t last_frame = -1;
  bool finished = false;

  [[nodiscard]] std::size_t length() const { return sightings.size(); }
};

class IoUTracker {
 public:
  /// @p min_iou: match threshold; @p max_gap: frames a track may go unseen
  /// before it is finished.
  explicit IoUTracker(float min_iou = 0.3F, std::int64_t max_gap = 2);

  /// Matches detections of one frame to active tracks (greedy best-IoU),
  /// spawning new tracks for unmatched boxes and finishing stale tracks.
  /// Returns the track id assigned to each detection (aligned with input).
  std::vector<std::int64_t> update(std::int64_t frame_index,
                                   const std::vector<BBox>& detections);

  /// Tracks finished before or at the latest update, then forgotten by the
  /// tracker (ownership moves to the caller).
  [[nodiscard]] std::vector<Track> take_finished();

  /// Finishes all active tracks (end of stream).
  void flush();

  [[nodiscard]] const std::vector<Track>& active() const noexcept {
    return active_;
  }

 private:
  float min_iou_;
  std::int64_t max_gap_;
  std::int64_t next_id_ = 0;
  std::vector<Track> active_;
  std::vector<Track> finished_;
};

}  // namespace edgetrain::insitu
