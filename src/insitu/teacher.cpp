#include "insitu/teacher.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <optional>
#include <stdexcept>

#include "core/executor.hpp"
#include "core/revolve.hpp"
#include "models/small_nets.hpp"
#include "nn/chain_runner.hpp"
#include "nn/optim.hpp"
#include "tensor/ops.hpp"

namespace edgetrain::insitu {

void PatchDataset::add(std::vector<float> pixels, std::int32_t label) {
  if (pixels.size() != static_cast<std::size_t>(patch_) *
                           static_cast<std::size_t>(patch_)) {
    throw std::invalid_argument("PatchDataset::add: pixel count mismatch");
  }
  patches_.push_back(std::move(pixels));
  labels_.push_back(label);
}

void PatchDataset::shuffle(std::mt19937& rng) {
  std::vector<std::size_t> order(labels_.size());
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng);
  std::vector<std::vector<float>> patches;
  std::vector<std::int32_t> labels;
  patches.reserve(order.size());
  labels.reserve(order.size());
  for (const std::size_t i : order) {
    patches.push_back(std::move(patches_[i]));
    labels.push_back(labels_[i]);
  }
  patches_ = std::move(patches);
  labels_ = std::move(labels);
}

Tensor PatchDataset::batch(std::size_t begin, std::size_t count) const {
  const auto n = static_cast<std::int64_t>(count);
  Tensor out = Tensor::empty(
      Shape{n, 1, patch_, patch_});
  float* dst = out.data();
  const std::size_t per = static_cast<std::size_t>(patch_) *
                          static_cast<std::size_t>(patch_);
  for (std::size_t i = 0; i < count; ++i) {
    std::copy(patches_[begin + i].begin(), patches_[begin + i].end(),
              dst + i * per);
  }
  return out;
}

std::vector<std::int32_t> PatchDataset::label_slice(std::size_t begin,
                                                    std::size_t count) const {
  return {labels_.begin() + static_cast<std::ptrdiff_t>(begin),
          labels_.begin() + static_cast<std::ptrdiff_t>(begin + count)};
}

Tensor PatchDataset::gather(const std::vector<std::size_t>& indices) const {
  Tensor out = Tensor::empty(
      Shape{static_cast<std::int64_t>(indices.size()), 1, patch_, patch_});
  float* dst = out.data();
  const std::size_t per = static_cast<std::size_t>(patch_) *
                          static_cast<std::size_t>(patch_);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const std::vector<float>& src = patches_.at(indices[i]);
    std::copy(src.begin(), src.end(), dst + i * per);
  }
  return out;
}

std::vector<std::int32_t> PatchDataset::gather_labels(
    const std::vector<std::size_t>& indices) const {
  std::vector<std::int32_t> out;
  out.reserve(indices.size());
  for (const std::size_t i : indices) out.push_back(labels_.at(i));
  return out;
}

std::vector<std::pair<std::int32_t, float>> predictions_from_logits(
    const Tensor& logits) {
  const std::int64_t n = logits.shape()[0];
  const std::int64_t k = logits.shape()[1];
  std::vector<std::pair<std::int32_t, float>> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * k;
    float mx = row[0];
    std::int32_t best = 0;
    for (std::int64_t j = 1; j < k; ++j) {
      if (row[j] > mx) {
        mx = row[j];
        best = static_cast<std::int32_t>(j);
      }
    }
    double denom = 0.0;
    for (std::int64_t j = 0; j < k; ++j) {
      denom += std::exp(static_cast<double>(row[j]) - mx);
    }
    out.emplace_back(best, static_cast<float>(1.0 / denom));
  }
  return out;
}

PatchClassifier::PatchClassifier(int patch, int num_classes,
                                 std::int64_t base_channels,
                                 std::uint32_t seed)
    : patch_(patch), num_classes_(num_classes), rng_(seed) {
  chain_ = models::build_patch_cnn(patch, 1, base_channels, num_classes, rng_);
}

TrainStats PatchClassifier::train(const PatchDataset& data,
                                  const TrainOptions& options,
                                  PatchClassifier* distill_from) {
  if (data.empty()) throw std::invalid_argument("train: empty dataset");
  TrainStats stats;

  nn::SGD optimizer(chain_.params(), options.lr, options.momentum);
  nn::LayerChainRunner runner(chain_, nn::Phase::Train);
  core::ScheduleExecutor executor;

  const int l = chain_.size();
  core::Schedule schedule =
      options.checkpoint_free_slots >= 0
          ? core::revolve::make_schedule(l, options.checkpoint_free_slots)
          : core::full_storage_schedule(l);

  // Covers every executor pass (including checkpointed recompute) so all
  // forwards of a step agree on precision; optimizer state stays fp32.
  std::optional<ops::ScopedGemmPrecision> precision_scope;
  if (options.bf16_compute) {
    precision_scope.emplace(ops::GemmPrecision::Bf16);
  }

  PatchDataset shuffled = data;  // local copy we can reshuffle per epoch
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    shuffled.shuffle(rng_);
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t begin = 0; begin + 1 <= shuffled.size();
         begin += static_cast<std::size_t>(options.batch_size)) {
      const std::size_t count = std::min(
          static_cast<std::size_t>(options.batch_size),
          shuffled.size() - begin);
      if (count < 2) break;  // batch norm needs > 1 sample
      Tensor x = shuffled.batch(begin, count);
      const std::vector<std::int32_t> labels =
          shuffled.label_slice(begin, count);

      Tensor teacher_logits;
      if (distill_from != nullptr) teacher_logits = distill_from->logits(x);

      optimizer.zero_grad();
      runner.begin_pass();
      float loss_value = 0.0F;
      const core::LossGradFn loss_grad = [&](const Tensor& student_logits) {
        if (distill_from != nullptr) {
          ops::DistillResult result = ops::distill_loss(
              student_logits, teacher_logits, labels, options.distill_alpha,
              options.distill_temperature);
          loss_value = result.loss;
          return std::move(result.grad_student_logits);
        }
        ops::SoftmaxXentResult result =
            ops::softmax_xent_forward(student_logits, labels);
        loss_value = result.loss;
        return ops::softmax_xent_backward(result.probs, labels);
      };
      const core::ExecutionResult result =
          executor.run(runner, schedule, x, loss_grad);
      optimizer.step();

      epoch_loss += loss_value;
      ++batches;
      stats.peak_step_bytes = std::max(
          stats.peak_step_bytes,
          result.peak_tracked_bytes - std::min(result.peak_tracked_bytes,
                                               result.baseline_bytes));
      stats.total_advances += result.stats.advances;
      stats.total_forward_saves += result.stats.forward_saves;
    }
    stats.epoch_losses.push_back(
        batches > 0 ? static_cast<float>(epoch_loss / static_cast<double>(batches))
                    : 0.0F);
  }
  return stats;
}

Tensor PatchClassifier::logits(const Tensor& batch) {
  nn::RunContext ctx;
  ctx.phase = nn::Phase::Eval;
  ctx.save_for_backward = false;
  return chain_.forward(batch, ctx);
}

std::pair<std::int32_t, float> PatchClassifier::predict(
    const std::vector<float>& pixels) {
  Tensor x = Tensor::empty(Shape{1, 1, patch_, patch_});
  std::copy(pixels.begin(), pixels.end(), x.data());
  nn::RunContext ctx;
  ctx.phase = nn::Phase::Eval;
  ctx.save_for_backward = false;
  Tensor logits = chain_.forward(x, ctx);

  const std::int64_t k = logits.shape()[1];
  float mx = logits.data()[0];
  std::int32_t best = 0;
  for (std::int64_t j = 1; j < k; ++j) {
    if (logits.data()[j] > mx) {
      mx = logits.data()[j];
      best = static_cast<std::int32_t>(j);
    }
  }
  double denom = 0.0;
  for (std::int64_t j = 0; j < k; ++j) {
    denom += std::exp(static_cast<double>(logits.data()[j]) - mx);
  }
  return {best, static_cast<float>(1.0 / denom)};
}

std::vector<std::pair<std::int32_t, float>> PatchClassifier::predict_batch(
    const Tensor& batch) {
  return predictions_from_logits(logits(batch));
}

double PatchClassifier::evaluate(const PatchDataset& data) {
  if (data.empty()) return 0.0;
  nn::RunContext ctx;
  ctx.phase = nn::Phase::Eval;
  ctx.save_for_backward = false;
  std::size_t correct = 0;
  constexpr std::size_t kBatch = 32;
  for (std::size_t begin = 0; begin < data.size(); begin += kBatch) {
    const std::size_t count = std::min(kBatch, data.size() - begin);
    Tensor logits = chain_.forward(data.batch(begin, count), ctx);
    const std::vector<std::int32_t> predictions = ops::argmax_rows(logits);
    const std::vector<std::int32_t> truth = data.label_slice(begin, count);
    for (std::size_t i = 0; i < count; ++i) {
      if (predictions[i] == truth[i]) ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

}  // namespace edgetrain::insitu
